package d3t

// One benchmark per table and figure of the paper's evaluation (Section
// 6), each driving the same harness the d3texp command uses, at a scale
// sized for testing.B iteration. Run the full paper-scale regeneration
// with:
//
//	go run ./cmd/d3texp -fig all -scale paper
//
// Each bench reports the headline metric of its figure via ReportMetric
// so regressions in the reproduced result — not just in speed — are
// visible in benchmark diffs.

import (
	"testing"

	"d3t/internal/core"
)

// benchScale is small enough for repeated runs yet preserves every
// qualitative shape.
func benchScale() core.Scale {
	return core.Scale{
		Repositories: 20,
		Routers:      60,
		Items:        15,
		Ticks:        400,
		CoopGrid:     []int{1, 4, 10, 20},
		TValues:      []float64{0, 100},
		CommGridMs:   []float64{1, 125},
		CompGridMs:   []float64{-1, 25},
		Seed:         1,
	}
}

// benchFigure runs one registered figure repeatedly and reports a metric
// extracted from its result.
func benchFigure(b *testing.B, id string, metric func(*core.FigureResult) (string, float64)) {
	b.Helper()
	fn, ok := core.Figures()[id]
	if !ok {
		b.Fatalf("unknown figure %q", id)
	}
	s := benchScale()
	b.ReportAllocs()
	var last *core.FigureResult
	for i := 0; i < b.N; i++ {
		res, err := fn(s)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if metric != nil && last != nil {
		name, v := metric(last)
		b.ReportMetric(v, name)
	}
}

// lossAt returns series[label].Y at the given x index.
func lossAt(res *core.FigureResult, label string, idx int) float64 {
	for _, s := range res.Series {
		if s.Label == label {
			return s.Y[idx]
		}
	}
	return -1
}

func BenchmarkTable1Traces(b *testing.B) {
	benchFigure(b, "table1", func(r *core.FigureResult) (string, float64) {
		return "tickers", float64(len(r.Rows))
	})
}

func BenchmarkFig3Cooperation(b *testing.B) {
	benchFigure(b, "fig3", func(r *core.FigureResult) (string, float64) {
		// The U-shape headline: loss at the chain end for T=100.
		return "chain-loss-%", lossAt(r, "T=100", 0)
	})
}

func BenchmarkFig4MissedUpdates(b *testing.B) {
	benchFigure(b, "fig4", nil)
}

func BenchmarkFig5NoCoopComm(b *testing.B) {
	benchFigure(b, "fig5", func(r *core.FigureResult) (string, float64) {
		return "loss-at-125ms-%", lossAt(r, "T=100", 1)
	})
}

func BenchmarkFig6NoCoopComp(b *testing.B) {
	benchFigure(b, "fig6", func(r *core.FigureResult) (string, float64) {
		return "loss-at-25ms-%", lossAt(r, "T=100", 1)
	})
}

func BenchmarkFig7aControlled(b *testing.B) {
	benchFigure(b, "fig7a", func(r *core.FigureResult) (string, float64) {
		return "plateau-loss-%", lossAt(r, "T=100", len(r.Series[0].Y)-1)
	})
}

func BenchmarkFig7bControlledComm(b *testing.B) {
	benchFigure(b, "fig7b", nil)
}

func BenchmarkFig7cControlledComp(b *testing.B) {
	benchFigure(b, "fig7c", nil)
}

func BenchmarkFig8Filtering(b *testing.B) {
	benchFigure(b, "fig8", func(r *core.FigureResult) (string, float64) {
		// All-updates loss minus filtered loss at the largest fan-out.
		n := len(r.Series[0].Y) - 1
		return "allpush-penalty-%", lossAt(r, "All updates", n) - lossAt(r, "Filtered", n)
	})
}

func BenchmarkFig9PPercent(b *testing.B) {
	benchFigure(b, "fig9", nil)
}

func BenchmarkFig10Preference(b *testing.B) {
	benchFigure(b, "fig10", nil)
}

func BenchmarkFig11Protocols(b *testing.B) {
	benchFigure(b, "fig11", nil)
}

func BenchmarkScalability(b *testing.B) {
	benchFigure(b, "scale", nil)
}

func BenchmarkAblationTree(b *testing.B) {
	benchFigure(b, "ablation-tree", nil)
}

func BenchmarkAblationK(b *testing.B) {
	benchFigure(b, "ablation-k", nil)
}

func BenchmarkExtensionPull(b *testing.B) {
	benchFigure(b, "ext-pull", nil)
}

// BenchmarkSingleRun measures one base-case experiment end to end: the
// unit of work every sweep above multiplies.
func BenchmarkSingleRun(b *testing.B) {
	cfg := core.Default()
	cfg.Repositories, cfg.Routers = 20, 60
	cfg.Items, cfg.Ticks = 15, 400
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := core.RunExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(out.LossPercent, "loss-%")
			b.ReportMetric(float64(out.Stats.Messages), "msgs")
		}
	}
}
