// Package obs exposes the observability layer shared by every runtime:
// per-node decision counters, fixed-bucket latency histograms with
// p50/p95/p99, per-edge delay and per-node load EWMAs, sampled update
// traces, a leveled logger, and the HTTP metrics surface (/metrics JSON,
// expvar, pprof). Observation is passive — a disabled (nil) tree is a
// zero-allocation no-op on every record path. See d3t/internal/obs for
// the implementation.
package obs

import (
	"io"

	iobs "d3t/internal/obs"
)

type (
	// Tree is the per-overlay observer registry, handing out one Node
	// observer per repository. A nil *Tree disables observation.
	Tree = iobs.Tree
	// Node is one repository's observer.
	Node = iobs.Node
	// TreeSnapshot and NodeSnapshot are the point-in-time JSON-friendly
	// views Snapshot() returns; latencies are in milliseconds.
	TreeSnapshot = iobs.TreeSnapshot
	NodeSnapshot = iobs.NodeSnapshot
	// Counters is a node's decision-counter snapshot.
	Counters = iobs.Counters
	// HistSnapshot is a histogram's quantile view.
	HistSnapshot = iobs.HistSnapshot
	// Tracer samples update traces; Trace is one sampled update's journey
	// and Hop one stamped arrival on it.
	Tracer = iobs.Tracer
	Trace  = iobs.Trace
	Hop    = iobs.Hop
	// Logger is the leveled logger the CLIs and sweep runner share.
	Logger = iobs.Logger
	// Level selects how much a Logger emits.
	Level = iobs.Level
	// MetricsServer is the HTTP export surface behind -metrics-addr.
	MetricsServer = iobs.MetricsServer
)

// Logging levels.
const (
	LevelQuiet = iobs.LevelQuiet
	LevelInfo  = iobs.LevelInfo
	LevelDebug = iobs.LevelDebug
)

// NewTree returns an empty observer registry.
func NewTree() *Tree { return iobs.NewTree() }

// NewTracer samples every nth published update (n < 1 disables tracing).
func NewTracer(every int) *Tracer { return iobs.NewTracer(every) }

// NewLogger writes lines at or below level to w; a LevelQuiet logger is
// the nil discard logger.
func NewLogger(w io.Writer, level Level) *Logger { return iobs.NewLogger(w, level) }

// ServeMetrics binds addr and serves /metrics (the caller's snapshot as
// JSON), /debug/vars and /debug/pprof/* in the background.
func ServeMetrics(addr string, snapshot func() any) (*MetricsServer, error) {
	return iobs.ServeMetrics(addr, snapshot)
}
