// Package live exposes the real-time goroutine runtime: every overlay
// node is a goroutine, push connections are channels, and the distributed
// dissemination algorithm (Eqs. 3 and 7 of the paper) filters updates in
// real time. See d3t/internal/live for the implementation.
package live

import (
	d3t "d3t"
	ilive "d3t/internal/live"
)

type (
	// Options configures a live cluster (delays, observation hook,
	// failure detection, session cap).
	Options = ilive.Options
	// Cluster is a running set of node goroutines.
	Cluster = ilive.Cluster
	// Session is one client's channel subscription to a cluster
	// (Cluster.Subscribe): admission under the session cap with overflow
	// redirect, per-client filtered delivery, and silence-driven
	// migration to another repository when the serving one dies.
	Session = ilive.Session
	// ClientUpdate is one value pushed to a session.
	ClientUpdate = ilive.ClientUpdate
)

// NewCluster builds (but does not start) a live cluster over the overlay.
func NewCluster(o *d3t.Overlay, opts Options) *Cluster {
	return ilive.NewCluster(o, opts)
}

// NewDurableCluster builds (but does not start) a live cluster whose
// per-shard cores are backed by write-ahead logs under
// opts.Durability.Dir, recovering whatever state those directories
// already hold — a cluster rebuilt over the same directories resumes
// with its exact pre-crash values and edge filter state instead of
// rejoining cold.
func NewDurableCluster(o *d3t.Overlay, opts Options) (*Cluster, error) {
	return ilive.NewDurableCluster(o, opts)
}
