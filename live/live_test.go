package live

import (
	"testing"
	"time"

	"d3t"
)

func TestPublicLiveCluster(t *testing.T) {
	repos := []*d3t.Repository{d3t.NewRepository(1, 1)}
	repos[0].Needs["X"], repos[0].Serving["X"] = 0.5, 0.5
	overlay, err := d3t.NewLeLA(5, 1).Build(d3t.UniformNetwork(1, 0), repos, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(overlay, Options{})
	c.Seed("X", 1)
	c.Start()
	defer c.Stop()
	c.Publish("X", 2)
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if v, _ := c.Value(1, "X"); v == 2 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("update did not propagate: %v", c.Snapshot("X"))
}
