package d3t

// The cross-backend parity test: one mid-size configuration pushed
// through all three runtimes — the discrete-event simulator, the
// goroutine cluster, and the TCP cluster — must produce identical
// per-(repository, item) forward/suppress decision counts.
//
// This is the observable guarantee of the shared repository core
// (internal/node): per (repo, item), the delivered sequence is a
// deterministic function of the filter chain from the source — every
// edge is FIFO in all three transports and every filter decision is a
// pure function of the per-item edge state — so however the transports
// schedule, delay or interleave across items, the decisions must agree
// exactly. A divergence means a transport grew its own filter semantics
// again, which is precisely the drift this test exists to catch.
//
// The sweep extends the guarantee across the ingest layer: sharding
// (items partitioned across parallel workers/sub-simulations) must not
// change a single decision, and batching (window coalescing) must change
// them identically everywhere, because every backend feeds from the same
// coalesced schedule (ingest.CoalesceTraces).

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"d3t/internal/dissemination"
	"d3t/internal/ingest"
	"d3t/internal/netio"
	"d3t/internal/netsim"
	"d3t/internal/node"
	"d3t/internal/query"
	"d3t/internal/repository"
	"d3t/internal/serve"
	"d3t/internal/sim"
	"d3t/internal/trace"
	"d3t/internal/tree"

	ilive "d3t/internal/live"
)

const (
	parityRepos = 10
	parityItems = 6
	parityTicks = 250
	paritySeed  = 42
	parityCoop  = 4
)

// parityWorld builds one deterministic overlay + trace set. Each backend
// builds its own copy (the overlay is mutated by running), from identical
// inputs.
func parityWorld(t *testing.T) (*tree.Overlay, []*trace.Trace, map[string]float64) {
	t.Helper()
	traces := trace.GenerateSet(parityItems, parityTicks, sim.Second, paritySeed)
	items := make([]string, len(traces))
	initial := make(map[string]float64, len(traces))
	for i, tr := range traces {
		items[i] = tr.Item
		initial[tr.Item] = tr.Ticks[0].Value
	}
	repos := make([]*repository.Repository, parityRepos)
	for i := range repos {
		repos[i] = repository.New(repository.ID(i+1), parityCoop)
	}
	repository.AssignNeeds(repos, repository.Workload{
		Items:         items,
		SubscribeProb: 0.6,
		StringentFrac: 0.4,
		Seed:          paritySeed,
	})
	net := netsim.Uniform(parityRepos, sim.Millisecond)
	o, err := (&tree.LeLA{Seed: paritySeed}).Build(net, repos, parityCoop)
	if err != nil {
		t.Fatal(err)
	}
	return o, traces, initial
}

// decisionKey flattens (repo, item) for comparison.
func decisionKey(id repository.ID, item string) string {
	return fmt.Sprintf("%v/%s", id, item)
}

// srcTick is one value change of the source feed.
type srcTick struct {
	item  string
	value float64
}

// tickFeed groups the trace set's value changes by tick index — the
// batched publish schedule every concurrent backend replays.
func tickFeed(traces []*trace.Trace) [][]srcTick {
	maxLen := 0
	for _, tr := range traces {
		if tr.Len() > maxLen {
			maxLen = tr.Len()
		}
	}
	feed := make([][]srcTick, 0, maxLen)
	last := make(map[string]float64, len(traces))
	for _, tr := range traces {
		last[tr.Item] = tr.Ticks[0].Value
	}
	for i := 1; i < maxLen; i++ {
		var batch []srcTick
		for _, tr := range traces {
			if i >= tr.Len() || tr.Ticks[i].Value == last[tr.Item] {
				continue
			}
			last[tr.Item] = tr.Ticks[i].Value
			batch = append(batch, srcTick{tr.Item, tr.Ticks[i].Value})
		}
		if len(batch) > 0 {
			feed = append(feed, batch)
		}
	}
	return feed
}

// protoDecisions flattens the decisions of a sharded simulator run.
func protoDecisions(o *tree.Overlay, protos []dissemination.Protocol) map[string]node.Decisions {
	out := make(map[string]node.Decisions)
	for _, p := range protos {
		d, ok := p.(*dissemination.Distributed)
		if !ok {
			continue
		}
		for _, n := range o.Nodes {
			for item, dec := range d.Core(n.ID).EdgeDecisions() {
				k := decisionKey(n.ID, item)
				cur := out[k]
				cur.Forwarded += dec.Forwarded
				cur.Suppressed += dec.Suppressed
				out[k] = cur
			}
		}
	}
	return out
}

// waitForDecisions polls until collect equals want or the deadline
// passes, returning the final observation.
func waitForDecisions(want map[string]node.Decisions, collect func() map[string]node.Decisions) map[string]node.Decisions {
	deadline := time.Now().Add(20 * time.Second)
	for {
		got := collect()
		if decisionsEqual(want, got) || time.Now().After(deadline) {
			return got
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func decisionsEqual(a, b map[string]node.Decisions) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func diffDecisions(t *testing.T, backend string, want, got map[string]node.Decisions) {
	t.Helper()
	for k, w := range want {
		if g, ok := got[k]; !ok || g != w {
			t.Errorf("%s: %s = %+v, want %+v", backend, k, got[k], w)
		}
	}
	for k, g := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: unexpected decisions %s = %+v", backend, k, g)
		}
	}
}

// TestCrossBackendParity sweeps the ingest configuration over
// {Shards: 1, 4} x {BatchTicks: 0, 5} and, for every combination, runs
// the same configuration through sim, live and netio, requiring
// identical per-(repo, item) decision counts across all three.
func TestCrossBackendParity(t *testing.T) {
	if testing.Short() {
		t.Skip("three full backends per sweep point; skipped in -short")
	}
	for _, tc := range []struct{ shards, batch int }{
		{1, 0},
		{4, 0},
		{1, 5},
		{4, 5},
	} {
		t.Run(fmt.Sprintf("shards=%d,batch=%d", tc.shards, tc.batch), func(t *testing.T) {
			parityCase(t, tc.shards, tc.batch)
		})
	}
}

// TestCrossBackendQueryParity extends the parity guarantee to the query
// layer: one query session, subscribed at the same repository in all
// three backends, must report identical view-evaluator eval/recompute
// counts. The counts depend only on the delivery sequence the serving
// repository's per-client filter produces — resync deliveries at
// admission plus every forwarded input update — so however the backends
// schedule, the evaluation work must agree exactly. A divergence means a
// transport grew its own query semantics.
func TestCrossBackendQueryParity(t *testing.T) {
	if testing.Short() {
		t.Skip("three full backends; skipped in -short")
	}
	// The query's inputs must come from repository 1's serving set (the
	// session is homed there in every backend and live/netio admission
	// requires the items to be served stringently enough).
	o, traces, initial := parityWorld(t)
	r1 := o.Node(1)
	var served []string
	for x := range r1.Serving {
		served = append(served, x)
	}
	sort.Strings(served)
	if len(served) < 2 {
		t.Fatalf("repository 1 serves %d items; the query parity case needs 2", len(served))
	}
	a, b := served[0], served[1]
	// cQ = 2x the looser serving tolerance: loose enough that the avg
	// allocation (= cQ per input) passes admission at repository 1, tight
	// enough that the per-client filter still forwards real updates.
	tolA, _ := r1.ServingTolerance(a)
	tolB, _ := r1.ServingTolerance(b)
	cq := 2 * float64(max(tolA, tolB))
	q := query.Query{Name: "qparity", Kind: query.Avg, Items: []string{a, b}, Window: 1, Tolerance: cq}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}

	// --- Simulator: a serving fleet observing the run is the reference.
	// Seed BEFORE attaching the query, so the admission resync delivers
	// the seeded copies through the counted path — exactly what a
	// live/netio subscribe against a seeded cluster does.
	fleet, err := serve.NewFleet(o.Net, o.Repos(), serve.Options{Queries: []query.Query{q}, Interval: 1})
	if err != nil {
		t.Fatal(err)
	}
	fleet.Seed(initial)
	if _, err := fleet.AttachQueries(); err != nil {
		t.Fatal(err)
	}
	qs := fleet.QuerySession(q.Name)
	if qs.Session().Repo != 1 {
		t.Fatalf("sim query landed at %v, want repository 1", qs.Session().Repo)
	}
	if _, err := dissemination.Run(o, traces, dissemination.NewDistributed(), dissemination.Config{Observer: fleet}); err != nil {
		t.Fatal(err)
	}
	wantEvals, wantRecs := qs.Evals(), qs.Recomputes()
	if wantEvals <= 2 {
		t.Fatalf("sim query saw only the %d resync deliveries (cq=%v too loose); the parity case is vacuous", wantEvals, cq)
	}

	// Every concurrent backend replays the identical coalesced schedule.
	icfg := ingest.Config{Shards: 1, BatchTicks: 0}
	_, freshTraces, _ := parityWorld(t)
	coalesced, _ := ingest.CoalesceTraces(freshTraces, icfg.Window())
	feed := tickFeed(coalesced)
	waitCounts := func(get func() (uint64, uint64)) (uint64, uint64) {
		deadline := time.Now().Add(20 * time.Second)
		for {
			evals, recs := get()
			if (evals == wantEvals && recs == wantRecs) || time.Now().After(deadline) {
				return evals, recs
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// --- Goroutine cluster: subscribe after seeding, before the feed. ---
	o2, _, _ := parityWorld(t)
	cluster := ilive.NewCluster(o2, ilive.Options{Buffer: 1024, QueryInterval: 1})
	for item, v := range initial {
		cluster.Seed(item, v)
	}
	sess, err := cluster.SubscribeQuery(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Repo() != 1 {
		t.Fatalf("live query landed at %v, want repository 1", sess.Repo())
	}
	cluster.Start()
	for _, batchTicks := range feed {
		ups := make([]ilive.Update, len(batchTicks))
		for i, u := range batchTicks {
			ups[i] = ilive.Update{Item: u.item, Value: u.value}
		}
		if !cluster.PublishBatch(ups) {
			t.Fatal("live cluster stopped")
		}
	}
	liveEvals, liveRecs := waitCounts(sess.QueryCounts)
	cluster.Stop()
	if liveEvals != wantEvals || liveRecs != wantRecs {
		t.Errorf("live: evals/recomputes = %d/%d, want %d/%d", liveEvals, liveRecs, wantEvals, wantRecs)
	}

	// --- TCP cluster: the subscribe frame carries the query spec. ---
	o3, _, initial3 := parityWorld(t)
	tcp, err := netio.StartCluster(o3, initial3)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	qc, err := netio.SubscribeQuery(q, tcp.Nodes[1].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	for _, batchTicks := range feed {
		ups := make([]netio.Update, len(batchTicks))
		for i, u := range batchTicks {
			ups[i] = netio.Update{Item: u.item, Value: u.value}
		}
		if err := tcp.Source().PublishBatch(ups); err != nil {
			t.Fatalf("publish batch: %v", err)
		}
	}
	netEvals, netRecs := waitCounts(func() (uint64, uint64) { return tcp.Nodes[1].QueryCounts(q.Name) })
	if netEvals != wantEvals || netRecs != wantRecs {
		t.Errorf("netio: evals/recomputes = %d/%d, want %d/%d", netEvals, netRecs, wantEvals, wantRecs)
	}
}

func parityCase(t *testing.T, shards, batch int) {
	icfg := ingest.Config{Shards: shards, BatchTicks: batch}

	// --- Simulator (sharded ingest runner): the reference decisions. ---
	o, traces, _ := parityWorld(t)
	res, _, protos, err := ingest.RunSim(o, traces,
		func() dissemination.Protocol { return dissemination.NewDistributed() },
		dissemination.Config{}, icfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SourceTicks == 0 {
		t.Fatal("simulator disseminated nothing")
	}
	want := protoDecisions(o, protos)
	if len(want) == 0 {
		t.Fatal("simulator produced no decisions; the parity test is vacuous")
	}

	// Every concurrent backend replays the identical coalesced schedule.
	_, freshTraces, initial := parityWorld(t)
	coalesced, _ := ingest.CoalesceTraces(freshTraces, icfg.Window())
	feed := tickFeed(coalesced)

	// --- Goroutine cluster, sharded per the same item partition. ---
	o2, _, _ := parityWorld(t)
	cluster := ilive.NewCluster(o2, ilive.Options{Buffer: 1024, Shards: shards})
	for item, v := range initial {
		cluster.Seed(item, v)
	}
	cluster.Start()
	for _, batchTicks := range feed {
		ups := make([]ilive.Update, len(batchTicks))
		for i, u := range batchTicks {
			ups[i] = ilive.Update{Item: u.item, Value: u.value}
		}
		if !cluster.PublishBatch(ups) {
			t.Fatal("live cluster stopped")
		}
	}
	liveGot := waitForDecisions(want, func() map[string]node.Decisions {
		out := make(map[string]node.Decisions)
		for _, n := range o2.Nodes {
			for item, d := range cluster.Decisions(n.ID) {
				out[decisionKey(n.ID, item)] = d
			}
		}
		return out
	})
	cluster.Stop()
	diffDecisions(t, "live", want, liveGot)

	// --- TCP cluster: batches ride multi-update frames. ---
	o3, _, initial3 := parityWorld(t)
	tcp, err := netio.StartCluster(o3, initial3)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	for _, batchTicks := range feed {
		ups := make([]netio.Update, len(batchTicks))
		for i, u := range batchTicks {
			ups[i] = netio.Update{Item: u.item, Value: u.value}
		}
		if err := tcp.Source().PublishBatch(ups); err != nil {
			t.Fatalf("publish batch: %v", err)
		}
	}
	netGot := waitForDecisions(want, func() map[string]node.Decisions {
		out := make(map[string]node.Decisions)
		for _, n := range tcp.Nodes {
			for item, d := range n.Decisions() {
				out[decisionKey(n.ID(), item)] = d
			}
		}
		return out
	})
	diffDecisions(t, "netio", want, netGot)
}
