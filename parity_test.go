package d3t

// The cross-backend parity test: one mid-size configuration pushed
// through all three runtimes — the discrete-event simulator, the
// goroutine cluster, and the TCP cluster — must produce identical
// per-(repository, item) forward/suppress decision counts.
//
// This is the observable guarantee of the shared repository core
// (internal/node): per (repo, item), the delivered sequence is a
// deterministic function of the filter chain from the source — every
// edge is FIFO in all three transports and every filter decision is a
// pure function of the per-item edge state — so however the transports
// schedule, delay or interleave across items, the decisions must agree
// exactly. A divergence means a transport grew its own filter semantics
// again, which is precisely the drift this test exists to catch.

import (
	"fmt"
	"testing"
	"time"

	"d3t/internal/dissemination"
	"d3t/internal/netio"
	"d3t/internal/netsim"
	"d3t/internal/node"
	"d3t/internal/repository"
	"d3t/internal/sim"
	"d3t/internal/trace"
	"d3t/internal/tree"

	ilive "d3t/internal/live"
)

const (
	parityRepos = 10
	parityItems = 6
	parityTicks = 250
	paritySeed  = 42
	parityCoop  = 4
)

// parityWorld builds one deterministic overlay + trace set. Each backend
// builds its own copy (the overlay is mutated by running), from identical
// inputs.
func parityWorld(t *testing.T) (*tree.Overlay, []*trace.Trace, map[string]float64) {
	t.Helper()
	traces := trace.GenerateSet(parityItems, parityTicks, sim.Second, paritySeed)
	items := make([]string, len(traces))
	initial := make(map[string]float64, len(traces))
	for i, tr := range traces {
		items[i] = tr.Item
		initial[tr.Item] = tr.Ticks[0].Value
	}
	repos := make([]*repository.Repository, parityRepos)
	for i := range repos {
		repos[i] = repository.New(repository.ID(i+1), parityCoop)
	}
	repository.AssignNeeds(repos, repository.Workload{
		Items:         items,
		SubscribeProb: 0.6,
		StringentFrac: 0.4,
		Seed:          paritySeed,
	})
	net := netsim.Uniform(parityRepos, sim.Millisecond)
	o, err := (&tree.LeLA{Seed: paritySeed}).Build(net, repos, parityCoop)
	if err != nil {
		t.Fatal(err)
	}
	return o, traces, initial
}

// decisionKey flattens (repo, item) for comparison.
func decisionKey(id repository.ID, item string) string {
	return fmt.Sprintf("%v/%s", id, item)
}

// flatten renders a full decision map as sorted-comparable content.
func flattenDecisions(per map[repository.ID]map[string]node.Decisions) map[string]node.Decisions {
	out := make(map[string]node.Decisions)
	for id, m := range per {
		for item, d := range m {
			out[decisionKey(id, item)] = d
		}
	}
	return out
}

// publishAll feeds every value-changing tick (the same set the simulator
// schedules) through publish, per item in trace order.
func publishAll(t *testing.T, traces []*trace.Trace, publish func(item string, v float64) error) {
	t.Helper()
	for _, tr := range traces {
		last := tr.Ticks[0].Value
		for _, tk := range tr.Ticks[1:] {
			if tk.Value == last {
				continue
			}
			last = tk.Value
			if err := publish(tr.Item, tk.Value); err != nil {
				t.Fatalf("publish %s=%v: %v", tr.Item, tk.Value, err)
			}
		}
	}
}

// waitForDecisions polls until collect equals want or the deadline
// passes, returning the final observation.
func waitForDecisions(want map[string]node.Decisions, collect func() map[string]node.Decisions) map[string]node.Decisions {
	deadline := time.Now().Add(20 * time.Second)
	for {
		got := collect()
		if decisionsEqual(want, got) || time.Now().After(deadline) {
			return got
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func decisionsEqual(a, b map[string]node.Decisions) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func diffDecisions(t *testing.T, backend string, want, got map[string]node.Decisions) {
	t.Helper()
	for k, w := range want {
		if g, ok := got[k]; !ok || g != w {
			t.Errorf("%s: %s = %+v, want %+v", backend, k, got[k], w)
		}
	}
	for k, g := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: unexpected decisions %s = %+v", backend, k, g)
		}
	}
}

// TestCrossBackendParity runs the same configuration through sim, live
// and netio and requires identical per-(repo, item) decision counts.
func TestCrossBackendParity(t *testing.T) {
	if testing.Short() {
		t.Skip("three full backends; skipped in -short")
	}

	// --- Simulator: the reference decisions. ---
	o, traces, _ := parityWorld(t)
	p := dissemination.NewDistributed()
	if _, err := dissemination.Run(o, traces, p, dissemination.Config{}); err != nil {
		t.Fatal(err)
	}
	simPer := make(map[repository.ID]map[string]node.Decisions)
	for _, n := range o.Nodes {
		if d := p.Core(n.ID).EdgeDecisions(); len(d) > 0 {
			simPer[n.ID] = d
		}
	}
	want := flattenDecisions(simPer)
	if len(want) == 0 {
		t.Fatal("simulator produced no decisions; the parity test is vacuous")
	}

	// --- Goroutine cluster. ---
	o2, traces2, initial2 := parityWorld(t)
	cluster := ilive.NewCluster(o2, ilive.Options{Buffer: 1024})
	for item, v := range initial2 {
		cluster.Seed(item, v)
	}
	cluster.Start()
	publishAll(t, traces2, func(item string, v float64) error {
		if !cluster.Publish(item, v) {
			return fmt.Errorf("live cluster stopped")
		}
		return nil
	})
	liveGot := waitForDecisions(want, func() map[string]node.Decisions {
		per := make(map[repository.ID]map[string]node.Decisions)
		for _, n := range o2.Nodes {
			if d := cluster.Decisions(n.ID); len(d) > 0 {
				per[n.ID] = d
			}
		}
		return flattenDecisions(per)
	})
	cluster.Stop()
	diffDecisions(t, "live", want, liveGot)

	// --- TCP cluster. ---
	o3, traces3, initial3 := parityWorld(t)
	tcp, err := netio.StartCluster(o3, initial3)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	publishAll(t, traces3, func(item string, v float64) error {
		return tcp.Source().Publish(item, v)
	})
	netGot := waitForDecisions(want, func() map[string]node.Decisions {
		per := make(map[repository.ID]map[string]node.Decisions)
		for _, n := range tcp.Nodes {
			if d := n.Decisions(); len(d) > 0 {
				per[n.ID()] = d
			}
		}
		return flattenDecisions(per)
	})
	diffDecisions(t, "netio", want, netGot)
}
