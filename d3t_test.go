package d3t

import (
	"testing"
)

// TestFacadeEndToEnd exercises the public API the way a downstream user
// would: generate a workload, build an overlay, run both exact protocols
// under ideal conditions, and check the guarantee.
func TestFacadeEndToEnd(t *testing.T) {
	const repos = 10
	net := UniformNetwork(repos, 0)
	traces := GenerateTraces(8, 200, Second, 42)

	members := make([]*Repository, repos)
	for i := range members {
		members[i] = NewRepository(RepositoryID(i+1), 3)
		for j, tr := range traces {
			if (i+j)%2 == 0 {
				members[i].Needs[tr.Item] = 0.05
				members[i].Serving[tr.Item] = 0.05
			}
		}
	}
	overlay, err := NewLeLA(5, 1).Build(net, members, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Protocol{NewDistributed(), NewCentralized()} {
		res, err := RunPush(overlay, traces, p, PushConfig{CompDelay: -1})
		if err != nil {
			t.Fatal(err)
		}
		if f := res.Report.SystemFidelity(); f != 1 {
			t.Errorf("%s fidelity %v under ideal conditions", p.Name(), f)
		}
	}
}

func TestFacadeExperiment(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Repositories, cfg.Routers = 10, 30
	cfg.Items, cfg.Ticks = 8, 200
	out, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Fidelity <= 0 || out.Fidelity > 1 {
		t.Errorf("fidelity %v out of range", out.Fidelity)
	}
}

func TestFacadeScalesAndFigures(t *testing.T) {
	if got := len(FigureIDs()); got < 15 {
		t.Errorf("only %d figures registered", got)
	}
	if s := SmallScale(); s.Repositories >= PaperScale().Repositories {
		t.Error("small scale not smaller than paper scale")
	}
}

func TestFacadeCoopDegree(t *testing.T) {
	if got := ControlledCoopDegree(Milliseconds(25), Milliseconds(12.5), 100, 30); got != 6 {
		t.Errorf("ControlledCoopDegree = %d, want 6", got)
	}
}

func TestFacadeClientLayer(t *testing.T) {
	// End-to-end through the public API: clients drive repository needs,
	// the overlay is built from the derived needs, dissemination runs.
	traces := GenerateTraces(6, 150, Second, 5)
	items := make([]string, len(traces))
	for i, tr := range traces {
		items[i] = tr.Item
	}
	repos := make([]*Repository, 5)
	ids := make([]RepositoryID, 5)
	for i := range repos {
		repos[i] = NewRepository(RepositoryID(i+1), 3)
		ids[i] = RepositoryID(i + 1)
	}
	clients, err := GenerateClients(ClientWorkload{
		Clients: 30, Repos: ids, Items: items, StringentFrac: 0.5, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := DeriveNeeds(repos, clients); err != nil {
		t.Fatal(err)
	}
	overlay, err := NewLeLA(5, 7).Build(UniformNetwork(5, 0), repos, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPush(overlay, traces, NewDistributed(), PushConfig{CompDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	if f := res.Report.SystemFidelity(); f != 1 {
		t.Errorf("client-derived overlay fidelity %v under ideal conditions, want 1", f)
	}
}

func TestFacadeDynamicMembership(t *testing.T) {
	net := UniformNetwork(6, 0) // capacity 6, join 4 later
	members := make([]*Repository, 4)
	for i := range members {
		members[i] = NewRepository(RepositoryID(i+1), 2)
		members[i].Needs["A"], members[i].Serving["A"] = 0.1, 0.1
	}
	lela := NewLeLA(5, 3)
	overlay, err := lela.Build(net, members, 2)
	if err != nil {
		t.Fatal(err)
	}
	joiner := NewRepository(5, 2)
	joiner.Needs["A"], joiner.Serving["A"] = 0.05, 0.05
	if err := lela.Insert(overlay, joiner); err != nil {
		t.Fatal(err)
	}
	if err := lela.UpdateNeeds(overlay, 2, map[string]Requirement{"A": 0.01}); err != nil {
		t.Fatal(err)
	}
	if err := overlay.Validate(); err != nil {
		t.Fatal(err)
	}
	// The joiner is a leaf: it may depart.
	if err := overlay.Remove(5); err != nil {
		t.Fatal(err)
	}
}

func TestFacadePull(t *testing.T) {
	net := UniformNetwork(4, 0)
	traces := GenerateTraces(4, 100, Second, 7)
	members := make([]*Repository, 4)
	for i := range members {
		members[i] = NewRepository(RepositoryID(i+1), 2)
		members[i].Needs[traces[0].Item] = 0.1
		members[i].Serving[traces[0].Item] = 0.1
	}
	overlay, err := NewLeLA(5, 2).Build(net, members, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPull(overlay, traces[:1], PullConfig{Mode: StaticTTR, TTR: 5 * Second, CompDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Messages == 0 {
		t.Error("pull run sent no messages")
	}
	lease, err := RunLease(overlay, traces[:1], LeaseConfig{Duration: 20 * Second})
	if err != nil {
		t.Fatal(err)
	}
	if lease.Protocol != "lease-push" {
		t.Errorf("lease protocol %q", lease.Protocol)
	}
}

// rampWorkload is a custom workload family registered through the public
// API: every item ramps linearly, so any delivery gap shows up as
// fidelity loss deterministically.
type rampWorkload struct{}

func (rampWorkload) Name() string     { return "test-ramp" }
func (rampWorkload) Describe() string { return "linear ramps (root-package test fixture)" }
func (rampWorkload) Generate(spec WorkloadSpec) ([]*Trace, error) {
	interval := spec.Interval
	if interval <= 0 {
		interval = Second
	}
	traces := make([]*Trace, spec.Items)
	for i := range traces {
		tr := &Trace{Item: "RAMP" + string(rune('A'+i%26))}
		for k := 0; k < spec.Ticks; k++ {
			tr.Ticks = append(tr.Ticks, Tick{
				At:    Time(k) * interval,
				Value: 100 + float64(i) + float64(k)*0.05,
			})
		}
		traces[i] = tr
	}
	return traces, nil
}

// TestFacadeResilienceSweep exercises the re-exported surface end to end:
// a custom workload registered via RegisterWorkload, fault-plan configs
// built from the public Config, and a batch run through NewSweepRunner —
// so any re-export drift in these entry points fails tier-1.
func TestFacadeResilienceSweep(t *testing.T) {
	RegisterWorkload(rampWorkload{})
	names := WorkloadNames()
	found := false
	for _, n := range names {
		if n == "test-ramp" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered workload missing from %v", names)
	}

	base := DefaultConfig()
	base.Repositories, base.Routers = 12, 36
	base.Items, base.Ticks = 6, 200
	base.Workload = "test-ramp"

	faulty := base
	faulty.Faults = "crash:max@30"

	runner := NewSweepRunner(2)
	outs, err := runner.RunAll([]Config{base, faulty})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Resilience != nil {
		t.Error("fault-free sweep point carries resilience stats")
	}
	r := outs[1].Resilience
	if r == nil {
		t.Fatal("faulty sweep point has no resilience stats")
	}
	if r.Crashes != 1 {
		t.Errorf("crashes = %d, want 1", r.Crashes)
	}
	for i, out := range outs {
		if out.Fidelity <= 0 || out.Fidelity > 1 {
			t.Errorf("point %d fidelity %v out of range", i, out.Fidelity)
		}
	}
}

// TestFacadeClientServing exercises the serving layer end to end through
// the public API: clients attach as sessions with their own tolerances,
// drive repository needs, ride the run as its observer, and report
// filtered delivery plus client-observed fidelity.
func TestFacadeClientServing(t *testing.T) {
	const repos = 6
	net := UniformNetwork(repos, 0)
	traces := GenerateTraces(5, 200, Second, 21)
	items := make([]string, len(traces))
	for i, tr := range traces {
		items[i] = tr.Item
	}
	members := make([]*Repository, repos)
	ids := make([]RepositoryID, repos)
	for i := range members {
		members[i] = NewRepository(RepositoryID(i+1), 3)
		ids[i] = RepositoryID(i + 1)
	}
	clients, err := GenerateClients(ClientWorkload{
		Clients: 24, Repos: ids, Items: items, StringentFrac: 0.5, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParseSessionPlan("churn:10:20", len(clients), 200, Second, 23)
	if err != nil {
		t.Fatal(err)
	}
	// No session cap: with one, a re-arriving session can find its home
	// repository full and legitimately land somewhere that serves it less
	// stringently — a real fidelity cost the capped tests accept. Uncapped
	// and fault-free, the serving layer must be lossless.
	fleet, err := NewClientFleet(net, members, FleetOptions{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	// Attach before deriving needs: placement decides which repository
	// each client's tolerance lands on.
	if err := fleet.AttachAll(clients); err != nil {
		t.Fatal(err)
	}
	if err := DeriveNeeds(members, clients); err != nil {
		t.Fatal(err)
	}
	overlay, err := NewLeLA(5, 24).Build(net, members, 3)
	if err != nil {
		t.Fatal(err)
	}
	initial := make(map[string]float64, len(traces))
	for _, tr := range traces {
		initial[tr.Item] = tr.Ticks[0].Value
	}
	fleet.Seed(initial)
	res, err := RunPush(overlay, traces, NewDistributed(), PushConfig{CompDelay: -1, Observer: fleet})
	if err != nil {
		t.Fatal(err)
	}
	if f := res.Report.SystemFidelity(); f != 1 {
		t.Errorf("repository fidelity %v under ideal conditions, want 1", f)
	}
	stats := fleet.Finalize(res.Horizon)
	if stats.Sessions != 24 {
		t.Errorf("sessions = %d, want 24", stats.Sessions)
	}
	if stats.Delivered == 0 {
		t.Error("no update was delivered to any session")
	}
	// Under zero delays every delivered update reaches the client the
	// instant the source moves, so client-observed fidelity is perfect
	// too — the Eq. 3 leaf filter withholds only sub-tolerance moves.
	if stats.MeanFidelity != 1 {
		t.Errorf("client fidelity %v under ideal conditions, want 1", stats.MeanFidelity)
	}
	fid := fleet.ClientFidelity(res.Horizon)
	if len(fid) != 24 {
		t.Errorf("per-client fidelity has %d entries, want 24", len(fid))
	}
	for name, f := range fid {
		if f != 1 {
			t.Errorf("client %s fidelity %v, want 1", name, f)
		}
	}
}

// TestFacadeClientExperiment runs the serving layer through the
// experiment path: Config.Clients populates Outcome.Clients.
func TestFacadeClientExperiment(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Repositories, cfg.Routers = 10, 30
	cfg.Items, cfg.Ticks = 8, 200
	cfg.Clients, cfg.SessionCap = 30, 5
	out, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Clients == nil {
		t.Fatal("client experiment carries no client stats")
	}
	if out.Clients.Sessions != 30 {
		t.Errorf("sessions = %d, want 30", out.Clients.Sessions)
	}
	if out.Clients.MeanFidelity <= 0 || out.Clients.MeanFidelity > 1 {
		t.Errorf("client fidelity %v out of range", out.Clients.MeanFidelity)
	}
}

// TestFacadeRunResilient drives the resilient runner directly through the
// re-exported building blocks.
func TestFacadeRunResilient(t *testing.T) {
	const repos = 8
	net := UniformNetwork(repos, 0)
	traces := GenerateTraces(4, 200, Second, 9)
	members := make([]*Repository, repos)
	for i := range members {
		members[i] = NewRepository(RepositoryID(i+1), 2)
		for j, tr := range traces {
			if (i+j)%2 == 0 {
				members[i].Needs[tr.Item] = 0.05
				members[i].Serving[tr.Item] = 0.05
			}
		}
	}
	lela := NewLeLA(5, 1)
	overlay, err := lela.Build(net, members, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParseFaultPlan("crash:max@20", repos, 200, Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunResilient(overlay, lela, traces, NewDistributed(), ResilienceConfig{}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilience.Crashes != 1 {
		t.Errorf("crashes = %d, want 1", res.Resilience.Crashes)
	}
	if f := res.Report.SystemFidelity(); f <= 0 || f > 1 {
		t.Errorf("fidelity %v out of range", f)
	}
}
