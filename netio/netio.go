// Package netio exposes the TCP deployment runtime: every overlay node is
// a network server pushing filtered updates to its dependents over TCP
// using the d3t/internal/wire binary frame format. See d3t/internal/netio
// for the implementation.
package netio

import (
	d3t "d3t"
	inetio "d3t/internal/netio"
)

type (
	// Node is one running dissemination server.
	Node = inetio.Node
	// NodeConfig describes a node: its serving set, dependents, listen
	// address, parents and client-session policy (cap, redirect peers).
	NodeConfig = inetio.NodeConfig
	// Cluster runs a whole overlay on localhost.
	Cluster = inetio.Cluster
	// Client is a remote client session subscribed to a node over TCP:
	// it receives only the wire-encoded updates that exceed its own
	// tolerances, follows cap redirects, and migrates to the next known
	// address when the serving node dies.
	Client = inetio.Client
	// ClientUpdate is one value pushed to a remote client session.
	ClientUpdate = inetio.ClientUpdate
	// ClusterOptions configures a cluster start's observability: the
	// obs tree, the update-trace sampling rate, and the HTTP metrics
	// address. The zero value disables all three (StartCluster's
	// behavior).
	ClusterOptions = inetio.ClusterOptions
)

// Start launches a single node.
func Start(cfg NodeConfig) (*Node, error) { return inetio.Start(cfg) }

// Subscribe opens a remote client session against the given node
// addresses: the first that accepts (following redirects) serves it, the
// rest are failover candidates.
func Subscribe(name string, wants map[string]d3t.Requirement, addrs ...string) (*Client, error) {
	return inetio.Subscribe(name, wants, addrs...)
}

// StartCluster brings up every node of the overlay on localhost, parents
// before children, seeded with the initial values.
func StartCluster(o *d3t.Overlay, initial map[string]float64) (*Cluster, error) {
	return inetio.StartCluster(o, initial)
}

// StartClusterWith is StartCluster with observability armed: per-node
// counters and latency histograms in opts.Obs, sampled update traces
// every opts.TraceEvery publishes, and a cluster-wide HTTP metrics
// endpoint on opts.MetricsAddr.
func StartClusterWith(o *d3t.Overlay, initial map[string]float64, opts ClusterOptions) (*Cluster, error) {
	return inetio.StartClusterWith(o, initial, opts)
}
