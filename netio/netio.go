// Package netio exposes the TCP deployment runtime: every overlay node is
// a network server pushing filtered updates to its dependents over
// gob-encoded TCP connections. See d3t/internal/netio for the
// implementation.
package netio

import (
	d3t "d3t"
	inetio "d3t/internal/netio"
)

type (
	// Node is one running dissemination server.
	Node = inetio.Node
	// NodeConfig describes a node: its serving set, dependents, listen
	// address and parents.
	NodeConfig = inetio.NodeConfig
	// Cluster runs a whole overlay on localhost.
	Cluster = inetio.Cluster
)

// Start launches a single node.
func Start(cfg NodeConfig) (*Node, error) { return inetio.Start(cfg) }

// StartCluster brings up every node of the overlay on localhost, parents
// before children, seeded with the initial values.
func StartCluster(o *d3t.Overlay, initial map[string]float64) (*Cluster, error) {
	return inetio.StartCluster(o, initial)
}
