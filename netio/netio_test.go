package netio

import (
	"testing"
	"time"

	"d3t"
)

func TestPublicTCPCluster(t *testing.T) {
	repos := []*d3t.Repository{d3t.NewRepository(1, 1)}
	repos[0].Needs["X"], repos[0].Serving["X"] = 0.5, 0.5
	overlay, err := d3t.NewLeLA(5, 1).Build(d3t.UniformNetwork(1, 0), repos, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := StartCluster(overlay, map[string]float64{"X": 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Source().Publish("X", 2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if v, _ := cl.Nodes[1].Value("X"); v == 2 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("update did not propagate over TCP")
}
