module d3t

go 1.24
