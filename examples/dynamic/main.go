// Dynamic: overlay membership churn. Repositories join a running overlay
// one at a time (LeLA is inherently incremental), a client population
// shifts a repository's coherency needs (the algorithm is reapplied, per
// Section 4 of the paper), and leaves depart — with the overlay's
// invariants checked and fidelity measured after every phase.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"d3t"
)

func main() {
	const capacity = 24 // network sized with room for joiners
	traces := d3t.GenerateTraces(12, 900, d3t.Second, 77)

	// Phase 1: twelve founding repositories.
	founders := make([]*d3t.Repository, 12)
	for i := range founders {
		founders[i] = d3t.NewRepository(d3t.RepositoryID(i+1), 3)
		for j, tr := range traces {
			if (i+j)%2 == 0 {
				founders[i].Needs[tr.Item] = 0.25
				founders[i].Serving[tr.Item] = 0.25
			}
		}
	}
	net, err := d3t.GenerateNetwork(d3t.NetworkConfig{Repositories: capacity, Routers: 80, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	lela := d3t.NewLeLA(5, 9)
	overlay, err := lela.Build(net, founders, 3)
	if err != nil {
		log.Fatal(err)
	}
	report("after build (12 repositories)", overlay, traces)

	// Phase 2: eight newcomers join the live overlay.
	for j := 0; j < 8; j++ {
		q := d3t.NewRepository(d3t.RepositoryID(13+j), 3)
		for k := j; k < j+4 && k < len(traces); k++ {
			q.Needs[traces[k].Item] = 0.1
			q.Serving[traces[k].Item] = 0.1
		}
		if err := lela.Insert(overlay, q); err != nil {
			log.Fatal(err)
		}
	}
	if err := overlay.Validate(); err != nil {
		log.Fatalf("invariants broken after joins: %v", err)
	}
	report("after 8 joins (20 repositories)", overlay, traces)

	// Phase 3: repository 5's clients get demanding — every tolerance
	// tightens 10x and it picks up two new items. The serving chains
	// toward the source are augmented in place.
	newNeeds := map[string]d3t.Requirement{}
	r5 := overlay.Node(5)
	for item, c := range r5.Needs {
		newNeeds[item] = c / 10
	}
	newNeeds[traces[1].Item] = 0.02
	newNeeds[traces[3].Item] = 0.02
	if err := lela.UpdateNeeds(overlay, 5, newNeeds); err != nil {
		log.Fatal(err)
	}
	if err := overlay.Validate(); err != nil {
		log.Fatalf("invariants broken after needs update: %v", err)
	}
	report("after repo 5 tightened 10x", overlay, traces)

	// Phase 4: leaves depart.
	departed := 0
	for id := d3t.RepositoryID(20); id >= 13 && departed < 3; id-- {
		if overlay.Node(id).NumChildren() == 0 {
			if err := overlay.Remove(id); err != nil {
				log.Fatal(err)
			}
			departed++
		}
	}
	if err := overlay.Validate(); err != nil {
		log.Fatalf("invariants broken after departures: %v", err)
	}
	fmt.Printf("\n%d leaves departed; overlay still valid.\n", departed)
}

// report runs the distributed protocol over the current overlay and
// prints fidelity and shape.
func report(phase string, overlay *d3t.Overlay, traces []*d3t.Trace) {
	res, err := d3t.RunPush(overlay, traces, d3t.NewDistributed(), d3t.PushConfig{
		CompDelay: d3t.Milliseconds(12.5),
	})
	if err != nil {
		log.Fatal(err)
	}
	m := overlay.ComputeMetrics()
	fmt.Printf("%-32s fidelity %.4f  p10 %.4f  msgs %6d  %v\n",
		phase, res.Report.SystemFidelity(), res.Report.Percentile(10), res.Stats.Messages, m)
}
