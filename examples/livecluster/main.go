// Livecluster: the dissemination overlay as real TCP servers on
// localhost. Each repository is a server process-alike that accepts push
// connections from dependents; the source streams a synthetic trace and
// the example reports what reached each tier.
//
//	go run ./examples/livecluster
//	go run ./examples/livecluster -metrics-addr localhost:6060
//
// With -metrics-addr set, the cluster serves live per-node counters and
// latency histograms as JSON on /metrics (plus expvar and pprof) while
// it disseminates, and the final report includes sampled update traces.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"d3t"
	"d3t/netio"
	"d3t/obs"
)

func main() {
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	traceEvery := flag.Int("trace-every", 25, "sample every nth published update into a hop-by-hop trace (0 = off)")
	flag.Parse()
	// A small two-tier deployment: 2 regional hubs (tight tolerance)
	// feeding 4 edge caches (loose tolerance).
	const item = "EURUSD"
	repos := make([]*d3t.Repository, 6)
	for i := range repos {
		repos[i] = d3t.NewRepository(d3t.RepositoryID(i+1), 2)
		tol := d3t.Requirement(0.0005) // hubs: half a pip... of a cent
		if i >= 2 {
			tol = 0.0030 // edges
		}
		repos[i].Needs[item] = tol
		repos[i].Serving[item] = tol
	}
	overlay, err := d3t.NewLeLA(5, 9).Build(d3t.UniformNetwork(len(repos), 0), repos, 2)
	if err != nil {
		log.Fatal(err)
	}

	tr, err := d3t.GenerateTrace(d3t.TraceConfig{
		Item: item, Ticks: 300, Start: 1.0850, Low: 1.0800, High: 1.0900,
		Step: 0.002, Quantum: 0.0001, Seed: 11, // FX quotes move in pips
	})
	if err != nil {
		log.Fatal(err)
	}

	tree := obs.NewTree()
	cluster, err := netio.StartClusterWith(overlay, map[string]float64{item: tr.Ticks[0].Value},
		netio.ClusterOptions{Obs: tree, TraceEvery: *traceEvery, MetricsAddr: *metricsAddr})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fmt.Printf("6 repository servers listening on localhost:\n")
	for i := 1; i < len(cluster.Nodes); i++ {
		fmt.Printf("  %v @ %s\n", cluster.Nodes[i].ID(), cluster.Nodes[i].Addr())
	}
	if addr := cluster.MetricsAddr(); addr != "" {
		fmt.Printf("metrics at http://%s/metrics (pprof under /debug/pprof/)\n", addr)
	}

	published := 0
	last := tr.Ticks[0].Value
	for _, tk := range tr.Ticks[1:] {
		if tk.Value == last {
			continue
		}
		last = tk.Value
		if err := cluster.Source().Publish(item, tk.Value); err != nil {
			log.Fatal(err)
		}
		published++
		time.Sleep(time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond) // drain

	src := tr.Ticks[len(tr.Ticks)-1].Value
	fmt.Printf("\npublished %d updates of %s; final source value %.4f\n\n", published, item, src)
	fmt.Println("repo    tier  tolerance  deliveries  view     |view-src|")
	for i := 1; i < len(cluster.Nodes); i++ {
		n := cluster.Nodes[i]
		tier := "hub "
		if i > 2 {
			tier = "edge"
		}
		v, _ := n.Value(item)
		diff := v - src
		if diff < 0 {
			diff = -diff
		}
		tol := repos[i-1].Needs[item]
		status := "OK"
		if d3t.Requirement(diff) > tol {
			status = "VIOLATED"
		}
		fmt.Printf("%6v  %s  %9.4f  %10d  %.4f  %.4f %s\n",
			n.ID(), tier, float64(tol), n.Delivered(), v, diff, status)
	}
	fmt.Println("\nhubs track the source tightly; edges received far fewer pushes")
	fmt.Println("yet stayed within their own (looser) tolerance.")

	if hop, _, _, _ := tree.Merged(); hop.Count > 0 {
		fmt.Printf("\nobserved %d hops over TCP: p50 %.2f ms, p99 %.2f ms\n", hop.Count, hop.P50Ms, hop.P99Ms)
	}
	if traces := tree.TracerOrNil().Traces(); len(traces) > 0 {
		t0 := traces[0]
		fmt.Printf("sampled trace %d of %s:", t0.ID, t0.Item)
		for _, h := range t0.Hops {
			fmt.Printf(" %v", h.Node)
		}
		fmt.Printf(" (%d traces collected)\n", len(traces))
	}
}
