// Sensornet: weather telemetry with mean-reverting sensors, comparing the
// paper's push architecture against the future-work alternatives — pull
// with a static refresh interval, adaptive TTR, and leases — on the same
// overlay. The interesting axis is fidelity per message.
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"

	"d3t"
)

func main() {
	// Sensors: temperature-like Ornstein-Uhlenbeck processes. Half the
	// stations sit in turbulent microclimates (fast), half are placid.
	const numSensors = 16
	traces := make([]*d3t.Trace, numSensors)
	for i := range traces {
		step := 0.02
		if i%2 == 0 {
			step = 0.15 // turbulent station
		}
		tr, err := d3t.GenerateTrace(d3t.TraceConfig{
			Item:  fmt.Sprintf("SENSOR%02d", i),
			Model: 2, // Ornstein-Uhlenbeck
			Ticks: 1800, Start: 20, Step: step, Reversion: 0.05,
			Seed: int64(i) + 100,
		})
		if err != nil {
			log.Fatal(err)
		}
		traces[i] = tr
	}

	// Twelve monitoring stations, each watching ~half the sensors with a
	// 0.5-degree tolerance.
	const numRepos, coop = 12, 4
	repos := make([]*d3t.Repository, numRepos)
	for i := range repos {
		repos[i] = d3t.NewRepository(d3t.RepositoryID(i+1), coop)
		for j, tr := range traces {
			if (i+j)%2 == 0 {
				repos[i].Needs[tr.Item] = 0.5
				repos[i].Serving[tr.Item] = 0.5
			}
		}
	}
	net, err := d3t.GenerateNetwork(d3t.NetworkConfig{Repositories: numRepos, Routers: 40, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	overlay, err := d3t.NewLeLA(5, 5).Build(net, repos, coop)
	if err != nil {
		log.Fatal(err)
	}

	push := d3t.PushConfig{CompDelay: d3t.Milliseconds(5)}
	type row struct {
		name string
		res  *d3t.RunResult
		err  error
	}
	rows := []row{}
	add := func(name string, res *d3t.RunResult, err error) {
		rows = append(rows, row{name, res, err})
	}

	res, err := d3t.RunPush(overlay, traces, d3t.NewDistributed(), push)
	add("push (distributed)", res, err)
	res, err = d3t.RunPush(overlay, traces, d3t.NewCentralized(), push)
	add("push (centralized)", res, err)
	res, err = d3t.RunPull(overlay, traces, d3t.PullConfig{
		Mode: d3t.StaticTTR, TTR: 30 * d3t.Second, CompDelay: d3t.Milliseconds(5)})
	add("pull (TTR 30s)", res, err)
	res, err = d3t.RunPull(overlay, traces, d3t.PullConfig{
		Mode: d3t.StaticTTR, TTR: 5 * d3t.Second, CompDelay: d3t.Milliseconds(5)})
	add("pull (TTR 5s)", res, err)
	res, err = d3t.RunPull(overlay, traces, d3t.PullConfig{
		Mode: d3t.AdaptiveTTR, TTR: 10 * d3t.Second, CompDelay: d3t.Milliseconds(5)})
	add("pull (adaptive TTR)", res, err)
	res, err = d3t.RunLease(overlay, traces, d3t.LeaseConfig{
		Duration: 120 * d3t.Second, Push: push})
	add("lease-push (120s)", res, err)

	fmt.Printf("weather net: %d sensors -> %d stations, tolerance 0.5 deg, 30 min\n\n",
		numSensors, numRepos)
	fmt.Println("mechanism            loss %   messages   msg/min")
	minutes := float64(traces[0].Duration()) / float64(60*d3t.Second)
	for _, r := range rows {
		if r.err != nil {
			log.Fatalf("%s: %v", r.name, r.err)
		}
		fmt.Printf("%-20s %6.2f %10d %9.0f\n",
			r.name, r.res.Report.LossPercent(), r.res.Stats.Messages,
			float64(r.res.Stats.Messages)/minutes)
	}
	fmt.Println("\npush delivers the highest fidelity for the fewest messages;")
	fmt.Println("within the pull family, adaptive TTR buys most of fast polling's")
	fmt.Println("fidelity at a fraction of its messages by concentrating polls on")
	fmt.Println("the turbulent stations.")
}
