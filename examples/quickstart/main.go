// Quickstart: run the paper's base-case experiment at a laptop-friendly
// scale and print what the system achieved.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"d3t"
)

func main() {
	// Start from the paper's defaults and shrink the workload so the run
	// finishes in well under a second.
	cfg := d3t.DefaultConfig()
	cfg.Repositories = 30 // cooperating repositories
	cfg.Routers = 90      // physical network routers
	cfg.Items = 60        // dynamic data items (stock tickers)
	cfg.Ticks = 1200      // 20 minutes of one-second polls
	cfg.StringentFrac = 0.9

	// CoopDegree 0 selects "controlled cooperation": the system derives
	// the optimal fan-out from the measured communication delay and the
	// configured computational delay (Eq. 2 of the paper).
	cfg.CoopDegree = 0

	out, err := d3t.RunExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("cooperative dissemination of dynamic data (VLDB 2002)")
	fmt.Printf("  repositories:        %d (+%d routers)\n", cfg.Repositories, cfg.Routers)
	fmt.Printf("  coop degree (Eq. 2): %d dependents per node\n", out.CoopDegreeUsed)
	fmt.Printf("  overlay:             %v\n", out.Tree)
	fmt.Printf("  fidelity:            %.4f (loss %.2f%%)\n", out.Fidelity, out.LossPercent)
	fmt.Printf("  messages:            %d\n", out.Stats.Messages)

	// Contrast with no cooperation: the source serves everyone directly.
	cfg.Builder = "direct"
	cfg.CoopDegree = cfg.Repositories
	direct, err := d3t.RunExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwithout cooperation (source serves all %d repositories):\n", cfg.Repositories)
	fmt.Printf("  fidelity:            %.4f (loss %.2f%%)\n", direct.Fidelity, direct.LossPercent)
	fmt.Printf("  source utilization:  %.0f%% (vs %.0f%% cooperative)\n",
		100*direct.SourceUtilization, 100*out.SourceUtilization)
}
