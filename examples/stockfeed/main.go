// Stockfeed: a real-time ticker plant on goroutines. A synthetic volatile
// market streams through a cooperative repository overlay; each
// repository sees only the updates its coherency tolerance requires, yet
// never drifts further than that tolerance from the source.
//
//	go run ./examples/stockfeed
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"d3t"
	"d3t/live"
)

const (
	numRepos = 9
	coop     = 3
)

var tickers = []string{"MSFT", "INTC", "ORCL"}

func main() {
	// Traces: one volatile afternoon per ticker, one tick per 2ms of real
	// time (the runtime is wall-clock; we compress the feed).
	traces := make([]*d3t.Trace, len(tickers))
	for i, sym := range tickers {
		tr, err := d3t.GenerateTrace(d3t.TraceConfig{
			Item: sym, Ticks: 400, Start: 40 + 10*float64(i),
			Low: 38 + 10*float64(i), High: 42 + 10*float64(i),
			Step: 0.08, Seed: int64(i) + 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		traces[i] = tr
	}

	// Repositories: brokerage frontends with tight tolerances (1-3 cents)
	// and casual dashboards with loose ones (25-75 cents).
	repos := make([]*d3t.Repository, numRepos)
	for i := range repos {
		repos[i] = d3t.NewRepository(d3t.RepositoryID(i+1), coop)
		for j, sym := range tickers {
			if (i+j)%3 == 2 {
				continue // not every desk follows every ticker
			}
			tol := d3t.Requirement(0.01 + 0.01*float64(i%3)) // brokerage
			if i >= numRepos/2 {
				tol = d3t.Requirement(0.25 * float64(1+i%3)) // dashboard
			}
			repos[i].Needs[sym] = tol
			repos[i].Serving[sym] = tol
		}
	}

	overlay, err := d3t.NewLeLA(5, 1).Build(d3t.UniformNetwork(numRepos, 0), repos, coop)
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	delivered := map[d3t.RepositoryID]int{}
	cluster := live.NewCluster(overlay, live.Options{
		CommDelay: 200 * time.Microsecond,
		CompDelay: 50 * time.Microsecond,
		OnDeliver: func(id d3t.RepositoryID, item string, v float64) {
			mu.Lock()
			delivered[id]++
			mu.Unlock()
		},
	})
	for _, tr := range traces {
		cluster.Seed(tr.Item, tr.Ticks[0].Value)
	}
	cluster.Start()
	defer cluster.Stop()

	fmt.Printf("streaming %d tickers through %d repositories (fan-out %d)...\n",
		len(tickers), numRepos, coop)
	published := 0
	for i := 1; i < 400; i++ {
		for _, tr := range traces {
			if tr.Ticks[i].Value != tr.Ticks[i-1].Value {
				cluster.Publish(tr.Item, tr.Ticks[i].Value)
				published++
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Drain in-flight updates: wait until delivery counts stop moving.
	drainStart := time.Now()
	prev := -1
	for time.Since(drainStart) < 5*time.Second {
		time.Sleep(100 * time.Millisecond)
		mu.Lock()
		total := 0
		for _, c := range delivered {
			total += c
		}
		mu.Unlock()
		if total == prev {
			break
		}
		prev = total
	}
	fmt.Printf("(drained in %v)\n", time.Since(drainStart).Round(time.Millisecond))

	fmt.Printf("published %d source updates\n\n", published)
	fmt.Println("repo  tolerance-class  deliveries  subscribed views (vs source)")
	mu.Lock()
	defer mu.Unlock()
	ids := make([]int, 0, numRepos)
	for i := 1; i <= numRepos; i++ {
		ids = append(ids, i)
	}
	sort.Ints(ids)
	violations := 0
	for _, i := range ids {
		id := d3t.RepositoryID(i)
		repo := repos[i-1]
		class := "brokerage"
		if i > numRepos/2 {
			class = "dashboard"
		}
		var views []string
		for _, tr := range traces {
			tol, subscribed := repo.Needs[tr.Item]
			if !subscribed {
				continue // the desk may relay other tickers for its children
			}
			v, _ := cluster.Value(id, tr.Item)
			src := tr.Ticks[len(tr.Ticks)-1].Value
			diff := v - src
			if diff < 0 {
				diff = -diff
			}
			status := "ok"
			if d3t.Requirement(diff) > tol {
				status = "VIOLATED"
				violations++
			}
			views = append(views, fmt.Sprintf("%s %.2f/%.2f %s", tr.Item, v, src, status))
		}
		fmt.Printf("%4d  %-15s  %10d  %v\n", i, class, delivered[id], views)
	}
	fmt.Printf("\n%d tolerance violations at quiescence.\n", violations)
	fmt.Println("brokerage desks received many more updates than dashboards —")
	fmt.Println("the overlay filtered by each repository's own tolerance.")
}
