// Flashcrowd: the virtual serving fleet under a flash crowd. Sessions
// are compact per-shard array state (no object, no goroutine per
// session), so one process holds populations the concrete fleet cannot —
// here 50,000 sessions over 30 repositories. Half the population starts
// detached and slams onto the hottest item in a Pareto burst; every
// arrival is placed through the shared nearest-k index (overflowing
// through the consistent-hash ring under the session cap) and resyncs
// against its repository's current copies. A second run sharpens the
// burst, and a third fails a repository region mid-crowd.
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"

	"d3t"
)

func main() {
	base := d3t.DefaultConfig()
	base.Repositories, base.Routers = 30, 90
	base.Items, base.Ticks = 15, 900
	base.Seed = 11
	base.VirtualSessions = 50000
	base.SessionCap = 1700 // barely above the ~1667/repo mean once the crowd lands

	wide := base
	wide.Scenario = "flash:at=0.3,frac=0.5,burst=0.4"

	sharp := base
	sharp.Scenario = "flash:at=0.3,frac=0.5,burst=0.05"

	regional := base
	regional.Scenario = "regional:at=0.4,frac=0.25,rejoin=0.7"

	runner := d3t.NewSweepRunner(0)
	outs, err := runner.RunAll([]d3t.Config{wide, sharp, regional})
	if err != nil {
		log.Fatal(err)
	}

	labels := []string{"wide burst (40% of run)", "sharp burst (5% of run)", "regional failure (25%)"}
	fmt.Println("scenario                  clientFid  worst   arrivals  redirects  migr+orph  resyncs  bytes/sess")
	for i, out := range outs {
		v := out.VServe
		fmt.Printf("%-25s %.4f     %.4f  %-8d  %-9d  %-9d  %-7d  %.0f\n",
			labels[i], v.MeanFidelity, v.WorstFidelity, v.Arrivals,
			v.Redirects, v.Migrations+v.Orphaned, v.Resyncs, v.BytesPerSession)
	}

	v := outs[1].VServe
	fmt.Printf("\nthe sharp burst lands %d sessions in ~45 ticks — each admitted in O(k) through\n", v.Arrivals)
	fmt.Printf("the placement index and caught up via %d resync values. The whole population\n", v.Resyncs)
	fmt.Printf("is %d sessions of flat array state at %.0f resident bytes each, in %d shards.\n",
		v.Sessions, v.BytesPerSession, v.Shards)
}
