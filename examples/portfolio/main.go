// Portfolio: the derived-data query layer end to end. A client watching
// a portfolio does not care whether MSFT's cached copy is within a cent
// — it cares that the *portfolio average* is, and that the MSFT−SUNW
// spread it trades on is. Each query here carries a tolerance cQ on its
// result; tolerance allocation (Lipschitz sensitivity per operator)
// translates cQ into per-input tolerances the ordinary Eq. 3+7 pipeline
// enforces, so coherent inputs provably imply a coherent result — the
// union-bound floor printed next to each measured fidelity. (The floor
// argument is per-tick, so it is airtight for window-1 queries; a
// windowed extremum carries slots a window's worth of ticks old and can
// dip below it transiently, as the w=10 max row shows.)
//
// The second run re-places the same catalogue at the client (the
// "!client" suffix): instead of the serving repository evaluating and
// pushing only result changes, every input delivery travels the last hop
// and the client recombines. Same result stream, different message cost
// — the trade the placement column shows.
//
//	go run ./examples/portfolio
package main

import (
	"fmt"
	"log"

	"d3t"
)

func main() {
	catalogue := []string{
		"avg(w=5;ITEM000,ITEM001,ITEM002)@0.05", // portfolio average, 5-tick window
		"sum(ITEM000,ITEM001,ITEM002)@0.15",     // portfolio value
		"diff(ITEM003,ITEM004)@0.04",            // a spread between two tickers
		"max(w=10;ITEM005,ITEM006,ITEM007)@0.1", // windowed high across a group
		"diff(ITEM003,ITEM004)>0@0.04",          // the spread, filtered: publish only while positive
	}

	base := d3t.DefaultConfig()
	base.Repositories, base.Routers = 30, 90
	base.Items, base.Ticks = 10, 900
	base.Seed = 7
	base.Queries = catalogue

	clientSide := base
	clientSide.Queries = make([]string, len(catalogue))
	for i, spec := range catalogue {
		clientSide.Queries[i] = spec + "!client"
	}

	runner := d3t.NewSweepRunner(0)
	outs, err := runner.RunAll([]d3t.Config{base, clientSide})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("query                                     placement  fidelity  floor   msgs (in/res/resync)")
	for run, placement := range []string{"repo", "client"} {
		for _, q := range outs[run].Queries.PerQuery {
			cost := q.ResultPushes
			if placement == "client" {
				cost = q.InputPushes + q.Resyncs
			}
			fmt.Printf("%-41s %-10s %.4f    %.4f  %-4d (%d/%d/%d)\n",
				q.Spec, placement, q.Fidelity, q.InputFloor,
				cost, q.InputPushes, q.ResultPushes, q.Resyncs)
		}
	}

	repo, client := outs[0].Queries, outs[1].Queries
	fmt.Printf("\nboth placements run the identical evaluation (%d evals, %d recomputes each);\n",
		repo.Evals, repo.Recomputes)
	fmt.Printf("repository-side evaluation shipped %d result changes over the last hop where\n", repo.Messages)
	fmt.Printf("client-side recombination shipped %d raw input deliveries — the inputs already\n", client.Messages)
	fmt.Printf("flow to the serving repository, so evaluating there is the cheap default.\n")
}
