// Workloads: run the paper's base-case experiment over every synthetic
// workload family on one shared sweep runner, and compare how the same
// overlay copes with each scenario. Stock-like random walks are the
// paper's case; bursty feeds stress queueing, sensors reward filtering,
// and Pareto jumps probe the tail.
//
//	go run ./examples/workloads
package main

import (
	"fmt"
	"log"

	"d3t"
)

func main() {
	families := []string{"stocks", "sensor", "bursty", "pareto"}

	// One batch, one bounded worker pool: points run concurrently and the
	// physical network is built once and shared, since only the workload
	// differs between configurations.
	var cfgs []d3t.Config
	for _, name := range families {
		cfg := d3t.DefaultConfig()
		cfg.Repositories = 30
		cfg.Routers = 90
		cfg.Items = 40
		cfg.Ticks = 1200
		cfg.StringentFrac = 0.9
		cfg.Workload = name
		cfgs = append(cfgs, cfg)
	}
	runner := d3t.NewSweepRunner(0) // 0 = one worker per core
	outs, err := runner.RunAll(cfgs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("one overlay, four scenarios (controlled cooperation, T=90)")
	fmt.Println("\nworkload   loss %   messages   deliveries   source util")
	for i, out := range outs {
		fmt.Printf("%-8s %8.2f %10d %12d %12.0f%%\n",
			families[i], out.LossPercent, out.Stats.Messages,
			out.Stats.Deliveries, 100*out.SourceUtilization)
	}
	st := runner.CacheStats()
	fmt.Printf("\nsubstrates: %d network built, %d reused across the batch\n",
		st.NetworkBuilds, st.NetworkHits)
	fmt.Println("\nthe push overlay holds fidelity across scenarios; message cost")
	fmt.Println("tracks how often each family moves the value past a tolerance —")
	fmt.Println("noisy sensors trade every tick and flood the tree, while bursty")
	fmt.Println("feeds are nearly free between bursts.")
}
