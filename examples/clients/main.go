// Clients: the serving layer closes the loop from dissemination tree to
// end users. A population of client sessions — each with its own
// per-item coherency tolerances — attaches to the repositories under a
// session cap (overflow redirects to the next-nearest), repository needs
// are derived from the placed clients (Section 1.2 of the paper), and
// the run measures fidelity where it matters: at the client. A second
// run adds repository crashes (sessions migrate with a resync) and
// session churn (arrivals and departures under a seeded plan).
//
//	go run ./examples/clients
package main

import (
	"fmt"
	"log"

	"d3t"
)

func main() {
	base := d3t.DefaultConfig()
	base.Repositories, base.Routers = 30, 90
	base.Items, base.Ticks = 15, 900
	base.Seed = 11
	base.Clients = 120
	base.SessionCap = 8

	churn := base
	churn.Faults = "churn:2:60"        // repositories crash and rejoin
	churn.SessionChurn = "churn:10:40" // sessions come and go

	runner := d3t.NewSweepRunner(0)
	outs, err := runner.RunAll([]d3t.Config{base, churn})
	if err != nil {
		log.Fatal(err)
	}

	labels := []string{"steady sessions", "crashes + session churn"}
	fmt.Println("scenario                 repoFid  clientFid  worst   redirects  migrations  delivered/filtered")
	for i, out := range outs {
		c := out.Clients
		fmt.Printf("%-24s %.4f   %.4f     %.4f  %-9d  %-10d  %d/%d\n",
			labels[i], out.Fidelity, c.MeanFidelity, c.WorstFidelity,
			c.Redirects, c.Migrations, c.Delivered, c.Filtered)
	}

	c := outs[1].Clients
	fmt.Printf("\nunder churn: %d departures and %d arrivals; %d sessions re-homed after crashes,\n",
		c.Departures, c.Arrivals, c.Migrations)
	fmt.Printf("catching up via %d resync values. The leaf filter (Eqs. 3+7 at the client's own\n", c.Resyncs)
	fmt.Printf("tolerance) withheld %d of %d fan-out decisions — work the tree never has to do.\n",
		c.Filtered, c.Filtered+c.Delivered)
}
