// Sharded: the ingest pipeline's sweep — the same bursty workload run
// sequentially, sharded, batched, and both. Sharding hash-partitions the
// independent per-item dissemination trees across parallel workers (the
// registry figures stay byte-identical because the partition is exact);
// batching coalesces each item's bursts into the newest value per
// window, trading update volume for staleness inside the window. The
// printed fidelity shows the first is free and the second is a measured,
// bounded trade.
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"log"
	"runtime"

	"d3t"
)

func main() {
	points := []struct {
		label  string
		shards int
		batch  int
	}{
		{"sequential", 1, 0},
		{"8 shards", 8, 0},
		{"batch window 5", 1, 5},
		{"8 shards + batch 5", 8, 5},
	}

	fmt.Printf("bursty workload, 40 repositories x 48 items (GOMAXPROCS=%d)\n\n", runtime.GOMAXPROCS(0))
	fmt.Printf("%-20s %10s %12s %12s %12s %14s\n",
		"ingest", "loss %", "messages", "updates", "coalesced", "updates/s")
	for _, pt := range points {
		cfg := d3t.DefaultConfig()
		cfg.Repositories = 40
		cfg.Routers = 120
		cfg.Items = 48
		cfg.Ticks = 2000
		cfg.Workload = "bursty"
		cfg.Shards = pt.shards
		cfg.BatchTicks = pt.batch
		out, err := d3t.RunExperiment(cfg)
		if err != nil {
			log.Fatal(err)
		}
		updates, coalesced, rate := out.Stats.SourceTicks, uint64(0), 0.0
		if out.Ingest != nil {
			updates, coalesced, rate = out.Ingest.Updates, out.Ingest.Coalesced, out.Ingest.UpdatesPerSec
		}
		fmt.Printf("%-20s %9.2f%% %12d %12d %12d %14.0f\n",
			pt.label, out.LossPercent, out.Stats.Messages, updates, coalesced, rate)
	}
	fmt.Println("\nsharding never changes a decision (see TestCrossBackendParity);")
	fmt.Println("batching trades disseminated volume for bounded in-window staleness.")
}
