// Churn: the overlay survives repository failures. A Poisson churn plan
// crashes and rejoins repositories while updates stream; heartbeats and
// silence windows detect each failure, dependents re-home onto their
// precomputed backup parents, and fidelity is compared against the same
// run with no faults. A single interior crash is shown too, with its
// measured recovery latency.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"d3t"
)

func main() {
	// One experiment config, run three ways: fault-free, with a single
	// interior-node crash, and under sustained churn.
	base := d3t.DefaultConfig()
	base.Repositories, base.Routers = 30, 90
	base.Items, base.Ticks = 15, 900
	base.Seed = 11

	crash := base
	crash.Faults = "crash:max@120" // the busiest interior node dies at tick 120

	churn := base
	churn.Faults = "churn:2:60" // ~2 crashes/100 ticks, mean downtime 60 ticks

	runner := d3t.NewSweepRunner(0)
	outs, err := runner.RunAll([]d3t.Config{base, crash, churn})
	if err != nil {
		log.Fatal(err)
	}

	labels := []string{"fault-free", "interior crash", "poisson churn"}
	fmt.Println("scenario        fidelity   loss%   crashes  rehomed  mean-recovery")
	for i, out := range outs {
		c, rehomed, recovery := 0, 0, "-"
		if r := out.Resilience; r != nil {
			c, rehomed = r.Crashes, r.Rehomed
			if r.RecoverySamples > 0 {
				recovery = r.MeanRecovery.String()
			}
		}
		fmt.Printf("%-15s %.4f     %5.2f   %-8d %-8d %s\n",
			labels[i], outs[i].Fidelity, out.LossPercent, c, rehomed, recovery)
	}

	delta := outs[0].Fidelity - outs[1].Fidelity
	fmt.Printf("\ninterior crash cost %.2f points of fidelity; ", 100*delta)
	fmt.Println("dependents re-homed within the detection window (see mean-recovery).")
}
