// Command d3tsim runs one fully configured coherency simulation and
// reports fidelity, overlay shape and work counters.
//
// Example:
//
//	d3tsim -repos 100 -routers 600 -items 100 -ticks 10000 \
//	       -T 0.8 -coop 0 -protocol distributed
//
// -coop 0 selects controlled cooperation (Eq. 2 of the paper).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"d3t/internal/core"
	"d3t/internal/obs"
	"d3t/internal/query"
	"d3t/internal/trace"
)

// querySpecs collects the repeatable -query flag.
type querySpecs []string

func (q *querySpecs) String() string     { return strings.Join(*q, " ") }
func (q *querySpecs) Set(s string) error { *q = append(*q, s); return nil }

func main() {
	cfg := core.Default()
	var queries querySpecs
	var (
		verbose     = flag.Bool("v", false, "debug logging on stderr")
		quiet       = flag.Bool("quiet", false, "suppress informational logging")
		obsOn       = flag.Bool("obs", false, "record per-node observability and print a final latency/load summary")
		obsInterval = flag.Duration("obs-interval", 0, "period between obs summary lines on stderr while the run disseminates (implies -obs)")
	)
	flag.IntVar(&cfg.Repositories, "repos", cfg.Repositories, "number of repositories")
	flag.IntVar(&cfg.Routers, "routers", cfg.Routers, "number of routers in the physical network")
	flag.IntVar(&cfg.Items, "items", cfg.Items, "number of data items")
	flag.IntVar(&cfg.Ticks, "ticks", cfg.Ticks, "trace length (1-second ticks)")
	flag.Float64Var(&cfg.SubscribeProb, "subscribe", cfg.SubscribeProb, "per-item subscription probability")
	flag.Float64Var(&cfg.StringentFrac, "T", cfg.StringentFrac, "fraction of items with stringent tolerances (the paper's T)")
	flag.IntVar(&cfg.CoopDegree, "coop", cfg.CoopDegree, "degree of cooperation (0 = controlled, Eq. 2)")
	flag.IntVar(&cfg.CoopK, "k", cfg.CoopK, "Eq. 2 constant k")
	flag.StringVar(&cfg.Builder, "builder", cfg.Builder, "overlay builder: lela, random, greedy-closest, direct")
	flag.Float64Var(&cfg.PPercent, "p", cfg.PPercent, "LeLA load-controller admission band (%)")
	flag.StringVar(&cfg.Preference, "pref", cfg.Preference, "LeLA preference function: P1 or P2")
	flag.StringVar(&cfg.Protocol, "protocol", cfg.Protocol, "dissemination: distributed, centralized, naive-eq3, all-push")
	flag.IntVar(&cfg.Shards, "shards", cfg.Shards, "ingest worker shards items hash-partition across (<=1 = sequential; plain runs only)")
	flag.IntVar(&cfg.BatchTicks, "batch", cfg.BatchTicks, "coalesce each item's updates over windows of this many ticks (<=1 = off; plain runs only)")
	flag.StringVar(&cfg.Workload, "workload", cfg.Workload,
		"trace workload family: "+strings.Join(trace.WorkloadNames(), ", "))
	flag.StringVar(&cfg.WorkloadPath, "workload-path", cfg.WorkloadPath, "trace CSV file for -workload=csv")
	flag.Float64Var(&cfg.CompDelayMs, "comp", cfg.CompDelayMs, "computational delay per dissemination (ms; negative = zero)")
	flag.Float64Var(&cfg.CommDelayMs, "comm", cfg.CommDelayMs, "uniform communication delay (ms; 0 = random topology)")
	flag.StringVar(&cfg.Faults, "faults", cfg.Faults,
		"failure injection: crash:<node|max>@<tick>[+<downticks>], kill:... (process death; recovers from -durability-dir) or churn:<rate>[:<meandown>]")
	flag.IntVar(&cfg.DetectTicks, "detect", cfg.DetectTicks, "failure-detection window in heartbeat intervals (0 = default 3)")
	flag.StringVar(&cfg.Durability.Dir, "durability-dir", cfg.Durability.Dir,
		"write-ahead log directory: every repository logs its state and kill: faults recover from disk (empty = off)")
	flag.IntVar(&cfg.Durability.SnapshotEvery, "snapshot-every", 256, "commits between WAL snapshot rotations")
	flag.StringVar(&cfg.Durability.Fsync, "fsync", cfg.Durability.Fsync, "WAL fsync policy: batch, always, never")
	flag.IntVar(&cfg.Clients, "clients", cfg.Clients, "client sessions served by the repositories (0 = no client layer)")
	flag.IntVar(&cfg.ItemsPerClient, "items-per-client", cfg.ItemsPerClient, "mean watch-list size per client (default 3)")
	flag.IntVar(&cfg.SessionCap, "session-cap", cfg.SessionCap, "sessions per repository before overflow redirects (0 = unlimited)")
	flag.StringVar(&cfg.SessionChurn, "session-churn", cfg.SessionChurn,
		"session arrival/departure plan, same grammar as -faults over the client population")
	flag.IntVar(&cfg.VirtualSessions, "virtual-sessions", cfg.VirtualSessions,
		"virtual sessions served as compact per-shard state (0 = off; mutually exclusive with -clients/-query)")
	flag.StringVar(&cfg.Scenario, "scenario", cfg.Scenario,
		"scenario over the virtual population: flash:at=0.3,frac=0.5,burst=0.2 | regional:at=0.4,frac=0.25,rejoin=0.7 | diurnal:waves=2,low=0.3")
	flag.Var(&queries, "query", "derived-data query spec, repeatable — e.g. 'avg(w=5;ITEM000,ITEM001,ITEM002)@0.05' or 'diff(ITEM000,ITEM001)@0.1!client'")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	flag.Parse()
	if len(queries) > 0 {
		if _, err := query.ParseList(queries); err != nil {
			fmt.Fprintf(os.Stderr, "d3tsim: %v\n", err)
			os.Exit(2)
		}
		cfg.Queries = append(cfg.Queries, queries...)
	}

	level := obs.LevelInfo
	if *verbose {
		level = obs.LevelDebug
	}
	if *quiet {
		level = obs.LevelQuiet
	}
	logger := obs.NewLogger(os.Stderr, level)

	if *obsOn || *obsInterval > 0 {
		cfg.Obs = obs.NewTree()
	}
	start := time.Now()
	if *obsInterval > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(*obsInterval)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					logger.Infof("%s", cfg.Obs.Summary(time.Since(start).Microseconds()))
				}
			}
		}()
	}

	logger.Debugf("d3tsim: running %d repositories, %d items x %d ticks", cfg.Repositories, cfg.Items, cfg.Ticks)
	out, err := core.RunExperiment(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "d3tsim: %v\n", err)
		os.Exit(1)
	}
	workload := cfg.Workload
	if workload == "" {
		workload = "stocks"
	}
	if workload == "csv" {
		// Items/Ticks only cap a replayed set; the file decides the rest.
		fmt.Printf("workload            csv (replay of %s)\n", cfg.WorkloadPath)
	} else {
		fmt.Printf("workload            %s (%d items x %d ticks)\n", workload, cfg.Items, cfg.Ticks)
	}
	fmt.Printf("protocol            %s over %s overlay\n", cfg.Protocol, cfg.Builder)
	fmt.Printf("fidelity            %.4f (loss %.2f%%)\n", out.Fidelity, out.LossPercent)
	fmt.Printf("cooperation degree  %d (avg comm delay %v)\n", out.CoopDegreeUsed, out.AvgCommDelay)
	fmt.Printf("overlay             %v\n", out.Tree)
	fmt.Printf("messages            %d\n", out.Stats.Messages)
	fmt.Printf("source checks       %d\n", out.Stats.SourceChecks)
	fmt.Printf("repository checks   %d\n", out.Stats.RepoChecks)
	fmt.Printf("deliveries          %d\n", out.Stats.Deliveries)
	fmt.Printf("source utilization  %.1f%%\n", 100*out.SourceUtilization)
	fmt.Printf("simulation events   %d\n", out.Stats.Events)
	if (cfg.Shards > 1 || cfg.BatchTicks > 1) && out.Ingest == nil {
		fmt.Printf("ingest              sequential (-shards/-batch apply to plain runs only)\n")
	}
	if ing := out.Ingest; ing != nil {
		fmt.Printf("ingest              %d shards, batch window %d ticks\n", ing.Shards, ing.BatchTicks)
		fmt.Printf("ingest updates      %d disseminated, %d coalesced away\n", ing.Updates, ing.Coalesced)
		fmt.Printf("ingest throughput   %.0f updates/s (%v wall)\n", ing.UpdatesPerSec, ing.Elapsed.Round(time.Millisecond))
	}
	if r := out.Resilience; r != nil {
		fmt.Printf("faults              %s (crashes %d, rejoins %d)\n", cfg.Faults, r.Crashes, r.Rejoins)
		fmt.Printf("detections          %d parent, %d child drops\n", r.Detections, r.ChildDrops)
		fmt.Printf("repairs             %d feeds re-homed, %d orphaned\n", r.Rehomed, r.Orphaned)
		if r.RecoverySamples > 0 {
			fmt.Printf("recovery latency    mean %v, max %v (%d samples)\n",
				r.MeanRecovery, r.MaxRecovery, r.RecoverySamples)
		}
		if r.Kills > 0 || r.DiskRecoveries > 0 {
			fmt.Printf("kills               %d (process deaths; in-memory state lost)\n", r.Kills)
			fmt.Printf("disk recoveries     %d (%d records replayed, %d restored at start)\n",
				r.DiskRecoveries, r.ReplayedRecords, r.RestoredAtStart)
			if r.DiskRecoveries > 0 {
				fmt.Printf("replay time         %v total, %v mean per recovery\n", r.ReplayTime, r.MeanReplay)
			}
		}
		fmt.Printf("heartbeats          %d\n", r.Heartbeats)
	}
	if c := out.Clients; c != nil {
		fmt.Printf("client sessions     %d (cap %d, %d redirected at admission)\n",
			c.Sessions, cfg.SessionCap, c.Redirects)
		fmt.Printf("client fidelity     %.4f mean, %.4f worst (loss %.2f%%)\n",
			c.MeanFidelity, c.WorstFidelity, c.LossPercent)
		fmt.Printf("client fan-out      %d delivered, %d filtered at the leaf\n",
			c.Delivered, c.Filtered)
		if c.Departures+c.Arrivals+c.Migrations+c.Orphaned > 0 {
			fmt.Printf("session churn       %d departures, %d arrivals, %d migrations, %d orphaned (%d resync values)\n",
				c.Departures, c.Arrivals, c.Migrations, c.Orphaned, c.Resyncs)
		}
	}
	if v := out.VServe; v != nil {
		fmt.Printf("virtual sessions    %d in %d shards (%.0f bytes/session resident)\n",
			v.Sessions, v.Shards, v.BytesPerSession)
		fmt.Printf("virtual fidelity    %.4f mean, %.4f worst (loss %.2f%%)\n",
			v.MeanFidelity, v.WorstFidelity, v.LossPercent)
		fmt.Printf("virtual fan-out     %d delivered, %d filtered at the leaf (%d redirected at admission)\n",
			v.Delivered, v.Filtered, v.Redirects)
		if v.Departures+v.Arrivals+v.Migrations+v.Orphaned > 0 {
			fmt.Printf("virtual churn       %d departures, %d arrivals, %d migrations, %d orphaned (%d resync values)\n",
				v.Departures, v.Arrivals, v.Migrations, v.Orphaned, v.Resyncs)
		}
		if cfg.Scenario != "" && cfg.Scenario != "none" {
			fmt.Printf("scenario            %s\n", cfg.Scenario)
		}
	}
	if qs := out.Queries; qs != nil {
		fmt.Printf("query sessions      %d\n", qs.Queries)
		fmt.Printf("query fidelity      %.4f mean, %.4f worst (loss %.2f%%, input floor %.4f)\n",
			qs.MeanFidelity, qs.WorstFidelity, qs.LossPercent, qs.MeanInputFloor)
		fmt.Printf("query work          %d evals, %d recomputes\n", qs.Evals, qs.Recomputes)
		fmt.Printf("query messages      %d placement-charged (%d input pushes, %d result pushes, %d resyncs)\n",
			qs.Messages, qs.InputPushes, qs.ResultPushes, qs.Resyncs)
	}
	if snap := out.Obs; snap != nil {
		hop, src, red, viol := cfg.Obs.Merged()
		fmt.Printf("obs hop delay       p50 %.1f ms, p95 %.1f ms, p99 %.1f ms (%d samples)\n",
			hop.P50Ms, hop.P95Ms, hop.P99Ms, hop.Count)
		fmt.Printf("obs source latency  p50 %.1f ms, p95 %.1f ms, p99 %.1f ms\n",
			src.P50Ms, src.P95Ms, src.P99Ms)
		if red.Count > 0 {
			fmt.Printf("obs redirect wait   p50 %.1f ms, p99 %.1f ms (%d redirects)\n",
				red.P50Ms, red.P99Ms, red.Count)
		}
		if viol.Count > 0 {
			fmt.Printf("obs violations      %d closed, p95 %.1f ms\n", viol.Count, viol.P95Ms)
		}
		var busy *obs.NodeSnapshot
		for i := range snap.Nodes {
			n := &snap.Nodes[i]
			if busy == nil || n.Counters.Received > busy.Counters.Received {
				busy = n
			}
		}
		if busy != nil && busy.Counters.Received > 0 {
			fmt.Printf("obs busiest node    %v: %d received, %d forwarded, load %.1f updates/s\n",
				busy.ID, busy.Counters.Received, busy.Counters.DepForwarded, busy.LoadEWMA)
		}
	}
}
