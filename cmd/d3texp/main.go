// Command d3texp regenerates the tables and figures of the paper's
// evaluation (Section 6). Each figure prints the same rows/series the
// paper plots.
//
// Usage:
//
//	d3texp -fig fig3             # one figure at the default (small) scale
//	d3texp -fig all -scale paper # the full evaluation at paper scale
//	d3texp -list                 # available figure ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"d3t/internal/core"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure id to regenerate, or 'all'")
		scale   = flag.String("scale", "small", "experiment scale: 'small' or 'paper'")
		list    = flag.Bool("list", false, "list available figure ids and exit")
		seed    = flag.Int64("seed", 0, "override the experiment seed (0 keeps the preset)")
		repos   = flag.Int("repos", 0, "override the repository count")
		items   = flag.Int("items", 0, "override the item count")
		ticks   = flag.Int("ticks", 0, "override the trace length")
		timings = flag.Bool("time", false, "print elapsed time per figure")
		asCSV   = flag.Bool("csv", false, "emit machine-readable CSV instead of tables")
	)
	flag.Parse()

	if *list {
		for _, id := range core.FigureIDs() {
			fmt.Println(id)
		}
		return
	}

	var s core.Scale
	switch *scale {
	case "small":
		s = core.SmallScale()
	case "paper":
		s = core.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "d3texp: unknown scale %q (want small or paper)\n", *scale)
		os.Exit(2)
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	if *repos > 0 {
		s.Repositories = *repos
		s.Routers = 6 * *repos
	}
	if *items > 0 {
		s.Items = *items
	}
	if *ticks > 0 {
		s.Ticks = *ticks
	}

	registry := core.Figures()
	var ids []string
	if *fig == "all" {
		ids = core.FigureIDs()
	} else {
		if _, ok := registry[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "d3texp: unknown figure %q; use -list\n", *fig)
			os.Exit(2)
		}
		ids = []string{*fig}
	}

	for _, id := range ids {
		start := time.Now()
		result, err := registry[id](s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "d3texp: %s: %v\n", id, err)
			os.Exit(1)
		}
		emit := result.Fprint
		if *asCSV {
			emit = result.WriteCSV
		}
		if err := emit(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "d3texp: printing %s: %v\n", id, err)
			os.Exit(1)
		}
		if *timings {
			fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}
