// Command d3texp regenerates the tables and figures of the paper's
// evaluation (Section 6). Each figure prints the same rows/series the
// paper plots. Sweeps run on a bounded worker pool that shares cached
// networks and traces across points, and any registered workload family
// can stand in for the paper's stock traces.
//
// Usage:
//
//	d3texp -fig fig3                  # one figure at the default (small) scale
//	d3texp -fig all -scale paper      # the full evaluation at paper scale
//	d3texp -fig fig3 -workload bursty # the same sweep over a bursty feed
//	d3texp -workers 4 -v              # bound the pool, watch points complete
//	d3texp -list                      # available figure ids and workloads
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"d3t/internal/core"
	"d3t/internal/obs"
	"d3t/internal/query"
	"d3t/internal/trace"
)

// querySpecs collects the repeatable -query flag.
type querySpecs []string

func (q *querySpecs) String() string     { return fmt.Sprint([]string(*q)) }
func (q *querySpecs) Set(s string) error { *q = append(*q, s); return nil }

func main() {
	var queries querySpecs
	var (
		fig      = flag.String("fig", "all", "figure id to regenerate, or 'all'")
		scale    = flag.String("scale", "small", "experiment scale: 'small' or 'paper'")
		list     = flag.Bool("list", false, "list available figure ids and workloads, then exit")
		seed     = flag.Int64("seed", 0, "override the experiment seed (0 keeps the preset)")
		repos    = flag.Int("repos", 0, "override the repository count")
		items    = flag.Int("items", 0, "override the item count")
		ticks    = flag.Int("ticks", 0, "override the trace length")
		workload = flag.String("workload", "", "trace workload family (default stocks); see -list")
		wpath    = flag.String("workload-path", "", "trace CSV file for -workload=csv")
		faults   = flag.String("faults", "", "failure injection applied to every sweep point (resilience figures override it)")
		walDir   = flag.String("durability-dir", "", "write-ahead log directory applied to every sweep point; kill: faults then recover from disk (res-recovery-disk overrides it per point)")
		snapEv   = flag.Int("snapshot-every", 0, "commits between WAL snapshot rotations (0 = default 256)")
		fsync    = flag.String("fsync", "", "WAL fsync policy: batch (default), always, never")
		clients  = flag.Int("clients", 0, "client sessions applied to every sweep point (client figures override the population)")
		itemsPC  = flag.Int("items-per-client", 0, "mean watch-list size per client (default 3)")
		cap      = flag.Int("session-cap", 0, "sessions per repository before overflow redirects (0 = unlimited)")
		virtual  = flag.Int("virtual-sessions", 0, "virtual sessions applied to every sweep point (the client/query/vserve figures override the population)")
		scenario = flag.String("scenario", "", "scenario over the virtual population applied to every sweep point, e.g. flash:at=0.3,frac=0.5")
		shards   = flag.Int("shards", 0, "ingest worker shards applied to every plain sweep point (<=1 = sequential)")
		batch    = flag.Int("batch", 0, "ingest batch window in ticks applied to every plain sweep point (<=1 = off)")
		workers  = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
		progress = flag.Bool("progress", false, "deprecated alias for -v")
		verbose  = flag.Bool("v", false, "debug logging on stderr (per-point sweep progress, cache stats)")
		quiet    = flag.Bool("quiet", false, "suppress informational logging")
		obsIv    = flag.Duration("obs-interval", 0, "period between aggregate obs summary lines on stderr while sweeps run")
		timings  = flag.Bool("time", false, "print elapsed time per figure")
		asCSV    = flag.Bool("csv", false, "emit machine-readable CSV instead of tables")
	)
	flag.Var(&queries, "query", "derived-data query spec applied to every sweep point, repeatable (the query figures override it per point) — e.g. 'avg(w=5;ITEM000,ITEM001)@0.05'")
	flag.Parse()
	if len(queries) > 0 {
		if _, err := query.ParseList(queries); err != nil {
			fmt.Fprintf(os.Stderr, "d3texp: %v\n", err)
			os.Exit(2)
		}
	}

	level := obs.LevelInfo
	if *verbose || *progress {
		level = obs.LevelDebug
	}
	if *quiet {
		level = obs.LevelQuiet
	}
	logger := obs.NewLogger(os.Stderr, level)

	if *list {
		fmt.Println("figures:")
		for _, id := range core.FigureIDs() {
			fmt.Printf("  %s\n", id)
		}
		fmt.Println("workloads:")
		for _, name := range trace.WorkloadNames() {
			w, _ := trace.LookupWorkload(name)
			fmt.Printf("  %-8s %s\n", name, w.Describe())
		}
		return
	}

	var s core.Scale
	switch *scale {
	case "small":
		s = core.SmallScale()
	case "paper":
		s = core.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "d3texp: unknown scale %q (want small or paper)\n", *scale)
		os.Exit(2)
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	if *repos > 0 {
		s.Repositories = *repos
		s.Routers = 6 * *repos
	}
	if *items > 0 {
		s.Items = *items
	}
	if *ticks > 0 {
		s.Ticks = *ticks
	}
	if _, err := trace.LookupWorkload(*workload); err != nil {
		fmt.Fprintf(os.Stderr, "d3texp: %v\n", err)
		os.Exit(2)
	}
	if *workload == "csv" && *wpath == "" {
		fmt.Fprintln(os.Stderr, "d3texp: -workload=csv needs -workload-path")
		os.Exit(2)
	}
	s.Workload = *workload
	s.WorkloadPath = *wpath
	s.Faults = *faults
	s.Durability = core.DurabilityConfig{Dir: *walDir, SnapshotEvery: *snapEv, Fsync: *fsync}
	s.Clients = *clients
	s.ItemsPerClient = *itemsPC
	s.SessionCap = *cap
	s.Shards = *shards
	s.BatchTicks = *batch
	s.Queries = queries
	s.VirtualSessions = *virtual
	s.Scenario = *scenario
	if *scenario != "" {
		if _, err := trace.ParseScenario(*scenario); err != nil {
			fmt.Fprintf(os.Stderr, "d3texp: %v\n", err)
			os.Exit(2)
		}
	}

	// One runner for every figure: its network/trace caches carry across
	// figures (most share the base-case substrates), and its worker pool
	// bounds the whole run.
	runner := core.NewRunner(*workers)
	runner.Log = logger
	s.Runner = runner

	start := time.Now()
	if *obsIv > 0 {
		// A single shared tree aggregates every sweep point in flight; the
		// ticker reports the rolled-up view. (The obs-* figures still use
		// their own per-point trees.)
		s.ObsTree = obs.NewTree()
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(*obsIv)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					logger.Infof("%s", s.ObsTree.Summary(time.Since(start).Microseconds()))
				}
			}
		}()
	}

	registry := core.Figures()
	var ids []string
	if *fig == "all" {
		ids = core.FigureIDs()
	} else {
		if _, ok := registry[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "d3texp: unknown figure %q; use -list\n", *fig)
			os.Exit(2)
		}
		ids = []string{*fig}
	}

	for _, id := range ids {
		figStart := time.Now()
		logger.Debugf("figure %s: starting", id)
		result, err := registry[id](s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "d3texp: %s: %v\n", id, err)
			os.Exit(1)
		}
		emit := result.Fprint
		if *asCSV {
			emit = result.WriteCSV
		}
		if err := emit(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "d3texp: printing %s: %v\n", id, err)
			os.Exit(1)
		}
		if *timings {
			fmt.Printf("(%s took %v)\n\n", id, time.Since(figStart).Round(time.Millisecond))
		}
	}
	if s.ObsTree != nil {
		logger.Infof("final %s", s.ObsTree.Summary(time.Since(start).Microseconds()))
	}
	if logger.Enabled(obs.LevelDebug) {
		st := runner.CacheStats()
		logger.Debugf("cache: %d networks built (%d reused), %d trace sets built (%d reused)",
			st.NetworkBuilds, st.NetworkHits, st.TraceBuilds, st.TraceHits)
	}
}
