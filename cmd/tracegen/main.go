// Command tracegen generates synthetic dynamic-data traces in the
// repository's CSV format — the stand-ins for the stock-price polls the
// paper collected from finance.yahoo.com, or any other registered
// workload family.
//
// Examples:
//
//	tracegen -n 100 -ticks 10000 > traces.csv   # a full workload set
//	tracegen -workload bursty -n 20 > b.csv     # a regime-switching set
//	tracegen -table1 > table1.csv               # the six Table 1 tickers
//	tracegen -stats -table1                     # print Table 1 rows instead
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"d3t/internal/sim"
	"d3t/internal/trace"
)

func main() {
	var (
		n        = flag.Int("n", 10, "number of traces")
		ticks    = flag.Int("ticks", 10000, "observations per trace")
		interval = flag.Float64("interval", 1000, "tick interval in milliseconds")
		seed     = flag.Int64("seed", 1, "random seed")
		workload = flag.String("workload", "stocks",
			"workload family: "+strings.Join(trace.WorkloadNames(), ", "))
		table1 = flag.Bool("table1", false, "generate the six Table 1 ticker traces instead")
		stats  = flag.Bool("stats", false, "print per-trace statistics instead of CSV")
	)
	flag.Parse()

	var traces []*trace.Trace
	if *table1 {
		traces = trace.Table1TracesSized(*ticks, *seed)
	} else {
		w, err := trace.LookupWorkload(*workload)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(2)
		}
		traces, err = w.Generate(trace.WorkloadSpec{
			Items: *n, Ticks: *ticks, Interval: sim.Milliseconds(*interval), Seed: *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
	}

	if *stats {
		for _, tr := range traces {
			fmt.Println(tr.Summarize())
		}
		return
	}
	if err := trace.WriteCSV(os.Stdout, traces...); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}
