// Command benchdiff compares two `go test -bench -json` result files and
// trips when any benchmark's timing moved more than a tolerance — the
// CI guardrail that keeps the committed BENCH_latest.json baseline
// honest.
//
// Raw ns/op is machine-dependent: a faster CI runner shifts every
// benchmark by the same factor. benchdiff therefore normalizes by
// default: it computes each shared benchmark's current/baseline ratio,
// divides by the median ratio across all shared benchmarks (the
// machine-speed factor), and applies the tolerance to the normalized
// ratio — catching the benchmark that regressed relative to its peers
// while tolerating uniformly faster or slower hardware. -no-normalize
// compares raw ratios instead.
//
// Benchmarks faster than -min-ns in the baseline are reported but never
// trip: at smoke benchtimes their single-iteration timings are noise.
// Benchmarks present only in the current run — freshly added, not yet in
// the committed baseline — are reported as "new (no baseline)" and
// excluded from the verdict, so adding a benchmark never trips the
// guardrail before the baseline is refreshed.
//
// Every run prints a per-benchmark delta table (name, old, new,
// normalized delta %). Exit status distinguishes the outcomes: 0 when
// everything is within tolerance, 1 when any benchmark regressed beyond
// it, 3 when benchmarks only *improved* beyond it (the baseline is stale
// — refresh BENCH_latest.json), 2 on usage errors.
//
// Usage:
//
//	benchdiff [-tolerance 0.30] [-min-ns 1000000] [-no-normalize] baseline.json current.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of test2json lines benchdiff reads.
type event struct {
	Action string
	Output string
}

// The bench runner may emit a result on one line
// ("BenchmarkX-8  1234  5678 ns/op") or split the name and the
// measurement across two output events ("BenchmarkX  \t" then
// "  1\t 242859 ns/op ..."), which is how `go test -json` usually
// flushes them.
var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.eE+]+) ns/op`)
	nameLine  = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?[ \t]*$`)
	measLine  = regexp.MustCompile(`^\s*\d+\s+([0-9.eE+]+) ns/op`)
)

// parseBench extracts benchmark name -> ns/op from a test2json stream.
// Sub-benchmark names keep their full path; the trailing -GOMAXPROCS
// suffix is stripped so runs from different machines align.
func parseBench(r *bufio.Scanner) (map[string]float64, error) {
	out := make(map[string]float64)
	pending := "" // a name-only line awaiting its measurement line
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if line == "" {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			// Tolerate non-JSON lines (plain -bench output pasted in).
			ev = event{Action: "output", Output: line}
		}
		if ev.Action != "output" {
			continue
		}
		text := strings.TrimRight(ev.Output, "\n")
		if m := benchLine.FindStringSubmatch(strings.TrimSpace(text)); m != nil {
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad ns/op %q in %q", m[2], ev.Output)
			}
			out[m[1]] = ns
			pending = ""
			continue
		}
		if m := nameLine.FindStringSubmatch(text); m != nil {
			pending = m[1]
			continue
		}
		if m := measLine.FindStringSubmatch(text); m != nil && pending != "" {
			ns, err := strconv.ParseFloat(m[1], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad ns/op %q in %q", m[1], ev.Output)
			}
			out[pending] = ns
			pending = ""
		}
	}
	return out, r.Err()
}

func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	return parseBench(sc)
}

// verdict is one benchmark's comparison. tripped means the normalized
// ratio left the tolerance band in either direction; regressed and
// improved record which. isNew marks a benchmark present in the current
// run but absent from the baseline: it is reported but carries no
// verdict — a freshly added benchmark has nothing to regress against,
// and must not distort the comparison of the shared set.
type verdict struct {
	name                string
	base, cur           float64
	ratio, normalized   float64
	tripped, tooSmall   bool
	regressed, improved bool
	isNew               bool
}

// compare evaluates every benchmark present in both runs, and appends
// verdict-free "new (no baseline)" rows for benchmarks only the current
// run has.
func compare(base, cur map[string]float64, tolerance, minNs float64, normalize bool) []verdict {
	var names, fresh []string
	for name := range base {
		if _, ok := cur[name]; ok {
			names = append(names, name)
		}
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(names)
	sort.Strings(fresh)
	if len(names) == 0 && len(fresh) == 0 {
		return nil
	}
	if len(names) == 0 {
		out := make([]verdict, 0, len(fresh))
		for _, name := range fresh {
			out = append(out, verdict{name: name, cur: cur[name], isNew: true})
		}
		return out
	}
	ratios := make([]float64, 0, len(names))
	for _, name := range names {
		ratios = append(ratios, cur[name]/base[name])
	}
	scale := 1.0
	if normalize {
		// The machine-speed factor is the median ratio over the
		// benchmarks large enough to time meaningfully; noisy sub-min-ns
		// ones would skew it.
		var sorted []float64
		for i, name := range names {
			if base[name] >= minNs {
				sorted = append(sorted, ratios[i])
			}
		}
		if len(sorted) == 0 {
			sorted = append(sorted, ratios...)
		}
		sort.Float64s(sorted)
		if n := len(sorted); n%2 == 1 {
			scale = sorted[n/2]
		} else {
			scale = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		if scale <= 0 {
			scale = 1
		}
	}
	out := make([]verdict, 0, len(names))
	for i, name := range names {
		v := verdict{name: name, base: base[name], cur: cur[name], ratio: ratios[i]}
		v.normalized = v.ratio / scale
		v.tooSmall = base[name] < minNs
		if !v.tooSmall {
			v.regressed = v.normalized > 1+tolerance
			v.improved = v.normalized < 1/(1+tolerance)
			v.tripped = v.regressed || v.improved
		}
		out = append(out, v)
	}
	for _, name := range fresh {
		out = append(out, verdict{name: name, cur: cur[name], isNew: true})
	}
	return out
}

// dropMatching removes benchmarks whose name matches the skip pattern.
func dropMatching(m map[string]float64, re *regexp.Regexp) {
	for name := range m {
		if re.MatchString(name) {
			delete(m, name)
		}
	}
}

func main() {
	tolerance := flag.Float64("tolerance", 0.30, "allowed fractional drift per benchmark after normalization")
	minNs := flag.Float64("min-ns", 1e6, "baseline ns/op below which a benchmark is too noisy to trip")
	noNormalize := flag.Bool("no-normalize", false, "compare raw ratios instead of median-normalized ones")
	skip := flag.String("skip", "", "regexp of benchmark names excluded from comparison (e.g. parallelism-shaped benchmarks whose ratio depends on the baseline machine's core count, which median normalization cannot correct)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] baseline.json current.json")
		os.Exit(2)
	}
	base, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if *skip != "" {
		re, err := regexp.Compile(*skip)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: bad -skip pattern: %v\n", err)
			os.Exit(2)
		}
		dropMatching(base, re)
		dropMatching(cur, re)
	}
	verdicts := compare(base, cur, *tolerance, *minNs, !*noNormalize)
	shared, added := 0, 0
	for _, v := range verdicts {
		if v.isNew {
			added++
		} else {
			shared++
		}
	}
	if shared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no shared benchmarks between the two files")
		os.Exit(2)
	}
	regressed, improved := 0, 0
	fmt.Printf("%-60s %12s %12s %8s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "status")
	for _, v := range verdicts {
		if v.isNew {
			fmt.Printf("%-60s %12s %12.0f %8s  %s\n",
				v.name, "-", v.cur, "-", "new (no baseline)")
			continue
		}
		status := "ok"
		switch {
		case v.regressed:
			status = "REGRESSED"
			regressed++
		case v.improved:
			status = "IMPROVED"
			improved++
		case v.tooSmall:
			status = "noisy (under min-ns)"
		}
		fmt.Printf("%-60s %12.0f %12.0f %+7.1f%%  %s\n",
			v.name, v.base, v.cur, (v.normalized-1)*100, status)
	}
	fmt.Printf("benchdiff: %d shared benchmarks (%d new, excluded), %d regressed, %d improved beyond ±%.0f%% (normalized delta shown)\n",
		shared, added, regressed, improved, *tolerance*100)
	switch {
	case regressed > 0:
		os.Exit(1) // regressions dominate: fail the guardrail
	case improved > 0:
		os.Exit(3) // all trips are improvements: refresh the baseline
	}
}
