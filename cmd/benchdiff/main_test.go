package main

import (
	"bufio"
	"regexp"
	"strings"
	"testing"
)

const sampleJSON = `{"Action":"output","Package":"d3t","Output":"goos: linux\n"}
{"Action":"output","Package":"d3t","Test":"BenchmarkFanout","Output":"BenchmarkFanout-8        \t  100000\t     12345 ns/op\t       0 B/op\n"}
{"Action":"output","Package":"d3t","Test":"BenchmarkShardedIngest/shards=8,batch=1","Output":"BenchmarkShardedIngest/shards=8,batch=1-8 \t 1\t 2000000 ns/op\t 55 updates/s\n"}
{"Action":"run","Package":"d3t","Test":"BenchmarkOther"}
{"Action":"output","Package":"d3t","Test":"BenchmarkSplit","Output":"BenchmarkSplit\n"}
{"Action":"output","Package":"d3t","Test":"BenchmarkSplit","Output":"BenchmarkSplit        \t"}
{"Action":"output","Package":"d3t","Test":"BenchmarkSplit","Output":"       1\t    242859 ns/op\t   74448 B/op\t      93 allocs/op\n"}
not json at all
BenchmarkPlain 	 50 	 99000.5 ns/op
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(bufio.NewScanner(strings.NewReader(sampleJSON)))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkFanout":                         12345,
		"BenchmarkShardedIngest/shards=8,batch=1": 2000000,
		"BenchmarkSplit":                          242859,
		"BenchmarkPlain":                          99000.5,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks (%v), want %d", len(got), got, len(want))
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestCompareNormalizes(t *testing.T) {
	base := map[string]float64{"A": 10e6, "B": 20e6, "C": 30e6, "D": 5e3, "onlyBase": 1e6}
	// Everything uniformly 2x slower (a slower machine) except C, which
	// regressed 4x — and D, which is below min-ns and must never trip.
	cur := map[string]float64{"A": 20e6, "B": 40e6, "C": 120e6, "D": 50e3, "onlyCur": 1e6}
	vs := compare(base, cur, 0.30, 1e6, true)
	if len(vs) != 5 {
		t.Fatalf("compared %d benchmarks, want 4 shared + 1 new", len(vs))
	}
	byName := map[string]verdict{}
	for _, v := range vs {
		byName[v.name] = v
	}
	if byName["A"].tripped || byName["B"].tripped {
		t.Errorf("uniform machine slowdown tripped: A=%+v B=%+v", byName["A"], byName["B"])
	}
	if !byName["C"].tripped {
		t.Errorf("relative 2x regression did not trip: %+v", byName["C"])
	}
	if byName["D"].tripped || !byName["D"].tooSmall {
		t.Errorf("sub-min-ns benchmark handled wrong: %+v", byName["D"])
	}
	if v := byName["onlyCur"]; !v.isNew || v.tripped {
		t.Errorf("baseline-less benchmark not reported as new: %+v", v)
	}
	if v, ok := byName["onlyBase"]; ok {
		t.Errorf("baseline-only benchmark reported: %+v", v)
	}
}

func TestCompareNewExcludedFromVerdict(t *testing.T) {
	// A freshly added benchmark — present only in the current run — is
	// reported as new and must neither trip nor skew the shared set's
	// median normalization, even at an extreme timing.
	base := map[string]float64{"A": 10e6, "B": 20e6, "C": 30e6}
	cur := map[string]float64{"A": 10e6, "B": 20e6, "C": 30e6, "BenchmarkQueryEval": 900e6}
	byName := map[string]verdict{}
	for _, v := range compare(base, cur, 0.30, 1e6, true) {
		byName[v.name] = v
	}
	q, ok := byName["BenchmarkQueryEval"]
	if !ok {
		t.Fatal("new benchmark missing from report")
	}
	if !q.isNew || q.tripped || q.regressed || q.improved {
		t.Errorf("new benchmark carries a verdict: %+v", q)
	}
	if q.cur != 900e6 || q.base != 0 {
		t.Errorf("new benchmark row mangled: %+v", q)
	}
	for _, name := range []string{"A", "B", "C"} {
		if v := byName[name]; v.tripped || v.isNew {
			t.Errorf("shared benchmark %s disturbed by new row: %+v", name, v)
		}
	}
}

func TestCompareOnlyNew(t *testing.T) {
	// No shared benchmarks at all: every row is new, none trips — main
	// still refuses the comparison (exit 2) but compare must not panic.
	vs := compare(map[string]float64{"gone": 1e6}, map[string]float64{"fresh": 2e6}, 0.30, 1e6, true)
	if len(vs) != 1 || !vs[0].isNew || vs[0].tripped || vs[0].name != "fresh" {
		t.Fatalf("disjoint runs compared wrong: %+v", vs)
	}
}

func TestCompareDirection(t *testing.T) {
	// Many stable anchors pin the median ratio at 1, so C's regression
	// and I's improvement are judged against an honest machine factor.
	base := map[string]float64{"A": 10e6, "B": 20e6, "E": 15e6, "F": 25e6, "C": 30e6, "I": 40e6}
	cur := map[string]float64{"A": 10e6, "B": 20e6, "E": 15e6, "F": 25e6, "C": 60e6, "I": 20e6}
	byName := map[string]verdict{}
	for _, v := range compare(base, cur, 0.30, 1e6, true) {
		byName[v.name] = v
	}
	if c := byName["C"]; !c.tripped || !c.regressed || c.improved {
		t.Errorf("2x slowdown not classified as regression: %+v", c)
	}
	if i := byName["I"]; !i.tripped || !i.improved || i.regressed {
		t.Errorf("2x speedup not classified as improvement: %+v", i)
	}
	if a := byName["A"]; a.tripped || a.regressed || a.improved {
		t.Errorf("stable benchmark tripped: %+v", a)
	}
}

func TestDropMatching(t *testing.T) {
	m := map[string]float64{
		"BenchmarkShardedIngest/shards=1,batch=1": 1,
		"BenchmarkShardedIngest/shards=8,batch=1": 2,
		"BenchmarkShardedIngest/shards=8,batch=5": 3,
		"BenchmarkFanout":                         4,
	}
	dropMatching(m, regexp.MustCompile(`ShardedIngest/shards=(2|4|8)`))
	if len(m) != 2 {
		t.Fatalf("kept %d benchmarks (%v), want the single-shard and unrelated ones", len(m), m)
	}
	for _, keep := range []string{"BenchmarkShardedIngest/shards=1,batch=1", "BenchmarkFanout"} {
		if _, ok := m[keep]; !ok {
			t.Errorf("%s was dropped", keep)
		}
	}
}

func TestCompareRaw(t *testing.T) {
	base := map[string]float64{"A": 10e6, "B": 10e6}
	cur := map[string]float64{"A": 10.1e6, "B": 14e6}
	vs := compare(base, cur, 0.30, 1e6, false)
	byName := map[string]verdict{}
	for _, v := range vs {
		byName[v.name] = v
	}
	if byName["A"].tripped {
		t.Errorf("1%% drift tripped raw compare: %+v", byName["A"])
	}
	if !byName["B"].tripped {
		t.Errorf("40%% drift did not trip raw compare: %+v", byName["B"])
	}
}
