// Package wal gives a repository durable state: a per-shard write-ahead
// log with periodic snapshots, so a crashed process rejoins with its
// exact pre-crash per-item values and edge filter state instead of
// rejoining cold and serving nothing until the next source push.
//
// The write path rides the ingest layer's batch boundary: every update a
// node applies is a buffered Append, and the batch's end is one Commit —
// one log record, one buffered write, and (under the default policy) one
// fsync per *batch*, never one per update. Every SnapshotEvery commits
// the log rotates: the caller's full state is written as a snapshot and
// the old log segment is discarded, which bounds both disk usage and
// replay time.
//
// Recovery (Open) loads the newest valid snapshot, replays the matching
// log segment, and truncates any torn tail — a crash mid-commit leaves a
// log that recovers to the last complete record, never one that errors
// or panics (FuzzReplay pins this over corrupted, truncated and
// bit-flipped logs). The replayed batches are returned to the caller in
// commit order so it can re-apply them through the node core's normal
// pipeline, reproducing not just the values but the per-edge Eq. 3+7
// filter decisions the pre-crash process had made.
//
// # On-disk layout
//
// All integers are little-endian, like the wire format (internal/wire),
// and both file kinds open with a magic + version header so the layout
// can evolve under the same rule: bump the version byte on any
// incompatible change; readers reject versions they do not know.
//
//	log  file wal-<seq>.log:   "D3TW" ver(1) pad(3), then records
//	record:                    u32 len | u32 crc32(payload) | payload
//	record payload:            u32 count, count x (u16 itemLen, item, u64 bits(value))
//	snap file snap-<seq>.snap: "D3TS" ver(1) pad(3), u64 seq,
//	                           u32 len | u32 crc32(payload) | payload
//	snap payload:              u32 nValues, nValues x (u16 itemLen, item, u64 bits),
//	                           u32 nEdges, nEdges x (u64 dep, u16 itemLen, item,
//	                                                 u64 bits(last), u8 seeded)
//
// A snapshot with sequence number S covers every commit before log
// segment wal-S was created; recovery is "load snap-S, replay wal-S".
// Rotation writes snap-(S+1) to a temp file, fsyncs, renames (atomic on
// POSIX), creates wal-(S+1), then removes the old pair — a crash between
// any two steps leaves a directory Open recovers from.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Fsync policies: how often the log forces its records to stable
// storage. Every policy still flushes buffered records to the OS at each
// Commit, so a process crash (the failure model of the resilience layer)
// never loses a committed batch; the policies differ only in power-loss
// durability versus commit latency.
const (
	// PolicyBatch (the default) fsyncs at snapshot rotations and Close:
	// commits are OS-buffered, bounded data loss on power failure.
	PolicyBatch = "batch"
	// PolicyAlways fsyncs once per committed batch — the group commit:
	// one fsync per ingest window, never one per update.
	PolicyAlways = "always"
	// PolicyNever never fsyncs (tests, figures, throwaway dirs).
	PolicyNever = "never"
)

// ParsePolicy validates an fsync policy name ("" means PolicyBatch).
func ParsePolicy(s string) (string, error) {
	switch s {
	case "", PolicyBatch:
		return PolicyBatch, nil
	case PolicyAlways, PolicyNever:
		return s, nil
	}
	return "", fmt.Errorf("wal: unknown fsync policy %q (want %s, %s or %s)",
		s, PolicyBatch, PolicyAlways, PolicyNever)
}

// Options configures one log directory.
type Options struct {
	// Dir is the log's directory, created if missing. One directory holds
	// one shard's state; a sharded node uses one per (node, shard).
	Dir string
	// SnapshotEvery is the number of commits between snapshot rotations
	// (default 256). Smaller intervals mean shorter replay at recovery
	// and more snapshot writes in steady state.
	SnapshotEvery int
	// Fsync is the durability policy (PolicyBatch when empty).
	Fsync string
}

// withDefaults resolves zero values.
func (o Options) withDefaults() (Options, error) {
	if o.Dir == "" {
		return o, errors.New("wal: Options.Dir is required")
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 256
	}
	p, err := ParsePolicy(o.Fsync)
	if err != nil {
		return o, err
	}
	o.Fsync = p
	return o, nil
}

// Update is one logged (item, value) application.
type Update struct {
	Item  string
	Value float64
}

// Edge is one outgoing push edge's durable filter state: the last value
// pushed to the dependent and whether the edge has carried a value at
// all (the first-push rule's flag). Dep is the dependent's repository id
// widened to int64 so the package stays free of overlay types.
type Edge struct {
	Dep    int64
	Item   string
	Last   float64
	Seeded bool
}

// State is a full durable snapshot of one core: per-item values plus
// per-edge filter state.
type State struct {
	Values map[string]float64
	Edges  []Edge
}

// Recovered is what Open found on disk.
type Recovered struct {
	// State is the newest valid snapshot's state; apply it first.
	State State
	// Batches are the committed batches replayed from the snapshot's log
	// segment, in commit order; re-apply them after State, through the
	// node core's normal pipeline so edge filter decisions replay too.
	Batches [][]Update
	// SnapshotSeq is the recovered snapshot's sequence number (0 when
	// the directory held no snapshot and recovery started empty).
	SnapshotSeq uint64
	// Updates counts the individual updates across Batches.
	Updates int
	// TornBytes is how much torn tail was truncated from the log — bytes
	// after the last complete, checksummed record. Nonzero after a crash
	// mid-commit; recovery proceeds without them.
	TornBytes int64
}

// Empty reports whether recovery found nothing: no snapshot state and no
// replayable records.
func (r *Recovered) Empty() bool {
	return len(r.State.Values) == 0 && len(r.State.Edges) == 0 && len(r.Batches) == 0
}

const (
	logMagic  = "D3TW"
	snapMagic = "D3TS"
	version   = 1
	headerLen = 8
	// maxRecord caps one record's payload (16 MiB) so a corrupt length
	// prefix cannot drive allocation; larger prefixes read as torn tail.
	maxRecord = 1 << 24
)

// Log is an open write-ahead log. Not safe for concurrent use: callers
// serialize on the same lock that guards the core the log shadows.
type Log struct {
	opts Options
	seq  uint64
	f    *os.File
	w    *bufio.Writer
	pend []Update
	buf  []byte
	// commits counts committed (non-empty) batches since the last
	// rotation; snapshots counts rotations performed by this handle.
	commits   int
	snapshots uint64
	closed    bool
}

// Open recovers the directory's state and opens the log for appending.
// It creates the directory if needed, loads the newest valid snapshot,
// replays the matching log segment (truncating any torn tail in place),
// and removes stale segments left by an interrupted rotation.
func Open(dir string, opts Options) (*Log, *Recovered, error) {
	opts.Dir = dir
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	snaps, logs, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}

	rec := &Recovered{State: State{Values: map[string]float64{}}}
	// Newest valid snapshot wins; a corrupt one falls back to the next.
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })
	for _, s := range snaps {
		st, err := readSnapshot(snapPath(dir, s), s)
		if err != nil {
			continue
		}
		rec.State = st
		rec.SnapshotSeq = s
		break
	}
	seq := rec.SnapshotSeq
	if seq == 0 {
		seq = 1 // fresh directory: implicit empty snapshot, first segment
	}

	if err := replayFile(logPath(dir, seq), rec); err != nil {
		return nil, nil, err
	}

	// Remove every other segment: older pairs an interrupted rotation
	// left behind, and newer logs orphaned by a snapshot that failed
	// validation (their records are unreachable without it).
	for _, s := range snaps {
		if s != rec.SnapshotSeq {
			os.Remove(snapPath(dir, s))
		}
	}
	for _, s := range logs {
		if s != seq {
			os.Remove(logPath(dir, s))
		}
	}

	l := &Log{opts: opts, seq: seq}
	if err := l.openSegment(); err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

// openSegment opens (creating and headering if needed) wal-<seq> for
// append.
func (l *Log) openSegment() error {
	path := logPath(l.opts.Dir, l.seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	if info.Size() == 0 {
		if _, err := f.Write(header(logMagic)); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
	} else if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Append buffers one update for the current batch. It does no IO; the
// batch reaches the log at the next Commit.
func (l *Log) Append(item string, v float64) {
	l.pend = append(l.pend, Update{Item: item, Value: v})
}

// Commit writes the buffered batch as one record — the group commit on
// the ingest batch boundary — and rotates the snapshot when due. state
// is called only when a rotation happens, and must return the caller's
// full current state (the core's values and edge filter state). An empty
// batch commits to nothing.
func (l *Log) Commit(state func() State) error {
	if l.closed {
		return errors.New("wal: commit on closed log")
	}
	if len(l.pend) == 0 {
		return nil
	}
	l.buf = appendRecord(l.buf[:0], l.pend)
	l.pend = l.pend[:0]
	if _, err := l.w.Write(l.buf); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if l.opts.Fsync == PolicyAlways {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	l.commits++
	if l.commits >= l.opts.SnapshotEvery {
		return l.rotate(state())
	}
	return nil
}

// rotate writes the state as snap-(seq+1), switches to a fresh log
// segment, and removes the old pair. Each step leaves the directory
// recoverable: the snapshot lands durably (temp file + fsync + rename)
// before the old segment is touched.
func (l *Log) rotate(st State) error {
	next := l.seq + 1
	if err := writeSnapshot(l.opts.Dir, next, st, l.opts.Fsync != PolicyNever); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	oldLog, oldSnap := logPath(l.opts.Dir, l.seq), snapPath(l.opts.Dir, l.seq)
	l.seq = next
	l.commits = 0
	l.snapshots++
	if err := l.openSegment(); err != nil {
		return err
	}
	os.Remove(oldLog)
	os.Remove(oldSnap)
	return nil
}

// Close flushes, fsyncs (except under PolicyNever) and closes the log.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if l.opts.Fsync != PolicyNever {
		if err := l.f.Sync(); err != nil {
			l.f.Close()
			return fmt.Errorf("wal: %w", err)
		}
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Seq returns the current segment sequence number.
func (l *Log) Seq() uint64 { return l.seq }

// Snapshots returns how many snapshot rotations this handle performed.
func (l *Log) Snapshots() uint64 { return l.snapshots }

// appendRecord encodes one committed batch onto buf.
func appendRecord(buf []byte, ups []Update) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // len + crc placeholders
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ups)))
	for _, u := range ups {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(u.Item)))
		buf = append(buf, u.Item...)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(u.Value))
	}
	payload := buf[start+8:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	return buf
}

// Replay parses a log stream: header, then records until the first torn
// or corrupt byte. It returns the committed batches in order and the
// number of stream bytes the valid prefix spans (header included); the
// caller truncates there. A bad header is an error — that is not a torn
// tail but a file of the wrong kind or version; everything after a valid
// header recovers, never errors.
func Replay(r io.Reader) (batches [][]Update, valid int64, err error) {
	h := make([]byte, headerLen)
	if _, err := io.ReadFull(r, h); err != nil {
		return nil, 0, fmt.Errorf("wal: short log header: %w", err)
	}
	if string(h[:4]) != logMagic {
		return nil, 0, fmt.Errorf("wal: bad log magic %q", h[:4])
	}
	if h[4] != version {
		return nil, 0, fmt.Errorf("wal: unknown log version %d", h[4])
	}
	valid = headerLen
	hdr := make([]byte, 8)
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return batches, valid, nil // clean EOF or torn record header
		}
		n := binary.LittleEndian.Uint32(hdr)
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n < 4 || n > maxRecord {
			return batches, valid, nil // corrupt length prefix
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return batches, valid, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return batches, valid, nil // bit flip
		}
		ups, ok := parseRecord(payload)
		if !ok {
			return batches, valid, nil // checksummed garbage (foreign writer)
		}
		batches = append(batches, ups)
		valid += 8 + int64(n)
	}
}

// parseRecord decodes one record payload.
func parseRecord(p []byte) ([]Update, bool) {
	count := binary.LittleEndian.Uint32(p)
	p = p[4:]
	// Each update needs at least 10 bytes (empty item): a count beyond
	// that is corrupt, not a huge batch.
	if int(count) > len(p)/10 {
		return nil, false
	}
	ups := make([]Update, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(p) < 2 {
			return nil, false
		}
		n := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if len(p) < n+8 {
			return nil, false
		}
		ups = append(ups, Update{
			Item:  string(p[:n]),
			Value: math.Float64frombits(binary.LittleEndian.Uint64(p[n:])),
		})
		p = p[n+8:]
	}
	if len(p) != 0 {
		return nil, false
	}
	return ups, true
}

// replayFile replays one on-disk segment into rec, truncating any torn
// tail in place. A missing segment recovers to the snapshot alone.
func replayFile(path string, rec *Recovered) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	batches, valid, err := Replay(bufio.NewReader(f))
	f.Close()
	if err != nil {
		// The header itself is unusable: the segment carries no
		// recoverable records. Start it over rather than fail the node.
		os.Remove(path)
		return nil
	}
	rec.Batches = batches
	for _, b := range batches {
		rec.Updates += len(b)
	}
	if torn := info.Size() - valid; torn > 0 {
		rec.TornBytes = torn
		if err := os.Truncate(path, valid); err != nil {
			return fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	return nil
}

// header builds an 8-byte file header.
func header(magic string) []byte {
	h := make([]byte, headerLen)
	copy(h, magic)
	h[4] = version
	return h
}

func logPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", seq))
}

func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d.snap", seq))
}

// scanDir lists the directory's snapshot and log sequence numbers.
func scanDir(dir string) (snaps, logs []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			if s, err := strconv.ParseUint(name[5:len(name)-5], 10, 64); err == nil {
				snaps = append(snaps, s)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if s, err := strconv.ParseUint(name[4:len(name)-4], 10, 64); err == nil {
				logs = append(logs, s)
			}
		}
	}
	return snaps, logs, nil
}

// writeSnapshot writes snap-<seq> durably: temp file, optional fsync,
// atomic rename. The payload is byte-deterministic — values sorted by
// item, edges by (item, dep) — so identical states produce identical
// snapshots.
func writeSnapshot(dir string, seq uint64, st State, sync bool) error {
	buf := header(snapMagic)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // len + crc placeholders

	items := make([]string, 0, len(st.Values))
	for item := range st.Values {
		items = append(items, item)
	}
	sort.Strings(items)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(items)))
	for _, item := range items {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(item)))
		buf = append(buf, item...)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.Values[item]))
	}
	edges := append([]Edge(nil), st.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Item != edges[j].Item {
			return edges[i].Item < edges[j].Item
		}
		return edges[i].Dep < edges[j].Dep
	})
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(edges)))
	for _, e := range edges {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Dep))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.Item)))
		buf = append(buf, e.Item...)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Last))
		var s byte
		if e.Seeded {
			s = 1
		}
		buf = append(buf, s)
	}
	payload := buf[start+8:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))

	tmp := snapPath(dir, seq) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("wal: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, snapPath(dir, seq)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// readSnapshot loads and validates snap-<seq>. Any mismatch — magic,
// version, sequence, checksum, malformed payload — is an error; the
// caller falls back to an older snapshot.
func readSnapshot(path string, seq uint64) (State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return State{}, err
	}
	if len(data) < headerLen+16 {
		return State{}, errors.New("wal: snapshot too short")
	}
	if string(data[:4]) != snapMagic {
		return State{}, errors.New("wal: bad snapshot magic")
	}
	if data[4] != version {
		return State{}, errors.New("wal: unknown snapshot version")
	}
	if got := binary.LittleEndian.Uint64(data[headerLen:]); got != seq {
		return State{}, fmt.Errorf("wal: snapshot claims seq %d, file named %d", got, seq)
	}
	n := binary.LittleEndian.Uint32(data[headerLen+8:])
	crc := binary.LittleEndian.Uint32(data[headerLen+12:])
	payload := data[headerLen+16:]
	if uint32(len(payload)) != n {
		return State{}, errors.New("wal: snapshot length mismatch")
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return State{}, errors.New("wal: snapshot checksum mismatch")
	}
	st, ok := parseSnapshot(payload)
	if !ok {
		return State{}, errors.New("wal: malformed snapshot payload")
	}
	return st, nil
}

// parseSnapshot decodes a validated snapshot payload.
func parseSnapshot(p []byte) (State, bool) {
	st := State{Values: map[string]float64{}}
	if len(p) < 4 {
		return st, false
	}
	nv := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if int(nv) > len(p)/10 {
		return st, false
	}
	for i := uint32(0); i < nv; i++ {
		if len(p) < 2 {
			return st, false
		}
		n := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if len(p) < n+8 {
			return st, false
		}
		st.Values[string(p[:n])] = math.Float64frombits(binary.LittleEndian.Uint64(p[n:]))
		p = p[n+8:]
	}
	if len(p) < 4 {
		return st, false
	}
	ne := binary.LittleEndian.Uint32(p)
	p = p[4:]
	// Minimum edge size: 8 (dep) + 2 (len) + 8 (last) + 1 (seeded).
	if int(ne) > len(p)/19 {
		return st, false
	}
	for i := uint32(0); i < ne; i++ {
		if len(p) < 10 {
			return st, false
		}
		dep := int64(binary.LittleEndian.Uint64(p))
		n := int(binary.LittleEndian.Uint16(p[8:]))
		p = p[10:]
		if len(p) < n+9 {
			return st, false
		}
		st.Edges = append(st.Edges, Edge{
			Dep:    dep,
			Item:   string(p[:n]),
			Last:   math.Float64frombits(binary.LittleEndian.Uint64(p[n:])),
			Seeded: p[n+8] == 1,
		})
		p = p[n+9:]
	}
	return st, len(p) == 0
}
