package wal

import (
	"bytes"
	"fmt"
	"testing"
)

// BenchmarkWALAppend measures the group-commit hot path: 16 buffered
// appends and one commit, fsync disabled so the number is the encode +
// buffered-write cost the ingest window actually pays.
func BenchmarkWALAppend(b *testing.B) {
	l, _, err := Open(b.TempDir(), Options{SnapshotEvery: 1 << 30, Fsync: PolicyNever})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	items := make([]string, 16)
	for i := range items {
		items[i] = fmt.Sprintf("item%02d", i)
	}
	state := func() State { return State{} }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, it := range items {
			l.Append(it, float64(i+j))
		}
		if err := l.Commit(state); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALReplay measures recovery-side parse throughput over an
// in-memory log of 1024 sixteen-update records.
func BenchmarkWALReplay(b *testing.B) {
	buf := header(logMagic)
	ups := make([]Update, 16)
	for i := range ups {
		ups[i] = Update{Item: fmt.Sprintf("item%02d", i), Value: float64(i)}
	}
	for r := 0; r < 1024; r++ {
		buf = appendRecord(buf, ups)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batches, _, err := Replay(bytes.NewReader(buf))
		if err != nil || len(batches) != 1024 {
			b.Fatalf("replay: %d batches, err %v", len(batches), err)
		}
	}
}
