package wal

import (
	"bytes"
	"testing"
)

// FuzzReplay pins the torn-tail guarantee: whatever bytes a crash (or an
// adversary) leaves in a log file, Replay never panics, never errors
// after a valid header, and always reports a valid prefix that replays
// to the same batches when re-read — the property recovery's physical
// truncation depends on.
func FuzzReplay(f *testing.F) {
	// Seed corpus: a clean two-record log, then crash shapes.
	clean := header(logMagic)
	clean = appendRecord(clean, []Update{{Item: "a", Value: 1}, {Item: "b", Value: -2.5}})
	clean = appendRecord(clean, []Update{{Item: "a", Value: 3}})
	f.Add(clean)
	f.Add(clean[:len(clean)-5])    // torn payload
	f.Add(clean[:headerLen+3])     // torn record header
	f.Add(header(logMagic))        // empty log
	f.Add([]byte{})                // no header at all
	f.Add([]byte("D3TWongheader")) // bad version byte
	flip := append([]byte(nil), clean...)
	flip[headerLen+12] ^= 0x01
	f.Add(flip) // bit flip in record 1

	f.Fuzz(func(t *testing.T, data []byte) {
		batches, valid, err := Replay(bytes.NewReader(data))
		if err != nil {
			// Only a bad/short header may error, and it recovers nothing.
			if valid != 0 || batches != nil {
				t.Fatalf("error with partial result: valid=%d batches=%d", valid, len(batches))
			}
			return
		}
		if valid < headerLen || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [%d, %d]", valid, headerLen, len(data))
		}
		// Re-replaying the reported valid prefix must be stable: same
		// batch count, no torn tail — this is what truncation relies on.
		b2, v2, err2 := Replay(bytes.NewReader(data[:valid]))
		if err2 != nil {
			t.Fatalf("re-replay of valid prefix errored: %v", err2)
		}
		if v2 != valid || len(b2) != len(batches) {
			t.Fatalf("unstable prefix: first (%d, %d batches), second (%d, %d batches)",
				valid, len(batches), v2, len(b2))
		}
	})
}
