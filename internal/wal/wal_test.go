package wal

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// commitBatches writes batches through a fresh Log and closes it.
func commitBatches(t *testing.T, dir string, opts Options, batches [][]Update, st State) {
	t.Helper()
	l, _, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, b := range batches {
		for _, u := range b {
			l.Append(u.Item, u.Value)
		}
		if err := l.Commit(func() State { return st }); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	batches := [][]Update{
		{{Item: "a", Value: 1.5}, {Item: "b", Value: -2}},
		{{Item: "a", Value: 3}},
		{{Item: "c", Value: math.Inf(1)}},
	}
	commitBatches(t, dir, Options{Fsync: PolicyNever}, batches, State{})

	_, rec, err := Open(dir, Options{Fsync: PolicyNever})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(rec.Batches) != len(batches) {
		t.Fatalf("replayed %d batches, want %d", len(rec.Batches), len(batches))
	}
	for i, b := range batches {
		if len(rec.Batches[i]) != len(b) {
			t.Fatalf("batch %d: %d updates, want %d", i, len(rec.Batches[i]), len(b))
		}
		for j, u := range b {
			got := rec.Batches[i][j]
			if got.Item != u.Item || math.Float64bits(got.Value) != math.Float64bits(u.Value) {
				t.Fatalf("batch %d update %d: got %+v want %+v", i, j, got, u)
			}
		}
	}
	if rec.Updates != 4 {
		t.Fatalf("Updates = %d, want 4", rec.Updates)
	}
	if rec.TornBytes != 0 {
		t.Fatalf("TornBytes = %d on a clean log", rec.TornBytes)
	}
}

func TestEmptyCommitWritesNothing(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: PolicyNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Commit(func() State { t.Fatal("state requested for empty commit"); return State{} }); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	_, rec, err := Open(dir, Options{Fsync: PolicyNever})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatalf("empty commits left state: %+v", rec)
	}
}

func TestSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	st := State{
		Values: map[string]float64{"x": 10, "y": 20},
		Edges:  []Edge{{Dep: 3, Item: "x", Last: 10, Seeded: true}},
	}
	l, _, err := Open(dir, Options{SnapshotEvery: 2, Fsync: PolicyNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ { // 2 rotations (after commits 2 and 4), 1 trailing record
		l.Append("x", float64(i))
		if err := l.Commit(func() State { return st }); err != nil {
			t.Fatal(err)
		}
	}
	if l.Snapshots() != 2 {
		t.Fatalf("Snapshots() = %d, want 2", l.Snapshots())
	}
	if l.Seq() != 3 {
		t.Fatalf("Seq() = %d, want 3", l.Seq())
	}
	l.Close()

	_, rec, err := Open(dir, Options{SnapshotEvery: 2, Fsync: PolicyNever})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotSeq != 3 {
		t.Fatalf("SnapshotSeq = %d, want 3", rec.SnapshotSeq)
	}
	if rec.State.Values["x"] != 10 || rec.State.Values["y"] != 20 {
		t.Fatalf("snapshot values = %v", rec.State.Values)
	}
	if len(rec.State.Edges) != 1 || rec.State.Edges[0] != st.Edges[0] {
		t.Fatalf("snapshot edges = %+v", rec.State.Edges)
	}
	if len(rec.Batches) != 1 || rec.Batches[0][0].Value != 4 {
		t.Fatalf("trailing batches = %+v", rec.Batches)
	}
	// Old segments must be gone.
	for seq := uint64(1); seq < 3; seq++ {
		if _, err := os.Stat(logPath(dir, seq)); !os.IsNotExist(err) {
			t.Fatalf("stale wal-%d survived rotation", seq)
		}
		if _, err := os.Stat(snapPath(dir, seq)); !os.IsNotExist(err) {
			t.Fatalf("stale snap-%d survived rotation", seq)
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	commitBatches(t, dir, Options{Fsync: PolicyNever},
		[][]Update{{{Item: "a", Value: 1}}, {{Item: "b", Value: 2}}}, State{})

	// Simulate a crash mid-commit: append half a record.
	path := logPath(dir, 1)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := appendRecord(nil, []Update{{Item: "c", Value: 3}})
	if _, err := f.Write(torn[:len(torn)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, rec, err := Open(dir, Options{Fsync: PolicyNever})
	if err != nil {
		t.Fatalf("Open on torn log: %v", err)
	}
	if len(rec.Batches) != 2 {
		t.Fatalf("replayed %d batches, want the 2 complete ones", len(rec.Batches))
	}
	if rec.TornBytes != int64(len(torn)-5) {
		t.Fatalf("TornBytes = %d, want %d", rec.TornBytes, len(torn)-5)
	}
	// The truncation is physical: a second recovery sees a clean log.
	_, rec2, err := Open(dir, Options{Fsync: PolicyNever})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.TornBytes != 0 || len(rec2.Batches) != 2 {
		t.Fatalf("second recovery: torn=%d batches=%d", rec2.TornBytes, len(rec2.Batches))
	}
}

func TestBitFlipStopsReplay(t *testing.T) {
	dir := t.TempDir()
	commitBatches(t, dir, Options{Fsync: PolicyNever},
		[][]Update{{{Item: "a", Value: 1}}, {{Item: "bb", Value: 2}}, {{Item: "c", Value: 3}}}, State{})

	path := logPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the second record's payload (header + record 1 is
	// 8 + 8+4+2+1+8 = 31 bytes; flip inside the next record's item).
	data[31+8+4+2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(dir, Options{Fsync: PolicyNever})
	if err != nil {
		t.Fatalf("Open on bit-flipped log: %v", err)
	}
	if len(rec.Batches) != 1 || rec.Batches[0][0].Item != "a" {
		t.Fatalf("replay past a bit flip: %+v", rec.Batches)
	}
	if rec.TornBytes == 0 {
		t.Fatal("bit-flipped tail not truncated")
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	st := State{Values: map[string]float64{"x": 1}}
	l, _, err := Open(dir, Options{SnapshotEvery: 1, Fsync: PolicyNever})
	if err != nil {
		t.Fatal(err)
	}
	l.Append("x", 1)
	if err := l.Commit(func() State { return st }); err != nil { // rotates to seq 2
		t.Fatal(err)
	}
	l.Close()

	// Corrupt snap-2's checksum region.
	path := snapPath(dir, 2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// No older snapshot survives rotation, so recovery restarts empty —
	// but it must not error, and the directory must be writable again.
	l2, rec, err := Open(dir, Options{SnapshotEvery: 1, Fsync: PolicyNever})
	if err != nil {
		t.Fatalf("Open with corrupt snapshot: %v", err)
	}
	if !rec.Empty() {
		t.Fatalf("corrupt snapshot yielded state: %+v", rec)
	}
	l2.Append("y", 2)
	if err := l2.Commit(func() State { return State{} }); err != nil {
		t.Fatal(err)
	}
	l2.Close()
}

func TestInterruptedRotationSnapshotOnly(t *testing.T) {
	// Crash window: snap-(S+1) written, wal-(S+1) not yet created.
	dir := t.TempDir()
	commitBatches(t, dir, Options{Fsync: PolicyNever},
		[][]Update{{{Item: "a", Value: 1}}}, State{})
	st := State{Values: map[string]float64{"a": 1}}
	if err := writeSnapshot(dir, 2, st, false); err != nil {
		t.Fatal(err)
	}

	l, rec, err := Open(dir, Options{Fsync: PolicyNever})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotSeq != 2 || rec.State.Values["a"] != 1 {
		t.Fatalf("recovered %+v, want snapshot 2", rec)
	}
	if len(rec.Batches) != 0 {
		t.Fatalf("wal-1's records must not replay over snap-2: %+v", rec.Batches)
	}
	if l.Seq() != 2 {
		t.Fatalf("Seq() = %d, want 2", l.Seq())
	}
	// wal-1 was stale and must be cleaned up.
	if _, err := os.Stat(logPath(dir, 1)); !os.IsNotExist(err) {
		t.Fatal("stale wal-1 survived recovery")
	}
	l.Close()
}

func TestFreshDirTmpSnapshotIgnored(t *testing.T) {
	// Crash window: snapshot temp file written but never renamed.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snap-00000002.snap.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{Fsync: PolicyNever})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatalf("temp snapshot recovered as state: %+v", rec)
	}
}

func TestSnapshotBytesDeterministic(t *testing.T) {
	st := State{
		Values: map[string]float64{"b": 2, "a": 1, "c": 3},
		Edges: []Edge{
			{Dep: 2, Item: "b", Last: 2, Seeded: true},
			{Dep: 1, Item: "a", Last: 1},
			{Dep: 1, Item: "b", Last: 2, Seeded: true},
		},
	}
	d1, d2 := t.TempDir(), t.TempDir()
	if err := writeSnapshot(d1, 1, st, false); err != nil {
		t.Fatal(err)
	}
	// Same state, different map iteration / edge order.
	st2 := State{
		Values: map[string]float64{"c": 3, "a": 1, "b": 2},
		Edges: []Edge{
			{Dep: 1, Item: "b", Last: 2, Seeded: true},
			{Dep: 2, Item: "b", Last: 2, Seeded: true},
			{Dep: 1, Item: "a", Last: 1},
		},
	}
	if err := writeSnapshot(d2, 1, st2, false); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(snapPath(d1, 1))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(snapPath(d2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("equal states produced different snapshot bytes")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, ok := range []string{"", "batch", "always", "never"} {
		if _, err := ParsePolicy(ok); err != nil {
			t.Errorf("ParsePolicy(%q): %v", ok, err)
		}
	}
	if _, err := ParsePolicy("sync"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
	if p, _ := ParsePolicy(""); p != PolicyBatch {
		t.Errorf("empty policy resolved to %q, want batch", p)
	}
}

func TestFsyncAlways(t *testing.T) {
	dir := t.TempDir()
	commitBatches(t, dir, Options{Fsync: PolicyAlways},
		[][]Update{{{Item: "a", Value: 1}}}, State{})
	_, rec, err := Open(dir, Options{Fsync: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != 1 {
		t.Fatalf("batches = %d, want 1", len(rec.Batches))
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, _, err := Open("", Options{}); err == nil {
		t.Fatal("Open accepted an empty dir")
	}
}

func TestBadHeaderSegmentRestarts(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(logPath(dir, 1), []byte("not a wal file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec, err := Open(dir, Options{Fsync: PolicyNever})
	if err != nil {
		t.Fatalf("Open on foreign file: %v", err)
	}
	if !rec.Empty() {
		t.Fatalf("foreign file recovered as state: %+v", rec)
	}
	l.Append("a", 1)
	if err := l.Commit(func() State { return State{} }); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, rec2, err := Open(dir, Options{Fsync: PolicyNever})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Batches) != 1 {
		t.Fatalf("restarted segment lost its record: %+v", rec2)
	}
}
