// Package vserve is the virtual-session serving mode: the same
// client-serving semantics as internal/serve — nearest-first placement
// under a session cap, Eqs. 3+7 per-client filtering with the first-push
// rule, churn, crash migration with resync, client-observed fidelity —
// scaled from tens of thousands of sessions to millions on one machine.
//
// The concrete fleet materializes each client as a Session object with a
// core-side node.Session, a map of pointer-boxed meters, and a private
// candidate slice: several hundred heap objects and ~2 KiB per client.
// The virtual fleet materializes *none of that*. A session is a handle —
// an index into per-shard struct-of-arrays state:
//
//	shard s (FNV-1a(name) % shards)
//	├── home[i], repo[i], seq[i], orphan flags    per-session scalars
//	├── wOff[i], wLen[i]                          watch-list extent
//	└── watch entries (flat, item-sorted per session)
//	    ├── wItem, wTol                           subscription
//	    ├── wHave, wSeeded                        session-edge filter state
//	    └── wInViol, wAttached, wLast, wSpan, wViol   fidelity meter
//
// The meter state is the same piecewise-constant integrator as
// serve.meter with one compression: the per-meter source copy is gone —
// the source value of an item is global, so it lives once in src[item]
// instead of once per (session, item). Everything else is bit-identical
// arithmetic, which is what lets TestVirtualParity demand *equality* (not
// tolerance) between the two fleets' fidelity numbers.
//
// Fan-out is driven by postings lists instead of maps-of-objects:
// byItem[item] lists every watch entry (source metering), and
// post[shard][repo][item] lists the watch entries of sessions currently
// attached to the repository (delivery). Attach/detach maintain the
// postings with swap-deletes through a per-watch position; the delivery
// hot path walks a slice, touches flat arrays, and allocates nothing
// (TestVirtualDeliverAllocFree).
//
// Placement rides the shared internal/place index: per-home candidate
// orders are computed once per home endpoint, not per session, and the
// optional consistent-hash overflow ring (Options.RingSlots) bounds the
// admission walk under cap pressure instead of degenerating to a linear
// scan. Scenario plans from internal/trace (flash crowds, diurnal waves)
// schedule churn; correlated regional failures arrive through the
// resilience runner's crash/rejoin observers exactly as single faults do.
package vserve

import (
	"fmt"
	"math/rand"
	"sort"

	"d3t/internal/coherency"
	"d3t/internal/netsim"
	"d3t/internal/obs"
	"d3t/internal/place"
	"d3t/internal/repository"
	"d3t/internal/resilience"
	"d3t/internal/serve"
	"d3t/internal/sim"
	"d3t/internal/trace"
)

// Options parameterizes a virtual fleet.
type Options struct {
	// Cap is the per-repository session cap (0 = unlimited), as in
	// serve.Options.
	Cap int
	// Plan schedules session churn (Fault.Node is a 1-based session
	// index), as in serve.Options.
	Plan *resilience.Plan
	// Scenario schedules scenario-driven churn (tick-indexed; converted
	// through Interval). Flash-crowd members are created detached and
	// watch the hot item; see Synthetic.
	Scenario *trace.ScenarioPlan
	// Interval is the tick length in sim time used to convert scenario
	// ticks (defaults to 1, matching resilience.ParsePlan's convention
	// At = tick * interval).
	Interval sim.Time
	// Obs, when set, collects per-repository serving counters and the
	// redirect-latency histogram, exactly as the concrete fleet does.
	Obs *obs.Tree
	// Shards is the session-state shard count (default 8). Sessions are
	// sharded by FNV-1a of their name.
	Shards int
	// RingSlots/RingAfter enable the placement index's consistent-hash
	// overflow ring (see place.Options). Zero keeps strict nearest-first
	// overflow — required for byte parity with the concrete fleet.
	RingSlots int
	RingAfter int
	// Workers > 1 fans deliveries out across shards in parallel. Shard
	// state is disjoint and per-shard tallies are merged in shard order,
	// so results are identical to the sequential path.
	Workers int
}

// Stats extends the serving-layer stats with virtual-fleet extras.
type Stats struct {
	serve.Stats
	// Shards is the shard count; BytesPerSession the measured resident
	// session-state footprint divided by the population.
	Shards          int
	BytesPerSession float64
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("%s shards=%d bytes/session=%.0f", s.Stats.String(), s.Shards, s.BytesPerSession)
}

// watchRef addresses one watch entry: shard index + index into the
// shard's flat watch arrays.
type watchRef struct {
	sh uint32
	wi uint32
}

// shard holds the struct-of-arrays session state of one shard. All
// per-watch arrays are parallel; a session's watches occupy
// [wOff[i], wOff[i]+wLen[i]) in item-sorted order.
type shard struct {
	// Per-session scalars.
	hash   []uint32 // FNV-1a of the session name (ring key)
	home   []int32
	repo   []int32  // current repository id, or -1 detached
	seq    []uint64 // attach sequence on the current repository
	orphan []bool
	wOff   []uint32
	wLen   []uint16
	names  []string // nil for synthetic populations

	// Per-watch subscription and filter state.
	wItem   []uint32
	wTol    []coherency.Requirement
	wHave   []float64
	wSeeded []bool

	// Per-watch fidelity meter (serve.meter, flattened; the source copy
	// is global in Fleet.src).
	wInViol   []bool
	wAttached []bool
	wLast     []sim.Time
	wSpan     []sim.Time
	wViol     []sim.Time

	// wPos is the watch's position in its current delivery postings
	// slice (valid while attached), maintained for O(1) swap-delete.
	wPos []uint32
}

// rosterEntry records one admission on a repository, in attach order.
// The entry is stale (the session has since left) unless the session's
// current repo and seq still match.
type rosterEntry struct {
	h   uint64
	seq uint64
}

// event is one scheduled churn action (sim time).
type event struct {
	at     sim.Time
	idx    int
	depart bool
}

// Fleet is the virtual-session fleet. Like serve.Fleet it is
// single-threaded (Workers only parallelizes internally): populate,
// Seed, run the simulation with the fleet as its observer, Finalize.
type Fleet struct {
	net   *netsim.Network
	repos []*repository.Repository
	opts  Options
	ix    *place.Index

	itemID   map[string]uint32
	itemName []string
	src      []float64 // current source value per item

	// Per-repository serving state: current copies, liveness, load,
	// attach rosters, attach-sequence counters.
	values  [][]float64
	valSet  [][]bool
	alive   []bool
	sessCnt []int
	roster  [][]rosterEntry
	seqs    []uint64

	// byItem[item] is the static all-watchers postings list (source
	// metering); post[shard][repo-1][item] the attached-watchers list
	// (delivery fan-out).
	byItem [][]watchRef
	post   [][][][]watchRef

	shards []shard
	// order is every created session in population order (the churn
	// plan's index space and the fidelity aggregation order).
	order  []uint64
	byName map[string]uint64

	events []event
	next   int

	stats Stats
	par   *parallel
}

// NewFleet builds an empty virtual fleet over the repository population
// (ids 1..n matching the network's endpoints). Item catalogue and
// sessions are added by AttachAll or Populate.
func NewFleet(net *netsim.Network, repos []*repository.Repository, opts Options) (*Fleet, error) {
	if opts.Shards <= 0 {
		opts.Shards = 8
	}
	if opts.Interval <= 0 {
		opts.Interval = 1
	}
	f := &Fleet{
		net:     net,
		repos:   repos,
		opts:    opts,
		itemID:  make(map[string]uint32),
		values:  make([][]float64, len(repos)),
		valSet:  make([][]bool, len(repos)),
		alive:   make([]bool, len(repos)),
		sessCnt: make([]int, len(repos)),
		roster:  make([][]rosterEntry, len(repos)),
		seqs:    make([]uint64, len(repos)),
		shards:  make([]shard, opts.Shards),
		byName:  make(map[string]uint64),
	}
	for i, r := range repos {
		if r.ID != repository.ID(i+1) {
			return nil, fmt.Errorf("vserve: repository %d at index %d (want contiguous ids from 1)", r.ID, i)
		}
		f.alive[i] = true
	}
	f.ix = place.New(net, len(repos), place.Options{RingSlots: opts.RingSlots, RingAfter: opts.RingAfter})
	f.post = make([][][][]watchRef, opts.Shards)
	for s := range f.post {
		f.post[s] = make([][][]watchRef, len(repos))
	}
	if opts.Plan != nil {
		for _, ft := range opts.Plan.Faults {
			idx := int(ft.Node) - 1
			f.events = append(f.events, event{at: ft.At, idx: idx, depart: true})
			if ft.RejoinAt > 0 {
				f.events = append(f.events, event{at: ft.RejoinAt, idx: idx})
			}
		}
	}
	if opts.Scenario != nil {
		for _, e := range opts.Scenario.Events {
			f.events = append(f.events, event{at: sim.Time(e.Tick) * opts.Interval, idx: e.Session, depart: e.Depart})
		}
	}
	sort.SliceStable(f.events, func(i, j int) bool { return f.events[i].at < f.events[j].at })
	if opts.Workers > 1 {
		f.par = newParallel(opts.Workers)
	}
	f.stats.Shards = opts.Shards
	return f, nil
}

// Index exposes the placement index (test instrumentation).
func (f *Fleet) Index() *place.Index { return f.ix }

// item interns an item name.
func (f *Fleet) item(name string) uint32 {
	id, ok := f.itemID[name]
	if !ok {
		id = uint32(len(f.itemName))
		f.itemID[name] = id
		f.itemName = append(f.itemName, name)
		f.src = append(f.src, 0)
		f.byItem = append(f.byItem, nil)
		for r := range f.values {
			f.values[r] = append(f.values[r], 0)
			f.valSet[r] = append(f.valSet[r], false)
		}
		for s := range f.post {
			for r := range f.post[s] {
				f.post[s][r] = append(f.post[s][r], nil)
			}
		}
	}
	return id
}

// handle packs (shard, index); split unpacks it.
func handle(sh, idx uint32) uint64 { return uint64(sh)<<32 | uint64(idx) }

func split(h uint64) (sh, idx uint32) { return uint32(h >> 32), uint32(h) }

// create appends one detached session to its shard and returns the
// handle. items must be sorted by name; tols parallel.
func (f *Fleet) create(name string, hash uint32, home repository.ID, items []uint32, tols []coherency.Requirement) uint64 {
	shi := hash % uint32(len(f.shards))
	sh := &f.shards[shi]
	idx := uint32(len(sh.hash))
	h := handle(shi, idx)
	sh.hash = append(sh.hash, hash)
	sh.home = append(sh.home, int32(home))
	sh.repo = append(sh.repo, -1)
	sh.seq = append(sh.seq, 0)
	sh.orphan = append(sh.orphan, false)
	sh.wOff = append(sh.wOff, uint32(len(sh.wItem)))
	sh.wLen = append(sh.wLen, uint16(len(items)))
	if name != "" {
		for len(sh.names) < int(idx) {
			sh.names = append(sh.names, "")
		}
		sh.names = append(sh.names, name)
	}
	for k, it := range items {
		wi := uint32(len(sh.wItem))
		sh.wItem = append(sh.wItem, it)
		sh.wTol = append(sh.wTol, tols[k])
		sh.wHave = append(sh.wHave, 0)
		sh.wSeeded = append(sh.wSeeded, false)
		sh.wInViol = append(sh.wInViol, false)
		sh.wAttached = append(sh.wAttached, false)
		sh.wLast = append(sh.wLast, 0)
		sh.wSpan = append(sh.wSpan, 0)
		sh.wViol = append(sh.wViol, 0)
		sh.wPos = append(sh.wPos, 0)
		f.byItem[it] = append(f.byItem[it], watchRef{sh: shi, wi: wi})
	}
	f.order = append(f.order, h)
	f.stats.Sessions++
	return h
}

// advance accounts [wLast, now) against the watch's current meter state
// — serve.meter.advance, flattened.
func (sh *shard) advance(wi uint32, now sim.Time) {
	if sh.wAttached[wi] {
		d := now - sh.wLast[wi]
		sh.wSpan[wi] += d
		if sh.wInViol[wi] {
			sh.wViol[wi] += d
		}
	}
	sh.wLast[wi] = now
}

// deliverWatch is serve.meter.deliver: advance, move the client copy,
// refresh the violation flag against the global source value.
func (f *Fleet) deliverWatch(sh *shard, wi uint32, now sim.Time, v float64) {
	sh.advance(wi, now)
	sh.wHave[wi] = v
	sh.wSeeded[wi] = true
	sh.wInViol[wi] = sh.wTol[wi].Violated(f.src[sh.wItem[wi]], v)
}

// CanServe reports whether the repository serves every watched item of
// the session at least as stringently as demanded — node.Core's
// CanServeSession over flat state.
func (f *Fleet) canServe(id repository.ID, sh *shard, i uint32) bool {
	r := f.repos[id-1]
	if r.IsSource() {
		return true
	}
	off, n := sh.wOff[i], uint32(sh.wLen[i])
	for wi := off; wi < off+n; wi++ {
		own, ok := r.Serving[f.itemName[sh.wItem[wi]]]
		if !ok || !own.AtLeastAsStringentAs(sh.wTol[wi]) {
			return false
		}
	}
	return true
}

// Alive, HasRoom and Load implement place.State.
func (f *Fleet) Alive(id repository.ID) bool { return f.alive[id-1] }
func (f *Fleet) HasRoom(id repository.ID) bool {
	return f.opts.Cap <= 0 || f.sessCnt[id-1] < f.opts.Cap
}
func (f *Fleet) Load(id repository.ID) int { return f.sessCnt[id-1] }

// place asks the index for the session's repository — the same two-pass
// policy as serve.Fleet.place.
func (f *Fleet) place(sh *shard, shi, i uint32, initial bool) repository.ID {
	var serves func(repository.ID) bool
	if !initial {
		serves = func(id repository.ID) bool { return f.canServe(id, sh, i) }
	}
	exclude := repository.NoID
	if sh.repo[i] >= 0 {
		exclude = repository.ID(sh.repo[i])
	}
	id, _ := f.ix.Place(f, repository.ID(sh.home[i]), exclude, sh.hash[i], serves, initial)
	return id
}

// attach wires the session onto the repository: meters resume, postings
// gain its watches, and the repository resyncs it to its current copies
// (skipping values the session provably already holds) — serve.Fleet's
// attach + node.Core.ForceAdmit in one pass.
func (f *Fleet) attach(h uint64, id repository.ID, now sim.Time) {
	shi, i := split(h)
	sh := &f.shards[shi]
	sh.repo[i] = int32(id)
	sh.orphan[i] = false
	sh.seq[i] = f.seqs[id-1]
	f.seqs[id-1]++
	f.sessCnt[id-1]++
	f.roster[id-1] = append(f.roster[id-1], rosterEntry{h: h, seq: sh.seq[i]})
	o := f.opts.Obs.Node(id)
	o.Admit1()
	resyncs := 0
	off, n := sh.wOff[i], uint32(sh.wLen[i])
	posts := f.post[shi][id-1]
	vals, set := f.values[id-1], f.valSet[id-1]
	for wi := off; wi < off+n; wi++ {
		sh.advance(wi, now)
		sh.wAttached[wi] = true
		it := sh.wItem[wi]
		sh.wPos[wi] = uint32(len(posts[it]))
		posts[it] = append(posts[it], watchRef{sh: shi, wi: wi})
		// Resync (item-sorted order, the watch layout's order): skip
		// items the repository does not hold and values the session
		// already has.
		if !set[it] {
			continue
		}
		v := vals[it]
		if sh.wSeeded[wi] && sh.wHave[wi] == v {
			continue
		}
		f.deliverWatch(sh, wi, now, v)
		resyncs++
	}
	f.stats.Resyncs += resyncs
	o.Resync(resyncs)
}

// detach unwires the session from its repository: postings lose its
// watches (swap-delete via the tracked positions), meters pause. With
// dead true the repository's postings are about to be cleared wholesale
// (crash migration), so individual removal is skipped.
func (f *Fleet) detach(h uint64, now sim.Time, dead bool) {
	shi, i := split(h)
	sh := &f.shards[shi]
	id := repository.ID(sh.repo[i])
	if id <= 0 {
		return
	}
	sh.repo[i] = -1
	f.sessCnt[id-1]--
	posts := f.post[shi][id-1]
	off, n := sh.wOff[i], uint32(sh.wLen[i])
	for wi := off; wi < off+n; wi++ {
		sh.advance(wi, now)
		sh.wAttached[wi] = false
		if dead {
			continue
		}
		it := sh.wItem[wi]
		lst := posts[it]
		pos := sh.wPos[wi]
		last := lst[len(lst)-1]
		lst[pos] = last
		f.shards[last.sh].wPos[last.wi] = pos
		posts[it] = lst[:len(lst)-1]
	}
}

// admit creates and initially places one session, charging redirects as
// serve.Fleet.Attach does. detached creates the session outside the
// system (a flash-crowd member awaiting its arrival event).
func (f *Fleet) admit(name string, hash uint32, home repository.ID, items []uint32, tols []coherency.Requirement, detached bool) (uint64, error) {
	h := f.create(name, hash, home, items, tols)
	if detached {
		return h, nil
	}
	shi, i := split(h)
	sh := &f.shards[shi]
	target := f.place(sh, shi, i, true)
	if target == repository.NoID {
		return h, fmt.Errorf("vserve: no repository to place session %q on", name)
	}
	f.attach(h, target, 0)
	order := f.ix.Order(home)
	if target != order[0] {
		f.stats.Redirects++
		if on := f.opts.Obs.Node(order[0]); on != nil {
			var lat sim.Time
			for _, cand := range order {
				lat += 2 * f.net.Delay[home][cand]
				if cand == target {
					break
				}
			}
			on.Redirect1()
			on.ObserveRedirectLatency(int64(lat))
		}
	}
	return h, nil
}

// AttachAll admits a concrete client population (the parity path): each
// client becomes a virtual session, and the client's Repo is rewritten
// to its placement exactly as serve.Fleet.AttachAll does, so
// repository.DeriveNeeds sees where each client actually landed.
func (f *Fleet) AttachAll(clients []*repository.Client) error {
	for _, c := range clients {
		if err := c.Validate(); err != nil {
			return err
		}
		if int(c.Repo) > len(f.repos) {
			return fmt.Errorf("vserve: client %q homed at unknown repository %d", c.Name, c.Repo)
		}
		if _, dup := f.byName[c.Name]; dup {
			return fmt.Errorf("vserve: duplicate session %q", c.Name)
		}
		names := make([]string, 0, len(c.Wants))
		for x := range c.Wants {
			names = append(names, x)
		}
		sort.Strings(names)
		items := make([]uint32, len(names))
		tols := make([]coherency.Requirement, len(names))
		for k, x := range names {
			items[k] = f.item(x)
			tols[k] = c.Wants[x]
		}
		h, err := f.admit(c.Name, place.Key(c.Name), c.Repo, items, tols, false)
		if err != nil {
			return err
		}
		f.byName[c.Name] = h
		shi, i := split(h)
		c.Repo = repository.ID(f.shards[shi].repo[i])
	}
	return nil
}

// DeriveNeeds computes every repository's data and coherency needs from
// the registered virtual population — repository.DeriveNeeds without
// materializing a client slice. Attached sessions count against their
// serving repository; detached scenario sessions (the flash crowd)
// against their home endpoint, so the overlay is provisioned for demand
// that has registered but not yet arrived.
func (f *Fleet) DeriveNeeds() {
	for _, r := range f.repos {
		r.Needs = make(map[string]coherency.Requirement)
		r.Serving = make(map[string]coherency.Requirement)
	}
	for _, h := range f.order {
		shi, i := split(h)
		sh := &f.shards[shi]
		// Detached sessions (scenario crowds created outside the system,
		// orphans) count against their home endpoint: the overlay is
		// provisioned for the registered demand, so a flash crowd's hot
		// item is being disseminated before the burst arrives.
		at := sh.repo[i]
		if at < 0 {
			at = sh.home[i]
		}
		r := f.repos[at-1]
		off, n := sh.wOff[i], uint32(sh.wLen[i])
		for wi := off; wi < off+n; wi++ {
			item := f.itemName[sh.wItem[wi]]
			tol := sh.wTol[wi]
			cur, exists := r.Needs[item]
			if !exists || tol.AtLeastAsStringentAs(cur) {
				r.Needs[item] = tol
				r.Serving[item] = tol
			}
		}
	}
}

// Seed initializes the source signal, every repository's copy of the
// items it holds, and every session's copy, as if all clients joined
// fully synchronized — serve.Fleet.Seed over flat state.
func (f *Fleet) Seed(initial map[string]float64) {
	for x, v := range initial {
		id, ok := f.itemID[x]
		if !ok {
			continue
		}
		f.src[id] = v
		for r, repo := range f.repos {
			if repo.IsSource() || holds(repo, x) {
				f.values[r][id] = v
				f.valSet[r][id] = true
			}
		}
	}
	for s := range f.shards {
		sh := &f.shards[s]
		for wi := range sh.wItem {
			if v, ok := initial[f.itemName[sh.wItem[wi]]]; ok {
				sh.wHave[wi] = v
				sh.wSeeded[wi] = true
				sh.wInViol[wi] = sh.wTol[wi].Violated(v, v)
			}
		}
	}
}

func holds(r *repository.Repository, item string) bool {
	_, ok := r.Serving[item]
	return ok
}

// catchUp executes every scheduled churn event due at or before now —
// serve.Fleet.catchUp with handles for sessions.
func (f *Fleet) catchUp(now sim.Time) {
	for f.next < len(f.events) && f.events[f.next].at <= now {
		e := f.events[f.next]
		f.next++
		if e.idx < 0 || e.idx >= len(f.order) {
			continue // plan sized for a larger population
		}
		h := f.order[e.idx]
		shi, i := split(h)
		sh := &f.shards[shi]
		if e.depart {
			if sh.repo[i] < 0 && !sh.orphan[i] {
				continue // already gone
			}
			f.detach(h, e.at, false)
			sh.orphan[i] = false
			f.stats.Departures++
			continue
		}
		if sh.repo[i] >= 0 || sh.orphan[i] {
			continue // already back (or waiting to be)
		}
		f.stats.Arrivals++
		if target := f.place(sh, shi, i, false); target != repository.NoID {
			f.attach(h, target, e.at)
		} else {
			sh.orphan[i] = true
			f.stats.Orphaned++
		}
	}
}

// ObserveSource keeps every watching session's reference signal current:
// the global source copy moves once, and each watcher's meter advances
// and refreshes its violation flag — attached or not, exactly as
// serve.meter.srcUpdate does.
func (f *Fleet) ObserveSource(now sim.Time, item string, v float64) {
	f.catchUp(now)
	id, ok := f.itemID[item]
	if !ok {
		return
	}
	f.src[id] = v
	for _, ref := range f.byItem[id] {
		sh := &f.shards[ref.sh]
		sh.advance(ref.wi, now)
		sh.wInViol[ref.wi] = sh.wTol[ref.wi].Violated(v, sh.wHave[ref.wi])
	}
}

// ObserveDeliver fans a repository's delivery out to its attached
// watchers through the per-client filter (Eqs. 3+7 with the repository's
// serving tolerance as cSelf, first-push rule for unseeded edges) —
// node.Core.Apply + fanToSessions over postings. The steady-state path
// allocates nothing.
func (f *Fleet) ObserveDeliver(now sim.Time, repo repository.ID, item string, v float64) {
	f.catchUp(now)
	id, ok := f.itemID[item]
	if !ok {
		return
	}
	o := f.opts.Obs.Node(repo)
	o.Apply1()
	f.values[repo-1][id] = v
	f.valSet[repo-1][id] = true
	r := f.repos[repo-1]
	var cSelf coherency.Requirement
	if !r.IsSource() {
		cSelf, _ = r.ServingTolerance(item)
	}
	var delivered, filtered int
	if f.par != nil {
		delivered, filtered = f.par.deliver(f, repo, id, now, v, cSelf)
	} else {
		for s := range f.shards {
			d, fl := f.deliverShard(uint32(s), repo, id, now, v, cSelf)
			delivered += d
			filtered += fl
		}
	}
	f.stats.Delivered += uint64(delivered)
	f.stats.Filtered += uint64(filtered)
	o.SessPass(delivered, filtered)
}

// deliverShard filters one shard's postings for (repo, item).
func (f *Fleet) deliverShard(shi uint32, repo repository.ID, id uint32, now sim.Time, v float64, cSelf coherency.Requirement) (delivered, filtered int) {
	sh := &f.shards[shi]
	src := f.src[id]
	for _, ref := range f.post[shi][repo-1][id] {
		wi := ref.wi
		if sh.wSeeded[wi] && !coherency.ShouldForward(v, sh.wHave[wi], sh.wTol[wi], cSelf) {
			filtered++
			continue
		}
		sh.advance(wi, now)
		sh.wHave[wi] = v
		sh.wSeeded[wi] = true
		sh.wInViol[wi] = sh.wTol[wi].Violated(src, v)
		delivered++
	}
	return delivered, filtered
}

// ObserveCrash migrates the dead repository's sessions in attach order
// onto the nearest live alternative (preferring ones already serving
// their items), orphaning those that find no room — serve's crash path
// over the roster.
func (f *Fleet) ObserveCrash(now sim.Time, id repository.ID) {
	f.catchUp(now)
	f.alive[id-1] = false
	for _, e := range f.roster[id-1] {
		shi, i := split(e.h)
		sh := &f.shards[shi]
		if repository.ID(sh.repo[i]) != id || sh.seq[i] != e.seq {
			continue // stale roster entry: the session has since left
		}
		f.detach(e.h, now, true)
		if target := f.place(sh, shi, i, false); target != repository.NoID {
			f.attach(e.h, target, now)
			f.stats.Migrations++
			f.opts.Obs.Node(target).Migrate1()
		} else {
			sh.orphan[i] = true
			f.stats.Orphaned++
		}
	}
	f.roster[id-1] = f.roster[id-1][:0]
	// The dead repository's delivery postings are cleared wholesale.
	for s := range f.post {
		posts := f.post[s][id-1]
		for it := range posts {
			posts[it] = posts[it][:0]
		}
	}
}

// ObserveRejoin marks the repository live again and retries orphaned
// sessions in population order against the enlarged candidate set.
func (f *Fleet) ObserveRejoin(now sim.Time, id repository.ID) {
	f.catchUp(now)
	f.alive[id-1] = true
	for _, h := range f.order {
		shi, i := split(h)
		sh := &f.shards[shi]
		if !sh.orphan[i] {
			continue
		}
		if target := f.place(sh, shi, i, false); target != repository.NoID {
			f.attach(h, target, now)
			f.stats.Migrations++
			f.opts.Obs.Node(target).Migrate1()
		}
	}
}

// SessionCount returns the created population size.
func (f *Fleet) SessionCount() int { return len(f.order) }

// Attached returns how many sessions are currently attached.
func (f *Fleet) Attached() int {
	n := 0
	for _, c := range f.sessCnt {
		n += c
	}
	return n
}

// SessionFidelity returns one session's client-observed fidelity at now
// (population index order). Vacuous observation reports 1.
func (f *Fleet) SessionFidelity(idx int, now sim.Time) float64 {
	shi, i := split(f.order[idx])
	sh := &f.shards[shi]
	var sum float64
	var n int
	off, cnt := sh.wOff[i], uint32(sh.wLen[i])
	for wi := off; wi < off+cnt; wi++ {
		span, viol := sh.wSpan[wi], sh.wViol[wi]
		if sh.wAttached[wi] && now > sh.wLast[wi] {
			d := now - sh.wLast[wi]
			span += d
			if sh.wInViol[wi] {
				viol += d
			}
		}
		if span <= 0 {
			continue
		}
		sum += 1 - float64(viol)/float64(span)
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// PerSessionFidelity returns every session's fidelity at the horizon, in
// population order — the parity test's comparison vector.
func (f *Fleet) PerSessionFidelity(horizon sim.Time) []float64 {
	out := make([]float64, len(f.order))
	for i := range out {
		out[i] = f.SessionFidelity(i, horizon)
	}
	return out
}

// Finalize flushes churn through the horizon and returns the run's
// statistics, including the measured bytes/session footprint.
func (f *Fleet) Finalize(horizon sim.Time) Stats {
	f.catchUp(horizon)
	st := f.stats
	st.MeanFidelity, st.WorstFidelity = 1, 1
	if len(f.order) > 0 {
		var sum float64
		worst := 1.0
		for i := range f.order {
			fid := f.SessionFidelity(i, horizon)
			sum += fid
			if fid < worst {
				worst = fid
			}
		}
		st.MeanFidelity = sum / float64(len(f.order))
		st.WorstFidelity = worst
	}
	st.LossPercent = 100 * (1 - st.MeanFidelity)
	if n := len(f.order); n > 0 {
		st.BytesPerSession = float64(f.Footprint()) / float64(n)
	}
	return st
}

// Footprint returns the resident session-state bytes: every per-session
// and per-watch array plus postings and rosters, by capacity. Fixed
// per-run state (item tables, repository value copies) is excluded — it
// does not grow with the population.
func (f *Fleet) Footprint() int64 {
	var b int64
	for s := range f.shards {
		sh := &f.shards[s]
		b += int64(cap(sh.hash))*4 + int64(cap(sh.home))*4 + int64(cap(sh.repo))*4 +
			int64(cap(sh.seq))*8 + int64(cap(sh.orphan)) + int64(cap(sh.wOff))*4 + int64(cap(sh.wLen))*2
		b += int64(cap(sh.wItem))*4 + int64(cap(sh.wTol))*8 + int64(cap(sh.wHave))*8 +
			int64(cap(sh.wSeeded)) + int64(cap(sh.wInViol)) + int64(cap(sh.wAttached)) +
			int64(cap(sh.wLast))*8 + int64(cap(sh.wSpan))*8 + int64(cap(sh.wViol))*8 + int64(cap(sh.wPos))*4
		for _, name := range sh.names {
			b += int64(len(name)) + 16
		}
		for r := range f.post[s] {
			for it := range f.post[s][r] {
				b += int64(cap(f.post[s][r][it])) * 8
			}
		}
	}
	for it := range f.byItem {
		b += int64(cap(f.byItem[it])) * 8
	}
	for r := range f.roster {
		b += int64(cap(f.roster[r])) * 16
	}
	b += int64(cap(f.order)) * 8
	return b
}

// Synthetic parameterizes a compact synthetic population — the same
// distribution as repository.GenerateClients (home chosen uniformly,
// 1..2·ItemsPerClient−1 items from a partial shuffle, the paper's
// stringent/loose tolerance mix) without materializing a Client object
// per session.
type Synthetic struct {
	// Sessions is the population size.
	Sessions int
	// Items is the item catalogue.
	Items []string
	// ItemsPerClient is the mean watch-list size (default 3).
	ItemsPerClient int
	// StringentFrac is the probability a tolerance is stringent
	// ([0.01, 0.099] vs [0.1, 0.999]).
	StringentFrac float64
	// Seed makes generation deterministic.
	Seed int64
	// HotItem is the flash-crowd item (default Items[0]); only used when
	// the fleet has a scenario with hot sessions.
	HotItem string
}

// Populate generates and admits a synthetic population. Sessions marked
// hot by the fleet's scenario watch only the hot item; sessions marked
// start-detached are created outside the system and arrive with their
// scenario event. Names are not retained (the hash is computed from the
// generated name and discarded), keeping the per-session footprint flat.
func (f *Fleet) Populate(cfg Synthetic) error {
	if cfg.Sessions <= 0 || len(cfg.Items) == 0 {
		return fmt.Errorf("vserve: synthetic population needs sessions and items")
	}
	if cfg.ItemsPerClient <= 0 {
		cfg.ItemsPerClient = 3
	}
	hot := cfg.HotItem
	if hot == "" {
		hot = cfg.Items[0]
	}
	hotID := f.item(hot)
	ids := make([]uint32, len(cfg.Items))
	for k, x := range cfg.Items {
		ids[k] = f.item(x)
	}
	sc := f.opts.Scenario
	r := rand.New(rand.NewSource(cfg.Seed))
	// Scratch state reused across sessions: a partial Fisher-Yates over
	// item positions, swapped back after each draw.
	pick := make([]int, len(cfg.Items))
	for k := range pick {
		pick[k] = k
	}
	items := make([]uint32, 0, 2*cfg.ItemsPerClient)
	tols := make([]coherency.Requirement, 0, 2*cfg.ItemsPerClient)
	name := make([]byte, 0, 24)
	drawTol := func() coherency.Requirement {
		if r.Float64() < cfg.StringentFrac {
			return coherency.Requirement(0.01 + r.Float64()*(0.099-0.01))
		}
		return coherency.Requirement(0.1 + r.Float64()*(0.999-0.1))
	}
	for i := 0; i < cfg.Sessions; i++ {
		home := repository.ID(1 + r.Intn(len(f.repos)))
		items = items[:0]
		tols = tols[:0]
		isHot := sc != nil && i < len(sc.Hot) && sc.Hot[i]
		if isHot {
			items = append(items, hotID)
			tols = append(tols, drawTol())
		} else {
			n := 1 + r.Intn(2*cfg.ItemsPerClient-1)
			if n > len(pick) {
				n = len(pick)
			}
			for j := 0; j < n; j++ {
				k := j + r.Intn(len(pick)-j)
				pick[j], pick[k] = pick[k], pick[j]
			}
			// Keep the watch layout item-sorted: positions sort ascending
			// and the catalogue is registered in order, so sorting
			// positions sorts item ids consistently with name order only
			// when the catalogue itself is name-sorted — which trace item
			// sets are. Sort by name to be exact regardless.
			sel := pick[:n]
			sort.Ints(sel)
			for _, p := range sel {
				items = append(items, ids[p])
				tols = append(tols, drawTol())
			}
			// Restore the scratch permutation (order within the prefix is
			// enough; contents are intact by construction).
		}
		name = append(name[:0], "vclient"...)
		name = appendInt(name, i)
		hash := fnv1a(name)
		detached := sc != nil && i < len(sc.StartDetached) && sc.StartDetached[i]
		if _, err := f.admit("", hash, home, items, tols, detached); err != nil {
			return err
		}
	}
	return nil
}

// appendInt appends the decimal digits of v.
func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	p := len(tmp)
	for v > 0 {
		p--
		tmp[p] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[p:]...)
}

// fnv1a is place.Key over bytes.
func fnv1a(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return h
}

// Interface conformance: the fleet observes both the plain and the
// resilient runners.
var _ resilience.Observer = (*Fleet)(nil)
