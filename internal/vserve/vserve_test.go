package vserve

import (
	"math"
	"testing"

	"d3t/internal/coherency"
	"d3t/internal/netsim"
	"d3t/internal/repository"
	"d3t/internal/serve"
	"d3t/internal/sim"
	"d3t/internal/trace"
)

// population builds n repositories serving every item at tol.
func population(n int, items []string, tol coherency.Requirement) []*repository.Repository {
	repos := make([]*repository.Repository, n)
	for i := range repos {
		repos[i] = repository.New(repository.ID(i+1), 4)
		for _, x := range items {
			repos[i].Needs[x] = tol
			repos[i].Serving[x] = tol
		}
	}
	return repos
}

// drive pushes an identical update/churn/crash schedule through any
// fleet that implements the run observers.
type runObserver interface {
	ObserveSource(now sim.Time, item string, v float64)
	ObserveDeliver(now sim.Time, repo repository.ID, item string, v float64)
	ObserveCrash(now sim.Time, id repository.ID)
	ObserveRejoin(now sim.Time, id repository.ID)
}

func drive(f runObserver, repos int) {
	items := []string{"X", "Y", "Z"}
	for i := 1; i <= 100; i++ {
		now := sim.Time(i) * sim.Second
		x := items[i%3]
		v := 100 + 0.07*float64(i)
		f.ObserveSource(now, x, v)
		for r := 1; r <= repos; r++ {
			if (i+r)%2 == 0 {
				f.ObserveDeliver(now+sim.Millisecond, repository.ID(r), x, v)
			}
		}
		if i == 40 {
			f.ObserveCrash(now+2*sim.Millisecond, 2)
		}
		if i == 70 {
			f.ObserveRejoin(now+2*sim.Millisecond, 2)
		}
	}
}

// TestVirtualParity is the virtual/concrete equivalence gate: the same
// workload, churn plan and crash schedule through serve.Fleet and the
// virtual fleet must produce identical delivered/filtered counts,
// serving-layer stats, and bit-identical per-session fidelity.
func TestVirtualParity(t *testing.T) {
	const nRepos, nClients = 4, 60
	items := []string{"X", "Y", "Z"}
	gen := func() []*repository.Client {
		clients, err := repository.GenerateClients(repository.ClientWorkload{
			Clients: nClients, Repos: []repository.ID{1, 2, 3, 4}, Items: items,
			ItemsPerClient: 2, StringentFrac: 0.5, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return clients
	}
	plan, err := serve.ParseSessionPlan("churn:25:10", nClients, 100, sim.Second, 9)
	if err != nil {
		t.Fatal(err)
	}
	initial := map[string]float64{"X": 100, "Y": 50, "Z": 10}

	// Concrete fleet.
	cf, err := serve.NewFleet(netsim.Uniform(nRepos, sim.Millisecond), population(nRepos, items, 0.05), serve.Options{Cap: 12, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if err := cf.AttachAll(gen()); err != nil {
		t.Fatal(err)
	}
	cf.Seed(initial)
	drive(cf, nRepos)
	cst := cf.Finalize(100 * sim.Second)

	// Virtual fleet, several shard counts and worker modes.
	for _, cfg := range []Options{
		{Cap: 12, Plan: plan, Shards: 1},
		{Cap: 12, Plan: plan, Shards: 8},
		{Cap: 12, Plan: plan, Shards: 8, Workers: 3},
	} {
		vf, err := NewFleet(netsim.Uniform(nRepos, sim.Millisecond), population(nRepos, items, 0.05), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := vf.AttachAll(gen()); err != nil {
			t.Fatal(err)
		}
		vf.Seed(initial)
		drive(vf, nRepos)
		vst := vf.Finalize(100 * sim.Second)

		if vst.Stats != cst {
			t.Errorf("shards=%d workers=%d: stats diverged\nconcrete: %+v\nvirtual:  %+v", cfg.Shards, cfg.Workers, cst, vst.Stats)
		}
		vfid := vf.PerSessionFidelity(100 * sim.Second)
		for i, s := range cf.Sessions() {
			if got := vfid[i]; got != s.Fidelity(100*sim.Second) {
				t.Fatalf("shards=%d: session %d (%s) fidelity %v, concrete %v", cfg.Shards, i, s.Name, got, s.Fidelity(100*sim.Second))
			}
		}
	}
	if cst.Delivered == 0 || cst.Filtered == 0 || cst.Migrations == 0 || cst.Departures == 0 {
		t.Fatalf("parity run exercised too little: %+v", cst)
	}
}

// TestVirtualPlacementIsIndexed pins the O(k) admission contract end to
// end: admitting a large population builds at most one candidate order
// per home endpoint and enumerates ~one candidate per admission while
// the nearest repository has room.
func TestVirtualPlacementIsIndexed(t *testing.T) {
	const nRepos = 16
	items := []string{"X"}
	vf, err := NewFleet(netsim.Uniform(nRepos, sim.Millisecond), population(nRepos, items, 0.05), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := vf.Populate(Synthetic{Sessions: 5000, Items: items, ItemsPerClient: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if b := vf.Index().Builds(); b > nRepos {
		t.Errorf("placement built %d candidate orders, want at most one per home (%d)", b, nRepos)
	}
	if w := vf.Index().Walked(); w != 5000 {
		t.Errorf("placement walked %d candidates over 5000 uncapped admissions, want exactly one each", w)
	}
}

// TestVirtualDeliverAllocFree: steady-state delivery in the virtual
// fleet allocates 0 B/update.
func TestVirtualDeliverAllocFree(t *testing.T) {
	items := []string{"X", "Y", "Z"}
	vf, err := NewFleet(netsim.Uniform(4, sim.Millisecond), population(4, items, 0.05), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := vf.Populate(Synthetic{Sessions: 2000, Items: items, ItemsPerClient: 2, StringentFrac: 0.5, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	vf.Seed(map[string]float64{"X": 100, "Y": 50, "Z": 10})
	now := sim.Second
	v := 100.0
	allocs := testing.AllocsPerRun(200, func() {
		now += sim.Second
		v += 0.3
		vf.ObserveSource(now, "X", v)
		vf.ObserveDeliver(now, 1, "X", v)
		vf.ObserveDeliver(now, 2, "X", v)
	})
	if allocs != 0 {
		t.Errorf("steady-state source+deliver allocates %.1f objects/update, want 0", allocs)
	}
}

// TestVirtualSessionBytes enforces the per-session memory ceiling: the
// resident session-state footprint must stay under 512 bytes per
// admitted session at the default watch-list size.
func TestVirtualSessionBytes(t *testing.T) {
	items := make([]string, 32)
	for i := range items {
		items[i] = "item" + string(rune('A'+i%26)) + string(rune('0'+i/26))
	}
	vf, err := NewFleet(netsim.Uniform(8, sim.Millisecond), population(8, items, 0.05), Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	if err := vf.Populate(Synthetic{Sessions: n, Items: items, ItemsPerClient: 3, StringentFrac: 0.3, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	per := float64(vf.Footprint()) / n
	if per > 512 {
		t.Errorf("%.0f bytes/session, want <= 512", per)
	}
	if per < 50 {
		t.Errorf("%.0f bytes/session is implausibly low — Footprint is under-counting", per)
	}
}

// TestVirtualOverflowRing: under cap pressure with the ring enabled,
// admission still places every session on a live repository with room,
// without degenerating to full linear walks.
func TestVirtualOverflowRing(t *testing.T) {
	const nRepos = 16
	items := []string{"X"}
	vf, err := NewFleet(netsim.Uniform(nRepos, sim.Millisecond), population(nRepos, items, 0.05),
		Options{Cap: 100, RingSlots: 16, RingAfter: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 1500 sessions, all homed wherever the generator puts them; cap 100
	// x 16 repos = 1600 slots, so the tail of every hot home's population
	// must overflow through the ring.
	if err := vf.Populate(Synthetic{Sessions: 1500, Items: items, ItemsPerClient: 1, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	if got := vf.Attached(); got != 1500 {
		t.Fatalf("attached %d of 1500 under cap pressure", got)
	}
	for r := 1; r <= nRepos; r++ {
		if vf.Load(repository.ID(r)) > 100 {
			t.Fatalf("repo %d over cap: %d", r, vf.Load(repository.ID(r)))
		}
	}
	// The walk budget: every admission walks at most RingAfter nearest
	// candidates before the ring takes over.
	if w := vf.Index().Walked(); w > 1500*4 {
		t.Errorf("walked %d candidates, want <= RingAfter per admission (%d)", w, 1500*4)
	}
}

// TestVirtualFlashScenario runs a flash crowd end to end: the crowd is
// created detached, arrives in a Pareto burst on the hot item, and is
// admitted, metered and counted.
func TestVirtualFlashScenario(t *testing.T) {
	items := []string{"hot", "a", "b", "c"}
	spec, err := trace.ParseScenario("flash:at=0.3,frac=0.5,burst=0.2")
	if err != nil {
		t.Fatal(err)
	}
	const sessions, ticks = 400, 100
	plan, err := trace.BuildScenario(spec, sessions, 4, ticks, 5)
	if err != nil {
		t.Fatal(err)
	}
	vf, err := NewFleet(netsim.Uniform(4, sim.Millisecond), population(4, items, 0.05),
		Options{Scenario: plan, Interval: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := vf.Populate(Synthetic{Sessions: sessions, Items: items, ItemsPerClient: 2, StringentFrac: 0.5, Seed: 6, HotItem: "hot"}); err != nil {
		t.Fatal(err)
	}
	if got := vf.Attached(); got != sessions/2 {
		t.Fatalf("attached %d before the burst, want the steady base %d", got, sessions/2)
	}
	vf.Seed(map[string]float64{"hot": 100, "a": 10, "b": 20, "c": 30})
	v := 100.0
	for i := 1; i <= ticks; i++ {
		now := sim.Time(i) * sim.Second
		v += 0.5
		vf.ObserveSource(now, "hot", v)
		for r := 1; r <= 4; r++ {
			vf.ObserveDeliver(now, repository.ID(r), "hot", v)
		}
	}
	st := vf.Finalize(ticks * sim.Second)
	if st.Arrivals != sessions/2 {
		t.Errorf("arrivals = %d, want the whole crowd (%d)", st.Arrivals, sessions/2)
	}
	if got := vf.Attached(); got != sessions {
		t.Errorf("attached %d after the burst, want %d", got, sessions)
	}
	if st.MeanFidelity <= 0 || st.MeanFidelity > 1 || math.IsNaN(st.MeanFidelity) {
		t.Errorf("mean fidelity %v out of range", st.MeanFidelity)
	}
	if st.Delivered == 0 {
		t.Error("flash crowd received no deliveries")
	}
}

// TestVirtualDeterminism: two identical runs produce identical stats.
func TestVirtualDeterminism(t *testing.T) {
	items := []string{"X", "Y", "Z"}
	run := func() Stats {
		plan, err := serve.ParseSessionPlan("churn:20:10", 80, 100, sim.Second, 9)
		if err != nil {
			t.Fatal(err)
		}
		vf, err := NewFleet(netsim.Uniform(4, sim.Millisecond), population(4, items, 0.05), Options{Cap: 30, Plan: plan})
		if err != nil {
			t.Fatal(err)
		}
		if err := vf.Populate(Synthetic{Sessions: 80, Items: items, ItemsPerClient: 2, StringentFrac: 0.5, Seed: 7}); err != nil {
			t.Fatal(err)
		}
		vf.Seed(map[string]float64{"X": 100, "Y": 50, "Z": 10})
		drive(vf, 4)
		return vf.Finalize(100 * sim.Second)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Departures == 0 {
		t.Error("churn plan executed no departures")
	}
}

// BenchmarkVirtualAdmit measures synthetic admission throughput.
func BenchmarkVirtualAdmit(b *testing.B) {
	items := []string{"X", "Y", "Z", "W"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vf, err := NewFleet(netsim.Uniform(8, sim.Millisecond), population(8, items, 0.05), Options{Shards: 8})
		if err != nil {
			b.Fatal(err)
		}
		if err := vf.Populate(Synthetic{Sessions: 10000, Items: items, ItemsPerClient: 3, StringentFrac: 0.3, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(10000*float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
}

// BenchmarkVirtualDeliver measures steady-state fan-out over a large
// attached population.
func BenchmarkVirtualDeliver(b *testing.B) {
	items := []string{"X", "Y", "Z", "W"}
	vf, err := NewFleet(netsim.Uniform(8, sim.Millisecond), population(8, items, 0.05), Options{Shards: 8})
	if err != nil {
		b.Fatal(err)
	}
	if err := vf.Populate(Synthetic{Sessions: 100000, Items: items, ItemsPerClient: 3, StringentFrac: 0.3, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	vf.Seed(map[string]float64{"X": 100, "Y": 50, "Z": 10, "W": 5})
	now := sim.Second
	v := 100.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += sim.Second
		v += 0.4
		vf.ObserveSource(now, "X", v)
		for r := 1; r <= 8; r++ {
			vf.ObserveDeliver(now, repository.ID(r), "X", v)
		}
	}
}
