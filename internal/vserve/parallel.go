package vserve

import (
	"sync"

	"d3t/internal/coherency"
	"d3t/internal/repository"
	"d3t/internal/sim"
)

// parallel fans one delivery out across shards on Options.Workers
// goroutines. Shard state is disjoint (each worker touches only its own
// shards' arrays; the fleet-level inputs are read-only for the duration),
// and the per-shard tallies are merged in shard order, so the result is
// identical to the sequential path — the parallelism is an implementation
// detail, not a semantics change.
type parallel struct {
	n          int
	dBuf, fBuf []int
}

func newParallel(n int) *parallel { return &parallel{n: n} }

func (p *parallel) deliver(f *Fleet, repo repository.ID, id uint32, now sim.Time, v float64, cSelf coherency.Requirement) (delivered, filtered int) {
	ns := len(f.shards)
	if len(p.dBuf) < ns {
		p.dBuf = make([]int, ns)
		p.fBuf = make([]int, ns)
	}
	var wg sync.WaitGroup
	for w := 0; w < p.n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := w; s < ns; s += p.n {
				p.dBuf[s], p.fBuf[s] = f.deliverShard(uint32(s), repo, id, now, v, cSelf)
			}
		}(w)
	}
	wg.Wait()
	for s := 0; s < ns; s++ {
		delivered += p.dBuf[s]
		filtered += p.fBuf[s]
	}
	return delivered, filtered
}
