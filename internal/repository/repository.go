// Package repository models the cooperating repositories of Section 2: the
// data items each repository must hold, the coherency tolerance for each,
// the push connections to dependents, and the degree of cooperation each
// node offers. It also generates the paper's experimental workload (each
// repository subscribes to each item with probability 0.5; T% of its items
// get stringent tolerances).
package repository

import (
	"fmt"
	"math/rand"
	"sort"

	"d3t/internal/coherency"
)

// ID identifies an overlay node. SourceID (0) is the data source; positive
// ids are repositories.
type ID int

// String renders the id in the canonical user-visible form: "source" for
// the data source, "repo<id>" for repositories, "none" for NoID. Every
// layer that names a node in errors, counters or reports uses this form.
func (id ID) String() string {
	switch id {
	case SourceID:
		return "source"
	case NoID:
		return "none"
	}
	return fmt.Sprintf("repo%d", int(id))
}

// SourceID is the overlay id of the single data source.
const SourceID ID = 0

// NoID marks the absence of a node reference.
const NoID ID = -1

// Repository is one overlay node: the source or a repository. The zero
// value is not usable; construct with New.
type Repository struct {
	// ID is the overlay node id (0 for the source).
	ID ID
	// Needs maps item -> the coherency tolerance this node's own clients
	// require. The source needs nothing for itself.
	Needs map[string]coherency.Requirement
	// Serving maps item -> the tolerance this node actually maintains.
	// It starts as a copy of Needs and is tightened/extended when LeLA
	// augments the node to serve a dependent (Section 4). Invariant:
	// Serving[x] <= Needs[x] wherever both exist.
	Serving map[string]coherency.Requirement
	// CoopLimit is the degree of cooperation offered: the maximum number
	// of distinct dependent repositories (push connections). Section 3.
	CoopLimit int
	// Parents maps item -> the node that pushes that item to us. Empty
	// for the source.
	Parents map[string]ID
	// Dependents maps item -> the nodes we push that item to.
	Dependents map[string][]ID
	// Level is the node's depth in the d3g (source = 0).
	Level int
	// Liaison is the parent a repository with no data needs of its own is
	// attached to when it joins (so it holds a connection it can later be
	// augmented through), or NoID.
	Liaison ID

	children map[ID]bool // distinct dependents; len counts against CoopLimit

	// gen counts wiring mutations (dependents added or dropped, serving
	// tolerances tightened). Precomputed fan-out plans (internal/node)
	// record the generation they were resolved against and rebuild only
	// when it moves, so the per-update hot path never re-reads the maps.
	gen uint64
}

// New returns an empty repository with the given id and cooperation limit.
func New(id ID, coopLimit int) *Repository {
	return &Repository{
		ID:         id,
		Needs:      make(map[string]coherency.Requirement),
		Serving:    make(map[string]coherency.Requirement),
		CoopLimit:  coopLimit,
		Parents:    make(map[string]ID),
		Dependents: make(map[string][]ID),
		Liaison:    NoID,
		children:   make(map[ID]bool),
	}
}

// IsSource reports whether the node is the data source.
func (r *Repository) IsSource() bool { return r.ID == SourceID }

// Gen returns the wiring generation: a counter bumped by every mutation
// that can invalidate a precomputed fan-out plan (AddDependent,
// DropDependent, Attach, Tighten). Plans cache the generation of every
// repository they resolved tolerances from and re-resolve when it moves.
func (r *Repository) Gen() uint64 { return r.gen }

// NumChildren returns the number of distinct dependent repositories. One
// push connection is used per child irrespective of how many items flow
// over it (Section 6.3.3).
func (r *Repository) NumChildren() int { return len(r.children) }

// HasChild reports whether dep is already a dependent (for any item).
func (r *Repository) HasChild(dep ID) bool { return r.children[dep] }

// HasCapacityFor reports whether the node can serve dep: either dep is
// already a child (no new connection needed) or a connection slot is free.
func (r *Repository) HasCapacityFor(dep ID) bool {
	return r.children[dep] || len(r.children) < r.CoopLimit
}

// CanServe reports whether the node can serve item x to a dependent with
// tolerance c without augmentation: the source can always serve (it holds
// the exact value, tolerance 0); a repository must already maintain x at a
// tolerance at least as stringent as c (Eq. 1).
func (r *Repository) CanServe(x string, c coherency.Requirement) bool {
	if r.IsSource() {
		return true
	}
	own, ok := r.Serving[x]
	return ok && own.AtLeastAsStringentAs(c)
}

// ServingTolerance returns the tolerance at which the node maintains x.
// The source maintains everything exactly (tolerance 0).
func (r *Repository) ServingTolerance(x string) (coherency.Requirement, bool) {
	if r.IsSource() {
		return 0, true
	}
	c, ok := r.Serving[x]
	return c, ok
}

// AddDependent wires dep as a dependent of r for item x. It panics if the
// connection would exceed the cooperation limit — callers must check
// HasCapacityFor first; violating the limit silently would invalidate the
// experiment.
func (r *Repository) AddDependent(x string, dep ID) {
	if !r.HasCapacityFor(dep) {
		panic(fmt.Sprintf("repository %d: adding dependent %d for %s exceeds coop limit %d",
			r.ID, dep, x, r.CoopLimit))
	}
	for _, d := range r.Dependents[x] {
		if d == dep {
			return // already served this item
		}
	}
	r.Dependents[x] = append(r.Dependents[x], dep)
	r.children[dep] = true
	r.gen++
}

// DropDependent removes every push edge from r to dep, releasing the
// connection slot. It is the inverse of AddDependent/Attach, used when a
// leaf repository departs the overlay.
func (r *Repository) DropDependent(dep ID) {
	if !r.children[dep] {
		return
	}
	for x, deps := range r.Dependents {
		keep := deps[:0]
		for _, d := range deps {
			if d != dep {
				keep = append(keep, d)
			}
		}
		if len(keep) == 0 {
			delete(r.Dependents, x)
		} else {
			r.Dependents[x] = keep
		}
	}
	delete(r.children, dep)
	r.gen++
}

// Attach registers dep as a child without serving it any item yet: the
// liaison connection a repository with no data needs joins through. It
// panics on a capacity violation, like AddDependent.
func (r *Repository) Attach(dep ID) {
	if !r.HasCapacityFor(dep) {
		panic(fmt.Sprintf("repository %d: attaching child %d exceeds coop limit %d",
			r.ID, dep, r.CoopLimit))
	}
	r.children[dep] = true
	r.gen++
}

// Tighten ensures the node maintains item x at a tolerance at least as
// stringent as c, recording the augmentation LeLA performs when a parent
// takes on a dependent's needs. It reports whether the serving set changed.
func (r *Repository) Tighten(x string, c coherency.Requirement) bool {
	if r.IsSource() {
		return false // the source always holds the exact value
	}
	cur, ok := r.Serving[x]
	if ok && cur.AtLeastAsStringentAs(c) {
		return false
	}
	r.Serving[x] = c
	r.gen++
	return true
}

// Items returns the items in Serving, sorted for deterministic iteration.
func (r *Repository) Items() []string {
	items := make([]string, 0, len(r.Serving))
	for x := range r.Serving {
		items = append(items, x)
	}
	sort.Strings(items)
	return items
}

// NeededItems returns the items in Needs, sorted.
func (r *Repository) NeededItems() []string {
	items := make([]string, 0, len(r.Needs))
	for x := range r.Needs {
		items = append(items, x)
	}
	sort.Strings(items)
	return items
}

// Workload parameterizes need generation per Section 6.1.
type Workload struct {
	// Items is the full catalogue of item names.
	Items []string
	// SubscribeProb is the probability a repository requests an item
	// (paper: 0.5).
	SubscribeProb float64
	// StringentFrac is T: the fraction of a repository's items that get a
	// stringent tolerance in [0.01, 0.099]; the rest get [0.1, 0.999].
	StringentFrac float64
	// Seed makes generation deterministic.
	Seed int64
}

// AssignNeeds fills in the Needs and Serving maps of each repository
// according to the workload. Existing needs are replaced.
func AssignNeeds(repos []*Repository, w Workload) {
	r := rand.New(rand.NewSource(w.Seed))
	if w.SubscribeProb == 0 {
		w.SubscribeProb = 0.5
	}
	for _, repo := range repos {
		repo.Needs = make(map[string]coherency.Requirement)
		repo.Serving = make(map[string]coherency.Requirement)
		for _, item := range w.Items {
			if r.Float64() >= w.SubscribeProb {
				continue
			}
			var c coherency.Requirement
			if r.Float64() < w.StringentFrac {
				c = coherency.Requirement(0.01 + r.Float64()*(0.099-0.01))
			} else {
				c = coherency.Requirement(0.1 + r.Float64()*(0.999-0.1))
			}
			repo.Needs[item] = c
			repo.Serving[item] = c
		}
	}
}
