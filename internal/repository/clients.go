package repository

import (
	"fmt"
	"math/rand"
	"sort"

	"d3t/internal/coherency"
)

// Client models an end user attached to a repository (Section 1.2 of the
// paper): it names the items the user watches and the tolerance the user
// demands for each. Multiple clients share a repository; the repository's
// own coherency requirement for an item is the most stringent requirement
// across its clients.
type Client struct {
	// Name identifies the client in diagnostics.
	Name string
	// Repo is the repository the client connects to.
	Repo ID
	// Wants maps item -> the client's tolerance.
	Wants map[string]coherency.Requirement
}

// Validate checks client well-formedness.
func (c *Client) Validate() error {
	if c.Repo <= 0 {
		return fmt.Errorf("repository: client %q attached to non-repository node %d", c.Name, c.Repo)
	}
	if len(c.Wants) == 0 {
		return fmt.Errorf("repository: client %q wants nothing", c.Name)
	}
	for item, tol := range c.Wants {
		if tol < 0 {
			return fmt.Errorf("repository: client %q has negative tolerance %v for %s", c.Name, tol, item)
		}
	}
	return nil
}

// DeriveNeeds computes each repository's data and coherency needs from its
// client population: the repository needs exactly the union of its
// clients' items, each at the most stringent tolerance any client demands
// (Section 1.2: "the coherency requirement for data item x at a repository
// is the most stringent across all clients that obtain x from it").
// Existing needs are replaced; serving sets are reset to match.
func DeriveNeeds(repos []*Repository, clients []*Client) error {
	byID := make(map[ID]*Repository, len(repos))
	for _, r := range repos {
		byID[r.ID] = r
		r.Needs = make(map[string]coherency.Requirement)
		r.Serving = make(map[string]coherency.Requirement)
	}
	for _, c := range clients {
		if err := c.Validate(); err != nil {
			return err
		}
		r, ok := byID[c.Repo]
		if !ok {
			return fmt.Errorf("repository: client %q attached to unknown repository %d", c.Name, c.Repo)
		}
		for item, tol := range c.Wants {
			cur, exists := r.Needs[item]
			if !exists || tol.AtLeastAsStringentAs(cur) {
				r.Needs[item] = tol
				r.Serving[item] = tol
			}
		}
	}
	return nil
}

// ClientWorkload parameterizes random client population generation.
type ClientWorkload struct {
	// Clients is the total client count.
	Clients int
	// Repos are the repositories clients may attach to.
	Repos []ID
	// Items is the item catalogue.
	Items []string
	// ItemsPerClient is the mean number of items each client watches
	// (default 3, at least 1 each).
	ItemsPerClient int
	// StringentFrac is the probability a client demand is stringent
	// ([0.01, 0.099] vs [0.1, 0.999]), mirroring the paper's T mix.
	StringentFrac float64
	// Seed makes generation deterministic.
	Seed int64
}

// GenerateClients builds a random client population.
func GenerateClients(w ClientWorkload) ([]*Client, error) {
	if w.Clients <= 0 || len(w.Repos) == 0 || len(w.Items) == 0 {
		return nil, fmt.Errorf("repository: client workload needs clients, repos and items")
	}
	if w.ItemsPerClient <= 0 {
		w.ItemsPerClient = 3
	}
	r := rand.New(rand.NewSource(w.Seed))
	out := make([]*Client, w.Clients)
	for i := range out {
		c := &Client{
			Name:  fmt.Sprintf("client%04d", i),
			Repo:  w.Repos[r.Intn(len(w.Repos))],
			Wants: make(map[string]coherency.Requirement),
		}
		n := 1 + r.Intn(2*w.ItemsPerClient-1)
		perm := r.Perm(len(w.Items))
		if n > len(perm) {
			n = len(perm)
		}
		for _, idx := range perm[:n] {
			var tol coherency.Requirement
			if r.Float64() < w.StringentFrac {
				tol = coherency.Requirement(0.01 + r.Float64()*(0.099-0.01))
			} else {
				tol = coherency.Requirement(0.1 + r.Float64()*(0.999-0.1))
			}
			c.Wants[w.Items[idx]] = tol
		}
		out[i] = c
	}
	return out, nil
}

// ClientFidelity evaluates whether each client's own tolerance was met,
// given the fidelity its repository achieved per item at the repository's
// (possibly more stringent) requirement. A client whose tolerance is
// looser than the repository's requirement observes at least the
// repository's fidelity, so repoFidelity is a lower bound; this helper
// aggregates it per client for reporting.
func ClientFidelity(clients []*Client, repoFidelity func(repo ID, item string) (float64, bool)) map[string]float64 {
	out := make(map[string]float64, len(clients))
	for _, c := range clients {
		var sum float64
		var n int
		items := make([]string, 0, len(c.Wants))
		for item := range c.Wants {
			items = append(items, item)
		}
		sort.Strings(items)
		for _, item := range items {
			if f, ok := repoFidelity(c.Repo, item); ok {
				sum += f
				n++
			}
		}
		if n > 0 {
			out[c.Name] = sum / float64(n)
		}
	}
	return out
}
