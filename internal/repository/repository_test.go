package repository

import (
	"fmt"
	"testing"
)

func TestNewRepositoryBasics(t *testing.T) {
	r := New(3, 5)
	if r.IsSource() {
		t.Error("id 3 should not be the source")
	}
	if !New(SourceID, 1).IsSource() {
		t.Error("id 0 should be the source")
	}
	if r.NumChildren() != 0 {
		t.Errorf("fresh repository has %d children", r.NumChildren())
	}
}

func TestCapacityAccounting(t *testing.T) {
	r := New(1, 2)
	r.Serving["A"] = 0.5
	r.Serving["B"] = 0.5
	r.AddDependent("A", 10)
	r.AddDependent("B", 10) // same child, second item: one connection
	if r.NumChildren() != 1 {
		t.Fatalf("one child serving two items counted as %d connections", r.NumChildren())
	}
	r.AddDependent("A", 11)
	if r.NumChildren() != 2 {
		t.Fatalf("children = %d, want 2", r.NumChildren())
	}
	if r.HasCapacityFor(12) {
		t.Error("full repository reported capacity for a new child")
	}
	if !r.HasCapacityFor(10) {
		t.Error("full repository must still accept items for an existing child")
	}
	defer func() {
		if recover() == nil {
			t.Error("exceeding coop limit did not panic")
		}
	}()
	r.AddDependent("A", 12)
}

func TestAddDependentIdempotentPerItem(t *testing.T) {
	r := New(1, 5)
	r.AddDependent("A", 7)
	r.AddDependent("A", 7)
	if got := len(r.Dependents["A"]); got != 1 {
		t.Errorf("duplicate AddDependent produced %d entries", got)
	}
}

func TestCanServe(t *testing.T) {
	src := New(SourceID, 100)
	if !src.CanServe("anything", 0) {
		t.Error("source must serve any item at any tolerance")
	}
	r := New(1, 5)
	r.Serving["A"] = 0.3
	if !r.CanServe("A", 0.5) {
		t.Error("0.3 server must serve a 0.5 dependent")
	}
	if r.CanServe("A", 0.1) {
		t.Error("0.3 server cannot serve a 0.1 dependent without augmentation")
	}
	if r.CanServe("B", 0.5) {
		t.Error("cannot serve an item not held")
	}
}

func TestTighten(t *testing.T) {
	r := New(1, 5)
	r.Serving["A"] = 0.5
	if !r.Tighten("A", 0.2) {
		t.Error("tightening 0.5 -> 0.2 should report a change")
	}
	if r.Serving["A"] != 0.2 {
		t.Errorf("serving tolerance %v, want 0.2", r.Serving["A"])
	}
	if r.Tighten("A", 0.4) {
		t.Error("loosening must be a no-op")
	}
	if !r.Tighten("NEW", 0.7) {
		t.Error("tightening a fresh item should report a change")
	}
	src := New(SourceID, 100)
	if src.Tighten("A", 0.1) {
		t.Error("the source never needs tightening")
	}
	if c, ok := src.ServingTolerance("A"); !ok || c != 0 {
		t.Errorf("source tolerance %v,%v; want 0,true", c, ok)
	}
}

func TestItemsSorted(t *testing.T) {
	r := New(1, 5)
	for _, x := range []string{"C", "A", "B"} {
		r.Serving[x] = 0.5
		r.Needs[x] = 0.5
	}
	for i, x := range r.Items() {
		if want := string(rune('A' + i)); x != want {
			t.Errorf("Items()[%d] = %s, want %s", i, x, want)
		}
	}
	if len(r.NeededItems()) != 3 {
		t.Errorf("NeededItems length %d, want 3", len(r.NeededItems()))
	}
}

func catalogue(n int) []string {
	items := make([]string, n)
	for i := range items {
		items[i] = fmt.Sprintf("ITEM%03d", i)
	}
	return items
}

func TestAssignNeedsSubscriptionRate(t *testing.T) {
	repos := make([]*Repository, 50)
	for i := range repos {
		repos[i] = New(ID(i+1), 4)
	}
	items := catalogue(100)
	AssignNeeds(repos, Workload{Items: items, SubscribeProb: 0.5, StringentFrac: 0.2, Seed: 1})
	var total int
	for _, r := range repos {
		total += len(r.Needs)
	}
	// 50 repos x 100 items x 0.5 ~ 2500 subscriptions.
	if total < 2200 || total > 2800 {
		t.Errorf("total subscriptions %d, want ~2500", total)
	}
}

func TestAssignNeedsToleranceMix(t *testing.T) {
	repos := []*Repository{New(1, 4)}
	items := catalogue(2000)
	AssignNeeds(repos, Workload{Items: items, SubscribeProb: 1, StringentFrac: 0.7, Seed: 2})
	var stringent, lax int
	for _, c := range repos[0].Needs {
		switch {
		case c >= 0.01 && c <= 0.099:
			stringent++
		case c >= 0.1 && c <= 0.999:
			lax++
		default:
			t.Fatalf("tolerance %v outside both paper bands", c)
		}
	}
	frac := float64(stringent) / float64(stringent+lax)
	if frac < 0.6 || frac > 0.8 {
		t.Errorf("stringent fraction %.2f, want ~0.7", frac)
	}
}

func TestAssignNeedsExtremes(t *testing.T) {
	repos := []*Repository{New(1, 4)}
	items := catalogue(100)
	AssignNeeds(repos, Workload{Items: items, SubscribeProb: 1, StringentFrac: 1, Seed: 3})
	for x, c := range repos[0].Needs {
		if c > 0.099 {
			t.Errorf("T=100%%: item %s got lax tolerance %v", x, c)
		}
	}
	AssignNeeds(repos, Workload{Items: items, SubscribeProb: 1, StringentFrac: 0, Seed: 3})
	for x, c := range repos[0].Needs {
		if c < 0.1 {
			t.Errorf("T=0%%: item %s got stringent tolerance %v", x, c)
		}
	}
}

func TestAssignNeedsDeterministic(t *testing.T) {
	mk := func() *Repository {
		r := New(1, 4)
		AssignNeeds([]*Repository{r}, Workload{Items: catalogue(50), StringentFrac: 0.5, Seed: 11})
		return r
	}
	a, b := mk(), mk()
	if len(a.Needs) != len(b.Needs) {
		t.Fatal("same seed produced different subscription counts")
	}
	for x, c := range a.Needs {
		if b.Needs[x] != c {
			t.Fatal("same seed produced different tolerances")
		}
	}
}
