package repository

import (
	"reflect"
	"testing"
	"testing/quick"

	"d3t/internal/coherency"
)

func TestDeriveNeedsTakesMostStringent(t *testing.T) {
	repos := []*Repository{New(1, 4), New(2, 4)}
	clients := []*Client{
		{Name: "a", Repo: 1, Wants: map[string]coherency.Requirement{"X": 0.5, "Y": 0.2}},
		{Name: "b", Repo: 1, Wants: map[string]coherency.Requirement{"X": 0.05}},
		{Name: "c", Repo: 2, Wants: map[string]coherency.Requirement{"Y": 0.9}},
	}
	if err := DeriveNeeds(repos, clients); err != nil {
		t.Fatal(err)
	}
	if got := repos[0].Needs["X"]; got != 0.05 {
		t.Errorf("repo 1 X tolerance %v, want the most stringent 0.05", got)
	}
	if got := repos[0].Needs["Y"]; got != 0.2 {
		t.Errorf("repo 1 Y tolerance %v, want 0.2", got)
	}
	if got := repos[1].Needs["Y"]; got != 0.9 {
		t.Errorf("repo 2 Y tolerance %v, want 0.9", got)
	}
	if _, has := repos[1].Needs["X"]; has {
		t.Error("repo 2 acquired an item no client asked it for")
	}
	// Serving mirrors needs after derivation.
	if repos[0].Serving["X"] != 0.05 {
		t.Errorf("serving not reset to needs: %v", repos[0].Serving)
	}
}

func TestDeriveNeedsRejectsBadClients(t *testing.T) {
	repos := []*Repository{New(1, 4)}
	cases := []*Client{
		{Name: "noRepo", Repo: 0, Wants: map[string]coherency.Requirement{"X": 0.5}},
		{Name: "unknown", Repo: 9, Wants: map[string]coherency.Requirement{"X": 0.5}},
		{Name: "empty", Repo: 1, Wants: map[string]coherency.Requirement{}},
		{Name: "negative", Repo: 1, Wants: map[string]coherency.Requirement{"X": -1}},
	}
	for _, c := range cases {
		if err := DeriveNeeds(repos, []*Client{c}); err == nil {
			t.Errorf("client %q accepted", c.Name)
		}
	}
}

func TestGenerateClients(t *testing.T) {
	items := catalogue(20)
	repos := []ID{1, 2, 3}
	clients, err := GenerateClients(ClientWorkload{
		Clients: 100, Repos: repos, Items: items,
		ItemsPerClient: 4, StringentFrac: 0.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(clients) != 100 {
		t.Fatalf("got %d clients, want 100", len(clients))
	}
	var total int
	for _, c := range clients {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		if c.Repo < 1 || c.Repo > 3 {
			t.Fatalf("client %s attached to %d", c.Name, c.Repo)
		}
		total += len(c.Wants)
	}
	// Mean items per client is ItemsPerClient by construction.
	if avg := float64(total) / 100; avg < 2.5 || avg > 5.5 {
		t.Errorf("mean wants per client %.1f, expected near 4", avg)
	}
}

func TestGenerateClientsErrors(t *testing.T) {
	if _, err := GenerateClients(ClientWorkload{}); err == nil {
		t.Error("empty workload accepted")
	}
}

// TestDeriveNeedsProperty: after derivation, every repository need is
// exactly the minimum tolerance any of its clients demands for that item.
func TestDeriveNeedsProperty(t *testing.T) {
	f := func(seed int64) bool {
		items := catalogue(10)
		clients, err := GenerateClients(ClientWorkload{
			Clients: 40, Repos: []ID{1, 2, 3, 4}, Items: items,
			ItemsPerClient: 3, StringentFrac: 0.5, Seed: seed,
		})
		if err != nil {
			return false
		}
		repos := []*Repository{New(1, 4), New(2, 4), New(3, 4), New(4, 4)}
		if err := DeriveNeeds(repos, clients); err != nil {
			return false
		}
		want := map[ID]map[string]coherency.Requirement{}
		for _, c := range clients {
			m := want[c.Repo]
			if m == nil {
				m = map[string]coherency.Requirement{}
				want[c.Repo] = m
			}
			for item, tol := range c.Wants {
				cur, ok := m[item]
				if !ok || tol < cur {
					m[item] = tol
				}
			}
		}
		for _, r := range repos {
			if len(r.Needs) != len(want[r.ID]) {
				return false
			}
			for item, tol := range r.Needs {
				if want[r.ID][item] != tol {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestGenerateClientsDeterministic pins seed-reproducibility: the same
// workload must yield byte-identical populations, and a different seed a
// different one.
func TestGenerateClientsDeterministic(t *testing.T) {
	w := ClientWorkload{
		Clients: 60, Repos: []ID{1, 2, 3, 4, 5}, Items: catalogue(15),
		ItemsPerClient: 3, StringentFrac: 0.4, Seed: 11,
	}
	a, err := GenerateClients(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateClients(w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different client populations")
	}
	w.Seed = 12
	c, err := GenerateClients(w)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical client populations")
	}
}

// TestDeriveNeedsDeterministic: deriving twice from the same population
// yields identical need maps (no map-iteration-order leakage).
func TestDeriveNeedsDeterministic(t *testing.T) {
	clients, err := GenerateClients(ClientWorkload{
		Clients: 50, Repos: []ID{1, 2, 3}, Items: catalogue(12), Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	derive := func() []*Repository {
		repos := []*Repository{New(1, 4), New(2, 4), New(3, 4)}
		if err := DeriveNeeds(repos, clients); err != nil {
			t.Fatal(err)
		}
		return repos
	}
	a, b := derive(), derive()
	for i := range a {
		if !reflect.DeepEqual(a[i].Needs, b[i].Needs) || !reflect.DeepEqual(a[i].Serving, b[i].Serving) {
			t.Errorf("repository %d derived different needs across runs", a[i].ID)
		}
	}
}

func TestClientFidelityZeroClients(t *testing.T) {
	got := ClientFidelity(nil, func(ID, string) (float64, bool) { return 1, true })
	if len(got) != 0 {
		t.Errorf("zero clients produced %d fidelity entries", len(got))
	}
}

// TestClientFidelityUnservedItems: items the repository reports no
// fidelity for are excluded from the client's mean, and a client none of
// whose items are served is omitted entirely.
func TestClientFidelityUnservedItems(t *testing.T) {
	clients := []*Client{
		{Name: "partial", Repo: 1, Wants: map[string]coherency.Requirement{"X": 0.5, "GONE": 0.5}},
		{Name: "unserved", Repo: 2, Wants: map[string]coherency.Requirement{"GONE": 0.5}},
	}
	got := ClientFidelity(clients, func(repo ID, item string) (float64, bool) {
		if repo == 1 && item == "X" {
			return 0.8, true
		}
		return 0, false
	})
	if f, ok := got["partial"]; !ok || f != 0.8 {
		t.Errorf("partial client fidelity = %v (ok=%v), want 0.8 over its one served item", f, ok)
	}
	if _, ok := got["unserved"]; ok {
		t.Error("client with no served items reported a fidelity")
	}
}

func TestClientFidelity(t *testing.T) {
	clients := []*Client{
		{Name: "a", Repo: 1, Wants: map[string]coherency.Requirement{"X": 0.5, "Y": 0.5}},
		{Name: "b", Repo: 2, Wants: map[string]coherency.Requirement{"X": 0.5}},
	}
	fid := map[ID]map[string]float64{
		1: {"X": 1.0, "Y": 0.8},
		2: {"X": 0.9},
	}
	got := ClientFidelity(clients, func(repo ID, item string) (float64, bool) {
		f, ok := fid[repo][item]
		return f, ok
	})
	if got["a"] != 0.9 {
		t.Errorf("client a fidelity %v, want 0.9", got["a"])
	}
	if got["b"] != 0.9 {
		t.Errorf("client b fidelity %v, want 0.9", got["b"])
	}
}
