package tree

import (
	"fmt"
	"testing"
	"testing/quick"

	"d3t/internal/netsim"
	"d3t/internal/repository"
	"d3t/internal/sim"
)

// buildFixture creates n repositories with workload-assigned needs over
// `items` item names and wires them with the given builder.
func buildFixture(t *testing.T, b Builder, n, items, coop int, stringentFrac float64, seed int64) *Overlay {
	t.Helper()
	o, err := buildFixtureErr(b, n, items, coop, stringentFrac, seed)
	if err != nil {
		t.Fatalf("%s build failed: %v", b.Name(), err)
	}
	return o
}

func buildFixtureErr(b Builder, n, items, coop int, stringentFrac float64, seed int64) (*Overlay, error) {
	net := netsim.MustGenerate(netsim.Config{Repositories: n, Routers: 3 * n, Seed: seed})
	repos := make([]*repository.Repository, n)
	for i := range repos {
		repos[i] = repository.New(repository.ID(i+1), coop)
	}
	catalogue := make([]string, items)
	for i := range catalogue {
		catalogue[i] = fmt.Sprintf("ITEM%03d", i)
	}
	repository.AssignNeeds(repos, repository.Workload{
		Items: catalogue, SubscribeProb: 0.5, StringentFrac: stringentFrac, Seed: seed + 1,
	})
	return b.Build(net, repos, coop)
}

func TestLeLAProducesValidOverlay(t *testing.T) {
	o := buildFixture(t, &LeLA{}, 30, 20, 4, 0.5, 1)
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	m := o.ComputeMetrics()
	if m.Diameter < 2 {
		t.Errorf("30 repos at fan-out 4 should need depth >= 2, got %d", m.Diameter)
	}
	if m.MaxChildren > 4 {
		t.Errorf("max children %d exceeds coop limit 4", m.MaxChildren)
	}
}

func TestLeLAChainAtCoopOne(t *testing.T) {
	// Degree of cooperation 1 must produce a chain: every node has at
	// most one child and the diameter equals the repository count.
	o := buildFixture(t, &LeLA{}, 12, 8, 1, 0.5, 2)
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	m := o.ComputeMetrics()
	if m.MaxChildren != 1 {
		t.Errorf("chain max children %d, want 1", m.MaxChildren)
	}
	if m.Diameter != 12 {
		t.Errorf("chain diameter %d, want 12", m.Diameter)
	}
}

func TestLeLAStarAtFullCooperation(t *testing.T) {
	// Degree of cooperation >= repository count: the source serves
	// everyone directly (the paper's right end of Figure 3).
	o := buildFixture(t, &LeLA{}, 15, 8, 15, 0.5, 3)
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	m := o.ComputeMetrics()
	if m.Diameter != 1 {
		t.Errorf("star diameter %d, want 1", m.Diameter)
	}
	if got := o.Source().NumChildren(); got != 15 {
		t.Errorf("source children %d, want 15", got)
	}
}

func TestLeLADeterministicForSeed(t *testing.T) {
	a, err := buildFixtureErr(&LeLA{Seed: 7}, 20, 10, 3, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildFixtureErr(&LeLA{Seed: 7}, 20, 10, 3, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Nodes {
		if a.Nodes[i].NumChildren() != b.Nodes[i].NumChildren() ||
			a.Nodes[i].Level != b.Nodes[i].Level {
			t.Fatalf("node %d differs across identical builds", i)
		}
		for x, p := range a.Nodes[i].Parents {
			if b.Nodes[i].Parents[x] != p {
				t.Fatalf("node %d parent for %s differs across identical builds", i, x)
			}
		}
	}
}

func TestAllBuildersSatisfyInvariants(t *testing.T) {
	builders := []Builder{
		&LeLA{},
		&LeLA{Preference: P2},
		&LeLA{PPercent: 25},
		&RandomBuilder{Seed: 5},
		&GreedyBuilder{},
		&DirectBuilder{},
	}
	for _, b := range builders {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			o := buildFixture(t, b, 25, 15, 5, 0.5, 4)
			if err := o.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOverlayInvariantsProperty fuzzes LeLA across sizes, coop degrees and
// coherency mixes: every build must validate.
func TestOverlayInvariantsProperty(t *testing.T) {
	f := func(seed int64, nRaw, coopRaw, tRaw uint8) bool {
		n := 5 + int(nRaw)%30
		coop := 1 + int(coopRaw)%10
		strFrac := float64(tRaw%101) / 100
		o, err := buildFixtureErr(&LeLA{Seed: seed}, n, 12, coop, strFrac, seed)
		if err != nil {
			return false
		}
		return o.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDirectBuilderIgnoresSmallSourceLimit(t *testing.T) {
	o := buildFixture(t, &DirectBuilder{}, 10, 6, 2, 0.5, 6)
	if got := o.Source().NumChildren(); got != 10 {
		t.Errorf("direct build source children %d, want 10", got)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejectsMismatchedNetwork(t *testing.T) {
	net := netsim.MustGenerate(netsim.Config{Repositories: 3, Routers: 9, Seed: 1})
	// Fewer repositories than endpoints is fine (spare capacity for
	// joiners); more than the network can address is not.
	repos := []*repository.Repository{repository.New(1, 2)}
	if _, err := (&LeLA{}).Build(net, repos, 2); err != nil {
		t.Errorf("spare endpoint capacity rejected: %v", err)
	}
	repos = []*repository.Repository{
		repository.New(1, 2), repository.New(2, 2),
		repository.New(3, 2), repository.New(4, 2),
	}
	if _, err := (&LeLA{}).Build(net, repos, 2); err == nil {
		t.Error("more repositories than network endpoints accepted")
	}
	repos = []*repository.Repository{repository.New(5, 2), repository.New(2, 2), repository.New(3, 2)}
	if _, err := (&LeLA{}).Build(net, repos, 2); err == nil {
		t.Error("misnumbered repository ids accepted")
	}
	repos = []*repository.Repository{repository.New(1, 0), repository.New(2, 2), repository.New(3, 2)}
	if _, err := (&LeLA{}).Build(net, repos, 2); err == nil {
		t.Error("zero cooperation limit accepted")
	}
}

func TestControlledCoopDegree(t *testing.T) {
	ms := func(x float64) sim.Time { return sim.Milliseconds(x) }
	cases := []struct {
		comm, comp float64
		res, k     int
		want       int
	}{
		// The paper's regime: 25 ms comm, 12.5 ms comp, 100 resources.
		{25, 12.5, 100, 30, 6},
		{25, 12.5, 100, 100, 2},
		// Larger communication delays push the degree up (Fig. 7b logic).
		{125, 12.5, 100, 30, 33},
		// Larger computational delays push it down (Fig. 7c logic).
		{25, 25, 100, 30, 3},
		// Clamping.
		{1000, 1, 100, 30, 100},
		{1, 1000, 100, 30, 1},
	}
	for _, c := range cases {
		got := ControlledCoopDegree(ms(c.comm), ms(c.comp), c.res, c.k)
		if got != c.want {
			t.Errorf("ControlledCoopDegree(%vms, %vms, %d, %d) = %d, want %d",
				c.comm, c.comp, c.res, c.k, got, c.want)
		}
	}
}

func TestControlledCoopDegreeDegenerate(t *testing.T) {
	if got := ControlledCoopDegree(0, sim.Millisecond, 50, 30); got != 1 {
		t.Errorf("zero comm delay: degree %d, want 1", got)
	}
	if got := ControlledCoopDegree(sim.Millisecond, 0, 50, 30); got != 50 {
		t.Errorf("zero comp delay: degree %d, want all resources (50)", got)
	}
	if got := ControlledCoopDegree(sim.Millisecond, sim.Millisecond, 0, 0); got != 1 {
		t.Errorf("no resources: degree %d, want 1", got)
	}
}

func TestPreferenceFunctions(t *testing.T) {
	in := PrefInputs{DelayMs: 10, Dependents: 3, Available: 4}
	if got, want := P1(in), 10.0*4/5; got != want {
		t.Errorf("P1 = %v, want %v", got, want)
	}
	if got, want := P2(in), 40.0; got != want {
		t.Errorf("P2 = %v, want %v", got, want)
	}
	// More dependents must never make a candidate more preferred.
	for d := 0; d < 10; d++ {
		a := P1(PrefInputs{DelayMs: 10, Dependents: d, Available: 2})
		b := P1(PrefInputs{DelayMs: 10, Dependents: d + 1, Available: 2})
		if b <= a {
			t.Fatalf("P1 not monotone in dependents: %v then %v", a, b)
		}
	}
	// More availability must never make a candidate less preferred.
	for av := 0; av < 10; av++ {
		a := P1(PrefInputs{DelayMs: 10, Dependents: 2, Available: av})
		b := P1(PrefInputs{DelayMs: 10, Dependents: 2, Available: av + 1})
		if b >= a {
			t.Fatalf("P1 not monotone in availability: %v then %v", a, b)
		}
	}
}

func TestStringentNeedsSitCloserToSource(t *testing.T) {
	// Section 1.2: repositories with stringent requirements should end up
	// closer to the source. LeLA achieves this indirectly: serving chains
	// are augmented so upstream tolerances are at least as stringent.
	// Verify the direct consequence: along every path, tolerance never
	// loosens toward the leaves.
	o := buildFixture(t, &LeLA{}, 40, 20, 4, 0.5, 13)
	for _, n := range o.Repos() {
		for x, pid := range n.Parents {
			p := o.Node(pid)
			pc, ok := p.ServingTolerance(x)
			if !ok {
				t.Fatalf("node %d's parent %d does not serve %s", n.ID, pid, x)
			}
			nc, _ := n.ServingTolerance(x)
			if !pc.AtLeastAsStringentAs(nc) {
				t.Fatalf("parent %d tolerance %v looser than child %d tolerance %v for %s",
					pid, pc, n.ID, nc, x)
			}
		}
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{Diameter: 3, AvgDepth: 2.1, AvgChildren: 4.2, MaxChildren: 6}
	if s := m.String(); s == "" {
		t.Error("empty metrics string")
	}
}
