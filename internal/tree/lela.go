package tree

import (
	"fmt"
	"math/rand"
	"sort"

	"d3t/internal/coherency"
	"d3t/internal/netsim"
	"d3t/internal/repository"
	"d3t/internal/sim"
)

// LeLA is the paper's Level-by-Level Algorithm (Section 4). Repositories
// are inserted one at a time: starting at level 0 (the source), the load
// controller of each level scores the level's members with the preference
// function, keeps everyone within PPercent of the best score as potential
// parents, splits the entering repository's data needs across them, and
// augments the most preferred parent — cascading toward the source — for
// items nobody at the level serves.
type LeLA struct {
	// PPercent is the load controller's admission band: candidates whose
	// preference is within PPercent% of the minimum become potential
	// parents. The paper uses 5%.
	PPercent float64
	// Preference scores candidates; defaults to P1.
	Preference PreferenceFunc
	// Seed drives the random choice among a node's parents during
	// cascading augmentation.
	Seed int64
}

// Name implements Builder.
func (l *LeLA) Name() string { return "lela" }

// Build implements Builder. Repositories are inserted in slice order; the
// i-th repository becomes overlay node i+1 and must already carry its
// needs and cooperation limit.
func (l *LeLA) Build(net *netsim.Network, repos []*repository.Repository, sourceCoopLimit int) (*Overlay, error) {
	p := l.PPercent
	if p == 0 {
		p = 5
	}
	pref := l.Preference
	if pref == nil {
		pref = P1
	}
	rng := rand.New(rand.NewSource(l.Seed))

	o, err := newOverlay(net, repos, sourceCoopLimit)
	if err != nil {
		return nil, err
	}
	// levels[d] holds the ids of nodes at overlay depth d.
	levels := [][]repository.ID{{repository.SourceID}}
	for _, q := range repos {
		lvl, err := l.insert(o, levels, q, p, pref, rng)
		if err != nil {
			return nil, err
		}
		for len(levels) <= lvl {
			levels = append(levels, nil)
		}
		levels[lvl] = append(levels[lvl], q.ID)
	}
	return o, nil
}

// insert places q below some level and returns q's resulting level.
func (l *LeLA) insert(o *Overlay, levels [][]repository.ID, q *repository.Repository,
	pPercent float64, pref PreferenceFunc, rng *rand.Rand) (int, error) {

	needs := q.NeededItems()
	for lvl := 0; lvl < len(levels); lvl++ {
		// The load controller for this level: score members with spare
		// capacity.
		type scored struct {
			node *repository.Repository
			pref float64
		}
		var cands []scored
		for _, id := range levels[lvl] {
			n := o.Node(id)
			if !n.HasCapacityFor(q.ID) {
				continue
			}
			avail := 0
			for _, x := range needs {
				if n.CanServe(x, q.Needs[x]) {
					avail++
				}
			}
			cands = append(cands, scored{n, pref(PrefInputs{
				DelayMs:    delayMs(o.Net, n.ID, q.ID),
				Dependents: n.NumChildren(),
				Available:  avail,
			})})
		}
		if len(cands) == 0 {
			continue // level full; the load controller passes q down
		}
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].pref < cands[j].pref })
		cut := cands[0].pref * (1 + pPercent/100)
		potential := cands[:0:0]
		for _, c := range cands {
			if c.pref <= cut {
				potential = append(potential, c)
			}
		}

		// Split q's needs across the potential parents: each item goes to
		// the most preferred parent that can serve it outright.
		assigned := make(map[string]*repository.Repository, len(needs))
		var leftovers []string
		for _, x := range needs {
			var owner *repository.Repository
			for _, c := range potential {
				if c.node.CanServe(x, q.Needs[x]) {
					owner = c.node
					break
				}
			}
			if owner == nil {
				leftovers = append(leftovers, x)
				continue
			}
			assigned[x] = owner
		}
		// Items nobody serves go to the most preferred parent, which is
		// augmented (possibly cascading all the way to the source).
		for _, x := range leftovers {
			assigned[x] = potential[0].node
		}

		for _, x := range needs {
			parent := assigned[x]
			c := q.Needs[x]
			if !parent.CanServe(x, c) {
				if err := augment(o, parent, x, c, rng); err != nil {
					return 0, err
				}
			}
			parent.AddDependent(x, q.ID)
			q.Parents[x] = parent.ID
		}
		if len(needs) == 0 {
			// A repository with no data needs of its own still joins with
			// a liaison connection, so it consumes overlay capacity like
			// any other member and can be augmented into service later.
			potential[0].node.Attach(q.ID)
			q.Liaison = potential[0].node.ID
		}
		q.Level = lvl + 1
		return lvl + 1, nil
	}
	return 0, fmt.Errorf("tree: no capacity anywhere for repository %d (all %d levels full)",
		q.ID, len(levels))
}

// augment makes node p able to serve item x at tolerance c: it tightens
// p's own serving tolerance and establishes (or tightens) a feed for x
// from one of p's parents, recursing toward the source (the cascading
// augmentation of Section 4). p must not be the source.
func augment(o *Overlay, p *repository.Repository, x string, c coherency.Requirement, rng *rand.Rand) error {
	if p.IsSource() {
		return nil // the source holds every item exactly
	}
	p.Tighten(x, c)
	if pid, ok := p.Parents[x]; ok {
		parent := o.Node(pid)
		if !parent.CanServe(x, c) {
			return augment(o, parent, x, c, rng)
		}
		return nil
	}
	// No feed for x yet: the paper picks one of p's existing parents at
	// random and asks it to serve x (no new push connection is needed —
	// p is already that parent's child).
	var parent *repository.Repository
	if parents := distinctParents(p); len(parents) > 0 {
		parent = o.Node(parents[rng.Intn(len(parents))])
	} else {
		// p entered the overlay with no data needs, so it has no feeds at
		// all. Adopt a parent from a strictly lower level (guaranteeing
		// acyclicity) with a free connection slot.
		for _, cand := range o.Nodes {
			if cand.Level < p.Level && cand.ID != p.ID && cand.HasCapacityFor(p.ID) {
				parent = cand
				break
			}
		}
		if parent == nil {
			return fmt.Errorf("tree: cannot augment node %d for %s: no adoptable parent with capacity", p.ID, x)
		}
	}
	if !parent.CanServe(x, c) {
		if err := augment(o, parent, x, c, rng); err != nil {
			return err
		}
	}
	parent.AddDependent(x, p.ID)
	p.Parents[x] = parent.ID
	return nil
}

// distinctParents lists p's parent ids over all items (falling back to the
// liaison parent), sorted and deduped for deterministic random selection.
func distinctParents(p *repository.Repository) []repository.ID {
	set := make(map[repository.ID]bool)
	for _, id := range p.Parents {
		set[id] = true
	}
	if len(set) == 0 && p.Liaison != repository.NoID {
		set[p.Liaison] = true
	}
	out := make([]repository.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// delayMs returns the physical delay between two overlay nodes in
// milliseconds.
func delayMs(net *netsim.Network, a, b repository.ID) float64 {
	return float64(net.Delay[a][b]) / float64(sim.Millisecond)
}

// newOverlay allocates the source and checks that node ids line up with
// network endpoints. The network may have spare endpoint capacity beyond
// the initial repositories — room for later Insert joins.
func newOverlay(net *netsim.Network, repos []*repository.Repository, sourceCoopLimit int) (*Overlay, error) {
	if len(repos) > net.Repositories {
		return nil, fmt.Errorf("tree: %d repositories but network has only %d endpoints for them",
			len(repos), net.Repositories)
	}
	nodes := make([]*repository.Repository, len(repos)+1)
	nodes[repository.SourceID] = repository.New(repository.SourceID, sourceCoopLimit)
	for i, r := range repos {
		want := repository.ID(i + 1)
		if r.ID != want {
			return nil, fmt.Errorf("tree: repository at index %d has id %d, want %d", i, r.ID, want)
		}
		if r.CoopLimit < 1 {
			return nil, fmt.Errorf("tree: repository %d offers no cooperation (limit %d)", r.ID, r.CoopLimit)
		}
		nodes[want] = r
	}
	return &Overlay{Nodes: nodes, Net: net}, nil
}
