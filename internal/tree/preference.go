package tree

// PrefInputs are the ingredients of a load controller's preference factor
// for one candidate parent (Section 4). Smaller preference values are
// better.
type PrefInputs struct {
	// DelayMs is the communication delay between the candidate parent and
	// the entering repository, in milliseconds.
	DelayMs float64
	// Dependents is the candidate's current distinct-children count; it
	// approximates the computational delay a new child would see.
	Dependents int
	// Available is the number of the entering repository's needed items
	// the candidate can serve at the required stringency without
	// augmentation (the data availability factor).
	Available int
}

// PreferenceFunc scores a candidate parent; lower is preferred.
type PreferenceFunc func(PrefInputs) float64

// P1 is the paper's primary preference factor:
//
//	(computational delay factor x communication delay factor)
//	-------------------------------------------------------
//	           data availability factor
//
// using (1 + dependents) for the computational factor and (1 + available)
// for availability so fresh nodes and zero-availability candidates stay
// finite.
func P1(in PrefInputs) float64 {
	return in.DelayMs * float64(1+in.Dependents) / float64(1+in.Available)
}

// P2 is the alternative of Section 6.3.3 (Figure 10): delay x (1 +
// dependents), ignoring data availability.
func P2(in PrefInputs) float64 {
	return in.DelayMs * float64(1+in.Dependents)
}
