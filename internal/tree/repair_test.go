package tree

import (
	"fmt"
	"strings"
	"testing"

	"d3t/internal/repository"
)

// interiorNode returns a node that currently serves dependents.
func interiorNode(t *testing.T, o *Overlay) *repository.Repository {
	t.Helper()
	var best *repository.Repository
	for _, n := range o.Repos() {
		if n.NumChildren() > 0 && (best == nil || n.NumChildren() > best.NumChildren()) {
			best = n
		}
	}
	if best == nil {
		t.Fatal("fixture overlay has no interior repository")
	}
	return best
}

func TestRemoveNamesDependents(t *testing.T) {
	o, _ := dynFixture(t, 12, 12, 10, 3, 5)
	q := interiorNode(t, o)
	err := o.Remove(q.ID)
	if err == nil {
		t.Fatalf("interior removal of %d accepted", q.ID)
	}
	for _, dep := range dependentsOf(o, q) {
		if !strings.Contains(err.Error(), fmt.Sprintf("%d", dep)) {
			t.Errorf("error %q does not name dependent %d", err, dep)
		}
	}
}

func TestRemoveRepairDepartsInteriorNode(t *testing.T) {
	o, l := dynFixture(t, 14, 14, 10, 4, 6)
	q := interiorNode(t, o)
	deps := dependentsOf(o, q)

	if err := l.RemoveRepair(o, q.ID); err != nil {
		t.Fatalf("RemoveRepair(%d): %v", q.ID, err)
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("overlay invalid after repair: %v", err)
	}
	if q.NumChildren() != 0 || len(q.Parents) != 0 || len(q.Serving) != 0 {
		t.Errorf("departed node %d not inert: %d children, %d parents, %d serving",
			q.ID, q.NumChildren(), len(q.Parents), len(q.Serving))
	}
	for _, depID := range deps {
		d := o.Node(depID)
		for x := range d.Needs {
			pid, ok := d.Parents[x]
			if !ok {
				t.Errorf("dependent %d lost its feed for %s", depID, x)
				continue
			}
			if pid == q.ID {
				t.Errorf("dependent %d still fed %s by departed node %d", depID, x, q.ID)
			}
		}
	}
}

func TestRemoveRepairIsDeterministic(t *testing.T) {
	run := func() string {
		o, l := dynFixture(t, 14, 14, 10, 4, 7)
		q := interiorNode(t, o)
		if err := l.RemoveRepair(o, q.ID); err != nil {
			t.Fatalf("RemoveRepair: %v", err)
		}
		var sb strings.Builder
		for _, n := range o.Repos() {
			for _, x := range n.Items() {
				fmt.Fprintf(&sb, "%d:%s:%d;", n.ID, x, n.Parents[x])
			}
		}
		return sb.String()
	}
	if a, b := run(), run(); a != b {
		t.Error("two identical RemoveRepair runs produced different topologies")
	}
}

func TestBackupParentsRankedAndAcyclic(t *testing.T) {
	o, l := dynFixture(t, 14, 14, 10, 4, 8)
	for _, n := range o.Repos() {
		if len(n.Needs) == 0 {
			continue
		}
		backups := l.BackupParents(o, n.ID, 5)
		if len(backups) == 0 {
			t.Errorf("repository %d (level %d) has no backup candidates", n.ID, n.Level)
			continue
		}
		seen := map[repository.ID]bool{}
		for _, b := range backups {
			if o.Node(b).Level >= n.Level {
				t.Errorf("backup %d of %d is at level %d >= %d (cycle risk)",
					b, n.ID, o.Node(b).Level, n.Level)
			}
			if seen[b] {
				t.Errorf("backup list of %d repeats %d", n.ID, b)
			}
			seen[b] = true
		}
	}
}

func TestRehomeRespectsCapacity(t *testing.T) {
	// A two-level chain where the only lower-level alternative is full:
	// re-homing must fail rather than overload it.
	o, l := dynFixture(t, 6, 6, 4, 1, 9)
	var leaf *repository.Repository
	for _, n := range o.Repos() {
		if n.Level >= 2 && len(n.Needs) > 0 {
			leaf = n
			break
		}
	}
	if leaf == nil {
		t.Skip("fixture built a flat overlay")
	}
	dead := map[repository.ID]bool{}
	for x, pid := range leaf.Parents {
		dead[pid] = true
		o.Node(pid).DropDependent(leaf.ID)
		delete(leaf.Parents, x)
	}
	// With coop limit 1 every surviving lower-level node is already full,
	// so Rehome must either find a node with spare capacity or error —
	// never panic on AddDependent.
	for x := range leaf.Needs {
		if _, err := l.Rehome(o, leaf, x, dead); err == nil {
			if err := o.Validate(); err != nil {
				t.Fatalf("rehome produced invalid overlay: %v", err)
			}
		}
		break
	}
}
