// Package tree constructs the dynamic data dissemination graph (d3g) of
// Section 4: the logical overlay connecting the source to the cooperating
// repositories. For any single item the d3g reduces to that item's
// dissemination tree (d3t).
//
// The package provides the paper's LeLA (Level-by-Level Algorithm) with
// its load controller and preference factors, the controlled-cooperation
// formula of Section 3 (Eq. 2), alternative builders used as ablations,
// and structural validation of the overlay invariants.
package tree

import (
	"fmt"

	"d3t/internal/netsim"
	"d3t/internal/repository"
)

// Overlay is a constructed d3g: the source plus repositories, wired with
// per-item parent/dependent edges, over a physical network.
type Overlay struct {
	// Nodes holds the source at index 0 and repository i at index i.
	Nodes []*repository.Repository
	// Net provides endpoint-to-endpoint communication delays; endpoint
	// indices coincide with node ids.
	Net *netsim.Network
}

// Source returns the source node.
func (o *Overlay) Source() *repository.Repository { return o.Nodes[repository.SourceID] }

// Node returns the node with the given id.
func (o *Overlay) Node(id repository.ID) *repository.Repository { return o.Nodes[id] }

// Repos returns the repository nodes (everything but the source).
func (o *Overlay) Repos() []*repository.Repository { return o.Nodes[1:] }

// Validate checks the structural invariants the dissemination algorithms
// rely on. It returns the first violation found:
//
//  1. parent/dependent edges are symmetric;
//  2. every node's distinct-children count respects its cooperation limit;
//  3. for every item a repository serves, following Parents leads to the
//     source without cycles;
//  4. along every edge the parent's tolerance is at least as stringent as
//     the child's (Eq. 1).
func (o *Overlay) Validate() error {
	for _, n := range o.Nodes {
		if n.NumChildren() > n.CoopLimit {
			return fmt.Errorf("tree: node %d has %d children, limit %d", n.ID, n.NumChildren(), n.CoopLimit)
		}
		for x, deps := range n.Dependents {
			for _, d := range deps {
				dep := o.Node(d)
				if dep.Parents[x] != n.ID {
					return fmt.Errorf("tree: node %d lists %d as dependent for %s, but %d's parent is %d",
						n.ID, d, x, d, dep.Parents[x])
				}
				pc, ok := n.ServingTolerance(x)
				if !ok {
					return fmt.Errorf("tree: node %d serves %s to %d without holding it", n.ID, x, d)
				}
				cc, ok := dep.ServingTolerance(x)
				if !ok {
					return fmt.Errorf("tree: node %d receives %s without a serving tolerance", d, x)
				}
				if !pc.AtLeastAsStringentAs(cc) {
					return fmt.Errorf("tree: edge %d->%d for %s violates Eq.1: parent %v > child %v",
						n.ID, d, x, pc, cc)
				}
			}
		}
	}
	for _, n := range o.Repos() {
		for _, x := range n.Items() {
			if err := o.checkPath(n, x); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkPath follows item x's parent chain from n to the source.
func (o *Overlay) checkPath(n *repository.Repository, x string) error {
	seen := map[repository.ID]bool{}
	cur := n
	for !cur.IsSource() {
		if seen[cur.ID] {
			return fmt.Errorf("tree: cycle through node %d for item %s", cur.ID, x)
		}
		seen[cur.ID] = true
		pid, ok := cur.Parents[x]
		if !ok {
			return fmt.Errorf("tree: node %d holds %s but has no parent for it", cur.ID, x)
		}
		cur = o.Node(pid)
	}
	return nil
}

// Metrics summarizes the overlay shape the way Section 6.3.1 reports it.
type Metrics struct {
	// Diameter is the maximum node level (hops from the source in the
	// overlay).
	Diameter int
	// AvgDepth is the mean repository level.
	AvgDepth float64
	// AvgChildren is the mean distinct-children count over nodes that
	// have at least one child.
	AvgChildren float64
	// MaxChildren is the largest distinct-children count.
	MaxChildren int
}

// ComputeMetrics derives shape metrics from the overlay.
func (o *Overlay) ComputeMetrics() Metrics {
	var m Metrics
	var depthSum, reposN int
	var childSum, parentsN int
	for _, n := range o.Nodes {
		if !n.IsSource() {
			depthSum += n.Level
			reposN++
			if n.Level > m.Diameter {
				m.Diameter = n.Level
			}
		}
		if c := n.NumChildren(); c > 0 {
			childSum += c
			parentsN++
			if c > m.MaxChildren {
				m.MaxChildren = c
			}
		}
	}
	if reposN > 0 {
		m.AvgDepth = float64(depthSum) / float64(reposN)
	}
	if parentsN > 0 {
		m.AvgChildren = float64(childSum) / float64(parentsN)
	}
	return m
}

// String renders the metrics compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("diameter=%d avgDepth=%.1f avgChildren=%.1f maxChildren=%d",
		m.Diameter, m.AvgDepth, m.AvgChildren, m.MaxChildren)
}

// Builder constructs an overlay from a physical network and a set of
// repositories whose needs and cooperation limits are already assigned.
// Builders mutate the passed repositories (wiring edges and augmenting
// serving sets).
type Builder interface {
	// Name identifies the builder in experiment output.
	Name() string
	// Build wires the repositories into an overlay rooted at a new source
	// node with the given cooperation limit.
	Build(net *netsim.Network, repos []*repository.Repository, sourceCoopLimit int) (*Overlay, error)
}
