package tree

import "d3t/internal/sim"

// DefaultCoopK is the paper's recommended constant k in Eq. 2. Footnote 1
// reports fidelity is insensitive for k >= 30; k = 30 yields a degree of
// cooperation around 4-10 for the paper's delay regime, k = 100 around
// 2-4.
const DefaultCoopK = 30

// ControlledCoopDegree computes the "optimal" degree of cooperation of
// Section 3 (Eq. 2):
//
//	coopDegree = (1/k) * (avgCommDelay / avgCompDelay) * resources
//
// clamped to [1, resources]. The degree grows with communication delays
// (deep trees hurt more) and shrinks with computational delays (wide nodes
// queue more), exactly the proportionality the paper argues for.
func ControlledCoopDegree(avgComm, avgComp sim.Time, resources, k int) int {
	if resources < 1 {
		resources = 1
	}
	if k <= 0 {
		k = DefaultCoopK
	}
	if avgComp <= 0 || avgComm <= 0 {
		// Degenerate delay regimes: with free computation there is no
		// queueing penalty, so use everything; with free communication
		// depth is harmless but width still queues, so serve one.
		if avgComp <= 0 {
			return resources
		}
		return 1
	}
	deg := int(float64(avgComm) / float64(avgComp) * float64(resources) / float64(k))
	if deg < 1 {
		deg = 1
	}
	if deg > resources {
		deg = resources
	}
	return deg
}
