package tree

import (
	"fmt"
	"testing"

	"d3t/internal/netsim"
	"d3t/internal/repository"
)

// benchBuild measures overlay construction at the paper's base-case size.
func benchBuild(b *testing.B, builder func() Builder, repos, items, coop int) {
	b.Helper()
	net := netsim.MustGenerate(netsim.Config{Repositories: repos, Routers: 6 * repos, Seed: 1})
	catalogue := make([]string, items)
	for i := range catalogue {
		catalogue[i] = fmt.Sprintf("ITEM%03d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		members := make([]*repository.Repository, repos)
		for j := range members {
			members[j] = repository.New(repository.ID(j+1), coop)
		}
		repository.AssignNeeds(members, repository.Workload{
			Items: catalogue, SubscribeProb: 0.5, StringentFrac: 0.5, Seed: 2,
		})
		b.StartTimer()
		if _, err := builder().Build(net, members, coop); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeLABuild100(b *testing.B) {
	benchBuild(b, func() Builder { return &LeLA{} }, 100, 100, 6)
}

func BenchmarkLeLABuild300(b *testing.B) {
	benchBuild(b, func() Builder { return &LeLA{} }, 300, 100, 6)
}

func BenchmarkRandomBuild100(b *testing.B) {
	benchBuild(b, func() Builder { return &RandomBuilder{} }, 100, 100, 6)
}

func BenchmarkGreedyBuild100(b *testing.B) {
	benchBuild(b, func() Builder { return &GreedyBuilder{} }, 100, 100, 6)
}

func BenchmarkValidate(b *testing.B) {
	net := netsim.MustGenerate(netsim.Config{Repositories: 100, Routers: 600, Seed: 1})
	members := make([]*repository.Repository, 100)
	for j := range members {
		members[j] = repository.New(repository.ID(j+1), 6)
	}
	catalogue := make([]string, 100)
	for i := range catalogue {
		catalogue[i] = fmt.Sprintf("ITEM%03d", i)
	}
	repository.AssignNeeds(members, repository.Workload{
		Items: catalogue, SubscribeProb: 0.5, StringentFrac: 0.5, Seed: 2,
	})
	o, err := (&LeLA{}).Build(net, members, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := o.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
