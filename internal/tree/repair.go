package tree

import (
	"fmt"
	"math/rand"
	"sort"

	"d3t/internal/coherency"
	"d3t/internal/repository"
)

// This file implements overlay repair: the re-homing machinery that lets a
// repository anywhere in the d3g — interior nodes included — depart or
// fail without severing its downstream subtree. The paper leaves dependent
// re-homing undetailed; the policy here reuses the construction algorithm's
// own ingredients so repaired overlays look like built ones: candidates are
// ranked with the LeLA preference function, admission respects cooperation
// limits, and feeds are established through the same cascading augmentation
// (Section 4) the builder uses.

// BackupParents returns a ranked backup-parent list for repository id: the
// next-best LeLA candidates the node would re-home to if one of its
// current parents disappeared. Candidates come from strictly lower levels
// (guaranteeing acyclicity of any future re-homing), are scored with the
// builder's preference function, and candidates already satisfying the
// node's tightest need outrank those that would require augmentation. At
// most k ids are returned, best first.
//
// The list is a precomputation: capacity and liveness are rechecked at
// repair time, so entries may be skipped when actually needed.
func (l *LeLA) BackupParents(o *Overlay, id repository.ID, k int) []repository.ID {
	if id <= 0 || int(id) >= len(o.Nodes) || k <= 0 {
		return nil
	}
	q := o.Node(id)
	pref := l.Preference
	if pref == nil {
		pref = P1
	}
	// The tightest need is the node's most stringent client-facing
	// tolerance; a backup serving it can serve everything else the node
	// needs from that parent at worst via augmentation.
	tightest, tightestItem, ok := tightestNeed(q)

	type scored struct {
		id        repository.ID
		pref      float64
		satisfies bool
	}
	var cands []scored
	for _, n := range o.Nodes {
		if n.ID == id || n.Level >= q.Level {
			continue
		}
		avail := 0
		for x, c := range q.Needs {
			if n.CanServe(x, c) {
				avail++
			}
		}
		cands = append(cands, scored{
			id: n.ID,
			pref: pref(PrefInputs{
				DelayMs:    delayMs(o.Net, n.ID, id),
				Dependents: n.NumChildren(),
				Available:  avail,
			}),
			satisfies: !ok || n.CanServe(tightestItem, tightest),
		})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].satisfies != cands[j].satisfies {
			return cands[i].satisfies
		}
		if cands[i].pref != cands[j].pref {
			return cands[i].pref < cands[j].pref
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]repository.ID, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

// tightestNeed returns the node's most stringent needed tolerance and its
// item. ok is false when the node needs nothing.
func tightestNeed(q *repository.Repository) (c coherency.Requirement, item string, ok bool) {
	first := true
	for _, x := range q.NeededItems() {
		need := q.Needs[x]
		if first || need.AtLeastAsStringentAs(c) {
			c, item, first = need, x, false
		}
	}
	return c, item, !first
}

// Rehome re-establishes dependent d's feed for item x through a new
// parent, excluding the ids in dead. Candidates are ranked exactly like
// BackupParents but with live capacity information; the chosen parent is
// augmented (cascading toward the source) when it does not already serve x
// stringently enough. An empty item re-attaches a liaison connection
// instead (no feed is established). It returns the new parent's id.
//
// The caller is responsible for detaching the old feed first (Parents[x]
// is overwritten; a stale Dependents entry on the old parent would break
// edge symmetry).
func (l *LeLA) Rehome(o *Overlay, d *repository.Repository, x string, dead map[repository.ID]bool) (repository.ID, error) {
	c, needed := d.Serving[x]
	if !needed {
		c = d.Needs[x]
	}
	pref := l.Preference
	if pref == nil {
		pref = P1
	}
	type scored struct {
		node *repository.Repository
		pref float64
		can  bool
	}
	gather := func(admit func(*repository.Repository) bool) []scored {
		var cands []scored
		for _, n := range o.Nodes {
			if n.ID == d.ID || dead[n.ID] || !n.HasCapacityFor(d.ID) || !admit(n) {
				continue
			}
			cands = append(cands, scored{
				node: n,
				pref: pref(PrefInputs{
					DelayMs:    delayMs(o.Net, n.ID, d.ID),
					Dependents: n.NumChildren(),
					Available:  boolToInt(n.CanServe(x, c)),
				}),
				can: n.CanServe(x, c),
			})
		}
		return cands
	}
	// First choice: strictly lower build-time levels; when those are
	// saturated, fall back to any node outside d's own subtree. Both
	// passes exclude the subtree — levels go stale as repairs re-wire
	// nodes, and a candidate whose feed chain passes through d would
	// close a cycle. Outside the subtree, no chain can reach d, so the
	// overlay stays acyclic even after cascading augmentation.
	sub := subtreeOf(o, d)
	cands := gather(func(n *repository.Repository) bool { return n.Level < d.Level && !sub[n.ID] })
	if len(cands) == 0 {
		cands = gather(func(n *repository.Repository) bool { return !sub[n.ID] })
	}
	if len(cands) == 0 {
		return repository.NoID, fmt.Errorf(
			"tree: no live parent with capacity for repository %d (item %s)", d.ID, x)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].can != cands[j].can {
			return cands[i].can
		}
		if cands[i].pref != cands[j].pref {
			return cands[i].pref < cands[j].pref
		}
		return cands[i].node.ID < cands[j].node.ID
	})
	parent := cands[0].node
	if x == "" {
		parent.Attach(d.ID)
		return parent.ID, nil
	}
	rng := rand.New(rand.NewSource(l.Seed + 13_000_000 + int64(d.ID)))
	if !parent.CanServe(x, c) {
		if err := augment(o, parent, x, c, rng); err != nil {
			return repository.NoID, err
		}
	}
	parent.AddDependent(x, d.ID)
	d.Parents[x] = parent.ID
	return parent.ID, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// AdoptFeed makes parent serve item x to dependent d at d's current
// stringency, augmenting the parent (cascading toward the source) when
// needed. Unlike Rehome it does not choose the parent — the resilience
// layer uses it to honor a precomputed backup list. It returns an error
// instead of panicking when the parent has no capacity.
//
// sub must be d's current downstream set (Overlay.Subtree(d.ID)), or nil
// to compute it here; callers trying several candidate parents in a row
// should compute it once — the wiring does not change between rejected
// attempts.
func (l *LeLA) AdoptFeed(o *Overlay, parent, d *repository.Repository, x string, sub map[repository.ID]bool) error {
	if !parent.HasCapacityFor(d.ID) {
		return fmt.Errorf("tree: node %d has no capacity for %d", parent.ID, d.ID)
	}
	// Backup lists are ranked against build-time levels, but repairs may
	// since have re-wired nodes across levels (Rehome's subtree
	// fallback). Reject a candidate inside d's own subtree — its feed
	// chain could pass through d, closing a cycle.
	if sub == nil {
		sub = subtreeOf(o, d)
	}
	if sub[parent.ID] {
		return fmt.Errorf("tree: node %d is downstream of %d (cycle risk)", parent.ID, d.ID)
	}
	c, ok := d.Serving[x]
	if !ok {
		c = d.Needs[x]
	}
	if !parent.CanServe(x, c) {
		rng := rand.New(rand.NewSource(l.Seed + 13_000_000 + int64(d.ID)))
		if err := augment(o, parent, x, c, rng); err != nil {
			return err
		}
	}
	parent.AddDependent(x, d.ID)
	d.Parents[x] = parent.ID
	return nil
}

// ChildrenOf lists id's distinct dependents (liaison children included),
// sorted. ParentsOf lists id's distinct parents (liaison included),
// sorted. Both reflect the overlay's current wiring, so repair code can
// call them after every mutation.
func (o *Overlay) ChildrenOf(id repository.ID) []repository.ID {
	return dependentsOf(o, o.Node(id))
}

// Subtree returns id plus every node transitively downstream of it —
// the set a repair must not pick new parents from.
func (o *Overlay) Subtree(id repository.ID) map[repository.ID]bool {
	return subtreeOf(o, o.Node(id))
}

// ParentsOf lists id's distinct parents over all items, sorted.
func (o *Overlay) ParentsOf(id repository.ID) []repository.ID {
	return distinctParents(o.Node(id))
}

// subtreeOf returns d plus every node transitively downstream of it over
// push connections (any item, liaison edges included).
func subtreeOf(o *Overlay, d *repository.Repository) map[repository.ID]bool {
	sub := map[repository.ID]bool{d.ID: true}
	queue := []repository.ID{d.ID}
	for len(queue) > 0 {
		cur := o.Node(queue[0])
		queue = queue[1:]
		for _, n := range o.Nodes {
			if !sub[n.ID] && cur.HasChild(n.ID) {
				sub[n.ID] = true
				queue = append(queue, n.ID)
			}
		}
	}
	return sub
}

// RemoveRepair departs any repository — interior nodes included — by
// cascading re-homing: every dependent's feeds through the departing node
// are re-established via Rehome (augmenting the new parents toward the
// source as needed), liaison children are re-attached, and only then is
// the node detached and marked inert. This is the repair counterpart of
// Overlay.Remove, which accepts leaves only.
//
// On error the overlay may hold a partial repair: already re-homed
// dependents keep their new parents (each individually valid), and the
// departing node keeps the rest. Validate still passes in that state; the
// caller may retry after freeing capacity.
func (l *LeLA) RemoveRepair(o *Overlay, id repository.ID) error {
	if id <= 0 || int(id) >= len(o.Nodes) {
		return fmt.Errorf("tree: unknown repository %d", id)
	}
	q := o.Node(id)
	gone := map[repository.ID]bool{id: true}

	// Detach q from its own parents first: the freed connection slots sit
	// at exactly the levels q's dependents will re-home into.
	for _, n := range o.Nodes {
		if n.ID != id {
			n.DropDependent(id)
		}
	}
	q.Parents = map[string]repository.ID{}
	q.Liaison = repository.NoID

	// Re-home every (dependent, item) feed through q, dependents in id
	// order for determinism.
	for _, depID := range dependentsOf(o, q) {
		d := o.Node(depID)
		items := make([]string, 0, len(d.Parents))
		for x, pid := range d.Parents {
			if pid == id {
				items = append(items, x)
			}
		}
		sort.Strings(items)
		// Detach from q first so capacity checks and edge symmetry see the
		// post-departure state.
		q.DropDependent(depID)
		for _, x := range items {
			delete(d.Parents, x)
			if _, err := l.Rehome(o, d, x, gone); err != nil {
				return fmt.Errorf("tree: removing repository %d: %w", id, err)
			}
		}
		if d.Liaison == id {
			d.Liaison = repository.NoID
			if len(d.Parents) == 0 {
				// A need-less child keeps a liaison connection so it stays
				// augmentable; adopt it at the best live candidate.
				pid, err := l.Rehome(o, d, "", gone)
				if err != nil {
					return fmt.Errorf("tree: removing repository %d: %w", id, err)
				}
				d.Liaison = pid
			}
		}
	}

	// Detach q from its own parents and mark the slot inert, exactly like
	// a leaf departure.
	return o.Remove(id)
}

// dependentsOf lists a node's distinct dependents — including
// liaison-only children, which appear in the connection set but not in
// Dependents — sorted for deterministic iteration.
func dependentsOf(o *Overlay, q *repository.Repository) []repository.ID {
	var out []repository.ID
	for _, n := range o.Nodes {
		if n.ID != q.ID && q.HasChild(n.ID) {
			out = append(out, n.ID)
		}
	}
	return out // o.Nodes is id-ordered, so out already is
}
