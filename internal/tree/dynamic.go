package tree

import (
	"fmt"
	"math/rand"
	"sort"

	"d3t/internal/coherency"
	"d3t/internal/repository"
)

// This file implements dynamic overlay membership (Section 4 of the
// paper): repositories join one at a time — LeLA is inherently
// incremental — and "if a repository's data needs change ... the
// algorithm is reapplied". Tightening and extending needs are handled
// in place via the same cascading augmentation the builder uses; leaf
// departure is supported directly. Re-homing an interior node's
// dependents is the one operation the paper leaves undetailed; Remove
// rejects non-leaves rather than guessing.

// Insert joins one new repository into an existing overlay built by LeLA
// (or any builder that maintains Level fields). The new repository's id
// must be the next endpoint index and the overlay's network must already
// have delay entries for it — netsim topologies are sized at generation,
// so grow the network with room for joiners.
func (l *LeLA) Insert(o *Overlay, q *repository.Repository) error {
	next := repository.ID(len(o.Nodes))
	if q.ID != next {
		return fmt.Errorf("tree: inserting repository %d, want next id %d", q.ID, next)
	}
	if q.ID > repository.ID(o.Net.Repositories) {
		return fmt.Errorf("tree: network has no endpoint for repository %d (capacity %d)",
			q.ID, o.Net.Repositories)
	}
	if q.CoopLimit < 1 {
		return fmt.Errorf("tree: repository %d offers no cooperation (limit %d)", q.ID, q.CoopLimit)
	}
	p := l.PPercent
	if p == 0 {
		p = 5
	}
	pref := l.Preference
	if pref == nil {
		pref = P1
	}
	rng := rand.New(rand.NewSource(l.Seed + int64(q.ID)))

	o.Nodes = append(o.Nodes, q)
	levels := levelsOf(o, int(q.ID))
	if _, err := l.insert(o, levels, q, p, pref, rng); err != nil {
		o.Nodes = o.Nodes[:len(o.Nodes)-1]
		return err
	}
	return nil
}

// levelsOf reconstructs the level structure from node Level fields,
// excluding the node with the given id.
func levelsOf(o *Overlay, exclude int) [][]repository.ID {
	var levels [][]repository.ID
	for _, n := range o.Nodes {
		if int(n.ID) == exclude {
			continue
		}
		for len(levels) <= n.Level {
			levels = append(levels, nil)
		}
		levels[n.Level] = append(levels[n.Level], n.ID)
	}
	for _, lvl := range levels {
		sort.Slice(lvl, func(i, j int) bool { return lvl[i] < lvl[j] })
	}
	return levels
}

// UpdateNeeds reapplies the construction algorithm for a repository whose
// client-derived needs changed (Section 4, third scenario). Three cases
// per item:
//
//   - tightened tolerance: the serving chain toward the source is
//     augmented so Eq. 1 keeps holding;
//   - new item: a feed is established from an existing parent (or the
//     liaison), cascading augmentation to the source;
//   - dropped or loosened item: the repository keeps serving at the old
//     stringency — dependents may rely on it (the paper's repositories
//     "may have to hold data beyond what their own users need").
//
// The overlay remains valid throughout; the update never rewires push
// connections, so cooperation limits cannot be violated.
func (l *LeLA) UpdateNeeds(o *Overlay, id repository.ID, needs map[string]coherency.Requirement) error {
	if id <= 0 || int(id) >= len(o.Nodes) {
		return fmt.Errorf("tree: unknown repository %d", id)
	}
	q := o.Node(id)
	rng := rand.New(rand.NewSource(l.Seed + 7_000_000 + int64(id)))

	items := make([]string, 0, len(needs))
	for x := range needs {
		items = append(items, x)
	}
	sort.Strings(items)
	for _, x := range items {
		c := needs[x]
		if c < 0 {
			return fmt.Errorf("tree: negative tolerance %v for %s", c, x)
		}
		q.Needs[x] = c
		if cur, ok := q.Serving[x]; ok {
			if cur.AtLeastAsStringentAs(c) {
				continue // already maintained stringently enough
			}
			// Tighten (not a raw map write) so the wiring generation moves
			// and any live fan-out plan re-resolves this tolerance.
			q.Tighten(x, c)
			// Tighten the feed chain so every ancestor satisfies Eq. 1.
			if pid, ok := q.Parents[x]; ok {
				parent := o.Node(pid)
				if !parent.CanServe(x, c) {
					if err := augment(o, parent, x, c, rng); err != nil {
						return err
					}
				}
				continue
			}
		}
		// New item (or held item with no feed): establish a feed through
		// the existing topology.
		q.Tighten(x, c)
		if _, ok := q.Parents[x]; ok {
			continue
		}
		// augment establishes exactly what a new item requires: a parent
		// chain feeding x at tolerance c.
		if err := augment(o, q, x, c, rng); err != nil {
			return err
		}
	}
	// Drop needs that disappeared; serving and feeds stay for dependents.
	for x := range q.Needs {
		if _, still := needs[x]; !still {
			delete(q.Needs, x)
		}
	}
	return nil
}

// Remove departs a leaf repository (one with no dependents): its parents
// drop their push connections to it. Interior nodes are rejected — the
// paper does not specify dependent re-homing, and guessing here could
// silently violate Eq. 1; use LeLA.RemoveRepair (repair.go) for interior
// departure with cascading re-homing, or re-home the named dependents
// manually before retrying.
func (o *Overlay) Remove(id repository.ID) error {
	if id <= 0 || int(id) >= len(o.Nodes) {
		return fmt.Errorf("tree: unknown repository %d", id)
	}
	q := o.Node(id)
	if q.NumChildren() > 0 {
		// Dependents are named in the canonical repo<id> form
		// (repository.ID.String), like every user-visible report.
		return fmt.Errorf("tree: %v still serves dependents %v; only leaves can depart (use RemoveRepair, or re-home them first)",
			id, dependentsOf(o, q))
	}
	for _, n := range o.Nodes {
		if n == nil || n.ID == id {
			continue
		}
		n.DropDependent(id)
	}
	// Keep the slot (ids are positional) but mark the node inert.
	q.Needs = map[string]coherency.Requirement{}
	q.Serving = map[string]coherency.Requirement{}
	q.Parents = map[string]repository.ID{}
	q.Liaison = repository.NoID
	return nil
}
