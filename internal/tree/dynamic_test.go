package tree

import (
	"fmt"
	"testing"
	"testing/quick"

	"d3t/internal/coherency"
	"d3t/internal/netsim"
	"d3t/internal/repository"
)

// dynFixture builds an overlay with spare endpoint capacity for joiners.
func dynFixture(t *testing.T, initial, capacity, items, coop int, seed int64) (*Overlay, *LeLA) {
	t.Helper()
	net := netsim.MustGenerate(netsim.Config{Repositories: capacity, Routers: 3 * capacity, Seed: seed})
	repos := make([]*repository.Repository, initial)
	for i := range repos {
		repos[i] = repository.New(repository.ID(i+1), coop)
	}
	catalogue := make([]string, items)
	for i := range catalogue {
		catalogue[i] = fmt.Sprintf("ITEM%03d", i)
	}
	repository.AssignNeeds(repos, repository.Workload{
		Items: catalogue, SubscribeProb: 0.5, StringentFrac: 0.5, Seed: seed + 1,
	})
	l := &LeLA{Seed: seed}
	o, err := l.Build(net, repos, coop)
	if err != nil {
		t.Fatal(err)
	}
	return o, l
}

func TestInsertJoinsNewRepository(t *testing.T) {
	o, l := dynFixture(t, 10, 15, 12, 3, 1)
	for j := 0; j < 5; j++ {
		q := repository.New(repository.ID(11+j), 3)
		q.Needs["ITEM000"], q.Serving["ITEM000"] = 0.05, 0.05
		q.Needs["ITEM005"], q.Serving["ITEM005"] = 0.3, 0.3
		if err := l.Insert(o, q); err != nil {
			t.Fatalf("insert %d: %v", j, err)
		}
		if err := o.Validate(); err != nil {
			t.Fatalf("overlay invalid after insert %d: %v", j, err)
		}
	}
	if len(o.Nodes) != 16 {
		t.Errorf("overlay has %d nodes, want 16", len(o.Nodes))
	}
}

func TestInsertRejectsBadJoins(t *testing.T) {
	o, l := dynFixture(t, 10, 12, 8, 3, 2)
	if err := l.Insert(o, repository.New(99, 3)); err == nil {
		t.Error("non-sequential id accepted")
	}
	if err := l.Insert(o, repository.New(11, 0)); err == nil {
		t.Error("zero cooperation accepted")
	}
	// Fill the capacity, then one more must fail on network size.
	for id := 11; id <= 12; id++ {
		q := repository.New(repository.ID(id), 3)
		q.Needs["ITEM000"], q.Serving["ITEM000"] = 0.5, 0.5
		if err := l.Insert(o, q); err != nil {
			t.Fatal(err)
		}
	}
	q := repository.New(13, 3)
	if err := l.Insert(o, q); err == nil {
		t.Error("insert beyond network capacity accepted")
	}
	if len(o.Nodes) != 13 {
		t.Errorf("failed insert left %d nodes, want 13 (rollback)", len(o.Nodes))
	}
}

func TestUpdateNeedsTightens(t *testing.T) {
	o, l := dynFixture(t, 12, 12, 10, 3, 3)
	q := o.Node(5)
	items := q.NeededItems()
	if len(items) == 0 {
		t.Skip("repository 5 subscribed to nothing under this seed")
	}
	x := items[0]
	newNeeds := map[string]coherency.Requirement{x: q.Needs[x] / 10}
	if err := l.UpdateNeeds(o, 5, newNeeds); err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("overlay invalid after tightening: %v", err)
	}
	if got := q.Needs[x]; got != newNeeds[x] {
		t.Errorf("need not updated: %v", got)
	}
	// The whole chain to the source must now serve at the new stringency.
	cur := q
	for !cur.IsSource() {
		c, ok := cur.ServingTolerance(x)
		if !ok || !c.AtLeastAsStringentAs(newNeeds[x]) {
			t.Fatalf("node %d serves %s at %v, need %v", cur.ID, x, c, newNeeds[x])
		}
		cur = o.Node(cur.Parents[x])
	}
}

func TestUpdateNeedsAddsItem(t *testing.T) {
	o, l := dynFixture(t, 12, 12, 10, 3, 4)
	q := o.Node(7)
	// Pick an item q does not hold.
	var fresh string
	for i := 0; i < 10; i++ {
		x := fmt.Sprintf("ITEM%03d", i)
		if _, ok := q.Serving[x]; !ok {
			fresh = x
			break
		}
	}
	if fresh == "" {
		t.Skip("repository 7 already holds everything under this seed")
	}
	needs := map[string]coherency.Requirement{fresh: 0.02}
	for x, c := range q.Needs {
		needs[x] = c
	}
	if err := l.UpdateNeeds(o, 7, needs); err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("overlay invalid after adding %s: %v", fresh, err)
	}
	if _, ok := q.Parents[fresh]; !ok {
		t.Errorf("no feed established for %s", fresh)
	}
}

func TestUpdateNeedsDropKeepsServing(t *testing.T) {
	o, l := dynFixture(t, 12, 12, 10, 3, 5)
	q := o.Node(3)
	items := q.NeededItems()
	if len(items) < 2 {
		t.Skip("repository 3 too sparsely subscribed under this seed")
	}
	dropped := items[0]
	needs := map[string]coherency.Requirement{}
	for _, x := range items[1:] {
		needs[x] = q.Needs[x]
	}
	if err := l.UpdateNeeds(o, 3, needs); err != nil {
		t.Fatal(err)
	}
	if _, still := q.Needs[dropped]; still {
		t.Error("dropped need still present")
	}
	if _, serves := q.Serving[dropped]; !serves {
		t.Error("serving entry removed — dependents may rely on it")
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateNeedsErrors(t *testing.T) {
	o, l := dynFixture(t, 6, 6, 8, 3, 6)
	if err := l.UpdateNeeds(o, 99, nil); err == nil {
		t.Error("unknown repository accepted")
	}
	if err := l.UpdateNeeds(o, 1, map[string]coherency.Requirement{"X": -1}); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestRemoveLeaf(t *testing.T) {
	o, _ := dynFixture(t, 12, 12, 10, 3, 7)
	// Find a leaf.
	var leaf repository.ID
	for _, n := range o.Repos() {
		if n.NumChildren() == 0 {
			leaf = n.ID
			break
		}
	}
	if leaf == 0 {
		t.Fatal("no leaf in a 12-node overlay?")
	}
	if err := o.Remove(leaf); err != nil {
		t.Fatal(err)
	}
	for _, n := range o.Nodes {
		if n.HasChild(leaf) {
			t.Errorf("node %d still lists departed %d as a child", n.ID, leaf)
		}
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("overlay invalid after leaf departure: %v", err)
	}
}

func TestRemoveRejectsInteriorAndUnknown(t *testing.T) {
	o, _ := dynFixture(t, 12, 12, 10, 3, 8)
	var interior repository.ID
	for _, n := range o.Repos() {
		if n.NumChildren() > 0 {
			interior = n.ID
			break
		}
	}
	if interior != 0 {
		if err := o.Remove(interior); err == nil {
			t.Error("interior departure accepted")
		}
	}
	if err := o.Remove(99); err == nil {
		t.Error("unknown repository departure accepted")
	}
}

// TestDynamicChurnProperty: joins interleaved with tightenings keep every
// overlay invariant intact.
func TestDynamicChurnProperty(t *testing.T) {
	f := func(seed int64) bool {
		net := netsim.MustGenerate(netsim.Config{Repositories: 20, Routers: 60, Seed: seed})
		repos := make([]*repository.Repository, 10)
		for i := range repos {
			repos[i] = repository.New(repository.ID(i+1), 3)
		}
		catalogue := make([]string, 8)
		for i := range catalogue {
			catalogue[i] = fmt.Sprintf("ITEM%03d", i)
		}
		repository.AssignNeeds(repos, repository.Workload{
			Items: catalogue, SubscribeProb: 0.5, StringentFrac: 0.5, Seed: seed,
		})
		l := &LeLA{Seed: seed}
		o, err := l.Build(net, repos, 3)
		if err != nil {
			return false
		}
		for j := 0; j < 6; j++ {
			q := repository.New(repository.ID(11+j), 3)
			item := catalogue[j%len(catalogue)]
			q.Needs[item], q.Serving[item] = coherency.Requirement(0.05+0.1*float64(j)), coherency.Requirement(0.05+0.1*float64(j))
			if err := l.Insert(o, q); err != nil {
				return false
			}
			target := repository.ID(1 + j%10)
			tn := o.Node(target)
			upd := map[string]coherency.Requirement{}
			for x, c := range tn.Needs {
				upd[x] = c / 2
			}
			upd[catalogue[(j+3)%len(catalogue)]] = 0.03
			if err := l.UpdateNeeds(o, target, upd); err != nil {
				return false
			}
			if o.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
