package tree

import (
	"fmt"
	"math/rand"

	"d3t/internal/netsim"
	"d3t/internal/repository"
)

// The alternative builders below exist for the paper's secondary claim
// (Section 6.3.3): once the degree of cooperation is chosen correctly, the
// exact tree construction algorithm has only minimal impact on fidelity.
// They wire each entering repository to a single already-placed parent and
// reuse LeLA's cascading augmentation for coverage.

// RandomBuilder attaches each repository to a uniformly random
// already-placed node with spare capacity.
type RandomBuilder struct {
	Seed int64
}

// Name implements Builder.
func (b *RandomBuilder) Name() string { return "random" }

// Build implements Builder.
func (b *RandomBuilder) Build(net *netsim.Network, repos []*repository.Repository, sourceCoopLimit int) (*Overlay, error) {
	rng := rand.New(rand.NewSource(b.Seed))
	return buildSingleParent(net, repos, sourceCoopLimit, rng,
		func(q *repository.Repository, placed []*repository.Repository) *repository.Repository {
			var avail []*repository.Repository
			for _, p := range placed {
				if p.HasCapacityFor(q.ID) {
					avail = append(avail, p)
				}
			}
			if len(avail) == 0 {
				return nil
			}
			return avail[rng.Intn(len(avail))]
		})
}

// GreedyBuilder attaches each repository to the already-placed node with
// spare capacity that is physically closest (smallest communication
// delay), a classic proximity heuristic.
type GreedyBuilder struct {
	Seed int64
}

// Name implements Builder.
func (b *GreedyBuilder) Name() string { return "greedy-closest" }

// Build implements Builder.
func (b *GreedyBuilder) Build(net *netsim.Network, repos []*repository.Repository, sourceCoopLimit int) (*Overlay, error) {
	rng := rand.New(rand.NewSource(b.Seed))
	return buildSingleParent(net, repos, sourceCoopLimit, rng,
		func(q *repository.Repository, placed []*repository.Repository) *repository.Repository {
			var best *repository.Repository
			for _, p := range placed {
				if !p.HasCapacityFor(q.ID) {
					continue
				}
				if best == nil || net.Delay[p.ID][q.ID] < net.Delay[best.ID][q.ID] {
					best = p
				}
			}
			return best
		})
}

// DirectBuilder wires every repository directly to the source — the
// no-cooperation configuration of Section 6.3.2 (Figures 5 and 6). The
// source's cooperation limit is raised to fit everyone.
type DirectBuilder struct{}

// Name implements Builder.
func (b *DirectBuilder) Name() string { return "direct" }

// Build implements Builder.
func (b *DirectBuilder) Build(net *netsim.Network, repos []*repository.Repository, sourceCoopLimit int) (*Overlay, error) {
	if sourceCoopLimit < len(repos) {
		sourceCoopLimit = len(repos)
	}
	o, err := newOverlay(net, repos, sourceCoopLimit)
	if err != nil {
		return nil, err
	}
	src := o.Source()
	for _, q := range repos {
		for _, x := range q.NeededItems() {
			src.AddDependent(x, q.ID)
			q.Parents[x] = src.ID
		}
		q.Level = 1
	}
	return o, nil
}

// buildSingleParent runs the shared insertion loop for the random and
// greedy builders: pick one parent per repository, route every needed item
// through it, augmenting as required.
func buildSingleParent(net *netsim.Network, repos []*repository.Repository, sourceCoopLimit int,
	rng *rand.Rand, pick func(q *repository.Repository, placed []*repository.Repository) *repository.Repository) (*Overlay, error) {

	o, err := newOverlay(net, repos, sourceCoopLimit)
	if err != nil {
		return nil, err
	}
	placed := []*repository.Repository{o.Source()}
	for _, q := range repos {
		parent := pick(q, placed)
		if parent == nil {
			return nil, fmt.Errorf("tree: no capacity anywhere for repository %d", q.ID)
		}
		q.Level = parent.Level + 1
		needs := q.NeededItems()
		for _, x := range needs {
			c := q.Needs[x]
			if !parent.CanServe(x, c) {
				if err := augment(o, parent, x, c, rng); err != nil {
					return nil, err
				}
			}
			parent.AddDependent(x, q.ID)
			q.Parents[x] = parent.ID
		}
		if len(needs) == 0 {
			parent.Attach(q.ID)
			q.Liaison = parent.ID
		}
		placed = append(placed, q)
	}
	return o, nil
}
