package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := New()
	var got []Time
	for _, at := range []Time{30, 10, 20, 10, 5} {
		at := at
		e.At(at, func(now Time) {
			if now != at {
				t.Errorf("event scheduled at %v ran at %v", at, now)
			}
			got = append(got, now)
		})
	}
	end := e.Run()
	want := []Time{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d ran at %v, want %v", i, got[i], want[i])
		}
	}
	if end != 30 {
		t.Errorf("Run returned %v, want 30", end)
	}
}

func TestEngineBreaksTiesByInsertionOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		e.At(100, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie at index %d broken as %d; ties must run in insertion order", i, v)
		}
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := New()
	var fired Time
	e.At(10, func(now Time) {
		e.After(5, func(now Time) { fired = now })
	})
	e.Run()
	if fired != 15 {
		t.Errorf("After(5) from t=10 fired at %v, want 15", fired)
	}
}

func TestEnginePanicsOnPastScheduling(t *testing.T) {
	e := New()
	e.At(10, func(now Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func(Time) {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := New()
	ran := 0
	for _, at := range []Time{10, 20, 30, 40} {
		e.At(at, func(Time) { ran++ })
	}
	n := e.RunUntil(25)
	if n != 2 || ran != 2 {
		t.Fatalf("RunUntil(25) executed %d events (counter %d), want 2", n, ran)
	}
	if e.Now() != 25 {
		t.Errorf("clock at %v after RunUntil(25)", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("%d events pending, want 2", e.Pending())
	}
	e.Run()
	if ran != 4 {
		t.Errorf("after Run, %d events ran, want 4", ran)
	}
}

func TestEngineStepOnEmptyQueue(t *testing.T) {
	e := New()
	if e.Step() {
		t.Error("Step on empty queue reported work")
	}
}

// TestEngineOrderProperty: for any set of timestamps, execution order is a
// non-decreasing sequence of times.
func TestEngineOrderProperty(t *testing.T) {
	f := func(stamps []uint16) bool {
		e := New()
		var got []Time
		for _, s := range stamps {
			at := Time(s)
			e.At(at, func(now Time) { got = append(got, now) })
		}
		e.Run()
		if len(got) != len(stamps) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStationSerializesWork(t *testing.T) {
	var s Station
	d1 := s.Acquire(0, 10)
	d2 := s.Acquire(0, 10)
	d3 := s.Acquire(5, 10)
	if d1 != 10 || d2 != 20 || d3 != 30 {
		t.Errorf("completion times %v,%v,%v; want 10,20,30", d1, d2, d3)
	}
	if got := s.Backlog(5); got != 25 {
		t.Errorf("Backlog(5)=%v, want 25", got)
	}
	if got := s.Backlog(100); got != 0 {
		t.Errorf("Backlog(100)=%v, want 0", got)
	}
}

func TestStationIdleGap(t *testing.T) {
	var s Station
	s.Acquire(0, 10)
	// Work arriving after the backlog drains starts immediately.
	if done := s.Acquire(50, 5); done != 55 {
		t.Errorf("job after idle gap completed at %v, want 55", done)
	}
	if s.Jobs != 2 || s.Busy != 15 {
		t.Errorf("stats Jobs=%d Busy=%v, want 2, 15", s.Jobs, s.Busy)
	}
}

func TestStationUtilization(t *testing.T) {
	var s Station
	s.Acquire(0, 25)
	if u := s.Utilization(100); u != 0.25 {
		t.Errorf("utilization %v, want 0.25", u)
	}
	if u := s.Utilization(0); u != 0 {
		t.Errorf("utilization with zero horizon %v, want 0", u)
	}
	// Utilization is clamped to 1 even when the backlog exceeds the horizon.
	s.Acquire(0, 1000)
	if u := s.Utilization(100); u != 1 {
		t.Errorf("overloaded utilization %v, want 1", u)
	}
}

// TestStationMonotoneProperty: completion times never decrease, no matter
// the arrival pattern — a station is FIFO.
func TestStationMonotoneProperty(t *testing.T) {
	f := func(arrivals []uint8, costs []uint8) bool {
		var s Station
		n := len(arrivals)
		if len(costs) < n {
			n = len(costs)
		}
		var prev Time = -1
		var now Time
		for i := 0; i < n; i++ {
			now += Time(arrivals[i]) // arrivals move forward in time
			done := s.Acquire(now, Time(costs[i]))
			if done < prev || done < now {
				return false
			}
			prev = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParetoBounds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const min, mean = 2.0, 15.0
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		d := Pareto(r, min, mean)
		if d < min {
			t.Fatalf("Pareto draw %v below minimum %v", d, min)
		}
		if d > 20*mean {
			t.Fatalf("Pareto draw %v above cap %v", d, 20*mean)
		}
		sum += d
	}
	got := sum / n
	// With alpha = mean/(mean-min) ~= 1.15, much of the nominal mean lives
	// in the far tail, so the 20x cap pulls the achievable mean down to
	// E[min(X,cap)] ~= 9.0 for (2, 15). Assert around that analytic value.
	if got < 0.5*mean || got > 0.85*mean {
		t.Errorf("empirical capped mean %v outside expected band [%v, %v]", got, 0.5*mean, 0.85*mean)
	}
}

func TestParetoDegenerate(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if d := Pareto(r, 5, 5); d != 5 {
		t.Errorf("mean<=min should return min, got %v", d)
	}
	if d := Pareto(r, 5, 3); d != 5 {
		t.Errorf("mean<min should return min, got %v", d)
	}
}

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func BenchmarkEngine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		var count int
		var schedule func(now Time)
		schedule = func(now Time) {
			count++
			if count < 1000 {
				e.After(1, schedule)
			}
		}
		e.At(0, schedule)
		e.Run()
	}
}
