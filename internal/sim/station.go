package sim

// Station models a processing resource that serves work strictly serially,
// such as a repository CPU deciding which dependents need an update. Work
// arriving while the station is busy queues behind the in-progress work;
// this queueing is the computational-delay mechanism from Section 3 of the
// paper: a node with too many dependents becomes its own bottleneck, which
// produces the rising arm of the U-shaped fidelity curve (Figure 3).
type Station struct {
	busyUntil Time

	// Busy accumulates total busy time, for utilization reporting.
	Busy Time
	// Jobs counts scheduled work items.
	Jobs uint64
}

// Acquire reserves the station for cost units of work starting no earlier
// than now, and returns the time at which the work completes. If the
// station is idle the work starts immediately; otherwise it starts when the
// current backlog drains.
func (s *Station) Acquire(now Time, cost Time) (done Time) {
	start := now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	done = start + cost
	s.busyUntil = done
	s.Busy += cost
	s.Jobs++
	return done
}

// Backlog reports how much queued work remains at time now.
func (s *Station) Backlog(now Time) Time {
	if s.busyUntil <= now {
		return 0
	}
	return s.busyUntil - now
}

// Utilization reports the fraction of [0, horizon] the station was busy.
// It returns 0 for a non-positive horizon.
func (s *Station) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	u := float64(s.Busy) / float64(horizon)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset returns the station to the idle state, keeping no statistics.
func (s *Station) Reset() {
	*s = Station{}
}
