package sim

import (
	"math"
	"math/rand"
)

// NewRand returns a deterministic random source for the given seed.
// Centralizing construction keeps every package in the repository on the
// same generator and makes "same seed, same run" a project-wide guarantee.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Pareto draws from a bounded Pareto heavy-tailed distribution with the
// given minimum and mean, following the delay model of Section 6.1:
// delay = min / u^(1/alpha) with alpha = mean/(mean-min), which gives the
// unbounded distribution expectation E[delay] = mean. The paper uses
// mean 15 ms and minimum 2 ms for link delays.
func Pareto(r *rand.Rand, min, mean float64) float64 {
	if mean <= min {
		return min
	}
	alpha := mean / (mean - min)
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	d := min / math.Pow(u, 1/alpha)
	// Cap the tail at 20x the mean so a single freak link cannot dominate
	// an entire topology; the clipped mass is tiny and the paper's average
	// 20-30 ms node-node delay is preserved.
	if cap := 20 * mean; d > cap {
		d = cap
	}
	return d
}
