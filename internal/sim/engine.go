// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate on which the dissemination experiments run:
// trace ticks, update forwarding, and delivery are all events ordered on a
// virtual clock. Determinism matters because the paper's figures are
// parameter sweeps; for a fixed seed, two runs of the same configuration
// must produce identical fidelity numbers. The engine therefore breaks
// timestamp ties by insertion sequence, never by map iteration or heap
// internals.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual simulation time in microseconds. Microsecond resolution
// comfortably covers the paper's parameter space (delays are milliseconds,
// traces span hours) without floating-point drift in the event heap.
type Time int64

// Common durations expressed in simulation time units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Milliseconds converts a floating-point millisecond count to Time,
// rounding to the nearest microsecond.
func Milliseconds(ms float64) Time {
	return Time(ms*1000 + 0.5)
}

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Ms reports t as floating-point milliseconds.
func (t Time) Ms() float64 { return float64(t) / float64(Millisecond) }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Event is a unit of work scheduled on the engine's virtual clock.
type Event struct {
	// At is the virtual time at which Fn runs.
	At Time
	// Fn is the event body. It may schedule further events.
	Fn func(now Time)

	seq uint64 // insertion order, breaks timestamp ties deterministically
	idx int    // heap index
}

// eventQueue implements heap.Interface ordered by (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. The zero value is
// ready to use. Engines are not safe for concurrent use; the experiments
// achieve parallelism by running independent engines per goroutine.
type Engine struct {
	queue   eventQueue
	now     Time
	nextSeq uint64
	events  uint64 // total events executed
}

// New returns an empty engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time. During event execution it equals
// the running event's timestamp.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.events }

// Pending reports how many events are scheduled but not yet executed.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) panics: it indicates a logic error in a delay computation and
// silently clamping it would corrupt fidelity accounting.
func (e *Engine) At(t Time, fn func(now Time)) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{At: t, Fn: fn, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func(now Time)) {
	e.At(e.now+d, fn)
}

// Step executes the single earliest pending event and reports whether one
// was available.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.At
	e.events++
	ev.Fn(ev.At)
	return true
}

// Run executes events until the queue drains and returns the final clock
// value.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, leaves later events
// queued, and advances the clock to exactly deadline. It returns the number
// of events executed.
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.events
	for len(e.queue) > 0 && e.queue[0].At <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.events - start
}
