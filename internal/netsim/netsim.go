// Package netsim models the physical network underlying the repository
// overlay, following Section 6.1 of the paper: a randomly generated graph
// of routers and repositories with heavy-tailed (Pareto) link delays, from
// which node-to-node communication delays are derived via shortest paths.
//
// The paper computes routing tables with Floyd-Warshall; this package
// provides that algorithm verbatim for paper fidelity plus an equivalent
// multi-source Dijkstra that scales to the 2100-node topologies of the
// scalability experiment (Floyd-Warshall is Theta(V^3); Dijkstra from the
// ~100-300 overlay endpoints is far cheaper and provably produces the same
// distances, which the tests assert).
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"d3t/internal/sim"
)

// Config describes a random physical topology.
type Config struct {
	// Repositories is the number of repository endpoints (the paper's base
	// case uses 100).
	Repositories int
	// Routers is the number of interior router nodes (base case 600, for
	// 700 nodes total with the single source).
	Routers int
	// ExtraEdges is the number of random shortcut edges added to the
	// router spanning tree, as a multiple of the router count. Higher
	// values shorten paths. Default 1.0.
	ExtraEdges float64
	// LinkDelayMinMs and LinkDelayMeanMs parameterize the Pareto link
	// delay distribution (paper: 2 ms minimum, 15 ms mean).
	LinkDelayMinMs  float64
	LinkDelayMeanMs float64
	// Seed makes generation deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Repositories <= 0 {
		c.Repositories = 100
	}
	if c.Routers <= 0 {
		c.Routers = 600
	}
	if c.ExtraEdges == 0 {
		c.ExtraEdges = 1.0
	}
	if c.LinkDelayMinMs == 0 {
		c.LinkDelayMinMs = 2
	}
	if c.LinkDelayMeanMs == 0 {
		c.LinkDelayMeanMs = 15
	}
	return c
}

// Network holds the endpoint-to-endpoint delay structure of a generated
// topology. Endpoint 0 is the source; endpoints 1..Repositories are the
// repositories. Delay and Hops are symmetric (Repositories+1)^2 matrices
// over endpoints, derived from shortest-delay paths through the routers.
type Network struct {
	// Repositories is the repository count; the endpoint count is one more.
	Repositories int
	// Delay[i][j] is the shortest-path communication delay between
	// endpoints i and j.
	Delay [][]sim.Time
	// Hops[i][j] is the link count along that shortest-delay path.
	Hops [][]int
}

// Endpoints returns the number of overlay endpoints (source + repositories).
func (n *Network) Endpoints() int { return n.Repositories + 1 }

// AvgDelay returns the mean endpoint-to-endpoint delay over all distinct
// pairs. This is the "average communication delay" input to the controlled
// cooperation formula (Eq. 2).
func (n *Network) AvgDelay() sim.Time {
	var sum sim.Time
	var pairs int64
	for i := 0; i < n.Endpoints(); i++ {
		for j := i + 1; j < n.Endpoints(); j++ {
			sum += n.Delay[i][j]
			pairs++
		}
	}
	if pairs == 0 {
		return 0
	}
	return sim.Time(int64(sum) / pairs)
}

// AvgHops returns the mean hop count over all distinct endpoint pairs.
func (n *Network) AvgHops() float64 {
	var sum, pairs int
	for i := 0; i < n.Endpoints(); i++ {
		for j := i + 1; j < n.Endpoints(); j++ {
			sum += n.Hops[i][j]
			pairs++
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(sum) / float64(pairs)
}

// Uniform builds a degenerate network where every endpoint pair is exactly
// delay apart in one hop. The no-cooperation delay sweeps (Figures 5, 6,
// 7b, 7c) use uniform networks so the x-axis is the exact delay value.
func Uniform(repositories int, delay sim.Time) *Network {
	n := &Network{Repositories: repositories}
	e := n.Endpoints()
	n.Delay = make([][]sim.Time, e)
	n.Hops = make([][]int, e)
	for i := 0; i < e; i++ {
		n.Delay[i] = make([]sim.Time, e)
		n.Hops[i] = make([]int, e)
		for j := 0; j < e; j++ {
			if i != j {
				n.Delay[i][j] = delay
				n.Hops[i][j] = 1
			}
		}
	}
	return n
}

// graph is the raw link-level topology prior to shortest-path reduction.
type graph struct {
	n   int
	adj [][]edge
}

type edge struct {
	to    int
	delay sim.Time
}

func (g *graph) addEdge(a, b int, d sim.Time) {
	g.adj[a] = append(g.adj[a], edge{b, d})
	g.adj[b] = append(g.adj[b], edge{a, d})
}

// Generate builds a random topology per the config: a connected random
// spanning tree over the routers, extra shortcut edges, and each endpoint
// (source and repositories) attached to a random router. Link delays are
// Pareto(min, mean) draws. The endpoint delay/hop matrices are computed by
// Dijkstra from every endpoint.
func Generate(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if cfg.Routers < 2 {
		return nil, fmt.Errorf("netsim: need at least 2 routers, got %d", cfg.Routers)
	}
	if cfg.LinkDelayMinMs <= 0 || cfg.LinkDelayMeanMs < cfg.LinkDelayMinMs {
		return nil, fmt.Errorf("netsim: bad link delay parameters min=%v mean=%v",
			cfg.LinkDelayMinMs, cfg.LinkDelayMeanMs)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	endpoints := cfg.Repositories + 1
	total := cfg.Routers + endpoints
	g := &graph{n: total, adj: make([][]edge, total)}
	linkDelay := func() sim.Time {
		return sim.Milliseconds(sim.Pareto(r, cfg.LinkDelayMinMs, cfg.LinkDelayMeanMs))
	}

	// Router core: random spanning tree (guarantees connectivity) plus
	// shortcut edges. Router node ids start after the endpoints.
	router := func(i int) int { return endpoints + i }
	for i := 1; i < cfg.Routers; i++ {
		g.addEdge(router(i), router(r.Intn(i)), linkDelay())
	}
	for e := 0; e < int(cfg.ExtraEdges*float64(cfg.Routers)); e++ {
		a, b := r.Intn(cfg.Routers), r.Intn(cfg.Routers)
		if a != b {
			g.addEdge(router(a), router(b), linkDelay())
		}
	}
	// Attach each endpoint to a random router by an access link.
	for ep := 0; ep < endpoints; ep++ {
		g.addEdge(ep, router(r.Intn(cfg.Routers)), linkDelay())
	}

	n := &Network{Repositories: cfg.Repositories}
	n.Delay = make([][]sim.Time, endpoints)
	n.Hops = make([][]int, endpoints)
	for ep := 0; ep < endpoints; ep++ {
		dist, hops := g.dijkstra(ep)
		n.Delay[ep] = dist[:endpoints]
		n.Hops[ep] = hops[:endpoints]
	}
	return n, nil
}

// MustGenerate is Generate for configurations known statically to be valid.
func MustGenerate(cfg Config) *Network {
	n, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

const inf = sim.Time(1) << 60

// dijkstra computes single-source shortest delays and the hop counts along
// the chosen shortest paths.
func (g *graph) dijkstra(src int) (dist []sim.Time, hops []int) {
	dist = make([]sim.Time, g.n)
	hops = make([]int, g.n)
	done := make([]bool, g.n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	pq := &nodeHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, e := range g.adj[it.node] {
			nd := dist[it.node] + e.delay
			if nd < dist[e.to] {
				dist[e.to] = nd
				hops[e.to] = hops[it.node] + 1
				heap.Push(pq, nodeItem{node: e.to, dist: nd})
			}
		}
	}
	return dist, hops
}

type nodeItem struct {
	node int
	dist sim.Time
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() (x any)      { old := *h; n := len(old); x = old[n-1]; *h = old[:n-1]; return }
