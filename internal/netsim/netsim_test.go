package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"d3t/internal/sim"
)

func TestGenerateBasicProperties(t *testing.T) {
	n := MustGenerate(Config{Repositories: 20, Routers: 60, Seed: 1})
	e := n.Endpoints()
	if e != 21 {
		t.Fatalf("endpoints = %d, want 21", e)
	}
	for i := 0; i < e; i++ {
		if n.Delay[i][i] != 0 {
			t.Errorf("self delay [%d][%d] = %v, want 0", i, i, n.Delay[i][i])
		}
		for j := 0; j < e; j++ {
			if n.Delay[i][j] != n.Delay[j][i] {
				t.Errorf("asymmetric delay [%d][%d]=%v [%d][%d]=%v",
					i, j, n.Delay[i][j], j, i, n.Delay[j][i])
			}
			if i != j {
				if n.Delay[i][j] <= 0 || n.Delay[i][j] >= inf {
					t.Errorf("unreachable or non-positive delay [%d][%d] = %v", i, j, n.Delay[i][j])
				}
				// Every endpoint-endpoint path crosses at least the two
				// access links.
				if n.Hops[i][j] < 2 {
					t.Errorf("hops[%d][%d] = %d, want >= 2", i, j, n.Hops[i][j])
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(Config{Repositories: 10, Routers: 30, Seed: 9})
	b := MustGenerate(Config{Repositories: 10, Routers: 30, Seed: 9})
	for i := range a.Delay {
		for j := range a.Delay[i] {
			if a.Delay[i][j] != b.Delay[i][j] {
				t.Fatal("same seed produced different networks")
			}
		}
	}
}

func TestGeneratePaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale topology in -short mode")
	}
	// The paper's base case: 1 source + 100 repositories + 600 routers.
	// It reports ~10 hops and 20-30 ms average node-node delay.
	n := MustGenerate(Config{Repositories: 100, Routers: 600, Seed: 42})
	hops := n.AvgHops()
	if hops < 4 || hops > 18 {
		t.Errorf("average hops %.1f outside plausible band [4,18]", hops)
	}
	avg := n.AvgDelay()
	if avg < 10*sim.Millisecond || avg > 60*sim.Millisecond {
		t.Errorf("average endpoint delay %v outside [10ms,60ms]", avg)
	}
	t.Logf("paper-scale network: avg hops %.1f, avg delay %v", hops, avg)
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Routers: 1, Repositories: 5}); err == nil {
		t.Error("single-router config accepted")
	}
	if _, err := Generate(Config{Routers: 10, Repositories: 5, LinkDelayMinMs: 10, LinkDelayMeanMs: 5}); err == nil {
		t.Error("mean<min delay config accepted")
	}
}

func TestUniform(t *testing.T) {
	n := Uniform(5, 10*sim.Millisecond)
	if n.Endpoints() != 6 {
		t.Fatalf("endpoints = %d, want 6", n.Endpoints())
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := 10 * sim.Millisecond
			wantHops := 1
			if i == j {
				want, wantHops = 0, 0
			}
			if n.Delay[i][j] != want || n.Hops[i][j] != wantHops {
				t.Errorf("uniform [%d][%d] = %v/%d hops, want %v/%d",
					i, j, n.Delay[i][j], n.Hops[i][j], want, wantHops)
			}
		}
	}
	if n.AvgDelay() != 10*sim.Millisecond {
		t.Errorf("AvgDelay = %v, want 10ms", n.AvgDelay())
	}
}

// TestDijkstraMatchesFloydWarshall checks the two shortest-path
// implementations agree on random graphs — Floyd-Warshall is the
// paper-faithful oracle.
func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(25)
		g := &graph{n: n, adj: make([][]edge, n)}
		for i := 1; i < n; i++ {
			g.addEdge(i, r.Intn(i), sim.Time(1+r.Intn(1000)))
		}
		for e := 0; e < n; e++ {
			a, b := r.Intn(n), r.Intn(n)
			if a != b {
				g.addEdge(a, b, sim.Time(1+r.Intn(1000)))
			}
		}
		fw := FloydWarshall(g.adjacencyMatrix())
		for src := 0; src < n; src++ {
			dist, _ := g.dijkstra(src)
			for j := 0; j < n; j++ {
				if dist[j] != fw[src][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFloydWarshallUnreachable(t *testing.T) {
	// Two disconnected components.
	adj := [][]sim.Time{
		{-1, 5, -1},
		{5, -1, -1},
		{-1, -1, -1},
	}
	d := FloydWarshall(adj)
	if d[0][1] != 5 || d[1][0] != 5 {
		t.Errorf("connected pair distance %v/%v, want 5/5", d[0][1], d[1][0])
	}
	if d[0][2] != -1 || d[2][0] != -1 {
		t.Errorf("disconnected pair distance %v/%v, want -1/-1", d[0][2], d[2][0])
	}
	if d[2][2] != 0 {
		t.Errorf("self distance %v, want 0", d[2][2])
	}
}

// TestTriangleInequality: shortest-path delays satisfy the triangle
// inequality by construction.
func TestTriangleInequality(t *testing.T) {
	n := MustGenerate(Config{Repositories: 15, Routers: 40, Seed: 3})
	e := n.Endpoints()
	for i := 0; i < e; i++ {
		for j := 0; j < e; j++ {
			for k := 0; k < e; k++ {
				if n.Delay[i][j] > n.Delay[i][k]+n.Delay[k][j] {
					t.Fatalf("triangle violation: d(%d,%d)=%v > d(%d,%d)+d(%d,%d)=%v",
						i, j, n.Delay[i][j], i, k, k, j, n.Delay[i][k]+n.Delay[k][j])
				}
			}
		}
	}
}

func BenchmarkGenerate700(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MustGenerate(Config{Repositories: 100, Routers: 600, Seed: int64(i)})
	}
}
