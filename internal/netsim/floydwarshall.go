package netsim

import "d3t/internal/sim"

// FloydWarshall computes all-pairs shortest delays over an explicit
// adjacency matrix, exactly as the paper generates its routing tables
// (Section 6.1, citing Cormen/Leiserson/Rivest). adj[i][j] < 0 means no
// link. The returned matrix uses the same convention for unreachable
// pairs.
//
// The experiment harness prefers the Dijkstra-based Generate (identical
// results, far cheaper on 2100-node topologies); Floyd-Warshall is kept as
// the paper-faithful reference implementation and as the oracle in the
// equivalence tests.
func FloydWarshall(adj [][]sim.Time) [][]sim.Time {
	n := len(adj)
	dist := make([][]sim.Time, n)
	for i := range dist {
		dist[i] = make([]sim.Time, n)
		for j := range dist[i] {
			switch {
			case i == j:
				dist[i][j] = 0
			case adj[i][j] >= 0:
				dist[i][j] = adj[i][j]
			default:
				dist[i][j] = inf
			}
		}
	}
	for k := 0; k < n; k++ {
		dk := dist[k]
		for i := 0; i < n; i++ {
			dik := dist[i][k]
			if dik >= inf {
				continue
			}
			di := dist[i]
			for j := 0; j < n; j++ {
				if nd := dik + dk[j]; nd < di[j] {
					di[j] = nd
				}
			}
		}
	}
	for i := range dist {
		for j := range dist[i] {
			if dist[i][j] >= inf {
				dist[i][j] = -1
			}
		}
	}
	return dist
}

// adjacencyMatrix flattens a graph into the matrix form FloydWarshall
// consumes, keeping the minimum delay for parallel links.
func (g *graph) adjacencyMatrix() [][]sim.Time {
	adj := make([][]sim.Time, g.n)
	for i := range adj {
		adj[i] = make([]sim.Time, g.n)
		for j := range adj[i] {
			adj[i][j] = -1
		}
	}
	for a, edges := range g.adj {
		for _, e := range edges {
			if adj[a][e.to] < 0 || e.delay < adj[a][e.to] {
				adj[a][e.to] = e.delay
			}
		}
	}
	return adj
}
