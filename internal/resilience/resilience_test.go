package resilience

import (
	"fmt"
	"testing"

	"d3t/internal/dissemination"
	"d3t/internal/netsim"
	"d3t/internal/repository"
	"d3t/internal/sim"
	"d3t/internal/trace"
	"d3t/internal/tree"
)

// fixture builds a deterministic overlay and trace set, mirroring the
// dissemination test fixtures.
func fixture(t *testing.T, repos, items, coop int, ticks int, seed int64) (*tree.Overlay, *tree.LeLA, []*trace.Trace) {
	t.Helper()
	net := netsim.MustGenerate(netsim.Config{Repositories: repos, Routers: 3 * repos, Seed: seed})
	members := make([]*repository.Repository, repos)
	for i := range members {
		members[i] = repository.New(repository.ID(i+1), coop)
	}
	catalogue := make([]string, items)
	traces := trace.GenerateSet(items, ticks, sim.Second, seed+10)
	for i, tr := range traces {
		catalogue[i] = tr.Item
	}
	repository.AssignNeeds(members, repository.Workload{
		Items: catalogue, SubscribeProb: 0.5, StringentFrac: 0.5, Seed: seed + 11,
	})
	l := &tree.LeLA{Seed: seed}
	o, err := l.Build(net, members, coop)
	if err != nil {
		t.Fatal(err)
	}
	return o, l, traces
}

func TestParsePlan(t *testing.T) {
	interval := sim.Second
	for _, spec := range []string{"", "none"} {
		p, err := ParsePlan(spec, 10, 100, interval, 1)
		if err != nil || !p.Empty() {
			t.Errorf("ParsePlan(%q) = %v, %v; want empty plan", spec, p, err)
		}
	}
	p, err := ParsePlan("crash:3@50", 10, 100, interval, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := Fault{Node: 3, At: 50 * sim.Second}
	if len(p.Faults) != 1 || p.Faults[0] != want {
		t.Errorf("crash plan = %+v, want [%+v]", p.Faults, want)
	}
	p, err = ParsePlan("crash:max@20+30", 10, 100, interval, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Faults[0]
	if f.Node != AutoInterior || f.At != 20*sim.Second || f.RejoinAt != 50*sim.Second {
		t.Errorf("crash-rejoin plan = %+v", f)
	}
	for _, bad := range []string{"crash:0@5", "crash:3@0", "crash:3@100", "crash:x@5",
		"churn:-1", "churn:1:0", "explode:3@5", "crash:3"} {
		if _, err := ParsePlan(bad, 10, 100, interval, 1); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestChurnPlanDeterministicAndRateScaled(t *testing.T) {
	interval := sim.Second
	a, err := ParsePlan("churn:4", 20, 1000, interval, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ParsePlan("churn:4", 20, 1000, interval, 7)
	if fmt.Sprint(a.Faults) != fmt.Sprint(b.Faults) {
		t.Error("same churn spec and seed produced different plans")
	}
	c, _ := ParsePlan("churn:4", 20, 1000, interval, 8)
	if fmt.Sprint(a.Faults) == fmt.Sprint(c.Faults) {
		t.Error("different seeds produced identical churn plans")
	}
	// ~4 per 100 ticks over 1000 ticks => ~40 events; assert the order of
	// magnitude, not the exact draw.
	if n := len(a.Faults); n < 15 || n > 80 {
		t.Errorf("churn:4 over 1000 ticks produced %d faults, want ~40", n)
	}
	for i := 1; i < len(a.Faults); i++ {
		if a.Faults[i].At < a.Faults[i-1].At {
			t.Fatal("churn plan not sorted by crash time")
		}
	}
}

func TestNoFaultRunMatchesDissemination(t *testing.T) {
	o1, l1, traces := fixture(t, 20, 10, 4, 400, 3)
	base, err := dissemination.Run(o1, traces, dissemination.NewDistributed(), dissemination.Config{})
	if err != nil {
		t.Fatal(err)
	}
	o2, l2, traces2 := fixture(t, 20, 10, 4, 400, 3)
	_ = l1
	res, err := Run(o2, l2, traces2, dissemination.NewDistributed(), Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Report.SystemFidelity(), base.Report.SystemFidelity(); got != want {
		t.Errorf("fault-free resilient fidelity %v != dissemination fidelity %v", got, want)
	}
	if got, want := res.Stats.Messages, base.Stats.Messages; got != want {
		t.Errorf("fault-free resilient messages %d != dissemination messages %d", got, want)
	}
	if res.Resilience.Crashes != 0 || res.Resilience.Detections != 0 || res.Resilience.Rehomed != 0 {
		t.Errorf("fault-free run performed repairs: %+v", res.Resilience)
	}
	if res.Resilience.Heartbeats == 0 {
		t.Error("no heartbeats exchanged")
	}
}

// TestInteriorCrashRecovers is the PR's acceptance scenario: a single
// interior-node crash is injected; dependents must re-home within the
// detection window and post-repair fidelity must land within 5% of the
// fault-free run.
func TestInteriorCrashRecovers(t *testing.T) {
	const seed = 4
	run := func(spec string) *Result {
		o, l, traces := fixture(t, 20, 10, 4, 600, seed)
		plan, err := ParsePlan(spec, 20, 600, sim.Second, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(o, l, traces, dissemination.NewDistributed(), Config{}, plan)
		if err != nil {
			t.Fatal(err)
		}
		if spec != "" {
			if err := o.Validate(); err != nil {
				t.Fatalf("overlay invalid after repair: %v", err)
			}
		}
		return res
	}

	noFault := run("")
	faulty := run("crash:max@50")

	if faulty.Resilience.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", faulty.Resilience.Crashes)
	}
	if faulty.Resilience.Detections == 0 || faulty.Resilience.Rehomed == 0 {
		t.Fatalf("no detection/repair happened: %+v", faulty.Resilience)
	}
	cfg := Config{}.WithDefaults()
	// Recovery is measured crash-to-re-home per feed; with no orphaned
	// feeds every dependent must land on a backup within one silence
	// window plus at most one watchdog period and heartbeat skew.
	if faulty.Resilience.Orphaned != 0 {
		t.Errorf("%d feeds orphaned; re-homing must succeed in this fixture", faulty.Resilience.Orphaned)
	}
	bound := cfg.Window() + 2*cfg.Heartbeat
	if faulty.Resilience.MaxRecovery > bound {
		t.Errorf("max recovery %v exceeds detection bound %v", faulty.Resilience.MaxRecovery, bound)
	}
	if faulty.Resilience.MeanRecovery <= 0 {
		t.Error("mean recovery not measured")
	}
	if got, want := faulty.Report.SystemFidelity(), noFault.Report.SystemFidelity(); got < want-0.05 {
		t.Errorf("faulty fidelity %.4f more than 5%% below fault-free %.4f", got, want)
	}
}

func TestCrashRejoinRestoresFeeds(t *testing.T) {
	o, l, traces := fixture(t, 20, 10, 4, 600, 5)
	plan, err := ParsePlan("crash:max@50+120", 20, 600, sim.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	victim := busiestInterior(o)
	res, err := Run(o, l, traces, dissemination.NewDistributed(), Config{}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilience.Rejoins != 1 {
		t.Fatalf("rejoins = %d, want 1", res.Resilience.Rejoins)
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("overlay invalid after rejoin: %v", err)
	}
	// The rejoined node serves again: every item it holds has a live feed.
	q := o.Node(victim)
	for _, x := range q.Items() {
		if _, ok := q.Parents[x]; !ok {
			t.Errorf("rejoined node %d holds %s with no parent", victim, x)
		}
	}
}

func TestChurnRunStaysDeterministic(t *testing.T) {
	run := func() (float64, Stats) {
		o, l, traces := fixture(t, 16, 8, 3, 400, 6)
		plan, err := ParsePlan("churn:3:30", 16, 400, sim.Second, 6)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(o, l, traces, dissemination.NewDistributed(), Config{}, plan)
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.SystemFidelity(), res.Resilience
	}
	f1, s1 := run()
	f2, s2 := run()
	if f1 != f2 || s1 != s2 {
		t.Errorf("two identical churn runs diverged: %.6f/%+v vs %.6f/%+v", f1, s1, f2, s2)
	}
	if s1.Crashes == 0 {
		t.Error("churn plan injected no crashes")
	}
}

// TestRehomeSyncResetsEdgeFilterState pins the repair/protocol contract:
// after a re-home sync, the Distributed filter must compare against the
// synced value, not the edge's pre-crash history — otherwise a value
// drifting back toward the old last-sent would be withheld from the
// re-homed dependent.
func TestRehomeSyncResetsEdgeFilterState(t *testing.T) {
	net := netsim.Uniform(1, 0)
	a := repository.New(1, 1)
	a.Needs["X"], a.Serving["X"] = 10, 10
	o, err := (&tree.LeLA{}).Build(net, []*repository.Repository{a}, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := dissemination.NewDistributed()
	d.Init(o, map[string]float64{"X": 100})

	if fwd, _ := d.AtSource("X", 150); len(fwd) != 1 {
		t.Fatalf("first violating update not forwarded: %v", fwd)
	}
	// Repair syncs the dependent to 90; the edge state must follow.
	d.ResetEdge(repository.SourceID, 1, "X", 90)
	// 152 is within tolerance of the stale last-sent (150) but far from
	// the synced 90 — it must be forwarded.
	if fwd, _ := d.AtSource("X", 152); len(fwd) != 1 {
		t.Fatal("update withheld against stale pre-reset edge state")
	}
}
