// Package resilience makes the dissemination overlay survive repository
// failures and churn. It provides three pieces, wired through every layer
// of the system:
//
//   - Failure injection: a deterministic FaultPlan — single crashes,
//     crash-and-rejoin, or seeded Poisson churn — generated per scenario
//     like workloads and selectable via core.Config.Faults and the -faults
//     command flags.
//   - Detection: the resilient simulation runner (runner.go) models
//     heartbeats and a silence window on sim events; a dependent declares
//     its parent dead after DetectK heartbeat intervals with no push and
//     no heartbeat. The live and netio runtimes detect through real
//     timeouts and connection errors instead.
//   - Repair: every repository precomputes a ranked backup-parent list
//     (tree.LeLA.BackupParents); on detection its dependents re-home to
//     the first live backup with capacity, falling back to a full
//     re-ranking (tree.LeLA.Rehome) that cascades augmentation toward the
//     source.
//
// The paper (Section 7/8) leaves failure handling as future work; this
// package supplies it while preserving the construction algorithm's
// invariants, measured with the same fidelity metric as every other
// experiment.
package resilience

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"d3t/internal/repository"
	"d3t/internal/sim"
)

// AutoInterior marks a fault whose victim is resolved at run time: the
// repository currently serving the most dependents (the interior node
// whose failure severs the most downstream feeds).
const AutoInterior repository.ID = -2

// Fault is one scheduled failure: Node crashes at At and, if RejoinAt is
// nonzero, rejoins (warm restart with stale copies) at RejoinAt. Kill
// marks a process death instead of a network-style outage: the node's
// in-memory state is lost, and its rejoin recovers from disk when the
// run has durability configured — cold, serving nothing, when it does
// not (the rejoin-cold bug the WAL exists to fix).
type Fault struct {
	Node     repository.ID
	At       sim.Time
	RejoinAt sim.Time
	Kill     bool
}

// Plan is a deterministic failure schedule, sorted by crash time.
type Plan struct {
	// Spec is the string the plan was parsed from, for labeling output.
	Spec string
	// Faults are the scheduled failures in crash-time order.
	Faults []Fault
}

// Empty reports whether the plan injects no faults.
func (p *Plan) Empty() bool { return p == nil || len(p.Faults) == 0 }

// ParsePlan builds a fault plan from a spec string, sized to a run of
// `repos` repositories and `ticks` trace ticks at `interval`. Specs:
//
//	"" | "none"                     no faults
//	crash:<node>@<tick>             node (id, or "max" for the busiest
//	                                interior node) crashes at the tick
//	crash:<node>@<tick>+<down>      ...and rejoins <down> ticks later
//	kill:<node>@<tick>[+<down>]     like crash, but a process death: all
//	                                in-memory state is lost, and the
//	                                rejoin recovers from disk (WAL +
//	                                snapshot) when durability is on —
//	                                cold when it is not
//	churn:<rate>[:<meandown>]       seeded Poisson churn: <rate> expected
//	                                crashes per 100 ticks across the
//	                                population, each down for an
//	                                exponential time with mean <meandown>
//	                                ticks (default 50)
//
// The same spec, sizes and seed always yield the same plan.
func ParsePlan(spec string, repos, ticks int, interval sim.Time, seed int64) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	if repos < 1 || ticks < 1 || interval <= 0 {
		return nil, fmt.Errorf("resilience: cannot size plan %q for %d repos x %d ticks", spec, repos, ticks)
	}
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("resilience: malformed fault spec %q (want kind:params)", spec)
	}
	switch kind {
	case "crash":
		return parseCrash(spec, rest, repos, ticks, interval, false)
	case "kill":
		return parseCrash(spec, rest, repos, ticks, interval, true)
	case "churn":
		return parseChurn(spec, rest, repos, ticks, interval, seed)
	default:
		return nil, fmt.Errorf("resilience: unknown fault kind %q in %q", kind, spec)
	}
}

func parseCrash(spec, rest string, repos, ticks int, interval sim.Time, kill bool) (*Plan, error) {
	nodePart, timePart, ok := strings.Cut(rest, "@")
	if !ok {
		return nil, fmt.Errorf("resilience: crash spec %q needs <node>@<tick>", spec)
	}
	node := AutoInterior
	if nodePart != "max" {
		id, err := strconv.Atoi(nodePart)
		if err != nil || id < 1 || id > repos {
			return nil, fmt.Errorf("resilience: crash node %q not a repository id in 1..%d (or \"max\")", nodePart, repos)
		}
		node = repository.ID(id)
	}
	tickPart, downPart, hasDown := strings.Cut(timePart, "+")
	tick, err := strconv.Atoi(tickPart)
	if err != nil || tick < 1 || tick >= ticks {
		return nil, fmt.Errorf("resilience: crash tick %q outside 1..%d", tickPart, ticks-1)
	}
	f := Fault{Node: node, At: sim.Time(tick) * interval, Kill: kill}
	if hasDown {
		down, err := strconv.Atoi(downPart)
		if err != nil || down < 1 {
			return nil, fmt.Errorf("resilience: rejoin delay %q not a positive tick count", downPart)
		}
		f.RejoinAt = f.At + sim.Time(down)*interval
	}
	return &Plan{Spec: spec, Faults: []Fault{f}}, nil
}

func parseChurn(spec, rest string, repos, ticks int, interval sim.Time, seed int64) (*Plan, error) {
	ratePart, downPart, hasDown := strings.Cut(rest, ":")
	rate, err := strconv.ParseFloat(ratePart, 64)
	if err != nil || rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		// Non-finite rates must be rejected up front: an infinite rate
		// makes the exponential arrival step zero and the generator loop
		// below would never advance (found by FuzzParsePlan).
		return nil, fmt.Errorf("resilience: churn rate %q not a finite non-negative number", ratePart)
	}
	// Cap the expected fault volume: rate is crashes per 100 ticks, so a
	// pathological rate would materialize an unbounded schedule (also a
	// FuzzParsePlan find). A million scheduled faults is far beyond any
	// meaningful run.
	if expected := rate / 100 * float64(ticks); expected > 1e6 {
		return nil, fmt.Errorf("resilience: churn rate %q schedules ~%.0f faults over %d ticks; the cap is 1e6",
			ratePart, expected, ticks)
	}
	meanDown := 50.0
	if hasDown {
		meanDown, err = strconv.ParseFloat(downPart, 64)
		if err != nil || meanDown <= 0 || math.IsNaN(meanDown) || math.IsInf(meanDown, 0) {
			return nil, fmt.Errorf("resilience: churn mean downtime %q not a finite positive tick count", downPart)
		}
	}
	plan := &Plan{Spec: spec}
	if rate == 0 {
		return plan, nil
	}
	rng := rand.New(rand.NewSource(seed))
	perTick := rate / 100
	downUntil := make(map[repository.ID]float64, repos)
	for t := rng.ExpFloat64() / perTick; t < float64(ticks); t += rng.ExpFloat64() / perTick {
		node := repository.ID(1 + rng.Intn(repos))
		down := meanDown * rng.ExpFloat64()
		if downUntil[node] >= t {
			continue // still down; the failure hits an already-failed node
		}
		downUntil[node] = t + down
		rejoin := t + down
		f := Fault{Node: node, At: sim.Time(t * float64(interval))}
		if rejoin < float64(ticks) {
			f.RejoinAt = sim.Time(rejoin * float64(interval))
		}
		plan.Faults = append(plan.Faults, f)
	}
	sort.SliceStable(plan.Faults, func(i, j int) bool { return plan.Faults[i].At < plan.Faults[j].At })
	return plan, nil
}
