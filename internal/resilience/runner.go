package resilience

import (
	"fmt"
	"sort"

	"d3t/internal/coherency"
	"d3t/internal/dissemination"
	"d3t/internal/repository"
	"d3t/internal/sim"
	"d3t/internal/trace"
	"d3t/internal/tree"
)

// Config parameterizes the resilient simulation runner.
type Config struct {
	// Push is the delay model of the underlying push dissemination.
	Push dissemination.Config
	// Heartbeat is the keep-alive interval between overlay neighbors.
	// Default 2 s.
	Heartbeat sim.Time
	// DetectK is the silence window in heartbeat intervals: a neighbor
	// silent (no push, no heartbeat) for DetectK*Heartbeat is declared
	// dead. Default 3.
	DetectK int
	// BackupK is the precomputed backup-parent list length. Default 5.
	BackupK int
	// Observer, when set, watches the run's events — source ticks and
	// deliveries like dissemination.Observer, plus crashes and rejoins so
	// the client-serving layer can migrate sessions off dead repositories.
	// Nil leaves the run byte-identical to one without the field.
	Observer Observer
}

// Observer extends the dissemination observer with fault events.
type Observer interface {
	dissemination.Observer
	// ObserveCrash fires when a repository goes down.
	ObserveCrash(now sim.Time, id repository.ID)
	// ObserveRejoin fires when a crashed repository comes back.
	ObserveRejoin(now sim.Time, id repository.ID)
}

// WithDefaults resolves the zero values to the runner's defaults,
// including the push delay conventions (dissemination.Config). Exported
// so figures and tests can report the effective detection window.
func (c Config) WithDefaults() Config {
	if c.Heartbeat == 0 {
		c.Heartbeat = 2 * sim.Second
	}
	if c.DetectK <= 0 {
		c.DetectK = 3
	}
	if c.BackupK <= 0 {
		c.BackupK = 5
	}
	c.Push = c.Push.WithDefaults()
	return c
}

// Window returns the detection silence window.
func (c Config) Window() sim.Time { return sim.Time(c.DetectK) * c.Heartbeat }

// Stats counts the resilience machinery's work during one run.
type Stats struct {
	// Crashes and Rejoins count executed fault-plan events.
	Crashes, Rejoins int
	// Detections counts parent-death declarations by dependents.
	Detections int
	// ChildDrops counts dead-child edge removals by parents.
	ChildDrops int
	// Rehomed counts re-established (dependent, item) feeds; Orphaned
	// counts feeds that found no live parent with capacity (retried on
	// later watchdog passes until one succeeds).
	Rehomed, Orphaned int
	// Heartbeats counts keep-alive messages sent (kept out of
	// Stats.Messages so data-path message counts stay comparable across
	// fault-free and faulty runs).
	Heartbeats uint64
	// DroppedDeliveries counts update copies that arrived at a dead node.
	DroppedDeliveries uint64
	// RecoverySamples, MeanRecovery and MaxRecovery summarize the time
	// from a crash to a dependent's re-homing onto a live parent.
	RecoverySamples int
	MeanRecovery    sim.Time
	MaxRecovery     sim.Time
}

// Result extends the dissemination result with resilience statistics.
type Result struct {
	*dissemination.Result
	// Resilience carries the fault/repair counters.
	Resilience Stats
}

// Run simulates pushing the traces through the overlay under the fault
// plan: nodes crash and rejoin per the plan, neighbors exchange
// heartbeats, dependents detect dead parents after the silence window and
// re-home to their precomputed backups, and fidelity is measured exactly
// as in dissemination.Run. lela supplies the re-homing policy (preference
// function and augmentation); a nil plan runs fault-free.
//
// The overlay is mutated by repairs, like it is by construction; callers
// wanting the pre-fault overlay must rebuild it.
func Run(o *tree.Overlay, lela *tree.LeLA, traces []*trace.Trace, p dissemination.Protocol, cfg Config, plan *Plan) (*Result, error) {
	cfg = cfg.WithDefaults()
	if lela == nil {
		lela = &tree.LeLA{}
	}
	if len(traces) == 0 {
		return nil, fmt.Errorf("resilience: no traces to run")
	}
	initial := make(map[string]float64, len(traces))
	var horizon sim.Time
	for _, tr := range traces {
		if tr.Len() == 0 {
			return nil, fmt.Errorf("resilience: trace %s is empty", tr.Item)
		}
		if _, dup := initial[tr.Item]; dup {
			return nil, fmt.Errorf("resilience: duplicate trace for item %s", tr.Item)
		}
		initial[tr.Item] = tr.Ticks[0].Value
		if end := tr.Ticks[tr.Len()-1].At; end > horizon {
			horizon = end
		}
	}
	p.Init(o, initial)

	n := len(o.Nodes)
	r := &runner{
		o: o, lela: lela, cfg: cfg,
		engine:    sim.New(),
		protocol:  p,
		stations:  make([]sim.Station, n),
		alive:     make([]bool, n),
		dead:      make(map[repository.ID]bool),
		crashedAt: make([]sim.Time, n),
		values:    make([]map[string]float64, n),
		lastHeard: make([][]sim.Time, n),
		backups:   make([][]repository.ID, n),
		orphans:   make(map[repository.ID]map[string]sim.Time),
		byRepo:    make(map[string]map[repository.ID]*coherency.Tracker),
		trackers:  make(map[string][]repoTracker),
	}
	for i := range r.alive {
		r.alive[i] = true
		r.lastHeard[i] = make([]sim.Time, n)
		r.values[i] = make(map[string]float64)
	}
	for x, v := range initial {
		r.values[repository.SourceID][x] = v
	}
	for _, node := range o.Repos() {
		for _, x := range node.Items() {
			if v, ok := initial[x]; ok {
				r.values[node.ID][x] = v
			}
		}
		r.backups[node.ID] = lela.BackupParents(o, node.ID, cfg.BackupK)
		for _, x := range node.NeededItems() {
			c := node.Needs[x]
			v, ok := initial[x]
			if !ok {
				return nil, fmt.Errorf("resilience: repository %d needs item %s with no trace", node.ID, x)
			}
			t := coherency.NewTracker(c, 0, v)
			r.trackers[x] = append(r.trackers[x], repoTracker{repo: node.ID, tr: t})
			m := r.byRepo[x]
			if m == nil {
				m = make(map[repository.ID]*coherency.Tracker)
				r.byRepo[x] = m
			}
			m[node.ID] = t
		}
	}

	// Source-side trace ticks (quiet ticks cost nothing).
	for _, tr := range traces {
		last := tr.Ticks[0].Value
		for _, tk := range tr.Ticks[1:] {
			if tk.Value == last {
				continue
			}
			last = tk.Value
			item, v := tr.Item, tk.Value
			r.engine.At(tk.At, func(now sim.Time) { r.sourceTick(now, item, v) })
		}
	}

	// Fault-plan events. The victim of an AutoInterior fault is resolved
	// now, against the built overlay.
	if !plan.Empty() {
		auto := busiestInterior(o)
		for _, f := range plan.Faults {
			node := f.Node
			if node == AutoInterior {
				node = auto
			}
			if node <= 0 || int(node) >= n {
				return nil, fmt.Errorf("resilience: fault targets unknown repository %d", node)
			}
			id := node
			r.engine.At(f.At, func(now sim.Time) { r.crash(now, id) })
			if f.RejoinAt > 0 {
				r.engine.At(f.RejoinAt, func(now sim.Time) { r.rejoin(now, id) })
			}
		}
	}

	// Heartbeats and watchdogs, staggered deterministically per node so
	// the detection load does not arrive in lockstep.
	// Every node — source included — runs both loops: the source has no
	// parents to watch, but it must still drop dead children to free its
	// connection slots for repairs.
	for _, node := range o.Nodes {
		id := node.ID
		offset := sim.Time((int64(id)*7919 + 13) % int64(cfg.Heartbeat))
		r.engine.At(offset, func(now sim.Time) { r.heartbeat(now, id) })
		r.engine.At(offset+cfg.Heartbeat/2, func(now sim.Time) { r.watchdog(now, id) })
	}

	r.engine.RunUntil(horizon)

	report := coherency.NewReport()
	items := make([]string, 0, len(r.trackers))
	for x := range r.trackers {
		items = append(items, x)
	}
	sort.Strings(items)
	for _, x := range items {
		for _, rt := range r.trackers[x] {
			report.Add(int(rt.repo), rt.tr.Fidelity(horizon))
		}
	}
	r.stats.Events = r.engine.Processed()
	if r.res.RecoverySamples > 0 {
		r.res.MeanRecovery = r.recoverySum / sim.Time(r.res.RecoverySamples)
	}
	name := p.Name()
	if !plan.Empty() {
		name += "+faults"
	}
	return &Result{
		Result: &dissemination.Result{
			Protocol:          name,
			Report:            report,
			Stats:             r.stats,
			Horizon:           horizon,
			SourceUtilization: r.stations[repository.SourceID].Utilization(horizon),
		},
		Resilience: r.res,
	}, nil
}

// busiestInterior returns the repository serving the most dependents (the
// AutoInterior victim), preferring lower ids on ties; when no repository
// serves anyone (a direct overlay) it falls back to repository 1.
func busiestInterior(o *tree.Overlay) repository.ID {
	best, bestChildren := repository.ID(1), 0
	for _, n := range o.Repos() {
		if c := n.NumChildren(); c > bestChildren {
			best, bestChildren = n.ID, c
		}
	}
	return best
}

type repoTracker struct {
	repo repository.ID
	tr   *coherency.Tracker
}

// runner is the per-run simulation state.
type runner struct {
	o        *tree.Overlay
	lela     *tree.LeLA
	cfg      Config
	engine   *sim.Engine
	protocol dissemination.Protocol
	stations []sim.Station

	alive     []bool
	dead      map[repository.ID]bool // same fact as alive, shaped for tree.Rehome
	crashedAt []sim.Time
	values    []map[string]float64
	lastHeard [][]sim.Time // lastHeard[a][b]: when a last heard from b
	backups   [][]repository.ID
	// orphans holds feeds awaiting a live parent, each carrying the
	// causing crash's time (0 when unknown) so a later successful retry
	// still reports the full severed duration as recovery latency.
	orphans map[repository.ID]map[string]sim.Time

	trackers map[string][]repoTracker
	byRepo   map[string]map[repository.ID]*coherency.Tracker

	stats       dissemination.Stats
	res         Stats
	recoverySum sim.Time
}

// sourceTick handles a changed value arriving at the source.
func (r *runner) sourceTick(now sim.Time, item string, v float64) {
	r.stats.SourceTicks++
	r.values[repository.SourceID][item] = v
	for _, rt := range r.trackers[item] {
		rt.tr.SourceUpdate(now, v)
	}
	if r.cfg.Observer != nil {
		r.cfg.Observer.ObserveSource(now, item, v)
	}
	fwd, checks := r.protocol.AtSource(item, v)
	r.stats.SourceChecks += uint64(checks)
	r.dispatch(now, r.o.Source(), item, v, fwd, checks)
}

// deliver handles an update copy arriving at a repository. Copies arriving
// at a dead node are dropped on the floor — exactly what a crashed process
// does with packets addressed to it.
func (r *runner) deliver(now sim.Time, node *repository.Repository, from repository.ID, item string, v float64, tag coherency.Requirement) {
	if !r.alive[node.ID] {
		r.res.DroppedDeliveries++
		return
	}
	r.lastHeard[node.ID][from] = now
	r.stats.Deliveries++
	r.values[node.ID][item] = v
	if t := r.byRepo[item][node.ID]; t != nil {
		t.RepoUpdate(now, v)
	}
	if r.cfg.Observer != nil {
		r.cfg.Observer.ObserveDeliver(now, node.ID, item, v)
	}
	fwd, checks := r.protocol.AtRepo(node, item, v, tag)
	r.stats.RepoChecks += uint64(checks)
	r.dispatch(now, node, item, v, fwd, checks)
}

// dispatch charges computational delays and schedules the sends, exactly
// like the dissemination runner's latency/queueing models.
func (r *runner) dispatch(now sim.Time, from *repository.Repository, item string, v float64, fwd []dissemination.Forward, checks int) {
	st := &r.stations[from.ID]
	var preamble sim.Time
	if extra := checks - len(fwd); extra > 0 && r.cfg.Push.CheckFrac > 0 {
		preamble = sim.Time(float64(r.cfg.Push.CompDelay) * r.cfg.Push.CheckFrac * float64(extra))
	}
	if r.cfg.Push.Queueing {
		if preamble > 0 {
			st.Acquire(now, preamble)
		}
		for _, f := range fwd {
			done := st.Acquire(now, r.cfg.Push.CompDelay)
			r.send(done, from.ID, item, v, f)
		}
		return
	}
	st.Busy += preamble + sim.Time(len(fwd))*r.cfg.Push.CompDelay
	st.Jobs++
	depart := now + preamble
	for _, f := range fwd {
		depart += r.cfg.Push.CompDelay
		r.send(depart, from.ID, item, v, f)
	}
}

// send emits one copy departing at the given time.
func (r *runner) send(depart sim.Time, from repository.ID, item string, v float64, f dissemination.Forward) {
	r.stats.Messages++
	to := r.o.Node(f.To)
	arrive := depart + r.o.Net.Delay[from][f.To]
	tag := f.Tag
	r.engine.At(arrive, func(t sim.Time) { r.deliver(t, to, from, item, v, tag) })
}

// crash takes a node down: it stops forwarding, heartbeating and
// accepting deliveries. Its edges stay in place until neighbors detect
// the silence.
func (r *runner) crash(now sim.Time, id repository.ID) {
	if !r.alive[id] {
		return
	}
	r.alive[id] = false
	r.dead[id] = true
	r.crashedAt[id] = now
	r.res.Crashes++
	if r.cfg.Observer != nil {
		r.cfg.Observer.ObserveCrash(now, id)
	}
}

// rejoin warm-restarts a node: stale copies are kept (they were stale the
// moment the process died), downstream edges survive for children that
// never noticed the outage, and every upstream feed is re-established
// through the backup machinery.
func (r *runner) rejoin(now sim.Time, id repository.ID) {
	if r.alive[id] {
		return
	}
	r.alive[id] = true
	delete(r.dead, id)
	r.crashedAt[id] = 0
	r.res.Rejoins++
	if r.cfg.Observer != nil {
		r.cfg.Observer.ObserveRejoin(now, id)
	}

	q := r.o.Node(id)
	// Detach cleanly from every old parent (some already dropped us as a
	// dead child), then re-home every item the node still serves — its own
	// needs plus anything held for surviving dependents.
	for _, n := range r.o.Nodes {
		if n.ID != id {
			n.DropDependent(id)
		}
	}
	q.Parents = map[string]repository.ID{}
	q.Liaison = repository.NoID
	for _, x := range q.Items() {
		r.rehomeFeed(now, q, x, 0)
	}
	// Fresh silence clocks: the node should not instantly "detect" peers
	// it simply was not listening to while down.
	for i := range r.lastHeard[id] {
		r.lastHeard[id][i] = now
	}
}

// heartbeat sends keep-alives from id to its current overlay neighbors
// (children and parents both, so each side can detect the other), then
// reschedules itself.
func (r *runner) heartbeat(now sim.Time, id repository.ID) {
	r.engine.At(now+r.cfg.Heartbeat, func(t sim.Time) { r.heartbeat(t, id) })
	if !r.alive[id] {
		return
	}
	neighbors := append(r.o.ChildrenOf(id), r.o.ParentsOf(id)...)
	seen := make(map[repository.ID]bool, len(neighbors))
	for _, nb := range neighbors {
		if seen[nb] {
			continue
		}
		seen[nb] = true
		r.res.Heartbeats++
		arrive := now + r.o.Net.Delay[id][nb]
		nb := nb
		r.engine.At(arrive, func(t sim.Time) {
			if r.alive[nb] {
				r.lastHeard[nb][id] = t
			}
		})
	}
}

// watchdog is the per-repository detection pass: declare silent parents
// dead and re-home their feeds, drop silent children, retry orphaned
// feeds. It reschedules itself every heartbeat interval.
func (r *runner) watchdog(now sim.Time, id repository.ID) {
	r.engine.At(now+r.cfg.Heartbeat, func(t sim.Time) { r.watchdog(t, id) })
	if !r.alive[id] {
		return
	}
	window := r.cfg.Window()
	q := r.o.Node(id)

	for _, pid := range r.o.ParentsOf(id) {
		if now-r.lastHeard[id][pid] < window {
			continue
		}
		r.res.Detections++
		r.rehomeFrom(now, q, pid)
	}
	for _, cid := range r.o.ChildrenOf(id) {
		if now-r.lastHeard[id][cid] < window {
			continue
		}
		// A silent child gets its push connection dropped, freeing the
		// slot for re-homing repairs elsewhere. If it was merely slow it
		// re-homes itself onto a backup when it notices the silence.
		q.DropDependent(cid)
		r.res.ChildDrops++
	}
	if pending := r.orphans[id]; len(pending) > 0 {
		items := make([]string, 0, len(pending))
		for x := range pending {
			items = append(items, x)
		}
		sort.Strings(items)
		for _, x := range items {
			r.rehomeFeed(now, q, x, pending[x])
		}
	}
}

// rehomeFrom re-homes every feed dependent q receives from the (detected
// dead) parent pid. The parent's crash time rides along so recovery
// latency is measured crash-to-re-home, however many retries that takes.
func (r *runner) rehomeFrom(now sim.Time, q *repository.Repository, pid repository.ID) {
	items := make([]string, 0, len(q.Parents))
	for x, p := range q.Parents {
		if p == pid {
			items = append(items, x)
		}
	}
	sort.Strings(items)
	r.o.Node(pid).DropDependent(q.ID)
	if q.Liaison == pid {
		q.Liaison = repository.NoID
	}
	var crashed sim.Time
	if !r.alive[pid] {
		crashed = r.crashedAt[pid]
	}
	for _, x := range items {
		delete(q.Parents, x)
		r.rehomeFeed(now, q, x, crashed)
	}
}

// rehomeFeed re-establishes q's feed for item x: first live precomputed
// backup with capacity, then a full re-ranking, orphaning the feed for a
// later watchdog retry when nothing has room. On success the new parent
// immediately pushes its current copy so the dependent converges without
// waiting for the next source tick. crashed is the causing crash's time
// (0 when not crash-induced); a recovery-latency sample is recorded only
// here, when the feed actually lands on a live parent.
func (r *runner) rehomeFeed(now sim.Time, q *repository.Repository, x string, crashed sim.Time) {
	var parent repository.ID = repository.NoID
	var sub map[repository.ID]bool
	for _, b := range r.backups[q.ID] {
		if !r.alive[b] {
			continue
		}
		if sub == nil {
			sub = r.o.Subtree(q.ID) // once per repair; attempts don't rewire
		}
		if err := r.lela.AdoptFeed(r.o, r.o.Node(b), q, x, sub); err == nil {
			parent = b
			break
		}
	}
	if parent == repository.NoID {
		pid, err := r.lela.Rehome(r.o, q, x, r.dead)
		if err != nil {
			if r.orphans[q.ID] == nil {
				r.orphans[q.ID] = make(map[string]sim.Time)
			}
			if _, seen := r.orphans[q.ID][x]; !seen {
				r.orphans[q.ID][x] = crashed
				r.res.Orphaned++
			}
			return
		}
		parent = pid
	}
	delete(r.orphans[q.ID], x)
	r.res.Rehomed++
	if crashed > 0 {
		sample := now - crashed
		r.recoverySum += sample
		r.res.RecoverySamples++
		if sample > r.res.MaxRecovery {
			r.res.MaxRecovery = sample
		}
	}
	// The adoption handshake counts as hearing from the new parent —
	// without this the stale silence clock could instantly "detect" it.
	r.lastHeard[q.ID][parent] = now
	r.lastHeard[parent][q.ID] = now
	// Sync push: the new parent ships its current copy through the normal
	// cost model — it queues at the parent's station like any other copy.
	v, ok := r.values[parent][x]
	if !ok {
		v = r.values[repository.SourceID][x]
	}
	// Re-seed the protocol's per-edge filter state to the synced value: a
	// revived edge (crash-and-rejoin back onto the old parent) would
	// otherwise filter against its pre-crash state and withhold updates.
	if er, ok := r.protocol.(edgeResetter); ok {
		er.ResetEdge(parent, q.ID, x, v)
	}
	r.dispatch(now, r.o.Node(parent), x, v, []dissemination.Forward{{To: q.ID}}, 0)
}

// edgeResetter is implemented by protocols with per-edge filter state
// (Distributed and its naive variant); stateless protocols need nothing.
type edgeResetter interface {
	ResetEdge(from, to repository.ID, x string, v float64)
}
