package resilience

import (
	"fmt"
	"path/filepath"
	"sort"

	"d3t/internal/coherency"
	"d3t/internal/dissemination"
	"d3t/internal/node"
	"d3t/internal/repository"
	"d3t/internal/sim"
	"d3t/internal/trace"
	"d3t/internal/tree"
	"d3t/internal/wal"
)

// Config parameterizes the resilient simulation runner.
type Config struct {
	// Push is the delay model of the underlying push dissemination.
	Push dissemination.Config
	// Heartbeat is the keep-alive interval between overlay neighbors.
	// Default 2 s.
	Heartbeat sim.Time
	// DetectK is the silence window in heartbeat intervals: a neighbor
	// silent (no push, no heartbeat) for DetectK*Heartbeat is declared
	// dead. Default 3.
	DetectK int
	// BackupK is the precomputed backup-parent list length. Default 5.
	BackupK int
	// Observer, when set, watches the run's events — source ticks and
	// deliveries like dissemination.Observer, plus crashes and rejoins so
	// the client-serving layer can migrate sessions off dead repositories.
	// Nil leaves the run byte-identical to one without the field.
	Observer Observer
	// Durability, when set, gives every repository a write-ahead log
	// under Durability.Dir (one subdirectory per repository): each
	// delivered update is appended and group-committed, a kill: fault
	// closes the log with the process, and the rejoin recovers from disk
	// instead of coming back cold. Nil leaves the run byte-identical to
	// one without the field.
	Durability *wal.Options
	// ReplayPerRecord and SnapshotLoad model the recovery cost in
	// simulated time: a disk rejoin completes SnapshotLoad +
	// ReplayPerRecord per replayed record after the rejoin event.
	// Defaults 50 µs and 5 ms — deterministic, never wall-clock.
	ReplayPerRecord sim.Time
	SnapshotLoad    sim.Time
}

// Observer extends the dissemination observer with fault events.
type Observer interface {
	dissemination.Observer
	// ObserveCrash fires when a repository goes down.
	ObserveCrash(now sim.Time, id repository.ID)
	// ObserveRejoin fires when a crashed repository comes back.
	ObserveRejoin(now sim.Time, id repository.ID)
}

// WithDefaults resolves the zero values to the runner's defaults,
// including the push delay conventions (dissemination.Config). Exported
// so figures and tests can report the effective detection window.
func (c Config) WithDefaults() Config {
	if c.Heartbeat == 0 {
		c.Heartbeat = 2 * sim.Second
	}
	if c.DetectK <= 0 {
		c.DetectK = 3
	}
	if c.BackupK <= 0 {
		c.BackupK = 5
	}
	if c.ReplayPerRecord == 0 {
		c.ReplayPerRecord = 50 * sim.Microsecond
	}
	if c.SnapshotLoad == 0 {
		c.SnapshotLoad = 5 * sim.Millisecond
	}
	c.Push = c.Push.WithDefaults()
	return c
}

// Window returns the detection silence window.
func (c Config) Window() sim.Time { return sim.Time(c.DetectK) * c.Heartbeat }

// Stats counts the resilience machinery's work during one run.
type Stats struct {
	// Crashes and Rejoins count executed fault-plan events.
	Crashes, Rejoins int
	// Detections counts parent-death declarations by dependents.
	Detections int
	// ChildDrops counts dead-child edge removals by parents.
	ChildDrops int
	// Rehomed counts re-established (dependent, item) feeds; Orphaned
	// counts feeds that found no live parent with capacity (retried on
	// later watchdog passes until one succeeds).
	Rehomed, Orphaned int
	// Heartbeats counts keep-alive messages sent (kept out of
	// Stats.Messages so data-path message counts stay comparable across
	// fault-free and faulty runs).
	Heartbeats uint64
	// DroppedDeliveries counts update copies that arrived at a dead node.
	DroppedDeliveries uint64
	// RecoverySamples, MeanRecovery and MaxRecovery summarize the time
	// from a crash to a dependent's re-homing onto a live parent.
	RecoverySamples int
	MeanRecovery    sim.Time
	MaxRecovery     sim.Time
	// Kills counts executed kill: faults (process deaths losing all
	// in-memory state, unlike the network-outage crashes above).
	Kills int
	// DiskRecoveries counts rejoins that restored state from the
	// write-ahead log; ReplayedRecords the log records they (and the
	// run's start, see RestoredAtStart) replayed.
	DiskRecoveries  int
	ReplayedRecords int
	// RestoredAtStart counts repositories that recovered state from disk
	// when the run began — a full-cluster restart resuming where the
	// previous run's logs left off.
	RestoredAtStart int
	// ReplayTime and MeanReplay total and average the modeled
	// disk-recovery delay (snapshot load + per-record replay).
	ReplayTime sim.Time
	MeanReplay sim.Time
}

// Result extends the dissemination result with resilience statistics.
type Result struct {
	*dissemination.Result
	// Resilience carries the fault/repair counters.
	Resilience Stats
}

// Run simulates pushing the traces through the overlay under the fault
// plan: nodes crash and rejoin per the plan, neighbors exchange
// heartbeats, dependents detect dead parents after the silence window and
// re-home to their precomputed backups, and fidelity is measured exactly
// as in dissemination.Run. lela supplies the re-homing policy (preference
// function and augmentation); a nil plan runs fault-free.
//
// The overlay is mutated by repairs, like it is by construction; callers
// wanting the pre-fault overlay must rebuild it.
func Run(o *tree.Overlay, lela *tree.LeLA, traces []*trace.Trace, p dissemination.Protocol, cfg Config, plan *Plan) (*Result, error) {
	cfg = cfg.WithDefaults()
	if lela == nil {
		lela = &tree.LeLA{}
	}
	if len(traces) == 0 {
		return nil, fmt.Errorf("resilience: no traces to run")
	}
	initial := make(map[string]float64, len(traces))
	var horizon sim.Time
	for _, tr := range traces {
		if tr.Len() == 0 {
			return nil, fmt.Errorf("resilience: trace %s is empty", tr.Item)
		}
		if _, dup := initial[tr.Item]; dup {
			return nil, fmt.Errorf("resilience: duplicate trace for item %s", tr.Item)
		}
		initial[tr.Item] = tr.Ticks[0].Value
		if end := tr.Ticks[tr.Len()-1].At; end > horizon {
			horizon = end
		}
	}
	p.Init(o, initial)

	n := len(o.Nodes)
	r := &runner{
		o: o, lela: lela, cfg: cfg,
		engine:    sim.New(),
		protocol:  p,
		stations:  make([]sim.Station, n),
		alive:     make([]bool, n),
		dead:      make(map[repository.ID]bool),
		crashedAt: make([]sim.Time, n),
		values:    make([]map[string]float64, n),
		lastHeard: make([][]sim.Time, n),
		backups:   make([][]repository.ID, n),
		orphans:   make(map[repository.ID]map[string]sim.Time),
		byRepo:    make(map[string]map[repository.ID]*coherency.Tracker),
		trackers:  make(map[string][]repoTracker),
		killed:    make([]bool, n),
	}
	for i := range r.alive {
		r.alive[i] = true
		r.lastHeard[i] = make([]sim.Time, n)
		r.values[i] = make(map[string]float64)
	}
	for x, v := range initial {
		r.values[repository.SourceID][x] = v
	}
	for _, node := range o.Repos() {
		for _, x := range node.Items() {
			if v, ok := initial[x]; ok {
				r.values[node.ID][x] = v
			}
		}
		r.backups[node.ID] = lela.BackupParents(o, node.ID, cfg.BackupK)
		for _, x := range node.NeededItems() {
			c := node.Needs[x]
			v, ok := initial[x]
			if !ok {
				return nil, fmt.Errorf("resilience: repository %d needs item %s with no trace", node.ID, x)
			}
			t := coherency.NewTracker(c, 0, v)
			r.trackers[x] = append(r.trackers[x], repoTracker{repo: node.ID, tr: t})
			m := r.byRepo[x]
			if m == nil {
				m = make(map[repository.ID]*coherency.Tracker)
				r.byRepo[x] = m
			}
			m[node.ID] = t
		}
	}

	// Durable state: open (and recover) every repository's write-ahead
	// log before the clock starts. A directory left by a previous run —
	// the full-cluster-restart case — restores here, so this run resumes
	// with the previous run's exact per-item values and edge state. The
	// source is not logged: it regenerates from the traces.
	if cfg.Durability != nil {
		r.logs = make([]*wal.Log, n)
		defer func() {
			for _, l := range r.logs {
				if l != nil {
					l.Close()
				}
			}
		}()
		for _, q := range o.Repos() {
			id := q.ID
			l, rec, err := wal.Open(filepath.Join(cfg.Durability.Dir, fmt.Sprintf("repo%03d", id)), *cfg.Durability)
			if err != nil {
				return nil, fmt.Errorf("resilience: repository %d: %w", id, err)
			}
			r.logs[id] = l
			if !rec.Empty() {
				r.restore(id, rec)
				r.res.RestoredAtStart++
				r.res.ReplayedRecords += len(rec.Batches)
			}
		}
	}

	// Source-side trace ticks (quiet ticks cost nothing).
	for _, tr := range traces {
		last := tr.Ticks[0].Value
		for _, tk := range tr.Ticks[1:] {
			if tk.Value == last {
				continue
			}
			last = tk.Value
			item, v := tr.Item, tk.Value
			r.engine.At(tk.At, func(now sim.Time) { r.sourceTick(now, item, v) })
		}
	}

	// Fault-plan events. The victim of an AutoInterior fault is resolved
	// now, against the built overlay.
	if !plan.Empty() {
		auto := busiestInterior(o)
		for _, f := range plan.Faults {
			node := f.Node
			if node == AutoInterior {
				node = auto
			}
			if node <= 0 || int(node) >= n {
				return nil, fmt.Errorf("resilience: fault targets unknown repository %d", node)
			}
			id, kill := node, f.Kill
			r.engine.At(f.At, func(now sim.Time) { r.crash(now, id, kill) })
			if f.RejoinAt > 0 {
				r.engine.At(f.RejoinAt, func(now sim.Time) { r.rejoin(now, id) })
			}
		}
	}

	// Heartbeats and watchdogs, staggered deterministically per node so
	// the detection load does not arrive in lockstep.
	// Every node — source included — runs both loops: the source has no
	// parents to watch, but it must still drop dead children to free its
	// connection slots for repairs.
	for _, node := range o.Nodes {
		id := node.ID
		offset := sim.Time((int64(id)*7919 + 13) % int64(cfg.Heartbeat))
		r.engine.At(offset, func(now sim.Time) { r.heartbeat(now, id) })
		r.engine.At(offset+cfg.Heartbeat/2, func(now sim.Time) { r.watchdog(now, id) })
	}

	r.engine.RunUntil(horizon)
	if r.walErr != nil {
		return nil, r.walErr
	}

	report := coherency.NewReport()
	items := make([]string, 0, len(r.trackers))
	for x := range r.trackers {
		items = append(items, x)
	}
	sort.Strings(items)
	for _, x := range items {
		for _, rt := range r.trackers[x] {
			report.Add(int(rt.repo), rt.tr.Fidelity(horizon))
		}
	}
	r.stats.Events = r.engine.Processed()
	if r.res.RecoverySamples > 0 {
		r.res.MeanRecovery = r.recoverySum / sim.Time(r.res.RecoverySamples)
	}
	if r.res.DiskRecoveries > 0 {
		r.res.MeanReplay = r.res.ReplayTime / sim.Time(r.res.DiskRecoveries)
	}
	name := p.Name()
	if !plan.Empty() {
		name += "+faults"
	}
	return &Result{
		Result: &dissemination.Result{
			Protocol:          name,
			Report:            report,
			Stats:             r.stats,
			Horizon:           horizon,
			SourceUtilization: r.stations[repository.SourceID].Utilization(horizon),
		},
		Resilience: r.res,
	}, nil
}

// busiestInterior returns the repository serving the most dependents (the
// AutoInterior victim), preferring lower ids on ties; when no repository
// serves anyone (a direct overlay) it falls back to repository 1.
func busiestInterior(o *tree.Overlay) repository.ID {
	best, bestChildren := repository.ID(1), 0
	for _, n := range o.Repos() {
		if c := n.NumChildren(); c > bestChildren {
			best, bestChildren = n.ID, c
		}
	}
	return best
}

type repoTracker struct {
	repo repository.ID
	tr   *coherency.Tracker
}

// runner is the per-run simulation state.
type runner struct {
	o        *tree.Overlay
	lela     *tree.LeLA
	cfg      Config
	engine   *sim.Engine
	protocol dissemination.Protocol
	stations []sim.Station

	alive     []bool
	dead      map[repository.ID]bool // same fact as alive, shaped for tree.Rehome
	crashedAt []sim.Time
	values    []map[string]float64
	lastHeard [][]sim.Time // lastHeard[a][b]: when a last heard from b
	backups   [][]repository.ID
	// orphans holds feeds awaiting a live parent, each carrying the
	// causing crash's time (0 when unknown) so a later successful retry
	// still reports the full severed duration as recovery latency.
	orphans map[repository.ID]map[string]sim.Time

	trackers map[string][]repoTracker
	byRepo   map[string]map[repository.ID]*coherency.Tracker

	// logs are the per-repository write-ahead logs (nil without
	// durability; a killed node's slot is nil while it is down). killed
	// marks nodes whose in-memory state died with the process. walErr
	// records the first log failure; the run reports it at the end.
	logs   []*wal.Log
	killed []bool
	walErr error

	stats       dissemination.Stats
	res         Stats
	recoverySum sim.Time
}

// coreHost is implemented by protocols built on the shared repository
// core (Distributed and its naive variant); durable recovery restores
// values and edge filter state straight into the core. Protocols without
// one (AllPush) recover values only.
type coreHost interface {
	Core(repository.ID) *node.Core
}

// coreOf returns the protocol's core for id, nil when the protocol has
// none.
func (r *runner) coreOf(id repository.ID) *node.Core {
	if h, ok := r.protocol.(coreHost); ok {
		return h.Core(id)
	}
	return nil
}

// walState assembles the repository's current durable state for a
// snapshot: the core's values and seeded edges when the protocol has a
// core, the runner's value map alone otherwise.
func (r *runner) walState(id repository.ID) wal.State {
	if c := r.coreOf(id); c != nil {
		st := wal.State{Values: make(map[string]float64)}
		c.DumpDurable(
			func(item string, v float64) { st.Values[item] = v },
			func(dep repository.ID, item string, last float64, seeded bool) {
				st.Edges = append(st.Edges, wal.Edge{Dep: int64(dep), Item: item, Last: last, Seeded: seeded})
			})
		return st
	}
	vals := make(map[string]float64, len(r.values[id]))
	for x, v := range r.values[id] {
		vals[x] = v
	}
	return wal.State{Values: vals}
}

// restore applies recovered durable state to a repository: the snapshot
// verbatim, then the logged batches through the core's normal pipeline
// (a ReplayTransport accepts every send, so edge filter state advances
// exactly as before the crash).
func (r *runner) restore(id repository.ID, rec *wal.Recovered) {
	c := r.coreOf(id)
	for x, v := range rec.State.Values {
		r.values[id][x] = v
		if c != nil {
			c.SetValue(x, v)
		}
	}
	if c != nil {
		for _, e := range rec.State.Edges {
			c.RestoreEdge(repository.ID(e.Dep), e.Item, e.Last, e.Seeded)
		}
	}
	for _, b := range rec.Batches {
		for _, u := range b {
			r.values[id][u.Item] = u.Value
			if c != nil {
				c.Apply(u.Item, u.Value, node.ReplayTransport{})
			}
		}
	}
}

// logDeliver appends a delivered update to the node's log and
// group-commits it (in the unbatched resilient runner a delivery is the
// batch boundary).
func (r *runner) logDeliver(id repository.ID, item string, v float64) {
	if r.logs == nil {
		return
	}
	l := r.logs[id]
	if l == nil {
		return
	}
	l.Append(item, v)
	if err := l.Commit(func() wal.State { return r.walState(id) }); err != nil && r.walErr == nil {
		r.walErr = err
	}
}

// sourceTick handles a changed value arriving at the source.
func (r *runner) sourceTick(now sim.Time, item string, v float64) {
	r.stats.SourceTicks++
	r.values[repository.SourceID][item] = v
	for _, rt := range r.trackers[item] {
		rt.tr.SourceUpdate(now, v)
	}
	if r.cfg.Observer != nil {
		r.cfg.Observer.ObserveSource(now, item, v)
	}
	fwd, checks := r.protocol.AtSource(item, v)
	r.stats.SourceChecks += uint64(checks)
	r.dispatch(now, r.o.Source(), item, v, fwd, checks)
}

// deliver handles an update copy arriving at a repository. Copies arriving
// at a dead node are dropped on the floor — exactly what a crashed process
// does with packets addressed to it.
func (r *runner) deliver(now sim.Time, node *repository.Repository, from repository.ID, item string, v float64, tag coherency.Requirement) {
	if !r.alive[node.ID] {
		r.res.DroppedDeliveries++
		return
	}
	r.lastHeard[node.ID][from] = now
	r.stats.Deliveries++
	r.values[node.ID][item] = v
	if t := r.byRepo[item][node.ID]; t != nil {
		t.RepoUpdate(now, v)
	}
	if r.cfg.Observer != nil {
		r.cfg.Observer.ObserveDeliver(now, node.ID, item, v)
	}
	fwd, checks := r.protocol.AtRepo(node, item, v, tag)
	// The group commit sits after the protocol applied the update: a
	// commit that rotates snapshots the core, which must already hold
	// this update (the record carrying it is deleted with the old
	// segment).
	r.logDeliver(node.ID, item, v)
	r.stats.RepoChecks += uint64(checks)
	r.dispatch(now, node, item, v, fwd, checks)
}

// dispatch charges computational delays and schedules the sends, exactly
// like the dissemination runner's latency/queueing models.
func (r *runner) dispatch(now sim.Time, from *repository.Repository, item string, v float64, fwd []dissemination.Forward, checks int) {
	st := &r.stations[from.ID]
	var preamble sim.Time
	if extra := checks - len(fwd); extra > 0 && r.cfg.Push.CheckFrac > 0 {
		preamble = sim.Time(float64(r.cfg.Push.CompDelay) * r.cfg.Push.CheckFrac * float64(extra))
	}
	if r.cfg.Push.Queueing {
		if preamble > 0 {
			st.Acquire(now, preamble)
		}
		for _, f := range fwd {
			done := st.Acquire(now, r.cfg.Push.CompDelay)
			r.send(done, from.ID, item, v, f)
		}
		return
	}
	st.Busy += preamble + sim.Time(len(fwd))*r.cfg.Push.CompDelay
	st.Jobs++
	depart := now + preamble
	for _, f := range fwd {
		depart += r.cfg.Push.CompDelay
		r.send(depart, from.ID, item, v, f)
	}
}

// send emits one copy departing at the given time.
func (r *runner) send(depart sim.Time, from repository.ID, item string, v float64, f dissemination.Forward) {
	r.stats.Messages++
	to := r.o.Node(f.To)
	arrive := depart + r.o.Net.Delay[from][f.To]
	tag := f.Tag
	r.engine.At(arrive, func(t sim.Time) { r.deliver(t, to, from, item, v, tag) })
}

// crash takes a node down: it stops forwarding, heartbeating and
// accepting deliveries. Its edges stay in place until neighbors detect
// the silence. A kill is a process death on top of that: every byte of
// in-memory state — values, fan-out plans, edge filter state — is gone,
// and the node's log handle dies with the process (recovery reopens the
// directory, exactly like a restarted binary would).
func (r *runner) crash(now sim.Time, id repository.ID, kill bool) {
	if !r.alive[id] {
		return
	}
	r.alive[id] = false
	r.dead[id] = true
	r.crashedAt[id] = now
	r.res.Crashes++
	if kill {
		r.res.Kills++
		r.killed[id] = true
		r.values[id] = make(map[string]float64)
		if c := r.coreOf(id); c != nil {
			c.WipeDurable()
		}
		if r.logs != nil && r.logs[id] != nil {
			// The simulated process cannot fsync on its way out; Close here
			// stands in for the OS reclaiming the descriptor. Committed
			// records are already flushed, which is all recovery needs.
			if err := r.logs[id].Close(); err != nil && r.walErr == nil {
				r.walErr = err
			}
			r.logs[id] = nil
		}
	}
	if r.cfg.Observer != nil {
		r.cfg.Observer.ObserveCrash(now, id)
	}
}

// rejoin brings a downed node back. A plain crash warm-restarts
// immediately: stale copies are kept (they were stale the moment the
// process died). A killed node restarts as a fresh process: with
// durability it first recovers from disk — reopen the log directory,
// restore the snapshot, replay the records — and completes the rejoin
// after the modeled recovery delay; without durability it completes at
// once, cold, serving nothing until feeds resync (the bug this
// machinery fixes).
func (r *runner) rejoin(now sim.Time, id repository.ID) {
	if r.alive[id] {
		return
	}
	if r.killed[id] {
		r.killed[id] = false
		if r.cfg.Durability != nil {
			l, rec, err := wal.Open(filepath.Join(r.cfg.Durability.Dir, fmt.Sprintf("repo%03d", id)), *r.cfg.Durability)
			if err != nil {
				if r.walErr == nil {
					r.walErr = fmt.Errorf("resilience: repository %d recovery: %w", id, err)
				}
				return
			}
			r.logs[id] = l
			r.restore(id, rec)
			r.res.DiskRecoveries++
			r.res.ReplayedRecords += len(rec.Batches)
			delay := r.cfg.SnapshotLoad + sim.Time(len(rec.Batches))*r.cfg.ReplayPerRecord
			r.res.ReplayTime += delay
			// The node stays down (deliveries drop, heartbeats silent)
			// while it replays; the rejoin completes when replay does.
			r.engine.At(now+delay, func(t sim.Time) { r.completeRejoin(t, id) })
			return
		}
	}
	r.completeRejoin(now, id)
}

// completeRejoin finishes a restart: the node is alive again, detaches
// from stale parents, and re-homes every feed it serves.
func (r *runner) completeRejoin(now sim.Time, id repository.ID) {
	if r.alive[id] {
		return
	}
	r.alive[id] = true
	delete(r.dead, id)
	r.crashedAt[id] = 0
	r.res.Rejoins++
	if r.cfg.Observer != nil {
		r.cfg.Observer.ObserveRejoin(now, id)
	}

	q := r.o.Node(id)
	// Detach cleanly from every old parent (some already dropped us as a
	// dead child), then re-home every item the node still serves — its own
	// needs plus anything held for surviving dependents.
	for _, n := range r.o.Nodes {
		if n.ID != id {
			n.DropDependent(id)
		}
	}
	q.Parents = map[string]repository.ID{}
	q.Liaison = repository.NoID
	for _, x := range q.Items() {
		r.rehomeFeed(now, q, x, 0)
	}
	// Fresh silence clocks: the node should not instantly "detect" peers
	// it simply was not listening to while down.
	for i := range r.lastHeard[id] {
		r.lastHeard[id][i] = now
	}
}

// heartbeat sends keep-alives from id to its current overlay neighbors
// (children and parents both, so each side can detect the other), then
// reschedules itself.
func (r *runner) heartbeat(now sim.Time, id repository.ID) {
	r.engine.At(now+r.cfg.Heartbeat, func(t sim.Time) { r.heartbeat(t, id) })
	if !r.alive[id] {
		return
	}
	neighbors := append(r.o.ChildrenOf(id), r.o.ParentsOf(id)...)
	seen := make(map[repository.ID]bool, len(neighbors))
	for _, nb := range neighbors {
		if seen[nb] {
			continue
		}
		seen[nb] = true
		r.res.Heartbeats++
		arrive := now + r.o.Net.Delay[id][nb]
		nb := nb
		r.engine.At(arrive, func(t sim.Time) {
			if r.alive[nb] {
				r.lastHeard[nb][id] = t
			}
		})
	}
}

// watchdog is the per-repository detection pass: declare silent parents
// dead and re-home their feeds, drop silent children, retry orphaned
// feeds. It reschedules itself every heartbeat interval.
func (r *runner) watchdog(now sim.Time, id repository.ID) {
	r.engine.At(now+r.cfg.Heartbeat, func(t sim.Time) { r.watchdog(t, id) })
	if !r.alive[id] {
		return
	}
	window := r.cfg.Window()
	q := r.o.Node(id)

	for _, pid := range r.o.ParentsOf(id) {
		if now-r.lastHeard[id][pid] < window {
			continue
		}
		r.res.Detections++
		r.rehomeFrom(now, q, pid)
	}
	for _, cid := range r.o.ChildrenOf(id) {
		if now-r.lastHeard[id][cid] < window {
			continue
		}
		// A silent child gets its push connection dropped, freeing the
		// slot for re-homing repairs elsewhere. If it was merely slow it
		// re-homes itself onto a backup when it notices the silence.
		q.DropDependent(cid)
		r.res.ChildDrops++
	}
	if pending := r.orphans[id]; len(pending) > 0 {
		items := make([]string, 0, len(pending))
		for x := range pending {
			items = append(items, x)
		}
		sort.Strings(items)
		for _, x := range items {
			r.rehomeFeed(now, q, x, pending[x])
		}
	}
}

// rehomeFrom re-homes every feed dependent q receives from the (detected
// dead) parent pid. The parent's crash time rides along so recovery
// latency is measured crash-to-re-home, however many retries that takes.
func (r *runner) rehomeFrom(now sim.Time, q *repository.Repository, pid repository.ID) {
	items := make([]string, 0, len(q.Parents))
	for x, p := range q.Parents {
		if p == pid {
			items = append(items, x)
		}
	}
	sort.Strings(items)
	r.o.Node(pid).DropDependent(q.ID)
	if q.Liaison == pid {
		q.Liaison = repository.NoID
	}
	var crashed sim.Time
	if !r.alive[pid] {
		crashed = r.crashedAt[pid]
	}
	for _, x := range items {
		delete(q.Parents, x)
		r.rehomeFeed(now, q, x, crashed)
	}
}

// rehomeFeed re-establishes q's feed for item x: first live precomputed
// backup with capacity, then a full re-ranking, orphaning the feed for a
// later watchdog retry when nothing has room. On success the new parent
// immediately pushes its current copy so the dependent converges without
// waiting for the next source tick. crashed is the causing crash's time
// (0 when not crash-induced); a recovery-latency sample is recorded only
// here, when the feed actually lands on a live parent.
func (r *runner) rehomeFeed(now sim.Time, q *repository.Repository, x string, crashed sim.Time) {
	var parent repository.ID = repository.NoID
	var sub map[repository.ID]bool
	for _, b := range r.backups[q.ID] {
		if !r.alive[b] {
			continue
		}
		if sub == nil {
			sub = r.o.Subtree(q.ID) // once per repair; attempts don't rewire
		}
		if err := r.lela.AdoptFeed(r.o, r.o.Node(b), q, x, sub); err == nil {
			parent = b
			break
		}
	}
	if parent == repository.NoID {
		pid, err := r.lela.Rehome(r.o, q, x, r.dead)
		if err != nil {
			if r.orphans[q.ID] == nil {
				r.orphans[q.ID] = make(map[string]sim.Time)
			}
			if _, seen := r.orphans[q.ID][x]; !seen {
				r.orphans[q.ID][x] = crashed
				r.res.Orphaned++
			}
			return
		}
		parent = pid
	}
	delete(r.orphans[q.ID], x)
	r.res.Rehomed++
	if crashed > 0 {
		sample := now - crashed
		r.recoverySum += sample
		r.res.RecoverySamples++
		if sample > r.res.MaxRecovery {
			r.res.MaxRecovery = sample
		}
	}
	// The adoption handshake counts as hearing from the new parent —
	// without this the stale silence clock could instantly "detect" it.
	r.lastHeard[q.ID][parent] = now
	r.lastHeard[parent][q.ID] = now
	// Sync push: the new parent ships its current copy through the normal
	// cost model — it queues at the parent's station like any other copy.
	v, ok := r.values[parent][x]
	if !ok {
		v = r.values[repository.SourceID][x]
	}
	// Re-seed the protocol's per-edge filter state to the synced value: a
	// revived edge (crash-and-rejoin back onto the old parent) would
	// otherwise filter against its pre-crash state and withhold updates.
	if er, ok := r.protocol.(edgeResetter); ok {
		er.ResetEdge(parent, q.ID, x, v)
	}
	r.dispatch(now, r.o.Node(parent), x, v, []dissemination.Forward{{To: q.ID}}, 0)
}

// edgeResetter is implemented by protocols with per-edge filter state
// (Distributed and its naive variant); stateless protocols need nothing.
type edgeResetter interface {
	ResetEdge(from, to repository.ID, x string, v float64)
}
