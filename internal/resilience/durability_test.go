package resilience

import (
	"math"
	"path/filepath"
	"testing"

	"d3t/internal/dissemination"
	"d3t/internal/repository"
	"d3t/internal/sim"
	"d3t/internal/wal"
)

// lastSeen records, per (repo, item), the last delivered value — the
// ground truth a killed repository's disk state must reproduce.
type lastSeen struct {
	until  sim.Time
	values map[repository.ID]map[string]float64
}

func (o *lastSeen) ObserveSource(sim.Time, string, float64) {}
func (o *lastSeen) ObserveCrash(sim.Time, repository.ID)    {}
func (o *lastSeen) ObserveRejoin(sim.Time, repository.ID)   {}
func (o *lastSeen) ObserveDeliver(now sim.Time, id repository.ID, item string, v float64) {
	if o.until > 0 && now > o.until {
		return
	}
	m := o.values[id]
	if m == nil {
		m = make(map[string]float64)
		o.values[id] = m
	}
	m[item] = v
}

func newLastSeen(until sim.Time) *lastSeen {
	return &lastSeen{until: until, values: make(map[repository.ID]map[string]float64)}
}

// TestKillRecoverFromDisk is the tentpole scenario at the simulator
// level: an interior node is killed (process death, all in-memory state
// lost) and recovers from its write-ahead log. The run must count the
// kill and the disk recovery, replay records, charge the modeled replay
// delay, and end with fidelity comparable to a plain crash-and-rejoin.
func TestKillRecoverFromDisk(t *testing.T) {
	run := func(spec string, dur *wal.Options) *Result {
		o, l, traces := fixture(t, 20, 10, 4, 600, 5)
		plan, err := ParsePlan(spec, 20, 600, sim.Second, 5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(o, l, traces, dissemination.NewDistributed(), Config{Durability: dur}, plan)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.Validate(); err != nil {
			t.Fatalf("overlay invalid after recovery: %v", err)
		}
		return res
	}

	warm := run("crash:max@50+120", nil)
	recovered := run("kill:max@50+120", &wal.Options{Dir: t.TempDir(), Fsync: wal.PolicyNever})

	s := recovered.Resilience
	if s.Kills != 1 || s.Crashes != 1 {
		t.Fatalf("kills=%d crashes=%d, want 1/1", s.Kills, s.Crashes)
	}
	if s.DiskRecoveries != 1 {
		t.Fatalf("disk recoveries = %d, want 1", s.DiskRecoveries)
	}
	if s.ReplayedRecords == 0 {
		t.Fatal("recovery replayed no records; the victim's deliveries were not logged")
	}
	if s.ReplayTime <= 0 || s.MeanReplay <= 0 {
		t.Fatalf("replay time not charged: total=%v mean=%v", s.ReplayTime, s.MeanReplay)
	}
	if s.Rejoins != 1 {
		t.Fatalf("rejoins = %d, want 1", s.Rejoins)
	}
	if got, base := recovered.Report.SystemFidelity(), warm.Report.SystemFidelity(); got < base-0.05 {
		t.Errorf("recovered-from-disk fidelity %.4f more than 5%% below warm-restart %.4f", got, base)
	}
}

// TestKillWithoutDurabilityRejoinsCold is the bug's counterfactual: the
// same process death without a log recovers nothing from disk — the node
// rejoins with an empty store and only converges through re-home syncs.
func TestKillWithoutDurabilityRejoinsCold(t *testing.T) {
	o, l, traces := fixture(t, 20, 10, 4, 600, 5)
	plan, err := ParsePlan("kill:max@50+120", 20, 600, sim.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(o, l, traces, dissemination.NewDistributed(), Config{}, plan)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Resilience
	if s.Kills != 1 || s.Rejoins != 1 {
		t.Fatalf("kills=%d rejoins=%d, want 1/1", s.Kills, s.Rejoins)
	}
	if s.DiskRecoveries != 0 || s.ReplayedRecords != 0 {
		t.Fatalf("cold kill recovered from disk: %+v", s)
	}
}

// TestKilledNodeDiskStateBitIdentical pins the acceptance criterion
// end-to-end: kill a node with no rejoin, then open its log directory
// the way recovery would and compare — every per-item value recovered
// from disk is bit-identical to the last value the pre-crash process
// received, and the snapshot's edge state round-trips exactly.
func TestKilledNodeDiskStateBitIdentical(t *testing.T) {
	const crashTick = 80
	dir := t.TempDir()
	o, l, traces := fixture(t, 20, 10, 4, 600, 5)
	victim := busiestInterior(o)
	plan, err := ParsePlan("kill:max@80", 20, 600, sim.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	obs := newLastSeen(crashTick * sim.Second)
	// A small snapshot interval so the disk state crosses at least one
	// snapshot+replay boundary, not just a flat log.
	dur := &wal.Options{Dir: dir, SnapshotEvery: 8, Fsync: wal.PolicyNever}
	if _, err := Run(o, l, traces, dissemination.NewDistributed(), Config{Observer: obs, Durability: dur}, plan); err != nil {
		t.Fatal(err)
	}

	want := obs.values[victim]
	if len(want) == 0 {
		t.Fatalf("victim %d received nothing before the kill", victim)
	}
	_, rec, err := wal.Open(filepath.Join(dir, "repo"+threeDigits(victim)), *dur)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]float64, len(rec.State.Values))
	for x, v := range rec.State.Values {
		got[x] = v
	}
	for _, b := range rec.Batches {
		for _, u := range b {
			got[u.Item] = u.Value
		}
	}
	for x, w := range want {
		g, ok := got[x]
		if !ok {
			t.Fatalf("item %s missing from disk state", x)
		}
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("item %s: recovered %x, pre-crash %x — not bit-identical", x, math.Float64bits(g), math.Float64bits(w))
		}
	}
	// Items on disk the observer never saw delivered must sit at their
	// seeded initial values (the run starts fully synchronized).
	initial := make(map[string]float64, len(traces))
	for _, tr := range traces {
		initial[tr.Item] = tr.Ticks[0].Value
	}
	for x, g := range got {
		if _, delivered := want[x]; delivered {
			continue
		}
		if math.Float64bits(g) != math.Float64bits(initial[x]) {
			t.Fatalf("undelivered item %s recovered as %g, want its initial %g", x, g, initial[x])
		}
	}
	if rec.SnapshotSeq < 2 {
		t.Fatalf("snapshot never rotated (seq %d); the boundary went untested", rec.SnapshotSeq)
	}
}

func threeDigits(id repository.ID) string {
	d := []byte{'0', '0', '0'}
	for i, n := 2, int(id); i >= 0 && n > 0; i, n = i-1, n/10 {
		d[i] = byte('0' + n%10)
	}
	return string(d)
}

// TestKillDuringBackupRepair: a second process death lands while the
// first victim's dependents are still mid-repair (inside the detection
// window), so some re-homing attempts race a dying backup. The run must
// complete, recover both from disk, and leave a valid overlay.
func TestKillDuringBackupRepair(t *testing.T) {
	o, l, traces := fixture(t, 20, 10, 4, 600, 5)
	victim := busiestInterior(o)
	// Second victim: the first live backup the victim's dependents would
	// try, killed one heartbeat after the first death — inside the
	// silence window, while repairs are in flight.
	second := repository.ID(1)
	if second == victim {
		second = 2
	}
	plan := &Plan{Spec: "staggered-kills", Faults: []Fault{
		{Node: victim, At: 50 * sim.Second, RejoinAt: 170 * sim.Second, Kill: true},
		{Node: second, At: 53 * sim.Second, RejoinAt: 180 * sim.Second, Kill: true},
	}}
	res, err := Run(o, l, traces, dissemination.NewDistributed(),
		Config{Durability: &wal.Options{Dir: t.TempDir(), Fsync: wal.PolicyNever}}, plan)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Resilience
	if s.Kills != 2 || s.DiskRecoveries != 2 {
		t.Fatalf("kills=%d diskRecoveries=%d, want 2/2", s.Kills, s.DiskRecoveries)
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("overlay invalid after overlapping kill/repair: %v", err)
	}
}

// TestFullClusterRestart: a second run over the same log directory is a
// full-cluster restart — every repository must restore its previous
// run's state from disk at startup, all replaying concurrently with the
// run's construction (the -race matrix covers this file).
func TestFullClusterRestart(t *testing.T) {
	dir := t.TempDir()
	dur := &wal.Options{Dir: dir, SnapshotEvery: 16, Fsync: wal.PolicyNever}
	first, l1, traces := fixture(t, 20, 10, 4, 400, 7)
	res1, err := Run(first, l1, traces, dissemination.NewDistributed(), Config{Durability: dur}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Resilience.RestoredAtStart != 0 {
		t.Fatalf("fresh directory restored %d repositories", res1.Resilience.RestoredAtStart)
	}

	second, l2, traces2 := fixture(t, 20, 10, 4, 400, 7)
	res2, err := Run(second, l2, traces2, dissemination.NewDistributed(), Config{Durability: dur}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resilience.RestoredAtStart == 0 {
		t.Fatal("restart restored nothing from the previous run's logs")
	}
	if res2.Resilience.ReplayedRecords == 0 {
		t.Fatal("restart replayed no records")
	}
}

// TestDurabilityOffByteIdentical: the Durability field is inert when
// nil — same fidelity, same message count, same stats as a run without
// it (the goldens' guarantee at the runner level).
func TestDurabilityOffByteIdentical(t *testing.T) {
	run := func(dur *wal.Options) *Result {
		o, l, traces := fixture(t, 16, 8, 3, 400, 6)
		plan, err := ParsePlan("crash:max@50+100", 16, 400, sim.Second, 6)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(o, l, traces, dissemination.NewDistributed(), Config{Durability: dur}, plan)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	logged := run(&wal.Options{Dir: t.TempDir(), Fsync: wal.PolicyNever})
	if plain.Report.SystemFidelity() != logged.Report.SystemFidelity() {
		t.Error("durability changed fidelity")
	}
	if plain.Stats.Messages != logged.Stats.Messages {
		t.Error("durability changed message count")
	}
	if plain.Resilience.Rehomed != logged.Resilience.Rehomed {
		t.Error("durability changed repair behavior")
	}
}
