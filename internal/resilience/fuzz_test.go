package resilience

import (
	"testing"

	"d3t/internal/sim"
)

// FuzzParsePlan throws arbitrary specs and sizes at the fault-plan
// grammar. The parser must never panic or hang, and every plan it does
// accept must be well-formed: sorted by crash time, victims within the
// population, rejoins after crashes. Two of the guards it exercises were
// fuzz finds: a non-finite churn rate made the Poisson generator loop
// forever (the arrival step collapsed to zero), and a pathological rate
// materialized an unbounded fault schedule.
func FuzzParsePlan(f *testing.F) {
	for _, spec := range []string{
		"", "none",
		"crash:3@50", "crash:max@50", "crash:3@50+100", "crash:1@1+1",
		"kill:3@50", "kill:max@50+100", "kill:@", "kill:0@0",
		"churn:2", "churn:2:30", "churn:0", "churn:0.5:0.5",
		"crash:@", "crash:0@0", "crash:3@-1", "crash:3@50+0",
		"churn:-1", "churn:Inf", "churn:NaN", "churn:1e300", "churn:2:Inf",
		"churn:2:NaN", "churn:2:-5", "bogus:1", "crash", ":", "crash:3@50+x",
	} {
		f.Add(spec, 10, 100)
	}
	f.Fuzz(func(t *testing.T, spec string, repos, ticks int) {
		// The harness sizes the run within realistic bounds; the spec
		// string is the fuzzed surface.
		repos = 1 + abs(repos)%1000
		ticks = 2 + abs(ticks)%10000
		plan, err := ParsePlan(spec, repos, ticks, sim.Second, 1)
		if err != nil {
			return
		}
		if plan == nil {
			return // "" / "none"
		}
		horizon := sim.Time(ticks) * sim.Second
		for i, ft := range plan.Faults {
			if i > 0 && ft.At < plan.Faults[i-1].At {
				t.Fatalf("spec %q: fault %d at %v before fault %d at %v", spec, i, ft.At, i-1, plan.Faults[i-1].At)
			}
			if ft.Node != AutoInterior && (ft.Node < 1 || int(ft.Node) > repos) {
				t.Fatalf("spec %q: fault %d victim %v outside 1..%d", spec, i, ft.Node, repos)
			}
			if ft.At <= 0 || ft.At >= horizon+sim.Second {
				t.Fatalf("spec %q: fault %d at %v outside the run", spec, i, ft.At)
			}
			if ft.RejoinAt != 0 && ft.RejoinAt <= ft.At {
				t.Fatalf("spec %q: fault %d rejoins at %v, not after its crash at %v", spec, i, ft.RejoinAt, ft.At)
			}
		}
		if len(plan.Faults) > 1_100_000 {
			t.Fatalf("spec %q: %d faults exceeds the schedule cap", spec, len(plan.Faults))
		}
		// The plan must be deterministic in its inputs.
		again, err := ParsePlan(spec, repos, ticks, sim.Second, 1)
		if err != nil || again == nil || len(again.Faults) != len(plan.Faults) {
			t.Fatalf("spec %q: re-parse diverged (%v)", spec, err)
		}
		for i := range plan.Faults {
			if plan.Faults[i] != again.Faults[i] {
				t.Fatalf("spec %q: fault %d differs across parses", spec, i)
			}
		}
	})
}

func abs(v int) int {
	if v < 0 {
		if v == -v { // math.MinInt
			return 0
		}
		return -v
	}
	return v
}
