package dissemination

import (
	"fmt"
	"testing"

	"d3t/internal/netsim"
	"d3t/internal/repository"
	"d3t/internal/sim"
	"d3t/internal/trace"
	"d3t/internal/tree"
)

func TestPullFidelityImprovesWithShorterTTR(t *testing.T) {
	fx := buildFixture(t, 15, 10, 4, 0.8, nil, 400, 21)
	run := func(ttr sim.Time) *Result {
		res, err := RunPull(fx.overlay, fx.traces, PullConfig{
			Mode: StaticTTR, TTR: ttr, CompDelay: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(2 * sim.Second)
	slow := run(30 * sim.Second)
	if fast.Report.SystemFidelity() <= slow.Report.SystemFidelity() {
		t.Errorf("TTR 2s fidelity %.4f not above TTR 30s fidelity %.4f",
			fast.Report.SystemFidelity(), slow.Report.SystemFidelity())
	}
	if fast.Stats.Messages <= slow.Stats.Messages {
		t.Errorf("TTR 2s messages %d not above TTR 30s messages %d",
			fast.Stats.Messages, slow.Stats.Messages)
	}
}

func TestPullLosesToPushAtEqualConditions(t *testing.T) {
	// Push delivers exactly the needed updates as they happen; periodic
	// pull must miss some windows. This is the motivation for the paper's
	// push architecture.
	fx := buildFixture(t, 15, 10, 4, 0.8, nil, 400, 22)
	push, err := Run(fx.overlay, fx.traces, NewDistributed(), zeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	pull, err := RunPull(fx.overlay, fx.traces, PullConfig{Mode: StaticTTR, TTR: 5 * sim.Second, CompDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	if pull.Report.SystemFidelity() >= push.Report.SystemFidelity() {
		t.Errorf("pull fidelity %.4f not below push fidelity %.4f",
			pull.Report.SystemFidelity(), push.Report.SystemFidelity())
	}
}

func TestAdaptiveTTRBeatsStaticAtMatchedBudget(t *testing.T) {
	// The adaptive scheme spends polls where the data moves, so its edge
	// shows on a workload with heterogeneous volatility: half the items
	// move fast relative to the tolerance, half barely move. A static TTR
	// wastes its budget polling quiet items; adaptive reallocates it.
	fx := mixedVolatilityFixture(t)
	adaptive, err := RunPull(fx.overlay, fx.traces, PullConfig{
		Mode: AdaptiveTTR, TTR: 10 * sim.Second,
		TTRMin: 1 * sim.Second, TTRMax: 60 * sim.Second, CompDelay: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Derive the static interval that spends the same budget: pollers
	// poll every TTR, two messages per poll.
	var pollers uint64
	for _, n := range fx.overlay.Repos() {
		pollers += uint64(len(n.Serving))
	}
	ttrEq := sim.Time(uint64(adaptive.Horizon) * 2 * pollers / adaptive.Stats.Messages)
	static, err := RunPull(fx.overlay, fx.traces, PullConfig{
		Mode: StaticTTR, TTR: ttrEq, CompDelay: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("adaptive: fidelity %.4f msgs %d; static(TTR=%v): fidelity %.4f msgs %d",
		adaptive.Report.SystemFidelity(), adaptive.Stats.Messages,
		ttrEq, static.Report.SystemFidelity(), static.Stats.Messages)
	// Budgets should land close.
	lo, hi := static.Stats.Messages*7/10, static.Stats.Messages*13/10
	if adaptive.Stats.Messages < lo || adaptive.Stats.Messages > hi {
		t.Logf("budget match is loose: adaptive %d vs static %d", adaptive.Stats.Messages, static.Stats.Messages)
	}
	if adaptive.Report.SystemFidelity() < static.Report.SystemFidelity()-0.01 {
		t.Errorf("adaptive fidelity %.4f below budget-matched static %.4f",
			adaptive.Report.SystemFidelity(), static.Report.SystemFidelity())
	}
}

func TestLeaseMatchesDistributedFidelityWithRenewals(t *testing.T) {
	fx := buildFixture(t, 15, 10, 4, 0.5, nil, 300, 24)
	lease, err := RunLease(fx.overlay, fx.traces, LeaseConfig{
		Duration: 30 * sim.Second, Push: zeroDelay,
	})
	if err != nil {
		t.Fatal(err)
	}
	push, err := Run(fx.overlay, fx.traces, NewDistributed(), zeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Report.SystemFidelity() != push.Report.SystemFidelity() {
		t.Errorf("lease fidelity %.4f != distributed %.4f",
			lease.Report.SystemFidelity(), push.Report.SystemFidelity())
	}
	if lease.Stats.Messages <= push.Stats.Messages {
		t.Errorf("lease messages %d not above push %d (renewals missing)",
			lease.Stats.Messages, push.Stats.Messages)
	}
	if lease.Protocol != "lease-push" {
		t.Errorf("protocol name %q", lease.Protocol)
	}
}

// mixedVolatilityFixture builds 10 repositories that each need all 10
// items at tolerance 0.15: five items are volatile (10-cent steps every
// second), five are quiet (1-cent steps, 95% hold).
func mixedVolatilityFixture(t *testing.T) fixture {
	t.Helper()
	const nRepos, nItems = 10, 10
	traces := make([]*trace.Trace, nItems)
	for i := range traces {
		cfg := trace.GenConfig{
			Item:  fmt.Sprintf("ITEM%03d", i),
			Model: trace.BoundedWalk,
			Ticks: 600, Interval: sim.Second,
			Start: 50, Low: 48, High: 52,
			Seed: 23_000 + int64(i),
		}
		if i < nItems/2 {
			cfg.Step, cfg.HoldProb = 0.10, 0 // volatile
		} else {
			cfg.Step, cfg.HoldProb = 0.01, 0.95 // quiet
		}
		traces[i] = trace.MustGenerate(cfg)
	}
	repos := make([]*repository.Repository, nRepos)
	for i := range repos {
		repos[i] = repository.New(repository.ID(i+1), 4)
		for _, tr := range traces {
			repos[i].Needs[tr.Item] = 0.15
			repos[i].Serving[tr.Item] = 0.15
		}
	}
	net := netsim.Uniform(nRepos, 0)
	o, err := (&tree.LeLA{Seed: 23}).Build(net, repos, 4)
	if err != nil {
		t.Fatal(err)
	}
	return fixture{overlay: o, traces: traces}
}

func TestPullRejectsBadInput(t *testing.T) {
	fx := buildFixture(t, 5, 4, 2, 0.5, nil, 50, 25)
	if _, err := RunPull(fx.overlay, nil, PullConfig{}); err == nil {
		t.Error("empty trace set accepted")
	}
	if _, err := RunPull(fx.overlay, fx.traces[:1], PullConfig{}); err == nil {
		t.Error("missing traces for needed items accepted")
	}
}

func TestPullModeString(t *testing.T) {
	if StaticTTR.String() != "pull-static" || AdaptiveTTR.String() != "pull-adaptive" {
		t.Error("unexpected mode names")
	}
	if PullMode(9).String() == "" {
		t.Error("unknown mode produced empty name")
	}
}

// TestAdaptiveTTRPinsAtMinUnderFastChange drives the adaptive rule
// directly: an item drifting far beyond the tolerance every window must
// pin the polling interval at TTRMin and hold it there.
func TestAdaptiveTTRPinsAtMinUnderFastChange(t *testing.T) {
	cfg := PullConfig{Mode: AdaptiveTTR}.withDefaults()
	p := &poller{cfg: cfg, c: 0.05, ttr: cfg.TTR}
	now := sim.Time(0)
	v := 100.0
	for i := 0; i < 20; i++ {
		now += p.ttr
		v += 50 // enormous drift relative to c = 0.05
		p.adapt(now, v)
		p.lastVal, p.lastPoll = v, now
	}
	if p.ttr != cfg.TTRMin {
		t.Errorf("ttr settled at %v under fast change, want TTRMin %v", p.ttr, cfg.TTRMin)
	}
	// It must stay clamped, not dip below the floor.
	now += p.ttr
	v += 50
	p.adapt(now, v)
	if p.ttr < cfg.TTRMin {
		t.Errorf("ttr %v fell below TTRMin %v", p.ttr, cfg.TTRMin)
	}
}

// TestAdaptiveTTRRelaxesToMaxWhenQuiescent: a value that never moves must
// walk the interval up to TTRMax and stop there.
func TestAdaptiveTTRRelaxesToMaxWhenQuiescent(t *testing.T) {
	cfg := PullConfig{Mode: AdaptiveTTR}.withDefaults()
	p := &poller{cfg: cfg, c: 0.05, ttr: cfg.TTRMin, lastVal: 100}
	now := sim.Time(0)
	prev := p.ttr
	for i := 0; i < 50; i++ {
		now += p.ttr
		p.adapt(now, 100) // no change
		if p.ttr < prev {
			t.Fatalf("quiescent adapt shrank the interval: %v -> %v", prev, p.ttr)
		}
		prev = p.ttr
		p.lastPoll = now
	}
	if p.ttr != cfg.TTRMax {
		t.Errorf("ttr settled at %v while quiescent, want TTRMax %v", p.ttr, cfg.TTRMax)
	}
}

// TestAdaptiveTTRRecoversFromQuiescence closes the loop: after relaxing
// to TTRMax, renewed fast change must drive the interval back down to
// TTRMin within a bounded number of polls.
func TestAdaptiveTTRRecoversFromQuiescence(t *testing.T) {
	cfg := PullConfig{Mode: AdaptiveTTR}.withDefaults()
	p := &poller{cfg: cfg, c: 0.05, ttr: cfg.TTRMax, lastVal: 100}
	now := sim.Time(0)
	v := 100.0
	for i := 0; i < 30; i++ {
		now += p.ttr
		v += 50
		p.adapt(now, v)
		p.lastVal, p.lastPoll = v, now
		if p.ttr == cfg.TTRMin {
			return
		}
	}
	t.Errorf("ttr only reached %v after 30 fast polls, want TTRMin %v", p.ttr, cfg.TTRMin)
}
