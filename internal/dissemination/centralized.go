package dissemination

import (
	"sort"

	"d3t/internal/coherency"
	"d3t/internal/repository"
	"d3t/internal/tree"
)

// Centralized is the source-based dissemination algorithm of Section 5.2.
// The source tracks every unique coherency tolerance registered for each
// item and the last value disseminated for that tolerance. On an update it
// finds all violated tolerances, tags the update with the largest one
// (c_max), and pushes it down the tree; every node forwards a tagged
// update to exactly the dependents whose tolerance is at least as
// stringent as the tag (c_dep <= c_max).
//
// Compared with Distributed it concentrates both state (the tolerance
// lists) and checks (one per unique tolerance per update) at the source —
// the scalability cost Section 6.3.4 measures.
type Centralized struct {
	overlay *tree.Overlay
	// tolerances[x] is the ascending list of unique tolerances for item x.
	tolerances map[string][]coherency.Requirement
	// sent[x][c] is the last value disseminated for tolerance c of item x.
	sent map[string]map[coherency.Requirement]float64
}

// NewCentralized returns the source-based algorithm.
func NewCentralized() *Centralized { return &Centralized{} }

// Name implements Protocol.
func (c *Centralized) Name() string { return "centralized" }

// Init implements Protocol: collect the unique serving tolerances of every
// repository per item — the list the paper's source maintains.
func (c *Centralized) Init(o *tree.Overlay, initial map[string]float64) {
	c.overlay = o
	c.tolerances = make(map[string][]coherency.Requirement)
	c.sent = make(map[string]map[coherency.Requirement]float64)
	uniq := make(map[string]map[coherency.Requirement]bool)
	for _, n := range o.Repos() {
		for x, tol := range n.Serving {
			m := uniq[x]
			if m == nil {
				m = make(map[coherency.Requirement]bool)
				uniq[x] = m
			}
			m[tol] = true
		}
	}
	for x, set := range uniq {
		list := make([]coherency.Requirement, 0, len(set))
		for tol := range set {
			list = append(list, tol)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		c.tolerances[x] = list
		sentx := make(map[coherency.Requirement]float64, len(list))
		for _, tol := range list {
			sentx[tol] = initial[x]
		}
		c.sent[x] = sentx
	}
}

// AtSource implements Protocol: find c_max, record the value against every
// tolerance it satisfies, and tag the outgoing copies. Each unique
// tolerance examined counts as one source check.
func (c *Centralized) AtSource(x string, v float64) ([]Forward, int) {
	tols := c.tolerances[x]
	checks := len(tols)
	sentx := c.sent[x]
	cmax := coherency.Requirement(-1)
	for _, tol := range tols { // ascending
		if coherency.NeedsUpdate(v, sentx[tol], tol) {
			cmax = tol
		}
	}
	if cmax < 0 {
		return nil, checks
	}
	// The update is "sent for" every tolerance up to and including c_max.
	for _, tol := range tols {
		if tol > cmax {
			break
		}
		sentx[tol] = v
	}
	return c.fanOut(c.overlay.Source(), x, cmax), checks
}

// AtRepo implements Protocol: forward the tagged update to dependents with
// tolerance <= tag. The comparisons are trivial; the paper attributes the
// checking overhead to the source, so repositories report zero checks.
func (c *Centralized) AtRepo(node *repository.Repository, x string, _ float64, tag coherency.Requirement) ([]Forward, int) {
	return c.fanOut(node, x, tag), 0
}

func (c *Centralized) fanOut(node *repository.Repository, x string, tag coherency.Requirement) []Forward {
	var fwd []Forward
	for _, dep := range node.Dependents[x] {
		cDep, ok := c.overlay.Node(dep).ServingTolerance(x)
		if !ok {
			continue
		}
		if cDep.AtLeastAsStringentAs(tag) {
			fwd = append(fwd, Forward{To: dep, Tag: tag})
		}
	}
	return fwd
}
