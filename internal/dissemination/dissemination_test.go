package dissemination

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"d3t/internal/netsim"
	"d3t/internal/repository"
	"d3t/internal/sim"
	"d3t/internal/trace"
	"d3t/internal/tree"
)

// fixture builds an overlay plus trace set for tests: n repositories over
// a zero- or nonzero-delay network, items traced items, LeLA at the given
// coop degree.
type fixture struct {
	overlay *tree.Overlay
	traces  []*trace.Trace
}

func buildFixture(t *testing.T, n, items, coop int, stringentFrac float64, net *netsim.Network, ticks int, seed int64) fixture {
	t.Helper()
	if net == nil {
		net = netsim.Uniform(n, 0)
	}
	repos := make([]*repository.Repository, n)
	for i := range repos {
		repos[i] = repository.New(repository.ID(i+1), coop)
	}
	traces := trace.GenerateSet(items, ticks, sim.Second, seed)
	catalogue := make([]string, items)
	for i, tr := range traces {
		catalogue[i] = tr.Item
	}
	repository.AssignNeeds(repos, repository.Workload{
		Items: catalogue, SubscribeProb: 0.5, StringentFrac: stringentFrac, Seed: seed + 1,
	})
	o, err := (&tree.LeLA{Seed: seed}).Build(net, repos, coop)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	return fixture{overlay: o, traces: traces}
}

// zeroDelay is the ideal-conditions config of Section 5: no computational
// delay at all.
var zeroDelay = Config{CompDelay: -1}

func TestDistributedPerfectFidelityAtZeroDelay(t *testing.T) {
	fx := buildFixture(t, 20, 12, 3, 0.6, nil, 400, 1)
	res, err := Run(fx.overlay, fx.traces, NewDistributed(), zeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if f := res.Report.SystemFidelity(); f != 1 {
		t.Errorf("distributed fidelity %v under ideal conditions, want exactly 1 (loss %.4f%%)",
			f, res.Report.LossPercent())
	}
}

func TestCentralizedPerfectFidelityAtZeroDelay(t *testing.T) {
	fx := buildFixture(t, 20, 12, 3, 0.6, nil, 400, 2)
	res, err := Run(fx.overlay, fx.traces, NewCentralized(), zeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if f := res.Report.SystemFidelity(); f != 1 {
		t.Errorf("centralized fidelity %v under ideal conditions, want exactly 1 (loss %.4f%%)",
			f, res.Report.LossPercent())
	}
}

// TestPerfectFidelityProperty fuzzes the guarantee across overlay shapes,
// coherency mixes and seeds: both exact algorithms must deliver 100%
// fidelity whenever delays are zero.
func TestPerfectFidelityProperty(t *testing.T) {
	f := func(seed int64, coopRaw, tRaw uint8) bool {
		coop := 1 + int(coopRaw)%8
		strFrac := float64(tRaw%101) / 100
		n, items := 12, 8
		net := netsim.Uniform(n, 0)
		repos := make([]*repository.Repository, n)
		for i := range repos {
			repos[i] = repository.New(repository.ID(i+1), coop)
		}
		traces := trace.GenerateSet(items, 150, sim.Second, seed)
		catalogue := make([]string, items)
		for i, tr := range traces {
			catalogue[i] = tr.Item
		}
		repository.AssignNeeds(repos, repository.Workload{
			Items: catalogue, SubscribeProb: 0.5, StringentFrac: strFrac, Seed: seed + 1,
		})
		o, err := (&tree.LeLA{Seed: seed}).Build(net, repos, coop)
		if err != nil {
			return false
		}
		for _, p := range []Protocol{NewDistributed(), NewCentralized()} {
			res, err := Run(o, traces, p, zeroDelay)
			if err != nil || res.Report.SystemFidelity() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// figure4 builds the exact scenario of Figure 4: source -> P (c_p) ->
// Q (c_q) with the paper's update sequence 1, 1.2, 1.4, 1.5, 1.7, 2.0 and
// tolerances 0.3/0.5, all scaled by 100 so every comparison the example
// depends on (|1.7 - 1.4| vs 0.3 in particular) is exact in float64.
func figure4(t *testing.T) (*tree.Overlay, []*trace.Trace) {
	t.Helper()
	net := netsim.Uniform(2, 0)
	p := repository.New(1, 1)
	q := repository.New(2, 1)
	p.Needs["X"], p.Serving["X"] = 30, 30
	q.Needs["X"], q.Serving["X"] = 50, 50
	o, err := (&tree.LeLA{}).Build(net, []*repository.Repository{p, q}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Coop degree 1 forces the chain source -> P -> Q.
	if q.Parents["X"] != 1 || p.Parents["X"] != repository.SourceID {
		t.Fatalf("fixture is not the chain: P parent %v, Q parent %v", p.Parents["X"], q.Parents["X"])
	}
	tr := &trace.Trace{Item: "X"}
	for i, v := range []float64{100, 120, 140, 150, 170, 200} {
		tr.Ticks = append(tr.Ticks, trace.Tick{At: sim.Time(i) * sim.Second, Value: v})
	}
	return o, []*trace.Trace{tr}
}

func TestNaiveMissesUpdatesOnFigure4(t *testing.T) {
	o, traces := figure4(t)

	naive, err := Run(o, traces, NewNaive(), zeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Report.SystemFidelity() >= 1 {
		t.Error("Eq.3-only filtering should lose fidelity on the Figure 4 sequence even with zero delays")
	}

	dist, err := Run(o, traces, NewDistributed(), zeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if f := dist.Report.SystemFidelity(); f != 1 {
		t.Errorf("distributed fidelity %v on Figure 4, want 1", f)
	}
	cent, err := Run(o, traces, NewCentralized(), zeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if f := cent.Report.SystemFidelity(); f != 1 {
		t.Errorf("centralized fidelity %v on Figure 4, want 1", f)
	}

	// Eq. 7 costs extra messages — that is its price.
	if dist.Stats.Messages <= naive.Stats.Messages {
		t.Errorf("distributed sent %d messages, naive %d; the guard must cost something here",
			dist.Stats.Messages, naive.Stats.Messages)
	}
}

func TestCentralizedAndDistributedMessageParity(t *testing.T) {
	// Section 6.3.4 / Figure 11b: both exact approaches send (nearly) the
	// same number of messages.
	fx := buildFixture(t, 25, 15, 4, 0.5, nil, 600, 3)
	dist, err := Run(fx.overlay, fx.traces, NewDistributed(), zeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	cent, err := Run(fx.overlay, fx.traces, NewCentralized(), zeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	d, c := float64(dist.Stats.Messages), float64(cent.Stats.Messages)
	if math.Abs(d-c) > 0.15*math.Max(d, c) {
		t.Errorf("message counts diverge: distributed %v, centralized %v", d, c)
	}
}

func TestCentralizedDoesMoreSourceChecks(t *testing.T) {
	// Figure 11a: the centralized source checks every unique tolerance per
	// update — substantially more work at the source than the distributed
	// source's per-dependent checks.
	fx := buildFixture(t, 40, 20, 4, 0.5, nil, 600, 4)
	dist, err := Run(fx.overlay, fx.traces, NewDistributed(), zeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	cent, err := Run(fx.overlay, fx.traces, NewCentralized(), zeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if cent.Stats.SourceChecks <= dist.Stats.SourceChecks {
		t.Errorf("centralized source checks %d not above distributed %d",
			cent.Stats.SourceChecks, dist.Stats.SourceChecks)
	}
	// And the distributed approach spreads checking over repositories.
	if dist.Stats.RepoChecks == 0 {
		t.Error("distributed run performed no repository checks")
	}
	if cent.Stats.RepoChecks != 0 {
		t.Errorf("centralized charged %d checks to repositories, want 0", cent.Stats.RepoChecks)
	}
}

func TestAllPushSendsEverythingEverywhere(t *testing.T) {
	fx := buildFixture(t, 15, 10, 3, 0.3, nil, 300, 5)
	all, err := Run(fx.overlay, fx.traces, NewAllPush(), zeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := Run(fx.overlay, fx.traces, NewDistributed(), zeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if all.Stats.Messages <= dist.Stats.Messages {
		t.Errorf("all-push messages %d not above filtered %d", all.Stats.Messages, dist.Stats.Messages)
	}
	if f := all.Report.SystemFidelity(); f != 1 {
		t.Errorf("all-push with zero delays should still be perfect, got %v", f)
	}
}

func TestFilteringBeatsAllPushUnderLoad(t *testing.T) {
	// Figure 8's mechanism: with real computational delays, pushing every
	// update clogs the source and loses fidelity versus filtered push.
	// A direct tree over 30 items keeps the unfiltered source saturated.
	n := 20
	net := netsim.Uniform(n, 20*sim.Millisecond)
	repos := make([]*repository.Repository, n)
	for i := range repos {
		repos[i] = repository.New(repository.ID(i+1), n)
	}
	traces := trace.GenerateSet(70, 500, sim.Second, 6)
	catalogue := make([]string, len(traces))
	for i, tr := range traces {
		catalogue[i] = tr.Item
	}
	repository.AssignNeeds(repos, repository.Workload{
		Items: catalogue, SubscribeProb: 0.5, StringentFrac: 0, Seed: 7,
	})
	o, err := (&tree.DirectBuilder{}).Build(net, repos, n)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{CompDelay: sim.Milliseconds(12.5), Queueing: true}
	all, err := Run(o, traces, NewAllPush(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := Run(o, traces, NewDistributed(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Report.LossPercent() >= all.Report.LossPercent() {
		t.Errorf("filtered loss %.2f%% not below all-push loss %.2f%% (all-push utilization %.2f)",
			dist.Report.LossPercent(), all.Report.LossPercent(), all.SourceUtilization)
	}
}

func TestDelaysReduceFidelity(t *testing.T) {
	mk := func(delay sim.Time) float64 {
		net := netsim.Uniform(15, delay)
		fx := buildFixture(t, 15, 10, 4, 1.0, net, 400, 7)
		res, err := Run(fx.overlay, fx.traces, NewDistributed(), Config{CompDelay: -1})
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.LossPercent()
	}
	l0 := mk(0)
	l200 := mk(200 * sim.Millisecond)
	l2000 := mk(2000 * sim.Millisecond)
	if l0 != 0 {
		t.Errorf("zero-delay loss %.3f%%, want 0", l0)
	}
	if !(l200 > l0) || !(l2000 > l200) {
		t.Errorf("loss not increasing with delay: %.3f%% -> %.3f%% -> %.3f%%", l0, l200, l2000)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	fx := buildFixture(t, 5, 4, 2, 0.5, nil, 50, 8)
	if _, err := Run(fx.overlay, nil, NewDistributed(), zeroDelay); err == nil {
		t.Error("empty trace set accepted")
	}
	empty := []*trace.Trace{{Item: "X"}}
	if _, err := Run(fx.overlay, empty, NewDistributed(), zeroDelay); err == nil {
		t.Error("empty trace accepted")
	}
	dup := []*trace.Trace{fx.traces[0], fx.traces[0]}
	if _, err := Run(fx.overlay, dup, NewDistributed(), zeroDelay); err == nil {
		t.Error("duplicate traces accepted")
	}
	// Needing an item with no trace must fail.
	if _, err := Run(fx.overlay, fx.traces[:1], NewDistributed(), zeroDelay); err == nil {
		t.Error("missing trace for a needed item accepted")
	}
}

func TestQuietTicksCostNothing(t *testing.T) {
	// A flat trace (one initial value, never changing) produces no source
	// ticks, no checks, no messages.
	net := netsim.Uniform(3, 0)
	repos := make([]*repository.Repository, 3)
	for i := range repos {
		repos[i] = repository.New(repository.ID(i+1), 2)
		repos[i].Needs["X"], repos[i].Serving["X"] = 0.1, 0.1
	}
	o, err := (&tree.LeLA{}).Build(net, repos, 2)
	if err != nil {
		t.Fatal(err)
	}
	flat := &trace.Trace{Item: "X"}
	for i := 0; i < 100; i++ {
		flat.Ticks = append(flat.Ticks, trace.Tick{At: sim.Time(i) * sim.Second, Value: 42})
	}
	res, err := Run(o, []*trace.Trace{flat}, NewDistributed(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SourceTicks != 0 || res.Stats.Messages != 0 {
		t.Errorf("flat trace produced %d ticks, %d messages; want 0, 0",
			res.Stats.SourceTicks, res.Stats.Messages)
	}
	if f := res.Report.SystemFidelity(); f != 1 {
		t.Errorf("flat trace fidelity %v, want 1", f)
	}
}

func TestSourceUtilizationReflectsLoad(t *testing.T) {
	// A direct tree with stringent tolerances and 12.5 ms per send should
	// keep the source visibly busy.
	n := 20
	net := netsim.Uniform(n, 10*sim.Millisecond)
	repos := make([]*repository.Repository, n)
	for i := range repos {
		repos[i] = repository.New(repository.ID(i+1), n)
	}
	traces := trace.GenerateSet(10, 300, sim.Second, 9)
	catalogue := make([]string, len(traces))
	for i, tr := range traces {
		catalogue[i] = tr.Item
	}
	repository.AssignNeeds(repos, repository.Workload{
		Items: catalogue, SubscribeProb: 0.5, StringentFrac: 1, Seed: 10,
	})
	o, err := (&tree.DirectBuilder{}).Build(net, repos, n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(o, traces, NewDistributed(), Config{CompDelay: sim.Milliseconds(12.5), Queueing: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SourceUtilization <= 0.02 {
		t.Errorf("source utilization %.3f suspiciously low for a direct tree", res.SourceUtilization)
	}
	if res.SourceUtilization > 1 {
		t.Errorf("source utilization %.3f above 1", res.SourceUtilization)
	}
}

func TestProtocolNames(t *testing.T) {
	names := map[string]Protocol{
		"distributed": NewDistributed(),
		"naive-eq3":   NewNaive(),
		"centralized": NewCentralized(),
		"all-push":    NewAllPush(),
	}
	for want, p := range names {
		if got := p.Name(); got != want {
			t.Errorf("protocol name %q, want %q", got, want)
		}
	}
}

func ExampleRun() {
	net := netsim.Uniform(2, 0)
	p := repository.New(1, 1)
	q := repository.New(2, 1)
	p.Needs["MSFT"], p.Serving["MSFT"] = 30, 30
	q.Needs["MSFT"], q.Serving["MSFT"] = 50, 50
	o, _ := (&tree.LeLA{}).Build(net, []*repository.Repository{p, q}, 1)

	tr := &trace.Trace{Item: "MSFT"}
	for i, v := range []float64{100, 120, 140, 150, 170, 200} {
		tr.Ticks = append(tr.Ticks, trace.Tick{At: sim.Time(i) * sim.Second, Value: v})
	}
	res, _ := Run(o, []*trace.Trace{tr}, NewDistributed(), Config{CompDelay: -1})
	fmt.Printf("fidelity %.2f, %d messages\n", res.Report.SystemFidelity(), res.Stats.Messages)
	// Output: fidelity 1.00, 4 messages
}
