package dissemination

import (
	"fmt"
	"sort"

	"d3t/internal/coherency"
	"d3t/internal/obs"
	"d3t/internal/repository"
	"d3t/internal/sim"
	"d3t/internal/trace"
	"d3t/internal/tree"
)

// Config sets the delay model of a simulation run (Section 6.1).
type Config struct {
	// CompDelay is the computational delay a node incurs per dependent it
	// disseminates an update to — checking plus preparing the message.
	// The paper's default is 12.5 ms.
	CompDelay sim.Time
	// CheckFrac is the fraction of CompDelay charged for a dependent that
	// is checked but not forwarded. The paper folds checking into the
	// 12.5 ms per-dissemination cost, so the default is 0; the ablation
	// benches raise it.
	CheckFrac float64
	// Queueing selects the node service model. The default (false)
	// matches the paper: dissemination cost is a per-update latency — the
	// k-th copy of an update leaves k computational delays after the
	// update arrives, so a node with many dependents delays its later
	// dependents, but successive updates do not queue behind each other.
	// With Queueing true the node is a strict serial server (a
	// sim.Station): back-to-back updates queue, and an overcommitted node
	// grows an unbounded backlog — a harsher model useful for studying
	// saturation (the ablation-queueing experiment).
	Queueing bool
	// Observer, when set, watches the run's source ticks and repository
	// deliveries — the client-serving layer hangs sessions off it. A nil
	// observer leaves the run byte-identical to one without the field.
	Observer Observer
	// ItemFilter, when set, restricts the run to the items it accepts:
	// only their source ticks are scheduled and only their fidelity is
	// tracked, while the full trace set still supplies initial values and
	// the observation horizon. The sharded ingest runner uses it to give
	// each shard the same overlay and time base but a disjoint item
	// partition; per-item independence (each item's dissemination tree and
	// filter state never touches another's) is what makes the partition
	// exact. A nil filter accepts everything.
	ItemFilter func(item string) bool
	// Obs, when set, attaches the observability layer: per-node counters
	// (through the protocol's node cores, where it has them), per-hop and
	// source→node latency histograms, per-edge delay EWMAs,
	// fidelity-violation durations, and — when Obs.Tracer is armed —
	// sampled update traces. Observation is passive: a run with Obs set
	// produces byte-identical results to one without.
	Obs *obs.Tree
}

// accepts reports whether the configured item filter admits the item.
func (c Config) accepts(item string) bool {
	return c.ItemFilter == nil || c.ItemFilter(item)
}

// Observer receives the run's observable events in simulation order. The
// engine is single-threaded, so implementations need no locking.
type Observer interface {
	// ObserveSource fires when the source's value of item changes.
	ObserveSource(now sim.Time, item string, v float64)
	// ObserveDeliver fires when an update copy lands at a live repository.
	ObserveDeliver(now sim.Time, repo repository.ID, item string, v float64)
}

// WithDefaults resolves the config's delay conventions: zero CompDelay
// means the paper's 12.5 ms; negative means "explicitly zero" (the
// ideal-conditions runs that verify the 100%-fidelity guarantees use
// it). Exported so alternative runners (resilience) share the exact same
// defaulting.
func (c Config) WithDefaults() Config {
	switch {
	case c.CompDelay == 0:
		c.CompDelay = sim.Milliseconds(12.5)
	case c.CompDelay < 0:
		c.CompDelay = 0
	}
	return c
}

// Stats counts the work a run performed.
type Stats struct {
	// Messages is the number of update copies pushed over overlay edges.
	Messages uint64
	// SourceChecks counts filtering checks performed at the source
	// (per-dependent for the distributed algorithm, per-unique-tolerance
	// for the centralized one — the Figure 11a comparison).
	SourceChecks uint64
	// RepoChecks counts filtering checks performed at repositories.
	RepoChecks uint64
	// Deliveries counts updates actually delivered to repositories within
	// the observation horizon.
	Deliveries uint64
	// SourceTicks counts trace ticks that changed an item's value.
	SourceTicks uint64
	// Events is the number of simulation events executed.
	Events uint64
}

// Result is the outcome of one simulation run.
type Result struct {
	// Protocol is the protocol name.
	Protocol string
	// Report holds per-repository fidelity.
	Report *coherency.Report
	// Stats holds work counters.
	Stats Stats
	// Horizon is the observation end time (the last trace tick).
	Horizon sim.Time
	// SourceUtilization is the fraction of the horizon the source's
	// processing resource was busy — the bottleneck indicator behind the
	// rising arm of the U-curve.
	SourceUtilization float64
}

// Run simulates pushing the traces through the overlay with the given
// protocol and returns fidelity and work statistics. The overlay must
// contain a parent path for every needed item (tree builders guarantee
// this; Run validates lazily by panicking inside the engine otherwise).
//
// Time zero holds the initial value of every trace at every node; fidelity
// is observed from time zero to the last trace tick.
func Run(o *tree.Overlay, traces []*trace.Trace, p Protocol, cfg Config) (*Result, error) {
	cfg = cfg.WithDefaults()
	if len(traces) == 0 {
		return nil, fmt.Errorf("dissemination: no traces to run")
	}

	// Initial values and observation horizon.
	initial := make(map[string]float64, len(traces))
	var horizon sim.Time
	for _, tr := range traces {
		if tr.Len() == 0 {
			return nil, fmt.Errorf("dissemination: trace %s is empty", tr.Item)
		}
		if _, dup := initial[tr.Item]; dup {
			return nil, fmt.Errorf("dissemination: duplicate trace for item %s", tr.Item)
		}
		initial[tr.Item] = tr.Ticks[0].Value
		if end := tr.Ticks[tr.Len()-1].At; end > horizon {
			horizon = end
		}
	}

	p.Init(o, initial)
	if cfg.Obs != nil {
		// Protocols carrying node cores (the distributed algorithm) attach
		// per-node observers so the decision counters land in obs too.
		if po, ok := p.(interface{ SetObs(*obs.Tree) }); ok {
			po.SetObs(cfg.Obs)
		}
	}

	// Fidelity trackers for every (repository, needed item) pair, at the
	// repository's own client-facing tolerance.
	trackers := make(map[string][]repoTracker) // item -> interested repositories
	byRepo := make(map[string]map[repository.ID]*coherency.Tracker)
	for _, n := range o.Repos() {
		for _, x := range n.NeededItems() {
			if !cfg.accepts(x) {
				continue
			}
			c := n.Needs[x]
			v, ok := initial[x]
			if !ok {
				return nil, fmt.Errorf("dissemination: repository %d needs item %s with no trace", n.ID, x)
			}
			t := coherency.NewTracker(c, 0, v)
			if cfg.Obs != nil {
				on := cfg.Obs.Node(n.ID)
				t.OnViolationEnd = func(start, end sim.Time) {
					on.ObserveViolation(int64(end - start))
				}
			}
			trackers[x] = append(trackers[x], repoTracker{repo: n.ID, tr: t})
			m := byRepo[x]
			if m == nil {
				m = make(map[repository.ID]*coherency.Tracker)
				byRepo[x] = m
			}
			m[n.ID] = t
		}
	}

	r := &runner{
		overlay:  o,
		cfg:      cfg,
		engine:   sim.New(),
		protocol: p,
		stations: make([]sim.Station, len(o.Nodes)),
		trackers: trackers,
		byRepo:   byRepo,
	}
	if cfg.Obs != nil {
		// Node ids are dense (stations are indexed by them), so the per-id
		// observer lookup on the delivery path is a slice read.
		r.obsNodes = make([]*obs.Node, len(o.Nodes))
		for id := range r.obsNodes {
			r.obsNodes[id] = cfg.Obs.Node(repository.ID(id))
		}
		r.tracer = cfg.Obs.TracerOrNil()
	}

	// Schedule the source-side trace ticks. Quiet ticks (no value change)
	// cost nothing: the paper's sources react to new data values.
	for _, tr := range traces {
		if !cfg.accepts(tr.Item) {
			continue
		}
		last := tr.Ticks[0].Value
		for _, tk := range tr.Ticks[1:] {
			if tk.Value == last {
				continue
			}
			last = tk.Value
			item, v := tr.Item, tk.Value
			r.engine.At(tk.At, func(now sim.Time) { r.sourceTick(now, item, v) })
		}
	}

	r.engine.RunUntil(horizon)

	report := coherency.NewReport()
	items := make([]string, 0, len(trackers))
	for x := range trackers {
		items = append(items, x)
	}
	sort.Strings(items)
	for _, x := range items {
		for _, rt := range trackers[x] {
			report.Add(int(rt.repo), rt.tr.Fidelity(horizon))
		}
	}
	r.stats.Events = r.engine.Processed()
	return &Result{
		Protocol:          p.Name(),
		Report:            report,
		Stats:             r.stats,
		Horizon:           horizon,
		SourceUtilization: r.stations[repository.SourceID].Utilization(horizon),
	}, nil
}

type repoTracker struct {
	repo repository.ID
	tr   *coherency.Tracker
}

// runner is the per-run simulation state.
type runner struct {
	overlay  *tree.Overlay
	cfg      Config
	engine   *sim.Engine
	protocol Protocol
	stations []sim.Station
	trackers map[string][]repoTracker
	byRepo   map[string]map[repository.ID]*coherency.Tracker
	stats    Stats
	// obsNodes (indexed by node id) and tracer are non-nil only when
	// cfg.Obs is set; the delivery path guards with one nil check.
	obsNodes []*obs.Node
	tracer   *obs.Tracer
}

// emeta is the observability context riding alongside an update through
// the event graph: when it left the source, and its trace id (0 when
// the update is not sampled).
type emeta struct {
	born sim.Time
	tid  uint64
}

// sourceTick handles a changed value arriving at the source.
func (r *runner) sourceTick(now sim.Time, item string, v float64) {
	r.stats.SourceTicks++
	for _, rt := range r.trackers[item] {
		rt.tr.SourceUpdate(now, v)
	}
	if r.cfg.Observer != nil {
		r.cfg.Observer.ObserveSource(now, item, v)
	}
	m := emeta{born: now}
	if r.tracer != nil {
		m.tid = r.tracer.Sample(item, repository.SourceID, int64(now))
	}
	fwd, checks := r.protocol.AtSource(item, v)
	r.stats.SourceChecks += uint64(checks)
	r.dispatch(now, r.overlay.Source(), item, v, fwd, checks, m)
}

// deliver handles an update copy arriving at a repository: record it for
// fidelity, then let the protocol fan it out further. hop is the
// propagation delay since the copy's sender received (or sourced) the
// update, from is the sender — the edge the copy arrived over.
func (r *runner) deliver(now sim.Time, node *repository.Repository, item string, v float64, tag coherency.Requirement, from repository.ID, hop sim.Time, m emeta) {
	r.stats.Deliveries++
	if t := r.byRepo[item][node.ID]; t != nil {
		t.RepoUpdate(now, v)
	}
	if r.obsNodes != nil {
		on := r.obsNodes[node.ID]
		on.ObserveHop(int64(hop))
		on.ObserveSourceLatency(int64(now - m.born))
		on.ObserveEdgeDelay(from, int64(hop))
		r.tracer.Hop(m.tid, node.ID, int64(now))
	}
	if r.cfg.Observer != nil {
		r.cfg.Observer.ObserveDeliver(now, node.ID, item, v)
	}
	fwd, checks := r.protocol.AtRepo(node, item, v, tag)
	r.stats.RepoChecks += uint64(checks)
	r.dispatch(now, node, item, v, fwd, checks, m)
}

// dispatch charges the node's computational delays for the checks and
// sends, and schedules the resulting deliveries after the per-pair
// communication delay.
//
// In the default (latency) model the k-th forwarded copy departs k
// computational delays after the update arrives: a node with many
// dependents makes its later dependents stale — the computational-delay
// effect of Section 3 — without successive updates queueing. In the
// queueing model the node is a strict serial server and backlog carries
// across updates.
func (r *runner) dispatch(now sim.Time, from *repository.Repository, item string, v float64, fwd []Forward, checks int, m emeta) {
	st := &r.stations[from.ID]
	var preamble sim.Time
	if extra := checks - len(fwd); extra > 0 && r.cfg.CheckFrac > 0 {
		preamble = sim.Time(float64(r.cfg.CompDelay) * r.cfg.CheckFrac * float64(extra))
	}
	if r.cfg.Queueing {
		if preamble > 0 {
			st.Acquire(now, preamble)
		}
		for _, f := range fwd {
			done := st.Acquire(now, r.cfg.CompDelay)
			r.send(done, now, from, item, v, f, m)
		}
		return
	}
	// Latency model: account the work for utilization reporting, then
	// schedule departures relative to the update's arrival only.
	st.Busy += preamble + sim.Time(len(fwd))*r.cfg.CompDelay
	st.Jobs++
	depart := now + preamble
	for _, f := range fwd {
		depart += r.cfg.CompDelay
		r.send(depart, now, from, item, v, f, m)
	}
}

// send emits one copy departing at the given time and schedules its
// delivery after the wire delay. recvAt is when the sender received the
// update — the anchor of the hop-delay measurement, so a hop includes
// the sender's computational delay exactly as a wall-clock backend
// would observe it.
func (r *runner) send(depart, recvAt sim.Time, from *repository.Repository, item string, v float64, f Forward, m emeta) {
	r.stats.Messages++
	to := r.overlay.Node(f.To)
	arrive := depart + r.overlay.Net.Delay[from.ID][f.To]
	tag := f.Tag
	if r.obsNodes == nil {
		// Without obs the delivery closure must not grow: every in-flight
		// copy is one of these, and capturing the hop metadata here costs
		// ~32 B per message across the whole simulation.
		r.engine.At(arrive, func(t sim.Time) { r.deliver(t, to, item, v, tag, 0, 0, emeta{}) })
		return
	}
	fromID := from.ID
	hop := arrive - recvAt
	r.engine.At(arrive, func(t sim.Time) { r.deliver(t, to, item, v, tag, fromID, hop, m) })
}
