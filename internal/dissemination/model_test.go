package dissemination

import (
	"testing"

	"d3t/internal/coherency"
	"d3t/internal/netsim"
	"d3t/internal/repository"
	"d3t/internal/sim"
	"d3t/internal/trace"
	"d3t/internal/tree"
)

// starOverlay builds a source directly serving n repositories, all
// needing item X at tolerance c.
func starOverlay(t *testing.T, n int, c float64, delay sim.Time) *tree.Overlay {
	t.Helper()
	net := netsim.Uniform(n, delay)
	repos := make([]*repository.Repository, n)
	for i := range repos {
		repos[i] = repository.New(repository.ID(i+1), n)
		repos[i].Needs["X"] = coherency.Requirement(c)
		repos[i].Serving["X"] = coherency.Requirement(c)
	}
	o, err := (&tree.DirectBuilder{}).Build(net, repos, n)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// rampTrace moves from 0 upward in unit steps every second — every tick
// violates any tolerance below 1.
func rampTrace(ticks int) *trace.Trace {
	tr := &trace.Trace{Item: "X"}
	for i := 0; i < ticks; i++ {
		tr.Ticks = append(tr.Ticks, trace.Tick{At: sim.Time(i) * sim.Second, Value: float64(i)})
	}
	return tr
}

func TestLatencyModelStalenessGrowsWithFanOut(t *testing.T) {
	// In the per-update latency model, the k-th dependent of an update
	// waits k computational delays: wider stars are staler on average.
	loss := func(n int) float64 {
		o := starOverlay(t, n, 0.5, 0)
		res, err := Run(o, []*trace.Trace{rampTrace(200)}, NewDistributed(), Config{
			CompDelay: sim.Milliseconds(12.5),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.LossPercent()
	}
	l2, l20, l60 := loss(2), loss(20), loss(60)
	if !(l2 < l20 && l20 < l60) {
		t.Errorf("loss not increasing with fan-out: %v, %v, %v", l2, l20, l60)
	}
}

func TestQueueingModelSaturates(t *testing.T) {
	// With strict queueing, a star whose per-update work exceeds the
	// inter-update gap grows an unbounded backlog; the latency model with
	// identical parameters stays bounded. 60 dependents x 12.5 ms =
	// 750 ms of work per 1000 ms update interval per item... with one
	// item ramping every second the star is at 75% load; to saturate,
	// use two items.
	const n = 60
	o := starOverlay(t, n, 0.5, 0)
	for _, r := range o.Repos() {
		r.Needs["Y"], r.Serving["Y"] = 0.5, 0.5
		o.Source().AddDependent("Y", r.ID)
		r.Parents["Y"] = repository.SourceID
	}
	tr2 := rampTrace(200)
	y := &trace.Trace{Item: "Y", Ticks: append([]trace.Tick(nil), tr2.Ticks...)}
	y.Item = "Y"
	traces := []*trace.Trace{rampTrace(200), y}

	lat, err := Run(o, traces, NewDistributed(), Config{CompDelay: sim.Milliseconds(12.5)})
	if err != nil {
		t.Fatal(err)
	}
	que, err := Run(o, traces, NewDistributed(), Config{CompDelay: sim.Milliseconds(12.5), Queueing: true})
	if err != nil {
		t.Fatal(err)
	}
	if que.Report.LossPercent() <= lat.Report.LossPercent()+5 {
		t.Errorf("queueing loss %.2f%% not far above latency-model loss %.2f%% despite 150%% load",
			que.Report.LossPercent(), lat.Report.LossPercent())
	}
}

func TestStatsConsistency(t *testing.T) {
	fx := buildFixture(t, 20, 12, 4, 0.7, nil, 400, 31)
	res, err := Run(fx.overlay, fx.traces, NewDistributed(), zeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	// At zero delay everything sent is delivered within the horizon,
	// except copies sent exactly at the horizon boundary.
	if res.Stats.Deliveries > res.Stats.Messages {
		t.Errorf("deliveries %d exceed messages %d", res.Stats.Deliveries, res.Stats.Messages)
	}
	if res.Stats.Messages-res.Stats.Deliveries > res.Stats.Messages/100 {
		t.Errorf("too many undelivered at zero delay: %d of %d",
			res.Stats.Messages-res.Stats.Deliveries, res.Stats.Messages)
	}
	if res.Stats.SourceTicks == 0 || res.Stats.Events == 0 {
		t.Error("zero ticks or events recorded")
	}
}

func TestDeeperRepositoriesAreStaler(t *testing.T) {
	// Build a 6-deep chain with uniform delays and compare per-repository
	// fidelity by depth: every hop adds staleness.
	const n = 6
	net := netsim.Uniform(n, 100*sim.Millisecond)
	repos := make([]*repository.Repository, n)
	for i := range repos {
		repos[i] = repository.New(repository.ID(i+1), 1)
		repos[i].Needs["X"], repos[i].Serving["X"] = 0.5, 0.5
	}
	o, err := (&tree.LeLA{}).Build(net, repos, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(o, []*trace.Trace{rampTrace(300)}, NewDistributed(), Config{
		CompDelay: sim.Milliseconds(12.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = 2
	for id := 1; id <= n; id++ {
		f, ok := res.Report.RepoFidelity(id)
		if !ok {
			t.Fatalf("no fidelity for repo %d", id)
		}
		if f > prev+1e-9 {
			t.Errorf("repo %d (deeper) has HIGHER fidelity %v than its parent %v", id, f, prev)
		}
		prev = f
	}
}
