package dissemination

import (
	"testing"

	"d3t/internal/netsim"
	"d3t/internal/repository"
	"d3t/internal/trace"
	"d3t/internal/tree"
)

// TestPeerToPeerDissemination exercises the paper's closing observation
// ("this paper could also have been titled: Selective Peer-to-Peer
// Dissemination of Streaming Data"): repository A serves B item X while B
// serves A item Y — mutual peers, legal because each item's d3t is a
// separate tree and only per-item chains must be acyclic.
func TestPeerToPeerDissemination(t *testing.T) {
	net := netsim.Uniform(2, 0)
	a := repository.New(1, 2)
	b := repository.New(2, 2)
	a.Needs["X"], a.Serving["X"] = 0.1, 0.1
	a.Needs["Y"], a.Serving["Y"] = 0.5, 0.5
	b.Needs["X"], b.Serving["X"] = 0.5, 0.5
	b.Needs["Y"], b.Serving["Y"] = 0.1, 0.1

	o, err := newPeerOverlay(net, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("mutual peering rejected by validation: %v", err)
	}

	mk := func(item string, seed int64) *trace.Trace {
		return trace.MustGenerate(trace.GenConfig{
			Item: item, Ticks: 300, Start: 50, Low: 49, High: 51, Step: 0.2, Seed: seed,
		})
	}
	traces := []*trace.Trace{mk("X", 1), mk("Y", 2)}
	res, err := Run(o, traces, NewDistributed(), zeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if f := res.Report.SystemFidelity(); f != 1 {
		t.Errorf("peer overlay fidelity %v under ideal conditions, want 1", f)
	}
	// Both directions carried traffic.
	if res.Stats.Messages < 4 {
		t.Errorf("only %d messages through the peer overlay", res.Stats.Messages)
	}
}

// newPeerOverlay hand-wires: source -> A -> B for X, source -> B -> A
// for Y.
func newPeerOverlay(net *netsim.Network, a, b *repository.Repository) (*tree.Overlay, error) {
	// Build a throwaway overlay to get a source node wired consistently,
	// then wire the cross edges manually.
	o, err := (&tree.DirectBuilder{}).Build(net, []*repository.Repository{a, b}, 2)
	if err != nil {
		return nil, err
	}
	src := o.Source()
	// DirectBuilder made the source serve everything directly; rewire so
	// the second hop of each item goes through the peer.
	src.DropDependent(a.ID)
	src.DropDependent(b.ID)
	src.AddDependent("X", a.ID)
	a.Parents["X"] = src.ID
	a.AddDependent("X", b.ID)
	b.Parents["X"] = a.ID
	src.AddDependent("Y", b.ID)
	b.Parents["Y"] = src.ID
	b.AddDependent("Y", a.ID)
	a.Parents["Y"] = b.ID
	a.Level, b.Level = 1, 1
	return o, nil
}

// TestPerItemCycleStillRejected: peering must not excuse a genuine cycle
// within one item's tree.
func TestPerItemCycleStillRejected(t *testing.T) {
	net := netsim.Uniform(2, 0)
	a := repository.New(1, 2)
	b := repository.New(2, 2)
	a.Needs["X"], a.Serving["X"] = 0.1, 0.1
	b.Needs["X"], b.Serving["X"] = 0.1, 0.1
	o, err := (&tree.DirectBuilder{}).Build(net, []*repository.Repository{a, b}, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := o.Source()
	src.DropDependent(a.ID)
	src.DropDependent(b.ID)
	// A <-> B for the same item: a cycle with no path to the source.
	a.AddDependent("X", b.ID)
	b.Parents["X"] = a.ID
	b.AddDependent("X", a.ID)
	a.Parents["X"] = b.ID
	if err := o.Validate(); err == nil {
		t.Error("per-item cycle accepted by validation")
	}
}
