package dissemination

import (
	"fmt"
	"testing"

	"d3t/internal/netsim"
	"d3t/internal/obs"
	"d3t/internal/sim"
)

// TestObsPassive pins the observability contract at the sim backend: a
// run with an obs tree attached produces exactly the same result as a
// run without one.
func TestObsPassive(t *testing.T) {
	fx := buildFixture(t, 20, 12, 3, 0.6, netsim.Uniform(21, sim.Milliseconds(40)), 400, 3)
	plain, err := Run(fx.overlay, fx.traces, NewDistributed(), Config{})
	if err != nil {
		t.Fatal(err)
	}

	fx2 := buildFixture(t, 20, 12, 3, 0.6, netsim.Uniform(21, sim.Milliseconds(40)), 400, 3)
	tree := obs.NewTree()
	tree.Tracer = obs.NewTracer(5)
	observed, err := Run(fx2.overlay, fx2.traces, NewDistributed(), Config{Obs: tree})
	if err != nil {
		t.Fatal(err)
	}

	if fmt.Sprintf("%+v", plain.Stats) != fmt.Sprintf("%+v", observed.Stats) {
		t.Fatalf("obs changed run stats:\nplain:    %+v\nobserved: %+v", plain.Stats, observed.Stats)
	}
	if plain.Report.SystemFidelity() != observed.Report.SystemFidelity() {
		t.Fatalf("obs changed fidelity: %v vs %v", plain.Report.SystemFidelity(), observed.Report.SystemFidelity())
	}
}

// TestObsSimBackend checks what the sim backend feeds the layer: core
// decision counters, per-hop and source-latency histograms on
// repositories, per-edge delay EWMAs keyed by the upstream parent, and
// sampled traces with monotone hop stamps.
func TestObsSimBackend(t *testing.T) {
	fx := buildFixture(t, 20, 12, 3, 0.6, netsim.Uniform(21, sim.Milliseconds(40)), 400, 4)
	tree := obs.NewTree()
	tree.Tracer = obs.NewTracer(3)
	res, err := Run(fx.overlay, fx.traces, NewDistributed(), Config{Obs: tree})
	if err != nil {
		t.Fatal(err)
	}

	snap := tree.Snapshot(int64(res.Horizon))
	var received, forwarded, hops, edges uint64
	for _, n := range snap.Nodes {
		received += n.Counters.Received
		forwarded += n.Counters.DepForwarded
		hops += n.Hop.Count
		edges += uint64(len(n.EdgeDelayMs))
		if n.ID != 0 && n.Hop.Count > 0 && n.Hop.P50Ms <= 0 {
			t.Errorf("node %v: %d hop samples but p50 = %v", n.ID, n.Hop.Count, n.Hop.P50Ms)
		}
		for peer, d := range n.EdgeDelayMs {
			if d < 40 { // every hop includes ≥ the 40ms wire delay
				t.Errorf("node %v edge from %v: delay EWMA %vms below the wire delay", n.ID, peer, d)
			}
		}
	}
	if received == 0 || forwarded == 0 {
		t.Fatalf("core counters did not reach obs: received=%d forwarded=%d", received, forwarded)
	}
	if hops != res.Stats.Deliveries {
		t.Fatalf("hop samples %d != deliveries %d", hops, res.Stats.Deliveries)
	}
	if edges == 0 {
		t.Fatalf("no per-edge delay EWMAs recorded")
	}

	if len(snap.Traces) == 0 {
		t.Fatalf("tracer armed but no traces collected")
	}
	multi := false
	for _, tr := range snap.Traces {
		if len(tr.Hops) == 0 {
			t.Fatalf("trace %d has no hops", tr.ID)
		}
		if tr.Hops[0].Node != 0 {
			t.Errorf("trace %d does not start at the source: %+v", tr.ID, tr.Hops[0])
		}
		for i := 1; i < len(tr.Hops); i++ {
			if tr.Hops[i].At < tr.Hops[0].At {
				t.Errorf("trace %d hop %d precedes its source stamp", tr.ID, i)
			}
		}
		if len(tr.Hops) > 2 {
			multi = true
		}
	}
	if !multi {
		t.Errorf("no trace crossed more than one edge — fixture too shallow for the tracer test")
	}

	// Violation durations: with 40ms delays some violations must close.
	_, _, _, viol := tree.Merged()
	if viol.Count == 0 {
		t.Errorf("no fidelity-violation intervals recorded despite 40ms delays")
	}
}
