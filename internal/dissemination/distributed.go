package dissemination

import (
	"d3t/internal/coherency"
	"d3t/internal/repository"
	"d3t/internal/tree"
)

// Distributed is the repository-based dissemination algorithm of Section
// 5.1: each node forwards an update to a dependent when Eq. (3) — the
// dependent's tolerance is violated — or Eq. (7) — withholding it risks a
// missed update — holds. With UseEq7 false it degrades to the naive
// Eq.3-only filter, which cannot guarantee fidelity even with zero delays
// (Figure 4); that variant exists for the ablation and the tests.
type Distributed struct {
	// UseEq7 enables the missed-update guard. The real algorithm has it
	// on; turning it off yields the naive baseline.
	UseEq7 bool

	overlay *tree.Overlay
	sent    lastSent
}

// NewDistributed returns the paper's distributed algorithm.
func NewDistributed() *Distributed { return &Distributed{UseEq7: true} }

// NewNaive returns the Eq.3-only variant.
func NewNaive() *Distributed { return &Distributed{UseEq7: false} }

// Name implements Protocol.
func (d *Distributed) Name() string {
	if d.UseEq7 {
		return "distributed"
	}
	return "naive-eq3"
}

// Init implements Protocol.
func (d *Distributed) Init(o *tree.Overlay, initial map[string]float64) {
	d.overlay = o
	d.sent = initLastSent(o, initial)
}

// AtSource implements Protocol. The source holds the exact value, so its
// own tolerance in Eq. (7) is zero and the filter reduces to Eq. (3).
func (d *Distributed) AtSource(x string, v float64) ([]Forward, int) {
	return d.decide(d.overlay.Source(), x, v, 0)
}

// ResetEdge re-seeds the per-edge filter state for item x after overlay
// repair re-homes a dependent: the last value "sent" over the (possibly
// brand-new, possibly re-adopted) edge is the value the parent just
// synced. Without this, an edge revived after crash-and-rejoin would
// filter against its pre-crash state and could withhold updates the
// dependent needs.
func (d *Distributed) ResetEdge(from, to repository.ID, x string, v float64) {
	d.sent.set(from, to, x, v)
}

// AtRepo implements Protocol.
func (d *Distributed) AtRepo(node *repository.Repository, x string, v float64, _ coherency.Requirement) ([]Forward, int) {
	cSelf, ok := node.ServingTolerance(x)
	if !ok {
		return nil, 0
	}
	return d.decide(node, x, v, cSelf)
}

func (d *Distributed) decide(node *repository.Repository, x string, v float64, cSelf coherency.Requirement) ([]Forward, int) {
	deps := node.Dependents[x]
	var fwd []Forward
	for _, dep := range deps {
		cDep, ok := d.overlay.Node(dep).ServingTolerance(x)
		if !ok {
			continue // should not happen in a validated overlay
		}
		last := d.sent.get(node.ID, dep, x)
		forward := coherency.NeedsUpdate(v, last, cDep)
		if !forward && d.UseEq7 {
			forward = coherency.RisksMissedUpdate(v, last, cDep, cSelf)
		}
		if forward {
			fwd = append(fwd, Forward{To: dep})
			d.sent.set(node.ID, dep, x, v)
		}
	}
	return fwd, len(deps)
}

// AllPush is the Figure 8 baseline: no filtering at all; every update of
// an item flows to every repository interested in it.
type AllPush struct {
	overlay *tree.Overlay
}

// NewAllPush returns the unfiltered baseline.
func NewAllPush() *AllPush { return &AllPush{} }

// Name implements Protocol.
func (a *AllPush) Name() string { return "all-push" }

// Init implements Protocol.
func (a *AllPush) Init(o *tree.Overlay, _ map[string]float64) { a.overlay = o }

// AtSource implements Protocol.
func (a *AllPush) AtSource(x string, v float64) ([]Forward, int) {
	return a.all(a.overlay.Source(), x)
}

// AtRepo implements Protocol.
func (a *AllPush) AtRepo(node *repository.Repository, x string, _ float64, _ coherency.Requirement) ([]Forward, int) {
	return a.all(node, x)
}

func (a *AllPush) all(node *repository.Repository, x string) ([]Forward, int) {
	deps := node.Dependents[x]
	fwd := make([]Forward, len(deps))
	for i, dep := range deps {
		fwd[i] = Forward{To: dep}
	}
	return fwd, 0 // no filtering checks are performed
}
