package dissemination

import (
	"d3t/internal/coherency"
	"d3t/internal/node"
	"d3t/internal/obs"
	"d3t/internal/repository"
	"d3t/internal/sim"
	"d3t/internal/tree"
)

// Distributed is the repository-based dissemination algorithm of Section
// 5.1, re-seated on the transport-agnostic repository core: every overlay
// node owns a node.Core holding its per-edge filter state, and this
// adapter translates core decisions into the simulator's Forward lists.
// With UseEq7 false it degrades to the naive Eq.3-only filter, which
// cannot guarantee fidelity even with zero delays (Figure 4); that
// variant exists for the ablation and the tests.
type Distributed struct {
	// UseEq7 enables the missed-update guard. The real algorithm has it
	// on; turning it off yields the naive baseline.
	UseEq7 bool

	overlay *tree.Overlay
	cores   []*node.Core // indexed by overlay id
	col     collector
	bcol    batchCollector
}

// collector is the simulator-side Transport: it accumulates dependent
// decisions into a reused Forward buffer (the runner schedules the sends
// itself, with the delay model applied), so the steady-state pipeline
// performs no allocations. Simulated cores serve no client sessions.
type collector struct {
	buf []Forward
}

func (c *collector) Now() sim.Time { return 0 }

func (c *collector) SendToDependent(dep repository.ID, item string, v float64, resync bool) bool {
	c.buf = append(c.buf, Forward{To: dep})
	return true
}

func (c *collector) SendToClient(s *node.Session, item string, v float64, resync bool) {}

// NewDistributed returns the paper's distributed algorithm.
func NewDistributed() *Distributed { return &Distributed{UseEq7: true} }

// NewNaive returns the Eq.3-only variant.
func NewNaive() *Distributed { return &Distributed{UseEq7: false} }

// Name implements Protocol.
func (d *Distributed) Name() string {
	if d.UseEq7 {
		return "distributed"
	}
	return "naive-eq3"
}

// Init implements Protocol: build one core per overlay node and seed
// every existing edge's filter state with the initial values.
func (d *Distributed) Init(o *tree.Overlay, initial map[string]float64) {
	d.overlay = o
	d.cores = make([]*node.Core, len(o.Nodes))
	for _, n := range o.Nodes {
		d.cores[n.ID] = node.New(n, o.Node, node.Options{Eq3Only: !d.UseEq7})
		for x := range n.Dependents {
			d.cores[n.ID].Seed(x, initial[x])
		}
	}
}

// Core exposes the per-node state machine (for parity instrumentation).
func (d *Distributed) Core(id repository.ID) *node.Core { return d.cores[id] }

// SetObs attaches one observer per node core, so the decision counters
// (received/forwarded/suppressed, checks) land in the observability
// tree. Run calls it after Init when the config carries an obs tree.
func (d *Distributed) SetObs(t *obs.Tree) {
	for _, c := range d.cores {
		c.SetObs(t.Node(c.ID()))
	}
}

// Update is one (item, value) pair of a multi-update batch — the unit the
// sharded ingest pipeline moves between nodes.
type Update struct {
	Item  string
	Value float64
}

// ItemForward is one forwarded copy of a batched step: the dependent it
// goes to plus the item and value it carries (a plain Forward cannot name
// them, because a batch spans items).
type ItemForward struct {
	To    repository.ID
	Item  string
	Value float64
}

// ApplyBatch is the batched step of the distributed algorithm: it
// coalesces same-item updates within the batch into the newest value (an
// intermediate value superseded inside one batch window is never
// disseminated — the whole point of batching), applies each surviving
// update through the node's core in batch order, and returns every
// resulting forward in one pass, tagged with its item. The returned slice
// and the number of filter checks follow the AtRepo conventions: the
// slice is reused across calls and must be consumed before the next one.
func (d *Distributed) ApplyBatch(id repository.ID, batch []Update) ([]ItemForward, int) {
	d.bcol.buf = d.bcol.buf[:0]
	checks := 0
	core := d.cores[id]
	for _, i := range node.CoalesceBatch(len(batch), func(i int) string { return batch[i].Item }) {
		u := &batch[i]
		d.bcol.item, d.bcol.value = u.Item, u.Value
		_, n := core.Apply(u.Item, u.Value, &d.bcol)
		checks += n
	}
	return d.bcol.buf, checks
}

// batchCollector is the Transport of ApplyBatch: it remembers which item
// is being applied so the collected forwards carry it.
type batchCollector struct {
	buf   []ItemForward
	item  string
	value float64
}

func (c *batchCollector) Now() sim.Time { return 0 }

func (c *batchCollector) SendToDependent(dep repository.ID, item string, v float64, resync bool) bool {
	c.buf = append(c.buf, ItemForward{To: dep, Item: c.item, Value: c.value})
	return true
}

func (c *batchCollector) SendToClient(s *node.Session, item string, v float64, resync bool) {}

// ResetEdge re-seeds the per-edge filter state for item x after overlay
// repair re-homes a dependent: the last value "sent" over the (possibly
// brand-new, possibly re-adopted) edge is the value the parent just
// synced. Without this, an edge revived after crash-and-rejoin would
// filter against its pre-crash state and could withhold updates the
// dependent needs.
func (d *Distributed) ResetEdge(from, to repository.ID, x string, v float64) {
	d.cores[from].ResetEdge(to, x, v)
}

// AtSource implements Protocol. The source holds the exact value, so its
// own tolerance in Eq. (7) is zero and the filter reduces to Eq. (3).
func (d *Distributed) AtSource(x string, v float64) ([]Forward, int) {
	return d.at(repository.SourceID, x, v)
}

// AtRepo implements Protocol.
func (d *Distributed) AtRepo(n *repository.Repository, x string, v float64, _ coherency.Requirement) ([]Forward, int) {
	return d.at(n.ID, x, v)
}

// at runs the core pipeline and hands back the collected decisions. The
// returned slice is reused across calls; the runner consumes it before
// the next protocol call, like every Protocol implementation's caller
// must.
func (d *Distributed) at(id repository.ID, x string, v float64) ([]Forward, int) {
	d.col.buf = d.col.buf[:0]
	_, checks := d.cores[id].Apply(x, v, &d.col)
	if len(d.col.buf) == 0 {
		return nil, checks
	}
	return d.col.buf, checks
}

// AllPush is the Figure 8 baseline: no filtering at all; every update of
// an item flows to every repository interested in it.
type AllPush struct {
	overlay *tree.Overlay
}

// NewAllPush returns the unfiltered baseline.
func NewAllPush() *AllPush { return &AllPush{} }

// Name implements Protocol.
func (a *AllPush) Name() string { return "all-push" }

// Init implements Protocol.
func (a *AllPush) Init(o *tree.Overlay, _ map[string]float64) { a.overlay = o }

// AtSource implements Protocol.
func (a *AllPush) AtSource(x string, v float64) ([]Forward, int) {
	return a.all(a.overlay.Source(), x)
}

// AtRepo implements Protocol.
func (a *AllPush) AtRepo(node *repository.Repository, x string, _ float64, _ coherency.Requirement) ([]Forward, int) {
	return a.all(node, x)
}

func (a *AllPush) all(node *repository.Repository, x string) ([]Forward, int) {
	deps := node.Dependents[x]
	fwd := make([]Forward, len(deps))
	for i, dep := range deps {
		fwd[i] = Forward{To: dep}
	}
	return fwd, 0 // no filtering checks are performed
}
