package dissemination

import (
	"fmt"

	"d3t/internal/coherency"
	"d3t/internal/repository"
	"d3t/internal/sim"
	"d3t/internal/trace"
	"d3t/internal/tree"
)

// This file implements the alternative dissemination mechanisms the paper
// names as future work (Section 8): pull with a static Time-To-Refresh
// (TTR), the adaptive-TTR scheme of the authors' companion work (Srinivasan
// et al. / Bhide et al.), and lease-augmented push. They share the overlay
// and fidelity machinery with the push runner so the extension experiment
// (EXPERIMENTS.md, ext-pull) can compare fidelity against message cost
// across mechanisms.

// PullMode selects the refresh policy.
type PullMode int

const (
	// StaticTTR polls every TTR, unconditionally.
	StaticTTR PullMode = iota
	// AdaptiveTTR adjusts the polling interval per (repository, item) to
	// the observed rate of change: TTR shrinks toward TTRMin while the
	// item moves fast relative to the tolerance and relaxes toward TTRMax
	// when it is quiet.
	AdaptiveTTR
)

// String names the mode.
func (m PullMode) String() string {
	switch m {
	case StaticTTR:
		return "pull-static"
	case AdaptiveTTR:
		return "pull-adaptive"
	default:
		return fmt.Sprintf("PullMode(%d)", int(m))
	}
}

// PullConfig parameterizes a pull run.
type PullConfig struct {
	Mode PullMode
	// TTR is the static polling interval, and the initial interval in
	// adaptive mode. Default 10 s.
	TTR sim.Time
	// TTRMin/TTRMax clamp the adaptive interval. Defaults 1 s / 60 s.
	TTRMin, TTRMax sim.Time
	// Smoothing weighs the previous interval against the new estimate in
	// adaptive mode, in [0,1); default 0.5.
	Smoothing float64
	// CompDelay is the per-response computational delay at the polled
	// node; defaults to the push default (12.5 ms). Negative means zero.
	CompDelay sim.Time
}

func (c PullConfig) withDefaults() PullConfig {
	if c.TTR == 0 {
		c.TTR = 10 * sim.Second
	}
	if c.TTRMin == 0 {
		c.TTRMin = sim.Second
	}
	if c.TTRMax == 0 {
		c.TTRMax = 60 * sim.Second
	}
	if c.Smoothing == 0 {
		c.Smoothing = 0.5
	}
	switch {
	case c.CompDelay == 0:
		c.CompDelay = sim.Milliseconds(12.5)
	case c.CompDelay < 0:
		c.CompDelay = 0
	}
	return c
}

// RunPull simulates pull-based coherency over the overlay: every
// repository refreshes each item it serves from its d3t parent on its TTR
// schedule. Each poll costs two messages (request and response). Fidelity
// is measured exactly as in the push runner.
func RunPull(o *tree.Overlay, traces []*trace.Trace, cfg PullConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(traces) == 0 {
		return nil, fmt.Errorf("dissemination: no traces to run")
	}
	initial := make(map[string]float64, len(traces))
	var horizon sim.Time
	for _, tr := range traces {
		if tr.Len() == 0 {
			return nil, fmt.Errorf("dissemination: trace %s is empty", tr.Item)
		}
		initial[tr.Item] = tr.Ticks[0].Value
		if end := tr.Ticks[tr.Len()-1].At; end > horizon {
			horizon = end
		}
	}

	engine := sim.New()
	stations := make([]sim.Station, len(o.Nodes))
	// values[node][item] is the node's current copy. The source's entry
	// tracks the trace exactly.
	values := make([]map[string]float64, len(o.Nodes))
	for i, n := range o.Nodes {
		values[i] = make(map[string]float64)
		if n.IsSource() {
			for x, v := range initial {
				values[i][x] = v
			}
			continue
		}
		for _, x := range n.Items() {
			values[i][x] = initial[x]
		}
	}

	trackers := make(map[string]map[repository.ID]*coherency.Tracker)
	var all []struct {
		repo repository.ID
		tr   *coherency.Tracker
	}
	for _, n := range o.Repos() {
		for _, x := range n.NeededItems() {
			c := n.Needs[x]
			if _, ok := initial[x]; !ok {
				return nil, fmt.Errorf("dissemination: repository %d needs item %s with no trace", n.ID, x)
			}
			t := coherency.NewTracker(c, 0, initial[x])
			if trackers[x] == nil {
				trackers[x] = make(map[repository.ID]*coherency.Tracker)
			}
			trackers[x][n.ID] = t
			all = append(all, struct {
				repo repository.ID
				tr   *coherency.Tracker
			}{n.ID, t})
		}
	}

	var stats Stats

	// Source ticks just update the source copy (and the trackers).
	for _, tr := range traces {
		last := tr.Ticks[0].Value
		for _, tk := range tr.Ticks[1:] {
			if tk.Value == last {
				continue
			}
			last = tk.Value
			item, v := tr.Item, tk.Value
			engine.At(tk.At, func(now sim.Time) {
				stats.SourceTicks++
				values[repository.SourceID][item] = v
				for _, t := range trackers[item] {
					t.SourceUpdate(now, v)
				}
			})
		}
	}

	// One poller per (repository, served item): ask the parent, refresh,
	// reschedule.
	for _, n := range o.Repos() {
		n := n
		for _, x := range n.Items() {
			x := x
			pid, ok := n.Parents[x]
			if !ok {
				return nil, fmt.Errorf("dissemination: repository %d serves %s with no parent", n.ID, x)
			}
			c, _ := n.ServingTolerance(x)
			p := &poller{
				engine: engine, stations: stations, values: values,
				trackers: trackers, stats: &stats, cfg: cfg,
				node: n, parent: pid, item: x, c: c,
				rtt: o.Net.Delay[n.ID][pid],
				ttr: cfg.TTR, lastVal: initial[x],
			}
			// Stagger first polls across the interval to avoid a thundering
			// herd at t=0 (deterministic: by node and item index).
			offset := sim.Time((int64(n.ID)*7919 + int64(len(x))) % int64(cfg.TTR))
			engine.At(offset, p.poll)
		}
	}

	engine.RunUntil(horizon)

	report := coherency.NewReport()
	for _, rt := range all {
		report.Add(int(rt.repo), rt.tr.Fidelity(horizon))
	}
	stats.Events = engine.Processed()
	return &Result{
		Protocol:          cfg.Mode.String(),
		Report:            report,
		Stats:             stats,
		Horizon:           horizon,
		SourceUtilization: stations[repository.SourceID].Utilization(horizon),
	}, nil
}

// poller is the per-(repository, item) pull state machine.
type poller struct {
	engine   *sim.Engine
	stations []sim.Station
	values   []map[string]float64
	trackers map[string]map[repository.ID]*coherency.Tracker
	stats    *Stats
	cfg      PullConfig

	node   *repository.Repository
	parent repository.ID
	item   string
	c      coherency.Requirement
	rtt    sim.Time

	ttr      sim.Time
	lastVal  float64
	lastPoll sim.Time
}

// poll issues a request to the parent and schedules the response.
func (p *poller) poll(now sim.Time) {
	p.stats.Messages++ // request
	arriveAtParent := now + p.rtt
	p.engine.At(arriveAtParent, func(t sim.Time) {
		done := p.stations[p.parent].Acquire(t, p.cfg.CompDelay)
		p.stats.Messages++ // response
		if p.parent == repository.SourceID {
			p.stats.SourceChecks++
		} else {
			p.stats.RepoChecks++
		}
		v := p.values[p.parent][p.item]
		p.engine.At(done+p.rtt, func(t2 sim.Time) { p.receive(t2, v) })
	})
}

// receive applies the response and schedules the next poll.
func (p *poller) receive(now sim.Time, v float64) {
	p.stats.Deliveries++
	if v != p.values[p.node.ID][p.item] {
		p.values[p.node.ID][p.item] = v
		if t := p.trackers[p.item][p.node.ID]; t != nil {
			t.RepoUpdate(now, v)
		}
	}
	if p.cfg.Mode == AdaptiveTTR {
		p.adapt(now, v)
	}
	p.lastVal = v
	p.lastPoll = now
	p.engine.At(now+p.ttr, p.poll)
}

// adapt implements the adaptive-TTR rule: estimate the item's rate of
// change since the previous poll and target the interval at which the
// value would drift by half the tolerance (the safety factor guards
// against aliasing — a random walk that wandered and came back looks
// slower than it is); smooth against the previous interval, cap growth,
// and clamp to [TTRMin, TTRMax].
func (p *poller) adapt(now sim.Time, v float64) {
	elapsed := now - p.lastPoll
	if elapsed <= 0 {
		return
	}
	diff := v - p.lastVal
	if diff < 0 {
		diff = -diff
	}
	var est sim.Time
	if diff == 0 {
		est = p.ttr * 3 / 2 // quiet: back off gently
	} else {
		// Time for the value to drift by c/2 at the observed rate.
		est = sim.Time(float64(p.c) / (2 * diff) * float64(elapsed))
		if cap := p.ttr * 2; est > cap {
			est = cap // distrust large estimates from a single window
		}
	}
	a := p.cfg.Smoothing
	next := sim.Time(a*float64(p.ttr) + (1-a)*float64(est))
	if next < p.cfg.TTRMin {
		next = p.cfg.TTRMin
	}
	if next > p.cfg.TTRMax {
		next = p.cfg.TTRMax
	}
	p.ttr = next
}

// LeaseConfig parameterizes lease-augmented push (Section 8's "leases",
// after Cooperative Leases): parents push — exactly as the distributed
// algorithm — only while the dependent holds a valid lease, and dependents
// renew each (parent, item) lease every Duration.
type LeaseConfig struct {
	// Duration is the lease term. Default 60 s.
	Duration sim.Time
	// Push is the delay model for the underlying push dissemination.
	Push Config
}

// RunLease simulates lease-augmented push. Dependents renew leases
// promptly (the renewal round-trip is assumed shorter than the term), so
// fidelity matches the distributed push algorithm; the cost shows up as
// one renewal message per edge-item per term — the fidelity/overhead
// trade-off this mechanism buys: a crashed or departed dependent stops
// costing its parent anything after at most one term.
func RunLease(o *tree.Overlay, traces []*trace.Trace, cfg LeaseConfig) (*Result, error) {
	if cfg.Duration == 0 {
		cfg.Duration = 60 * sim.Second
	}
	res, err := Run(o, traces, NewDistributed(), cfg.Push)
	if err != nil {
		return nil, err
	}
	res.Protocol = "lease-push"
	// Renewal traffic: every (parent, dependent, item) edge renews once
	// per term over the horizon.
	var edgeItems uint64
	for _, n := range o.Nodes {
		for _, deps := range n.Dependents {
			edgeItems += uint64(len(deps))
		}
	}
	terms := uint64(res.Horizon / cfg.Duration)
	res.Stats.Messages += edgeItems * terms
	return res, nil
}
