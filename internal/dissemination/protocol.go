// Package dissemination implements the update dissemination algorithms of
// Section 5 of the paper — the distributed repository-based approach
// (Eqs. 3 and 7), the centralized source-based approach, the naive Eq.3-
// only filter (which exhibits the missed-update problem of Figure 4), and
// the unfiltered push-everything baseline of Figure 8 — together with the
// discrete-event runner that drives them over an overlay and a trace set
// and measures fidelity, message counts and check counts.
//
// The package also provides the pull-based alternatives the paper lists as
// future work (static TTR, adaptive TTR, and leases); see pull.go.
package dissemination

import (
	"d3t/internal/coherency"
	"d3t/internal/repository"
	"d3t/internal/tree"
)

// Forward is one outgoing copy of an update: the dependent to send to and
// the coherency tag it carries (used only by the centralized algorithm;
// zero otherwise).
type Forward struct {
	To  repository.ID
	Tag coherency.Requirement
}

// Protocol is a push dissemination algorithm. Implementations are stateful
// (they track last-sent values per edge or per tolerance) and are not safe
// for concurrent use; each simulation run owns one instance.
type Protocol interface {
	// Name identifies the protocol in experiment output.
	Name() string
	// Init prepares protocol state for an overlay whose nodes all hold
	// the given initial values.
	Init(o *tree.Overlay, initial map[string]float64)
	// AtSource reports which direct dependents must receive the new value
	// v of item x, and how many filtering checks the source performed.
	//
	// The returned slice is valid only until the next call on the same
	// protocol — implementations may reuse one backing buffer across
	// calls (Distributed does, keeping the hot path allocation-free).
	// Callers must consume or copy it before deciding the next update.
	AtSource(x string, v float64) (fwd []Forward, checks int)
	// AtRepo reports which of node's dependents must receive the update
	// (x, v, tag) that node just received, and how many checks node
	// performed. The returned slice has the same single-call lifetime as
	// AtSource's.
	AtRepo(node *repository.Repository, x string, v float64, tag coherency.Requirement) (fwd []Forward, checks int)
}

// The per-(parent, dependent, item) last-pushed-value state behind Eqs. 3
// and 7 lives in the transport-agnostic repository core (internal/node):
// Distributed owns one node.Core per overlay node and translates its
// decisions into Forward lists.
