// Package dissemination implements the update dissemination algorithms of
// Section 5 of the paper — the distributed repository-based approach
// (Eqs. 3 and 7), the centralized source-based approach, the naive Eq.3-
// only filter (which exhibits the missed-update problem of Figure 4), and
// the unfiltered push-everything baseline of Figure 8 — together with the
// discrete-event runner that drives them over an overlay and a trace set
// and measures fidelity, message counts and check counts.
//
// The package also provides the pull-based alternatives the paper lists as
// future work (static TTR, adaptive TTR, and leases); see pull.go.
package dissemination

import (
	"d3t/internal/coherency"
	"d3t/internal/repository"
	"d3t/internal/tree"
)

// Forward is one outgoing copy of an update: the dependent to send to and
// the coherency tag it carries (used only by the centralized algorithm;
// zero otherwise).
type Forward struct {
	To  repository.ID
	Tag coherency.Requirement
}

// Protocol is a push dissemination algorithm. Implementations are stateful
// (they track last-sent values per edge or per tolerance) and are not safe
// for concurrent use; each simulation run owns one instance.
type Protocol interface {
	// Name identifies the protocol in experiment output.
	Name() string
	// Init prepares protocol state for an overlay whose nodes all hold
	// the given initial values.
	Init(o *tree.Overlay, initial map[string]float64)
	// AtSource reports which direct dependents must receive the new value
	// v of item x, and how many filtering checks the source performed.
	AtSource(x string, v float64) (fwd []Forward, checks int)
	// AtRepo reports which of node's dependents must receive the update
	// (x, v, tag) that node just received, and how many checks node
	// performed.
	AtRepo(node *repository.Repository, x string, v float64, tag coherency.Requirement) (fwd []Forward, checks int)
}

// lastSent tracks, per (parent, dependent, item), the last value the
// parent pushed to the dependent — the state behind Eqs. 3 and 7.
type lastSent map[repository.ID]map[repository.ID]map[string]float64

// initLastSent seeds every overlay edge with the initial item values.
func initLastSent(o *tree.Overlay, initial map[string]float64) lastSent {
	ls := make(lastSent, len(o.Nodes))
	for _, n := range o.Nodes {
		byDep := make(map[repository.ID]map[string]float64)
		for x, deps := range n.Dependents {
			v := initial[x]
			for _, d := range deps {
				m := byDep[d]
				if m == nil {
					m = make(map[string]float64)
					byDep[d] = m
				}
				m[x] = v
			}
		}
		ls[n.ID] = byDep
	}
	return ls
}

func (ls lastSent) get(from, to repository.ID, x string) float64 {
	return ls[from][to][x]
}

func (ls lastSent) set(from, to repository.ID, x string, v float64) {
	byDep := ls[from]
	if byDep == nil {
		byDep = make(map[repository.ID]map[string]float64)
		ls[from] = byDep
	}
	m := byDep[to]
	if m == nil {
		// An edge established after Init — overlay repair re-homed this
		// dependent mid-run.
		m = make(map[string]float64)
		byDep[to] = m
	}
	m[x] = v
}
