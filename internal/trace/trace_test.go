package trace

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"d3t/internal/sim"
)

func mkTrace(vals ...float64) *Trace {
	tr := &Trace{Item: "X"}
	for i, v := range vals {
		tr.Ticks = append(tr.Ticks, Tick{At: sim.Time(i) * sim.Second, Value: v})
	}
	return tr
}

func TestValueAt(t *testing.T) {
	tr := mkTrace(1, 2, 3)
	cases := []struct {
		at   sim.Time
		want float64
	}{
		{-5 * sim.Second, 1}, // before start: first value
		{0, 1},
		{sim.Second / 2, 1},
		{sim.Second, 2},
		{3 * sim.Second / 2, 2},
		{2 * sim.Second, 3},
		{100 * sim.Second, 3},
	}
	for _, c := range cases {
		got, ok := tr.ValueAt(c.at)
		if !ok || got != c.want {
			t.Errorf("ValueAt(%v) = %v,%v; want %v,true", c.at, got, ok, c.want)
		}
	}
	var empty Trace
	if _, ok := empty.ValueAt(0); ok {
		t.Error("ValueAt on empty trace reported ok")
	}
}

func TestSummarize(t *testing.T) {
	tr := mkTrace(10, 12, 11, 15)
	s := tr.Summarize()
	if s.Min != 10 || s.Max != 15 {
		t.Errorf("min/max = %v/%v, want 10/15", s.Min, s.Max)
	}
	if s.Ticks != 4 {
		t.Errorf("ticks = %d, want 4", s.Ticks)
	}
	if want := (2.0 + 1 + 4) / 3; math.Abs(s.MeanAbsStep-want) > 1e-12 {
		t.Errorf("meanAbsStep = %v, want %v", s.MeanAbsStep, want)
	}
	if s.Duration != 3*sim.Second {
		t.Errorf("duration = %v, want 3s", s.Duration)
	}
}

func TestValidate(t *testing.T) {
	good := mkTrace(1, 2)
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	noName := &Trace{}
	if err := noName.Validate(); err == nil {
		t.Error("empty item name accepted")
	}
	dup := &Trace{Item: "X", Ticks: []Tick{{0, 1}, {0, 2}}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate timestamps accepted")
	}
	nan := &Trace{Item: "X", Ticks: []Tick{{0, math.NaN()}}}
	if err := nan.Validate(); err == nil {
		t.Error("NaN value accepted")
	}
}

func TestProjectFiltersByTolerance(t *testing.T) {
	// The Figure 4 sequence from the paper.
	tr := mkTrace(1, 1.2, 1.4, 1.5, 1.7, 2.0)
	p := tr.Project(0.5)
	want := []float64{1, 1.7}
	var got []float64
	for _, tk := range p.Ticks {
		got = append(got, tk.Value)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Project(0.5) kept %v, want %v", got, want)
	}
	// c=0 keeps every change.
	if n := tr.Project(0).Len(); n != 6 {
		t.Errorf("Project(0) kept %d ticks, want 6", n)
	}
}

// Property: a projection is a subsequence whose consecutive values differ
// by more than c, and a coarser tolerance never keeps more ticks.
func TestProjectProperties(t *testing.T) {
	f := func(raw []int8, cRaw uint8) bool {
		vals := make([]float64, 0, len(raw)+1)
		vals = append(vals, 0)
		for _, v := range raw {
			vals = append(vals, float64(v)/10)
		}
		tr := mkTrace(vals...)
		c := float64(cRaw) / 50
		p := tr.Project(c)
		if p.Len() == 0 || p.Ticks[0] != tr.Ticks[0] {
			return false
		}
		for i := 1; i < p.Len(); i++ {
			if math.Abs(p.Ticks[i].Value-p.Ticks[i-1].Value) <= c {
				return false // kept a tick within tolerance of the previous kept one
			}
		}
		coarser := tr.Project(c * 2)
		return coarser.Len() <= p.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGenerateBoundedWalkStaysInBand(t *testing.T) {
	tr := MustGenerate(GenConfig{
		Item: "MSFT", Model: BoundedWalk, Ticks: 5000,
		Start: 60.5, Low: 60.0, High: 61.0, Step: 0.05, Seed: 7,
	})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := tr.Summarize()
	if s.Min < 60.0-1e-9 || s.Max > 61.0+1e-9 {
		t.Errorf("walk escaped band: [%v, %v]", s.Min, s.Max)
	}
	if s.Ticks != 5000 {
		t.Errorf("got %d ticks, want 5000", s.Ticks)
	}
	// The walk should actually move: its band coverage should be a large
	// fraction of the configured band.
	if s.Max-s.Min < 0.5 {
		t.Errorf("walk too static: explored only %v of a 1.0 band", s.Max-s.Min)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Item: "X", Ticks: 100, Seed: 42}
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Error("same config+seed produced different traces")
	}
	c := MustGenerate(GenConfig{Item: "X", Ticks: 100, Seed: 43})
	if reflect.DeepEqual(a.Ticks, c.Ticks) {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateGBMPositive(t *testing.T) {
	tr := MustGenerate(GenConfig{Item: "G", Model: GBM, Ticks: 2000, Start: 30, Step: 0.01, Seed: 3})
	for _, tk := range tr.Ticks {
		if tk.Value <= 0 {
			t.Fatalf("GBM produced non-positive price %v", tk.Value)
		}
	}
}

func TestGenerateOUReverts(t *testing.T) {
	tr := MustGenerate(GenConfig{Item: "O", Model: OU, Ticks: 5000, Start: 20, Step: 0.05, Reversion: 0.1, Seed: 9})
	s := tr.Summarize()
	// Mean reversion keeps the process near its start.
	if s.Min < 15 || s.Max > 25 {
		t.Errorf("OU wandered to [%v, %v], expected to stay near 20", s.Min, s.Max)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenConfig{Item: "B", Model: BoundedWalk, Low: 5, High: 5, Ticks: 10}); err == nil {
		t.Error("degenerate band accepted")
	}
	if _, err := Generate(GenConfig{Item: "B", Model: GBM, Start: -1, Ticks: 10}); err == nil {
		t.Error("negative GBM start accepted")
	}
	if _, err := Generate(GenConfig{Item: "B", Model: Model(99), Ticks: 10}); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestGenerateSet(t *testing.T) {
	set := GenerateSet(10, 500, sim.Second, 1)
	if len(set) != 10 {
		t.Fatalf("got %d traces, want 10", len(set))
	}
	names := map[string]bool{}
	for _, tr := range set {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != 500 {
			t.Errorf("%s has %d ticks, want 500", tr.Item, tr.Len())
		}
		if names[tr.Item] {
			t.Errorf("duplicate item name %s", tr.Item)
		}
		names[tr.Item] = true
	}
}

func TestTable1Traces(t *testing.T) {
	traces := Table1TracesSized(2000, 5)
	if len(traces) != len(Table1Tickers) {
		t.Fatalf("got %d traces, want %d", len(traces), len(Table1Tickers))
	}
	for i, tr := range traces {
		s := tr.Summarize()
		tk := Table1Tickers[i]
		if s.Item != tk.Symbol {
			t.Errorf("trace %d named %s, want %s", i, s.Item, tk.Symbol)
		}
		if s.Min < tk.Min-1e-9 || s.Max > tk.Max+1e-9 {
			t.Errorf("%s range [%v,%v] outside published band [%v,%v]",
				tk.Symbol, s.Min, s.Max, tk.Min, tk.Max)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	in := GenerateSet(3, 50, sim.Second, 11)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in...); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Error("CSV round trip changed traces")
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"a,b,c\n",
		"item,usec,value\nX,notanumber,5\n",
		"item,usec,value\nX,5,notanumber\n",
		"item,usec,value\nX,5,1\nX,5,2\n", // duplicate timestamp
	}
	for _, c := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(c)); err == nil {
			t.Errorf("ReadCSV accepted %q", c)
		}
	}
}
