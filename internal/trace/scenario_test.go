package trace

import (
	"testing"
)

func TestParseScenarioDefaults(t *testing.T) {
	for _, spec := range []string{"", "none", "  none  "} {
		s, err := ParseScenario(spec)
		if err != nil || s != nil {
			t.Fatalf("ParseScenario(%q) = %v, %v, want nil, nil", spec, s, err)
		}
	}
	s, err := ParseScenario("flash")
	if err != nil {
		t.Fatalf("ParseScenario(flash): %v", err)
	}
	if s.Kind != "flash" || s.Params["at"] != 0.3 || s.Params["frac"] != 0.5 || s.Params["burst"] != 0.5 || s.Params["leave"] != 1 {
		t.Fatalf("flash defaults wrong: %+v", s)
	}
	s, err = ParseScenario("regional:at=0.2,frac=0.5,rejoin=0.9")
	if err != nil {
		t.Fatalf("ParseScenario(regional): %v", err)
	}
	if s.Params["at"] != 0.2 || s.Params["frac"] != 0.5 || s.Params["rejoin"] != 0.9 {
		t.Fatalf("regional params wrong: %+v", s)
	}
	if got := s.String(); got != "regional:at=0.2,frac=0.5,rejoin=0.9" {
		t.Fatalf("canonical spec %q", got)
	}
}

func TestParseScenarioRejects(t *testing.T) {
	for _, spec := range []string{
		"storm",                      // unknown kind
		"flash:",                     // empty parameter list
		"flash:at",                   // not key=value
		"flash:zap=1",                // unknown key
		"flash:at=NaN",               // non-finite
		"flash:at=2",                 // out of range
		"flash:burst=0",              // out of range
		"diurnal:waves=0",            // out of range
		"regional:at=0.5,rejoin=0.4", // rejoin before failure
	} {
		if _, err := ParseScenario(spec); err == nil {
			t.Fatalf("ParseScenario(%q) accepted", spec)
		}
	}
}

func TestBuildFlash(t *testing.T) {
	spec, err := ParseScenario("flash:at=0.25,frac=0.4,burst=0.5,leave=0.75")
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildScenario(spec, 100, 4, 101, 7)
	if err != nil {
		t.Fatal(err)
	}
	crowd := 0
	for i, hot := range p.Hot {
		if hot != p.StartDetached[i] {
			t.Fatalf("session %d: hot=%v detached=%v, want equal", i, hot, p.StartDetached[i])
		}
		if hot {
			crowd++
			if i < 60 {
				t.Fatalf("crowd member %d in the steady base (want tail indices)", i)
			}
		}
	}
	if crowd != 40 {
		t.Fatalf("crowd size %d, want 40", crowd)
	}
	arrivals, departures := 0, 0
	lastTick := -1
	for _, e := range p.Events {
		if e.Tick < lastTick {
			t.Fatalf("events unsorted at tick %d after %d", e.Tick, lastTick)
		}
		lastTick = e.Tick
		if e.Depart {
			departures++
			if e.Tick != 75 {
				t.Fatalf("departure at tick %d, want 75", e.Tick)
			}
		} else {
			arrivals++
			if e.Tick < 25 || e.Tick > 74 {
				t.Fatalf("arrival at tick %d, want within [25, 74]", e.Tick)
			}
			if !p.Hot[e.Session] {
				t.Fatalf("arrival for non-crowd session %d", e.Session)
			}
		}
	}
	if arrivals != 40 || departures != 40 {
		t.Fatalf("arrivals=%d departures=%d, want 40 each", arrivals, departures)
	}
	// Determinism.
	q, _ := BuildScenario(spec, 100, 4, 101, 7)
	if len(q.Events) != len(p.Events) {
		t.Fatalf("rebuild changed event count")
	}
	for i := range p.Events {
		if q.Events[i] != p.Events[i] {
			t.Fatalf("rebuild changed event %d: %+v -> %+v", i, p.Events[i], q.Events[i])
		}
	}
}

func TestBuildRegional(t *testing.T) {
	spec, err := ParseScenario("regional:at=0.5,frac=0.5,rejoin=0.8")
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildScenario(spec, 10, 8, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Faults) != 4 {
		t.Fatalf("%d faults, want 4 (half of 8 repos)", len(p.Faults))
	}
	for i, ft := range p.Faults {
		if ft.Tick != p.Faults[0].Tick || ft.RejoinTick != p.Faults[0].RejoinTick {
			t.Fatalf("fault %d not correlated with the region: %+v vs %+v", i, ft, p.Faults[0])
		}
		if ft.Repo < 1 || ft.Repo > 8 {
			t.Fatalf("fault repo %d outside population", ft.Repo)
		}
		if i > 0 && ft.Repo != p.Faults[i-1].Repo+1 {
			t.Fatalf("region not contiguous: %+v", p.Faults)
		}
		if ft.RejoinTick <= ft.Tick {
			t.Fatalf("rejoin %d not after failure %d", ft.RejoinTick, ft.Tick)
		}
	}
	// frac=1 never fails every repository.
	all, _ := ParseScenario("regional:frac=1")
	p, err = BuildScenario(all, 10, 4, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Faults) != 3 {
		t.Fatalf("frac=1 failed %d of 4 repos, want 3 (one survivor)", len(p.Faults))
	}
}

func TestBuildDiurnal(t *testing.T) {
	spec, err := ParseScenario("diurnal:waves=2,low=0.25")
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 200
	p, err := BuildScenario(spec, sessions, 4, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	attached := make([]bool, sessions)
	for i := range attached {
		attached[i] = true
	}
	n, minN := sessions, sessions
	for _, e := range p.Events {
		if attached[e.Session] == !e.Depart {
			t.Fatalf("event %+v repeats session state", e)
		}
		attached[e.Session] = !e.Depart
		if e.Depart {
			n--
		} else {
			n++
		}
		if n < minN {
			minN = n
		}
	}
	if minN < 45 || minN > 55 {
		t.Fatalf("trough at %d attached, want ~50 (low=0.25 of 200)", minN)
	}
	if n < sessions-10 {
		t.Fatalf("horizon ends with %d attached, want near full (cosine returns to 1)", n)
	}
}

func TestBuildScenarioNil(t *testing.T) {
	p, err := BuildScenario(nil, 10, 4, 100, 1)
	if err != nil || p != nil {
		t.Fatalf("BuildScenario(nil) = %v, %v", p, err)
	}
}
