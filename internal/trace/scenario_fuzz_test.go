package trace

import (
	"testing"
)

// FuzzParseScenario fuzzes the scenario-spec grammar. The parser must
// never panic; any spec it accepts must render a canonical form that
// re-parses to the same parameters, and must build a plan over a small
// population without error.
func FuzzParseScenario(f *testing.F) {
	f.Add("")
	f.Add("none")
	f.Add("flash")
	f.Add("flash:at=0.3,frac=0.5,burst=0.5,leave=0.9")
	f.Add("regional:at=0.4,frac=0.25,rejoin=0.7")
	f.Add("diurnal:waves=2,low=0.3")
	f.Add("flash:at=2")
	f.Add("flash:burst=-1")
	f.Add("storm:x=1")
	f.Add("flash:")
	f.Add("flash:at")
	f.Add("flash:at=NaN")
	f.Add("regional:at=0.9,rejoin=0.1")
	f.Add("diurnal:waves=1e9")
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseScenario(spec)
		if err != nil {
			return
		}
		if s == nil {
			return // empty / none
		}
		// Canonical round trip.
		again, err := ParseScenario(s.String())
		if err != nil {
			t.Fatalf("canonical %q of accepted %q rejected: %v", s.String(), spec, err)
		}
		if again.Kind != s.Kind || len(again.Params) != len(s.Params) {
			t.Fatalf("round trip changed spec: %+v -> %+v", s, again)
		}
		for k, v := range s.Params {
			if again.Params[k] != v {
				t.Fatalf("round trip changed %s: %g -> %g", k, v, again.Params[k])
			}
		}
		// Anything accepted must schedule.
		p, err := BuildScenario(s, 50, 4, 60, 1)
		if err != nil {
			t.Fatalf("accepted spec %q failed to build: %v", spec, err)
		}
		last := -1
		for _, e := range p.Events {
			if e.Tick < last {
				t.Fatalf("events unsorted")
			}
			last = e.Tick
			if e.Session < 0 || e.Session >= 50 {
				t.Fatalf("event session %d outside population", e.Session)
			}
			if e.Tick < 0 || e.Tick >= 60 {
				t.Fatalf("event tick %d outside horizon", e.Tick)
			}
		}
		for _, ft := range p.Faults {
			if ft.Repo < 1 || ft.Repo > 4 {
				t.Fatalf("fault repo %d outside population", ft.Repo)
			}
			if ft.Tick < 0 || ft.Tick >= 60 {
				t.Fatalf("fault tick %d outside horizon", ft.Tick)
			}
			if ft.RejoinTick >= 0 && ft.RejoinTick <= ft.Tick {
				t.Fatalf("fault rejoin %d not after %d", ft.RejoinTick, ft.Tick)
			}
		}
	})
}
