package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV fuzzes the trace CSV parser with arbitrary byte streams.
// The parser must never panic, and anything it accepts must be
// well-formed (Validate passes: finite values, strictly increasing
// timestamps) and stable through a write/read round trip — after one
// normalizing pass, WriteCSV(ReadCSV(x)) re-reads to the same traces.
// (A byte-exact round trip is deliberately not asserted: encoding/csv
// normalizes CRLF inside quoted fields on first read.)
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("item,usec,value\n"))
	f.Add([]byte("item,usec,value\nAAPL,0,10\nAAPL,1000000,10.5\n"))
	f.Add([]byte("item,usec,value\nA,0,1\nB,0,2\nB,5,3\n"))
	f.Add([]byte("item,usec,value\nA,5,1\nA,5,2\n"))     // non-increasing time
	f.Add([]byte("item,usec,value\nA,0,NaN\n"))          // non-finite value
	f.Add([]byte("item,usec,value\nA,0,Inf\n"))          // non-finite value
	f.Add([]byte("item,usec,value\n,0,1\n"))             // empty item
	f.Add([]byte("item,usec,value\nA,x,1\n"))            // bad time
	f.Add([]byte("item,usec,value\nA,0\n"))              // short row
	f.Add([]byte("wrong,header,here\nA,0,1\n"))          // bad header
	f.Add([]byte("item,usec,value\n\"a,b\",0,1\n"))      // quoted item
	f.Add([]byte("item,usec,value\n\"a\nb\",0,1\n"))     // newline in item
	f.Add([]byte("item,usec,value\nA,-5,1\nA,0,2\n"))    // negative time
	f.Add([]byte("item,usec,value\nA,0,1e308\nA,1,2\n")) // huge value
	f.Fuzz(func(t *testing.T, data []byte) {
		traces, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, tr := range traces {
			if verr := tr.Validate(); verr != nil {
				t.Fatalf("ReadCSV accepted an invalid trace: %v", verr)
			}
		}
		// Round trip: what we write back must re-read identically.
		var buf strings.Builder
		if err := WriteCSV(&buf, traces...); err != nil {
			t.Fatalf("WriteCSV failed on accepted traces: %v", err)
		}
		again, err := ReadCSV(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip rejected: %v\ncsv:\n%s", err, buf.String())
		}
		if len(again) != len(traces) {
			t.Fatalf("round trip changed trace count: %d -> %d", len(traces), len(again))
		}
		for i, tr := range traces {
			if again[i].Item != tr.Item || again[i].Len() != tr.Len() {
				t.Fatalf("round trip changed trace %d: %q/%d -> %q/%d",
					i, tr.Item, tr.Len(), again[i].Item, again[i].Len())
			}
			for j, tk := range tr.Ticks {
				if again[i].Ticks[j] != tk {
					t.Fatalf("round trip changed %s tick %d: %v -> %v", tr.Item, j, tk, again[i].Ticks[j])
				}
			}
		}
	})
}
