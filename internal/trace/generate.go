package trace

import (
	"fmt"
	"math"
	"math/rand"

	"d3t/internal/sim"
)

// Model selects a synthetic price process.
type Model int

const (
	// BoundedWalk is a uniform-step random walk reflected inside
	// [Low, High]. It is the default because it most directly reproduces
	// the paper's traces: prices that wander within a narrow daily band
	// with step sizes comparable to the coherency tolerances.
	BoundedWalk Model = iota
	// GBM is geometric Brownian motion, the classic equity model.
	GBM
	// OU is an Ornstein-Uhlenbeck mean-reverting process, useful for
	// exchange-rate- or sensor-like streams.
	OU
)

// String names the model.
func (m Model) String() string {
	switch m {
	case BoundedWalk:
		return "bounded-walk"
	case GBM:
		return "gbm"
	case OU:
		return "ou"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// GenConfig parameterizes a synthetic trace.
type GenConfig struct {
	Item  string
	Model Model
	// Ticks is the number of observations (the paper polled 10000).
	Ticks int
	// Interval is the time between observations (the paper observed ~1/s).
	Interval sim.Time
	// Start is the initial price. Required > 0 for GBM.
	Start float64
	// Low/High bound the BoundedWalk band (ignored by GBM).
	Low, High float64
	// Step is the per-tick scale: max |step| for BoundedWalk, per-tick
	// volatility for GBM, noise scale for OU.
	Step float64
	// Drift is the per-tick drift (GBM) or mean-reversion target (OU;
	// zero value means revert to Start).
	Drift float64
	// Reversion is the OU pull strength per tick in [0,1].
	Reversion float64
	// Quantum is the price granularity values are rounded to (default
	// 0.01, i.e. cents, matching quoted stock prices). Use finer values
	// for FX-style items; negative disables rounding entirely.
	Quantum float64
	// HoldProb is the probability that a tick repeats the previous value.
	// The paper polled once per second but observes that "stock prices
	// change at a slower rate than once per second"; a hold probability
	// around 0.8 reproduces that effective change rate.
	HoldProb float64
	// Seed makes generation deterministic.
	Seed int64
}

// withDefaults fills zero fields with sensible paper-scale values.
func (c GenConfig) withDefaults() GenConfig {
	if c.Item == "" {
		c.Item = "ITEM"
	}
	if c.Ticks <= 0 {
		c.Ticks = 10000
	}
	if c.Interval <= 0 {
		c.Interval = sim.Second
	}
	if c.Start == 0 {
		c.Start = 50
	}
	if c.Low == 0 && c.High == 0 {
		c.Low, c.High = c.Start-0.5, c.Start+0.5
	}
	if c.Step == 0 {
		c.Step = 0.05
	}
	if c.Reversion == 0 {
		c.Reversion = 0.05
	}
	if c.Quantum == 0 {
		c.Quantum = 0.01
	}
	return c
}

// Generate produces a synthetic trace for the configuration. Generation is
// deterministic in (config, seed).
func Generate(cfg GenConfig) (*Trace, error) {
	cfg = cfg.withDefaults()
	if cfg.Low >= cfg.High && cfg.Model == BoundedWalk {
		return nil, fmt.Errorf("trace: bounded walk needs Low < High, got [%v, %v]", cfg.Low, cfg.High)
	}
	if cfg.Model == GBM && cfg.Start <= 0 {
		return nil, fmt.Errorf("trace: GBM needs positive Start, got %v", cfg.Start)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{Item: cfg.Item, Ticks: make([]Tick, 0, cfg.Ticks)}
	v := cfg.Start
	target := cfg.Drift
	if target == 0 {
		target = cfg.Start
	}
	for i := 0; i < cfg.Ticks; i++ {
		tr.Ticks = append(tr.Ticks, Tick{At: sim.Time(i) * cfg.Interval, Value: quantize(v, cfg.Quantum)})
		if cfg.HoldProb > 0 && r.Float64() < cfg.HoldProb {
			continue // quiet tick: the price did not trade
		}
		switch cfg.Model {
		case BoundedWalk:
			v += (2*r.Float64() - 1) * cfg.Step
			v = reflectInto(v, cfg.Low, cfg.High)
		case GBM:
			v *= math.Exp(cfg.Drift - 0.5*cfg.Step*cfg.Step + cfg.Step*r.NormFloat64())
			if v < 0.01 {
				v = 0.01
			}
		case OU:
			v += cfg.Reversion*(target-v) + cfg.Step*r.NormFloat64()
		default:
			return nil, fmt.Errorf("trace: unknown model %v", cfg.Model)
		}
	}
	return tr, nil
}

// MustGenerate is Generate for configurations known statically to be valid;
// it panics on error.
func MustGenerate(cfg GenConfig) *Trace {
	tr, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return tr
}

// GenerateSet produces n traces named ITEM000..ITEM(n-1), each a bounded
// walk with per-item band and step scattered around the paper's trace
// characteristics. It is the workload generator used by the experiment
// harness: 100 items, 50% subscription probability per repository.
func GenerateSet(n, ticks int, interval sim.Time, seed int64) []*Trace {
	r := rand.New(rand.NewSource(seed))
	out := make([]*Trace, n)
	for i := range out {
		start := 10 + r.Float64()*90    // prices $10-$100, like Table 1
		band := 0.3 + r.Float64()*0.8   // daily band $0.3-$1.1 wide
		step := 0.01 + r.Float64()*0.05 // tick-to-tick moves 1-6 cents
		hold := 0.4 + r.Float64()*0.4   // trades on 20-60% of poll ticks
		out[i] = MustGenerate(GenConfig{
			Item:     fmt.Sprintf("ITEM%03d", i),
			Model:    BoundedWalk,
			Ticks:    ticks,
			Interval: interval,
			Start:    start,
			Low:      start - band/2,
			High:     start + band/2,
			Step:     step,
			HoldProb: hold,
			Seed:     seed + int64(i)*7919,
		})
	}
	return out
}

// reflectInto folds v back into [low, high] by reflecting at the boundaries.
func reflectInto(v, low, high float64) float64 {
	for v < low || v > high {
		if v < low {
			v = 2*low - v
		}
		if v > high {
			v = 2*high - v
		}
	}
	return v
}

// quantize rounds v to the nearest multiple of the quantum; a
// non-positive quantum disables rounding.
func quantize(v, quantum float64) float64 {
	if quantum <= 0 {
		return v
	}
	return math.Round(v/quantum) * quantum
}
