package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"d3t/internal/sim"
)

// WriteCSV writes the trace as CSV rows "item,usec,value" with a header.
// The format round-trips through ReadCSV, and real polled traces in the
// same format can be fed to the experiment harness in place of synthetic
// ones.
func WriteCSV(w io.Writer, traces ...*Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"item", "usec", "value"}); err != nil {
		return fmt.Errorf("trace: writing csv header: %w", err)
	}
	for _, tr := range traces {
		for _, tk := range tr.Ticks {
			rec := []string{
				tr.Item,
				strconv.FormatInt(int64(tk.At), 10),
				strconv.FormatFloat(tk.Value, 'f', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("trace: writing csv row for %s: %w", tr.Item, err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses traces in the WriteCSV format. Rows must be grouped by
// item and time-ordered within each item (the natural output order).
func ReadCSV(r io.Reader) ([]*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading csv header: %w", err)
	}
	if header[0] != "item" || header[1] != "usec" || header[2] != "value" {
		return nil, fmt.Errorf("trace: unexpected csv header %v", header)
	}
	var out []*Trace
	var cur *Trace
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading csv line %d: %w", line, err)
		}
		usec, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad time %q: %w", line, rec[1], err)
		}
		val, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad value %q: %w", line, rec[2], err)
		}
		if cur == nil || cur.Item != rec[0] {
			cur = &Trace{Item: rec[0]}
			out = append(out, cur)
		}
		cur.Ticks = append(cur.Ticks, Tick{At: sim.Time(usec), Value: val})
	}
	for _, tr := range out {
		if err := tr.Validate(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
