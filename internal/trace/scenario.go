package trace

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Scenario specs describe the stress shapes the paper never tested:
// flash crowds, correlated regional failures, and diurnal load waves.
// The grammar is
//
//	kind[:key=value[,key=value]...]
//
// with one of three kinds:
//
//	flash    a Pareto burst of arrivals onto one hot item.
//	         at     burst start, fraction of the horizon (default 0.3)
//	         frac   fraction of the population in the crowd (default 0.5)
//	         burst  mean Pareto inter-arrival in ticks (default 0.5,
//	                minimum inter-arrival fixed at burst/10)
//	         leave  crowd departure point, fraction of the horizon
//	                (default 1 = the crowd stays)
//	regional a contiguous block of repositories failing together.
//	         at     failure point, fraction of the horizon (default 0.4)
//	         frac   fraction of repositories in the region (default 0.25)
//	         rejoin recovery point, fraction of the horizon (default 0.7;
//	                1 = never rejoin)
//	diurnal  the attached population follows a cosine load wave.
//	         waves  full day/night cycles over the horizon (default 2)
//	         low    attached fraction at the trough (default 0.3)
//
// Fractions are in [0, 1] and the spec is rejected outside its valid
// ranges, so a fuzzer can hammer ParseScenario and anything accepted
// must build a plan.
//
// A scenario is *time-indexed in ticks* (the workload's update rounds),
// not simulated time: the serving layers translate ticks through their
// own update interval. Everything is deterministic in (spec, population
// sizes, seed).

// ScenarioSpec is a parsed, validated scenario description.
type ScenarioSpec struct {
	// Kind is "flash", "regional" or "diurnal".
	Kind string
	// Params holds the kind's keyword parameters with defaults applied.
	Params map[string]float64
}

// String renders the spec canonically (sorted keys).
func (s *ScenarioSpec) String() string {
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Kind)
	for i, k := range keys {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%g", k, s.Params[k])
	}
	return b.String()
}

// scenarioParam describes one keyword: its default and valid range.
type scenarioParam struct {
	def, min, max float64
}

var scenarioKinds = map[string]map[string]scenarioParam{
	"flash": {
		"at":    {def: 0.3, min: 0, max: 1},
		"frac":  {def: 0.5, min: 0, max: 1},
		"burst": {def: 0.5, min: 1e-6, max: 1e6},
		"leave": {def: 1, min: 0, max: 1},
	},
	"regional": {
		"at":     {def: 0.4, min: 0, max: 1},
		"frac":   {def: 0.25, min: 0, max: 1},
		"rejoin": {def: 0.7, min: 0, max: 1},
	},
	"diurnal": {
		"waves": {def: 2, min: 1, max: 64},
		"low":   {def: 0.3, min: 0, max: 1},
	},
}

// ParseScenario parses and validates a scenario spec. Empty and "none"
// parse to nil (no scenario).
func ParseScenario(spec string) (*ScenarioSpec, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	kind, rest, _ := strings.Cut(spec, ":")
	params, ok := scenarioKinds[kind]
	if !ok {
		return nil, fmt.Errorf("trace: unknown scenario kind %q (want flash, regional or diurnal)", kind)
	}
	s := &ScenarioSpec{Kind: kind, Params: make(map[string]float64, len(params))}
	for k, p := range params {
		s.Params[k] = p.def
	}
	if rest == "" && strings.Contains(spec, ":") {
		return nil, fmt.Errorf("trace: scenario %q has an empty parameter list", spec)
	}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			key, val, found := strings.Cut(kv, "=")
			if !found {
				return nil, fmt.Errorf("trace: scenario parameter %q is not key=value", kv)
			}
			p, ok := params[key]
			if !ok {
				return nil, fmt.Errorf("trace: scenario %s has no parameter %q", kind, key)
			}
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("trace: scenario parameter %s=%q is not a finite number", key, val)
			}
			if v < p.min || v > p.max {
				return nil, fmt.Errorf("trace: scenario parameter %s=%g outside [%g, %g]", key, v, p.min, p.max)
			}
			s.Params[key] = v
		}
	}
	if kind == "regional" && s.Params["rejoin"] < 1 && s.Params["rejoin"] <= s.Params["at"] {
		return nil, fmt.Errorf("trace: regional rejoin=%g must follow at=%g", s.Params["rejoin"], s.Params["at"])
	}
	return s, nil
}

// ScenarioEvent is one scheduled session churn action, in tick time.
type ScenarioEvent struct {
	Tick    int
	Session int // population index, 0-based
	Depart  bool
}

// ScenarioFault is one scheduled repository failure, in tick time.
// RejoinTick < 0 means the repository never recovers.
type ScenarioFault struct {
	Repo       int // repository id, 1-based
	Tick       int
	RejoinTick int
}

// ScenarioPlan is a fully scheduled scenario over a concrete population:
// which sessions start detached, which are in the flash crowd (and so
// watch the hot item), the session churn timeline, and the repository
// fault timeline. Events and Faults are sorted by tick.
type ScenarioPlan struct {
	// Spec is the canonical spec the plan was built from.
	Spec string
	// Kind is the scenario kind.
	Kind string
	// StartDetached[i] reports whether session i begins outside the
	// system (flash-crowd members arrive with the burst).
	StartDetached []bool
	// Hot[i] reports whether session i is a flash-crowd member; the
	// serving layer points its watch-list at the hot item.
	Hot []bool
	// Events is the session churn timeline, sorted by tick.
	Events []ScenarioEvent
	// Faults is the repository failure timeline, sorted by tick.
	Faults []ScenarioFault
}

// BuildScenario schedules a parsed spec over a population of sessions
// and repositories across ticks update rounds. A nil spec returns a nil
// plan. The schedule is deterministic in (spec, sessions, repos, ticks,
// seed).
func BuildScenario(spec *ScenarioSpec, sessions, repos, ticks int, seed int64) (*ScenarioPlan, error) {
	if spec == nil {
		return nil, nil
	}
	if sessions < 0 || repos < 1 || ticks < 1 {
		return nil, fmt.Errorf("trace: scenario over %d sessions, %d repos, %d ticks", sessions, repos, ticks)
	}
	p := &ScenarioPlan{
		Spec:          spec.String(),
		Kind:          spec.Kind,
		StartDetached: make([]bool, sessions),
		Hot:           make([]bool, sessions),
	}
	switch spec.Kind {
	case "flash":
		buildFlash(p, spec, sessions, ticks, seed)
	case "regional":
		buildRegional(p, spec, repos, ticks, seed)
	case "diurnal":
		buildDiurnal(p, spec, sessions, ticks)
	default:
		return nil, fmt.Errorf("trace: unknown scenario kind %q", spec.Kind)
	}
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].Tick < p.Events[j].Tick })
	sort.SliceStable(p.Faults, func(i, j int) bool { return p.Faults[i].Tick < p.Faults[j].Tick })
	return p, nil
}

// buildFlash marks the crowd (the tail of the population, so the steady
// base keeps the low indices) and schedules its Pareto arrival burst
// onto the start tick, plus an optional departure wave.
func buildFlash(p *ScenarioPlan, spec *ScenarioSpec, sessions, ticks int, seed int64) {
	crowd := int(math.Round(spec.Params["frac"] * float64(sessions)))
	if crowd > sessions {
		crowd = sessions
	}
	start := tickAt(spec.Params["at"], ticks)
	leave := -1
	if spec.Params["leave"] < 1 {
		leave = tickAt(spec.Params["leave"], ticks)
	}
	mean := spec.Params["burst"]
	r := newRand(seed)
	at := float64(start)
	for i := sessions - crowd; i < sessions; i++ {
		p.StartDetached[i] = true
		p.Hot[i] = true
		tick := int(at)
		if tick >= ticks {
			tick = ticks - 1
		}
		p.Events = append(p.Events, ScenarioEvent{Tick: tick, Session: i})
		if leave > tick {
			p.Events = append(p.Events, ScenarioEvent{Tick: leave, Session: i, Depart: true})
		}
		at += pareto(r, mean/10, mean)
	}
}

// buildRegional fails a contiguous block of repository ids together —
// the region — and rejoins the whole block at once.
func buildRegional(p *ScenarioPlan, spec *ScenarioSpec, repos, ticks int, seed int64) {
	size := int(math.Round(spec.Params["frac"] * float64(repos)))
	if size < 1 {
		size = 1
	}
	if size >= repos {
		size = repos - 1 // never fail every repository
	}
	if size < 1 {
		return
	}
	r := newRand(seed)
	start := 1 + int(r.Uint64()%uint64(repos-size+1))
	at := tickAt(spec.Params["at"], ticks)
	rejoin := -1
	if spec.Params["rejoin"] < 1 {
		rejoin = tickAt(spec.Params["rejoin"], ticks)
	}
	for id := start; id < start+size; id++ {
		p.Faults = append(p.Faults, ScenarioFault{Repo: id, Tick: at, RejoinTick: rejoin})
	}
}

// buildDiurnal walks the horizon tracking a cosine load target and
// departs/returns sessions round-robin from the tail to follow it.
func buildDiurnal(p *ScenarioPlan, spec *ScenarioSpec, sessions, ticks int) {
	waves := spec.Params["waves"]
	low := spec.Params["low"]
	attached := sessions // everyone starts attached (cos(0) = 1)
	for tick := 1; tick < ticks; tick++ {
		phase := 2 * math.Pi * waves * float64(tick) / float64(ticks)
		frac := low + (1-low)*(0.5+0.5*math.Cos(phase))
		target := int(math.Round(frac * float64(sessions)))
		for attached > target {
			attached--
			p.Events = append(p.Events, ScenarioEvent{Tick: tick, Session: attached, Depart: true})
		}
		for attached < target {
			p.Events = append(p.Events, ScenarioEvent{Tick: tick, Session: attached})
			attached++
		}
	}
}

// tickAt maps a horizon fraction onto a tick index in [0, ticks-1].
func tickAt(frac float64, ticks int) int {
	t := int(math.Round(frac * float64(ticks-1)))
	if t < 0 {
		t = 0
	}
	if t >= ticks {
		t = ticks - 1
	}
	return t
}

// newRand and pareto are a tiny self-contained deterministic generator
// (splitmix64 + inverse-CDF bounded Pareto) so scenario schedules do not
// depend on math/rand's version-sensitive stream.
type scenarioRand struct{ state uint64 }

func newRand(seed int64) *scenarioRand {
	return &scenarioRand{state: uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
}

func (r *scenarioRand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *scenarioRand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// pareto draws a Pareto-distributed inter-arrival with the given minimum
// and mean (mean > min implied by construction; equal collapses to the
// constant min).
func pareto(r *scenarioRand, min, mean float64) float64 {
	if mean <= min {
		return min
	}
	alpha := mean / (mean - min)
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return min / math.Pow(1-u, 1/alpha)
}
