package trace

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"d3t/internal/sim"
)

// syntheticNames are the registered families that generate (rather than
// replay) traces; csv is tested separately with a recorded file.
var syntheticNames = []string{"stocks", "bursty", "sensor", "pareto"}

func TestWorkloadRegistry(t *testing.T) {
	names := WorkloadNames()
	for _, want := range append([]string{"csv"}, syntheticNames...) {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q: %v", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Errorf("names not sorted: %v", names)
		}
	}
	if _, err := LookupWorkload("no-such-family"); err == nil {
		t.Error("unknown workload accepted")
	}
	w, err := LookupWorkload("")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "stocks" {
		t.Errorf("empty name resolved to %q, want stocks", w.Name())
	}
	for _, n := range names {
		w, err := LookupWorkload(n)
		if err != nil {
			t.Fatal(err)
		}
		if w.Name() != n {
			t.Errorf("workload %q reports name %q", n, w.Name())
		}
		if w.Describe() == "" {
			t.Errorf("workload %q has no description", n)
		}
	}
}

func TestRegisterWorkloadRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	RegisterWorkload(stocksWorkload{})
}

func TestSyntheticWorkloadsDeterministic(t *testing.T) {
	spec := WorkloadSpec{Items: 5, Ticks: 400, Interval: sim.Second, Seed: 42}
	for _, name := range syntheticNames {
		w, err := LookupWorkload(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := w.Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := w.Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same spec produced different traces", name)
		}
		other := spec
		other.Seed = 43
		c, err := w.Generate(other)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical traces", name)
		}
	}
}

func TestSyntheticWorkloadInvariants(t *testing.T) {
	spec := WorkloadSpec{Items: 4, Ticks: 300, Interval: 2 * sim.Second, Seed: 7}
	for _, name := range syntheticNames {
		w, err := LookupWorkload(name)
		if err != nil {
			t.Fatal(err)
		}
		traces, err := w.Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(traces) != spec.Items {
			t.Fatalf("%s: got %d traces, want %d", name, len(traces), spec.Items)
		}
		seen := make(map[string]bool)
		for _, tr := range traces {
			if err := tr.Validate(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
			if seen[tr.Item] {
				t.Errorf("%s: duplicate item %s", name, tr.Item)
			}
			seen[tr.Item] = true
			if tr.Len() != spec.Ticks {
				t.Errorf("%s: trace %s has %d ticks, want %d", name, tr.Item, tr.Len(), spec.Ticks)
			}
			for i, tk := range tr.Ticks {
				if want := sim.Time(i) * spec.Interval; tk.At != want {
					t.Fatalf("%s: trace %s tick %d at %v, want %v", name, tr.Item, i, tk.At, want)
				}
			}
			// Each family must actually move: a constant trace would make
			// every dissemination run trivially perfect.
			if st := tr.Summarize(); st.Max == st.Min {
				t.Errorf("%s: trace %s never changes value", name, tr.Item)
			}
		}
	}
}

func TestCSVWorkloadReplay(t *testing.T) {
	src := GenerateSet(6, 50, sim.Second, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "traces.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(f, src...); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	w, err := LookupWorkload("csv")
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.Generate(WorkloadSpec{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, src) {
		t.Error("replayed traces differ from the recorded set")
	}

	// Items and Ticks cap the replayed subset.
	capped, err := w.Generate(WorkloadSpec{Path: path, Items: 2, Ticks: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 2 {
		t.Fatalf("got %d capped traces, want 2", len(capped))
	}
	for _, tr := range capped {
		if tr.Len() != 10 {
			t.Errorf("capped trace %s has %d ticks, want 10", tr.Item, tr.Len())
		}
	}

	if _, err := w.Generate(WorkloadSpec{}); err == nil {
		t.Error("csv workload without a path accepted")
	}
	if _, err := w.Generate(WorkloadSpec{Path: filepath.Join(dir, "missing.csv")}); err == nil {
		t.Error("csv workload with a missing file accepted")
	}
}

func TestStocksWorkloadMatchesGenerateSet(t *testing.T) {
	// The "stocks" family is the paper's workload; it must reproduce
	// GenerateSet exactly so figure results are unchanged by the engine.
	w, err := LookupWorkload("stocks")
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.Generate(WorkloadSpec{Items: 3, Ticks: 100, Interval: sim.Second, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	want := GenerateSet(3, 100, sim.Second, 11)
	if !reflect.DeepEqual(got, want) {
		t.Error("stocks workload diverges from GenerateSet")
	}
}
