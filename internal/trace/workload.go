package trace

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"sync"

	"d3t/internal/sim"
)

// WorkloadSpec sizes a workload: how many items, how long, how dense.
// Every field is interpreted the same way by all workload families, so a
// sweep can swap families without re-tuning its scale.
type WorkloadSpec struct {
	// Items is the number of traces (data items) to produce.
	Items int
	// Ticks is the number of observations per trace.
	Ticks int
	// Interval is the time between observations.
	Interval sim.Time
	// Seed makes generation deterministic: the same spec always produces
	// the same traces, regardless of callers running concurrently.
	Seed int64
	// Path is consumed by file-backed workloads (csv replay); synthetic
	// families ignore it.
	Path string
}

func (s WorkloadSpec) withDefaults() WorkloadSpec {
	if s.Items <= 0 {
		s.Items = 100
	}
	if s.Ticks <= 0 {
		s.Ticks = 10000
	}
	if s.Interval <= 0 {
		s.Interval = sim.Second
	}
	return s
}

// Workload is a pluggable trace-set generator — one family of dynamic-data
// scenarios (stock prices, sensor telemetry, bursty feeds, ...). Generate
// must be deterministic in the spec and safe for concurrent use.
type Workload interface {
	// Name is the registry key, e.g. "stocks".
	Name() string
	// Describe is a one-line summary for -list style output.
	Describe() string
	// Generate produces the trace set for the spec.
	Generate(spec WorkloadSpec) ([]*Trace, error)
}

// registry holds the named workload families.
var (
	registryMu sync.RWMutex
	registry   = make(map[string]Workload)
)

// RegisterWorkload adds a workload family to the registry. Registering a
// duplicate name panics: families are package-level singletons and a
// silent override would make Config.Workload ambiguous.
func RegisterWorkload(w Workload) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if w.Name() == "" {
		panic("trace: workload with empty name")
	}
	if _, dup := registry[w.Name()]; dup {
		panic(fmt.Sprintf("trace: duplicate workload %q", w.Name()))
	}
	registry[w.Name()] = w
}

// LookupWorkload resolves a family by name; the empty string selects
// "stocks", the paper's workload.
func LookupWorkload(name string) (Workload, error) {
	if name == "" {
		name = "stocks"
	}
	registryMu.RLock()
	defer registryMu.RUnlock()
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("trace: unknown workload %q (have %v)", name, workloadNamesLocked())
	}
	return w, nil
}

// WorkloadNames lists the registered families in sorted order.
func WorkloadNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return workloadNamesLocked()
}

func workloadNamesLocked() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterWorkload(stocksWorkload{})
	RegisterWorkload(burstyWorkload{})
	RegisterWorkload(sensorWorkload{})
	RegisterWorkload(paretoWorkload{})
	RegisterWorkload(csvWorkload{})
}

// stocksWorkload is the paper's workload: bounded random walks with
// per-item bands and step sizes scattered around the Table 1 traces.
type stocksWorkload struct{}

func (stocksWorkload) Name() string { return "stocks" }
func (stocksWorkload) Describe() string {
	return "bounded random-walk stock prices (the paper's Section 6.1 traces)"
}
func (stocksWorkload) Generate(spec WorkloadSpec) ([]*Trace, error) {
	spec = spec.withDefaults()
	return GenerateSet(spec.Items, spec.Ticks, spec.Interval, spec.Seed), nil
}

// burstyWorkload produces regime-switching traces: long calm stretches
// where the price barely trades, interrupted by bursts where it moves fast
// and often. Regime durations are geometric, so bursts arrive without
// warning — the stress case for filtering and for queueing nodes.
type burstyWorkload struct{}

func (burstyWorkload) Name() string { return "bursty" }
func (burstyWorkload) Describe() string {
	return "regime-switching feeds: calm stretches broken by high-volatility bursts"
}
func (burstyWorkload) Generate(spec WorkloadSpec) ([]*Trace, error) {
	spec = spec.withDefaults()
	out := make([]*Trace, spec.Items)
	for i := range out {
		r := rand.New(rand.NewSource(spec.Seed + int64(i)*7919))
		start := 10 + r.Float64()*90
		band := 0.5 + r.Float64()*1.5 // wider than stocks: bursts travel
		// Calm regime: tiny steps, rare trades. Burst regime: steps near
		// the top of the tolerance band, trading almost every tick.
		calmStep, burstStep := 0.01+r.Float64()*0.01, 0.08+r.Float64()*0.12
		calmHold, burstHold := 0.9, 0.05
		// Mean regime lengths in ticks; calm dominates ~10:1.
		calmLen, burstLen := 200.0, 20.0

		tr := &Trace{Item: fmt.Sprintf("BURST%03d", i), Ticks: make([]Tick, 0, spec.Ticks)}
		v := start
		low, high := start-band/2, start+band/2
		inBurst := false
		for t := 0; t < spec.Ticks; t++ {
			tr.Ticks = append(tr.Ticks, Tick{At: sim.Time(t) * spec.Interval, Value: quantize(v, 0.01)})
			// Geometric regime switching.
			if inBurst {
				if r.Float64() < 1/burstLen {
					inBurst = false
				}
			} else if r.Float64() < 1/calmLen {
				inBurst = true
			}
			step, hold := calmStep, calmHold
			if inBurst {
				step, hold = burstStep, burstHold
			}
			if r.Float64() < hold {
				continue
			}
			v = reflectInto(v+(2*r.Float64()-1)*step, low, high)
		}
		out[i] = tr
	}
	return out, nil
}

// sensorWorkload produces periodic signals with noise: a diurnal-style
// sinusoid (think temperature or load telemetry) plus mean-zero jitter.
// Unlike the random walks, most of the movement is predictable drift, so
// per-update filtering stays effective at stringent tolerances.
type sensorWorkload struct{}

func (sensorWorkload) Name() string { return "sensor" }
func (sensorWorkload) Describe() string {
	return "periodic sensor telemetry: sinusoidal drift plus measurement noise"
}
func (sensorWorkload) Generate(spec WorkloadSpec) ([]*Trace, error) {
	spec = spec.withDefaults()
	out := make([]*Trace, spec.Items)
	for i := range out {
		r := rand.New(rand.NewSource(spec.Seed + int64(i)*7919))
		base := 15 + r.Float64()*20  // resting value, e.g. 15-35 degrees
		amp := 0.3 + r.Float64()*0.7 // swing comparable to the band
		period := 0.5 + r.Float64()  // 0.5-1.5 cycles across the trace
		phase := r.Float64() * 2 * math.Pi
		noise := 0.01 + r.Float64()*0.03 // per-tick jitter

		tr := &Trace{Item: fmt.Sprintf("SENSOR%03d", i), Ticks: make([]Tick, 0, spec.Ticks)}
		for t := 0; t < spec.Ticks; t++ {
			frac := float64(t) / float64(spec.Ticks)
			v := base + amp*math.Sin(phase+2*math.Pi*period*frac) + noise*r.NormFloat64()
			tr.Ticks = append(tr.Ticks, Tick{At: sim.Time(t) * spec.Interval, Value: quantize(v, 0.01)})
		}
		out[i] = tr
	}
	return out, nil
}

// paretoWorkload produces heavy-tailed jump processes: most ticks hold or
// move a hair, but jump magnitudes are Pareto-distributed, so a small
// fraction of updates leap across many tolerance bands at once — the
// worst case for staleness when a node is mid-backlog.
type paretoWorkload struct{}

func (paretoWorkload) Name() string { return "pareto" }
func (paretoWorkload) Describe() string {
	return "heavy-tailed (Pareto) jump processes: rare updates that leap across tolerance bands"
}
func (paretoWorkload) Generate(spec WorkloadSpec) ([]*Trace, error) {
	spec = spec.withDefaults()
	const alpha = 1.5 // classic heavy-tail shape: finite mean, infinite variance
	out := make([]*Trace, spec.Items)
	for i := range out {
		r := rand.New(rand.NewSource(spec.Seed + int64(i)*7919))
		start := 10 + r.Float64()*90
		band := 1 + r.Float64()*2 // wide band so the tail has room
		xm := 0.005 + r.Float64()*0.01
		hold := 0.5 + r.Float64()*0.3

		tr := &Trace{Item: fmt.Sprintf("PARETO%03d", i), Ticks: make([]Tick, 0, spec.Ticks)}
		v := start
		low, high := start-band/2, start+band/2
		for t := 0; t < spec.Ticks; t++ {
			tr.Ticks = append(tr.Ticks, Tick{At: sim.Time(t) * spec.Interval, Value: quantize(v, 0.01)})
			if r.Float64() < hold {
				continue
			}
			// Pareto(xm, alpha) magnitude via inverse transform, clamped to
			// the band width so one draw cannot pin v to a boundary forever.
			mag := xm / math.Pow(1-r.Float64(), 1/alpha)
			if mag > band {
				mag = band
			}
			if r.Float64() < 0.5 {
				mag = -mag
			}
			v = reflectInto(v+mag, low, high)
		}
		out[i] = tr
	}
	return out, nil
}

// csvWorkload replays traces recorded in the WriteCSV format (for
// example, real polled feeds or tracegen output), so measured workloads
// can stand in for synthetic ones anywhere a spec is accepted.
type csvWorkload struct{}

func (csvWorkload) Name() string { return "csv" }
func (csvWorkload) Describe() string {
	return "replay of recorded traces from a CSV file (see WriteCSV/ReadCSV)"
}
func (csvWorkload) Generate(spec WorkloadSpec) ([]*Trace, error) {
	if spec.Path == "" {
		return nil, fmt.Errorf("trace: csv workload needs a file path")
	}
	f, err := os.Open(spec.Path)
	if err != nil {
		return nil, fmt.Errorf("trace: csv workload: %w", err)
	}
	defer f.Close()
	traces, err := ReadCSV(f)
	if err != nil {
		return nil, fmt.Errorf("trace: csv workload %s: %w", spec.Path, err)
	}
	if len(traces) == 0 {
		return nil, fmt.Errorf("trace: csv workload %s holds no traces", spec.Path)
	}
	// The spec's Items/Ticks act as caps on the recorded set: a sweep can
	// replay a subset without editing the file. Zero means "all".
	if spec.Items > 0 && spec.Items < len(traces) {
		traces = traces[:spec.Items]
	}
	if spec.Ticks > 0 {
		for _, tr := range traces {
			if len(tr.Ticks) > spec.Ticks {
				tr.Ticks = tr.Ticks[:spec.Ticks]
			}
		}
	}
	return traces, nil
}
