package trace

import "d3t/internal/sim"

// Table1Ticker describes one of the six example traces the paper lists in
// Table 1, with the observed price band.
type Table1Ticker struct {
	Symbol string
	Min    float64
	Max    float64
}

// Table1Tickers are the six example traces from Table 1 of the paper.
// (The paper collected 100 traces; these six are the ones it tabulates.)
var Table1Tickers = []Table1Ticker{
	{"MSFT", 60.09, 60.85},
	{"SUNW", 10.60, 10.99},
	{"DELL", 27.16, 28.26},
	{"QCOM", 40.38, 41.23},
	{"INTC", 33.66, 34.239},
	{"ORCL", 16.51, 17.10},
}

// Table1Traces generates synthetic stand-ins for the Table 1 traces:
// 10000 ticks at 1-second intervals, bounded to each ticker's published
// min/max band. The substitution is documented in DESIGN.md.
func Table1Traces(seed int64) []*Trace {
	return Table1TracesSized(10000, seed)
}

// Table1TracesSized is Table1Traces with a configurable tick count, for
// fast tests and scaled-down benchmarks.
func Table1TracesSized(ticks int, seed int64) []*Trace {
	out := make([]*Trace, len(Table1Tickers))
	for i, tk := range Table1Tickers {
		band := tk.Max - tk.Min
		out[i] = MustGenerate(GenConfig{
			Item:     tk.Symbol,
			Model:    BoundedWalk,
			Ticks:    ticks,
			Interval: sim.Second,
			Start:    (tk.Min + tk.Max) / 2,
			Low:      tk.Min,
			High:     tk.Max,
			// Step sized so the walk explores the whole band over the
			// trace while individual moves stay at realistic cent scale.
			Step:     band / 15,
			HoldProb: 0.8,
			Seed:     seed + int64(i)*104729,
		})
	}
	return out
}
