// Package trace models streams of dynamic data items — the stock-price
// traces of Section 6.1 of the paper — and provides synthetic generators
// that substitute for the authors' 100 live polls of finance.yahoo.com.
//
// A Trace is a piecewise-constant signal: the source holds Ticks[i].Value
// from Ticks[i].At until the next tick. The experiments only depend on the
// tick rate (~1/s) and on the excursion scale relative to the coherency
// tolerances ($0.01-$0.999), both of which the generators reproduce.
package trace

import (
	"fmt"
	"math"

	"d3t/internal/sim"
)

// Tick is a single observed value of a data item at a point in time.
type Tick struct {
	At    sim.Time
	Value float64
}

// Trace is the full update history of one data item at its source.
type Trace struct {
	// Item names the data item, e.g. a stock ticker symbol.
	Item string
	// Ticks is the time-ordered update sequence. Ticks[0] is the initial
	// value; the source value is piecewise constant between ticks.
	Ticks []Tick
}

// Len returns the number of ticks.
func (t *Trace) Len() int { return len(t.Ticks) }

// Duration returns the time spanned from the first to the last tick, or 0
// for traces with fewer than two ticks.
func (t *Trace) Duration() sim.Time {
	if len(t.Ticks) < 2 {
		return 0
	}
	return t.Ticks[len(t.Ticks)-1].At - t.Ticks[0].At
}

// ValueAt returns the source value at time at: the value of the latest tick
// with Ticks[i].At <= at. It returns the first tick's value for times
// before the trace begins and false if the trace is empty.
func (t *Trace) ValueAt(at sim.Time) (float64, bool) {
	if len(t.Ticks) == 0 {
		return 0, false
	}
	// Binary search for the last tick at or before `at`.
	lo, hi := 0, len(t.Ticks)-1
	if t.Ticks[0].At >= at {
		return t.Ticks[0].Value, true
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if t.Ticks[mid].At <= at {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return t.Ticks[lo].Value, true
}

// Stats summarizes a trace the way Table 1 of the paper does.
type Stats struct {
	Item     string
	Ticks    int
	Duration sim.Time
	Min      float64
	Max      float64
	// MeanAbsStep is the mean absolute tick-to-tick change; it calibrates
	// how stringent a given coherency tolerance is for this trace.
	MeanAbsStep float64
}

// Summarize computes Table 1-style statistics for the trace.
func (t *Trace) Summarize() Stats {
	s := Stats{Item: t.Item, Ticks: len(t.Ticks), Duration: t.Duration()}
	if len(t.Ticks) == 0 {
		return s
	}
	s.Min, s.Max = t.Ticks[0].Value, t.Ticks[0].Value
	var absSum float64
	for i, tk := range t.Ticks {
		s.Min = math.Min(s.Min, tk.Value)
		s.Max = math.Max(s.Max, tk.Value)
		if i > 0 {
			absSum += math.Abs(tk.Value - t.Ticks[i-1].Value)
		}
	}
	if len(t.Ticks) > 1 {
		s.MeanAbsStep = absSum / float64(len(t.Ticks)-1)
	}
	return s
}

// String renders the stats as a Table 1 row.
func (s Stats) String() string {
	return fmt.Sprintf("%-6s ticks=%-6d dur=%-10v min=%-8.3f max=%-8.3f meanStep=%.4f",
		s.Item, s.Ticks, s.Duration, s.Min, s.Max, s.MeanAbsStep)
}

// Validate checks trace well-formedness: non-empty item name, strictly
// increasing timestamps, finite values.
func (t *Trace) Validate() error {
	if t.Item == "" {
		return fmt.Errorf("trace: empty item name")
	}
	for i, tk := range t.Ticks {
		if math.IsNaN(tk.Value) || math.IsInf(tk.Value, 0) {
			return fmt.Errorf("trace %s: tick %d has non-finite value %v", t.Item, i, tk.Value)
		}
		if i > 0 && tk.At <= t.Ticks[i-1].At {
			return fmt.Errorf("trace %s: tick %d at %v not after tick %d at %v",
				t.Item, i, tk.At, i-1, t.Ticks[i-1].At)
		}
	}
	return nil
}

// Project returns the sub-sequence of ticks a consumer with coherency
// tolerance c would receive under pure value filtering (Eq. 3 of the
// paper): a tick is included when it differs from the last included value
// by more than c. The first tick is always included. This is the "view" /
// "projection" of the data stream described in Section 2.
func (t *Trace) Project(c float64) *Trace {
	out := &Trace{Item: t.Item}
	if len(t.Ticks) == 0 {
		return out
	}
	out.Ticks = append(out.Ticks, t.Ticks[0])
	last := t.Ticks[0].Value
	for _, tk := range t.Ticks[1:] {
		if math.Abs(tk.Value-last) > c {
			out.Ticks = append(out.Ticks, tk)
			last = tk.Value
		}
	}
	return out
}
