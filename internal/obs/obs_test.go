package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"d3t/internal/repository"
)

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}
	s := h.Snapshot()
	if s.Count != 0 || s.P50Ms != 0 || s.P95Ms != 0 || s.P99Ms != 0 {
		t.Fatalf("empty snapshot = %+v, want zeros", s)
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	var h Histogram
	// 100 samples, all in the bucket [64, 128): every quantile must
	// report that bucket's midpoint.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	want := float64(64+128) / 2
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != want {
			t.Fatalf("q=%v: got %v, want %v", q, got, want)
		}
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
}

func TestHistogramQuantileOverflowBucket(t *testing.T) {
	var h Histogram
	huge := int64(1) << 60 // way past the last finite bucket edge
	h.Observe(huge)
	// The overflow bucket reports its lower bound, not a midpoint.
	want := float64(uint64(1) << (HistBuckets - 2))
	if got := h.Quantile(0.5); got != want {
		t.Fatalf("overflow p50 = %v, want lower bound %v", got, want)
	}
}

func TestHistogramQuantileSpread(t *testing.T) {
	var h Histogram
	// 90 fast samples (~1ms), 10 slow (~1s): p50 must sit in the fast
	// bucket, p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(1000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000)
	}
	if p50 := h.Quantile(0.5); p50 > 2048 {
		t.Fatalf("p50 = %v µs, want within the ~1ms bucket", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 500_000 {
		t.Fatalf("p99 = %v µs, want within the ~1s bucket", p99)
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if got := h.Quantile(1); got != 0 {
		t.Fatalf("negative sample landed at %v, want bucket 0", got)
	}
}

func TestEWMA(t *testing.T) {
	var e EWMA
	if e.Value() != 0 {
		t.Fatalf("zero EWMA reads %v", e.Value())
	}
	e.Observe(100)
	if e.Value() != 100 {
		t.Fatalf("first sample must seed: got %v", e.Value())
	}
	e.Observe(200)
	want := 100 + Alpha*(200-100)
	if math.Abs(e.Value()-want) > 1e-9 {
		t.Fatalf("after second sample: got %v, want %v", e.Value(), want)
	}
	for i := 0; i < 200; i++ {
		e.Observe(500)
	}
	if math.Abs(e.Value()-500) > 1e-6 {
		t.Fatalf("EWMA did not converge: %v", e.Value())
	}
}

func TestNilSafety(t *testing.T) {
	// Every record-path method must be a no-op on nil receivers — this
	// is the "disabled observability" contract every backend relies on.
	var tr *Tree
	o := tr.Node(3)
	if o != nil {
		t.Fatalf("nil tree handed out a non-nil node")
	}
	o.Apply1()
	o.DepPass(1, 2, 3)
	o.SessPass(1, 2)
	o.Admit1()
	o.Redirect1()
	o.Migrate1()
	o.Resync(5)
	o.Batch(7)
	o.ObserveHop(10)
	o.ObserveSourceLatency(10)
	o.ObserveRedirectLatency(10)
	o.ObserveViolation(10)
	o.ObserveEdgeDelay(1, 10)
	if o.EdgeDelay(1) != 0 || o.ID() != repository.NoID {
		t.Fatalf("nil node leaked state")
	}
	if s := o.Snapshot(0); s.Counters.Received != 0 {
		t.Fatalf("nil node snapshot: %+v", s)
	}
	if s := tr.Snapshot(0); len(s.Nodes) != 0 {
		t.Fatalf("nil tree snapshot: %+v", s)
	}
	tr.Merged()
	if tr.TracerOrNil() != nil {
		t.Fatalf("nil tree has a tracer")
	}

	var tc *Tracer
	if id := tc.Sample("x", 0, 1); id != 0 {
		t.Fatalf("nil tracer sampled id %d", id)
	}
	tc.Hop(1, 2, 3)
	tc.Record(Trace{})
	if tc.Traces() != nil {
		t.Fatalf("nil tracer returned traces")
	}

	var h *Histogram
	h.Observe(1)
	h.Merge(nil)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("nil histogram leaked state")
	}

	var e *EWMA
	e.Observe(1)
	if e.Value() != 0 || e.Count() != 0 {
		t.Fatalf("nil EWMA leaked state")
	}

	var l *Logger
	l.Infof("dropped %d", 1)
	l.Debugf("dropped")
	if l.Enabled(LevelInfo) {
		t.Fatalf("nil logger claims enabled")
	}

	var ms *MetricsServer
	if ms.Addr() != "" || ms.Close() != nil {
		t.Fatalf("nil metrics server misbehaved")
	}
}

// TestObsAllocFree pins the whole record path — counters, histograms,
// EWMAs, warm edge-delay slots, and the unsampled tracer check — at
// zero heap allocations per operation, node-core style.
func TestObsAllocFree(t *testing.T) {
	tree := NewTree()
	o := tree.Node(1)
	o.ObserveEdgeDelay(2, 100) // warm the edge slot
	tc := NewTracer(1 << 30)   // effectively never samples after the first
	tc.Sample("warm", 1, 0)

	allocs := testing.AllocsPerRun(1000, func() {
		o.Apply1()
		o.DepPass(3, 1, 4)
		o.SessPass(2, 1)
		o.Batch(8)
		o.ObserveHop(1500)
		o.ObserveSourceLatency(4500)
		o.ObserveEdgeDelay(2, 1200)
		if tc.Sample("item", 1, 42) != 0 {
			t.Fatal("unexpected sample")
		}
		tc.Hop(0, 1, 42)
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %v allocs/op, want 0", allocs)
	}
}

func TestNodeSnapshotAndLoadFold(t *testing.T) {
	tree := NewTree()
	o := tree.Node(4)
	for i := 0; i < 100; i++ {
		o.Apply1()
	}
	o.DepPass(5, 3, 8)
	o.SessPass(2, 6)
	o.Admit1()
	o.Redirect1()
	o.Migrate1()
	o.Resync(4)
	o.Batch(16)
	o.ObserveEdgeDelay(2, 2000)

	// 100 updates over 2 simulated seconds = 50/s; the first fold seeds
	// the EWMA directly.
	s := o.Snapshot(2_000_000)
	c := s.Counters
	if c.Received != 100 || c.DepForwarded != 5 || c.DepSuppressed != 3 || c.DepChecks != 8 {
		t.Fatalf("dep counters: %+v", c)
	}
	if c.Delivered != 2 || c.Filtered != 6 || c.Admits != 1 || c.Redirects != 1 ||
		c.Migrations != 1 || c.Resyncs != 4 || c.Batches != 1 || c.BatchUpdates != 16 {
		t.Fatalf("session/batch counters: %+v", c)
	}
	if math.Abs(s.LoadEWMA-50) > 1e-9 {
		t.Fatalf("load EWMA = %v, want 50", s.LoadEWMA)
	}
	if math.Abs(s.EdgeDelayMs[2]-2.0) > 1e-9 {
		t.Fatalf("edge delay = %v ms, want 2", s.EdgeDelayMs[2])
	}

	// A second fold with no new updates blends toward zero.
	s2 := o.Snapshot(4_000_000)
	if want := 50 * (1 - Alpha); math.Abs(s2.LoadEWMA-want) > 1e-9 {
		t.Fatalf("second fold = %v, want %v", s2.LoadEWMA, want)
	}
}

func TestTreeSnapshotSortedAndMerged(t *testing.T) {
	tree := NewTree()
	tree.Node(3).ObserveHop(1000)
	tree.Node(1).ObserveHop(3000)
	tree.Node(2).ObserveSourceLatency(9000)
	s := tree.Snapshot(0)
	if len(s.Nodes) != 3 || s.Nodes[0].ID != 1 || s.Nodes[1].ID != 2 || s.Nodes[2].ID != 3 {
		t.Fatalf("snapshot not sorted by id: %+v", s.Nodes)
	}
	hop, srcLat, _, _ := tree.Merged()
	if hop.Count != 2 || srcLat.Count != 1 {
		t.Fatalf("merged counts: hop=%d src=%d", hop.Count, srcLat.Count)
	}
}

func TestTracerSamplingAndHops(t *testing.T) {
	tc := NewTracer(2) // every 2nd update
	id1 := tc.Sample("a", repository.SourceID, 10)
	id2 := tc.Sample("b", repository.SourceID, 20)
	id3 := tc.Sample("c", repository.SourceID, 30)
	if id1 == 0 || id2 != 0 || id3 == 0 {
		t.Fatalf("sampling pattern: %d %d %d", id1, id2, id3)
	}
	tc.Hop(id1, 1, 15)
	tc.Hop(id1, 2, 22)
	tc.Hop(0, 9, 99)      // untraced update: ignored
	tc.Hop(999, 9, 99)    // unknown id: ignored
	tc.Record(Trace{ID: 77, Item: "z", Hops: []Hop{{Node: 5, At: 1}}})

	traces := tc.Traces()
	if len(traces) != 3 {
		t.Fatalf("got %d traces, want 3: %+v", len(traces), traces)
	}
	byID := map[uint64]Trace{}
	for _, tr := range traces {
		byID[tr.ID] = tr
	}
	tr1 := byID[id1]
	if tr1.Item != "a" || len(tr1.Hops) != 3 {
		t.Fatalf("trace 1: %+v", tr1)
	}
	for i := 1; i < len(tr1.Hops); i++ {
		if tr1.Hops[i].At < tr1.Hops[i-1].At {
			t.Fatalf("non-monotone hops: %+v", tr1.Hops)
		}
	}
	if byID[77].Item != "z" {
		t.Fatalf("recorded trace missing: %+v", traces)
	}

	// Returned hop slices must be copies.
	tr1.Hops[0].Node = 42
	if tc.Traces()[0].Hops[0].Node == 42 && tc.Traces()[0].ID == id1 {
		t.Fatalf("Traces leaked internal hop slice")
	}

	if NewTracer(0) != nil {
		t.Fatalf("every<1 must disable the tracer")
	}
}

func TestTracerBounds(t *testing.T) {
	tc := NewTracer(1)
	for i := 0; i < maxOpen+maxTraces+100; i++ {
		tc.Sample("x", 0, int64(i))
	}
	if got := len(tc.Traces()); got > maxTraces+maxOpen {
		t.Fatalf("tracer grew unbounded: %d traces", got)
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Infof("hello %s", "world")
	l.Debugf("hidden")
	out := buf.String()
	if !strings.Contains(out, "hello world") || strings.Contains(out, "hidden") {
		t.Fatalf("info-level output: %q", out)
	}
	if !l.Enabled(LevelInfo) || l.Enabled(LevelDebug) {
		t.Fatalf("level gating broken")
	}

	buf.Reset()
	d := NewLogger(&buf, LevelDebug)
	d.Debugf("shown")
	if !strings.Contains(buf.String(), "shown") {
		t.Fatalf("debug-level output: %q", buf.String())
	}

	if NewLogger(&buf, LevelQuiet) != nil || NewLogger(nil, LevelInfo) != nil {
		t.Fatalf("quiet/nil-writer logger must be nil")
	}
}

func TestServeMetrics(t *testing.T) {
	tree := NewTree()
	tree.Node(1).Apply1()
	tree.Node(1).ObserveHop(1500)
	srv, err := ServeMetrics("127.0.0.1:0", func() any { return tree.Snapshot(1_000_000) })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	var snap TreeSnapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("bad /metrics JSON: %v", err)
	}
	if len(snap.Nodes) != 1 || snap.Nodes[0].Counters.Received != 1 || snap.Nodes[0].Hop.Count != 1 {
		t.Fatalf("metrics snapshot: %+v", snap)
	}
	if !bytes.Contains(get("/debug/vars"), []byte("memstats")) {
		t.Fatalf("expvar page missing memstats")
	}
	if !bytes.Contains(get("/debug/pprof/"), []byte("goroutine")) {
		t.Fatalf("pprof index missing profiles")
	}
}
