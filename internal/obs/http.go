package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// MetricsServer is the per-process HTTP export surface behind the
// `-metrics-addr` flags: /metrics serves the caller's snapshot as
// JSON, /debug/vars is the standard expvar page, and /debug/pprof/*
// exposes the runtime profiles (CPU, heap, goroutine, …) so a
// paper-scale run can be profiled while it disseminates.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeMetrics binds addr (e.g. "localhost:6060" or ":0") and serves
// the export surface in a background goroutine. snapshot is called per
// /metrics request; it must be safe for concurrent use (obs snapshots
// are). Close releases the listener.
func ServeMetrics(addr string, snapshot func() any) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &MetricsServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *MetricsServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server and releases the listener. Nil-safe.
func (s *MetricsServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
