package obs

import (
	"sort"
	"sync"
	"sync/atomic"

	"d3t/internal/repository"
)

// Hop is one stamp on an update's path: the node it reached and the
// clock reading there, in microseconds. All hops of one trace share a
// time base — sim time on the simulated backends, wall-clock micros on
// netio (one machine in tests, so stamps stay monotone along a path).
type Hop struct {
	Node repository.ID `json:"node"`
	At   int64         `json:"atMicros"`
}

// Trace is one sampled update followed from the source through every
// hop. On a fan-out tree the hop list is a preorder walk: each branch
// appends below its parent's stamps, and timestamps are monotone along
// every root-to-leaf path (not necessarily across branches).
type Trace struct {
	ID   uint64 `json:"id"`
	Item string `json:"item"`
	Hops []Hop  `json:"hops"`
}

// maxTraces bounds the completed-trace ring; maxOpen bounds the
// in-flight table so an abandoned trace (a hop that never lands) cannot
// grow memory without bound.
const (
	maxTraces = 256
	maxOpen   = 1024
)

// Tracer samples every Nth published update and collects its per-hop
// stamps. Sampling (Sample) and stamping (Hop) are cheap; completed
// traces live in a bounded ring read by Traces. A nil *Tracer is a
// no-op everywhere, so backends thread it unconditionally.
type Tracer struct {
	every uint64
	seq   atomic.Uint64
	ids   atomic.Uint64

	mu   sync.Mutex
	open map[uint64]*Trace
	done []Trace // ring of completed/evicted traces, newest last
}

// NewTracer samples one update out of every `every` published (1 =
// every update). every < 1 disables sampling (returns nil).
func NewTracer(every int) *Tracer {
	if every < 1 {
		return nil
	}
	return &Tracer{every: uint64(every), open: make(map[uint64]*Trace)}
}

// Sample decides whether the next published update is traced. It
// returns 0 (not sampled) or a fresh nonzero trace id whose first hop
// is (node, at) — the stamp at the point of publication.
func (t *Tracer) Sample(item string, node repository.ID, at int64) uint64 {
	if t == nil {
		return 0
	}
	if (t.seq.Add(1)-1)%t.every != 0 {
		return 0
	}
	id := t.ids.Add(1)
	tr := &Trace{ID: id, Item: item, Hops: []Hop{{Node: node, At: at}}}
	t.mu.Lock()
	if len(t.open) >= maxOpen {
		// Evict everything in flight to the done ring rather than drop:
		// partial traces still show where an update stalled.
		for _, o := range t.open {
			t.push(*o)
		}
		clear(t.open)
	}
	t.open[id] = tr
	t.mu.Unlock()
	return id
}

// Hop appends a stamp to an in-flight trace. Unknown ids (already
// evicted, or recorded wholesale via Record) are ignored.
func (t *Tracer) Hop(id uint64, node repository.ID, at int64) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	if tr := t.open[id]; tr != nil {
		tr.Hops = append(tr.Hops, Hop{Node: node, At: at})
	}
	t.mu.Unlock()
}

// Record stores a complete trace wholesale — the netio path, where each
// node reconstructs the trace from the hop list carried on the wire
// frame rather than stamping a shared in-memory object.
func (t *Tracer) Record(tr Trace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.push(tr)
	t.mu.Unlock()
}

// push appends to the done ring, evicting the oldest past maxTraces.
// Caller holds t.mu.
func (t *Tracer) push(tr Trace) {
	if len(t.done) >= maxTraces {
		copy(t.done, t.done[1:])
		t.done = t.done[:len(t.done)-1]
	}
	t.done = append(t.done, tr)
}

// Traces returns every collected trace — completed first (oldest to
// newest), then the in-flight ones — with hop slices copied so callers
// can hold them across further stamping. Nil-safe.
func (t *Tracer) Traces() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, len(t.done)+len(t.open))
	for _, tr := range t.done {
		out = append(out, Trace{ID: tr.ID, Item: tr.Item, Hops: append([]Hop(nil), tr.Hops...)})
	}
	for _, tr := range t.open {
		out = append(out, Trace{ID: tr.ID, Item: tr.Item, Hops: append([]Hop(nil), tr.Hops...)})
	}
	inflight := out[len(out)-len(t.open):]
	sort.Slice(inflight, func(i, j int) bool { return inflight[i].ID < inflight[j].ID })
	return out
}
