package obs

import (
	"math"
	"sync/atomic"
)

// Alpha is the smoothing factor of every EWMA in the layer. 0.25 gives
// a time constant of ~4 samples — reactive enough to surface a flash
// crowd within a few batches, smooth enough that one queueing spike
// does not trigger a (future) re-optimization pass.
const Alpha = 0.25

// EWMA is an exponentially weighted moving average updated by a CAS
// loop over the float64 bit pattern: lock-free, allocation-free, and
// safe for concurrent observers. The first sample seeds the average
// directly so early values are not dragged toward zero. The zero value
// is ready to use; a nil *EWMA is a no-op that reads as 0.
type EWMA struct {
	bits atomic.Uint64
	n    atomic.Uint64
}

// Observe folds one sample into the average.
func (e *EWMA) Observe(x float64) {
	if e == nil {
		return
	}
	if e.n.Add(1) == 1 {
		e.bits.Store(math.Float64bits(x))
		return
	}
	for {
		old := e.bits.Load()
		next := math.Float64frombits(old) + Alpha*(x-math.Float64frombits(old))
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Value returns the current average, or 0 before any sample. Nil-safe.
func (e *EWMA) Value() float64 {
	if e == nil || e.n.Load() == 0 {
		return 0
	}
	return math.Float64frombits(e.bits.Load())
}

// Count returns the number of samples folded in; nil-safe.
func (e *EWMA) Count() uint64 {
	if e == nil {
		return 0
	}
	return e.n.Load()
}
