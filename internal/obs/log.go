package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Level selects how much a Logger emits.
type Level int

const (
	// LevelQuiet suppresses everything, including Infof.
	LevelQuiet Level = iota
	// LevelInfo is the default: milestones and summaries.
	LevelInfo
	// LevelDebug adds per-step progress (sweep points, cache hits,
	// periodic obs snapshots).
	LevelDebug
)

// Logger is the small leveled logger shared by the CLIs and the sweep
// runner, so progress lines and obs snapshots go through one output
// discipline. Lines are written atomically (one locked Fprintf each)
// and prefixed with elapsed time since the logger was created. A nil
// *Logger discards everything, so library code logs unconditionally.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level Level
	start time.Time
}

// NewLogger writes lines at or below level to w. A LevelQuiet logger
// is returned as nil — the universal discard logger.
func NewLogger(w io.Writer, level Level) *Logger {
	if w == nil || level <= LevelQuiet {
		return nil
	}
	return &Logger{w: w, level: level, start: time.Now()}
}

// Enabled reports whether lines at level would be emitted; use it to
// skip expensive argument construction. Nil-safe.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level <= l.level
}

// Infof emits a milestone line. Nil-safe.
func (l *Logger) Infof(format string, args ...any) {
	l.logf(LevelInfo, format, args...)
}

// Debugf emits a progress-detail line. Nil-safe.
func (l *Logger) Debugf(format string, args ...any) {
	l.logf(LevelDebug, format, args...)
}

func (l *Logger) logf(level Level, format string, args ...any) {
	if !l.Enabled(level) {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	elapsed := time.Since(l.start).Round(time.Millisecond)
	fmt.Fprintf(l.w, "[%8s] "+format+"\n", append([]any{elapsed}, args...)...)
}
