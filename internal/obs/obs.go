// Package obs is the observability layer every backend shares: per-node
// counters, fixed-bucket latency histograms, per-edge delay and per-node
// load EWMAs, sampled update traces, a leveled logger, and an HTTP
// export surface (expvar + pprof + a JSON snapshot).
//
// The package exists to answer the questions the end-of-run aggregates
// cannot: *where* in the tree fidelity is lost (per-node violation
// durations), how propagation latency is distributed (per-hop and
// source→node histograms with p50/p95/p99), and which node is hot right
// now (load EWMAs, live counters). The per-edge delay and per-node load
// EWMAs are deliberately the exact inputs the Eq. 2 degree-adaptation
// controller of the paper's §8 open problem needs, so the future online
// re-optimization work plugs into signals that already exist.
//
// # Design rules
//
// Everything on a record path is nil-safe and allocation-free:
//
//   - A nil *Tree hands out nil *Node observers; every method on a nil
//     *Node (or nil *Histogram, *EWMA, *Tracer, *Logger) is a no-op, so
//     call sites never guard. Disabled observability costs one
//     predictable branch per call site and changes no observable
//     behavior — the registry figures are byte-identical with obs on or
//     off (TestObsDisabledByteIdentical), and decisions never read obs
//     state.
//   - Counters are cache-line-padded atomics (one line each, so two hot
//     counters on concurrent shard workers never false-share), histogram
//     buckets are atomic adds into fixed arrays, and EWMAs are CAS loops
//     over float64 bits. The record path performs zero heap allocations
//     (TestObsAllocFree) and the node core's fan-out stays 0 B/update
//     with obs enabled (TestFanoutAllocFreeWithObs).
//
// Snapshots are the cold path: Snapshot() allocates freely, folds the
// load EWMA (rate since the previous snapshot, blended at Alpha), and
// returns plain structs that marshal directly to JSON for the /metrics
// endpoint.
//
// All latencies are recorded in integer microseconds — sim.Time's unit,
// and what the wall-clock backends derive from time.Time — and reported
// in float64 milliseconds, the paper's axis unit.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"d3t/internal/repository"
)

// Counter is one cache-line-padded atomic counter. The padding keeps
// adjacent counters updated by different shard workers off each other's
// cache lines.
type Counter struct {
	v atomic.Uint64
	_ [56]byte
}

// Add adds n; nil-safe.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count; nil-safe.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Node is one repository's observer: decision counters, latency
// histograms, the load EWMA and the per-edge delay EWMAs. All methods
// are safe for concurrent use (a sharded node's workers share one
// observer) and all record methods are nil-safe no-ops on a nil *Node.
type Node struct {
	id repository.ID

	// Decision counters, fed by the node core's Apply pipeline.
	received    Counter // updates applied (received or published)
	depForward  Counter // dependent copies forwarded
	depSuppress Counter // dependent copies suppressed by Eqs. 3+7
	depChecks   Counter // dependent filter checks performed
	delivered   Counter // client-session deliveries
	filtered    Counter // client-session suppressions
	admits      Counter // sessions admitted
	redirects   Counter // subscribes answered with a redirect
	migrations  Counter // sessions migrated onto this node
	resyncs     Counter // catch-up values pushed (admission, failover)
	batches     Counter // multi-update batches received
	batchUps    Counter // updates carried by those batches
	qEvals      Counter // query-input deliveries evaluated
	qRecomputes Counter // query results recomputed

	// Latency histograms (microsecond samples).
	hop       Histogram // per-hop propagation delay (parent apply → arrival here)
	srcLat    Histogram // source→this-node dissemination latency
	redirect  Histogram // client redirect latency until admission here
	violation Histogram // fidelity-violation durations at this node

	// load is the updates/second EWMA, folded at snapshot time from the
	// received counter (see Snapshot).
	load         EWMA
	lastSnapAt   atomic.Int64
	lastSnapRecv atomic.Uint64

	// edges holds the delay EWMA of every in-edge, keyed by the upstream
	// peer it arrives over — the dependent-side delay view an Eq. 2
	// re-optimization controller compares across candidate parents.
	// Reads (the record path) take the RLock; inserts are cold.
	edgeMu sync.RWMutex
	edges  map[repository.ID]*EWMA
}

// ID returns the observed node's overlay id; nil-safe (NoID when nil).
func (o *Node) ID() repository.ID {
	if o == nil {
		return repository.NoID
	}
	return o.id
}

// Apply1 counts one update applied at the node.
func (o *Node) Apply1() {
	if o == nil {
		return
	}
	o.received.Add(1)
}

// DepPass counts one dependent fan-out pass: copies forwarded, copies
// suppressed by the filter, and filter checks performed.
func (o *Node) DepPass(forwarded, suppressed, checks int) {
	if o == nil {
		return
	}
	o.depForward.Add(uint64(forwarded))
	o.depSuppress.Add(uint64(suppressed))
	o.depChecks.Add(uint64(checks))
}

// SessPass counts one client-session fan-out pass.
func (o *Node) SessPass(delivered, filtered int) {
	if o == nil {
		return
	}
	o.delivered.Add(uint64(delivered))
	o.filtered.Add(uint64(filtered))
}

// Admit1 counts one admitted session; Redirect1 one redirected
// subscribe; Migrate1 one session migrated onto the node; Resync counts
// catch-up values pushed.
func (o *Node) Admit1() {
	if o == nil {
		return
	}
	o.admits.Add(1)
}

func (o *Node) Redirect1() {
	if o == nil {
		return
	}
	o.redirects.Add(1)
}

func (o *Node) Migrate1() {
	if o == nil {
		return
	}
	o.migrations.Add(1)
}

func (o *Node) Resync(n int) {
	if o == nil {
		return
	}
	o.resyncs.Add(uint64(n))
}

// QueryPass counts one derived-query evaluation pass at the node:
// input deliveries evaluated and results recomputed.
func (o *Node) QueryPass(evals, recomputes int) {
	if o == nil {
		return
	}
	o.qEvals.Add(uint64(evals))
	o.qRecomputes.Add(uint64(recomputes))
}

// Batch counts one received multi-update batch of n updates.
func (o *Node) Batch(n int) {
	if o == nil {
		return
	}
	o.batches.Add(1)
	o.batchUps.Add(uint64(n))
}

// ObserveHop records one per-hop propagation delay sample (µs).
func (o *Node) ObserveHop(micros int64) {
	if o == nil {
		return
	}
	o.hop.Observe(micros)
}

// ObserveSourceLatency records one source→node dissemination latency
// sample (µs).
func (o *Node) ObserveSourceLatency(micros int64) {
	if o == nil {
		return
	}
	o.srcLat.Observe(micros)
}

// ObserveRedirectLatency records the latency a client spent being
// redirected before this node admitted it (µs).
func (o *Node) ObserveRedirectLatency(micros int64) {
	if o == nil {
		return
	}
	o.redirect.Observe(micros)
}

// ObserveViolation records one closed fidelity-violation interval (µs).
func (o *Node) ObserveViolation(micros int64) {
	if o == nil {
		return
	}
	o.violation.Observe(micros)
}

// ObserveEdgeDelay folds one delay sample (µs) into the EWMA of the
// in-edge from peer. The steady state is an RLock + map read + CAS —
// allocation-free; the first sample per edge inserts the slot.
func (o *Node) ObserveEdgeDelay(peer repository.ID, micros int64) {
	if o == nil {
		return
	}
	o.edgeMu.RLock()
	e := o.edges[peer]
	o.edgeMu.RUnlock()
	if e == nil {
		o.edgeMu.Lock()
		if e = o.edges[peer]; e == nil {
			if o.edges == nil {
				o.edges = make(map[repository.ID]*EWMA)
			}
			e = &EWMA{}
			o.edges[peer] = e
		}
		o.edgeMu.Unlock()
	}
	e.Observe(float64(micros))
}

// EdgeDelay returns the in-edge delay EWMA (µs) from peer, or 0 if the
// edge has never carried a sample.
func (o *Node) EdgeDelay(peer repository.ID) float64 {
	if o == nil {
		return 0
	}
	o.edgeMu.RLock()
	e := o.edges[peer]
	o.edgeMu.RUnlock()
	return e.Value()
}

// Counters is the plain-struct snapshot of a node's decision counters.
type Counters struct {
	Received      uint64 `json:"received"`
	DepForwarded  uint64 `json:"depForwarded"`
	DepSuppressed uint64 `json:"depSuppressed"`
	DepChecks     uint64 `json:"depChecks"`
	Delivered     uint64 `json:"clientDelivered"`
	Filtered      uint64 `json:"clientFiltered"`
	Admits        uint64 `json:"sessionAdmits"`
	Redirects     uint64 `json:"sessionRedirects"`
	Migrations    uint64 `json:"sessionMigrations"`
	Resyncs       uint64 `json:"sessionResyncs"`
	Batches       uint64 `json:"batches"`
	BatchUpdates  uint64 `json:"batchUpdates"`
	QueryEvals    uint64 `json:"queryEvals,omitempty"`
	QueryRecomps  uint64 `json:"queryRecomputes,omitempty"`
}

// NodeSnapshot is one node's state at a point in time; every latency is
// in milliseconds.
type NodeSnapshot struct {
	ID       repository.ID `json:"id"`
	Counters Counters      `json:"counters"`

	Hop       HistSnapshot `json:"hopDelay"`
	SourceLat HistSnapshot `json:"sourceLatency"`
	Redirect  HistSnapshot `json:"redirectLatency"`
	Violation HistSnapshot `json:"violation"`

	// LoadEWMA is the exponentially weighted updates/second rate, folded
	// once per snapshot.
	LoadEWMA float64 `json:"loadEWMA"`
	// EdgeDelayMs maps each upstream peer to the EWMA delay (ms) of the
	// edge arriving from it.
	EdgeDelayMs map[repository.ID]float64 `json:"edgeDelayMs,omitempty"`
}

// Snapshot captures the node's state. now is the caller's clock in
// microseconds (sim time or wall micros since start — any monotone base
// works); it drives the load-EWMA fold: the update rate since the
// previous snapshot is blended at Alpha. Nil-safe (zero snapshot).
func (o *Node) Snapshot(now int64) NodeSnapshot {
	if o == nil {
		return NodeSnapshot{ID: repository.NoID}
	}
	s := NodeSnapshot{
		ID: o.id,
		Counters: Counters{
			Received:      o.received.Value(),
			DepForwarded:  o.depForward.Value(),
			DepSuppressed: o.depSuppress.Value(),
			DepChecks:     o.depChecks.Value(),
			Delivered:     o.delivered.Value(),
			Filtered:      o.filtered.Value(),
			Admits:        o.admits.Value(),
			Redirects:     o.redirects.Value(),
			Migrations:    o.migrations.Value(),
			Resyncs:       o.resyncs.Value(),
			Batches:       o.batches.Value(),
			BatchUpdates:  o.batchUps.Value(),
			QueryEvals:    o.qEvals.Value(),
			QueryRecomps:  o.qRecomputes.Value(),
		},
		Hop:       o.hop.Snapshot(),
		SourceLat: o.srcLat.Snapshot(),
		Redirect:  o.redirect.Snapshot(),
		Violation: o.violation.Snapshot(),
	}
	// Fold the load EWMA: rate over the window since the last snapshot.
	prevAt := o.lastSnapAt.Swap(now)
	prevRecv := o.lastSnapRecv.Swap(s.Counters.Received)
	if dt := now - prevAt; dt > 0 && s.Counters.Received >= prevRecv {
		rate := float64(s.Counters.Received-prevRecv) / (float64(dt) / 1e6)
		o.load.Observe(rate)
	}
	s.LoadEWMA = o.load.Value()
	o.edgeMu.RLock()
	if len(o.edges) > 0 {
		s.EdgeDelayMs = make(map[repository.ID]float64, len(o.edges))
		for id, e := range o.edges {
			s.EdgeDelayMs[id] = e.Value() / 1000
		}
	}
	o.edgeMu.RUnlock()
	return s
}

// Tree is the per-overlay observer registry: one *Node per repository,
// handed out lazily, plus the optional update tracer. A nil *Tree hands
// out nil *Nodes, so a disabled layer needs no guards anywhere.
type Tree struct {
	// Tracer, when set, samples update traces (see NewTracer). Record
	// paths read it through Tree.TracerOrNil, which is nil-safe.
	Tracer *Tracer

	mu    sync.RWMutex
	nodes map[repository.ID]*Node
}

// NewTree returns an empty observer registry.
func NewTree() *Tree {
	return &Tree{nodes: make(map[repository.ID]*Node)}
}

// Node returns the observer for id, creating it on first use. Nil-safe:
// a nil tree returns a nil observer.
func (t *Tree) Node(id repository.ID) *Node {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	o := t.nodes[id]
	t.mu.RUnlock()
	if o != nil {
		return o
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if o = t.nodes[id]; o == nil {
		o = &Node{id: id}
		t.nodes[id] = o
	}
	return o
}

// TracerOrNil returns the tree's tracer; nil-safe.
func (t *Tree) TracerOrNil() *Tracer {
	if t == nil {
		return nil
	}
	return t.Tracer
}

// TreeSnapshot is the whole overlay's state at a point in time.
type TreeSnapshot struct {
	// NowMicros is the clock value the snapshot was taken at (the
	// caller's time base).
	NowMicros int64 `json:"nowMicros"`
	// Nodes is sorted by id.
	Nodes []NodeSnapshot `json:"nodes"`
	// Traces carries the completed sampled update traces, if tracing is
	// armed.
	Traces []Trace `json:"traces,omitempty"`
}

// Snapshot captures every node (sorted by id) plus the sampled traces.
// Nil-safe (empty snapshot).
func (t *Tree) Snapshot(now int64) TreeSnapshot {
	if t == nil {
		return TreeSnapshot{NowMicros: now}
	}
	t.mu.RLock()
	nodes := make([]*Node, 0, len(t.nodes))
	for _, o := range t.nodes {
		nodes = append(nodes, o)
	}
	t.mu.RUnlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].id < nodes[j].id })
	s := TreeSnapshot{NowMicros: now, Nodes: make([]NodeSnapshot, 0, len(nodes))}
	for _, o := range nodes {
		s.Nodes = append(s.Nodes, o.Snapshot(now))
	}
	if t.Tracer != nil {
		s.Traces = t.Tracer.Traces()
	}
	return s
}

// Summary renders a one-line overview of the whole tree — totals across
// every node plus the merged latency quantiles — for the CLIs' periodic
// -obs-interval lines. now is the caller's clock in microseconds (it
// drives the per-node load-EWMA folds, like Snapshot). Nil-safe.
func (t *Tree) Summary(now int64) string {
	if t == nil {
		return "obs disabled"
	}
	snap := t.Snapshot(now)
	var c Counters
	for _, n := range snap.Nodes {
		c.Received += n.Counters.Received
		c.DepForwarded += n.Counters.DepForwarded
		c.DepSuppressed += n.Counters.DepSuppressed
		c.Redirects += n.Counters.Redirects
		c.Migrations += n.Counters.Migrations
	}
	hop, src, _, viol := t.Merged()
	s := fmt.Sprintf("obs: nodes=%d recv=%d fwd=%d supp=%d hop p50/p95/p99=%.1f/%.1f/%.1f ms src p99=%.1f ms",
		len(snap.Nodes), c.Received, c.DepForwarded, c.DepSuppressed,
		hop.P50Ms, hop.P95Ms, hop.P99Ms, src.P99Ms)
	if c.Redirects+c.Migrations > 0 {
		s += fmt.Sprintf(" redirects=%d migrations=%d", c.Redirects, c.Migrations)
	}
	if viol.Count > 0 {
		s += fmt.Sprintf(" violations=%d (p95 %.1f ms)", viol.Count, viol.P95Ms)
	}
	return s
}

// Merged folds every node's histograms into overlay-wide aggregates —
// the figure-level view (per-hop delay and source latency across the
// whole tree). Nil-safe.
func (t *Tree) Merged() (hop, srcLat, redirect, violation HistSnapshot) {
	if t == nil {
		return
	}
	var h, s, r, v Histogram
	t.mu.RLock()
	for _, o := range t.nodes {
		h.Merge(&o.hop)
		s.Merge(&o.srcLat)
		r.Merge(&o.redirect)
		v.Merge(&o.violation)
	}
	t.mu.RUnlock()
	return h.Snapshot(), s.Snapshot(), r.Snapshot(), v.Snapshot()
}
