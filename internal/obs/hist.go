package obs

import (
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the fixed bucket count of every latency histogram.
// Bucket 0 holds exact zeros; bucket b (1 ≤ b < HistBuckets-1) holds
// samples in [2^(b-1), 2^b) microseconds; the last bucket is the
// overflow bucket for everything at or above 2^(HistBuckets-2) µs
// (≈ 2.3 days — nothing this system measures gets there honestly).
// Power-of-two edges make the index a single bits.Len64, and 40 fixed
// buckets make the whole histogram a flat 328-byte array with no
// configuration to drift between nodes.
const HistBuckets = 40

// Histogram is a fixed-bucket log-spaced latency histogram over
// microsecond samples. Observe is lock-free (one atomic add per
// sample), allocation-free, and nil-safe; quantiles are computed on
// demand from the bucket counts. The zero value is ready to use.
type Histogram struct {
	n       atomic.Uint64
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one sample in microseconds. Negative samples (clock
// skew on a wall-clock backend) clamp to zero rather than corrupting a
// bucket index.
func (h *Histogram) Observe(micros int64) {
	if h == nil {
		return
	}
	var b int
	if micros > 0 {
		b = bits.Len64(uint64(micros))
		if b > HistBuckets-1 {
			b = HistBuckets - 1
		}
	}
	h.buckets[b].Add(1)
	h.n.Add(1)
}

// Count returns the number of recorded samples; nil-safe.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Merge adds src's buckets into h (both may be receiving samples
// concurrently; the merge is a consistent-enough snapshot for
// reporting). Nil-safe on either side.
func (h *Histogram) Merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	for i := range src.buckets {
		if c := src.buckets[i].Load(); c != 0 {
			h.buckets[i].Add(c)
			h.n.Add(c)
		}
	}
}

// Quantile returns the q-quantile (0 < q ≤ 1) in microseconds,
// estimated as the midpoint of the bucket holding the rank-q sample
// (the lower bound for the overflow bucket, since it has no upper
// edge). An empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(q * float64(n))
	if rank == 0 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen uint64
	for b := 0; b < HistBuckets; b++ {
		seen += h.buckets[b].Load()
		if seen >= rank {
			return bucketMid(b)
		}
	}
	return bucketMid(HistBuckets - 1)
}

// bucketMid is the representative value (µs) reported for bucket b.
func bucketMid(b int) float64 {
	switch {
	case b == 0:
		return 0
	case b == HistBuckets-1:
		// Overflow bucket: report the lower bound — any midpoint would
		// invent an upper edge that does not exist.
		return float64(uint64(1) << (HistBuckets - 2))
	default:
		lo := uint64(1) << (b - 1)
		hi := uint64(1) << b
		return float64(lo+hi) / 2
	}
}

// HistSnapshot is the reporting view of a histogram: sample count and
// the three paper-relevant quantiles, in milliseconds.
type HistSnapshot struct {
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50Ms"`
	P95Ms float64 `json:"p95Ms"`
	P99Ms float64 `json:"p99Ms"`
}

// Snapshot computes the quantile view; nil-safe (zero snapshot).
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	return HistSnapshot{
		Count: h.Count(),
		P50Ms: h.Quantile(0.50) / 1000,
		P95Ms: h.Quantile(0.95) / 1000,
		P99Ms: h.Quantile(0.99) / 1000,
	}
}
