package node

import (
	"fmt"
	"math"
	"testing"

	"d3t/internal/repository"
)

// dump flattens DumpDurable's streams into comparable strings, value
// bits spelled out so the comparison is bit-exact, not approximate.
func dump(c *Core) []string {
	var out []string
	c.DumpDurable(
		func(item string, v float64) {
			out = append(out, fmt.Sprintf("v %s %016x", item, math.Float64bits(v)))
		},
		func(dep repository.ID, item string, last float64, seeded bool) {
			out = append(out, fmt.Sprintf("e %v %s %016x %v", dep, item, math.Float64bits(last), seeded))
		})
	return out
}

func equalDumps(t *testing.T, before, after []string) {
	t.Helper()
	if len(before) != len(after) {
		t.Fatalf("dump lengths differ: %d vs %d\nbefore %v\nafter  %v", len(before), len(after), before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("dump line %d differs:\nbefore %q\nafter  %q", i, before[i], after[i])
		}
	}
}

// TestDurableRoundTripBitIdentical is the kill-and-recover invariant at
// the core level: wipe a core (process death) and restore it from its
// own durable dump, and every per-item value and edge filter state is
// bit-identical — so the next Apply makes the same forward/suppress
// decision the pre-crash core would have.
func TestDurableRoundTripBitIdentical(t *testing.T) {
	core, _ := pair(10, 50, 80)
	tr := newRecord()
	core.Seed("X", 0.1) // a value without an exact short decimal
	core.Apply("X", 0.1+1e-9, tr)
	core.Apply("X", 123.456, tr)

	before := dump(core)
	if len(before) == 0 {
		t.Fatal("nothing dumped")
	}

	type edgeState struct {
		dep    repository.ID
		item   string
		last   float64
		seeded bool
	}
	values := map[string]float64{}
	var edges []edgeState
	core.DumpDurable(
		func(item string, v float64) { values[item] = v },
		func(dep repository.ID, item string, last float64, seeded bool) {
			edges = append(edges, edgeState{dep, item, last, seeded})
		})

	core.WipeDurable()
	if got := dump(core); len(got) != 0 {
		t.Fatalf("wiped core still dumps %v", got)
	}

	for item, v := range values {
		core.SetValue(item, v)
	}
	for _, e := range edges {
		core.RestoreEdge(e.dep, e.item, e.last, e.seeded)
	}
	equalDumps(t, before, dump(core))

	// And the decisions agree: a sub-threshold move is suppressed by the
	// restored edge state exactly as it would have been pre-crash.
	if fwd, _ := core.Apply("X", 123.456+1, tr); fwd != 0 {
		t.Fatal("restored edge forwarded a sub-threshold update")
	}
}

// TestReplayRebuildsEdgeState is the WAL replay semantics: a wiped core
// that re-Applies its logged updates through a ReplayTransport ends at
// the same values and edge filter state as the pre-crash core — the
// edges advance because replay accepts every send, and Eqs. 3+7 re-make
// the same suppress decisions deterministically.
func TestReplayRebuildsEdgeState(t *testing.T) {
	updates := []float64{1, 30, 99, 105, 220, 221}

	run := func() *Core {
		core, _ := pair(10, 50, 80)
		tr := newRecord()
		for _, v := range updates {
			core.Apply("X", v, tr)
		}
		return core
	}

	before := dump(run())

	replayed, _ := pair(10, 50, 80)
	for _, v := range updates {
		replayed.Apply("X", v, ReplayTransport{At: 7})
	}
	equalDumps(t, before, dump(replayed))
}

// TestRestoreEdgeVerbatim: RestoreEdge keeps the recovered seeded flag
// as-is, unlike ResetEdge which models a completed resync.
func TestRestoreEdgeVerbatim(t *testing.T) {
	core, _ := pair(10, 50, 0)
	core.RestoreEdge(2, "X", 5, false)
	tr := newRecord()
	// The edge must still be unseeded: first push always forwards.
	if fwd, _ := core.Apply("X", 5.0001, tr); fwd != 1 {
		t.Fatal("unseeded restored edge suppressed the first push")
	}
	// Unknown dependents are ignored, not invented.
	core.RestoreEdge(99, "X", 1, true)
	core.RestoreEdge(2, "nosuch", 1, true)
}
