// Package node is the transport-agnostic repository core: one state
// machine owning the full per-update decision pipeline every runtime of
// the system shares — receive an update, record it, track the last value
// pushed over every outgoing edge, filter dependents and client sessions
// through Eqs. 3 and 7 of the paper, resync dependents and sessions after
// failover or migration, and admit or redirect client sessions under the
// session cap.
//
// The three runtimes are thin transports around a Core:
//
//   - the discrete-event simulator (internal/dissemination) drives cores
//     from sim.Engine events and turns decisions into scheduled sends;
//   - the goroutine runtime (internal/live) drives them from channel
//     receives and turns decisions into channel sends;
//   - the TCP runtime (internal/netio) drives them from decoded frames
//     and turns decisions into wire-encoded binary frames.
//
// A Core is deliberately single-goroutine-safe and nothing more: the
// simulator is single-threaded, and the concurrent runtimes already
// serialize per-node work (one goroutine per node, one mutex per server),
// so pushing locking into the core would duplicate their synchronization.
//
// # The first-push rule
//
// The runtimes historically grew two spellings of the same seeding guard
// (live forwarded on `!seeded || ShouldForward`, netio suppressed on
// `seeded && !ShouldForward`). The core states the rule once:
//
//	An edge that has never carried a value — a dependent or session wired
//	mid-run whose resync has not yet landed — always forwards the first
//	update. After any push (live update or resync alike), Eqs. 3 and 7
//	decide.
//
// The "always forward" half is what makes failover safe: a freshly
// re-homed dependent whose resync raced the next update still converges,
// because the unseeded edge cannot suppress. The "after any push" half is
// what makes resync cheap: the resynced value becomes the edge's filter
// state, so the first post-resync update is suppressed exactly when the
// tolerance says it may be (see TestFirstPushAfterResync).
//
// # The fan-out hot path
//
// Filtering an update against a dependent needs the dependent's serving
// tolerance — state owned by the dependent, historically re-read from
// shared maps on every update. The core instead precomputes a per-item
// plan: a flat slice of dependent edges with tolerances resolved at
// wiring time, revalidated against the repositories' wiring generation
// counters (repository.Gen) and re-resolved only when a repair or
// augmentation actually moves them. The steady-state fan-out loop is a
// slice walk with zero allocations (see BenchmarkFanout).
package node

import (
	"sort"

	"d3t/internal/coherency"
	"d3t/internal/obs"
	"d3t/internal/repository"
	"d3t/internal/sim"
)

// Transport is the backend half of a node: the Core decides, the
// Transport moves bytes and time. Implementations translate decisions
// into scheduled simulator events, channel sends, or wire frames.
type Transport interface {
	// Now returns the transport's current time (virtual for the
	// simulator, wall-clock-derived for the concurrent runtimes). The
	// core stamps session activity with it.
	Now() sim.Time
	// SendToDependent ships one update copy to a dependent repository.
	// resync marks a catch-up push (failover convergence), as opposed to
	// a filtered live update. It reports whether the copy was accepted;
	// a transport with no path to the dependent yet (a TCP child that
	// has not dialed in) returns false and the core leaves the edge's
	// filter state untouched, so the dependent catches up on the next
	// qualifying update once reachable.
	SendToDependent(dep repository.ID, item string, value float64, resync bool) bool
	// SendToClient ships one update copy to a client session admitted on
	// this node. resync marks a catch-up push (admission, migration).
	// The session is passed by reference so a transport can dispatch on
	// its Tag (set at admission) without a name lookup on the hot path.
	SendToClient(s *Session, item string, value float64, resync bool)
}

// Options configures a Core.
type Options struct {
	// Source gives the node data-source semantics: its own tolerance in
	// Eq. 7 is zero (it holds exact values), it forwards every item, and
	// it can serve a client session at any tolerance. Repository-bound
	// cores usually derive this from the repository id; the TCP runtime,
	// where a node knows only its own config, sets it explicitly.
	Source bool
	// Eq3Only drops the Eq. 7 missed-update guard — the naive ablation
	// of Figure 4. The real algorithm keeps it off.
	Eq3Only bool
	// SessionCap caps the client sessions the node serves (0 =
	// unlimited); Admit answers an over-cap subscribe with a rejection.
	SessionCap int
	// ServeOnly disables the dependent pipeline: Apply records the value
	// and fans out to sessions only. The serving layer's fleet uses it
	// for repositories whose overlay dissemination is simulated
	// elsewhere.
	ServeOnly bool
}

// Core is the repository state machine. It is not safe for concurrent
// use; each transport serializes access (the simulator is
// single-threaded, live holds its per-node mutex, netio its server
// mutex).
type Core struct {
	self  *repository.Repository
	peers func(repository.ID) *repository.Repository
	opts  Options

	values map[string]float64
	plans  map[string]*plan
	// retired accumulates the decision counters of edges dropped by
	// rewires, so EdgeDecisions never under-reports after churn.
	retired map[string]Decisions

	sessions map[string]*Session
	admitSeq uint64
	// watchers holds, per item, the admitted sessions watching it with
	// tolerances resolved at admission — the client half of the
	// precomputed fan-out. Sorted by session name for a deterministic
	// delivery order; rebuilt only on session churn.
	watchers   map[string][]watcher
	redirected int

	// obs is the node's observer, nil when observability is disabled.
	// Every hook below is nil-safe, so the disabled path costs one
	// predictable branch per Apply stage and never allocates.
	obs *obs.Node
}

// plan is the precomputed dependent fan-out for one item.
type plan struct {
	// gen is self's wiring generation when the dependent list was built;
	// hold is whether self served the item then. When self's generation
	// moves the whole plan rebuilds (dependents or own tolerance may
	// have changed).
	gen  uint64
	hold bool
	// cSelf is the node's own serving tolerance for the item (zero for
	// the source) — the cSelf of Eq. 7.
	cSelf coherency.Requirement
	deps  []depEdge
}

// depEdge is one outgoing push edge for one item: the resolved tolerance
// and the edge's filter state.
type depEdge struct {
	to   *repository.Repository
	id   repository.ID
	gen  uint64 // to's wiring generation when cDep was resolved
	cDep coherency.Requirement
	// hasTol records whether the dependent declared a serving tolerance
	// for the item; without one the edge never forwards (a validated
	// overlay never produces this).
	hasTol bool
	// last is the last value pushed over the edge; seeded is the
	// first-push rule's flag (see the package comment).
	last   float64
	seeded bool
	// forwarded/suppressed count the edge's filter decisions — the
	// cross-backend parity instrumentation.
	forwarded  uint64
	suppressed uint64
}

// watcher is one admitted session's subscription to one item, tolerance
// and filter state resolved at admission so the fan-out loop touches no
// maps.
type watcher struct {
	s   *Session
	tol coherency.Requirement
	st  *itemState
}

// New builds a core around the repository's wiring. peers resolves a
// dependent id to its repository (tolerances are read from it); it may be
// nil only with Options.ServeOnly, where no dependent plans exist. The
// repository pointer is shared, not copied: overlay repairs that rewire
// it are picked up automatically through its wiring generation.
func New(self *repository.Repository, peers func(repository.ID) *repository.Repository, opts Options) *Core {
	if self != nil && self.IsSource() {
		opts.Source = true
	}
	return &Core{
		self:     self,
		peers:    peers,
		opts:     opts,
		values:   make(map[string]float64),
		plans:    make(map[string]*plan),
		retired:  make(map[string]Decisions),
		sessions: make(map[string]*Session),
		watchers: make(map[string][]watcher),
	}
}

// ID returns the node's overlay id.
func (c *Core) ID() repository.ID { return c.self.ID }

// SetObs attaches an observer (nil detaches). Observation is passive:
// it never changes a forward/suppress/admit decision.
func (c *Core) SetObs(o *obs.Node) { c.obs = o }

// Obs returns the attached observer, nil when observability is off.
func (c *Core) Obs() *obs.Node { return c.obs }

// IsSource reports whether the core has data-source semantics.
func (c *Core) IsSource() bool { return c.opts.Source }

// Value returns the node's current copy of item.
func (c *Core) Value(item string) (float64, bool) {
	v, ok := c.values[item]
	return v, ok
}

// SetValue records the node's copy of item without any fan-out — raw
// state injection for transports that seed from explicit configuration.
func (c *Core) SetValue(item string, v float64) { c.values[item] = v }

// Seed initializes the node's copy of item (when the node holds it) and
// the filter state of every currently wired edge for it, as if the
// overlay started fully synchronized.
func (c *Core) Seed(item string, v float64) {
	if c.opts.Source || c.holds(item) {
		c.values[item] = v
	}
	p := c.plan(item)
	if p == nil {
		return
	}
	for i := range p.deps {
		p.deps[i].last = v
		p.deps[i].seeded = true
	}
}

// holds reports whether the node maintains item (the source holds
// everything).
func (c *Core) holds(item string) bool {
	if c.opts.Source {
		return true
	}
	_, ok := c.self.Serving[item]
	return ok
}

// Apply runs the full receive pipeline for one update: record the value,
// filter and send to dependents (updating each forwarded edge's
// last-pushed state), then filter and send to the client sessions
// watching the item. It returns the number of dependent copies sent and
// the number of dependent filter checks performed (the paper's
// per-dependent check accounting; sessions are not counted).
//
// The steady-state path performs no allocations: the dependent plan is a
// precomputed slice revalidated by generation counters, and the session
// watcher list is rebuilt only on churn.
func (c *Core) Apply(item string, v float64, t Transport) (forwards, checks int) {
	c.obs.Apply1()
	c.values[item] = v
	if !c.opts.ServeOnly {
		forwards, checks = c.fanToDependents(item, v, t)
	}
	c.fanToSessions(item, v, t)
	return forwards, checks
}

// fanToDependents applies the first-push rule and Eqs. 3+7 to every wired
// dependent edge for the item.
func (c *Core) fanToDependents(item string, v float64, t Transport) (forwards, checks int) {
	p := c.plan(item)
	if p == nil {
		return 0, 0
	}
	// A repository that does not maintain the item serves it to no one
	// (the source maintains everything). The plan records this so the
	// common case costs one branch.
	if !c.opts.Source && !p.hold {
		return 0, 0
	}
	cSelf := p.cSelf
	suppressed := 0
	for i := range p.deps {
		e := &p.deps[i]
		if e.gen != e.to.Gen() {
			// The dependent tightened (or was otherwise rewired):
			// re-resolve its tolerance, keep the edge's filter state.
			e.cDep, e.hasTol = e.to.ServingTolerance(item)
			e.gen = e.to.Gen()
		}
		checks++
		if !e.hasTol {
			continue
		}
		if e.seeded && !c.shouldForward(v, e.last, e.cDep, cSelf) {
			e.suppressed++
			suppressed++
			continue
		}
		if !t.SendToDependent(e.id, item, v, false) {
			// No path to the dependent yet: leave the edge unseeded /
			// un-advanced so it catches up on the next qualifying update.
			continue
		}
		e.last, e.seeded = v, true
		e.forwarded++
		forwards++
	}
	c.obs.DepPass(forwards, suppressed, checks)
	return forwards, checks
}

// fanToSessions applies the same filter, with the node's own serving
// tolerance as cSelf, to every admitted session watching the item.
func (c *Core) fanToSessions(item string, v float64, t Transport) {
	ws := c.watchers[item]
	if len(ws) == 0 {
		return
	}
	var cSelf coherency.Requirement
	if !c.opts.Source {
		cSelf, _ = c.self.ServingTolerance(item)
	}
	now := t.Now()
	delivered, filtered := 0, 0
	for i := range ws {
		w := &ws[i]
		s := w.s
		if w.st.seeded && !c.shouldForward(v, w.st.v, w.tol, cSelf) {
			s.filtered++
			filtered++
			continue
		}
		w.st.v, w.st.seeded = v, true
		s.delivered++
		delivered++
		s.lastServed = now
		t.SendToClient(s, item, v, false)
	}
	c.obs.SessPass(delivered, filtered)
}

// shouldForward is the configured filter: Eqs. 3 and 7, or Eq. 3 alone in
// the naive ablation.
func (c *Core) shouldForward(v, last float64, cDep, cSelf coherency.Requirement) bool {
	if c.opts.Eq3Only {
		return coherency.NeedsUpdate(v, last, cDep)
	}
	return coherency.ShouldForward(v, last, cDep, cSelf)
}

// plan returns the item's dependent plan, building or rebuilding it when
// the node's wiring generation has moved since it was last resolved. A
// nil return means the node currently has no dependents for the item (a
// serve-only core never has any).
func (c *Core) plan(item string) *plan {
	if c.opts.ServeOnly {
		return nil
	}
	p := c.plans[item]
	gen := c.self.Gen()
	if p != nil && p.gen == gen {
		return p
	}
	deps := c.self.Dependents[item]
	if len(deps) == 0 {
		if p != nil {
			// All edges dropped: forget the plan and its filter state (a
			// future re-wire resyncs or starts unseeded), but bank the
			// decision counters so EdgeDecisions stays a full history.
			c.retire(item, p, nil)
			delete(c.plans, item)
		}
		return nil
	}
	np := &plan{gen: gen, deps: make([]depEdge, 0, len(deps))}
	if c.opts.Source {
		np.hold = true // the source maintains everything, exactly
	} else {
		np.cSelf, np.hold = c.self.ServingTolerance(item)
	}
	for _, id := range deps {
		e := depEdge{id: id, to: c.peers(id)}
		e.cDep, e.hasTol = e.to.ServingTolerance(item)
		e.gen = e.to.Gen()
		if p != nil {
			// Carry the filter state (and decision counters) of edges
			// that survived the rewire.
			for j := range p.deps {
				if p.deps[j].id == id {
					old := &p.deps[j]
					e.last, e.seeded = old.last, old.seeded
					e.forwarded, e.suppressed = old.forwarded, old.suppressed
					break
				}
			}
		}
		np.deps = append(np.deps, e)
	}
	if p != nil {
		c.retire(item, p, np) // bank counters of edges that did not survive
	}
	c.plans[item] = np
	return np
}

// retire banks the decision counters of old-plan edges absent from the
// new plan (nil: all of them), so rewires never lose tallies.
func (c *Core) retire(item string, old, next *plan) {
	d := c.retired[item]
	for i := range old.deps {
		e := &old.deps[i]
		if e.forwarded == 0 && e.suppressed == 0 {
			continue
		}
		survived := false
		if next != nil {
			for j := range next.deps {
				if next.deps[j].id == e.id {
					survived = true
					break
				}
			}
		}
		if !survived {
			d.Forwarded += e.forwarded
			d.Suppressed += e.suppressed
		}
	}
	if d != (Decisions{}) {
		c.retired[item] = d
	}
}

// ResetEdge sets the filter state of one outgoing edge: the last value
// "pushed" to dep for item is v, as after a resync. Failover repair calls
// it when a dependent is re-homed onto this node (or back onto it), so a
// revived edge does not filter against pre-crash state.
func (c *Core) ResetEdge(dep repository.ID, item string, v float64) {
	p := c.plan(item)
	if p == nil {
		return
	}
	for i := range p.deps {
		if p.deps[i].id == dep {
			p.deps[i].last, p.deps[i].seeded = v, true
			return
		}
	}
}

// ResyncDependent pushes the node's current copy of every item it serves
// to dep, unconditionally, and seeds the edges' filter state to match —
// the catch-up a dependent needs after failing over to this node. Items
// are pushed in sorted order for a deterministic wire sequence.
func (c *Core) ResyncDependent(dep repository.ID, t Transport) {
	items := make([]string, 0, len(c.self.Dependents))
	for item, deps := range c.self.Dependents {
		for _, id := range deps {
			if id == dep {
				items = append(items, item)
				break
			}
		}
	}
	sort.Strings(items)
	for _, item := range items {
		v, ok := c.values[item]
		if !ok {
			continue
		}
		if t.SendToDependent(dep, item, v, true) {
			c.ResetEdge(dep, item, v)
		}
	}
}

// EdgeDecisions reports the per-item forward/suppress decision totals the
// node has made about its dependents — live edges plus edges retired by
// rewires — the cross-backend parity instrumentation. The map is freshly
// allocated (cold path).
func (c *Core) EdgeDecisions() map[string]Decisions {
	out := make(map[string]Decisions, len(c.plans))
	for item, d := range c.retired {
		out[item] = d
	}
	for item, p := range c.plans {
		d := out[item]
		for i := range p.deps {
			d.Forwarded += p.deps[i].forwarded
			d.Suppressed += p.deps[i].suppressed
		}
		if d.Forwarded+d.Suppressed > 0 {
			out[item] = d
		}
	}
	return out
}

// Decisions is a forward/suppress decision tally.
type Decisions struct {
	Forwarded  uint64
	Suppressed uint64
}

// CoalesceBatch is the one statement of the in-batch coalescing rule
// every batched transport shares: within a multi-update batch, only an
// item's newest (last) occurrence is applied — a value superseded inside
// its own batch is never disseminated. It returns the surviving indexes
// in ascending batch position. itemAt indexes the batch's item names.
//
// Stating the rule once matters for the same reason the first-push rule
// is stated once in this package: three transports re-deriving "last
// value wins" independently is exactly the kind of drift the
// cross-backend parity test exists to catch.
func CoalesceBatch(n int, itemAt func(int) string) []int {
	out := make([]int, 0, n)
	if n > 16 {
		// Large batch: one map pass instead of the quadratic scan.
		last := make(map[string]int, n)
		for i := 0; i < n; i++ {
			last[itemAt(i)] = i
		}
		for i := 0; i < n; i++ {
			if last[itemAt(i)] == i {
				out = append(out, i)
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		superseded := false
		for j := i + 1; j < n; j++ {
			if itemAt(j) == itemAt(i) {
				superseded = true
				break
			}
		}
		if !superseded {
			out = append(out, i)
		}
	}
	return out
}
