package node

import (
	"fmt"
	"testing"

	"d3t/internal/coherency"
	"d3t/internal/obs"
	"d3t/internal/repository"
	"d3t/internal/sim"
)

// benchTransport swallows decisions at zero cost.
type benchTransport struct {
	deps, clients int
}

func (t *benchTransport) Now() sim.Time { return 0 }
func (t *benchTransport) SendToDependent(repository.ID, string, float64, bool) bool {
	t.deps++
	return true
}
func (t *benchTransport) SendToClient(*Session, string, float64, bool) { t.clients++ }

// fanoutCore builds one node serving `deps` dependents and `sessions`
// client sessions for item X, tolerances alternating loose/tight so the
// benchmark exercises both filter outcomes.
func fanoutCore(b testing.TB, deps, sessions int) *Core {
	parent := repository.New(1, deps)
	parent.Serving["X"] = 0.01
	peers := make(map[repository.ID]*repository.Repository, deps)
	for i := 0; i < deps; i++ {
		id := repository.ID(i + 2)
		dep := repository.New(id, 1)
		if i%2 == 0 {
			dep.Serving["X"] = 5 // loose: usually suppressed
		} else {
			dep.Serving["X"] = 0.5 // tight: usually forwarded
		}
		peers[id] = dep
		parent.AddDependent("X", id)
	}
	core := New(parent, func(id repository.ID) *repository.Repository { return peers[id] }, Options{})
	core.Seed("X", 100)
	tr := &benchTransport{}
	for i := 0; i < sessions; i++ {
		tol := coherency.Requirement(0.5)
		if i%2 == 0 {
			tol = 5
		}
		s := NewSession(fmt.Sprintf("c%05d", i), map[string]coherency.Requirement{"X": tol})
		if _, err := core.Admit(s, tr); err != nil {
			b.Fatal(err)
		}
	}
	return core
}

// BenchmarkFanout measures the per-update cost of the dependent fan-out
// decision loop — the hot path every transport shares. The precomputed
// plan makes the steady state a flat slice walk; the benchmark asserts
// it allocates nothing (see also TestFanoutAllocFree, which enforces the
// invariant as a test).
func BenchmarkFanout(b *testing.B) {
	for _, deps := range []int{4, 32, 256} {
		b.Run(fmt.Sprintf("deps=%d", deps), func(b *testing.B) {
			core := fanoutCore(b, deps, 0)
			tr := &benchTransport{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Apply("X", 100+float64(i%3), tr)
			}
			b.ReportMetric(float64(tr.deps)/float64(b.N), "fwd/op")
		})
	}
}

// BenchmarkFanoutSessions adds the client-session half: one delivery
// fanning out to many admitted sessions through the per-client filter.
func BenchmarkFanoutSessions(b *testing.B) {
	for _, sessions := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			core := fanoutCore(b, 4, sessions)
			tr := &benchTransport{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Apply("X", 100+float64(i%3), tr)
			}
			b.ReportMetric(float64(tr.clients)/float64(b.N), "delivered/op")
		})
	}
}

// TestFanoutAllocFree enforces the acceptance bar as a regression test:
// the steady-state Apply pipeline — dependent fan-out and session
// fan-out both — allocates zero bytes per update.
func TestFanoutAllocFree(t *testing.T) {
	core := fanoutCore(t, 64, 64)
	tr := &benchTransport{}
	core.Apply("X", 101, tr) // warm-up: plans built, maps sized
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		core.Apply("X", 100+float64(i%3), tr)
		i++
	})
	if allocs != 0 {
		t.Fatalf("Apply allocates %.1f objects per update, want 0", allocs)
	}
}

// TestFanoutAllocFreeWithObs pins the same invariant with an observer
// attached: the obs record path (counters, histograms) must stay off
// the heap, so enabling observability never costs an allocation per
// update.
func TestFanoutAllocFreeWithObs(t *testing.T) {
	core := fanoutCore(t, 64, 64)
	core.SetObs(obs.NewTree().Node(core.ID()))
	tr := &benchTransport{}
	core.Apply("X", 101, tr)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		core.Apply("X", 100+float64(i%3), tr)
		i++
	})
	if allocs != 0 {
		t.Fatalf("Apply with obs allocates %.1f objects per update, want 0", allocs)
	}
	snap := core.Obs().Snapshot(1_000_000)
	if snap.Counters.Received == 0 || snap.Counters.DepChecks == 0 {
		t.Fatalf("observer recorded nothing: %+v", snap.Counters)
	}
}
