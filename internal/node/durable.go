package node

import (
	"sort"

	"d3t/internal/repository"
	"d3t/internal/sim"
)

// This file is the core's durability surface: what a write-ahead log
// snapshots (DumpDurable), how recovery puts it back (SetValue +
// RestoreEdge + replaying logged updates through Apply with a
// ReplayTransport), and how a process death is modeled in-process
// (WipeDurable). The durable state is exactly the two things Eqs. 3+7
// depend on: the per-item values and each outgoing edge's (last, seeded)
// filter state — with them restored, the first post-recovery update is
// suppressed or forwarded precisely as if the crash never happened.

// DumpDurable streams the core's durable state in a deterministic order:
// every held value (sorted by item), then every seeded outgoing edge
// (items sorted, edges in plan order). Unseeded edges carry no filter
// state and are skipped — recovery recreates them unseeded, which is
// already their semantics.
func (c *Core) DumpDurable(value func(item string, v float64), edge func(dep repository.ID, item string, last float64, seeded bool)) {
	items := make([]string, 0, len(c.values))
	for item := range c.values {
		items = append(items, item)
	}
	sort.Strings(items)
	for _, item := range items {
		value(item, c.values[item])
	}
	if edge == nil || len(c.plans) == 0 {
		return
	}
	planned := make([]string, 0, len(c.plans))
	for item := range c.plans {
		planned = append(planned, item)
	}
	sort.Strings(planned)
	for _, item := range planned {
		p := c.plans[item]
		for i := range p.deps {
			e := &p.deps[i]
			if e.seeded {
				edge(e.id, item, e.last, e.seeded)
			}
		}
	}
}

// RestoreEdge sets one outgoing edge's filter state to a recovered
// (last, seeded) pair. Unlike ResetEdge it restores the flag verbatim
// rather than forcing a seeded post-resync state. A dependent the
// current wiring no longer carries is ignored.
func (c *Core) RestoreEdge(dep repository.ID, item string, last float64, seeded bool) {
	p := c.plan(item)
	if p == nil {
		return
	}
	for i := range p.deps {
		if p.deps[i].id == dep {
			p.deps[i].last, p.deps[i].seeded = last, seeded
			return
		}
	}
}

// WipeDurable models a process death for transports that keep the Core
// object across a kill (the simulator): values, fan-out plans and their
// filter state, and the retired decision tallies all vanish, exactly
// what a real crash loses without a log. Wiring (the repository pointer)
// survives — it belongs to the overlay, not the process.
func (c *Core) WipeDurable() {
	c.values = make(map[string]float64)
	c.plans = make(map[string]*plan)
	c.retired = make(map[string]Decisions)
}

// ReplayTransport drives Apply during log replay: time is pinned, every
// dependent send is accepted (the pre-crash process already delivered
// or filtered these updates; replay only needs the edge state to
// advance identically), and client sends go nowhere (sessions did not
// survive the crash).
type ReplayTransport struct {
	// At is the replay's fixed timestamp.
	At sim.Time
}

// Now returns the pinned replay time.
func (r ReplayTransport) Now() sim.Time { return r.At }

// SendToDependent accepts every copy so the edge's (last, seeded) state
// advances exactly as it did before the crash.
func (r ReplayTransport) SendToDependent(repository.ID, string, float64, bool) bool { return true }

// SendToClient drops the copy; no session outlives the process.
func (r ReplayTransport) SendToClient(*Session, string, float64, bool) {}
