// Property-based test of the repository core: on randomly generated
// overlays, tolerances and traces, (1) no repository's copy ever deviates
// from the source by more than its serving tolerance — the paper's
// zero-delay 100%-fidelity guarantee, which only holds if Eqs. 3 and 7
// fire exactly when they must — and (2) every forward and every
// suppression the core decides matches a straightforward shadow model
// that re-derives the decision from the raw equations and its own
// last-pushed bookkeeping, so a suppressed push is always justified.
// Finally the same feed runs through the ingest pipeline at Shards=1 and
// Shards=8, which must produce identical forward/suppress decision sets
// (and the same set the model-checked run produced).
//
// The test lives in package node_test so it can drive the core through
// the ingest pipeline without an import cycle.
package node_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"d3t/internal/coherency"
	"d3t/internal/ingest"
	"d3t/internal/netsim"
	"d3t/internal/node"
	"d3t/internal/query"
	"d3t/internal/repository"
	"d3t/internal/sim"
	"d3t/internal/trace"
	"d3t/internal/tree"
)

// propScenario is one randomly drawn world.
type propScenario struct {
	seed  int64
	items int
	repos int
	ticks int
	prob  float64
	frac  float64
}

func drawScenario(rng *rand.Rand) propScenario {
	return propScenario{
		seed:  rng.Int63n(1 << 30),
		items: 3 + rng.Intn(6),
		repos: 6 + rng.Intn(9),
		ticks: 80 + rng.Intn(150),
		prob:  0.4 + 0.5*rng.Float64(),
		frac:  rng.Float64(),
	}
}

// buildWorld constructs the scenario's overlay and traces.
func buildWorld(t *testing.T, sc propScenario) (*tree.Overlay, []*trace.Trace, map[string]float64) {
	t.Helper()
	traces := trace.GenerateSet(sc.items, sc.ticks, sim.Second, sc.seed)
	names := make([]string, len(traces))
	initial := make(map[string]float64, len(traces))
	for i, tr := range traces {
		names[i] = tr.Item
		initial[tr.Item] = tr.Ticks[0].Value
	}
	repos := make([]*repository.Repository, sc.repos)
	for i := range repos {
		repos[i] = repository.New(repository.ID(i+1), 3)
	}
	repository.AssignNeeds(repos, repository.Workload{
		Items:         names,
		SubscribeProb: sc.prob,
		StringentFrac: sc.frac,
		Seed:          sc.seed + 1,
	})
	o, err := (&tree.LeLA{Seed: sc.seed + 2}).Build(netsim.Uniform(sc.repos, sim.Millisecond), repos, 3)
	if err != nil {
		t.Fatal(err)
	}
	return o, traces, initial
}

// recordTransport captures one apply pass's dependent sends.
type recordTransport struct{ sent []repository.ID }

func (t *recordTransport) Now() sim.Time { return 0 }
func (t *recordTransport) SendToDependent(dep repository.ID, item string, v float64, resync bool) bool {
	t.sent = append(t.sent, dep)
	return true
}
func (t *recordTransport) SendToClient(s *node.Session, item string, v float64, resync bool) {}

// edgeKey identifies one (parent, dependent, item) push edge.
type edgeKey struct {
	from, to repository.ID
	item     string
}

// edgeState is the shadow model's last-pushed bookkeeping.
type edgeState struct {
	v      float64
	seeded bool
}

func TestCoreProperties(t *testing.T) {
	scenarios := 12
	if testing.Short() {
		scenarios = 4
	}
	rng := rand.New(rand.NewSource(20260729))
	for i := 0; i < scenarios; i++ {
		sc := drawScenario(rng)
		t.Run(fmt.Sprintf("seed=%d", sc.seed), func(t *testing.T) {
			runPropScenario(t, sc)
		})
	}
}

func runPropScenario(t *testing.T, sc propScenario) {
	o, traces, initial := buildWorld(t, sc)

	// The model-checked direct run: one core per overlay node, zero
	// delay, synchronous BFS per source update.
	cores := make([]*node.Core, len(o.Nodes))
	for _, n := range o.Nodes {
		cores[n.ID] = node.New(n, o.Node, node.Options{})
		for x := range n.Dependents {
			cores[n.ID].Seed(x, initial[x])
		}
	}
	model := make(map[edgeKey]edgeState)
	copies := make(map[repository.ID]map[string]float64)
	for _, n := range o.Nodes {
		copies[n.ID] = make(map[string]float64)
		for x := range n.Serving {
			if v, ok := initial[x]; ok {
				copies[n.ID][x] = v
			}
		}
		for x, deps := range n.Dependents {
			for _, dep := range deps {
				model[edgeKey{n.ID, dep, x}] = edgeState{v: initial[x], seeded: true}
			}
		}
	}
	var tr recordTransport

	// expectedForwards re-derives the fan-out from the raw equations and
	// the shadow state: the first-push rule for unseeded edges, then
	// Eqs. 3 and 7.
	expectedForwards := func(r *repository.Repository, item string, v float64) []repository.ID {
		var cSelf coherency.Requirement
		if !r.IsSource() {
			var holds bool
			cSelf, holds = r.ServingTolerance(item)
			if !holds {
				return nil // a repository that does not maintain the item serves it to no one
			}
		}
		var out []repository.ID
		for _, dep := range r.Dependents[item] {
			cDep, ok := o.Node(dep).ServingTolerance(item)
			if !ok {
				continue
			}
			st := model[edgeKey{r.ID, dep, item}]
			if !st.seeded || coherency.ShouldForward(v, st.v, cDep, cSelf) {
				out = append(out, dep)
			}
		}
		return out
	}

	apply := func(item string, srcVal float64) {
		type hop struct {
			id repository.ID
			v  float64
		}
		queue := []hop{{repository.SourceID, srcVal}}
		for len(queue) > 0 {
			h := queue[0]
			queue = queue[1:]
			r := o.Node(h.id)
			want := expectedForwards(r, item, h.v)
			tr.sent = tr.sent[:0]
			cores[h.id].Apply(item, h.v, &tr)
			got := append([]repository.ID(nil), tr.sent...)
			if len(got) != len(want) {
				t.Fatalf("node %v item %s value %v: core forwarded to %v, equations say %v",
					h.id, item, h.v, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("node %v item %s value %v: core forwarded to %v, equations say %v",
						h.id, item, h.v, got, want)
				}
			}
			if _, holds := copies[h.id][item]; holds || r.IsSource() {
				copies[h.id][item] = h.v
			}
			for _, dep := range want {
				model[edgeKey{h.id, dep, item}] = edgeState{v: h.v, seeded: true}
				queue = append(queue, hop{dep, h.v})
			}
		}
	}

	// checkInvariant: with zero delays, every repository serving the item
	// is within its own tolerance of the source — the fidelity guarantee
	// Eqs. 3+7 exist to uphold.
	checkInvariant := func(item string, srcVal float64) {
		for _, r := range o.Repos() {
			tol, ok := r.ServingTolerance(item)
			if !ok {
				continue
			}
			have, ok := copies[r.ID][item]
			if !ok {
				continue
			}
			if dev := math.Abs(srcVal - have); dev > float64(tol)+1e-9 {
				t.Fatalf("repo %v item %s: |source %v - copy %v| = %v exceeds tolerance %v",
					r.ID, item, srcVal, have, dev, tol)
			}
		}
	}

	// Feed every value-changing tick, in tick order across traces —
	// checking the fan-out equations at every hop and the fidelity
	// invariant after every update.
	last := make(map[string]float64, len(traces))
	for _, tc := range traces {
		last[tc.Item] = tc.Ticks[0].Value
	}
	maxTicks := 0
	for _, tc := range traces {
		if tc.Len() > maxTicks {
			maxTicks = tc.Len()
		}
	}
	for i := 1; i < maxTicks; i++ {
		for _, tc := range traces {
			if i >= tc.Len() || tc.Ticks[i].Value == last[tc.Item] {
				continue
			}
			v := tc.Ticks[i].Value
			last[tc.Item] = v
			apply(tc.Item, v)
			checkInvariant(tc.Item, v)
		}
	}

	// Decision-set parity: the model-checked cores, the single-shard
	// pipeline and the 8-shard pipeline must have made exactly the same
	// forward/suppress decisions per (repository, item).
	direct := make(map[string]node.Decisions)
	for _, n := range o.Nodes {
		for item, d := range cores[n.ID].EdgeDecisions() {
			direct[n.ID.String()+"/"+item] = d
		}
	}
	if len(direct) == 0 {
		t.Fatal("no decisions made; the scenario is vacuous")
	}
	for _, shards := range []int{1, 8} {
		p := ingest.NewPipeline(o, initial, ingest.Config{Shards: shards})
		feedTraces(p, traces)
		p.Close()
		got := make(map[string]node.Decisions)
		for id, items := range p.Decisions() {
			for item, d := range items {
				got[id.String()+"/"+item] = d
			}
		}
		if len(got) != len(direct) {
			t.Fatalf("shards=%d: decision set size %d, want %d", shards, len(got), len(direct))
		}
		for k, w := range direct {
			if got[k] != w {
				t.Errorf("shards=%d: decisions[%s] = %+v, want %+v", shards, k, got[k], w)
			}
		}
	}
}

// TestQueryToleranceInvariant is the query layer's analogue of the core
// fidelity property: on randomly drawn queries, whenever every delivered
// input is within its allocated per-input tolerance of the true value,
// the recomputed windowed result stays within cQ of the true result. Two
// evaluators run in lockstep on the identical delivery/tick sequence —
// one fed true values, one fed adversarially perturbed ones — and a
// per-operator shadow model (direct formula over the recorded per-tick
// aggregates) independently re-derives what the true result must be, so
// the evaluator itself is model-checked at the same time.
//
// Ratio's allocation is first-order (see internal/query doc comment), so
// its draws keep the preconditions the bound needs: |numerator| ≤
// denominator and the perturbed denominator ≥ 1.
func TestQueryToleranceInvariant(t *testing.T) {
	kinds := []query.Kind{query.Sum, query.Avg, query.Min, query.Max, query.Diff, query.Ratio}
	pool := []string{"i0", "i1", "i2", "i3", "i4", "i5", "i6", "i7"}
	rng := rand.New(rand.NewSource(20260807))
	scenarios := 48
	if testing.Short() {
		scenarios = 12
	}
	for i := 0; i < scenarios; i++ {
		kind := kinds[i%len(kinds)]
		items := append([]string(nil), pool...)
		rng.Shuffle(len(items), func(a, b int) { items[a], items[b] = items[b], items[a] })
		n := 1 + rng.Intn(5)
		if kind.IsJoin() {
			n = 2
		}
		q := query.Query{
			Name:      fmt.Sprintf("prop%d", i),
			Kind:      kind,
			Items:     items[:n],
			Window:    1 + rng.Intn(4),
			Tolerance: 0.5 + 4.5*rng.Float64(),
		}
		if kind == query.Ratio {
			q.Tolerance = 0.2 + 0.8*rng.Float64()
		}
		t.Run(fmt.Sprintf("%d-%s-w%d-n%d", i, kind, q.Window, n), func(t *testing.T) {
			runQueryToleranceScenario(t, q, rand.New(rand.NewSource(int64(7919*i+13))))
		})
	}
}

// shadowAggregate re-derives the instantaneous cross-item aggregate from
// the raw per-operator formula.
func shadowAggregate(q query.Query, vals map[string]float64) float64 {
	switch q.Kind {
	case query.Sum, query.Avg:
		var s float64
		for _, x := range q.Items {
			s += vals[x]
		}
		if q.Kind == query.Avg {
			s /= float64(len(q.Items))
		}
		return s
	case query.Min, query.Max:
		out := vals[q.Items[0]]
		for _, x := range q.Items[1:] {
			if v := vals[x]; (q.Kind == query.Min && v < out) || (q.Kind == query.Max && v > out) {
				out = v
			}
		}
		return out
	case query.Diff:
		return vals[q.Items[0]] - vals[q.Items[1]]
	case query.Ratio:
		return vals[q.Items[0]] / vals[q.Items[1]]
	}
	return 0
}

// shadowCombine folds the last Window per-tick aggregates the way the
// documented combiner does: min/max for min/max, the mean otherwise.
func shadowCombine(q query.Query, hist []float64) float64 {
	w := q.Window
	if len(hist) < w {
		w = len(hist)
	}
	slots := hist[len(hist)-w:]
	switch q.Kind {
	case query.Min, query.Max:
		out := slots[0]
		for _, v := range slots[1:] {
			if (q.Kind == query.Min && v < out) || (q.Kind == query.Max && v > out) {
				out = v
			}
		}
		return out
	default:
		var s float64
		for _, v := range slots {
			s += v
		}
		return s / float64(len(slots))
	}
}

func runQueryToleranceScenario(t *testing.T, q query.Query, rng *rand.Rand) {
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	draw := func(x string) float64 {
		if q.Kind == query.Ratio {
			if x == q.Items[1] {
				return 2 + 8*rng.Float64() // denominator bounded away from zero
			}
			return -2 + 4*rng.Float64() // |numerator| ≤ denominator
		}
		return 100 * rng.Float64()
	}
	tol := float64(q.InputTolerance())
	trueEval, servedEval := query.NewEval(q), query.NewEval(q)
	truth := make(map[string]float64, len(q.Items))
	var hist []float64
	for tick := int64(0); tick < 60; tick++ {
		// Redraw every input, then deliver the tick's values to both
		// evaluators in a random order — identical sequence and ticks, so
		// their windows stay slot-aligned.
		order := append([]string(nil), q.Items...)
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, x := range order {
			truth[x] = draw(x)
			trueEval.Observe(x, truth[x], tick)
			pert := (2*rng.Float64() - 1) * tol
			servedEval.Observe(x, truth[x]+pert, tick)
		}
		hist = append(hist, shadowAggregate(q, truth))
		want := shadowCombine(q, hist)
		got, ok := trueEval.Result()
		if !ok {
			t.Fatalf("tick %d: result undefined after all inputs delivered", tick)
		}
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("tick %d: evaluator result %v disagrees with shadow model %v", tick, got, want)
		}
		served, ok := servedEval.Result()
		if !ok {
			t.Fatalf("tick %d: served result undefined", tick)
		}
		if dev := math.Abs(served - want); dev > q.Tolerance+1e-9 {
			t.Fatalf("tick %d: |served %v - true %v| = %v exceeds cQ %v (per-input tol %v)",
				tick, served, want, dev, q.Tolerance, tol)
		}
	}
	wantDeliveries := uint64(60 * len(q.Items))
	wantRecomputes := wantDeliveries - uint64(len(q.Items)-1) // pre-first-full-set deliveries don't recompute
	if trueEval.Evals() != wantDeliveries || trueEval.Recomputes() != wantRecomputes {
		t.Errorf("counts: evals=%d recomputes=%d, want %d/%d (every delivery recomputes once all inputs are present)",
			trueEval.Evals(), trueEval.Recomputes(), wantDeliveries, wantRecomputes)
	}
}

// feedTraces pushes every value-changing tick through the pipeline in
// tick order.
func feedTraces(p *ingest.Pipeline, traces []*trace.Trace) {
	last := make(map[string]float64, len(traces))
	maxTicks := 0
	for _, tc := range traces {
		last[tc.Item] = tc.Ticks[0].Value
		if tc.Len() > maxTicks {
			maxTicks = tc.Len()
		}
	}
	for i := 1; i < maxTicks; i++ {
		for _, tc := range traces {
			if i >= tc.Len() || tc.Ticks[i].Value == last[tc.Item] {
				continue
			}
			last[tc.Item] = tc.Ticks[i].Value
			p.Offer(tc.Item, tc.Ticks[i].Value)
		}
		p.Tick()
	}
}
