package node

import (
	"fmt"
	"testing"

	"d3t/internal/coherency"
	"d3t/internal/repository"
	"d3t/internal/sim"
)

// record is a test transport: it remembers every send and can refuse
// dependents to model unreachable peers.
type record struct {
	now     sim.Time
	deps    []string // "dep:item=value" of accepted dependent sends
	clients []string // "name:item=value(resync)" of client sends
	refuse  map[repository.ID]bool
	// refuseAfter, when >= 0, accepts that many dependent sends of one
	// Apply and refuses the rest — the transport mid-crash.
	refuseAfter int
	sent        int
}

func newRecord() *record { return &record{refuseAfter: -1} }

func (r *record) Now() sim.Time { return r.now }

func (r *record) SendToDependent(dep repository.ID, item string, v float64, resync bool) bool {
	if r.refuse[dep] {
		return false
	}
	if r.refuseAfter >= 0 && r.sent >= r.refuseAfter {
		return false
	}
	r.sent++
	tag := ""
	if resync {
		tag = "*"
	}
	r.deps = append(r.deps, formatSend(dep.String(), item, v)+tag)
	return true
}

func (r *record) SendToClient(s *Session, item string, v float64, resync bool) {
	tag := ""
	if resync {
		tag = "*"
	}
	r.clients = append(r.clients, formatSend(s.Name(), item, v)+tag)
}

func formatSend(who, item string, v float64) string {
	return fmt.Sprintf("%s:%s=%g", who, item, v)
}

// pair builds parent(1, tolerance pTol) -> child(2, tolerance cTol) for
// item X, plus a second child 3 at c2Tol when nonzero.
func pair(pTol, cTol, c2Tol coherency.Requirement) (*Core, *repository.Repository) {
	parent := repository.New(1, 4)
	parent.Serving["X"] = pTol
	child := repository.New(2, 4)
	child.Serving["X"] = cTol
	peers := map[repository.ID]*repository.Repository{2: child}
	parent.AddDependent("X", 2)
	if c2Tol > 0 {
		child2 := repository.New(3, 4)
		child2.Serving["X"] = c2Tol
		peers[3] = child2
		parent.AddDependent("X", 3)
	}
	core := New(parent, func(id repository.ID) *repository.Repository { return peers[id] }, Options{})
	return core, parent
}

// TestFirstPushRule is the regression test for the reconciled
// seeded/unseeded semantics: an unseeded edge always forwards the first
// update (whatever its magnitude), and after any push — resync included —
// Eqs. 3 and 7 decide. The live runtime historically spelled this
// `!seeded || ShouldForward` and the TCP runtime `seeded && !`; the core
// states it once.
func TestFirstPushRule(t *testing.T) {
	core, _ := pair(10, 50, 0)
	tr := newRecord()

	// Unseeded edge: even a tiny move (well inside the child's tolerance
	// 50) must be forwarded.
	if fwd, checks := core.Apply("X", 1, tr); fwd != 1 || checks != 1 {
		t.Fatalf("unseeded first update: fwd=%d checks=%d, want 1,1", fwd, checks)
	}
	// Now seeded at 1: a move inside cDep-cSelf = 40 is suppressed...
	if fwd, _ := core.Apply("X", 30, tr); fwd != 0 {
		t.Fatalf("sub-threshold update forwarded after seeding")
	}
	// ...and one beyond it is forwarded.
	if fwd, _ := core.Apply("X", 99, tr); fwd != 1 {
		t.Fatalf("super-threshold update suppressed")
	}
	want := []string{"repo2:X=1", "repo2:X=99"}
	if len(tr.deps) != 2 || tr.deps[0] != want[0] || tr.deps[1] != want[1] {
		t.Fatalf("dependent sends = %v, want %v", tr.deps, want)
	}
}

// TestFirstPushAfterResync: the first update after a resync filters
// against the resynced value — it is suppressed when within tolerance of
// it, forwarded when beyond — never unconditionally delivered or
// unconditionally withheld.
func TestFirstPushAfterResync(t *testing.T) {
	core, _ := pair(10, 50, 0)
	tr := newRecord()
	core.Seed("X", 100)
	core.Apply("X", 200, tr) // seeded edge moves to 200

	// Failover-style resync: the edge state re-seeds to the synced value.
	core.SetValue("X", 250)
	core.ResyncDependent(2, tr)
	if last := tr.deps[len(tr.deps)-1]; last != "repo2:X=250*" {
		t.Fatalf("resync push = %q, want repo2:X=250*", last)
	}

	// First post-resync update within cDep-cSelf of 250: suppressed.
	if fwd, _ := core.Apply("X", 270, tr); fwd != 0 {
		t.Fatal("first post-resync update within tolerance was forwarded")
	}
	// Beyond the band: forwarded.
	if fwd, _ := core.Apply("X", 320, tr); fwd != 1 {
		t.Fatal("first violating post-resync update was suppressed")
	}
}

// TestResyncReDeliversLastPushedValue: a dependent that re-homes back
// onto a parent it already knew (crash and rejoin) still receives the
// parent's current copy, even when it equals the value last pushed over
// the old edge — the dependent may have lost or missed state while away,
// and the overlay cannot tell.
func TestResyncReDeliversLastPushedValue(t *testing.T) {
	core, _ := pair(10, 50, 0)
	tr := newRecord()
	core.Seed("X", 100)
	core.Apply("X", 200, tr) // edge last-pushed = 200, value = 200

	tr.deps = nil
	core.ResyncDependent(2, tr)
	if len(tr.deps) != 1 || tr.deps[0] != "repo2:X=200*" {
		t.Fatalf("resync sends = %v, want the unconditional re-delivery of 200", tr.deps)
	}
}

// TestCrashDuringFanOut: when the transport loses a dependent mid-fan-out
// (the TCP child hung up, the peer crashed), the unreachable edge's
// filter state must not advance — the dependent catches up on the next
// qualifying update — while the reachable edges proceed normally.
func TestCrashDuringFanOut(t *testing.T) {
	core, _ := pair(10, 50, 60)
	tr := newRecord()
	core.Seed("X", 100)

	// Both children need the jump to 200; the transport accepts only the
	// first send, then "crashes".
	tr.refuseAfter = 1
	if fwd, checks := core.Apply("X", 200, tr); fwd != 1 || checks != 2 {
		t.Fatalf("fwd=%d checks=%d, want 1 accepted of 2 checked", fwd, checks)
	}
	if len(tr.deps) != 1 || tr.deps[0] != "repo2:X=200" {
		t.Fatalf("sends = %v, want only repo2", tr.deps)
	}

	// Transport recovers. A small further move (within repo3's band of
	// its last *received* value 100) must still be forwarded to repo3 —
	// its edge never advanced — while repo2's edge suppresses it.
	tr.refuseAfter = -1
	tr.deps = nil
	if fwd, _ := core.Apply("X", 210, tr); fwd != 1 {
		t.Fatalf("fwd=%d, want the lost child to catch up", fwd)
	}
	if len(tr.deps) != 1 || tr.deps[0] != "repo3:X=210" {
		t.Fatalf("sends = %v, want repo3 only", tr.deps)
	}
}

// TestMigrationRacingRedirect: a session migrating onto a node that
// concurrently filled to its cap is redirected (counted), keeps its
// carried state, and a later admission resyncs only values that differ —
// the redirect does not wipe or duplicate the client's copies.
func TestMigrationRacingRedirect(t *testing.T) {
	coreA, _ := pair(10, 50, 0)
	coreB, _ := pair(10, 50, 0)
	coreB.opts.SessionCap = 1
	tr := newRecord()
	coreA.Seed("X", 100)
	coreB.Seed("X", 100)

	s := NewSession("mobile", map[string]coherency.Requirement{"X": 80})
	if _, err := coreA.Admit(s, tr); err != nil {
		t.Fatal(err)
	}
	coreA.Apply("X", 300, tr) // delivered: session copy now 300
	coreB.Apply("X", 300, newRecord())

	// The rival session wins coreB's only slot first.
	if _, err := coreB.Admit(NewSession("rival", map[string]coherency.Requirement{"X": 80}), tr); err != nil {
		t.Fatal(err)
	}

	// coreA dies; the migration's admission attempt races the rival and
	// loses: redirected, state intact.
	moved := coreA.DropSession("mobile")
	if moved != s {
		t.Fatal("DropSession did not return the admitted session")
	}
	if reason, err := coreB.Admit(moved, tr); err == nil || reason != RejectCap {
		t.Fatalf("over-cap migration admitted (reason %v)", reason)
	}
	if coreB.Redirected() != 1 {
		t.Fatalf("redirect not counted: %d", coreB.Redirected())
	}
	if v, ok := moved.Value("X"); !ok || v != 300 {
		t.Fatalf("redirected session lost its copy: %v %v", v, ok)
	}

	// The rival departs; the retry lands. The session already holds 300 —
	// coreB's current copy — so the admission resyncs nothing.
	coreB.DropSession("rival")
	tr.clients = nil
	if _, err := coreB.Admit(moved, tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.clients) != 0 {
		t.Fatalf("equal-value resync pushed %v, want nothing", tr.clients)
	}
	if moved.Resyncs() != 1 { // the initial admission's catch-up only
		t.Fatalf("resyncs = %d, want 1", moved.Resyncs())
	}

	// And had the value moved while detached, the resync delivers it.
	coreB.DropSession("mobile")
	coreB.Apply("X", 500, newRecord())
	tr.clients = nil
	if _, err := coreB.Admit(moved, tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.clients) != 1 || tr.clients[0] != "mobile:X=500*" {
		t.Fatalf("post-migration resync = %v, want mobile:X=500*", tr.clients)
	}
}

// TestSessionAdmissionPolicy covers the strict per-node rule: duplicate
// names, the cap, serving stringency, and the source's serve-anything
// exemption.
func TestSessionAdmissionPolicy(t *testing.T) {
	core, _ := pair(10, 50, 0)
	tr := newRecord()
	wants := func(tol coherency.Requirement) map[string]coherency.Requirement {
		return map[string]coherency.Requirement{"X": tol}
	}
	if reason := core.CanAdmit("a", wants(20)); reason != RejectNone {
		t.Fatalf("admissible session rejected: %v", reason)
	}
	// Tighter than the node's own tolerance 10's guarantee? The node
	// serves X at 10; a client demanding 5 is out of reach.
	if reason := core.CanAdmit("a", wants(5)); reason != RejectServing {
		t.Fatalf("under-served session not rejected: %v", reason)
	}
	if reason := core.CanAdmit("a", map[string]coherency.Requirement{"Y": 100}); reason != RejectServing {
		t.Fatalf("unknown-item session not rejected: %v", reason)
	}
	if _, err := core.Admit(NewSession("a", wants(20)), tr); err != nil {
		t.Fatal(err)
	}
	if reason := core.CanAdmit("a", wants(20)); reason != RejectDuplicate {
		t.Fatalf("duplicate name not rejected: %v", reason)
	}
	core.opts.SessionCap = 1
	if reason := core.CanAdmit("b", wants(20)); reason != RejectCap {
		t.Fatalf("over-cap session not rejected: %v", reason)
	}

	// The source serves any tolerance.
	src := New(repository.New(repository.SourceID, 4), nil, Options{ServeOnly: true})
	if reason := src.CanAdmit("c", wants(0.0001)); reason != RejectNone {
		t.Fatalf("source rejected a stringent session: %v", reason)
	}
}

// TestPlanTracksRewiring: precomputed plans must follow overlay repairs —
// dropped dependents stop receiving, adopted ones start, and a dependent
// that tightens its tolerance mid-run is filtered against the new value.
func TestPlanTracksRewiring(t *testing.T) {
	core, parent := pair(10, 50, 60)
	tr := newRecord()
	core.Seed("X", 100)

	// Drop repo3: only repo2 receives.
	parent.DropDependent(3)
	if fwd, checks := core.Apply("X", 200, tr); fwd != 1 || checks != 1 {
		t.Fatalf("after drop: fwd=%d checks=%d, want 1,1", fwd, checks)
	}

	// repo2 tightens from 50 to 15: a move of 20 now violates it.
	dep := core.peers(2)
	dep.Tighten("X", 15)
	tr.deps = nil
	if fwd, _ := core.Apply("X", 220, tr); fwd != 1 {
		t.Fatalf("tightened dependent did not receive: %v", tr.deps)
	}
}

// TestServeOnlyCoreSkipsDependents: the fleet's serve-only cores must
// never touch the dependent pipeline even when the bound repository has
// overlay dependents.
func TestServeOnlyCoreSkipsDependents(t *testing.T) {
	parent := repository.New(1, 4)
	parent.Serving["X"] = 10
	parent.AddDependent("X", 2)
	core := New(parent, nil, Options{ServeOnly: true})
	tr := newRecord()
	if fwd, checks := core.Apply("X", 100, tr); fwd != 0 || checks != 0 {
		t.Fatalf("serve-only core fanned to dependents: fwd=%d checks=%d", fwd, checks)
	}
	if v, ok := core.Value("X"); !ok || v != 100 {
		t.Fatalf("serve-only core did not record the value: %v %v", v, ok)
	}
}

// TestSessionFanOutFilter: sessions are filtered with the node's own
// tolerance as cSelf (Eqs. 3 and 7 at the leaf), in sorted name order.
func TestSessionFanOutFilter(t *testing.T) {
	core, _ := pair(10, 50, 0)
	tr := newRecord()
	core.Seed("X", 100)
	for _, name := range []string{"zoe", "amy"} {
		if _, err := core.Admit(NewSession(name, map[string]coherency.Requirement{"X": 80}), tr); err != nil {
			t.Fatal(err)
		}
	}
	tr.clients = nil
	// |170-100| = 70 <= 80-10: safe for both sessions.
	core.Apply("X", 170, tr)
	if len(tr.clients) != 0 {
		t.Fatalf("sub-threshold update delivered: %v", tr.clients)
	}
	// |180-100| = 80 > 80-10 via Eq. 7's guard band: delivered, amy first.
	core.Apply("X", 175, tr)
	if len(tr.clients) != 2 || tr.clients[0] != "amy:X=175" || tr.clients[1] != "zoe:X=175" {
		t.Fatalf("fan-out = %v, want amy then zoe at 175", tr.clients)
	}
	amy := core.Session("amy")
	if amy.Delivered() != 1 || amy.Filtered() != 1 {
		t.Fatalf("amy counters delivered=%d filtered=%d, want 1,1", amy.Delivered(), amy.Filtered())
	}
}

// TestEdgeDecisions: the parity instrumentation tallies exactly the
// filter decisions made.
func TestEdgeDecisions(t *testing.T) {
	core, _ := pair(10, 50, 0)
	tr := newRecord()
	core.Seed("X", 100)
	core.Apply("X", 120, tr) // suppressed
	core.Apply("X", 200, tr) // forwarded
	core.Apply("X", 210, tr) // suppressed
	d := core.EdgeDecisions()["X"]
	if d.Forwarded != 1 || d.Suppressed != 2 {
		t.Fatalf("decisions = %+v, want 1 forwarded, 2 suppressed", d)
	}
}
