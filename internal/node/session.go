package node

import (
	"fmt"
	"sort"

	"d3t/internal/coherency"
	"d3t/internal/sim"
)

// Session is one client's subscription state as the serving node tracks
// it: the watch list with the client's own tolerances, the last value
// delivered per item (the session-edge filter state of the first-push
// rule), and the delivery counters. A Session object survives migration:
// dropping it from one core and admitting it into another carries the
// client's current copies along, so the new node resyncs only the items
// whose values actually differ.
//
// Like Core, a Session is synchronized by its owning transport; its own
// methods perform no locking.
type Session struct {
	name  string
	wants map[string]coherency.Requirement
	// last holds the session-edge filter state per item. Entries are
	// pointers so the fan-out plan (Core.watchers) can hold them inline
	// and the steady-state filter loop performs no map operations.
	last map[string]*itemState

	lastServed sim.Time
	seq        uint64 // admission sequence on the current core
	delivered  uint64
	filtered   uint64
	resyncs    uint64

	// tag is opaque transport-side state (a delivery channel, a wire
	// encoder, the transport's own session wrapper), set at admission so
	// SendToClient needs no name lookup.
	tag any
}

// SetTag attaches transport-side state to the session; Tag returns it.
func (s *Session) SetTag(v any) { s.tag = v }

// Tag returns the transport-side state attached with SetTag.
func (s *Session) Tag() any { return s.tag }

// itemState is one (session, item) edge's filter state: the last value
// pushed to the client and the first-push rule's seeded flag.
type itemState struct {
	v      float64
	seeded bool
}

// NewSession builds a detached session for the named client.
func NewSession(name string, wants map[string]coherency.Requirement) *Session {
	return &Session{
		name:  name,
		wants: wants,
		last:  make(map[string]*itemState, len(wants)),
	}
}

// state returns the session's filter state for item, creating it on
// first use.
func (s *Session) state(item string) *itemState {
	st := s.last[item]
	if st == nil {
		st = &itemState{}
		s.last[item] = st
	}
	return st
}

// Name returns the client name.
func (s *Session) Name() string { return s.name }

// Wants returns the watch list (shared, not copied).
func (s *Session) Wants() map[string]coherency.Requirement { return s.wants }

// Value returns the session's current copy of item.
func (s *Session) Value(item string) (float64, bool) {
	st := s.last[item]
	if st == nil || !st.seeded {
		return 0, false
	}
	return st.v, true
}

// SeedValue records the session's copy of item without a delivery, as
// when the whole system starts synchronized.
func (s *Session) SeedValue(item string, v float64) {
	st := s.state(item)
	st.v, st.seeded = v, true
}

// Delivered, Filtered and Resyncs report the session's decision
// counters: live updates delivered, live updates suppressed by the
// client's tolerance, and catch-up values pushed on admission/migration.
func (s *Session) Delivered() uint64 { return s.delivered }
func (s *Session) Filtered() uint64  { return s.filtered }
func (s *Session) Resyncs() uint64   { return s.resyncs }

// LastServed returns the transport time of the last push to the session
// (delivery or resync).
func (s *Session) LastServed() sim.Time { return s.lastServed }

// AttachSeq orders the sessions of one core by admission time (each
// admission, initial or by migration, advances it). Transports sweeping
// a node's sessions — a crash migrating them away — use it to process
// them in the order they arrived.
func (s *Session) AttachSeq() uint64 { return s.seq }

// RejectReason says why Admit turned a session away.
type RejectReason int

const (
	// RejectNone is the zero reason (admitted).
	RejectNone RejectReason = iota
	// RejectDuplicate: a session with the same name is already admitted.
	RejectDuplicate
	// RejectCap: the session cap is reached.
	RejectCap
	// RejectServing: the node does not serve some watched item at least
	// as stringently as the client demands (Eq. 1 at the leaf). The
	// source never rejects for this reason — it holds exact values.
	RejectServing
)

func (r RejectReason) String() string {
	switch r {
	case RejectNone:
		return "admitted"
	case RejectDuplicate:
		return "duplicate session name"
	case RejectCap:
		return "session cap reached"
	case RejectServing:
		return "item not served stringently enough"
	}
	return fmt.Sprintf("reject(%d)", int(r))
}

// SessionCount returns the number of admitted sessions.
func (c *Core) SessionCount() int { return len(c.sessions) }

// Redirected returns how many admissions the core has rejected — the
// subscribes a transport answers with a redirect.
func (c *Core) Redirected() int { return c.redirected }

// HasSessionRoom reports whether the session cap leaves room for one
// more session.
func (c *Core) HasSessionRoom() bool {
	return c.opts.SessionCap <= 0 || len(c.sessions) < c.opts.SessionCap
}

// CanServeSession reports whether the node serves every watched item at
// least as stringently as the client demands. The source serves any
// tolerance.
func (c *Core) CanServeSession(wants map[string]coherency.Requirement) bool {
	if c.opts.Source {
		return true
	}
	for x, tol := range wants {
		own, ok := c.self.Serving[x]
		if !ok || !own.AtLeastAsStringentAs(tol) {
			return false
		}
	}
	return true
}

// CanAdmit applies the admission policy — duplicate name, session cap,
// serving stringency — without side effects, returning RejectNone when
// the session would be admitted.
func (c *Core) CanAdmit(name string, wants map[string]coherency.Requirement) RejectReason {
	switch {
	case c.sessions[name] != nil:
		return RejectDuplicate
	case !c.HasSessionRoom():
		return RejectCap
	case !c.CanServeSession(wants):
		return RejectServing
	}
	return RejectNone
}

// NoteRedirect counts one turned-away subscribe. Transports that need to
// interleave their own wire traffic between the admission decision and
// the resync (a TCP accept frame) use CanAdmit + NoteRedirect/ForceAdmit
// instead of Admit.
func (c *Core) NoteRedirect() {
	c.redirected++
	c.obs.Redirect1()
}

// Admit applies the full admission policy and on success registers the
// session and resyncs it. A rejection is counted against Redirected and
// returned for the transport to translate (a redirect frame, the next
// placement candidate).
func (c *Core) Admit(s *Session, t Transport) (RejectReason, error) {
	if reason := c.CanAdmit(s.name, s.wants); reason != RejectNone {
		c.redirected++
		c.obs.Redirect1()
		return reason, fmt.Errorf("node: %v rejects session %q: %v", c.self.ID, s.name, reason)
	}
	c.ForceAdmit(s, t)
	return RejectNone, nil
}

// ForceAdmit registers the session without policy checks — for transports
// whose placement layer already decided (load-aware placement may
// deliberately overflow the serving check rather than strand a client) —
// and resyncs it: the node's current copy of every watched item is pushed
// in sorted order, skipping values the session provably already holds.
// Admitting a name twice on the same core panics; the transports'
// admission paths guard it.
func (c *Core) ForceAdmit(s *Session, t Transport) {
	if c.sessions[s.name] != nil {
		panic(fmt.Sprintf("node: %v: duplicate session %q", c.self.ID, s.name))
	}
	s.seq = c.admitSeq
	c.admitSeq++
	c.sessions[s.name] = s
	items := make([]string, 0, len(s.wants))
	for x, tol := range s.wants {
		items = append(items, x)
		ws := c.watchers[x]
		at := sort.Search(len(ws), func(i int) bool { return ws[i].s.name >= s.name })
		ws = append(ws, watcher{})
		copy(ws[at+1:], ws[at:])
		ws[at] = watcher{s: s, tol: tol, st: s.state(x)}
		c.watchers[x] = ws
	}
	sort.Strings(items)
	now := t.Now()
	// Admission counts as service: a session on a quiet node must not be
	// born stale (transport watchdogs migrate on LastServed silence).
	s.lastServed = now
	resyncs := 0
	for _, x := range items {
		v, ok := c.values[x]
		if !ok {
			continue
		}
		st := s.state(x)
		if st.seeded && st.v == v {
			continue // already converged; nothing to catch up on
		}
		st.v, st.seeded = v, true
		s.resyncs++
		resyncs++
		s.lastServed = now
		t.SendToClient(s, x, v, true)
	}
	c.obs.Admit1()
	c.obs.Resync(resyncs)
}

// DropSession unregisters the named session and returns it (with its
// current copies intact, ready for re-admission elsewhere), or nil if
// not admitted here.
func (c *Core) DropSession(name string) *Session {
	s := c.sessions[name]
	if s == nil {
		return nil
	}
	delete(c.sessions, name)
	for x := range s.wants {
		ws := c.watchers[x]
		for i := range ws {
			if ws[i].s == s {
				c.watchers[x] = append(ws[:i:i], ws[i+1:]...)
				break
			}
		}
		if len(c.watchers[x]) == 0 {
			delete(c.watchers, x)
		}
	}
	return s
}

// Session returns the admitted session with the given name, or nil.
func (c *Core) Session(name string) *Session { return c.sessions[name] }

// SessionNames returns the admitted session names in sorted order.
func (c *Core) SessionNames() []string {
	names := make([]string, 0, len(c.sessions))
	for name := range c.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// StaleSessions returns the admitted sessions whose last push is at
// least window old at now, sorted by name — the candidates a transport's
// watchdog migrates off a silent node. Transports that also carry
// heartbeats refresh sessions with TouchSessions instead of letting
// quiet-but-alive nodes leak their clients.
func (c *Core) StaleSessions(now sim.Time, window sim.Time) []*Session {
	var out []*Session
	for _, name := range c.SessionNames() {
		s := c.sessions[name]
		if now-s.lastServed >= window {
			out = append(out, s)
		}
	}
	return out
}

// TouchSessions stamps every admitted session as served at now — the
// session-facing half of a keep-alive.
func (c *Core) TouchSessions(now sim.Time) {
	for _, s := range c.sessions {
		if now > s.lastServed {
			s.lastServed = now
		}
	}
}
