package live

import (
	"fmt"
	"testing"
	"time"

	"d3t/internal/coherency"
	"d3t/internal/obs"
)

// TestClusterObsPassive pins the observability contract at the live
// backend: decisions and final copies are identical with and without an
// obs tree attached (update order per item is FIFO, so the filter
// decisions are deterministic even in real time).
func TestClusterObsPassive(t *testing.T) {
	values := []float64{120, 140, 150, 170, 200, 260}
	run := func(tr *obs.Tree) (map[string]float64, string) {
		o := chainOverlay(t)
		c := NewCluster(o, Options{Obs: tr})
		c.Seed("X", 100)
		c.Start()
		defer c.Stop()
		for _, v := range values {
			c.Publish("X", v)
		}
		if !waitFor(t, time.Second, func() bool {
			q, _ := c.Value(2, "X")
			return q == values[len(values)-1]
		}) {
			t.Fatalf("propagation stalled: %v", c.Snapshot("X"))
		}
		final := map[string]float64{}
		for id, v := range c.Snapshot("X") {
			final[id.String()] = v
		}
		return final, fmt.Sprintf("%v %v", c.Decisions(0), c.Decisions(1))
	}

	tree := obs.NewTree()
	tree.Tracer = obs.NewTracer(1)
	plainV, plainD := run(nil)
	obsV, obsD := run(tree)
	if fmt.Sprint(plainV) != fmt.Sprint(obsV) {
		t.Errorf("obs changed final copies: %v vs %v", plainV, obsV)
	}
	if plainD != obsD {
		t.Errorf("obs changed decisions:\nplain:    %s\nobserved: %s", plainD, obsD)
	}
}

// TestClusterObsRecords drives a traced chain and checks everything the
// live backend feeds the layer: core counters, hop and source-latency
// histograms, per-edge delay EWMAs keyed by the upstream parent, batch
// counters, and sampled traces with monotone stamps along the chain.
func TestClusterObsRecords(t *testing.T) {
	o := chainOverlay(t)
	tree := obs.NewTree()
	tree.Tracer = obs.NewTracer(1)
	c := NewCluster(o, Options{Obs: tree, CommDelay: 2 * time.Millisecond})
	c.Seed("X", 100)
	c.Start()
	defer c.Stop()

	// Each jump exceeds both tolerances, so every publish reaches Q.
	for _, v := range []float64{200, 300, 400} {
		c.Publish("X", v)
	}
	if !waitFor(t, 2*time.Second, func() bool {
		q, _ := c.Value(2, "X")
		return q == 400
	}) {
		t.Fatalf("updates did not propagate: %v", c.Snapshot("X"))
	}

	snap := c.ObsSnapshot()
	byID := map[string]obs.NodeSnapshot{}
	for _, n := range snap.Nodes {
		byID[n.ID.String()] = n
	}
	for _, id := range []string{"repo1", "repo2"} {
		n, ok := byID[id]
		if !ok {
			t.Fatalf("no snapshot for %s: %+v", id, snap.Nodes)
		}
		if n.Counters.Received == 0 || n.Counters.Batches == 0 {
			t.Errorf("%s: counters did not move: %+v", id, n.Counters)
		}
		if n.Hop.Count == 0 || n.Hop.P50Ms < 2 {
			// Every hop crosses the 2ms comm delay.
			t.Errorf("%s: hop histogram %+v, want count>0 and p50 >= 2ms", id, n.Hop)
		}
		if n.SourceLat.Count == 0 || n.SourceLat.P50Ms < n.Hop.P50Ms {
			t.Errorf("%s: source latency %+v below hop latency %+v", id, n.SourceLat, n.Hop)
		}
		if len(n.EdgeDelayMs) != 1 {
			t.Errorf("%s: edge EWMAs %+v, want exactly the parent edge", id, n.EdgeDelayMs)
		}
		for _, d := range n.EdgeDelayMs {
			if d < 2 {
				t.Errorf("%s: edge delay EWMA %vms below the wire delay", id, d)
			}
		}
	}

	// Traces: every publish is sampled; a fully propagated one holds the
	// source stamp plus one receipt stamp per repository, monotone.
	full := false
	for _, tr := range snap.Traces {
		if len(tr.Hops) == 0 || tr.Hops[0].Node != 0 {
			t.Fatalf("trace %d does not start at the source: %+v", tr.ID, tr.Hops)
		}
		for i := 1; i < len(tr.Hops); i++ {
			if tr.Hops[i].At < tr.Hops[i-1].At {
				t.Fatalf("trace %d: non-monotone hops %+v", tr.ID, tr.Hops)
			}
		}
		if len(tr.Hops) == 3 {
			full = true
		}
	}
	if !full {
		t.Errorf("no trace covered source->P->Q: %+v", snap.Traces)
	}
}

// TestClusterObsSessions checks the serving-layer counters: admissions,
// cap-overflow redirects (with a redirect-latency sample charged to the
// repository that turned the client away), and resyncs.
func TestClusterObsSessions(t *testing.T) {
	o := chainOverlay(t)
	tree := obs.NewTree()
	c := NewCluster(o, Options{SessionCap: 1, Obs: tree})
	c.Seed("X", 100)
	c.Start()
	defer c.Stop()

	wants := map[string]coherency.Requirement{"X": 60}
	a, err := c.Subscribe("a", wants, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Subscribe("b", wants, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Repo() != 1 || b.Repo() != 2 || !b.Redirected() {
		t.Fatalf("placement a=%v b=%v redirected=%v, want 1, 2, true", a.Repo(), b.Repo(), b.Redirected())
	}

	snap := c.ObsSnapshot()
	var admits, redirects, resyncs, redirectSamples uint64
	for _, n := range snap.Nodes {
		admits += n.Counters.Admits
		redirects += n.Counters.Redirects
		resyncs += n.Counters.Resyncs
		redirectSamples += n.Redirect.Count
		if n.ID == 1 && n.Counters.Redirects != 1 {
			t.Errorf("repo1 turned b away but counts %d redirects", n.Counters.Redirects)
		}
	}
	if admits != 2 || redirects != 1 || redirectSamples != 1 {
		t.Errorf("admits=%d redirects=%d redirectSamples=%d, want 2, 1, 1", admits, redirects, redirectSamples)
	}
	if resyncs == 0 {
		t.Errorf("admission resynced seeded copies but no resyncs counted")
	}
}
