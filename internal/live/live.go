// Package live runs the paper's distributed dissemination algorithm in
// real time on goroutines: every overlay node is a goroutine, push
// connections are channels, and communication/computation delays are real
// (scaled) durations. It demonstrates the same filtering logic as the
// discrete-event simulator outside simulated time — the "evaluation in a
// real setting" the paper leaves as future work — on a single machine.
package live

import (
	"fmt"
	"sync"
	"time"

	"d3t/internal/coherency"
	"d3t/internal/repository"
	"d3t/internal/tree"
)

// Options configures a live cluster.
type Options struct {
	// CommDelay is applied to every update hop; CompDelay is the per-copy
	// processing cost at a node. Both may be zero for fastest delivery.
	CommDelay time.Duration
	CompDelay time.Duration
	// OnDeliver, when set, observes every delivery at a repository. It is
	// called from node goroutines and must be safe for concurrent use.
	OnDeliver func(repo repository.ID, item string, value float64)
	// Buffer is the per-node inbox size (default 256). A full inbox
	// applies backpressure to the sender, mirroring a congested node.
	Buffer int
}

// Cluster is a running set of node goroutines wired per an overlay.
type Cluster struct {
	overlay *tree.Overlay
	opts    Options
	nodes   map[repository.ID]*node
	done    chan struct{}
	wg      sync.WaitGroup

	closeOnce sync.Once
}

type update struct {
	item  string
	value float64
}

type node struct {
	repo *repository.Repository
	in   chan update
	// out holds one FIFO channel per dependent: a dedicated forwarder
	// goroutine applies the wire delay, so updates on an edge can never
	// overtake one another.
	out map[repository.ID]chan update

	mu       sync.Mutex
	values   map[string]float64
	lastSent map[repository.ID]map[string]float64
}

// NewCluster builds (but does not start) a live cluster over the overlay.
func NewCluster(o *tree.Overlay, opts Options) *Cluster {
	if opts.Buffer <= 0 {
		opts.Buffer = 256
	}
	c := &Cluster{
		overlay: o,
		opts:    opts,
		nodes:   make(map[repository.ID]*node, len(o.Nodes)),
		done:    make(chan struct{}),
	}
	for _, r := range o.Nodes {
		n := &node{
			repo:     r,
			in:       make(chan update, opts.Buffer),
			out:      make(map[repository.ID]chan update),
			values:   make(map[string]float64),
			lastSent: make(map[repository.ID]map[string]float64),
		}
		for _, deps := range r.Dependents {
			for _, dep := range deps {
				if _, ok := n.out[dep]; !ok {
					n.out[dep] = make(chan update, opts.Buffer)
				}
			}
		}
		c.nodes[r.ID] = n
	}
	return c
}

// Start launches one goroutine per node plus one forwarder per overlay
// edge. It must be called once.
func (c *Cluster) Start() {
	for _, n := range c.nodes {
		n := n
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.run(n)
		}()
		for dep, ch := range n.out {
			child, ch := c.nodes[dep], ch
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.forwardLoop(ch, child)
			}()
		}
	}
}

// forwardLoop ships updates over one edge in FIFO order, applying the
// wire delay per message.
func (c *Cluster) forwardLoop(ch chan update, child *node) {
	var timer *time.Timer
	for {
		select {
		case <-c.done:
			return
		case u := <-ch:
			if c.opts.CommDelay > 0 {
				if timer == nil {
					timer = time.NewTimer(c.opts.CommDelay)
					defer timer.Stop()
				} else {
					timer.Reset(c.opts.CommDelay)
				}
				select {
				case <-c.done:
					return
				case <-timer.C:
				}
			}
			select {
			case child.in <- u:
			case <-c.done:
				return
			}
		}
	}
}

// Stop terminates all node goroutines and waits for them.
func (c *Cluster) Stop() {
	c.closeOnce.Do(func() { close(c.done) })
	c.wg.Wait()
}

// Publish injects a new value of item at the source. It blocks only if
// the source inbox is full, and returns false if the cluster is stopped.
func (c *Cluster) Publish(item string, value float64) bool {
	// Check shutdown first: when the inbox also has room, a single select
	// would pick between the two ready cases at random.
	select {
	case <-c.done:
		return false
	default:
	}
	select {
	case c.nodes[repository.SourceID].in <- update{item, value}:
		return true
	case <-c.done:
		return false
	}
}

// Value returns a node's current copy of item.
func (c *Cluster) Value(id repository.ID, item string) (float64, bool) {
	n, ok := c.nodes[id]
	if !ok {
		return 0, false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.values[item]
	return v, ok
}

// Seed initializes every node's copy of item (and the edge filter state)
// to value, as if all repositories joined fully synchronized.
func (c *Cluster) Seed(item string, value float64) {
	for _, n := range c.nodes {
		n.mu.Lock()
		if n.repo.IsSource() || hasItem(n.repo, item) {
			n.values[item] = value
		}
		for _, dep := range n.repo.Dependents[item] {
			m := n.lastSent[dep]
			if m == nil {
				m = make(map[string]float64)
				n.lastSent[dep] = m
			}
			m[item] = value
		}
		n.mu.Unlock()
	}
}

func hasItem(r *repository.Repository, item string) bool {
	_, ok := r.Serving[item]
	return ok
}

// run is the node goroutine body: receive, record, filter, forward.
func (c *Cluster) run(n *node) {
	for {
		select {
		case <-c.done:
			return
		case u := <-n.in:
			c.handle(n, u)
		}
	}
}

func (c *Cluster) handle(n *node, u update) {
	n.mu.Lock()
	n.values[u.item] = u.value
	cSelf := coherency.Requirement(0)
	if !n.repo.IsSource() {
		cSelf, _ = n.repo.ServingTolerance(u.item)
	}
	// Decide forwards under the distributed algorithm (Eqs. 3 and 7).
	var targets []repository.ID
	for _, dep := range n.repo.Dependents[u.item] {
		cDep, ok := c.overlay.Node(dep).ServingTolerance(u.item)
		if !ok {
			continue
		}
		m := n.lastSent[dep]
		if m == nil {
			m = make(map[string]float64)
			n.lastSent[dep] = m
		}
		last, seeded := m[u.item]
		if !seeded || coherency.ShouldForward(u.value, last, cDep, cSelf) {
			m[u.item] = u.value
			targets = append(targets, dep)
		}
	}
	n.mu.Unlock()

	if !n.repo.IsSource() && c.opts.OnDeliver != nil {
		c.opts.OnDeliver(n.repo.ID, u.item, u.value)
	}

	for _, dep := range targets {
		if c.opts.CompDelay > 0 {
			time.Sleep(c.opts.CompDelay) // serial per-copy processing cost
		}
		select {
		case n.out[dep] <- u:
		case <-c.done:
			return
		}
	}
}

// Snapshot returns every repository's copy of item, for observation.
func (c *Cluster) Snapshot(item string) map[repository.ID]float64 {
	out := make(map[repository.ID]float64)
	for id, n := range c.nodes {
		n.mu.Lock()
		if v, ok := n.values[item]; ok {
			out[id] = v
		}
		n.mu.Unlock()
	}
	return out
}

// String describes the cluster.
func (c *Cluster) String() string {
	return fmt.Sprintf("live cluster: %d nodes, comm %v, comp %v",
		len(c.nodes), c.opts.CommDelay, c.opts.CompDelay)
}
