// Package live runs the paper's distributed dissemination algorithm in
// real time on goroutines: every overlay node is a goroutine pool, push
// connections are channels, and communication/computation delays are real
// (scaled) durations. It demonstrates the same filtering logic as the
// discrete-event simulator outside simulated time — the "evaluation in a
// real setting" the paper leaves as future work — on a single machine.
//
// The protocol state machine itself — last-pushed-value tracking, the
// Eq. 3+7 filters for dependents and client sessions, resync after
// failover — lives in the transport-agnostic core (internal/node); this
// package is the channel transport around it: goroutines, inbox/outbox
// channels, real-time heartbeats and silence watchdogs.
//
// # Sharded batched ingest
//
// With Options.Shards > 1 the cluster re-seats on the ingest layer's
// item partition (internal/ingest.ShardOf): every node splits into one
// core per shard, each fed by its own batch channel and drained by its
// own worker goroutine, so independent items flow through a node in
// parallel. Edges carry batches — one channel send moves every update a
// fan-out pass produced for a dependent's shard — replacing the
// per-update sends of the unsharded path. The item→shard mapping is
// global, so a batch a parent shard emits lands in the same shard at the
// child and per-item FIFO order (the basis of cross-backend decision
// parity) is preserved. Client sessions watch items across shards, so
// with sharding enabled they are served by a dedicated serve-only core
// fed after each shard's dependent pass; with one shard the single core
// serves both, exactly as before.
package live

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"d3t/internal/ingest"
	dnode "d3t/internal/node"
	"d3t/internal/obs"
	"d3t/internal/query"
	"d3t/internal/repository"
	"d3t/internal/sim"
	"d3t/internal/tree"
	"d3t/internal/wal"
)

// Options configures a live cluster.
type Options struct {
	// CommDelay is applied to every update hop; CompDelay is the per-copy
	// processing cost at a node. Both may be zero for fastest delivery.
	CommDelay time.Duration
	CompDelay time.Duration
	// OnDeliver, when set, observes every delivery at a repository. It is
	// called from node goroutines and must be safe for concurrent use.
	OnDeliver func(repo repository.ID, item string, value float64)
	// Buffer is the per-node inbox size (default 256). A full inbox
	// applies backpressure to the sender, mirroring a congested node.
	Buffer int

	// Shards splits every node into per-item-shard cores fed by batch
	// channels (<= 1 keeps the single-core node). See the package
	// comment.
	Shards int

	// Heartbeat, when positive, makes every node send keep-alives to its
	// current children on this interval, so dependents can tell a quiet
	// parent from a dead one.
	Heartbeat time.Duration
	// FailWindow, when positive, arms failure detection: a node that has
	// heard nothing (no update, no heartbeat) from a parent for this long
	// declares it dead and re-homes onto its backup list. It should be a
	// small multiple of Heartbeat.
	FailWindow time.Duration
	// Backups maps each repository to its ranked backup-parent list
	// (tree.LeLA.BackupParents precomputes one). On detection the
	// dependent re-homes each severed item to the first live backup that
	// already serves it stringently enough and has a free connection slot.
	Backups map[repository.ID][]repository.ID

	// Clock overrides the cluster's time source (default time.Now). All
	// silence measurement — parent liveness, session staleness — reads
	// it, so tests drive failure detection by advancing an injected clock
	// instead of sleeping through real windows.
	Clock func() time.Time

	// SessionCap caps the client sessions one repository serves (0 =
	// unlimited); Subscribe redirects overflow to the next candidate.
	SessionCap int

	// QueryInterval is the query clock's tick length (on the cluster's
	// microsecond time base) for query sessions (SubscribeQuery); it
	// defaults to sim.Second. Eval/recompute counts are independent of
	// it; only windowed result values depend on the tick width.
	QueryInterval sim.Time

	// Obs, when set, collects per-node counters, latency histograms,
	// per-edge delay EWMAs and (when Obs.Tracer is armed) sampled update
	// traces from the running cluster. Observation is passive: a cluster
	// with Obs attached makes exactly the decisions it makes without.
	Obs *obs.Tree

	// Durability, when set, gives every (node, shard) core a write-ahead
	// log with periodic snapshots under Durability.Dir (one subdirectory
	// per repoNNN/shardNN), group-committed per received batch. It is
	// honored by NewDurableCluster, which also recovers whatever state the
	// directory already holds; NewCluster ignores it.
	Durability *wal.Options
}

// Update is one (item, value) pair of a published batch.
type Update struct {
	Item  string
	Value float64
}

// Cluster is a running set of node goroutines wired per an overlay.
type Cluster struct {
	overlay *tree.Overlay
	opts    Options
	nshards int
	nodes   map[repository.ID]*node
	start   time.Time
	done    chan struct{}
	wg      sync.WaitGroup

	// topoMu guards the overlay wiring (Parents/Dependents/Serving) and
	// session placement: failure repair rewires the overlay while node
	// goroutines read it, and migration moves sessions between node
	// cores. Lock order is topoMu, then a node's mu, then a shard's mu,
	// then a session's mu; no path may acquire an earlier mutex while
	// holding a later one.
	topoMu    sync.RWMutex
	failovers int

	sessionRedirects  int
	sessionMigrations int

	// walMu guards walErr, the first write-ahead-log failure any shard
	// hit; a failing log means subsequent commits may be missing from a
	// recovery, so the error is latched for DurabilityErr.
	walMu  sync.Mutex
	walErr error

	closeOnce sync.Once
}

// upd is one in-flight update copy.
type upd struct {
	item  string
	value float64
}

// batch is the unit every channel carries: all the updates one fan-out
// pass produced for one (dependent, shard) edge, or a keep-alive. The
// observability stamps (sent, born, tid) are zero unless an obs tree is
// attached; failover sync sends leave them zero so repair pushes never
// pollute the hop histograms.
type batch struct {
	from      repository.ID
	heartbeat bool
	ups       []upd

	sent sim.Time // cluster time the sender handed the batch to the edge
	born sim.Time // cluster time the batch's tick entered at the source
	tid  uint64   // sampled trace id (0 = untraced)
}

// node is one overlay repository: per-shard cores and channels, plus the
// node-level failure-detection and session state.
type node struct {
	repo *repository.Repository

	// mu guards dead and lastHeard — and, with sharding enabled, the
	// dedicated session core. With one shard, session state is guarded
	// by the single shard's mutex instead (one lock per node, exactly
	// the pre-sharding discipline).
	mu        sync.Mutex
	dead      bool
	lastHeard map[repository.ID]time.Time

	// obs is the node's observer (nil when Options.Obs is unset); the
	// shard cores and the session core share it — its record paths are
	// atomic, so cross-shard concurrency is safe.
	obs *obs.Node

	shards []*nodeShard

	// sessCore serves client sessions when sharding splits the node
	// (nil with one shard: shards[0].core serves both roles). sess maps
	// admitted session names to their channel-side handles; it is
	// guarded by the session core's mutex.
	sessCore *dnode.Core
	sessTr   transport
	sess     map[string]*Session
}

// nodeShard is one item partition of a node: its own core (values,
// per-edge filter state for the shard's items), batch inbox, and batch
// out channels (one per dependent).
type nodeShard struct {
	mu   sync.Mutex
	core *dnode.Core
	in   chan batch
	out  map[repository.ID]chan batch
	tr   transport
	// log is the shard's write-ahead log (nil without durability); it is
	// guarded by mu, the same lock that guards the core it shadows.
	log *wal.Log
	// sends is the worker's per-dependent grouping scratch, reused across
	// handleBatch passes (only the shard's own worker touches it). The
	// ups slices inside are NOT reused: ownership transfers to the
	// receiving shard on send.
	sends []depSend
}

// sessionCore returns the mutex and core that own the node's client
// sessions.
func (n *node) sessionCore() (*sync.Mutex, *dnode.Core) {
	if n.sessCore != nil {
		return &n.mu, n.sessCore
	}
	return &n.shards[0].mu, n.shards[0].core
}

// shardOf returns the shard owning the item.
func (n *node) shardOf(item string) *nodeShard {
	return n.shards[ingest.ShardOf(item, len(n.shards))]
}

// pendSend is one collected dependent copy awaiting the post-lock flush.
type pendSend struct {
	ch chan batch
	u  upd
}

// depSend is one flushed per-dependent batch.
type depSend struct {
	ch  chan batch
	ups []upd
}

// transport adapts one core's decisions to channels. Dependent sends are
// collected and flushed after the locks drop (a full peer inbox applies
// backpressure and must not be awaited under a mutex); session pushes
// are non-blocking and happen inline.
type transport struct {
	c       *Cluster
	sh      *nodeShard // nil for the dedicated session core
	pending []pendSend
}

func (t *transport) Now() sim.Time { return t.c.now() }

func (t *transport) SendToDependent(dep repository.ID, item string, v float64, resync bool) bool {
	if resync {
		// The collected flush ships the pass's own updates, so it cannot
		// carry arbitrary (item, value) resync pairs. Refuse — the edge
		// state stays untouched — and let failover do its own paired sync
		// sends (Cluster.failover), the only resync path this runtime
		// uses.
		return false
	}
	if t.sh == nil {
		return false // serve-only session core never fans to dependents
	}
	ch := t.sh.out[dep]
	if ch == nil {
		return false
	}
	t.pending = append(t.pending, pendSend{ch, upd{item, v}})
	return true
}

func (t *transport) SendToClient(ns *dnode.Session, item string, v float64, resync bool) {
	s, ok := ns.Tag().(*Session)
	if !ok {
		return
	}
	if s.qeval != nil {
		// A query session: recombine under the serving core's mutex (the
		// push path already holds it). Repository-side placement ships
		// only published result changes down the channel; client-side
		// placement ships the raw input too, same counts either way.
		interval := t.c.opts.QueryInterval
		if interval <= 0 {
			interval = sim.Second
		}
		res, evalOK, changed := s.qeval.Observe(item, v, int64(t.c.now()/interval))
		recomputed := 0
		if evalOK {
			recomputed = 1
		}
		s.qobs.QueryPass(1, recomputed)
		if s.q.Placement != query.PlaceClient {
			if evalOK && changed && (s.q.Pred == nil || s.q.Pred.Holds(res)) {
				s.push(ClientUpdate{Item: s.q.ResultItem(), Value: res, Resync: resync})
			}
			return
		}
	}
	s.push(ClientUpdate{Item: item, Value: v, Resync: resync})
}

// clock is the cluster's wall source (injectable for tests).
func (c *Cluster) clock() time.Time {
	if c.opts.Clock != nil {
		return c.opts.Clock()
	}
	return time.Now()
}

// now is the cluster's single time base: microseconds since creation, as
// sim.Time. Session service clocks are stamped with it (the transport's
// Now) and the session watchdog compares against it.
func (c *Cluster) now() sim.Time {
	return sim.Time(c.clock().Sub(c.start) / time.Microsecond)
}

// tickerPeriod paces a detection loop: a quarter of the window in real
// time, but never slower than a millisecond when a test clock drives the
// window (the injected clock may jump a whole window in one step and the
// loop must notice promptly).
func (c *Cluster) tickerPeriod() time.Duration {
	period := c.opts.FailWindow / 4
	if c.opts.Clock != nil || period <= 0 {
		period = time.Millisecond
	}
	return period
}

// NewCluster builds (but does not start) a live cluster over the overlay.
func NewCluster(o *tree.Overlay, opts Options) *Cluster {
	if opts.Buffer <= 0 {
		opts.Buffer = 256
	}
	if opts.FailWindow > 0 && opts.Heartbeat <= 0 {
		// Armed detection without keep-alives would declare every quiet
		// parent dead; default to a few beats per window.
		opts.Heartbeat = opts.FailWindow / 4
		if opts.Heartbeat <= 0 {
			opts.Heartbeat = time.Millisecond
		}
	}
	nshards := opts.Shards
	if nshards < 1 {
		nshards = 1
	}
	c := &Cluster{
		overlay: o,
		opts:    opts,
		nshards: nshards,
		nodes:   make(map[repository.ID]*node, len(o.Nodes)),
		done:    make(chan struct{}),
	}
	c.start = c.clock()
	for _, r := range o.Nodes {
		n := &node{
			repo:      r,
			sess:      make(map[string]*Session),
			lastHeard: make(map[repository.ID]time.Time),
			shards:    make([]*nodeShard, nshards),
		}
		for s := range n.shards {
			shOpts := dnode.Options{}
			if nshards == 1 {
				shOpts.SessionCap = opts.SessionCap
			}
			sh := &nodeShard{
				core: dnode.New(r, o.Node, shOpts),
				in:   make(chan batch, opts.Buffer),
				out:  make(map[repository.ID]chan batch),
			}
			sh.tr.c, sh.tr.sh = c, sh
			for _, deps := range r.Dependents {
				for _, dep := range deps {
					if _, ok := sh.out[dep]; !ok {
						sh.out[dep] = make(chan batch, opts.Buffer)
					}
				}
			}
			n.shards[s] = sh
		}
		if nshards > 1 {
			n.sessCore = dnode.New(r, o.Node, dnode.Options{ServeOnly: true, SessionCap: opts.SessionCap})
			n.sessTr.c = c
		}
		if opts.Obs != nil {
			n.obs = opts.Obs.Node(r.ID)
			for _, sh := range n.shards {
				sh.core.SetObs(n.obs)
			}
			if n.sessCore != nil {
				n.sessCore.SetObs(n.obs)
			}
		}
		c.nodes[r.ID] = n
	}
	return c
}

// Start launches one worker goroutine per (node, shard) plus one
// forwarder per (overlay edge, shard) — and, when failure handling is
// armed, one heartbeater and one watchdog per node. It must be called
// once.
func (c *Cluster) Start() {
	now := c.clock()
	for _, n := range c.nodes {
		n := n
		n.mu.Lock()
		for _, pid := range c.overlay.ParentsOf(n.repo.ID) {
			n.lastHeard[pid] = now // grace period: silence counts from start
		}
		n.mu.Unlock()
		for si, sh := range n.shards {
			sh := sh
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.runShard(n, sh)
			}()
			for dep, ch := range sh.out {
				child, ch, si := c.nodes[dep], ch, si
				c.wg.Add(1)
				go func() {
					defer c.wg.Done()
					c.forwardLoop(ch, child, si)
				}()
			}
		}
		if c.opts.Heartbeat > 0 {
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.heartbeatLoop(n)
			}()
		}
		if c.opts.FailWindow > 0 && !n.repo.IsSource() {
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.watchdogLoop(n)
			}()
		}
	}
	if c.opts.FailWindow > 0 {
		// One watchdog for the serving layer: sessions whose repository
		// has gone silent migrate to the next candidate.
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.sessionWatchdogLoop()
		}()
	}
}

// forwardLoop ships batches over one (edge, shard) in FIFO order,
// applying the wire delay per batch.
func (c *Cluster) forwardLoop(ch chan batch, child *node, shard int) {
	var timer *time.Timer
	for {
		select {
		case <-c.done:
			return
		case b := <-ch:
			if c.opts.CommDelay > 0 {
				if timer == nil {
					timer = time.NewTimer(c.opts.CommDelay)
					defer timer.Stop()
				} else {
					timer.Reset(c.opts.CommDelay)
				}
				select {
				case <-c.done:
					return
				case <-timer.C:
				}
			}
			select {
			case child.shards[shard].in <- b:
			case <-c.done:
				return
			}
		}
	}
}

// Stop terminates all node goroutines and waits for them, then closes
// every shard's write-ahead log (flushing and fsyncing per policy), so a
// stopped durable cluster's directories hold its exact final state.
func (c *Cluster) Stop() {
	c.closeOnce.Do(func() { close(c.done) })
	c.wg.Wait()
	for _, n := range c.nodes {
		for _, sh := range n.shards {
			sh.mu.Lock()
			if sh.log != nil {
				if err := sh.log.Close(); err != nil {
					c.noteWALErr(err)
				}
			}
			sh.mu.Unlock()
		}
	}
}

// Publish injects a new value of item at the source. It blocks only if
// the source inbox is full, and returns false if the cluster is stopped.
func (c *Cluster) Publish(item string, value float64) bool {
	return c.PublishBatch([]Update{{Item: item, Value: value}})
}

// PublishBatch injects one tick's worth of source updates as batches:
// same-item updates coalesce to the newest value, and each shard
// receives its partition as a single batch (in shard order). It returns
// false if the cluster is stopped.
func (c *Cluster) PublishBatch(ups []Update) bool {
	// Check shutdown first: when an inbox also has room, a single select
	// would pick between the two ready cases at random.
	select {
	case <-c.done:
		return false
	default:
	}
	src := c.nodes[repository.SourceID]
	perShard := make([][]upd, len(src.shards))
	for _, i := range dnode.CoalesceBatch(len(ups), func(i int) string { return ups[i].Item }) {
		s := ingest.ShardOf(ups[i].Item, len(src.shards))
		perShard[s] = append(perShard[s], upd{ups[i].Item, ups[i].Value})
	}
	for s, b := range perShard {
		if len(b) == 0 {
			continue
		}
		out := batch{ups: b}
		if src.obs != nil {
			// Stamp the tick's birth time and maybe sample a trace; the
			// source "hop" (publish to source receipt) is skipped by
			// handleBatch because from == the source's own id.
			now := c.now()
			out.sent, out.born = now, now
			out.tid = c.opts.Obs.TracerOrNil().Sample(b[0].item, repository.SourceID, int64(now))
		}
		select {
		case src.shards[s].in <- out:
		case <-c.done:
			return false
		}
	}
	return true
}

// Value returns a node's current copy of item.
func (c *Cluster) Value(id repository.ID, item string) (float64, bool) {
	n, ok := c.nodes[id]
	if !ok {
		return 0, false
	}
	sh := n.shardOf(item)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.core.Value(item)
}

// Seed initializes every node's copy of item (and the edge filter state)
// to value, as if all repositories joined fully synchronized.
func (c *Cluster) Seed(item string, value float64) {
	for _, n := range c.nodes {
		sh := n.shardOf(item)
		sh.mu.Lock()
		sh.core.Seed(item, value)
		sh.mu.Unlock()
		if n.sessCore != nil {
			n.mu.Lock()
			n.sessCore.Seed(item, value)
			n.mu.Unlock()
		}
	}
}

// runShard is the per-(node, shard) worker body: receive a batch,
// record, filter, forward. A crashed node keeps draining its inboxes —
// a dead process's peers are not blocked by it — but drops everything on
// the floor.
func (c *Cluster) runShard(n *node, sh *nodeShard) {
	for {
		select {
		case <-c.done:
			return
		case b := <-sh.in:
			c.handleBatch(n, sh, b)
		}
	}
}

// handleBatch runs one received batch through the shard's core and
// flushes the resulting per-dependent batches. The core decides —
// dependents through the per-edge filters, sessions through the
// per-client ones — while the wiring is stable under the locks; the
// (blocking) channel sends to dependents happen after they drop.
func (c *Cluster) handleBatch(n *node, sh *nodeShard, b batch) {
	c.topoMu.RLock()
	n.mu.Lock()
	dead := n.dead
	if !dead {
		n.lastHeard[b.from] = c.clock()
	}
	n.mu.Unlock()
	if dead || b.heartbeat {
		c.topoMu.RUnlock()
		return
	}
	if n.obs != nil {
		now := c.now()
		n.obs.Batch(len(b.ups))
		if b.sent != 0 && b.from != n.repo.ID {
			// A stamped batch from an upstream peer: record the hop
			// (sender's flush to our receipt, the Eq. 2 edge-delay input)
			// and how far this tick already is from its source birth.
			hop := int64(now - b.sent)
			n.obs.ObserveHop(hop)
			n.obs.ObserveEdgeDelay(b.from, hop)
			n.obs.ObserveSourceLatency(int64(now - b.born))
			c.opts.Obs.TracerOrNil().Hop(b.tid, n.repo.ID, int64(now))
		}
	}
	sh.mu.Lock()
	sh.tr.pending = sh.tr.pending[:0]
	for _, u := range b.ups {
		sh.core.Apply(u.item, u.value, &sh.tr)
	}
	if sh.log != nil {
		// Group commit on the batch boundary, after the Apply loop: a
		// commit that rotates snapshots the core, which must already hold
		// this batch (the records carrying it are deleted with the old
		// segment).
		for _, u := range b.ups {
			sh.log.Append(u.item, u.value)
		}
		if err := sh.log.Commit(sh.walState); err != nil {
			c.noteWALErr(err)
		}
	}
	sends := sh.groupSends()
	sh.mu.Unlock()
	if n.sessCore != nil {
		// Sharded nodes fan the batch to client sessions through the
		// dedicated serve-only core.
		n.mu.Lock()
		for _, u := range b.ups {
			n.sessCore.Apply(u.item, u.value, &n.sessTr)
		}
		n.mu.Unlock()
	}
	c.topoMu.RUnlock()

	if !n.repo.IsSource() && c.opts.OnDeliver != nil {
		for _, u := range b.ups {
			c.opts.OnDeliver(n.repo.ID, u.item, u.value)
		}
	}

	for _, s := range sends {
		if c.opts.CompDelay > 0 {
			// Serial per-copy processing cost, charged per update in the
			// batch.
			time.Sleep(time.Duration(len(s.ups)) * c.opts.CompDelay)
		}
		out := batch{from: n.repo.ID, ups: s.ups}
		if n.obs != nil {
			// Restamp the flush time (the hop downstream measures) and
			// carry the tick's birth stamp and trace id along, so a
			// sampled trace accumulates the whole fan-out tree.
			out.sent, out.born, out.tid = c.now(), b.born, b.tid
		}
		select {
		case s.ch <- out:
		case <-c.done:
			return
		}
	}
}

// groupSends folds the pass's collected copies into one batch per
// dependent channel, in first-forward order, reusing the shard's scratch
// slice. The per-dependent ups slices are freshly allocated because the
// receiving shard owns them after the send; the returned slice is valid
// until the worker's next pass (only the shard's own worker calls this).
func (sh *nodeShard) groupSends() []depSend {
	sh.sends = sh.sends[:0]
outer:
	for _, p := range sh.tr.pending {
		for i := range sh.sends {
			if sh.sends[i].ch == p.ch {
				sh.sends[i].ups = append(sh.sends[i].ups, p.u)
				continue outer
			}
		}
		sh.sends = append(sh.sends, depSend{ch: p.ch, ups: append(make([]upd, 0, 4), p.u)})
	}
	return sh.sends
}

// Crash takes a repository down: it stops handling, forwarding and
// heartbeating until the cluster is rebuilt (there is no live rejoin).
// Crashing the source is rejected — the paper's source is the one node
// the overlay cannot survive.
func (c *Cluster) Crash(id repository.ID) bool {
	n, ok := c.nodes[id]
	if !ok || n.repo.IsSource() {
		return false
	}
	n.mu.Lock()
	n.dead = true
	n.mu.Unlock()
	return true
}

// Failovers reports how many parent-death repairs the cluster performed.
func (c *Cluster) Failovers() int {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	return c.failovers
}

// heartbeatLoop sends keep-alives to the node's current children.
func (c *Cluster) heartbeatLoop(n *node) {
	ticker := time.NewTicker(c.opts.Heartbeat)
	defer ticker.Stop()
	hb := batch{from: n.repo.ID, heartbeat: true}
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		dead := n.dead
		n.mu.Unlock()
		if dead {
			continue
		}
		c.topoMu.RLock()
		// Keep-alives ride shard 0: parent liveness is node-level state,
		// so one shard's channel suffices.
		sh0 := n.shards[0]
		var chans []chan batch
		for _, dep := range c.overlay.ChildrenOf(n.repo.ID) {
			sh0.mu.Lock()
			ch := sh0.out[dep]
			sh0.mu.Unlock()
			if ch != nil {
				chans = append(chans, ch)
			}
		}
		// A live repository's keep-alive also reassures its sessions:
		// refresh their service clocks so the session watchdog does not
		// abandon a quiet-but-alive node.
		smu, score := n.sessionCore()
		smu.Lock()
		score.TouchSessions(c.now())
		smu.Unlock()
		c.topoMu.RUnlock()
		for _, ch := range chans {
			select {
			case ch <- hb:
			case <-c.done:
				return
			}
		}
	}
}

// watchdogLoop detects dead parents by silence and re-homes their feeds.
func (c *Cluster) watchdogLoop(n *node) {
	ticker := time.NewTicker(c.tickerPeriod())
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		dead := n.dead
		var stale []repository.ID
		now := c.clock()
		for pid, heard := range n.lastHeard {
			if now.Sub(heard) >= c.opts.FailWindow {
				stale = append(stale, pid)
			}
		}
		n.mu.Unlock()
		if dead {
			continue
		}
		sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
		for _, pid := range stale {
			c.failover(n, pid)
		}
	}
}

// failover re-homes every item n received from the silent parent onto the
// first live backup that already serves it and has a free connection
// slot. Items with no eligible backup stay orphaned; the watchdog retries
// them on its next pass (the silent parent stays in lastHeard until every
// item has moved). The backup's core seeds the revived edge with the
// synced value, so the first post-resync update filters correctly.
func (c *Cluster) failover(n *node, deadPID repository.ID) {
	type syncSend struct {
		ch chan batch
		b  batch
	}
	var syncs []syncSend

	c.topoMu.Lock()
	var items []string
	for x, pid := range n.repo.Parents {
		if pid == deadPID {
			items = append(items, x)
		}
	}
	if len(items) == 0 {
		// Nothing left to move: stop watching the silent parent.
		n.mu.Lock()
		delete(n.lastHeard, deadPID)
		n.mu.Unlock()
		c.topoMu.Unlock()
		return
	}
	sort.Strings(items)
	// Drop the dead edge wholesale (the process is gone); items that find
	// no backup below keep their stale Parents entry, which is exactly the
	// marker the next watchdog pass retries on.
	c.overlay.Node(deadPID).DropDependent(n.repo.ID)
	moved := false
	for _, x := range items {
		cDep, ok := n.repo.ServingTolerance(x)
		if !ok {
			continue
		}
		for _, b := range c.opts.Backups[n.repo.ID] {
			if b == deadPID {
				continue
			}
			bn := c.nodes[b]
			if bn == nil {
				continue
			}
			bn.mu.Lock()
			bDead := bn.dead
			bn.mu.Unlock()
			bRepo := c.overlay.Node(b)
			if bDead || !bRepo.CanServe(x, cDep) || !bRepo.HasCapacityFor(n.repo.ID) {
				continue
			}
			// Adopt: rewire the overlay edge and make sure forwarders
			// exist for it on every shard (updates ride the item's shard,
			// keep-alives ride shard 0), then queue a sync push of the
			// backup's current copy so the dependent converges
			// immediately.
			bRepo.AddDependent(x, n.repo.ID)
			n.repo.Parents[x] = b
			moved = true
			for si, bsh := range bn.shards {
				bsh.mu.Lock()
				if bsh.out[n.repo.ID] == nil {
					ch := make(chan batch, c.opts.Buffer)
					bsh.out[n.repo.ID] = ch
					c.wg.Add(1)
					go func(si int) {
						defer c.wg.Done()
						c.forwardLoop(ch, n, si)
					}(si)
				}
				bsh.mu.Unlock()
			}
			bsh := bn.shardOf(x)
			bsh.mu.Lock()
			if v, hasV := bsh.core.Value(x); hasV {
				bsh.core.ResetEdge(n.repo.ID, x, v)
				syncs = append(syncs, syncSend{bsh.out[n.repo.ID], batch{from: b, ups: []upd{{x, v}}}})
			}
			bsh.mu.Unlock()
			n.mu.Lock()
			n.lastHeard[b] = c.clock()
			n.mu.Unlock()
			break
		}
	}
	if moved {
		c.failovers++
	}
	c.topoMu.Unlock()

	for _, s := range syncs {
		select {
		case s.ch <- s.b:
		case <-c.done:
			return
		}
	}
}

// Decisions reports a node's per-item forward/suppress decision totals
// about its dependents — the cross-backend parity instrumentation —
// merged across its shards (whose item partitions are disjoint).
func (c *Cluster) Decisions(id repository.ID) map[string]dnode.Decisions {
	n, ok := c.nodes[id]
	if !ok {
		return nil
	}
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	out := make(map[string]dnode.Decisions)
	for _, sh := range n.shards {
		sh.mu.Lock()
		for item, d := range sh.core.EdgeDecisions() {
			cur := out[item]
			cur.Forwarded += d.Forwarded
			cur.Suppressed += d.Suppressed
			out[item] = cur
		}
		sh.mu.Unlock()
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Snapshot returns every repository's copy of item, for observation.
func (c *Cluster) Snapshot(item string) map[repository.ID]float64 {
	out := make(map[repository.ID]float64)
	for id, n := range c.nodes {
		sh := n.shardOf(item)
		sh.mu.Lock()
		if v, ok := sh.core.Value(item); ok {
			out[id] = v
		}
		sh.mu.Unlock()
	}
	return out
}

// ObsSnapshot folds and returns the attached observability tree's state
// on the cluster's own time base (zero-valued when Options.Obs is nil).
// The metrics endpoint of a live deployment serves this.
func (c *Cluster) ObsSnapshot() obs.TreeSnapshot {
	return c.opts.Obs.Snapshot(int64(c.now()))
}

// String describes the cluster.
func (c *Cluster) String() string {
	return fmt.Sprintf("live cluster: %d nodes, %d shards, comm %v, comp %v",
		len(c.nodes), c.nshards, c.opts.CommDelay, c.opts.CompDelay)
}
