// Package live runs the paper's distributed dissemination algorithm in
// real time on goroutines: every overlay node is a goroutine, push
// connections are channels, and communication/computation delays are real
// (scaled) durations. It demonstrates the same filtering logic as the
// discrete-event simulator outside simulated time — the "evaluation in a
// real setting" the paper leaves as future work — on a single machine.
//
// The protocol state machine itself — last-pushed-value tracking, the
// Eq. 3+7 filters for dependents and client sessions, resync after
// failover — lives in the transport-agnostic core (internal/node); this
// package is the channel transport around it: goroutines, inbox/outbox
// channels, real-time heartbeats and silence watchdogs.
package live

import (
	"fmt"
	"sort"
	"sync"
	"time"

	dnode "d3t/internal/node"
	"d3t/internal/repository"
	"d3t/internal/sim"
	"d3t/internal/tree"
)

// Options configures a live cluster.
type Options struct {
	// CommDelay is applied to every update hop; CompDelay is the per-copy
	// processing cost at a node. Both may be zero for fastest delivery.
	CommDelay time.Duration
	CompDelay time.Duration
	// OnDeliver, when set, observes every delivery at a repository. It is
	// called from node goroutines and must be safe for concurrent use.
	OnDeliver func(repo repository.ID, item string, value float64)
	// Buffer is the per-node inbox size (default 256). A full inbox
	// applies backpressure to the sender, mirroring a congested node.
	Buffer int

	// Heartbeat, when positive, makes every node send keep-alives to its
	// current children on this interval, so dependents can tell a quiet
	// parent from a dead one.
	Heartbeat time.Duration
	// FailWindow, when positive, arms failure detection: a node that has
	// heard nothing (no update, no heartbeat) from a parent for this long
	// declares it dead and re-homes onto its backup list. It should be a
	// small multiple of Heartbeat.
	FailWindow time.Duration
	// Backups maps each repository to its ranked backup-parent list
	// (tree.LeLA.BackupParents precomputes one). On detection the
	// dependent re-homes each severed item to the first live backup that
	// already serves it stringently enough and has a free connection slot.
	Backups map[repository.ID][]repository.ID

	// SessionCap caps the client sessions one repository serves (0 =
	// unlimited); Subscribe redirects overflow to the next candidate.
	SessionCap int
}

// Cluster is a running set of node goroutines wired per an overlay.
type Cluster struct {
	overlay *tree.Overlay
	opts    Options
	nodes   map[repository.ID]*node
	start   time.Time
	done    chan struct{}
	wg      sync.WaitGroup

	// topoMu guards the overlay wiring (Parents/Dependents/Serving) and
	// session placement: failure repair rewires the overlay while node
	// goroutines read it, and migration moves sessions between node
	// cores. Lock order is topoMu, then a node's mu, then a session's mu;
	// no path may acquire a node mutex while holding a session's.
	topoMu    sync.RWMutex
	failovers int

	sessionRedirects  int
	sessionMigrations int

	closeOnce sync.Once
}

type update struct {
	item      string
	value     float64
	from      repository.ID
	heartbeat bool
}

type node struct {
	repo *repository.Repository

	mu sync.Mutex
	// core is the transport-agnostic state machine: values, per-edge
	// filter state, admitted sessions. Guarded by mu.
	core *dnode.Core
	// sess maps admitted session names to their channel-side handles.
	sess map[string]*Session
	// tr is the node's reusable transport (guarded by mu; the flush of
	// its collected sends happens on the node's own goroutine).
	tr transport

	in chan update
	// out holds one FIFO channel per dependent: a dedicated forwarder
	// goroutine applies the wire delay, so updates on an edge can never
	// overtake one another. Guarded by mu (repair adds edges).
	out map[repository.ID]chan update

	lastHeard map[repository.ID]time.Time
	dead      bool
}

// transport adapts one node's core decisions to channels. Dependent sends
// are collected and flushed after the locks drop (a full peer inbox
// applies backpressure and must not be awaited under a mutex); session
// pushes are non-blocking and happen inline.
type transport struct {
	c       *Cluster
	n       *node
	targets []chan update
}

func (t *transport) Now() sim.Time { return t.c.now() }

func (t *transport) SendToDependent(dep repository.ID, item string, v float64, resync bool) bool {
	if resync {
		// The collected-targets flush carries only the one triggering
		// update, so it cannot ship arbitrary (item, value) resync pairs.
		// Refuse — the edge state stays untouched — and let failover do
		// its own paired sync sends (Cluster.failover), which is the only
		// resync path this runtime uses.
		return false
	}
	ch := t.n.out[dep]
	if ch == nil {
		return false
	}
	t.targets = append(t.targets, ch)
	return true
}

func (t *transport) SendToClient(ns *dnode.Session, item string, v float64, resync bool) {
	if s, ok := ns.Tag().(*Session); ok {
		s.push(ClientUpdate{Item: item, Value: v, Resync: resync})
	}
}

// now is the cluster's single time base: microseconds since creation,
// as sim.Time. Session service clocks are stamped with it (the
// transport's Now) and the session watchdog compares against it.
func (c *Cluster) now() sim.Time {
	return sim.Time(time.Since(c.start) / time.Microsecond)
}

// NewCluster builds (but does not start) a live cluster over the overlay.
func NewCluster(o *tree.Overlay, opts Options) *Cluster {
	if opts.Buffer <= 0 {
		opts.Buffer = 256
	}
	if opts.FailWindow > 0 && opts.Heartbeat <= 0 {
		// Armed detection without keep-alives would declare every quiet
		// parent dead; default to a few beats per window.
		opts.Heartbeat = opts.FailWindow / 4
		if opts.Heartbeat <= 0 {
			opts.Heartbeat = time.Millisecond
		}
	}
	c := &Cluster{
		overlay: o,
		opts:    opts,
		nodes:   make(map[repository.ID]*node, len(o.Nodes)),
		start:   time.Now(),
		done:    make(chan struct{}),
	}
	for _, r := range o.Nodes {
		n := &node{
			repo:      r,
			core:      dnode.New(r, o.Node, dnode.Options{SessionCap: opts.SessionCap}),
			sess:      make(map[string]*Session),
			in:        make(chan update, opts.Buffer),
			out:       make(map[repository.ID]chan update),
			lastHeard: make(map[repository.ID]time.Time),
		}
		n.tr.c, n.tr.n = c, n
		for _, deps := range r.Dependents {
			for _, dep := range deps {
				if _, ok := n.out[dep]; !ok {
					n.out[dep] = make(chan update, opts.Buffer)
				}
			}
		}
		c.nodes[r.ID] = n
	}
	return c
}

// Start launches one goroutine per node plus one forwarder per overlay
// edge — and, when failure handling is armed, one heartbeater and one
// watchdog per node. It must be called once.
func (c *Cluster) Start() {
	now := time.Now()
	for _, n := range c.nodes {
		n := n
		n.mu.Lock()
		for _, pid := range c.overlay.ParentsOf(n.repo.ID) {
			n.lastHeard[pid] = now // grace period: silence counts from start
		}
		n.mu.Unlock()
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.run(n)
		}()
		for dep, ch := range n.out {
			child, ch := c.nodes[dep], ch
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.forwardLoop(ch, child)
			}()
		}
		if c.opts.Heartbeat > 0 {
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.heartbeatLoop(n)
			}()
		}
		if c.opts.FailWindow > 0 && !n.repo.IsSource() {
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.watchdogLoop(n)
			}()
		}
	}
	if c.opts.FailWindow > 0 {
		// One watchdog for the serving layer: sessions whose repository
		// has gone silent migrate to the next candidate.
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.sessionWatchdogLoop()
		}()
	}
}

// forwardLoop ships updates over one edge in FIFO order, applying the
// wire delay per message.
func (c *Cluster) forwardLoop(ch chan update, child *node) {
	var timer *time.Timer
	for {
		select {
		case <-c.done:
			return
		case u := <-ch:
			if c.opts.CommDelay > 0 {
				if timer == nil {
					timer = time.NewTimer(c.opts.CommDelay)
					defer timer.Stop()
				} else {
					timer.Reset(c.opts.CommDelay)
				}
				select {
				case <-c.done:
					return
				case <-timer.C:
				}
			}
			select {
			case child.in <- u:
			case <-c.done:
				return
			}
		}
	}
}

// Stop terminates all node goroutines and waits for them.
func (c *Cluster) Stop() {
	c.closeOnce.Do(func() { close(c.done) })
	c.wg.Wait()
}

// Publish injects a new value of item at the source. It blocks only if
// the source inbox is full, and returns false if the cluster is stopped.
func (c *Cluster) Publish(item string, value float64) bool {
	// Check shutdown first: when the inbox also has room, a single select
	// would pick between the two ready cases at random.
	select {
	case <-c.done:
		return false
	default:
	}
	select {
	case c.nodes[repository.SourceID].in <- update{item: item, value: value}:
		return true
	case <-c.done:
		return false
	}
}

// Value returns a node's current copy of item.
func (c *Cluster) Value(id repository.ID, item string) (float64, bool) {
	n, ok := c.nodes[id]
	if !ok {
		return 0, false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.core.Value(item)
}

// Seed initializes every node's copy of item (and the edge filter state)
// to value, as if all repositories joined fully synchronized.
func (c *Cluster) Seed(item string, value float64) {
	for _, n := range c.nodes {
		n.mu.Lock()
		n.core.Seed(item, value)
		n.mu.Unlock()
	}
}

// run is the node goroutine body: receive, record, filter, forward. A
// crashed node keeps draining its inbox — a dead process's peers are not
// blocked by it — but drops everything on the floor.
func (c *Cluster) run(n *node) {
	for {
		select {
		case <-c.done:
			return
		case u := <-n.in:
			c.handle(n, u)
		}
	}
}

// handle runs one received update through the node core and flushes the
// resulting sends. The core decides — dependents through the per-edge
// filters, sessions through the per-client ones — while the wiring is
// stable under the locks; the (blocking) channel sends to dependents
// happen after both drop.
func (c *Cluster) handle(n *node, u update) {
	c.topoMu.RLock()
	n.mu.Lock()
	if n.dead {
		n.mu.Unlock()
		c.topoMu.RUnlock()
		return
	}
	n.lastHeard[u.from] = time.Now()
	if u.heartbeat {
		n.mu.Unlock()
		c.topoMu.RUnlock()
		return
	}
	n.tr.targets = n.tr.targets[:0]
	n.core.Apply(u.item, u.value, &n.tr)
	targets := n.tr.targets // flushed below, before this goroutine's next handle
	n.mu.Unlock()
	c.topoMu.RUnlock()

	if !n.repo.IsSource() && c.opts.OnDeliver != nil {
		c.opts.OnDeliver(n.repo.ID, u.item, u.value)
	}

	fwd := update{item: u.item, value: u.value, from: n.repo.ID}
	for _, ch := range targets {
		if c.opts.CompDelay > 0 {
			time.Sleep(c.opts.CompDelay) // serial per-copy processing cost
		}
		select {
		case ch <- fwd:
		case <-c.done:
			return
		}
	}
}

// Crash takes a repository down: it stops handling, forwarding and
// heartbeating until the cluster is rebuilt (there is no live rejoin).
// Crashing the source is rejected — the paper's source is the one node
// the overlay cannot survive.
func (c *Cluster) Crash(id repository.ID) bool {
	n, ok := c.nodes[id]
	if !ok || n.repo.IsSource() {
		return false
	}
	n.mu.Lock()
	n.dead = true
	n.mu.Unlock()
	return true
}

// Failovers reports how many parent-death repairs the cluster performed.
func (c *Cluster) Failovers() int {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	return c.failovers
}

// heartbeatLoop sends keep-alives to the node's current children.
func (c *Cluster) heartbeatLoop(n *node) {
	ticker := time.NewTicker(c.opts.Heartbeat)
	defer ticker.Stop()
	hb := update{from: n.repo.ID, heartbeat: true}
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		dead := n.dead
		n.mu.Unlock()
		if dead {
			continue
		}
		c.topoMu.RLock()
		var chans []chan update
		for _, dep := range c.overlay.ChildrenOf(n.repo.ID) {
			n.mu.Lock()
			ch := n.out[dep]
			n.mu.Unlock()
			if ch != nil {
				chans = append(chans, ch)
			}
		}
		// A live repository's keep-alive also reassures its sessions:
		// refresh their service clocks so the session watchdog does not
		// abandon a quiet-but-alive node.
		n.mu.Lock()
		n.core.TouchSessions(n.tr.Now())
		n.mu.Unlock()
		c.topoMu.RUnlock()
		for _, ch := range chans {
			select {
			case ch <- hb:
			case <-c.done:
				return
			}
		}
	}
}

// watchdogLoop detects dead parents by silence and re-homes their feeds.
func (c *Cluster) watchdogLoop(n *node) {
	period := c.opts.FailWindow / 4
	if period <= 0 {
		period = time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		dead := n.dead
		var stale []repository.ID
		now := time.Now()
		for pid, heard := range n.lastHeard {
			if now.Sub(heard) >= c.opts.FailWindow {
				stale = append(stale, pid)
			}
		}
		n.mu.Unlock()
		if dead {
			continue
		}
		sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
		for _, pid := range stale {
			c.failover(n, pid)
		}
	}
}

// failover re-homes every item n received from the silent parent onto the
// first live backup that already serves it and has a free connection
// slot. Items with no eligible backup stay orphaned; the watchdog retries
// them on its next pass (the silent parent stays in lastHeard until every
// item has moved). The backup's core seeds the revived edge with the
// synced value, so the first post-resync update filters correctly.
func (c *Cluster) failover(n *node, deadPID repository.ID) {
	type syncSend struct {
		ch chan update
		u  update
	}
	var syncs []syncSend

	c.topoMu.Lock()
	var items []string
	for x, pid := range n.repo.Parents {
		if pid == deadPID {
			items = append(items, x)
		}
	}
	if len(items) == 0 {
		// Nothing left to move: stop watching the silent parent.
		n.mu.Lock()
		delete(n.lastHeard, deadPID)
		n.mu.Unlock()
		c.topoMu.Unlock()
		return
	}
	sort.Strings(items)
	// Drop the dead edge wholesale (the process is gone); items that find
	// no backup below keep their stale Parents entry, which is exactly the
	// marker the next watchdog pass retries on.
	c.overlay.Node(deadPID).DropDependent(n.repo.ID)
	moved := false
	for _, x := range items {
		cDep, ok := n.repo.ServingTolerance(x)
		if !ok {
			continue
		}
		for _, b := range c.opts.Backups[n.repo.ID] {
			if b == deadPID {
				continue
			}
			bn := c.nodes[b]
			if bn == nil {
				continue
			}
			bn.mu.Lock()
			bDead := bn.dead
			bn.mu.Unlock()
			bRepo := c.overlay.Node(b)
			if bDead || !bRepo.CanServe(x, cDep) || !bRepo.HasCapacityFor(n.repo.ID) {
				continue
			}
			// Adopt: rewire the overlay edge and make sure a forwarder
			// exists for it, then queue a sync push of the backup's
			// current copy so the dependent converges immediately.
			bRepo.AddDependent(x, n.repo.ID)
			n.repo.Parents[x] = b
			moved = true
			bn.mu.Lock()
			ch := bn.out[n.repo.ID]
			if ch == nil {
				ch = make(chan update, c.opts.Buffer)
				bn.out[n.repo.ID] = ch
				c.wg.Add(1)
				go func() {
					defer c.wg.Done()
					c.forwardLoop(ch, n)
				}()
			}
			if v, hasV := bn.core.Value(x); hasV {
				bn.core.ResetEdge(n.repo.ID, x, v)
				syncs = append(syncs, syncSend{ch, update{item: x, value: v, from: b}})
			}
			bn.mu.Unlock()
			n.mu.Lock()
			n.lastHeard[b] = time.Now()
			n.mu.Unlock()
			break
		}
	}
	if moved {
		c.failovers++
	}
	c.topoMu.Unlock()

	for _, s := range syncs {
		select {
		case s.ch <- s.u:
		case <-c.done:
			return
		}
	}
}

// Decisions reports a node's per-item forward/suppress decision totals
// about its dependents — the cross-backend parity instrumentation.
func (c *Cluster) Decisions(id repository.ID) map[string]dnode.Decisions {
	n, ok := c.nodes[id]
	if !ok {
		return nil
	}
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.core.EdgeDecisions()
}

// Snapshot returns every repository's copy of item, for observation.
func (c *Cluster) Snapshot(item string) map[repository.ID]float64 {
	out := make(map[repository.ID]float64)
	for id, n := range c.nodes {
		n.mu.Lock()
		if v, ok := n.core.Value(item); ok {
			out[id] = v
		}
		n.mu.Unlock()
	}
	return out
}

// String describes the cluster.
func (c *Cluster) String() string {
	return fmt.Sprintf("live cluster: %d nodes, comm %v, comp %v",
		len(c.nodes), c.opts.CommDelay, c.opts.CompDelay)
}
