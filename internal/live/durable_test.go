package live

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"d3t/internal/coherency"
	"d3t/internal/repository"
	"d3t/internal/wal"
)

// TestDurableClusterRecoversPreCrashState is the headline regression for
// the cold-rejoin bug: a repository process that is killed and rebuilt
// over its write-ahead log directory serves its exact pre-crash value to
// a late subscriber, and its restored edge filter state suppresses the
// first post-recovery push exactly as if the crash never happened. The
// closing counterfactual pins what the bug looked like: without
// durability the rebuilt cluster comes back unseeded and serves nothing
// until the next source push.
func TestDurableClusterRecoversPreCrashState(t *testing.T) {
	o := chainOverlay(t)
	d := &wal.Options{Dir: t.TempDir(), Fsync: wal.PolicyNever}

	c1, err := NewDurableCluster(o, Options{Durability: d})
	if err != nil {
		t.Fatal(err)
	}
	c1.Seed("X", 100)
	c1.Start()
	c1.Publish("X", 140) // violates P (30) and, via Eq. 7, Q (50)
	if !waitFor(t, time.Second, func() bool {
		q, _ := c1.Value(2, "X")
		return q == 140
	}) {
		t.Fatalf("140 did not propagate before the crash: %v", c1.Snapshot("X"))
	}
	c1.Stop() // the process dies; only the log directories survive
	if err := c1.DurabilityErr(); err != nil {
		t.Fatal(err)
	}

	// Rebuild over the same directories, with no re-seeding.
	o2 := chainOverlay(t)
	c2, err := NewDurableCluster(o2, Options{Durability: d})
	if err != nil {
		t.Fatal(err)
	}
	c2.Start()
	defer c2.Stop()
	for id := repository.ID(1); id <= 2; id++ {
		v, ok := c2.Value(id, "X")
		if !ok || v != 140 {
			t.Fatalf("repo %d recovered X=%v (ok=%v), want the pre-crash 140", id, v, ok)
		}
	}

	// A late subscriber's admission resync serves the pre-crash value.
	s, err := c2.Subscribe("late", map[string]coherency.Requirement{"X": 100}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Value("X"); !ok || v != 140 {
		t.Fatalf("late subscriber got X=%v (ok=%v), want the pre-crash 140", v, ok)
	}

	// The restored edge state filters: 150 is within P's tolerance 30 of
	// the pre-crash 140, so the first post-recovery push must be
	// suppressed, not forwarded under the first-push rule.
	c2.Publish("X", 150)
	time.Sleep(20 * time.Millisecond)
	if v, _ := c2.Value(1, "X"); v != 140 {
		t.Errorf("first post-recovery push leaked through restored filter state: P holds %v", v)
	}
	c2.Publish("X", 200)
	if !waitFor(t, time.Second, func() bool {
		q, _ := c2.Value(2, "X")
		return q == 200
	}) {
		t.Fatalf("post-recovery violation did not propagate: %v", c2.Snapshot("X"))
	}

	// Counterfactual: the same rebuild without durability rejoins cold.
	c3 := NewCluster(chainOverlay(t), Options{})
	c3.Start()
	defer c3.Stop()
	if _, ok := c3.Value(1, "X"); ok {
		t.Error("cold rebuild holds a value for X; the counterfactual is vacuous")
	}
	s3, err := c3.Subscribe("late-cold", map[string]coherency.Requirement{"X": 100}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s3.Value("X"); ok {
		t.Error("cold rebuild served a value to the late subscriber — the bug this PR fixes would be gone without the WAL")
	}
}

// TestDurableClusterFullRestart drives a sharded 10-repository cluster
// through 30 publish rounds, stops it, and rebuilds over the same log
// directories: every (repository, item) copy must come back bit-identical
// to the pre-stop state, with all (node, shard) recoveries replaying
// concurrently.
func TestDurableClusterFullRestart(t *testing.T) {
	dir := t.TempDir()
	d := &wal.Options{Dir: dir, SnapshotEvery: 4, Fsync: wal.PolicyNever}
	o1, items := multiOverlay(t, 7)
	c1, err := NewDurableCluster(o1, Options{Buffer: 1024, Shards: 4, Durability: d})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range items {
		c1.Seed(x, 100)
	}
	c1.Start()
	for round := 1; round <= 30; round++ {
		ups := make([]Update, 0, len(items))
		for i, item := range items {
			ups = append(ups, Update{Item: item, Value: float64(100 + round*(i+3))})
		}
		if !c1.PublishBatch(ups) {
			t.Fatal("cluster stopped mid-feed")
		}
	}
	// Quiesce before stopping: poll until two reads 10ms apart agree, so
	// no update is still in flight when the values are recorded.
	type key struct {
		repo string
		item string
	}
	readAll := func(c *Cluster) map[key]float64 {
		out := make(map[key]float64)
		for _, item := range items {
			for id, v := range c.Snapshot(item) {
				out[key{id.String(), item}] = v
			}
		}
		return out
	}
	var want map[key]float64
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		a := readAll(c1)
		time.Sleep(10 * time.Millisecond)
		b := readAll(c1)
		if len(a) > 0 && fmt.Sprint(a) == fmt.Sprint(b) {
			want = b
			break
		}
	}
	c1.Stop()
	if err := c1.DurabilityErr(); err != nil {
		t.Fatal(err)
	}
	want = readAll(c1) // post-stop state is what the logs must hold
	if len(want) == 0 {
		t.Fatal("pre-stop cluster held nothing; the test is vacuous")
	}

	o2, _ := multiOverlay(t, 7)
	c2, err := NewDurableCluster(o2, Options{Buffer: 1024, Shards: 4, Durability: d})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		c2.Start()
		c2.Stop()
	}()
	got := readAll(c2)
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s/%s lost across restart (want %v)", k.repo, k.item, w)
			continue
		}
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Errorf("%s/%s: recovered %x, pre-stop %x — not bit-identical",
				k.repo, k.item, math.Float64bits(g), math.Float64bits(w))
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s/%s appeared from nowhere across restart", k.repo, k.item)
		}
	}
}

// TestDurableClusterRecoveryRacesTraffic rebuilds from populated log
// directories and immediately hammers the recovered cluster with
// concurrent publishes and subscribe/close churn — the -race exercise for
// WAL commits interleaving with session admission resyncs.
func TestDurableClusterRecoveryRacesTraffic(t *testing.T) {
	dir := t.TempDir()
	d := &wal.Options{Dir: dir, SnapshotEvery: 2, Fsync: wal.PolicyNever}
	o1, items := multiOverlay(t, 11)
	c1, err := NewDurableCluster(o1, Options{Buffer: 1024, Durability: d})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range items {
		c1.Seed(x, 100)
	}
	c1.Start()
	for round := 1; round <= 10; round++ {
		for i, item := range items {
			c1.Publish(item, float64(100+round*(i+5)))
		}
	}
	c1.Stop()

	o2, _ := multiOverlay(t, 11)
	c2, err := NewDurableCluster(o2, Options{Buffer: 1024, Durability: d})
	if err != nil {
		t.Fatal(err)
	}
	c2.Start()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 1; round <= 20; round++ {
				for i, item := range items {
					c2.Publish(item, float64(200+w+round*(i+5)))
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			s, err := c2.Subscribe(fmt.Sprintf("churn-%d", i),
				map[string]coherency.Requirement{items[i%len(items)]: 1000})
			if err != nil {
				continue // a candidate may not serve the item; churn on
			}
			s.Value(items[i%len(items)])
			s.Close()
		}
	}()
	wg.Wait()
	c2.Stop()
	if err := c2.DurabilityErr(); err != nil {
		t.Fatalf("durable cluster under concurrent traffic: %v", err)
	}
}
