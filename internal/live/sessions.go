package live

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"d3t/internal/coherency"
	"d3t/internal/repository"
)

// This file serves client sessions over channels: the serving-layer
// counterpart of internal/serve for the goroutine runtime. A session
// subscribes to items with its own tolerances, is admitted to a
// repository under the session cap (overflow redirects to the next
// candidate), receives only updates that exceed its tolerance — Eq. 3
// applied once more at the leaf — and migrates to another repository,
// with a resync, when heartbeat silence marks its repository dead.

// ClientUpdate is one value pushed to a session.
type ClientUpdate struct {
	Item  string
	Value float64
	// Resync marks a catch-up push (admission or migration), as opposed
	// to a tolerance-violating live update.
	Resync bool
}

// Session is one client's subscription to a running cluster.
type Session struct {
	name string
	c    *Cluster
	ch   chan ClientUpdate

	mu         sync.Mutex
	repo       repository.ID
	wants      map[string]coherency.Requirement
	preferred  []repository.ID // admission preference order, reused on migration
	last       map[string]float64
	lastHeard  time.Time
	redirected bool
	migrations int
	delivered  uint64
	filtered   uint64
	dropped    uint64
	closed     bool
}

// Updates returns the session's delivery channel. A slow consumer does
// not block the cluster: deliveries that find the channel full are
// dropped and counted (Dropped).
func (s *Session) Updates() <-chan ClientUpdate { return s.ch }

// Name returns the client name the session was admitted under.
func (s *Session) Name() string { return s.name }

// Repo returns the repository currently serving the session.
func (s *Session) Repo() repository.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repo
}

// Redirected reports whether admission skipped the preferred repository.
func (s *Session) Redirected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.redirected
}

// Migrations reports how many times the session re-homed after its
// repository died.
func (s *Session) Migrations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.migrations
}

// Delivered, Filtered and Dropped report the session's fan-out counters.
func (s *Session) Delivered() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered
}
func (s *Session) Filtered() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.filtered
}
func (s *Session) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Value returns the session's current copy of item.
func (s *Session) Value(item string) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.last[item]
	return v, ok
}

// Close departs the session: it is removed from its repository and its
// channel is closed, so ranging consumers terminate. Every writer holds
// the locks taken here and checks closed first, so no send can follow.
func (s *Session) Close() {
	s.c.topoMu.Lock()
	defer s.c.topoMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.c.dropSessionLocked(s)
	close(s.ch)
}

// Subscribe admits a client session: it attaches to the first candidate
// repository — the preferred ids in order, then every repository by id —
// that is alive, already serves every watched item at least as
// stringently as the client demands, and is under Options.SessionCap.
// Landing on other than the first candidate counts as a redirect. The
// session immediately receives a resync push of the repository's current
// copies.
func (c *Cluster) Subscribe(name string, wants map[string]coherency.Requirement, preferred ...repository.ID) (*Session, error) {
	if len(wants) == 0 {
		return nil, fmt.Errorf("live: session %q wants nothing", name)
	}
	s := &Session{
		name:      name,
		c:         c,
		ch:        make(chan ClientUpdate, c.opts.Buffer),
		wants:     wants,
		preferred: append([]repository.ID(nil), preferred...),
		last:      make(map[string]float64, len(wants)),
	}
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	target := c.placeSessionLocked(s, preferred, repository.NoID)
	if target == repository.NoID {
		return nil, fmt.Errorf("live: no repository can serve session %q under the cap", name)
	}
	c.attachSessionLocked(s, target)
	if first := c.sessionCandidatesLocked(preferred, repository.NoID); len(first) > 0 && target != first[0] {
		s.mu.Lock()
		s.redirected = true
		s.mu.Unlock()
		c.sessionRedirects++
	}
	return s, nil
}

// SessionRedirects and SessionMigrations report the cluster-wide
// admission and repair counters of the serving layer.
func (c *Cluster) SessionRedirects() int {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	return c.sessionRedirects
}
func (c *Cluster) SessionMigrations() int {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	return c.sessionMigrations
}

// sessionCandidatesLocked returns the admission walk order: the preferred
// ids first, then every repository ascending, without duplicates and
// excluding the source and `skip`.
func (c *Cluster) sessionCandidatesLocked(preferred []repository.ID, skip repository.ID) []repository.ID {
	seen := make(map[repository.ID]bool, len(c.nodes))
	var out []repository.ID
	add := func(id repository.ID) {
		if id == skip || id == repository.SourceID || seen[id] {
			return
		}
		if _, ok := c.nodes[id]; !ok {
			return
		}
		seen[id] = true
		out = append(out, id)
	}
	for _, id := range preferred {
		add(id)
	}
	rest := make([]repository.ID, 0, len(c.nodes))
	for id := range c.nodes {
		rest = append(rest, id)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	for _, id := range rest {
		add(id)
	}
	return out
}

// placeSessionLocked walks the candidates and returns the first that is
// alive, serves the session's watch list stringently enough, and has
// session capacity — or NoID.
func (c *Cluster) placeSessionLocked(s *Session, preferred []repository.ID, skip repository.ID) repository.ID {
	for _, id := range c.sessionCandidatesLocked(preferred, skip) {
		n := c.nodes[id]
		n.mu.Lock()
		dead := n.dead
		n.mu.Unlock()
		if dead {
			continue
		}
		if c.opts.SessionCap > 0 && len(c.sessions[id]) >= c.opts.SessionCap {
			continue
		}
		serves := true
		for x, tol := range s.wants {
			if !n.repo.CanServe(x, tol) {
				serves = false
				break
			}
		}
		if !serves {
			continue
		}
		return id
	}
	return repository.NoID
}

// attachSessionLocked wires the session to the repository and queues the
// resync push of the repository's current copies.
func (c *Cluster) attachSessionLocked(s *Session, id repository.ID) {
	if c.sessions == nil {
		c.sessions = make(map[repository.ID][]*Session)
	}
	c.sessions[id] = append(c.sessions[id], s)
	n := c.nodes[id]
	items := make([]string, 0, len(s.wants))
	for x := range s.wants {
		items = append(items, x)
	}
	sort.Strings(items)
	n.mu.Lock()
	vals := make(map[string]float64, len(items))
	for _, x := range items {
		if v, ok := n.values[x]; ok {
			vals[x] = v
		}
	}
	n.mu.Unlock()
	s.mu.Lock()
	s.repo = id
	s.lastHeard = time.Now()
	for _, x := range items {
		v, ok := vals[x]
		if !ok {
			continue
		}
		if had, seeded := s.last[x]; seeded && had == v {
			continue // already converged; nothing to catch up on
		}
		s.last[x] = v
		s.pushLocked(ClientUpdate{Item: x, Value: v, Resync: true})
	}
	s.mu.Unlock()
}

// dropSessionLocked removes the session from its repository's fan-out
// list. Callers hold topoMu and s.mu as needed.
func (c *Cluster) dropSessionLocked(s *Session) {
	list := c.sessions[s.repo]
	for i, other := range list {
		if other == s {
			c.sessions[s.repo] = append(list[:i:i], list[i+1:]...)
			break
		}
	}
	s.repo = repository.NoID
}

// pushLocked queues one update without blocking; a full channel drops
// the update and counts it. Callers hold s.mu.
func (s *Session) pushLocked(u ClientUpdate) {
	select {
	case s.ch <- u:
	default:
		s.dropped++
	}
}

// fanOutLocked applies the per-client filter to one repository delivery:
// Eqs. 3 and 7 with the repository's own serving tolerance as cSelf, the
// same condition the overlay uses edge by edge — Eq. 3 alone would let a
// client drift by its tolerance plus the repository's. The caller holds
// topoMu (read) — the session lists are stable.
func (c *Cluster) fanOutLocked(id repository.ID, item string, v float64) {
	list := c.sessions[id]
	if len(list) == 0 {
		return
	}
	cSelf, _ := c.nodes[id].repo.ServingTolerance(item)
	for _, s := range list {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			continue
		}
		tol, watching := s.wants[item]
		if !watching {
			s.mu.Unlock()
			continue
		}
		s.lastHeard = time.Now()
		if last, seeded := s.last[item]; seeded && !coherency.ShouldForward(v, last, tol, cSelf) {
			s.filtered++
			s.mu.Unlock()
			continue
		}
		s.last[item] = v
		s.delivered++
		s.pushLocked(ClientUpdate{Item: item, Value: v})
		s.mu.Unlock()
	}
}

// touchSessions refreshes the silence clocks of a repository's sessions
// when it heartbeats, so a quiet-but-alive repository is not abandoned.
func (c *Cluster) touchSessions(id repository.ID) {
	c.topoMu.RLock()
	list := append([]*Session(nil), c.sessions[id]...)
	c.topoMu.RUnlock()
	now := time.Now()
	for _, s := range list {
		s.mu.Lock()
		s.lastHeard = now
		s.mu.Unlock()
	}
}

// sessionWatchdogLoop migrates sessions away from silent repositories:
// a session that has heard nothing — no update, no heartbeat — from its
// repository for FailWindow re-homes onto the next candidate and resyncs
// to its current copies, mirroring the repository-to-repository failover
// of the overlay itself.
func (c *Cluster) sessionWatchdogLoop() {
	period := c.opts.FailWindow / 4
	if period <= 0 {
		period = time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
		}
		c.topoMu.RLock()
		var stale []*Session
		now := time.Now()
		for _, list := range c.sessions {
			for _, s := range list {
				s.mu.Lock()
				if !s.closed && s.repo != repository.NoID && now.Sub(s.lastHeard) >= c.opts.FailWindow {
					stale = append(stale, s)
				}
				s.mu.Unlock()
			}
		}
		c.topoMu.RUnlock()
		sort.Slice(stale, func(i, j int) bool { return stale[i].name < stale[j].name })
		for _, s := range stale {
			c.migrateSession(s)
		}
	}
}

// migrateSession re-homes one session off its (presumed dead)
// repository.
func (c *Cluster) migrateSession(s *Session) {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	s.mu.Lock()
	old := s.repo
	closed := s.closed
	s.mu.Unlock()
	if closed || old == repository.NoID {
		return
	}
	// Walk the session's own admission preference order again, so a
	// migration lands on its designated nearby alternative when one was
	// named — the same nearest-first policy the sim fleet applies.
	target := c.placeSessionLocked(s, s.preferred, old)
	if target == repository.NoID {
		return // nothing can take it; the watchdog retries next pass
	}
	s.mu.Lock()
	c.dropSessionLocked(s)
	s.migrations++
	s.mu.Unlock()
	c.attachSessionLocked(s, target)
	c.sessionMigrations++
}
