package live

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"d3t/internal/coherency"
	dnode "d3t/internal/node"
	"d3t/internal/obs"
	"d3t/internal/query"
	"d3t/internal/repository"
	"d3t/internal/sim"
)

// This file serves client sessions over channels: the channel transport
// of the node core's serving layer. A session subscribes to items with
// its own tolerances, is admitted to a repository under the session cap
// (overflow redirects to the next candidate), receives only updates its
// serving core's per-client filter forwards, and migrates to another
// repository, with a resync, when heartbeat silence marks its repository
// dead. The filter state and decision counters live in the core
// (node.Session); this side owns the delivery channel, placement
// preferences, and the silence clock.

// ClientUpdate is one value pushed to a session.
type ClientUpdate struct {
	Item  string
	Value float64
	// Resync marks a catch-up push (admission or migration), as opposed
	// to a tolerance-violating live update.
	Resync bool
}

// Session is one client's subscription to a running cluster.
type Session struct {
	name string
	c    *Cluster
	ch   chan ClientUpdate
	ns   *dnode.Session

	// q and qeval make the session a derived-data query (SubscribeQuery):
	// the evaluator is fed by every filtered input delivery, under the
	// serving core's mutex. Both are set before admission and immutable
	// after; qobs tracks the serving node's observer (written at attach
	// under topoMu write, read on the push path under topoMu read).
	q     *query.Query
	qeval *query.Eval
	qobs  *obs.Node

	mu         sync.Mutex
	repo       repository.ID
	preferred  []repository.ID // admission preference order, reused on migration
	redirected bool
	migrations int
	dropped    uint64
	closed     bool
}

// Updates returns the session's delivery channel. A slow consumer does
// not block the cluster: deliveries that find the channel full are
// dropped and counted (Dropped).
func (s *Session) Updates() <-chan ClientUpdate { return s.ch }

// Name returns the client name the session was admitted under.
func (s *Session) Name() string { return s.name }

// Repo returns the repository currently serving the session.
func (s *Session) Repo() repository.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repo
}

// Redirected reports whether admission skipped the preferred repository.
func (s *Session) Redirected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.redirected
}

// Migrations reports how many times the session re-homed after its
// repository died.
func (s *Session) Migrations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.migrations
}

// withCore runs fn with the session's core-side state serialized against
// the serving node (lock order: topoMu, session-core mu; the session
// mutex is never held across either).
func (s *Session) withCore(fn func(ns *dnode.Session)) {
	s.c.topoMu.RLock()
	defer s.c.topoMu.RUnlock()
	s.mu.Lock()
	id := s.repo
	s.mu.Unlock()
	if n, ok := s.c.nodes[id]; ok {
		mu, _ := n.sessionCore()
		mu.Lock()
		defer mu.Unlock()
		fn(s.ns)
		return
	}
	// Detached (departed or mid-migration): nothing else touches the
	// node session while topoMu is held shared.
	fn(s.ns)
}

// Delivered, Filtered and Dropped report the session's fan-out counters.
func (s *Session) Delivered() uint64 {
	var out uint64
	s.withCore(func(ns *dnode.Session) { out = ns.Delivered() })
	return out
}
func (s *Session) Filtered() uint64 {
	var out uint64
	s.withCore(func(ns *dnode.Session) { out = ns.Filtered() })
	return out
}
func (s *Session) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// QueryCounts reports a query session's eval/recompute counters: input
// deliveries evaluated, and result recomputations (one per delivery once
// every input has a value). Zeros for plain sessions. Counts depend only
// on the delivery sequence the per-client filter produced, so they must
// agree with every other backend serving the same stream.
func (s *Session) QueryCounts() (evals, recomputes uint64) {
	if s.qeval == nil {
		return 0, 0
	}
	s.withCore(func(*dnode.Session) { evals, recomputes = s.qeval.Evals(), s.qeval.Recomputes() })
	return evals, recomputes
}

// QueryResult returns a query session's current evaluator result (false
// for plain sessions and before every input has a value).
func (s *Session) QueryResult() (float64, bool) {
	var (
		v  float64
		ok bool
	)
	if s.qeval == nil {
		return 0, false
	}
	s.withCore(func(*dnode.Session) { v, ok = s.qeval.Result() })
	return v, ok
}

// Value returns the session's current copy of item.
func (s *Session) Value(item string) (float64, bool) {
	var (
		v  float64
		ok bool
	)
	s.withCore(func(ns *dnode.Session) { v, ok = ns.Value(item) })
	return v, ok
}

// push queues one update without blocking; a full channel drops the
// update and counts it. Callers hold the serving node's mutex (or the
// cluster's write lock), which is what excludes a concurrent Close.
func (s *Session) push(u ClientUpdate) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	select {
	case s.ch <- u:
	default:
		s.dropped++
	}
	s.mu.Unlock()
}

// Close departs the session: it is removed from its repository and its
// channel is closed, so ranging consumers terminate. Every push happens
// under topoMu (read) plus the serving node's mutex; Close holds the
// write lock and detaches first, so no send can follow the close.
func (s *Session) Close() {
	s.c.topoMu.Lock()
	defer s.c.topoMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	id := s.repo
	s.repo = repository.NoID
	s.mu.Unlock()
	if n, ok := s.c.nodes[id]; ok {
		mu, core := n.sessionCore()
		mu.Lock()
		core.DropSession(s.name)
		delete(n.sess, s.name)
		mu.Unlock()
	}
	close(s.ch)
}

// Subscribe admits a client session: it attaches to the first candidate
// repository — the preferred ids in order, then every repository by id —
// that is alive, already serves every watched item at least as
// stringently as the client demands, and is under Options.SessionCap.
// Landing on other than the first candidate counts as a redirect. The
// session immediately receives a resync push of the repository's current
// copies.
func (c *Cluster) Subscribe(name string, wants map[string]coherency.Requirement, preferred ...repository.ID) (*Session, error) {
	return c.subscribe(name, wants, nil, preferred)
}

// SubscribeQuery admits a derived-data query session (internal/query):
// an input subscription to the query's items at their allocated
// tolerances, recombined by an incremental evaluator fed by every
// filtered delivery. With the default repository-side placement the
// Updates channel carries only published result changes, under the
// query's result pseudo-item (Query.ResultItem); with PlaceClient it
// carries the raw inputs (the evaluator still runs, exposed via
// QueryResult/QueryCounts). Placement trades last-hop message cost; the
// evaluation counts are identical either way.
func (c *Cluster) SubscribeQuery(q query.Query, preferred ...repository.ID) (*Session, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.Name == "" {
		return nil, fmt.Errorf("live: query session needs a name")
	}
	return c.subscribe(q.Name, q.Wants(), &q, preferred)
}

func (c *Cluster) subscribe(name string, wants map[string]coherency.Requirement, q *query.Query, preferred []repository.ID) (*Session, error) {
	if len(wants) == 0 {
		return nil, fmt.Errorf("live: session %q wants nothing", name)
	}
	s := &Session{
		name:      name,
		c:         c,
		ch:        make(chan ClientUpdate, c.opts.Buffer),
		ns:        dnode.NewSession(name, wants),
		preferred: append([]repository.ID(nil), preferred...),
		repo:      repository.NoID,
	}
	if q != nil {
		s.q = q
		s.qeval = query.NewEval(*q)
	}
	s.ns.SetTag(s)
	start := c.now()
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	target := c.placeSessionLocked(s, preferred, repository.NoID)
	if target == repository.NoID {
		return nil, fmt.Errorf("live: no repository can serve session %q under the cap", name)
	}
	c.attachSessionLocked(s, target)
	if first := c.sessionCandidatesLocked(preferred, repository.NoID); len(first) > 0 && target != first[0] {
		s.mu.Lock()
		s.redirected = true
		s.mu.Unlock()
		c.sessionRedirects++
		// The redirect is charged to the repository that turned the
		// client away, with the whole admission walk as its latency.
		c.nodes[first[0]].obs.Redirect1()
		c.nodes[first[0]].obs.ObserveRedirectLatency(int64(c.now() - start))
	}
	return s, nil
}

// SessionRedirects and SessionMigrations report the cluster-wide
// admission and repair counters of the serving layer.
func (c *Cluster) SessionRedirects() int {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	return c.sessionRedirects
}
func (c *Cluster) SessionMigrations() int {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	return c.sessionMigrations
}

// sessionCandidatesLocked returns the admission walk order: the preferred
// ids first, then every repository ascending, without duplicates and
// excluding the source and `skip`.
func (c *Cluster) sessionCandidatesLocked(preferred []repository.ID, skip repository.ID) []repository.ID {
	seen := make(map[repository.ID]bool, len(c.nodes))
	var out []repository.ID
	add := func(id repository.ID) {
		if id == skip || id == repository.SourceID || seen[id] {
			return
		}
		if _, ok := c.nodes[id]; !ok {
			return
		}
		seen[id] = true
		out = append(out, id)
	}
	for _, id := range preferred {
		add(id)
	}
	rest := make([]repository.ID, 0, len(c.nodes))
	for id := range c.nodes {
		rest = append(rest, id)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	for _, id := range rest {
		add(id)
	}
	return out
}

// placeSessionLocked walks the candidates and returns the first that is
// alive, serves the session's watch list stringently enough, and has
// session capacity — or NoID. The per-candidate policy (cap, serving
// stringency) is the core's admission rule.
func (c *Cluster) placeSessionLocked(s *Session, preferred []repository.ID, skip repository.ID) repository.ID {
	for _, id := range c.sessionCandidatesLocked(preferred, skip) {
		n := c.nodes[id]
		n.mu.Lock()
		dead := n.dead
		n.mu.Unlock()
		if dead {
			continue
		}
		mu, core := n.sessionCore()
		mu.Lock()
		ok := core.Session(s.name) == nil &&
			core.HasSessionRoom() && core.CanServeSession(s.ns.Wants())
		mu.Unlock()
		if ok {
			return id
		}
	}
	return repository.NoID
}

// attachSessionLocked wires the session into the repository's core,
// which resyncs it to the repository's current copies and stamps its
// service clock. The caller holds topoMu (write).
func (c *Cluster) attachSessionLocked(s *Session, id repository.ID) {
	n := c.nodes[id]
	s.mu.Lock()
	s.repo = id
	s.mu.Unlock()
	s.qobs = n.obs // query passes are charged to the serving node
	mu, core := n.sessionCore()
	tr := &n.shards[0].tr
	if n.sessCore != nil {
		tr = &n.sessTr
	}
	mu.Lock()
	n.sess[s.name] = s
	core.ForceAdmit(s.ns, tr)
	mu.Unlock()
}

// sessionWatchdogLoop migrates sessions away from silent repositories:
// a session whose core records no service — no delivery, no resync, no
// heartbeat touch — for FailWindow re-homes onto the next candidate and
// resyncs to its current copies, mirroring the repository-to-repository
// failover of the overlay itself. The silence clock is the core's
// (Session.LastServed, refreshed by heartbeats via TouchSessions), on
// the cluster transport's time base.
func (c *Cluster) sessionWatchdogLoop() {
	window := sim.Time(c.opts.FailWindow / time.Microsecond)
	ticker := time.NewTicker(c.tickerPeriod())
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
		}
		now := c.now()
		c.topoMu.RLock()
		var stale []*Session
		for _, n := range c.nodes {
			mu, core := n.sessionCore()
			mu.Lock()
			for _, ns := range core.StaleSessions(now, window) {
				if s, ok := ns.Tag().(*Session); ok {
					stale = append(stale, s)
				}
			}
			mu.Unlock()
		}
		c.topoMu.RUnlock()
		sort.Slice(stale, func(i, j int) bool { return stale[i].name < stale[j].name })
		for _, s := range stale {
			c.migrateSession(s)
		}
	}
}

// migrateSession re-homes one session off its (presumed dead)
// repository. The node.Session object carries the client's current
// copies along, so the new core resyncs only values that differ.
func (c *Cluster) migrateSession(s *Session) {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	s.mu.Lock()
	old := s.repo
	closed := s.closed
	s.mu.Unlock()
	if closed || old == repository.NoID {
		return
	}
	// Walk the session's own admission preference order again, so a
	// migration lands on its designated nearby alternative when one was
	// named — the same nearest-first policy the sim fleet applies.
	target := c.placeSessionLocked(s, s.preferred, old)
	if target == repository.NoID {
		return // nothing can take it; the watchdog retries next pass
	}
	if n, ok := c.nodes[old]; ok {
		mu, core := n.sessionCore()
		mu.Lock()
		core.DropSession(s.name)
		delete(n.sess, s.name)
		mu.Unlock()
	}
	s.mu.Lock()
	s.migrations++
	s.mu.Unlock()
	c.attachSessionLocked(s, target)
	c.sessionMigrations++
	c.nodes[target].obs.Migrate1()
}
