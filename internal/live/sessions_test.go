package live

import (
	"testing"
	"time"

	"d3t/internal/coherency"
	"d3t/internal/repository"
)

// drain collects everything currently queued on a session channel.
func drain(s *Session) []ClientUpdate {
	var out []ClientUpdate
	for {
		select {
		case u, ok := <-s.Updates():
			if !ok {
				return out
			}
			out = append(out, u)
		default:
			return out
		}
	}
}

func TestSessionFilteredDelivery(t *testing.T) {
	o := chainOverlay(t) // source -> P(c=30) -> Q(c=50) for X
	c := NewCluster(o, Options{})
	c.Seed("X", 100)
	c.Start()
	defer c.Stop()

	// A client on P with a much looser tolerance than P's own (100 vs
	// 30): P takes every 30+ move, the client only ones that leave its
	// Eq. 3+7 band (|Δ| > 100 − 30).
	s, err := c.Subscribe("alice", map[string]coherency.Requirement{"X": 100}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Repo() != 1 || s.Redirected() {
		t.Fatalf("session on repo %d (redirected=%v), want its preferred 1", s.Repo(), s.Redirected())
	}

	// 140 violates P (|Δ|=40 > 30) but is safe for the client
	// (40 ≤ 100 − 30): filtered at the leaf.
	c.Publish("X", 140)
	if !waitFor(t, time.Second, func() bool {
		v, _ := c.Value(1, "X")
		return v == 140
	}) {
		t.Fatal("update never reached P")
	}
	if !waitFor(t, 100*time.Millisecond, func() bool { return s.Filtered() >= 1 }) {
		t.Fatalf("client saw no filter decision (delivered=%d filtered=%d)", s.Delivered(), s.Filtered())
	}
	if s.Delivered() != 0 {
		t.Errorf("sub-tolerance update delivered to the client: %v", drain(s))
	}

	// 240 violates the client too (|240-100| > 100): it must arrive.
	c.Publish("X", 240)
	if !waitFor(t, time.Second, func() bool { return s.Delivered() >= 1 }) {
		t.Fatal("violating update never delivered to the session")
	}
	if v, ok := s.Value("X"); !ok || v != 240 {
		t.Errorf("session copy %v, want 240", v)
	}
	got := drain(s)
	if len(got) == 0 || got[len(got)-1].Value != 240 {
		t.Errorf("channel contents %v, want the 240 update", got)
	}
}

func TestSubscribeAdmissionAndRedirect(t *testing.T) {
	o := chainOverlay(t)
	c := NewCluster(o, Options{SessionCap: 1})
	c.Seed("X", 100)
	c.Start()
	defer c.Stop()

	wants := func(tol coherency.Requirement) map[string]coherency.Requirement {
		return map[string]coherency.Requirement{"X": tol}
	}
	// First client fills repository 1's only slot.
	a, err := c.Subscribe("a", wants(100), 1)
	if err != nil {
		t.Fatal(err)
	}
	// The second prefers 1 too, but must redirect to 2 — whose serving
	// tolerance (50) still satisfies the client's 100.
	b, err := c.Subscribe("b", wants(100), 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Repo() != 2 || !b.Redirected() {
		t.Errorf("overflow session on repo %d (redirected=%v), want redirect to 2", b.Repo(), b.Redirected())
	}
	if c.SessionRedirects() != 1 {
		t.Errorf("cluster redirects = %d, want 1", c.SessionRedirects())
	}
	// A third client demands tolerance 40: repository 2 serves X at 50,
	// too loose — and repository 1 (tolerance 30) is full. No home.
	if _, err := c.Subscribe("c", wants(40), 1); err == nil {
		t.Error("session admitted with no repository able to serve it")
	}
	// Departing "a" frees the slot for a stringent client.
	a.Close()
	d, err := c.Subscribe("d", wants(40), 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Repo() != 1 {
		t.Errorf("post-departure session on repo %d, want 1", d.Repo())
	}
	// Close terminates ranging consumers: once the queued resync drains,
	// the channel must be closed.
	d.Close()
	drain(d)
	if _, open := <-d.Updates(); open {
		t.Error("Updates channel still open after Close")
	}
}

func TestSessionResyncOnSubscribe(t *testing.T) {
	o := chainOverlay(t)
	c := NewCluster(o, Options{})
	c.Seed("X", 100)
	c.Start()
	defer c.Stop()
	c.Publish("X", 200)
	if !waitFor(t, time.Second, func() bool {
		v, _ := c.Value(1, "X")
		return v == 200
	}) {
		t.Fatal("update never reached P")
	}
	// A late subscriber catches up immediately via the resync push.
	s, err := c.Subscribe("late", map[string]coherency.Requirement{"X": 45}, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(s)
	if len(got) != 1 || !got[0].Resync || got[0].Value != 200 {
		t.Fatalf("resync push = %v, want one Resync update of 200", got)
	}
}

func TestSessionMigratesOffDeadRepository(t *testing.T) {
	o := failoverOverlay(t) // source(c=2 slots) -> mid(1) -> leaf(2)
	clk := newTestClock()
	c := NewCluster(o, Options{
		Heartbeat:  2 * time.Millisecond,
		FailWindow: time.Hour, // trips only when the test advances the clock
		Clock:      clk.Now,
		Backups:    map[repository.ID][]repository.ID{2: {repository.SourceID}},
	})
	c.Seed("X", 100)
	c.Start()
	defer c.Stop()

	// The client's tolerance (25) is served by mid (10) and by leaf (20).
	s, err := c.Subscribe("mobile", map[string]coherency.Requirement{"X": 25}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Repo() != 1 {
		t.Fatalf("session on repo %d, want mid (1)", s.Repo())
	}

	if !c.Crash(1) {
		t.Fatal("crash rejected")
	}
	clk.Advance(2 * time.Hour)
	// Heartbeat silence must push the session onto the surviving leaf.
	if !waitFor(t, 2*time.Second, func() bool { return s.Repo() == 2 }) {
		t.Fatalf("session still on repo %d after its repository died", s.Repo())
	}
	if s.Migrations() != 1 || c.SessionMigrations() != 1 {
		t.Errorf("migrations = %d/%d, want 1/1", s.Migrations(), c.SessionMigrations())
	}
	// The migrated session still receives filtered updates: the leaf
	// re-homed onto the source (overlay failover) and relays to it.
	c.Publish("X", 400)
	if !waitFor(t, 2*time.Second, func() bool {
		v, _ := s.Value("X")
		return v == 400
	}) {
		v, _ := s.Value("X")
		t.Fatalf("migrated session holds %v, want 400", v)
	}
}
