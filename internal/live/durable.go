package live

import (
	"fmt"
	"path/filepath"
	"sync"

	dnode "d3t/internal/node"
	"d3t/internal/repository"
	"d3t/internal/tree"
	"d3t/internal/wal"
)

// This file is the live transport's durability layer: NewDurableCluster
// recovers every (node, shard) core from its write-ahead log directory
// before the goroutines start, and walState is the snapshot callback the
// group commit in handleBatch rotates through. A repository process that
// dies and is rebuilt over the same directory resumes with its exact
// pre-crash values and edge filter state — the first post-recovery push
// is then suppressed or forwarded by Eqs. 3+7 as if the crash never
// happened, instead of the cold rejoin that re-pushes everything.

// NewDurableCluster builds (but does not start) a live cluster whose
// per-shard cores are backed by write-ahead logs under
// opts.Durability.Dir, recovering whatever state those directories
// already hold. Shard recoveries run concurrently; any open or replay
// failure closes the logs already opened and fails construction.
func NewDurableCluster(o *tree.Overlay, opts Options) (*Cluster, error) {
	if opts.Durability == nil {
		return nil, fmt.Errorf("live: NewDurableCluster needs Options.Durability")
	}
	c := NewCluster(o, opts)
	var wg sync.WaitGroup
	for _, n := range c.nodes {
		for si, sh := range n.shards {
			n, si, sh := n, si, sh
			wg.Add(1)
			go func() {
				defer wg.Done()
				dir := filepath.Join(opts.Durability.Dir,
					fmt.Sprintf("repo%03d", n.repo.ID), fmt.Sprintf("shard%02d", si))
				wopts := *opts.Durability
				log, rec, err := wal.Open(dir, wopts)
				if err != nil {
					c.noteWALErr(err)
					return
				}
				sh.restore(rec)
				sh.mu.Lock()
				sh.log = log
				sh.mu.Unlock()
			}()
		}
	}
	wg.Wait()
	if err := c.DurabilityErr(); err != nil {
		for _, n := range c.nodes {
			for _, sh := range n.shards {
				sh.mu.Lock()
				if sh.log != nil {
					sh.log.Close()
				}
				sh.mu.Unlock()
			}
		}
		return nil, err
	}
	// A sharded node serves sessions from its dedicated serve-only core;
	// hand it the recovered values so a late subscriber's admission resync
	// pushes pre-crash state, not zeroes.
	for _, n := range c.nodes {
		if n.sessCore == nil {
			continue
		}
		for _, sh := range n.shards {
			sh.mu.Lock()
			sh.core.DumpDurable(func(item string, v float64) {
				n.mu.Lock()
				n.sessCore.SetValue(item, v)
				n.mu.Unlock()
			}, nil)
			sh.mu.Unlock()
		}
	}
	return c, nil
}

// restore puts a recovery into the shard's core: the snapshot state
// verbatim, then the logged batches replayed through the core's normal
// Apply pipeline so the edge filter decisions replay too.
func (sh *nodeShard) restore(rec *wal.Recovered) {
	if rec.Empty() {
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for item, v := range rec.State.Values {
		sh.core.SetValue(item, v)
	}
	for _, e := range rec.State.Edges {
		sh.core.RestoreEdge(repository.ID(e.Dep), e.Item, e.Last, e.Seeded)
	}
	for _, b := range rec.Batches {
		for _, u := range b {
			sh.core.Apply(u.Item, u.Value, dnode.ReplayTransport{})
		}
	}
}

// walState dumps the shard core's durable state for a snapshot rotation.
// The caller (Commit inside handleBatch) holds sh.mu, the lock that
// guards both the core and the log.
func (sh *nodeShard) walState() wal.State {
	st := wal.State{Values: make(map[string]float64)}
	sh.core.DumpDurable(
		func(item string, v float64) { st.Values[item] = v },
		func(dep repository.ID, item string, last float64, seeded bool) {
			st.Edges = append(st.Edges, wal.Edge{Dep: int64(dep), Item: item, Last: last, Seeded: seeded})
		})
	return st
}

// noteWALErr latches the first write-ahead-log failure.
func (c *Cluster) noteWALErr(err error) {
	c.walMu.Lock()
	if c.walErr == nil {
		c.walErr = err
	}
	c.walMu.Unlock()
}

// DurabilityErr reports the first write-ahead-log failure the cluster
// hit, or nil. After a non-nil error, commits may be missing from what a
// recovery over the same directories replays.
func (c *Cluster) DurabilityErr() error {
	c.walMu.Lock()
	defer c.walMu.Unlock()
	return c.walErr
}
