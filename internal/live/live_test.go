package live

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"d3t/internal/coherency"
	"d3t/internal/netsim"
	"d3t/internal/repository"
	"d3t/internal/tree"
)

// chainOverlay builds source -> P(c=30) -> Q(c=50) for item X.
func chainOverlay(t *testing.T) *tree.Overlay {
	t.Helper()
	net := netsim.Uniform(2, 0)
	p := repository.New(1, 1)
	q := repository.New(2, 1)
	p.Needs["X"], p.Serving["X"] = 30, 30
	q.Needs["X"], q.Serving["X"] = 50, 50
	o, err := (&tree.LeLA{}).Build(net, []*repository.Repository{p, q}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

func TestClusterPropagatesAndFilters(t *testing.T) {
	o := chainOverlay(t)
	c := NewCluster(o, Options{})
	c.Seed("X", 100)
	c.Start()
	defer c.Stop()

	// 120: within P's tolerance 30 of 100 -> no movement anywhere.
	c.Publish("X", 120)
	time.Sleep(20 * time.Millisecond)
	if v, _ := c.Value(1, "X"); v != 100 {
		t.Errorf("P received a filtered update: holds %v", v)
	}

	// 140: must reach P (|140-100| > 30) and — via Eq. 7 — also Q.
	c.Publish("X", 140)
	if !waitFor(t, time.Second, func() bool {
		p, _ := c.Value(1, "X")
		q, _ := c.Value(2, "X")
		return p == 140 && q == 140
	}) {
		t.Fatalf("140 did not propagate: snapshot %v", c.Snapshot("X"))
	}
}

func TestClusterWithDelays(t *testing.T) {
	o := chainOverlay(t)
	c := NewCluster(o, Options{CommDelay: 5 * time.Millisecond, CompDelay: time.Millisecond})
	c.Seed("X", 100)
	c.Start()
	defer c.Stop()
	c.Publish("X", 200)
	if !waitFor(t, time.Second, func() bool {
		q, _ := c.Value(2, "X")
		return q == 200
	}) {
		t.Fatalf("update did not propagate through delays: %v", c.Snapshot("X"))
	}
}

func TestClusterObservesDeliveries(t *testing.T) {
	o := chainOverlay(t)
	var mu sync.Mutex
	got := map[repository.ID][]float64{}
	c := NewCluster(o, Options{OnDeliver: func(id repository.ID, item string, v float64) {
		mu.Lock()
		got[id] = append(got[id], v)
		mu.Unlock()
	}})
	c.Seed("X", 100)
	c.Start()
	defer c.Stop()
	for _, v := range []float64{120, 140, 150, 170, 200} {
		c.Publish("X", v)
	}
	if !waitFor(t, time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got[2]) >= 2
	}) {
		t.Fatalf("expected at least 2 deliveries at Q, got %v", got)
	}
	mu.Lock()
	defer mu.Unlock()
	// P must see a superset of Q's updates.
	if len(got[1]) < len(got[2]) {
		t.Errorf("P saw %d updates, Q saw %d; parent must see at least as many", len(got[1]), len(got[2]))
	}
}

func TestClusterStopTerminates(t *testing.T) {
	o := chainOverlay(t)
	c := NewCluster(o, Options{CommDelay: 50 * time.Millisecond})
	c.Seed("X", 100)
	c.Start()
	c.Publish("X", 500) // leaves an in-flight delayed send
	done := make(chan struct{})
	go func() {
		c.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not terminate with in-flight sends")
	}
	if c.Publish("X", 600) {
		t.Error("Publish succeeded after Stop")
	}
	// Stop is idempotent.
	c.Stop()
}

func TestClusterLargerFanOut(t *testing.T) {
	const n = 12
	net := netsim.Uniform(n, 0)
	repos := make([]*repository.Repository, n)
	for i := range repos {
		repos[i] = repository.New(repository.ID(i+1), 3)
		repos[i].Needs["Y"], repos[i].Serving["Y"] = 1, 1
	}
	o, err := (&tree.LeLA{}).Build(net, repos, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(o, Options{})
	c.Seed("Y", 10)
	c.Start()
	defer c.Stop()
	c.Publish("Y", 50)
	if !waitFor(t, 2*time.Second, func() bool {
		snap := c.Snapshot("Y")
		for id := repository.ID(1); id <= n; id++ {
			if snap[id] != 50 {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("big jump did not reach every repository: %v", c.Snapshot("Y"))
	}
}

// multiOverlay builds a deterministic 10-repository overlay over 8 items.
func multiOverlay(t *testing.T, seed int64) (*tree.Overlay, []string) {
	t.Helper()
	items := []string{"I0", "I1", "I2", "I3", "I4", "I5", "I6", "I7"}
	repos := make([]*repository.Repository, 10)
	for i := range repos {
		repos[i] = repository.New(repository.ID(i+1), 3)
	}
	repository.AssignNeeds(repos, repository.Workload{
		Items:         items,
		SubscribeProb: 0.7,
		StringentFrac: 0.4,
		Seed:          seed,
	})
	o, err := (&tree.LeLA{Seed: seed}).Build(netsim.Uniform(10, 0), repos, 3)
	if err != nil {
		t.Fatal(err)
	}
	return o, items
}

// TestClusterShardedDecisionParity feeds the same update sequence through
// a single-shard and a 4-shard cluster: values converge identically and
// the per-(repo, item) decision sets match exactly — the per-item FIFO
// guarantee carried through per-shard batch channels.
func TestClusterShardedDecisionParity(t *testing.T) {
	feed := func(c *Cluster, items []string) {
		for round := 1; round <= 30; round++ {
			ups := make([]Update, 0, len(items))
			for i, item := range items {
				ups = append(ups, Update{Item: item, Value: float64(100 + round*(i+3))})
			}
			if !c.PublishBatch(ups) {
				t.Fatal("cluster stopped mid-feed")
			}
		}
	}
	collect := func(c *Cluster, o *tree.Overlay) map[string]string {
		out := make(map[string]string)
		for _, n := range o.Nodes {
			for item, d := range c.Decisions(n.ID) {
				out[n.ID.String()+"/"+item] = fmt.Sprintf("%+v", d)
			}
		}
		return out
	}

	o1, items := multiOverlay(t, 9)
	c1 := NewCluster(o1, Options{Buffer: 1024})
	for _, x := range items {
		c1.Seed(x, 100)
	}
	c1.Start()
	feed(c1, items)

	o4, _ := multiOverlay(t, 9)
	c4 := NewCluster(o4, Options{Buffer: 1024, Shards: 4})
	for _, x := range items {
		c4.Seed(x, 100)
	}
	c4.Start()
	feed(c4, items)

	var want, got map[string]string
	waitFor(t, 10*time.Second, func() bool {
		want, got = collect(c1, o1), collect(c4, o4)
		if len(want) == 0 || len(want) != len(got) {
			return false
		}
		for k, w := range want {
			if got[k] != w {
				return false
			}
		}
		return true
	})
	c1.Stop()
	c4.Stop()
	if len(want) == 0 {
		t.Fatal("no decisions recorded; the test is vacuous")
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("decisions[%s]: sharded %s, want %s", k, got[k], w)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("sharded cluster made unexpected decisions for %s", k)
		}
	}
}

// TestClusterShardedSessions: with sharding enabled, client sessions ride
// the dedicated serve-only core and still see per-client filtering.
func TestClusterShardedSessions(t *testing.T) {
	net := netsim.Uniform(2, 0)
	p := repository.New(1, 1)
	q := repository.New(2, 1)
	p.Needs["X"], p.Serving["X"] = 30, 30
	p.Needs["Y"], p.Serving["Y"] = 10, 10
	q.Needs["X"], q.Serving["X"] = 50, 50
	o, err := (&tree.LeLA{}).Build(net, []*repository.Repository{p, q}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(o, Options{Shards: 4})
	c.Seed("X", 100)
	c.Seed("Y", 50)
	c.Start()
	defer c.Stop()

	s, err := c.Subscribe("alice", map[string]coherency.Requirement{"X": 100, "Y": 15}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// X=140 violates P (30) but not the client (|40| <= 100-30): filtered
	// at the leaf. Y=90 violates the client too: delivered.
	if !c.PublishBatch([]Update{{Item: "X", Value: 140}, {Item: "Y", Value: 90}}) {
		t.Fatal("publish failed")
	}
	if !waitFor(t, 2*time.Second, func() bool {
		y, _ := s.Value("Y")
		return y == 90 && s.Filtered() >= 1
	}) {
		y, _ := s.Value("Y")
		t.Fatalf("sharded session: Y=%v delivered=%d filtered=%d, want Y=90 with one filter decision",
			y, s.Delivered(), s.Filtered())
	}
	if v, ok := s.Value("X"); ok && v != 100 {
		t.Errorf("filtered X leaked to the session: %v", v)
	}
}

// testClock is a manually advanced cluster time source. Injected through
// Options.Clock it makes silence-window detection deterministic: parents
// go stale only when the test advances the clock past FailWindow, never
// because a scheduler stall delayed a real heartbeat — which is exactly
// how the heartbeat/failover tests used to flake. The failure windows
// below are set absurdly large in real terms so only Advance can trip
// them.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock { return &testClock{now: time.Now()} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// failoverOverlay hand-wires source(c=2) -> mid -> leaf for item X, with
// the source holding a spare slot the leaf can re-home into.
func failoverOverlay(t *testing.T) *tree.Overlay {
	t.Helper()
	source := repository.New(repository.SourceID, 2)
	mid := repository.New(1, 1)
	leaf := repository.New(2, 1)
	mid.Needs["X"], mid.Serving["X"] = 10, 10
	mid.Level = 1
	leaf.Needs["X"], leaf.Serving["X"] = 20, 20
	leaf.Level = 2
	source.AddDependent("X", mid.ID)
	mid.Parents["X"] = repository.SourceID
	mid.AddDependent("X", leaf.ID)
	leaf.Parents["X"] = mid.ID
	o := &tree.Overlay{
		Nodes: []*repository.Repository{source, mid, leaf},
		Net:   netsim.Uniform(2, 0),
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestClusterFailoverToBackup(t *testing.T) {
	o := failoverOverlay(t)
	clk := newTestClock()
	c := NewCluster(o, Options{
		Heartbeat:  2 * time.Millisecond,
		FailWindow: time.Hour, // trips only when the test advances the clock
		Clock:      clk.Now,
		Backups:    map[repository.ID][]repository.ID{2: {repository.SourceID}},
	})
	c.Seed("X", 100)
	c.Start()
	defer c.Stop()

	// Healthy path: an update flows source -> mid -> leaf.
	c.Publish("X", 150)
	if !waitFor(t, time.Second, func() bool {
		v, _ := c.Value(2, "X")
		return v == 150
	}) {
		t.Fatal("update never reached the leaf through the chain")
	}

	if !c.Crash(1) {
		t.Fatal("Crash(1) refused")
	}
	if c.Crash(repository.SourceID) {
		t.Error("Crash accepted the source")
	}

	// Advance past the silence window: the leaf must detect mid's death
	// and re-home onto the source.
	clk.Advance(2 * time.Hour)
	if !waitFor(t, 5*time.Second, func() bool { return c.Failovers() > 0 }) {
		t.Fatal("leaf never failed over")
	}

	// Updates now reach the leaf directly from the source.
	c.Publish("X", 300)
	if !waitFor(t, 5*time.Second, func() bool {
		v, _ := c.Value(2, "X")
		return v == 300
	}) {
		v, _ := c.Value(2, "X")
		t.Fatalf("post-failover update never arrived: leaf holds %v", v)
	}
	// And the dead node stayed dead.
	if v, _ := c.Value(1, "X"); v == 300 {
		t.Error("crashed node kept receiving updates")
	}
}

func TestClusterFailoverSyncsCurrentValue(t *testing.T) {
	o := failoverOverlay(t)
	clk := newTestClock()
	c := NewCluster(o, Options{
		Heartbeat:  2 * time.Millisecond,
		FailWindow: time.Hour,
		Clock:      clk.Now,
		Backups:    map[repository.ID][]repository.ID{2: {repository.SourceID}},
	})
	c.Seed("X", 100)
	c.Start()
	defer c.Stop()

	c.Crash(1)
	// While the leaf is severed, the source moves far outside tolerance.
	c.Publish("X", 500)
	clk.Advance(2 * time.Hour)
	// After failover the sync push alone must converge the leaf.
	if !waitFor(t, 5*time.Second, func() bool {
		v, _ := c.Value(2, "X")
		return v == 500
	}) {
		v, _ := c.Value(2, "X")
		t.Fatalf("leaf never converged after failover sync: holds %v", v)
	}
}
