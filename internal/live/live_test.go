package live

import (
	"sync"
	"testing"
	"time"

	"d3t/internal/netsim"
	"d3t/internal/repository"
	"d3t/internal/tree"
)

// chainOverlay builds source -> P(c=30) -> Q(c=50) for item X.
func chainOverlay(t *testing.T) *tree.Overlay {
	t.Helper()
	net := netsim.Uniform(2, 0)
	p := repository.New(1, 1)
	q := repository.New(2, 1)
	p.Needs["X"], p.Serving["X"] = 30, 30
	q.Needs["X"], q.Serving["X"] = 50, 50
	o, err := (&tree.LeLA{}).Build(net, []*repository.Repository{p, q}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

func TestClusterPropagatesAndFilters(t *testing.T) {
	o := chainOverlay(t)
	c := NewCluster(o, Options{})
	c.Seed("X", 100)
	c.Start()
	defer c.Stop()

	// 120: within P's tolerance 30 of 100 -> no movement anywhere.
	c.Publish("X", 120)
	time.Sleep(20 * time.Millisecond)
	if v, _ := c.Value(1, "X"); v != 100 {
		t.Errorf("P received a filtered update: holds %v", v)
	}

	// 140: must reach P (|140-100| > 30) and — via Eq. 7 — also Q.
	c.Publish("X", 140)
	if !waitFor(t, time.Second, func() bool {
		p, _ := c.Value(1, "X")
		q, _ := c.Value(2, "X")
		return p == 140 && q == 140
	}) {
		t.Fatalf("140 did not propagate: snapshot %v", c.Snapshot("X"))
	}
}

func TestClusterWithDelays(t *testing.T) {
	o := chainOverlay(t)
	c := NewCluster(o, Options{CommDelay: 5 * time.Millisecond, CompDelay: time.Millisecond})
	c.Seed("X", 100)
	c.Start()
	defer c.Stop()
	c.Publish("X", 200)
	if !waitFor(t, time.Second, func() bool {
		q, _ := c.Value(2, "X")
		return q == 200
	}) {
		t.Fatalf("update did not propagate through delays: %v", c.Snapshot("X"))
	}
}

func TestClusterObservesDeliveries(t *testing.T) {
	o := chainOverlay(t)
	var mu sync.Mutex
	got := map[repository.ID][]float64{}
	c := NewCluster(o, Options{OnDeliver: func(id repository.ID, item string, v float64) {
		mu.Lock()
		got[id] = append(got[id], v)
		mu.Unlock()
	}})
	c.Seed("X", 100)
	c.Start()
	defer c.Stop()
	for _, v := range []float64{120, 140, 150, 170, 200} {
		c.Publish("X", v)
	}
	if !waitFor(t, time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got[2]) >= 2
	}) {
		t.Fatalf("expected at least 2 deliveries at Q, got %v", got)
	}
	mu.Lock()
	defer mu.Unlock()
	// P must see a superset of Q's updates.
	if len(got[1]) < len(got[2]) {
		t.Errorf("P saw %d updates, Q saw %d; parent must see at least as many", len(got[1]), len(got[2]))
	}
}

func TestClusterStopTerminates(t *testing.T) {
	o := chainOverlay(t)
	c := NewCluster(o, Options{CommDelay: 50 * time.Millisecond})
	c.Seed("X", 100)
	c.Start()
	c.Publish("X", 500) // leaves an in-flight delayed send
	done := make(chan struct{})
	go func() {
		c.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not terminate with in-flight sends")
	}
	if c.Publish("X", 600) {
		t.Error("Publish succeeded after Stop")
	}
	// Stop is idempotent.
	c.Stop()
}

func TestClusterLargerFanOut(t *testing.T) {
	const n = 12
	net := netsim.Uniform(n, 0)
	repos := make([]*repository.Repository, n)
	for i := range repos {
		repos[i] = repository.New(repository.ID(i+1), 3)
		repos[i].Needs["Y"], repos[i].Serving["Y"] = 1, 1
	}
	o, err := (&tree.LeLA{}).Build(net, repos, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(o, Options{})
	c.Seed("Y", 10)
	c.Start()
	defer c.Stop()
	c.Publish("Y", 50)
	if !waitFor(t, 2*time.Second, func() bool {
		snap := c.Snapshot("Y")
		for id := repository.ID(1); id <= n; id++ {
			if snap[id] != 50 {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("big jump did not reach every repository: %v", c.Snapshot("Y"))
	}
}

// failoverOverlay hand-wires source(c=2) -> mid -> leaf for item X, with
// the source holding a spare slot the leaf can re-home into.
func failoverOverlay(t *testing.T) *tree.Overlay {
	t.Helper()
	source := repository.New(repository.SourceID, 2)
	mid := repository.New(1, 1)
	leaf := repository.New(2, 1)
	mid.Needs["X"], mid.Serving["X"] = 10, 10
	mid.Level = 1
	leaf.Needs["X"], leaf.Serving["X"] = 20, 20
	leaf.Level = 2
	source.AddDependent("X", mid.ID)
	mid.Parents["X"] = repository.SourceID
	mid.AddDependent("X", leaf.ID)
	leaf.Parents["X"] = mid.ID
	o := &tree.Overlay{
		Nodes: []*repository.Repository{source, mid, leaf},
		Net:   netsim.Uniform(2, 0),
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestClusterFailoverToBackup(t *testing.T) {
	o := failoverOverlay(t)
	c := NewCluster(o, Options{
		Heartbeat:  2 * time.Millisecond,
		FailWindow: 20 * time.Millisecond,
		Backups:    map[repository.ID][]repository.ID{2: {repository.SourceID}},
	})
	c.Seed("X", 100)
	c.Start()
	defer c.Stop()

	// Healthy path: an update flows source -> mid -> leaf.
	c.Publish("X", 150)
	if !waitFor(t, time.Second, func() bool {
		v, _ := c.Value(2, "X")
		return v == 150
	}) {
		t.Fatal("update never reached the leaf through the chain")
	}

	if !c.Crash(1) {
		t.Fatal("Crash(1) refused")
	}
	if c.Crash(repository.SourceID) {
		t.Error("Crash accepted the source")
	}

	// The leaf must detect mid's silence and re-home onto the source.
	if !waitFor(t, 5*time.Second, func() bool { return c.Failovers() > 0 }) {
		t.Fatal("leaf never failed over")
	}

	// Updates now reach the leaf directly from the source.
	c.Publish("X", 300)
	if !waitFor(t, 5*time.Second, func() bool {
		v, _ := c.Value(2, "X")
		return v == 300
	}) {
		v, _ := c.Value(2, "X")
		t.Fatalf("post-failover update never arrived: leaf holds %v", v)
	}
	// And the dead node stayed dead.
	if v, _ := c.Value(1, "X"); v == 300 {
		t.Error("crashed node kept receiving updates")
	}
}

func TestClusterFailoverSyncsCurrentValue(t *testing.T) {
	o := failoverOverlay(t)
	c := NewCluster(o, Options{
		Heartbeat:  2 * time.Millisecond,
		FailWindow: 20 * time.Millisecond,
		Backups:    map[repository.ID][]repository.ID{2: {repository.SourceID}},
	})
	c.Seed("X", 100)
	c.Start()
	defer c.Stop()

	c.Crash(1)
	// While the leaf is severed, the source moves far outside tolerance.
	c.Publish("X", 500)
	// After failover the sync push alone must converge the leaf.
	if !waitFor(t, 5*time.Second, func() bool {
		v, _ := c.Value(2, "X")
		return v == 500
	}) {
		v, _ := c.Value(2, "X")
		t.Fatalf("leaf never converged after failover sync: holds %v", v)
	}
}
