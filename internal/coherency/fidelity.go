package coherency

import (
	"fmt"
	"math"

	"d3t/internal/sim"
)

// Tracker measures the fidelity of one (repository, item) pair online.
//
// Both the source signal and the repository's copy are piecewise constant:
// the source changes at trace ticks, the copy changes at delivery events.
// Between events the violation predicate |S - R| > c is constant, so exact
// fidelity is the sum of the violation interval lengths divided by the
// observation span (Section 6.2).
type Tracker struct {
	c Requirement

	src, rep   float64
	started    bool
	start      sim.Time
	last       sim.Time // time of the most recent state change
	inViol     bool
	violStart  sim.Time // when the current violation interval opened
	violation  sim.Time
	violations int // number of violation intervals entered

	// OnViolationEnd, when set, fires each time a violation interval
	// closes, with the interval's bounds. Observation only — it must not
	// touch the tracker. The observability layer hangs its per-node
	// violation-duration histograms off it; coherency itself stays free
	// of any obs dependency.
	OnViolationEnd func(start, end sim.Time)
}

// NewTracker starts measuring at time start with both source and
// repository holding the initial value (repositories are assumed to be
// seeded with the item's current value when they join, so observation
// starts coherent).
func NewTracker(c Requirement, start sim.Time, initial float64) *Tracker {
	return &Tracker{c: c, src: initial, rep: initial, started: true, start: start, last: start}
}

// advance accounts the interval [t.last, now) against the current
// violation state.
func (t *Tracker) advance(now sim.Time) {
	if now < t.last {
		panic(fmt.Sprintf("coherency: tracker moved backwards from %v to %v", t.last, now))
	}
	if t.inViol {
		t.violation += now - t.last
	}
	t.last = now
}

// refresh recomputes the violation predicate after a state change at time
// now.
func (t *Tracker) refresh() {
	v := math.Abs(t.src-t.rep) > float64(t.c)
	switch {
	case v && !t.inViol:
		t.violations++
		t.violStart = t.last
	case !v && t.inViol:
		if t.OnViolationEnd != nil {
			t.OnViolationEnd(t.violStart, t.last)
		}
	}
	t.inViol = v
}

// SourceUpdate records that the source value changed to v at time now.
func (t *Tracker) SourceUpdate(now sim.Time, v float64) {
	t.advance(now)
	t.src = v
	t.refresh()
}

// RepoUpdate records that the repository's copy changed to v at time now
// (an update was delivered).
func (t *Tracker) RepoUpdate(now sim.Time, v float64) {
	t.advance(now)
	t.rep = v
	t.refresh()
}

// ViolationTime returns the accumulated violation time up to `now`.
func (t *Tracker) ViolationTime(now sim.Time) sim.Time {
	extra := sim.Time(0)
	if t.inViol && now > t.last {
		extra = now - t.last
	}
	return t.violation + extra
}

// Violations returns how many distinct violation intervals have begun.
func (t *Tracker) Violations() int { return t.violations }

// Fidelity returns the fraction of [start, now] during which the tolerance
// held, in [0,1]. It returns 1 for an empty observation window.
func (t *Tracker) Fidelity(now sim.Time) float64 {
	span := now - t.start
	if span <= 0 {
		return 1
	}
	f := 1 - float64(t.ViolationTime(now))/float64(span)
	if f < 0 {
		return 0
	}
	return f
}

// LossPercent returns 100 * (1 - fidelity), the paper's plotted metric.
func (t *Tracker) LossPercent(now sim.Time) float64 {
	return 100 * (1 - t.Fidelity(now))
}
