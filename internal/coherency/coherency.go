// Package coherency implements the data coherency semantics of the paper
// (Section 1.1) and the dissemination conditions of Section 5: when a
// repository must forward an update to a dependent (Eqs. 3 and 7), and how
// much fidelity a consumer observed (the paper's key metric).
//
// A coherency requirement c is a value tolerance: the consumer's copy must
// satisfy |S(t) - R(t)| <= c at all times. Smaller c is more stringent.
package coherency

import (
	"fmt"
	"math"
)

// Requirement is a per-item, per-repository coherency tolerance in value
// units (dollars, for the stock traces). Zero means "every update".
type Requirement float64

// Stringer renders the tolerance as dollars-and-cents.
func (r Requirement) String() string { return fmt.Sprintf("$%.3f", float64(r)) }

// AtLeastAsStringentAs reports whether r is at least as stringent as other,
// i.e. r <= other. Equation (1) of the paper requires every d3t parent to
// be at least as stringent as each of its dependents.
func (r Requirement) AtLeastAsStringentAs(other Requirement) bool { return r <= other }

// Violated reports whether holding value `have` while the source holds
// `actual` violates the tolerance: |actual - have| > c. (Eq. 3 viewpoint.)
func (r Requirement) Violated(actual, have float64) bool {
	return math.Abs(actual-have) > float64(r)
}

// NeedsUpdate is Eq. (3): a new value v must be forwarded to a dependent
// whose last received value is last and whose tolerance is cDep when the
// difference exceeds the tolerance. Necessary for coherency, but not
// sufficient (see RisksMissedUpdate).
func NeedsUpdate(v, last float64, cDep Requirement) bool {
	return math.Abs(v-last) > float64(cDep)
}

// RisksMissedUpdate is Eq. (7): even if v itself does not violate the
// dependent's tolerance, withholding it is unsafe when a future source
// update could violate the dependent without violating us. With cSelf our
// own tolerance for the item, the hazard condition is
//
//	cDep - |v - last| < cSelf
//
// because the adversarial next source value can move |v' - v| up to cSelf
// without being delivered to us, landing |v' - last| as high as
// |v - last| + cSelf > cDep. The source calls this with cSelf = 0 (it sees
// every update exactly), for which the condition never fires.
func RisksMissedUpdate(v, last float64, cDep, cSelf Requirement) bool {
	return float64(cDep)-math.Abs(v-last) < float64(cSelf)
}

// ShouldForward combines Eqs. (3) and (7): the distributed dissemination
// algorithm of Section 5.1 forwards when either holds. Given the d3t
// invariant cSelf <= cDep, this is equivalent to
// |v - last| > cDep - cSelf.
func ShouldForward(v, last float64, cDep, cSelf Requirement) bool {
	return NeedsUpdate(v, last, cDep) || RisksMissedUpdate(v, last, cDep, cSelf)
}
