package coherency

import (
	"testing"

	"d3t/internal/sim"
)

func BenchmarkTracker(b *testing.B) {
	b.ReportAllocs()
	tr := NewTracker(0.05, 0, 50)
	now := sim.Time(0)
	v := 50.0
	for i := 0; i < b.N; i++ {
		now += sim.Second
		if i%3 == 0 {
			v += 0.03
			tr.SourceUpdate(now, v)
		} else {
			tr.RepoUpdate(now, v)
		}
	}
	_ = tr.Fidelity(now)
}

func BenchmarkShouldForward(b *testing.B) {
	var hits int
	for i := 0; i < b.N; i++ {
		if ShouldForward(float64(i%100)/100, 0.5, 0.3, 0.1) {
			hits++
		}
	}
	_ = hits
}
