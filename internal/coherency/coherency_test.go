package coherency

import (
	"math"
	"testing"
	"testing/quick"

	"d3t/internal/sim"
)

func TestRequirementStringency(t *testing.T) {
	if !Requirement(0.01).AtLeastAsStringentAs(0.5) {
		t.Error("0.01 should be at least as stringent as 0.5")
	}
	if Requirement(0.5).AtLeastAsStringentAs(0.01) {
		t.Error("0.5 should not be at least as stringent as 0.01")
	}
	if !Requirement(0.3).AtLeastAsStringentAs(0.3) {
		t.Error("equal tolerances are mutually at-least-as-stringent")
	}
}

func TestNeedsUpdate(t *testing.T) {
	cases := []struct {
		v, last float64
		c       Requirement
		want    bool
	}{
		{1.5, 1.0, 0.4, true},
		{1.5, 1.0, 0.5, false}, // exactly at tolerance: not violated
		{1.5, 1.0, 0.6, false},
		{0.5, 1.0, 0.4, true}, // symmetric in sign
		{1.0, 1.0, 0, false},  // no change never needs an update
		{1.0001, 1.0, 0, true},
	}
	for _, c := range cases {
		if got := NeedsUpdate(c.v, c.last, c.c); got != c.want {
			t.Errorf("NeedsUpdate(%v,%v,%v) = %v, want %v", c.v, c.last, c.c, got, c.want)
		}
	}
}

// TestFigure4Scenario walks the exact example of Figure 4: source values
// 1, 1.2, 1.4, 1.5 with c_p=0.3 (repository P) and c_q=0.5 (dependent Q).
// Eq. 3 alone would withhold 1.4 from Q; then 1.5 arrives at neither P nor
// Q (|1.5-1.4| <= c_p) and Q is left violated. Eq. 7 forces 1.4 out to Q.
func TestFigure4Scenario(t *testing.T) {
	const cp, cq = Requirement(0.3), Requirement(0.5)
	lastQ := 1.0

	// P receives 1.4 (because |1.4-1.0| > 0.3 at the source).
	v := 1.4
	if NeedsUpdate(v, lastQ, cq) {
		t.Fatal("Eq.3 should NOT require forwarding 1.4 to Q (|1.4-1.0| <= 0.5)")
	}
	if !RisksMissedUpdate(v, lastQ, cq, cp) {
		t.Fatal("Eq.7 must flag 1.4: a future update within c_p of 1.4 can violate Q")
	}
	if !ShouldForward(v, lastQ, cq, cp) {
		t.Fatal("distributed algorithm must forward 1.4 to Q")
	}

	// The adversarial next value 1.5: P does not receive it, but with 1.4
	// already at Q there is no violation (|1.5 - 1.4| <= 0.5).
	if cq.Violated(1.5, 1.4) {
		t.Fatal("after forwarding 1.4, source 1.5 must not violate Q")
	}
	// Without Eq. 7, Q would still hold 1.0 — and 1.5 violates: loss.
	// (The violation appears at source value 1.7 in the paper's figure; at
	// 1.5 the gap is exactly 0.5 which is still within tolerance.)
	if !cq.Violated(1.7, 1.0) {
		t.Fatal("source 1.7 against stale 1.0 must violate c_q=0.5")
	}
}

func TestSourceNeverRisksMissedUpdate(t *testing.T) {
	// The source has cSelf = 0: Eq. 7 reduces to Eq. 3 strictly
	// (cDep - |v-last| < 0 iff |v-last| > cDep).
	f := func(vRaw, lastRaw int16, cRaw uint8) bool {
		v, last := float64(vRaw)/100, float64(lastRaw)/100
		c := Requirement(float64(cRaw) / 100)
		return RisksMissedUpdate(v, last, c, 0) == NeedsUpdate(v, last, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestShouldForwardThreshold: with the tree invariant cSelf <= cDep,
// ShouldForward is exactly |v-last| > cDep - cSelf.
func TestShouldForwardThreshold(t *testing.T) {
	f := func(vRaw, lastRaw int16, a, b uint8) bool {
		v, last := float64(vRaw)/100, float64(lastRaw)/100
		cSelf, cDep := Requirement(float64(a)/100), Requirement(float64(a)/100+float64(b)/100)
		want := math.Abs(v-last) > float64(cDep)-float64(cSelf)
		return ShouldForward(v, last, cDep, cSelf) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTrackerBasicTimeline(t *testing.T) {
	// c=0.5, start at t=0 with value 1.0.
	tr := NewTracker(0.5, 0, 1.0)
	// t=10s: source jumps to 2.0 -> violated (|2-1| > 0.5).
	tr.SourceUpdate(10*sim.Second, 2.0)
	// t=14s: delivery of 2.0 -> coherent again. 4s violated.
	tr.RepoUpdate(14*sim.Second, 2.0)
	// t=20s: source moves to 2.4 -> within tolerance.
	tr.SourceUpdate(20*sim.Second, 2.4)
	// Observe at t=20s: violation was 4s of 20s -> fidelity 0.8.
	if got := tr.ViolationTime(20 * sim.Second); got != 4*sim.Second {
		t.Errorf("violation time %v, want 4s", got)
	}
	if got := tr.Fidelity(20 * sim.Second); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("fidelity %v, want 0.8", got)
	}
	if got := tr.LossPercent(20 * sim.Second); math.Abs(got-20) > 1e-9 {
		t.Errorf("loss %v%%, want 20%%", got)
	}
	if tr.Violations() != 1 {
		t.Errorf("violations %d, want 1", tr.Violations())
	}
}

func TestTrackerOpenViolationCountsToNow(t *testing.T) {
	tr := NewTracker(0.1, 0, 5.0)
	tr.SourceUpdate(10*sim.Second, 6.0)
	// Still violated at t=30s; ViolationTime must include the open tail.
	if got := tr.ViolationTime(30 * sim.Second); got != 20*sim.Second {
		t.Errorf("open violation time %v, want 20s", got)
	}
	if got := tr.Fidelity(30 * sim.Second); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("fidelity %v, want 1/3", got)
	}
}

func TestTrackerNeverViolatedPerfectFidelity(t *testing.T) {
	tr := NewTracker(1.0, 0, 10)
	for i := 1; i <= 100; i++ {
		tr.SourceUpdate(sim.Time(i)*sim.Second, 10+0.5*float64(i%3))
	}
	if f := tr.Fidelity(100 * sim.Second); f != 1 {
		t.Errorf("fidelity %v, want exactly 1", f)
	}
	if tr.Violations() != 0 {
		t.Errorf("violations %d, want 0", tr.Violations())
	}
}

func TestTrackerEmptyWindow(t *testing.T) {
	tr := NewTracker(0.5, 100, 1)
	if f := tr.Fidelity(100); f != 1 {
		t.Errorf("empty window fidelity %v, want 1", f)
	}
}

func TestTrackerPanicsOnTimeTravel(t *testing.T) {
	tr := NewTracker(0.5, 0, 1)
	tr.SourceUpdate(10, 2)
	defer func() {
		if recover() == nil {
			t.Error("tracker accepted an event in the past")
		}
	}()
	tr.SourceUpdate(5, 3)
}

// TestTrackerDeliveryClosesViolationProperty: delivering the exact source
// value always ends any violation.
func TestTrackerDeliveryClosesViolationProperty(t *testing.T) {
	f := func(moves []int8) bool {
		tr := NewTracker(0.25, 0, 0)
		now := sim.Time(0)
		v := 0.0
		for _, m := range moves {
			now += sim.Second
			v += float64(m) / 50
			tr.SourceUpdate(now, v)
			now += sim.Second
			tr.RepoUpdate(now, v) // perfect delivery
			if tr.inViol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReportAggregation(t *testing.T) {
	r := NewReport()
	r.Add(1, 1.0)
	r.Add(1, 0.5) // repo 1 mean: 0.75
	r.Add(2, 0.9) // repo 2 mean: 0.9
	got := r.SystemFidelity()
	want := (0.75 + 0.9) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("system fidelity %v, want %v", got, want)
	}
	if f, ok := r.RepoFidelity(1); !ok || math.Abs(f-0.75) > 1e-12 {
		t.Errorf("repo 1 fidelity %v,%v; want 0.75,true", f, ok)
	}
	if _, ok := r.RepoFidelity(99); ok {
		t.Error("unknown repo reported fidelity")
	}
	if worst, wf := r.WorstRepo(); worst != 1 || math.Abs(wf-0.75) > 1e-12 {
		t.Errorf("worst repo %d at %v, want 1 at 0.75", worst, wf)
	}
	if loss := r.LossPercent(); math.Abs(loss-100*(1-want)) > 1e-9 {
		t.Errorf("loss %v", loss)
	}
}

func TestReportEmpty(t *testing.T) {
	r := NewReport()
	if f := r.SystemFidelity(); f != 1 {
		t.Errorf("empty report fidelity %v, want 1", f)
	}
	if worst, wf := r.WorstRepo(); worst != -1 || wf != 1 {
		t.Errorf("empty report worst %d,%v; want -1,1", worst, wf)
	}
}

func TestReportPercentile(t *testing.T) {
	r := NewReport()
	for i := 1; i <= 10; i++ {
		r.Add(i, float64(i)/10) // fidelities 0.1 .. 1.0
	}
	if got := r.Percentile(0); got != 0.1 {
		t.Errorf("p0 = %v, want 0.1", got)
	}
	if got := r.Percentile(100); got != 1.0 {
		t.Errorf("p100 = %v, want 1.0", got)
	}
	if got := r.Percentile(50); math.Abs(got-0.5) > 0.11 {
		t.Errorf("p50 = %v, want about 0.5", got)
	}
	// Clamping.
	if got := r.Percentile(-5); got != 0.1 {
		t.Errorf("p(-5) = %v, want clamp to p0", got)
	}
	if got := r.Percentile(500); got != 1.0 {
		t.Errorf("p(500) = %v, want clamp to p100", got)
	}
	if got := NewReport().Percentile(50); got != 1 {
		t.Errorf("empty report percentile %v, want 1", got)
	}
}

func TestReportRepositoriesSorted(t *testing.T) {
	r := NewReport()
	for _, id := range []int{5, 1, 3} {
		r.Add(id, 1)
	}
	ids := r.Repositories()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Errorf("repositories %v, want [1 3 5]", ids)
	}
}
