package coherency

import (
	"fmt"
	"sort"
)

// Report aggregates fidelity the way Section 6.2 defines it: the fidelity
// of a repository is the mean fidelity over the items it stores; the
// fidelity of the system is the mean over repositories.
type Report struct {
	perRepo map[int][]float64 // repository id -> per-item fidelities
}

// NewReport returns an empty report.
func NewReport() *Report {
	return &Report{perRepo: make(map[int][]float64)}
}

// Add records the fidelity of one (repository, item) pair.
func (r *Report) Add(repo int, fidelity float64) {
	r.perRepo[repo] = append(r.perRepo[repo], fidelity)
}

// Merge folds another report's per-(repository, item) entries into this
// one, in the other report's sorted-repository order. Sharded runs track
// disjoint item partitions per shard and merge them into one report.
func (r *Report) Merge(o *Report) {
	for _, id := range o.Repositories() {
		r.perRepo[id] = append(r.perRepo[id], o.perRepo[id]...)
	}
}

// RepoFidelity returns the mean fidelity of one repository, and false if
// the repository recorded no items.
func (r *Report) RepoFidelity(repo int) (float64, bool) {
	items := r.perRepo[repo]
	if len(items) == 0 {
		return 0, false
	}
	return mean(items), true
}

// SystemFidelity returns the mean over repositories of the per-repository
// mean fidelity. An empty report has fidelity 1. Summation runs in sorted
// repository order so the result is bit-for-bit reproducible.
func (r *Report) SystemFidelity() float64 {
	if len(r.perRepo) == 0 {
		return 1
	}
	var sum float64
	for _, id := range r.Repositories() {
		sum += mean(r.perRepo[id])
	}
	return sum / float64(len(r.perRepo))
}

// LossPercent returns 100*(1 - SystemFidelity()), the paper's y-axis.
func (r *Report) LossPercent() float64 { return 100 * (1 - r.SystemFidelity()) }

// Repositories returns the repository ids present, sorted.
func (r *Report) Repositories() []int {
	ids := make([]int, 0, len(r.perRepo))
	for id := range r.perRepo {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// WorstRepo returns the repository with the lowest mean fidelity, or
// (-1, 1) for an empty report.
func (r *Report) WorstRepo() (repo int, fidelity float64) {
	repo, fidelity = -1, 1
	for _, id := range r.Repositories() {
		if f, ok := r.RepoFidelity(id); ok && (repo == -1 || f < fidelity) {
			repo, fidelity = id, f
		}
	}
	return repo, fidelity
}

// Percentile returns the p-th percentile (0 <= p <= 100) of per-repository
// fidelity, or 1 for an empty report. Tail percentiles expose repositories
// the system-wide mean hides — the deep or overloaded ones.
func (r *Report) Percentile(p float64) float64 {
	if len(r.perRepo) == 0 {
		return 1
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	vals := make([]float64, 0, len(r.perRepo))
	for _, id := range r.Repositories() {
		vals = append(vals, mean(r.perRepo[id]))
	}
	sort.Float64s(vals)
	idx := int(p / 100 * float64(len(vals)-1))
	return vals[idx]
}

// String summarizes the report.
func (r *Report) String() string {
	worst, wf := r.WorstRepo()
	return fmt.Sprintf("fidelity %.4f (loss %.2f%%), %d repositories, worst repo %d at %.4f",
		r.SystemFidelity(), r.LossPercent(), len(r.perRepo), worst, wf)
}

func mean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
