package core

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"d3t/internal/sim"
	"d3t/internal/trace"
)

// sweepConfigs is a small batch shaped like a real figure sweep: shared
// substrates, varying cooperation degree and coherency mix.
func sweepConfigs() []Config {
	var cfgs []Config
	for _, tval := range []float64{0, 100} {
		for _, coop := range []int{1, 4, 15} {
			cfg := tinyScale().base()
			cfg.StringentFrac = tval / 100
			cfg.CoopDegree = coop
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

func TestRunnerMatchesSequentialAndUncached(t *testing.T) {
	cfgs := sweepConfigs()

	// Ground truth: the uncached single-run path.
	want := make([]*Outcome, len(cfgs))
	for i, cfg := range cfgs {
		out, err := RunExperiment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}

	for _, workers := range []int{1, 8} {
		outs, err := NewRunner(workers).RunAll(cfgs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range outs {
			if !reflect.DeepEqual(outs[i], want[i]) {
				t.Errorf("workers=%d point %d diverges from the uncached run:\n got %v\nwant %v",
					workers, i, outs[i], want[i])
			}
		}
	}
}

func TestRunnerFigureOutputWorkerInvariant(t *testing.T) {
	render := func(workers int) string {
		s := tinyScale()
		s.Runner = NewRunner(workers)
		fig, err := Figure3(s)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := fig.Fprint(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if one, many := render(1), render(8); one != many {
		t.Errorf("figure output differs between workers=1 and workers=8:\n%s\nvs\n%s", one, many)
	}
}

func TestRunnerSharesSubstratesAcrossPoints(t *testing.T) {
	r := NewRunner(4)
	cfgs := sweepConfigs()
	if _, err := r.RunAll(cfgs); err != nil {
		t.Fatal(err)
	}
	st := r.CacheStats()
	if st.NetworkBuilds != 1 || st.TraceBuilds != 1 {
		t.Errorf("sweep with shared substrates built %d networks and %d trace sets, want 1 and 1",
			st.NetworkBuilds, st.TraceBuilds)
	}
	if want := len(cfgs) - 1; st.NetworkHits != want || st.TraceHits != want {
		t.Errorf("got %d network and %d trace hits, want %d each",
			st.NetworkHits, st.TraceHits, want)
	}
}

func TestRunnerAggregatesAllErrors(t *testing.T) {
	cfgs := sweepConfigs()
	cfgs[1].Builder = "mystery"
	cfgs[4].Protocol = "mystery"
	outs, err := NewRunner(3).RunAll(cfgs)
	if err == nil {
		t.Fatal("bad points did not fail the batch")
	}
	if outs != nil {
		t.Error("failed batch returned outcomes")
	}
	for _, frag := range []string{"point 1/", "point 4/", "mystery"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err, frag)
		}
	}
}

func TestRunnerProgress(t *testing.T) {
	cfgs := sweepConfigs()
	r := NewRunner(4)
	var events []Progress
	r.OnProgress = func(p Progress) { events = append(events, p) }
	if _, err := r.RunAll(cfgs); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(cfgs) {
		t.Fatalf("got %d progress events, want %d", len(events), len(cfgs))
	}
	seen := make(map[int]bool)
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != len(cfgs) {
			t.Errorf("event %d reports %d/%d, want %d/%d", i, ev.Done, ev.Total, i+1, len(cfgs))
		}
		if ev.Err != nil {
			t.Errorf("event %d carries error %v", i, ev.Err)
		}
		if seen[ev.Index] {
			t.Errorf("point %d reported twice", ev.Index)
		}
		seen[ev.Index] = true
	}
}

func TestWorkloadFamiliesEndToEnd(t *testing.T) {
	for _, name := range []string{"stocks", "bursty", "sensor", "pareto"} {
		cfg := tinyScale().base()
		cfg.Workload = name
		out, err := RunExperiment(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Fidelity <= 0 || out.Fidelity > 1 {
			t.Errorf("%s: implausible fidelity %v", name, out.Fidelity)
		}
		if out.Stats.Messages == 0 {
			t.Errorf("%s: no messages were sent", name)
		}
	}
}

func TestCSVWorkloadEndToEnd(t *testing.T) {
	cfg := tinyScale().base()
	traces := trace.GenerateSet(cfg.Items, cfg.Ticks, sim.Second, 99)
	path := filepath.Join(t.TempDir(), "traces.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f, traces...); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	cfg.Workload = "csv"
	cfg.WorkloadPath = path
	out, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Fidelity <= 0 || out.Fidelity > 1 {
		t.Errorf("implausible fidelity %v", out.Fidelity)
	}

	cfg.WorkloadPath = ""
	if err := cfg.Validate(); err == nil {
		t.Error("csv workload without a path validated")
	}
	cfg.Workload = "no-such-family"
	if err := cfg.Validate(); err == nil {
		t.Error("unknown workload validated")
	}
}
