package core

import (
	"fmt"
	"os"
	"path/filepath"

	"d3t/internal/resilience"
)

// This file holds the resilience evaluation: the two figures the paper's
// "evaluation in a real setting" future work calls for once failures
// enter the picture. Both run through the ordinary sweep runner, so they
// share substrate caches and the worker pool with every other figure.

// churnGrid is the x-axis of the fidelity-vs-failure-rate sweep: expected
// crashes per 100 trace ticks across the repository population.
var churnGrid = []float64{0, 0.5, 1, 2, 4}

// detectKs are the detection-window curves: a silent parent is declared
// dead after k heartbeat intervals.
var detectKs = []int{2, 3, 5}

// FigureFaultFidelity measures loss of fidelity as the failure rate
// grows, one curve per detection window. Every point runs the resilient
// runner — the zero-rate point is the fault-free baseline under the same
// heartbeat machinery, so the curves isolate the cost of churn itself.
func FigureFaultFidelity(s Scale) (*FigureResult, error) {
	var cfgs []Config
	for _, k := range detectKs {
		for _, rate := range churnGrid {
			cfg := s.base()
			cfg.CoopDegree = 0 // controlled cooperation
			cfg.Faults = fmt.Sprintf("churn:%g", rate)
			cfg.DetectTicks = k
			cfgs = append(cfgs, cfg)
		}
	}
	outs, err := s.runAll(cfgs)
	if err != nil {
		return nil, err
	}
	var series []Series
	i := 0
	for _, k := range detectKs {
		se := Series{Label: fmt.Sprintf("window=%d", k)}
		for _, rate := range churnGrid {
			se.X = append(se.X, rate)
			se.Y = append(se.Y, outs[i].LossPercent)
			i++
		}
		series = append(series, se)
	}
	return &FigureResult{
		ID:     "res-fidelity",
		Title:  "Fidelity under Repository Churn (loss vs failure rate)",
		XLabel: "Failure Rate (crashes per 100 ticks)",
		YLabel: "Loss of Fidelity (%)",
		Series: series,
		Notes: []string{
			"seeded Poisson churn; crashed repositories rejoin after an exponential downtime (mean 50 ticks)",
			"window = detection silence threshold in heartbeat intervals; smaller windows repair sooner",
		},
	}, nil
}

// FigureRecoveryLatency measures how long dependents stay severed after
// an interior-node crash, across the cooperation sweep. The detection
// window bounds recovery; the degree of cooperation shapes how many
// dependents each failure strands and how much spare capacity the
// backups have.
func FigureRecoveryLatency(s Scale) (*FigureResult, error) {
	crashTick := s.Ticks / 8
	if crashTick < 1 {
		crashTick = 1
	}
	var cfgs []Config
	for _, coop := range s.CoopGrid {
		cfg := s.base()
		cfg.CoopDegree = coop
		if coop > cfg.Repositories {
			cfg.CoopDegree = cfg.Repositories
		}
		cfg.Faults = fmt.Sprintf("crash:max@%d", crashTick)
		cfgs = append(cfgs, cfg)
	}
	outs, err := s.runAll(cfgs)
	if err != nil {
		return nil, err
	}
	mean := Series{Label: "mean recovery"}
	worst := Series{Label: "max recovery"}
	rehomed := Series{Label: "feeds re-homed"}
	for i, coop := range s.CoopGrid {
		r := outs[i].Resilience
		if r == nil {
			return nil, fmt.Errorf("core: res-recovery point %d ran without resilience stats", i)
		}
		mean.X = append(mean.X, float64(coop))
		mean.Y = append(mean.Y, r.MeanRecovery.Seconds())
		worst.X = append(worst.X, float64(coop))
		worst.Y = append(worst.Y, r.MaxRecovery.Seconds())
		rehomed.X = append(rehomed.X, float64(coop))
		rehomed.Y = append(rehomed.Y, float64(r.Rehomed))
	}
	window := resilience.Config{}.WithDefaults().Window()
	return &FigureResult{
		ID:     "res-recovery",
		Title:  "Recovery Latency after an Interior-Node Crash vs Degree of Cooperation",
		XLabel: "Degree of Cooperation",
		YLabel: "Recovery Latency (s) / Feeds Re-homed",
		Series: []Series{mean, worst, rehomed},
		Notes: []string{
			fmt.Sprintf("the busiest interior repository crashes at tick %d and never rejoins", crashTick),
			fmt.Sprintf("detection silence window = %v; recovery = crash-to-re-home time over all severed feeds", window),
		},
	}, nil
}

// snapGrid is the x-axis of the disk-recovery sweep: commits between
// snapshot rotations. Small intervals snapshot often and replay almost
// nothing; large intervals amortize snapshot writes but replay a long
// log tail at recovery.
var snapGrid = []int{1, 4, 16, 64, 256}

// FigureRecoveryDisk measures recovery from durable state: the busiest
// interior repository is killed (process death, in-memory state lost)
// and recovers from its write-ahead log, once per snapshot interval.
// Replay cost is the modeled snapshot-load plus per-record time, so the
// figure is deterministic — the trade it shows is how the snapshot
// interval bounds the log tail a recovering node must replay.
func FigureRecoveryDisk(s Scale) (*FigureResult, error) {
	crashTick := s.Ticks / 3
	if crashTick < 1 {
		crashTick = 1
	}
	down := s.Ticks / 8
	if down < 1 {
		down = 1
	}
	root, err := os.MkdirTemp("", "d3t-res-recovery-disk-")
	if err != nil {
		return nil, fmt.Errorf("core: res-recovery-disk scratch dir: %w", err)
	}
	defer os.RemoveAll(root)
	var cfgs []Config
	for _, every := range snapGrid {
		cfg := s.base()
		cfg.CoopDegree = 0 // controlled cooperation
		cfg.Faults = fmt.Sprintf("kill:max@%d+%d", crashTick, down)
		cfg.Durability = DurabilityConfig{
			Dir:           filepath.Join(root, fmt.Sprintf("snap%03d", every)),
			SnapshotEvery: every,
			Fsync:         "never", // scratch dirs; policy does not change what is measured
		}
		cfgs = append(cfgs, cfg)
	}
	outs, err := s.runAll(cfgs)
	if err != nil {
		return nil, err
	}
	replay := Series{Label: "replay time (ms)"}
	records := Series{Label: "records replayed"}
	for i, every := range snapGrid {
		r := outs[i].Resilience
		if r == nil {
			return nil, fmt.Errorf("core: res-recovery-disk point %d ran without resilience stats", i)
		}
		if r.DiskRecoveries == 0 {
			return nil, fmt.Errorf("core: res-recovery-disk point %d recovered nothing from disk", i)
		}
		replay.X = append(replay.X, float64(every))
		replay.Y = append(replay.Y, r.MeanReplay.Ms())
		records.X = append(records.X, float64(every))
		records.Y = append(records.Y, float64(r.ReplayedRecords))
	}
	cfg := resilience.Config{}.WithDefaults()
	return &FigureResult{
		ID:     "res-recovery-disk",
		Title:  "Disk Recovery Time vs Snapshot Interval (kill and recover from WAL)",
		XLabel: "Snapshot Interval (commits between rotations)",
		YLabel: "Replay Time (ms) / Records Replayed",
		Series: []Series{replay, records},
		Notes: []string{
			fmt.Sprintf("the busiest interior repository is killed at tick %d and recovers from its log %d ticks later", crashTick, down),
			fmt.Sprintf("modeled replay cost: %v snapshot load + %v per replayed record", cfg.SnapshotLoad, cfg.ReplayPerRecord),
			"recovered state is the pre-crash state bit-for-bit; the detection window still dominates end-to-end recovery",
		},
	}, nil
}
