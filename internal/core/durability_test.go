package core

import (
	"strings"
	"testing"
)

func TestRunExperimentWithDurability(t *testing.T) {
	cfg := tinyScale().base()
	cfg.Faults = "kill:max@60+80"
	cfg.Durability = DurabilityConfig{
		Dir:           t.TempDir(),
		SnapshotEvery: 64,
		Fsync:         "never",
	}
	out, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := out.Resilience
	if r == nil {
		t.Fatal("durable kill run returned no resilience stats")
	}
	if r.Kills != 1 {
		t.Errorf("kills = %d, want 1", r.Kills)
	}
	if r.DiskRecoveries != 1 {
		t.Errorf("disk recoveries = %d, want 1", r.DiskRecoveries)
	}
	if r.ReplayedRecords == 0 {
		t.Error("recovery replayed no records")
	}
	if r.MeanReplay <= 0 {
		t.Errorf("mean replay = %v, want > 0", r.MeanReplay)
	}
	if out.Fidelity <= 0 || out.Fidelity > 1 {
		t.Errorf("fidelity %v out of range", out.Fidelity)
	}
}

// Durability without faults still routes through the resilient runner —
// the WAL writes happen on the delivery path it owns — but must inject
// nothing.
func TestDurabilityAloneRoutesResilient(t *testing.T) {
	cfg := tinyScale().base()
	cfg.Durability = DurabilityConfig{Dir: t.TempDir(), Fsync: "never"}
	out, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := out.Resilience
	if r == nil {
		t.Fatal("durable run returned no resilience stats")
	}
	if r.Crashes != 0 || r.Kills != 0 || r.DiskRecoveries != 0 {
		t.Errorf("fault-free durable run injected faults: %+v", r)
	}
}

func TestConfigValidatesDurability(t *testing.T) {
	cfg := tinyScale().base()
	cfg.Durability = DurabilityConfig{Dir: "x", SnapshotEvery: -1}
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted negative snapshot interval")
	}
	cfg.Durability = DurabilityConfig{Dir: "x", Fsync: "sometimes"}
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted unknown fsync policy")
	}
	cfg.Durability = DurabilityConfig{Dir: "x", SnapshotEvery: 8, Fsync: "batch"}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate rejected good durability config: %v", err)
	}
	cfg.Faults = "kill:max@5+10"
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate rejected kill fault spec: %v", err)
	}
}

func TestFigureRecoveryDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps are slow")
	}
	fig, err := FigureRecoveryDisk(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "res-recovery-disk" {
		t.Errorf("figure ID = %q", fig.ID)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(fig.Series))
	}
	for _, se := range fig.Series {
		if len(se.X) != len(snapGrid) || len(se.Y) != len(snapGrid) {
			t.Errorf("series %q has %d/%d points, want %d", se.Label, len(se.X), len(se.Y), len(snapGrid))
		}
	}
	replay := fig.Series[0]
	if !strings.Contains(replay.Label, "replay") {
		t.Errorf("first series label = %q", replay.Label)
	}
	// More commits between snapshots means a longer log tail to replay.
	if replay.Y[len(replay.Y)-1] < replay.Y[0] {
		t.Errorf("replay time shrank as the snapshot interval grew: %v", replay.Y)
	}
}
