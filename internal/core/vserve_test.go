package core

import (
	"strings"
	"testing"
)

func TestRunExperimentVirtualSessions(t *testing.T) {
	cfg := tinyScale().base()
	cfg.VirtualSessions = 300
	cfg.SessionCap = 25
	cfg.SessionChurn = "churn:10"
	out, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := out.VServe
	if v == nil {
		t.Fatal("virtual run produced no VServe stats")
	}
	if out.Clients != nil || out.Queries != nil {
		t.Fatal("virtual run produced concrete client/query stats")
	}
	if v.Sessions != 300 {
		t.Fatalf("sessions = %d, want 300", v.Sessions)
	}
	if v.MeanFidelity <= 0 || v.MeanFidelity > 1 {
		t.Fatalf("mean fidelity %v out of range", v.MeanFidelity)
	}
	if v.Delivered == 0 {
		t.Fatal("no client deliveries")
	}
	if v.Departures == 0 {
		t.Fatal("churn plan executed no departures")
	}
	if v.BytesPerSession <= 0 || v.BytesPerSession > 512 {
		t.Fatalf("bytes/session = %.0f, want in (0, 512]", v.BytesPerSession)
	}
}

func TestRunExperimentVirtualFlash(t *testing.T) {
	cfg := tinyScale().base()
	cfg.VirtualSessions = 300
	cfg.SessionCap = 25
	cfg.Scenario = "flash:at=0.3,frac=0.5,burst=0.2"
	out, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := out.VServe
	if v == nil {
		t.Fatal("virtual run produced no VServe stats")
	}
	if v.Arrivals != 150 {
		t.Fatalf("arrivals = %d, want the whole crowd (150)", v.Arrivals)
	}
	if v.Resyncs == 0 {
		t.Fatal("flash arrivals triggered no resyncs")
	}
}

func TestRunExperimentVirtualRegional(t *testing.T) {
	cfg := tinyScale().base()
	cfg.VirtualSessions = 200
	cfg.Scenario = "regional:at=0.4,frac=0.3,rejoin=0.7"
	out, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Resilience == nil {
		t.Fatal("regional scenario did not route through the resilient runner")
	}
	v := out.VServe
	if v == nil {
		t.Fatal("virtual run produced no VServe stats")
	}
	if v.Migrations == 0 && v.Orphaned == 0 {
		t.Fatal("regional failure moved no sessions")
	}
}

func TestConfigVirtualValidation(t *testing.T) {
	base := tinyScale().base()
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"negative", func(c *Config) { c.VirtualSessions = -1 }, "negative virtual"},
		{"with-clients", func(c *Config) { c.VirtualSessions = 10; c.Clients = 10 }, "mutually exclusive"},
		{"with-queries", func(c *Config) { c.VirtualSessions = 10; c.Queries = []string{"avg(w=5;ITEM000)@0.05"} }, "mutually exclusive"},
		{"scenario-alone", func(c *Config) { c.Scenario = "flash" }, "needs VirtualSessions"},
		{"bad-scenario", func(c *Config) { c.VirtualSessions = 10; c.Scenario = "storm" }, "scenario"},
	} {
		cfg := base
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	cfg := base
	cfg.VirtualSessions = 10
	cfg.Scenario = "flash:at=0.3"
	cfg.SessionChurn = "churn:5"
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid virtual config rejected: %v", err)
	}
}

func TestVServeFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps are slow")
	}
	for _, id := range []string{"vserve-scale", "vserve-flash"} {
		fig, err := Figures()[id](tinyScale())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(fig.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		for _, row := range fig.Rows {
			if len(row) != len(fig.Header) {
				t.Fatalf("%s row width %d != header %d", id, len(row), len(fig.Header))
			}
		}
	}
}
