package core

import (
	"bytes"
	"testing"
)

// TestObsDisabledByteIdentical pins the observability layer's passivity
// contract at the top of the stack: every registry figure renders
// byte-identically whether or not each sweep point carries an
// observability tree. Observation must never influence a decision, a
// delay, or an iteration order.
func TestObsDisabledByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep in -short mode")
	}
	for id, fn := range Figures() {
		id, fn := id, fn
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			render := func(obsOn bool) []byte {
				s := tinyScale()
				s.Obs = obsOn
				fig, err := fn(s)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := fig.Fprint(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			off, on := render(false), render(true)
			if !bytes.Equal(off, on) {
				t.Errorf("figure %s differs with obs enabled:\n--- obs off ---\n%s\n--- obs on ---\n%s", id, off, on)
			}
		})
	}
}

// TestOutcomeObsSnapshot checks the plumbing from Config.Obs to
// Outcome.Obs: an armed run returns the tree's horizon snapshot with the
// dissemination layer's counters populated, and an unarmed run returns
// nil.
func TestOutcomeObsSnapshot(t *testing.T) {
	s := tinyScale()
	s.Obs = true
	out, err := RunExperiment(s.base())
	if err != nil {
		t.Fatal(err)
	}
	if out.Obs == nil {
		t.Fatal("armed run returned no obs snapshot")
	}
	if out.Obs.NowMicros == 0 {
		t.Error("snapshot not taken at the run horizon")
	}
	var received uint64
	for _, n := range out.Obs.Nodes {
		received += n.Counters.Received
	}
	if received == 0 {
		t.Error("no updates recorded across the overlay")
	}

	plain, err := RunExperiment(tinyScale().base())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Obs != nil {
		t.Errorf("unarmed run returned an obs snapshot: %+v", plain.Obs)
	}
}
