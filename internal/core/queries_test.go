package core

import (
	"testing"

	"d3t/internal/query"
)

// TestRunExperimentWithQueries runs a base case with a query catalogue
// and sanity-checks the query outcome end to end.
func TestRunExperimentWithQueries(t *testing.T) {
	s := tinyScale()
	cfg := s.base()
	cfg.Queries = []string{
		"avg(ITEM000,ITEM001,ITEM002)@0.1",
		"sum(ITEM003,ITEM004)@0.1",
		"diff(w=3;ITEM005,ITEM006)@0.2",
		"max(ITEM007,ITEM008)>20@0.1",
		"min(ITEM000,ITEM003)@0.2!client",
	}
	out, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := out.Queries
	if q == nil {
		t.Fatal("Outcome.Queries nil with Queries configured")
	}
	if q.Queries != len(cfg.Queries) || len(q.PerQuery) != len(cfg.Queries) {
		t.Fatalf("query count %d/%d, want %d", q.Queries, len(q.PerQuery), len(cfg.Queries))
	}
	if q.Evals == 0 || q.Recomputes == 0 {
		t.Errorf("no evaluation work recorded: evals=%d recomputes=%d", q.Evals, q.Recomputes)
	}
	if q.Recomputes > q.Evals {
		t.Errorf("recomputes %d exceed evals %d", q.Recomputes, q.Evals)
	}
	if q.MeanFidelity < 0 || q.MeanFidelity > 1 || q.WorstFidelity > q.MeanFidelity {
		t.Errorf("fidelity aggregates inconsistent: mean=%v worst=%v", q.MeanFidelity, q.WorstFidelity)
	}
	for _, pq := range q.PerQuery {
		spec, err := query.Parse(pq.Spec)
		if err != nil {
			t.Fatalf("query %s: unparseable spec %q: %v", pq.Name, pq.Spec, err)
		}
		// The union-bound floor is instant-wise airtight only for window-1
		// predicate-less queries: a window carries a past slot's error up
		// to w−1 ticks beyond the input violation that caused it, and a
		// predicate gates the result meter onto a subspan the input
		// fidelities are not measured over.
		if spec.Window == 1 && spec.Pred == nil && pq.Fidelity+1e-9 < pq.InputFloor {
			t.Errorf("query %s (%s): result fidelity %v below input floor %v",
				pq.Name, pq.Spec, pq.Fidelity, pq.InputFloor)
		}
		if pq.Repo == 0 {
			t.Errorf("query %s detached at horizon", pq.Name)
		}
	}
	// Clients stay disabled: the query layer must not fabricate a client
	// population.
	if out.Clients != nil {
		t.Error("Outcome.Clients set without Clients configured")
	}
}

// TestQueryFidelityFloor is the acceptance criterion of the query layer:
// across the cQ sweep of the query-fidelity figure, the mean result
// fidelity stays on or above the union-bound floor the measured input
// fidelities imply — the tolerance allocation provably converted
// coherent inputs into a coherent result.
func TestQueryFidelityFloor(t *testing.T) {
	fig, err := FigureQueryFidelity(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) < 2 {
		t.Fatalf("query-fidelity has %d series, want result + floor", len(fig.Series))
	}
	result, floor := fig.Series[0], fig.Series[1]
	if len(result.Y) != len(queryToleranceGrid) || len(floor.Y) != len(result.Y) {
		t.Fatalf("series lengths %d/%d, want %d", len(result.Y), len(floor.Y), len(queryToleranceGrid))
	}
	for j, cq := range queryToleranceGrid {
		if result.Y[j]+1e-9 < floor.Y[j] {
			t.Errorf("cQ=%v: result fidelity %v below input floor %v", cq, result.Y[j], floor.Y[j])
		}
	}
}

// TestQueryCostPlacement checks the cost figure's defining shape: the
// repository-side placement never ships more last-hop messages than the
// client-side placement — a query's result stream is a (predicate- and
// change-gated) function of its input stream, so it can only be smaller.
func TestQueryCostPlacement(t *testing.T) {
	fig, err := FigureQueryCost(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("query-cost has %d series, want 2", len(fig.Series))
	}
	repo, client := fig.Series[0], fig.Series[1]
	for j := range repo.Y {
		if repo.Y[j] > client.Y[j] {
			t.Errorf("cQ=%v: repo placement cost %v exceeds client placement %v",
				repo.X[j], repo.Y[j], client.Y[j])
		}
	}
}
