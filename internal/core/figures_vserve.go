package core

import (
	"fmt"
	"math"

	"d3t/internal/obs"
)

// This file holds the virtual-fleet evaluation: the serving layer pushed
// to populations the concrete per-object fleet cannot hold. Sessions are
// compact per-shard array state (internal/vserve), placement goes through
// the shared nearest-k index with consistent-hash overflow, and the
// figures report what an operator would watch — client-observed fidelity,
// p99 redirect latency from the obs histograms, and resident bytes per
// session.

// vserveScaleFactors size the population as multiples of the repository
// count — the scale figure's rows. The largest point at paper scale
// (100 repositories) is one million sessions in one process.
var vserveScaleFactors = []int{10, 100, 1000, 10000}

// vserveTickBudget bounds sessions x ticks per point so the sweep's cost
// stays roughly flat as the population grows; fidelity is time-normalized
// so a shorter horizon remains comparable.
const vserveTickBudget = 2e8

// vserveScaleConfigs builds the scale sweep's configurations plus the
// per-point observability trees the redirect-latency quantiles come from.
func vserveScaleConfigs(s Scale) ([]Config, []*obs.Tree) {
	var cfgs []Config
	var trees []*obs.Tree
	for _, factor := range vserveScaleFactors {
		cfg := s.base()
		cfg.CoopDegree = 0                                  // controlled cooperation
		cfg.Clients, cfg.Queries, cfg.Scenario = 0, nil, "" // this figure owns the population
		cfg.VirtualSessions = factor * cfg.Repositories
		// Half a standard deviation of headroom over the mean
		// per-repository load (uniform homes ~ binomial, sigma ~ sqrt of
		// the mean): a sizable minority of homes overflow at every
		// population, exercising redirects and the overflow ring.
		cfg.SessionCap = factor + int(math.Sqrt(float64(factor))/2) + 1
		if max := int(vserveTickBudget) / cfg.VirtualSessions; cfg.Ticks > max {
			cfg.Ticks = max
		}
		cfg.Obs = obs.NewTree()
		trees = append(trees, cfg.Obs)
		cfgs = append(cfgs, cfg)
	}
	return cfgs, trees
}

// FigureVServeScale grows the virtual session population to a million
// sessions in one process and tabulates the serving layer's behaviour at
// each order of magnitude: client-observed loss, redirect work and its
// p99 latency, and the measured resident session-state footprint.
func FigureVServeScale(s Scale) (*FigureResult, error) {
	cfgs, trees := vserveScaleConfigs(s)
	outs, err := s.runAll(cfgs)
	if err != nil {
		return nil, err
	}
	rows := make([][]string, 0, len(outs))
	for i, out := range outs {
		v := out.VServe
		if v == nil {
			return nil, fmt.Errorf("core: vserve-scale point %d ran without virtual stats", i)
		}
		_, _, redirect, _ := trees[i].Merged()
		rows = append(rows, []string{
			fmt.Sprintf("%d", v.Sessions),
			fmt.Sprintf("%d", cfgs[i].Ticks),
			fmt.Sprintf("%.2f", v.LossPercent),
			fmt.Sprintf("%d", v.Redirects),
			fmt.Sprintf("%.2f", redirect.P99Ms),
			fmt.Sprintf("%.0f", v.BytesPerSession),
			fmt.Sprintf("%d", v.Shards),
		})
	}
	return &FigureResult{
		ID:     "vserve-scale",
		Title:  "Virtual Fleet at Scale: client fidelity, redirect latency and footprint vs population",
		Header: []string{"sessions", "ticks", "client loss %", "redirects", "redirect p99 ms", "bytes/session", "shards"},
		Rows:   rows,
		Notes: []string{
			"sessions are compact per-shard array state; placement is the shared nearest-k index with a consistent-hash overflow ring under the cap",
			"the session cap leaves half a standard deviation of headroom over the mean per-repository load, so the busiest homes overflow and redirect",
			"the horizon shrinks as the population grows to keep sweep cost flat; fidelity is time-normalized",
		},
	}, nil
}

// vserveFlashBursts are the burst widths (fraction of the horizon the
// arrival wave is spread over) — sharper bursts stress admission,
// placement and resync harder.
var vserveFlashBursts = []float64{0.5, 0.2, 0.05}

// FigureVServeFlash slams a flash crowd onto the hottest item: half the
// registered population starts detached and arrives in a Pareto burst,
// every arrival resyncing against its repository's current copies. The
// table reports the serving layer's behaviour as the burst sharpens.
func FigureVServeFlash(s Scale) (*FigureResult, error) {
	var cfgs []Config
	var trees []*obs.Tree
	for _, burst := range vserveFlashBursts {
		cfg := s.base()
		cfg.CoopDegree = 0                // controlled cooperation
		cfg.Clients, cfg.Queries = 0, nil // this figure owns the population
		cfg.VirtualSessions = 20 * cfg.Repositories
		// The steady base is half the population (mean load 10/repo); the
		// crowd doubles it, so a cap of 22 makes the burst overflow the
		// busiest homes through the ring.
		cfg.SessionCap = 22
		cfg.Scenario = fmt.Sprintf("flash:at=0.3,frac=0.5,burst=%g", burst)
		cfg.Obs = obs.NewTree()
		trees = append(trees, cfg.Obs)
		cfgs = append(cfgs, cfg)
	}
	outs, err := s.runAll(cfgs)
	if err != nil {
		return nil, err
	}
	rows := make([][]string, 0, len(outs))
	for i, out := range outs {
		v := out.VServe
		if v == nil {
			return nil, fmt.Errorf("core: vserve-flash point %d ran without virtual stats", i)
		}
		_, _, redirect, _ := trees[i].Merged()
		rows = append(rows, []string{
			fmt.Sprintf("%g", vserveFlashBursts[i]),
			fmt.Sprintf("%d", v.Sessions),
			fmt.Sprintf("%d", v.Arrivals),
			fmt.Sprintf("%.2f", v.LossPercent),
			fmt.Sprintf("%.4f", v.WorstFidelity),
			fmt.Sprintf("%d", v.Redirects),
			fmt.Sprintf("%.2f", redirect.P99Ms),
			fmt.Sprintf("%d", v.Resyncs),
		})
	}
	return &FigureResult{
		ID:     "vserve-flash",
		Title:  "Flash Crowd onto the Hot Item: serving-layer behaviour vs burst sharpness",
		Header: []string{"burst", "sessions", "arrivals", "client loss %", "worst fidelity", "redirects", "redirect p99 ms", "resyncs"},
		Rows:   rows,
		Notes: []string{
			"half the registered population starts detached and arrives in a Pareto burst on the hot item (flash:at=0.3,frac=0.5)",
			"the overlay is provisioned for the registered demand, so the hot item disseminates before the burst lands",
			"every arrival resyncs against its repository's current copies; sharper bursts concentrate that work",
		},
	}, nil
}
