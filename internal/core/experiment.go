package core

import (
	"fmt"
	"sort"

	"d3t/internal/dissemination"
	"d3t/internal/ingest"
	"d3t/internal/netsim"
	"d3t/internal/obs"
	"d3t/internal/repository"
	"d3t/internal/resilience"
	"d3t/internal/serve"
	"d3t/internal/sim"
	"d3t/internal/trace"
	"d3t/internal/tree"
	"d3t/internal/vserve"
)

// Outcome is the measured result of one simulation run.
type Outcome struct {
	// Config is the configuration that produced the outcome.
	Config Config
	// Fidelity is the system fidelity in [0,1]; LossPercent is
	// 100*(1-Fidelity), the paper's y-axis.
	Fidelity    float64
	LossPercent float64
	// CoopDegreeUsed is the effective per-node dependent cap (after
	// controlled cooperation, if it was selected).
	CoopDegreeUsed int
	// AvgCommDelay is the measured mean endpoint-to-endpoint delay.
	AvgCommDelay sim.Time
	// Tree summarizes the constructed overlay's shape.
	Tree tree.Metrics
	// Stats carries message/check counters from the dissemination run.
	Stats dissemination.Stats
	// SourceUtilization is the busy fraction of the source's processor.
	SourceUtilization float64
	// Resilience carries fault-injection and repair counters; nil when the
	// run had Faults disabled.
	Resilience *resilience.Stats
	// Clients carries the serving layer's outcome — client-observed
	// fidelity, redirect/migration counters, per-session fan-out work;
	// nil when the run had Clients disabled.
	Clients *serve.Stats
	// VServe carries the virtual serving fleet's outcome — the same
	// serving-layer stats as Clients plus shard count and the measured
	// resident bytes per session; nil when the run had VirtualSessions
	// disabled.
	VServe *vserve.Stats
	// Queries carries the derived-data query layer's outcome —
	// result-level fidelity against the allocation's union-bound floor,
	// eval/recompute counters and per-placement message costs; nil when
	// the run had Queries disabled.
	Queries *serve.QueryStats
	// Ingest carries the sharded/batched ingest pipeline's throughput and
	// coalescing stats; nil when the run used the plain sequential path
	// (Shards <= 1 and BatchTicks <= 1, or a run the ingest layer does
	// not apply to).
	Ingest *ingest.Stats
	// Obs is the observability tree's snapshot at the run's horizon; nil
	// when the run had Config.Obs unset.
	Obs *obs.TreeSnapshot
}

// String renders the outcome as a one-line summary.
func (o *Outcome) String() string {
	return fmt.Sprintf("loss=%.2f%% coop=%d msgs=%d srcChecks=%d srcUtil=%.2f %v",
		o.LossPercent, o.CoopDegreeUsed, o.Stats.Messages, o.Stats.SourceChecks,
		o.SourceUtilization, o.Tree)
}

// RunExperiment executes one full simulation: generate workload and
// network, derive the cooperation degree, construct the overlay, and push
// the traces through it.
func RunExperiment(cfg Config) (*Outcome, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net, err := cfg.network()
	if err != nil {
		return nil, err
	}
	traces, err := cfg.traces()
	if err != nil {
		return nil, err
	}
	return runExperimentWith(cfg, net, traces)
}

// runExperimentWith runs the simulation over pre-built substrates. The
// network and traces are only read, so sweep runners pass cached copies
// shared across concurrent calls; everything mutable (repositories, the
// overlay, trackers) is created here, per run.
func runExperimentWith(cfg Config, net *netsim.Network, traces []*trace.Trace) (*Outcome, error) {
	// With a client population configured, repository needs come from the
	// placed clients (Section 1.2) instead of the subscription workload:
	// each client session attaches to the nearest repository under the
	// session cap, and the repository's requirement for an item becomes
	// the most stringent across its clients.
	var repos []*repository.Repository
	var fleet *serve.Fleet
	var vfleet *vserve.Fleet
	var scenFaults *resilience.Plan
	if cfg.VirtualEnabled() {
		// The virtual serving fleet: the same serving semantics as the
		// concrete fleet below over compact per-shard session state, for
		// populations the concrete fleet cannot hold. Needs derive from
		// the registered virtual population; scenario repository faults
		// route the run through the resilient runner.
		repos = cfg.bareRepositories()
		plan, err := cfg.sessionPlan()
		if err != nil {
			return nil, err
		}
		scen, err := cfg.scenarioPlan()
		if err != nil {
			return nil, err
		}
		interval := cfg.TickInterval
		if interval <= 0 {
			interval = sim.Second
		}
		vopts := vserve.Options{
			Cap: cfg.SessionCap, Plan: plan, Scenario: scen,
			Interval: interval, Obs: cfg.Obs,
		}
		if cfg.SessionCap > 0 {
			// Under a cap, overflow placement hashes onto the consistent
			// ring instead of walking ever-longer nearest-first prefixes.
			vopts.RingSlots = 16
		}
		vfleet, err = vserve.NewFleet(net, repos, vopts)
		if err != nil {
			return nil, err
		}
		if err := vfleet.Populate(vserve.Synthetic{
			Sessions:       cfg.VirtualSessions,
			Items:          itemCatalogue(traces),
			ItemsPerClient: cfg.ItemsPerClient,
			StringentFrac:  cfg.StringentFrac,
			Seed:           cfg.Seed + 13,
		}); err != nil {
			return nil, err
		}
		vfleet.DeriveNeeds()
		if scen != nil && len(scen.Faults) > 0 {
			p := &resilience.Plan{Spec: scen.Spec}
			for _, ft := range scen.Faults {
				rf := resilience.Fault{Node: repository.ID(ft.Repo), At: sim.Time(ft.Tick) * interval}
				if ft.RejoinTick >= 0 {
					rf.RejoinAt = sim.Time(ft.RejoinTick) * interval
				}
				p.Faults = append(p.Faults, rf)
			}
			scenFaults = p
		}
	} else if cfg.ClientsEnabled() || cfg.QueriesEnabled() {
		repos = cfg.bareRepositories()
		catalogue := itemCatalogue(traces)
		var clients []*repository.Client
		if cfg.ClientsEnabled() {
			var err error
			clients, err = cfg.clients(catalogue)
			if err != nil {
				return nil, err
			}
		}
		plan, err := cfg.sessionPlan()
		if err != nil {
			return nil, err
		}
		queries, err := cfg.queries()
		if err != nil {
			return nil, err
		}
		known := make(map[string]bool, len(catalogue))
		for _, x := range catalogue {
			known[x] = true
		}
		for _, q := range queries {
			for _, x := range q.Items {
				if !known[x] {
					return nil, fmt.Errorf("core: query %q watches unknown item %q", q.Name, x)
				}
			}
		}
		interval := cfg.TickInterval
		if interval <= 0 {
			interval = sim.Second
		}
		fleet, err = serve.NewFleet(net, repos, serve.Options{
			Cap: cfg.SessionCap, Plan: plan, Obs: cfg.Obs,
			Queries: queries, Interval: interval,
		})
		if err != nil {
			return nil, err
		}
		if err := fleet.AttachAll(clients); err != nil {
			return nil, err
		}
		// Query sessions fold into need derivation as synthetic clients:
		// the overlay then provably serves every query input at least as
		// stringently as the tolerance allocation demands.
		qclients, err := fleet.AttachQueries()
		if err != nil {
			return nil, err
		}
		if err := repository.DeriveNeeds(repos, append(append([]*repository.Client(nil), clients...), qclients...)); err != nil {
			return nil, err
		}
	} else {
		repos = cfg.repositories(traces)
	}

	avgComm := net.AvgDelay()
	coop := cfg.CoopDegree
	if coop == 0 {
		comp := cfg.compDelay()
		if comp < 0 {
			comp = 0
		}
		coop = tree.ControlledCoopDegree(avgComm, comp, cfg.Repositories, cfg.CoopK)
	}
	for _, r := range repos {
		r.CoopLimit = coop
	}

	builder, err := cfg.builder()
	if err != nil {
		return nil, err
	}
	overlay, err := builder.Build(net, repos, coop)
	if err != nil {
		return nil, err
	}

	protocol, err := cfg.protocol()
	if err != nil {
		return nil, err
	}
	pushCfg := dissemination.Config{
		CompDelay: cfg.compDelay(),
		Queueing:  cfg.Queueing,
		Obs:       cfg.Obs,
	}
	if fleet != nil || vfleet != nil {
		// The serving layer is fed by the initial values and the run's
		// observable events; the overlay is built, so serving sets are
		// final and admission checks see them.
		initial := make(map[string]float64, len(traces))
		for _, tr := range traces {
			if tr.Len() > 0 {
				initial[tr.Item] = tr.Ticks[0].Value
			}
		}
		if fleet != nil {
			fleet.Seed(initial)
			pushCfg.Observer = fleet
		} else {
			vfleet.Seed(initial)
			pushCfg.Observer = vfleet
		}
	}
	var res *dissemination.Result
	var resStats *resilience.Stats
	var ingestStats *ingest.Stats
	if cfg.IngestEnabled() {
		// The sharded/batched ingest runner: coalesce the trace set,
		// partition the items across parallel sub-simulations, merge. The
		// plain path below stays untouched so Shards <= 1 && BatchTicks
		// <= 1 remains byte-identical to it.
		res, ingestStats, _, err = ingest.RunSim(overlay, traces, func() dissemination.Protocol {
			p, perr := cfg.protocol()
			if perr != nil {
				panic(perr) // cfg.Validate() vetted the name above
			}
			return p
		}, pushCfg, cfg.ingestConfig())
		if err != nil {
			return nil, err
		}
	} else if cfg.FaultsEnabled() || !scenFaults.Empty() || cfg.Durability.Enabled() {
		// Route through the resilient runner: same fidelity machinery,
		// plus fault injection, detection and backup-parent repair.
		// Scenario repository faults (regional failures) fold into the
		// configured fault plan.
		plan, err := cfg.faultPlan()
		if err != nil {
			return nil, err
		}
		if !scenFaults.Empty() {
			if plan.Empty() {
				plan = scenFaults
			} else {
				merged := &resilience.Plan{Spec: plan.Spec + "+" + scenFaults.Spec}
				merged.Faults = append(append(merged.Faults, plan.Faults...), scenFaults.Faults...)
				sort.SliceStable(merged.Faults, func(i, j int) bool {
					return merged.Faults[i].At < merged.Faults[j].At
				})
				plan = merged
			}
		}
		lela, _ := builder.(*tree.LeLA) // non-LeLA builders repair with defaults
		resCfg := resilience.Config{
			Push:       pushCfg,
			DetectK:    cfg.DetectTicks,
			Durability: cfg.Durability.walOptions(),
		}
		if fleet != nil {
			resCfg.Observer = fleet
		} else if vfleet != nil {
			resCfg.Observer = vfleet
		}
		rr, err := resilience.Run(overlay, lela, traces, protocol, resCfg, plan)
		if err != nil {
			return nil, err
		}
		res, resStats = rr.Result, &rr.Resilience
	} else {
		res, err = dissemination.Run(overlay, traces, protocol, pushCfg)
		if err != nil {
			return nil, err
		}
	}

	var clientStats *serve.Stats
	var queryStats *serve.QueryStats
	var vserveStats *vserve.Stats
	if fleet != nil {
		st := fleet.Finalize(res.Horizon)
		if cfg.ClientsEnabled() {
			clientStats = &st
		}
		if cfg.QueriesEnabled() {
			qst := fleet.FinalizeQueries(res.Horizon)
			queryStats = &qst
		}
	}
	if vfleet != nil {
		st := vfleet.Finalize(res.Horizon)
		vserveStats = &st
	}

	var obsSnap *obs.TreeSnapshot
	if cfg.Obs != nil {
		s := cfg.Obs.Snapshot(int64(res.Horizon))
		obsSnap = &s
	}

	return &Outcome{
		Config:            cfg,
		Fidelity:          res.Report.SystemFidelity(),
		LossPercent:       res.Report.LossPercent(),
		CoopDegreeUsed:    coop,
		AvgCommDelay:      avgComm,
		Tree:              overlay.ComputeMetrics(),
		Stats:             res.Stats,
		SourceUtilization: res.SourceUtilization,
		Resilience:        resStats,
		Clients:           clientStats,
		VServe:            vserveStats,
		Queries:           queryStats,
		Ingest:            ingestStats,
		Obs:               obsSnap,
	}, nil
}
