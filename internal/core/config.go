// Package core assembles the substrates — traces, network, overlay
// construction and dissemination — into end-to-end experiments, and
// provides one preset per table and figure of the paper's evaluation
// (Section 6) so each can be regenerated with a single call.
package core

import (
	"fmt"

	"d3t/internal/dissemination"
	"d3t/internal/ingest"
	"d3t/internal/netsim"
	"d3t/internal/obs"
	"d3t/internal/query"
	"d3t/internal/repository"
	"d3t/internal/resilience"
	"d3t/internal/serve"
	"d3t/internal/sim"
	"d3t/internal/trace"
	"d3t/internal/tree"
	"d3t/internal/wal"
)

// Config fully describes one simulation run. The zero value is not valid;
// start from Default() and override.
type Config struct {
	// Repositories and Routers size the physical network (paper base
	// case: 100 and 600).
	Repositories int
	Routers      int

	// Items, Ticks and TickInterval size the workload (paper: 100 traces
	// of 10000 one-second polls).
	Items        int
	Ticks        int
	TickInterval sim.Time

	// Workload names the trace family: "stocks" (default, the paper's
	// bounded random walks), "bursty", "sensor", "pareto" or "csv". See
	// trace.WorkloadNames for the full registry.
	Workload string
	// WorkloadPath is the recorded trace file replayed when Workload is
	// "csv"; synthetic families ignore it.
	WorkloadPath string

	// SubscribeProb is each repository's per-item interest probability
	// (paper: 0.5). StringentFrac is T: the fraction of subscribed items
	// with stringent tolerances.
	SubscribeProb float64
	StringentFrac float64

	// CoopDegree caps each node's dependents. Zero selects controlled
	// cooperation (Eq. 2) with constant CoopK.
	CoopDegree int
	CoopK      int

	// Builder names the overlay construction algorithm: "lela" (default),
	// "random", "greedy-closest" or "direct".
	Builder string
	// PPercent is LeLA's load-controller admission band (default 5).
	PPercent float64
	// Preference is LeLA's preference factor, "P1" (default) or "P2".
	Preference string

	// Protocol names the dissemination algorithm: "distributed"
	// (default), "centralized", "naive-eq3" or "all-push".
	Protocol string

	// CompDelayMs is the per-dissemination computational delay (default
	// 12.5; negative means exactly zero).
	CompDelayMs float64
	// CommDelayMs, when positive, replaces the generated topology with a
	// uniform all-pairs delay — the delay-sweep figures use it. Zero
	// keeps the Pareto-delay random topology.
	CommDelayMs float64
	// LinkDelayMinMs/LinkDelayMeanMs parameterize the generated topology
	// (defaults 2 and 15, per the paper).
	LinkDelayMinMs  float64
	LinkDelayMeanMs float64
	// Queueing selects the strict serial-server node model instead of the
	// paper's per-update latency model (see dissemination.Config).
	Queueing bool

	// Clients enables the client-serving layer: the number of end-user
	// sessions attached to the repositories (0 disables it). With clients
	// set, repository needs are derived from the placed client population
	// (Section 1.2) instead of the per-repository subscription workload,
	// updates fan out from repositories to sessions through per-client
	// coherency filters, and the outcome carries client-observed fidelity
	// plus redirect/migration counters.
	Clients int
	// ItemsPerClient is the mean watch-list size per client (default 3).
	ItemsPerClient int
	// SessionCap caps the sessions one repository serves (0 = unlimited);
	// a client whose nearest repository is full redirects to the next
	// candidate.
	SessionCap int
	// SessionChurn schedules session arrivals/departures (same grammar as
	// Faults, over the session population — see serve.ParseSessionPlan).
	SessionChurn string

	// VirtualSessions enables the virtual serving fleet (internal/vserve):
	// the number of synthetic end-user sessions kept as compact per-shard
	// struct-of-arrays state instead of one Session object each, sharing
	// the concrete fleet's placement, filtering and fidelity semantics
	// (the two are parity-tested). Use it to push the serving layer to
	// populations the concrete fleet cannot hold — millions of sessions
	// in one process. Mutually exclusive with Clients and Queries; reuses
	// ItemsPerClient, StringentFrac, SessionCap and SessionChurn. With a
	// SessionCap set, overflow placement goes through the index's
	// consistent-hash ring instead of long nearest-first walks.
	VirtualSessions int
	// Scenario schedules scenario-driven churn over the virtual
	// population (see trace.ParseScenario): "flash:at=0.3,frac=0.5,..."
	// creates a crowd detached and bursts it onto the hottest item,
	// "regional:..." fails a contiguous repository region (routing the
	// run through the resilient runner), "diurnal:..." runs load waves.
	// Empty or "none" disables it. Requires VirtualSessions > 0.
	Scenario string

	// Queries is the continuous derived-data query catalogue: each spec
	// (see query.Parse; e.g. "avg(w=5;ITEM000,ITEM001)@0.05") becomes a
	// query session evaluated at its serving repository, its per-input
	// tolerances derived from the result tolerance by the allocation
	// rules and folded into DeriveNeeds alongside any client population.
	// The outcome then carries Outcome.Queries. Empty disables the layer
	// (and leaves every figure byte-identical to a build without it).
	Queries []string

	// Shards hash-partitions the data items across a parallel ingest
	// worker pool (internal/ingest): each shard runs the disjoint item
	// partition's dissemination independently, which the paper's per-item
	// trees make exact. Values <= 1 keep the sequential path (and its
	// byte-identical figures). Sharding applies to plain runs only: the
	// queueing node model, fault injection and the client-serving layer
	// couple items through shared state, so those runs ignore it.
	Shards int
	// BatchTicks coalesces each item's updates over windows of this many
	// source ticks before dissemination: within a window only the newest
	// value moves. Values <= 1 disable batching. Like Shards it applies
	// to plain runs only.
	BatchTicks int

	// Faults selects a failure-injection plan (see resilience.ParsePlan):
	// "" or "none" runs fault-free through the plain dissemination runner,
	// "crash:<node|max>@<tick>[+<downticks>]" injects one crash (with
	// optional rejoin), "kill:<node|max>@<tick>[+<downticks>]" injects a
	// process death whose rejoin recovers from disk when Durability is
	// set (cold when it is not), "churn:<rate>[:<meandown>]" injects
	// seeded Poisson churn. Any other value routes the run through the
	// resilient runner, which adds heartbeats, failure detection and
	// backup-parent repair.
	Faults string
	// DetectTicks overrides the failure-detection silence window, in
	// heartbeat intervals (0 keeps the resilience default of 3). Only
	// meaningful with Faults set.
	DetectTicks int

	// Durability gives every repository a write-ahead log with periodic
	// snapshots (internal/wal), so kill: faults recover from disk and a
	// rerun over the same directory is a full-cluster restart. Setting it
	// routes the run through the resilient runner (which owns the
	// crash/recovery machinery) even when Faults is empty. The zero value
	// disables it and leaves every figure byte-identical.
	Durability DurabilityConfig

	// Obs, when set, collects per-node observability — decision counters,
	// latency histograms, load/edge-delay EWMAs and sampled update traces
	// — across every layer the run touches (dissemination, ingest,
	// serving). Observation is passive: a run produces byte-identical
	// results with or without it (TestObsDisabledByteIdentical). The
	// tree's snapshot at the run's horizon lands in Outcome.Obs.
	Obs *obs.Tree `json:"-"`

	// Seed makes the whole run deterministic.
	Seed int64
}

// Default returns the paper's base-case configuration at full scale.
func Default() Config {
	return Config{
		Repositories:  100,
		Routers:       600,
		Items:         100,
		Ticks:         10000,
		TickInterval:  sim.Second,
		SubscribeProb: 0.5,
		StringentFrac: 0.5,
		CoopDegree:    0, // controlled cooperation
		CoopK:         tree.DefaultCoopK,
		Builder:       "lela",
		PPercent:      5,
		Preference:    "P1",
		Protocol:      "distributed",
		CompDelayMs:   12.5,
		Seed:          1,
	}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Repositories < 1:
		return fmt.Errorf("core: need at least one repository, got %d", c.Repositories)
	case c.Items < 1:
		return fmt.Errorf("core: need at least one item, got %d", c.Items)
	case c.Ticks < 2:
		return fmt.Errorf("core: need at least two ticks, got %d", c.Ticks)
	case c.SubscribeProb <= 0 || c.SubscribeProb > 1:
		return fmt.Errorf("core: subscribe probability %v outside (0,1]", c.SubscribeProb)
	case c.StringentFrac < 0 || c.StringentFrac > 1:
		return fmt.Errorf("core: stringent fraction %v outside [0,1]", c.StringentFrac)
	case c.CoopDegree < 0:
		return fmt.Errorf("core: negative cooperation degree %d", c.CoopDegree)
	case c.Shards < 0:
		return fmt.Errorf("core: negative shard count %d", c.Shards)
	case c.BatchTicks < 0:
		return fmt.Errorf("core: negative batch window %d", c.BatchTicks)
	}
	if _, err := c.builder(); err != nil {
		return err
	}
	if _, err := c.protocol(); err != nil {
		return err
	}
	if _, err := trace.LookupWorkload(c.Workload); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.Workload == "csv" && c.WorkloadPath == "" {
		return fmt.Errorf("core: csv workload needs WorkloadPath")
	}
	if _, err := c.faultPlan(); err != nil {
		return err
	}
	if c.Clients < 0 {
		return fmt.Errorf("core: negative client count %d", c.Clients)
	}
	if c.SessionCap < 0 {
		return fmt.Errorf("core: negative session cap %d", c.SessionCap)
	}
	if c.Clients == 0 && c.VirtualSessions == 0 && c.SessionChurn != "" && c.SessionChurn != "none" {
		return fmt.Errorf("core: session churn %q needs Clients or VirtualSessions > 0", c.SessionChurn)
	}
	if c.VirtualSessions < 0 {
		return fmt.Errorf("core: negative virtual session count %d", c.VirtualSessions)
	}
	if c.VirtualSessions > 0 && (c.ClientsEnabled() || c.QueriesEnabled()) {
		return fmt.Errorf("core: VirtualSessions is mutually exclusive with Clients and Queries")
	}
	if c.Scenario != "" && c.Scenario != "none" && c.VirtualSessions == 0 {
		return fmt.Errorf("core: scenario %q needs VirtualSessions > 0", c.Scenario)
	}
	if _, err := c.scenarioPlan(); err != nil {
		return err
	}
	if _, err := c.sessionPlan(); err != nil {
		return err
	}
	if _, err := c.queries(); err != nil {
		return err
	}
	if c.Durability.SnapshotEvery < 0 {
		return fmt.Errorf("core: negative snapshot interval %d", c.Durability.SnapshotEvery)
	}
	if _, err := wal.ParsePolicy(c.Durability.Fsync); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// DurabilityConfig selects per-repository durable state for a run (see
// internal/wal for the machinery and on-disk layout).
type DurabilityConfig struct {
	// Dir is the log root; each repository logs under its own
	// subdirectory. Empty disables durability.
	Dir string
	// SnapshotEvery is the commit count between snapshot rotations
	// (0 = the wal default of 256). Smaller means faster recovery and
	// more snapshot writes.
	SnapshotEvery int
	// Fsync is the fsync policy: "batch" (default), "always" or "never".
	Fsync string
}

// Enabled reports whether the run keeps durable state.
func (d DurabilityConfig) Enabled() bool { return d.Dir != "" }

// walOptions converts to the wal package's options.
func (d DurabilityConfig) walOptions() *wal.Options {
	if !d.Enabled() {
		return nil
	}
	return &wal.Options{Dir: d.Dir, SnapshotEvery: d.SnapshotEvery, Fsync: d.Fsync}
}

// ClientsEnabled reports whether the run serves a client population.
func (c Config) ClientsEnabled() bool { return c.Clients > 0 }

// VirtualEnabled reports whether the run serves a virtual session fleet.
func (c Config) VirtualEnabled() bool { return c.VirtualSessions > 0 }

// scenarioPlan parses and schedules the configured scenario over the
// virtual population (nil when no scenario is configured).
func (c Config) scenarioPlan() (*trace.ScenarioPlan, error) {
	spec, err := trace.ParseScenario(c.Scenario)
	if err != nil || spec == nil {
		return nil, err
	}
	return trace.BuildScenario(spec, c.VirtualSessions, c.Repositories, c.Ticks, c.Seed+16)
}

// QueriesEnabled reports whether the run serves derived-data queries.
func (c Config) QueriesEnabled() bool { return len(c.Queries) > 0 }

// queries parses the configured query catalogue (named q0, q1, ...).
func (c Config) queries() ([]query.Query, error) {
	return query.ParseList(c.Queries)
}

// ingestConfig converts the sharding/batching fields.
func (c Config) ingestConfig() ingest.Config {
	return ingest.Config{Shards: c.Shards, BatchTicks: c.BatchTicks, Obs: c.Obs}
}

// IngestEnabled reports whether the run goes through the sharded/batched
// ingest runner: the config asks for it and the run is plain — the
// queueing model, fault injection and the client-serving layer couple
// items through shared state (serial stations, overlay rewires, the
// single-threaded fleet observer), so those runs keep the sequential
// path and ignore the ingest fields.
func (c Config) IngestEnabled() bool {
	return c.ingestConfig().Enabled() && !c.Queueing && !c.FaultsEnabled() &&
		!c.ClientsEnabled() && !c.QueriesEnabled() && !c.VirtualEnabled() &&
		!c.Durability.Enabled()
}

// sessionPlan parses the configured session-churn plan over whichever
// session population the run serves — concrete clients or virtual
// sessions (nil when neither is enabled or no churn is configured).
func (c Config) sessionPlan() (*resilience.Plan, error) {
	n := c.Clients
	if c.VirtualEnabled() {
		n = c.VirtualSessions
	}
	if n == 0 {
		return nil, nil
	}
	interval := c.TickInterval
	if interval <= 0 {
		interval = sim.Second
	}
	return serve.ParseSessionPlan(c.SessionChurn, n, c.Ticks, interval, c.Seed+15)
}

// clients generates the run's client population over the trace
// catalogue. Each client's generated Repo is its *home* endpoint; the
// serving fleet's placement decides which repository actually serves it.
func (c Config) clients(catalogue []string) ([]*repository.Client, error) {
	repos := make([]repository.ID, c.Repositories)
	for i := range repos {
		repos[i] = repository.ID(i + 1)
	}
	return repository.GenerateClients(repository.ClientWorkload{
		Clients:        c.Clients,
		Repos:          repos,
		Items:          catalogue,
		ItemsPerClient: c.ItemsPerClient,
		StringentFrac:  c.StringentFrac,
		Seed:           c.Seed + 13,
	})
}

// faultPlan parses the configured failure-injection plan (nil when faults
// are disabled).
func (c Config) faultPlan() (*resilience.Plan, error) {
	interval := c.TickInterval
	if interval <= 0 {
		interval = sim.Second // the workload generators' default
	}
	return resilience.ParsePlan(c.Faults, c.Repositories, c.Ticks, interval, c.Seed+12)
}

// FaultsEnabled reports whether the run goes through the resilient runner.
func (c Config) FaultsEnabled() bool {
	return c.Faults != "" && c.Faults != "none"
}

// builder resolves the overlay construction algorithm.
func (c Config) builder() (tree.Builder, error) {
	var pref tree.PreferenceFunc
	switch c.Preference {
	case "", "P1":
		pref = tree.P1
	case "P2":
		pref = tree.P2
	default:
		return nil, fmt.Errorf("core: unknown preference function %q", c.Preference)
	}
	switch c.Builder {
	case "", "lela":
		return &tree.LeLA{PPercent: c.PPercent, Preference: pref, Seed: c.Seed + 2}, nil
	case "random":
		return &tree.RandomBuilder{Seed: c.Seed + 2}, nil
	case "greedy-closest":
		return &tree.GreedyBuilder{Seed: c.Seed + 2}, nil
	case "direct":
		return &tree.DirectBuilder{}, nil
	default:
		return nil, fmt.Errorf("core: unknown builder %q", c.Builder)
	}
}

// protocol resolves the dissemination algorithm.
func (c Config) protocol() (dissemination.Protocol, error) {
	switch c.Protocol {
	case "", "distributed":
		return dissemination.NewDistributed(), nil
	case "centralized":
		return dissemination.NewCentralized(), nil
	case "naive-eq3":
		return dissemination.NewNaive(), nil
	case "all-push":
		return dissemination.NewAllPush(), nil
	default:
		return nil, fmt.Errorf("core: unknown protocol %q", c.Protocol)
	}
}

// network builds or synthesizes the physical network.
func (c Config) network() (*netsim.Network, error) {
	if c.CommDelayMs > 0 {
		return netsim.Uniform(c.Repositories, sim.Milliseconds(c.CommDelayMs)), nil
	}
	if c.CommDelayMs < 0 {
		return netsim.Uniform(c.Repositories, 0), nil
	}
	return netsim.Generate(netsim.Config{
		Repositories:    c.Repositories,
		Routers:         c.Routers,
		LinkDelayMinMs:  c.LinkDelayMinMs,
		LinkDelayMeanMs: c.LinkDelayMeanMs,
		Seed:            c.Seed,
	})
}

// compDelay converts the configured computational delay.
func (c Config) compDelay() sim.Time {
	switch {
	case c.CompDelayMs > 0:
		return sim.Milliseconds(c.CompDelayMs)
	case c.CompDelayMs < 0:
		return -1 // dissemination.Config convention for "exactly zero"
	default:
		return 0 // dissemination default (12.5 ms)
	}
}

// traces generates (or replays) the configuration's trace set through the
// selected workload family. The result is deterministic in the
// workload-relevant fields and read-only thereafter, so sweep runners may
// share one trace set across concurrent runs.
func (c Config) traces() ([]*trace.Trace, error) {
	w, err := trace.LookupWorkload(c.Workload)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return w.Generate(trace.WorkloadSpec{
		Items:    c.Items,
		Ticks:    c.Ticks,
		Interval: c.TickInterval,
		Seed:     c.Seed + 10,
		Path:     c.WorkloadPath,
	})
}

// bareRepositories builds the repository population with empty needs.
// Repositories are mutated during overlay construction and dissemination,
// so unlike traces and networks they are built fresh for every run.
func (c Config) bareRepositories() []*repository.Repository {
	repos := make([]*repository.Repository, c.Repositories)
	for i := range repos {
		repos[i] = repository.New(repository.ID(i+1), 1) // limit set later
	}
	return repos
}

// repositories builds the repository population and assigns each node's
// data and coherency needs over the trace catalogue — the paper's
// per-repository subscription workload, used when no client population is
// configured.
func (c Config) repositories(traces []*trace.Trace) []*repository.Repository {
	repos := c.bareRepositories()
	repository.AssignNeeds(repos, repository.Workload{
		Items:         itemCatalogue(traces),
		SubscribeProb: c.SubscribeProb,
		StringentFrac: c.StringentFrac,
		Seed:          c.Seed + 11,
	})
	return repos
}

// itemCatalogue lists the trace set's item names in trace order.
func itemCatalogue(traces []*trace.Trace) []string {
	catalogue := make([]string, len(traces))
	for i, tr := range traces {
		catalogue[i] = tr.Item
	}
	return catalogue
}
