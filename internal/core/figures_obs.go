package core

import (
	"fmt"
	"sort"

	"d3t/internal/obs"
	"d3t/internal/repository"
)

// obsFigureRows caps the per-node tables at a readable size; a note
// records how many active nodes the cap dropped.
const obsFigureRows = 20

// obsActiveNodes returns the snapshot's nodes that recorded any activity,
// ordered by the given less function, capped at max. The second result is
// the uncapped active count.
func obsActiveNodes(snap *obs.TreeSnapshot, max int, less func(a, b obs.NodeSnapshot) bool) ([]obs.NodeSnapshot, int) {
	nodes := make([]obs.NodeSnapshot, 0, len(snap.Nodes))
	for _, n := range snap.Nodes {
		if n.Counters.Received > 0 || n.Hop.Count > 0 {
			nodes = append(nodes, n)
		}
	}
	sort.SliceStable(nodes, func(i, j int) bool { return less(nodes[i], nodes[j]) })
	total := len(nodes)
	if len(nodes) > max {
		nodes = nodes[:max]
	}
	return nodes, total
}

// worstInEdge returns a node's slowest in-edge EWMA (peer and delay in
// milliseconds), or NoID when the node has no sampled in-edges.
func worstInEdge(n obs.NodeSnapshot) (repository.ID, float64) {
	peer, worst := repository.NoID, 0.0
	for id, ms := range n.EdgeDelayMs {
		if peer == repository.NoID || ms > worst || (ms == worst && id < peer) {
			peer, worst = id, ms
		}
	}
	return peer, worst
}

// FigureObsLatency runs the base case with the observability layer armed
// and tabulates where propagation time goes: each repository's per-hop
// delay and source→node dissemination-latency quantiles, plus its
// fidelity-violation durations. It is not a figure of the paper — it is
// the diagnostic view behind the fidelity curves, answering *where* in
// the tree latency accumulates and fidelity is lost.
func FigureObsLatency(s Scale) (*FigureResult, error) {
	s.Obs, s.ObsTree = true, nil
	cfg := s.base()
	outs, err := s.runAll([]Config{cfg})
	if err != nil {
		return nil, err
	}
	out := outs[0]
	nodes, total := obsActiveNodes(out.Obs, obsFigureRows, func(a, b obs.NodeSnapshot) bool {
		if a.SourceLat.P99Ms != b.SourceLat.P99Ms {
			return a.SourceLat.P99Ms > b.SourceLat.P99Ms
		}
		return a.ID < b.ID
	})
	rows := make([][]string, 0, len(nodes))
	for _, n := range nodes {
		rows = append(rows, []string{
			fmt.Sprintf("%d", n.ID),
			fmt.Sprintf("%d", n.Hop.Count),
			fmt.Sprintf("%.2f", n.Hop.P50Ms),
			fmt.Sprintf("%.2f", n.Hop.P99Ms),
			fmt.Sprintf("%.2f", n.SourceLat.P50Ms),
			fmt.Sprintf("%.2f", n.SourceLat.P95Ms),
			fmt.Sprintf("%.2f", n.SourceLat.P99Ms),
			fmt.Sprintf("%d", n.Violation.Count),
			fmt.Sprintf("%.1f", n.Violation.P95Ms),
		})
	}
	notes := []string{fmt.Sprintf("system loss %.2f%% at controlled degree %d", out.LossPercent, out.CoopDegreeUsed)}
	if total > len(nodes) {
		notes = append(notes, fmt.Sprintf("showing the %d highest-latency nodes of %d active", len(nodes), total))
	}
	return &FigureResult{
		ID:     "obs-latency",
		Title:  "Observability: per-node propagation latency and violation durations (base case)",
		Header: []string{"node", "hops", "hop p50 ms", "hop p99 ms", "src p50 ms", "src p95 ms", "src p99 ms", "violations", "viol p95 ms"},
		Rows:   rows,
		Notes:  notes,
	}, nil
}

// FigureObsLoad runs the base case with the observability layer armed and
// tabulates where the work goes: each repository's decision counters, its
// load EWMA (updates/second of simulation time) and its slowest in-edge —
// the per-node load and per-edge delay signals a future online Eq. 2
// re-optimization controller would consume.
func FigureObsLoad(s Scale) (*FigureResult, error) {
	s.Obs, s.ObsTree = true, nil
	cfg := s.base()
	outs, err := s.runAll([]Config{cfg})
	if err != nil {
		return nil, err
	}
	out := outs[0]
	nodes, total := obsActiveNodes(out.Obs, obsFigureRows, func(a, b obs.NodeSnapshot) bool {
		if a.Counters.Received != b.Counters.Received {
			return a.Counters.Received > b.Counters.Received
		}
		return a.ID < b.ID
	})
	rows := make([][]string, 0, len(nodes))
	for _, n := range nodes {
		peer, worst := worstInEdge(n)
		edge := "-"
		if peer != repository.NoID {
			edge = fmt.Sprintf("%.2f (from %d)", worst, peer)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", n.ID),
			fmt.Sprintf("%d", n.Counters.Received),
			fmt.Sprintf("%d", n.Counters.DepForwarded),
			fmt.Sprintf("%d", n.Counters.DepSuppressed),
			fmt.Sprintf("%d", n.Counters.DepChecks),
			fmt.Sprintf("%.1f", n.LoadEWMA),
			edge,
		})
	}
	notes := []string{fmt.Sprintf("load EWMA is updates/s of simulation time, folded at the run horizon (alpha %.2f)", obs.Alpha)}
	if total > len(nodes) {
		notes = append(notes, fmt.Sprintf("showing the %d busiest nodes of %d active", len(nodes), total))
	}
	return &FigureResult{
		ID:     "obs-load",
		Title:  "Observability: per-node load and filter-decision counters (base case)",
		Header: []string{"node", "received", "forwarded", "suppressed", "checks", "load ups/s", "worst in-edge ms"},
		Rows:   rows,
		Notes:  notes,
	}, nil
}
