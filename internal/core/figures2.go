package core

import (
	"fmt"

	"d3t/internal/dissemination"
	"d3t/internal/netsim"
	"d3t/internal/repository"
	"d3t/internal/sim"
	"d3t/internal/trace"
	"d3t/internal/tree"
)

// Table1 regenerates the trace-characteristics table from the synthetic
// stand-ins for the paper's six example tickers.
func Table1(s Scale) (*FigureResult, error) {
	traces := trace.Table1TracesSized(s.Ticks, s.Seed)
	rows := make([][]string, 0, len(traces))
	for i, tr := range traces {
		st := tr.Summarize()
		tk := trace.Table1Tickers[i]
		rows = append(rows, []string{
			st.Item,
			fmt.Sprintf("%d", st.Ticks),
			fmt.Sprintf("%.2f", st.Min),
			fmt.Sprintf("%.2f", st.Max),
			fmt.Sprintf("%.2f-%.2f", tk.Min, tk.Max),
		})
	}
	return &FigureResult{
		ID:     "table1",
		Title:  "Trace characteristics (synthetic stand-ins for the paper's polls)",
		Header: []string{"ticker", "ticks", "min", "max", "paper band"},
		Rows:   rows,
	}, nil
}

// Figure4 demonstrates the missed-update problem on the paper's exact
// example (values scaled x100 so the comparisons are float-exact): Eq. 3
// alone loses fidelity even under ideal conditions; adding Eq. 7 restores
// 100%.
func Figure4(Scale) (*FigureResult, error) {
	build := func() (*tree.Overlay, []*trace.Trace, error) {
		net := netsim.Uniform(2, 0)
		p := repository.New(1, 1)
		q := repository.New(2, 1)
		p.Needs["X"], p.Serving["X"] = 30, 30
		q.Needs["X"], q.Serving["X"] = 50, 50
		o, err := (&tree.LeLA{}).Build(net, []*repository.Repository{p, q}, 1)
		if err != nil {
			return nil, nil, err
		}
		tr := &trace.Trace{Item: "X"}
		for i, v := range []float64{100, 120, 140, 150, 170, 200} {
			tr.Ticks = append(tr.Ticks, trace.Tick{At: sim.Time(i) * sim.Second, Value: v})
		}
		return o, []*trace.Trace{tr}, nil
	}
	rows := make([][]string, 0, 3)
	for _, proto := range []dissemination.Protocol{
		dissemination.NewNaive(), dissemination.NewDistributed(), dissemination.NewCentralized(),
	} {
		o, traces, err := build()
		if err != nil {
			return nil, err
		}
		res, err := dissemination.Run(o, traces, proto, dissemination.Config{CompDelay: -1})
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			proto.Name(),
			fmt.Sprintf("%.2f", res.Report.LossPercent()),
			fmt.Sprintf("%d", res.Stats.Messages),
		})
	}
	return &FigureResult{
		ID:     "fig4",
		Title:  "Missed-update problem (paper's Figure 4 scenario, zero delays)",
		Header: []string{"protocol", "loss %", "messages"},
		Rows:   rows,
		Notes: []string{
			"chain source -> P (c=30) -> Q (c=50); values 100,120,140,150,170,200",
			"naive-eq3 must show positive loss; the exact algorithms must show 0",
		},
	}, nil
}

// AblationTree compares the overlay builders under controlled cooperation:
// the paper's claim is that once the cooperation degree is right, the
// exact construction algorithm is secondary.
func AblationTree(s Scale) (*FigureResult, error) {
	builders := []string{"lela", "random", "greedy-closest"}
	var cfgs []Config
	for _, b := range builders {
		cfg := s.base()
		cfg.Builder = b
		cfg.CoopDegree = 0 // controlled
		cfgs = append(cfgs, cfg)
	}
	outs, err := s.runAll(cfgs)
	if err != nil {
		return nil, err
	}
	rows := make([][]string, 0, len(outs))
	for _, o := range outs {
		rows = append(rows, []string{
			o.Config.Builder,
			fmt.Sprintf("%.2f", o.LossPercent),
			fmt.Sprintf("%d", o.Tree.Diameter),
			fmt.Sprintf("%.1f", o.Tree.AvgDepth),
			fmt.Sprintf("%d", o.Stats.Messages),
		})
	}
	return &FigureResult{
		ID:     "ablation-tree",
		Title:  "Tree construction ablation under controlled cooperation",
		Header: []string{"builder", "loss %", "diameter", "avg depth", "messages"},
		Rows:   rows,
	}, nil
}

// AblationK sweeps the Eq. 2 constant k (the paper's footnote 1 reports
// insensitivity for k >= 30).
func AblationK(s Scale) (*FigureResult, error) {
	ks := []int{10, 30, 50, 100}
	var cfgs []Config
	for _, k := range ks {
		cfg := s.base()
		cfg.CoopDegree = 0
		cfg.CoopK = k
		cfgs = append(cfgs, cfg)
	}
	outs, err := s.runAll(cfgs)
	if err != nil {
		return nil, err
	}
	rows := make([][]string, 0, len(outs))
	for _, o := range outs {
		rows = append(rows, []string{
			fmt.Sprintf("%d", o.Config.CoopK),
			fmt.Sprintf("%d", o.CoopDegreeUsed),
			fmt.Sprintf("%.2f", o.LossPercent),
		})
	}
	return &FigureResult{
		ID:     "ablation-k",
		Title:  "Sensitivity to the Eq. 2 constant k",
		Header: []string{"k", "coop degree", "loss %"},
		Rows:   rows,
	}, nil
}

// AblationQueueing contrasts the paper's per-update latency service model
// with a strict serial-server (queueing) model at growing fan-out: under
// queueing, an overcommitted node's backlog compounds across updates and
// the right arm of the U-curve turns into a cliff.
func AblationQueueing(s Scale) (*FigureResult, error) {
	var cfgs []Config
	for _, queueing := range []bool{false, true} {
		for _, coop := range s.CoopGrid {
			cfg := s.base()
			cfg.StringentFrac = 1
			cfg.CoopDegree = coop
			cfg.Queueing = queueing
			cfgs = append(cfgs, cfg)
		}
	}
	outs, err := s.runAll(cfgs)
	if err != nil {
		return nil, err
	}
	labels := []string{"latency-model", "queueing-model"}
	var series []Series
	i := 0
	for _, lbl := range labels {
		se := Series{Label: lbl}
		for _, coop := range s.CoopGrid {
			se.X = append(se.X, float64(coop))
			se.Y = append(se.Y, outs[i].LossPercent)
			i++
		}
		series = append(series, se)
	}
	return &FigureResult{
		ID:     "ablation-queueing",
		Title:  "Service-model ablation: per-update latency vs strict queueing (T=100)",
		XLabel: "Degree of Cooperation",
		YLabel: "Loss of Fidelity (%)",
		Series: series,
		Notes: []string{
			"the paper's computational delay is a per-dependent latency within an update;",
			"a strict serial server saturates at high fan-out and the loss explodes",
		},
	}, nil
}

// ExtensionPull compares the paper's push architecture against the
// future-work mechanisms (Section 8): pull with static TTR, adaptive TTR,
// and lease-augmented push — fidelity versus message cost.
func ExtensionPull(s Scale) (*FigureResult, error) {
	s, r := s.withRunner()
	cfg := s.base()
	cfg.CoopDegree = 0
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net, err := r.network(cfg)
	if err != nil {
		return nil, err
	}
	traces, err := r.traceSet(cfg)
	if err != nil {
		return nil, err
	}
	repos := cfg.repositories(traces)
	coop, err := r.controlledDegree(cfg)
	if err != nil {
		return nil, err
	}
	for _, r := range repos {
		r.CoopLimit = coop
	}
	builder, err := cfg.builder()
	if err != nil {
		return nil, err
	}
	overlay, err := builder.Build(net, repos, coop)
	if err != nil {
		return nil, err
	}

	pushCfg := dissemination.Config{CompDelay: cfg.compDelay()}
	type entry struct {
		name string
		run  func() (*dissemination.Result, error)
	}
	entries := []entry{
		{"push-distributed", func() (*dissemination.Result, error) {
			return dissemination.Run(overlay, traces, dissemination.NewDistributed(), pushCfg)
		}},
		{"pull-static-2s", func() (*dissemination.Result, error) {
			return dissemination.RunPull(overlay, traces, dissemination.PullConfig{
				Mode: dissemination.StaticTTR, TTR: 2 * sim.Second, CompDelay: cfg.compDelay()})
		}},
		{"pull-static-10s", func() (*dissemination.Result, error) {
			return dissemination.RunPull(overlay, traces, dissemination.PullConfig{
				Mode: dissemination.StaticTTR, TTR: 10 * sim.Second, CompDelay: cfg.compDelay()})
		}},
		{"pull-adaptive", func() (*dissemination.Result, error) {
			return dissemination.RunPull(overlay, traces, dissemination.PullConfig{
				Mode: dissemination.AdaptiveTTR, TTR: 10 * sim.Second, CompDelay: cfg.compDelay()})
		}},
		{"lease-push-60s", func() (*dissemination.Result, error) {
			return dissemination.RunLease(overlay, traces, dissemination.LeaseConfig{
				Duration: 60 * sim.Second, Push: pushCfg})
		}},
	}
	rows := make([][]string, 0, len(entries))
	for _, e := range entries {
		res, err := e.run()
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			e.name,
			fmt.Sprintf("%.2f", res.Report.LossPercent()),
			fmt.Sprintf("%d", res.Stats.Messages),
		})
	}
	return &FigureResult{
		ID:     "ext-pull",
		Title:  "Extension: push vs pull (TTR / adaptive) vs leases",
		Header: []string{"mechanism", "loss %", "messages"},
		Rows:   rows,
		Notes:  []string{"same overlay (controlled cooperation) and traces for every mechanism"},
	}, nil
}
