package core

import (
	"reflect"
	"testing"
)

func TestRunExperimentWithFaults(t *testing.T) {
	cfg := tinyScale().base()
	cfg.Faults = "crash:max@40"
	out, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Resilience == nil {
		t.Fatal("faulty run returned no resilience stats")
	}
	if out.Resilience.Crashes != 1 {
		t.Errorf("crashes = %d, want 1", out.Resilience.Crashes)
	}
	if out.Resilience.Rehomed == 0 {
		t.Error("interior crash triggered no re-homing")
	}
	if out.Fidelity <= 0 || out.Fidelity > 1 {
		t.Errorf("fidelity %v out of range", out.Fidelity)
	}

	// The fault-free path must not grow resilience machinery.
	cfg.Faults = ""
	base, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Resilience != nil {
		t.Error("fault-free run carries resilience stats")
	}
}

func TestFaultRunsAreDeterministicThroughRunner(t *testing.T) {
	cfg := tinyScale().base()
	cfg.Faults = "churn:3"
	r := NewRunner(2)
	a, err := r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fidelity != b.Fidelity || !reflect.DeepEqual(a.Resilience, b.Resilience) {
		t.Errorf("identical fault runs diverged: %.6f/%+v vs %.6f/%+v",
			a.Fidelity, a.Resilience, b.Fidelity, b.Resilience)
	}
	if a.Resilience == nil || a.Resilience.Crashes == 0 {
		t.Errorf("churn run injected nothing: %+v", a.Resilience)
	}
}

func TestConfigValidatesFaultSpecs(t *testing.T) {
	cfg := tinyScale().base()
	for _, good := range []string{"", "none", "crash:1@5", "crash:max@5+10", "churn:2", "churn:2:25"} {
		cfg.Faults = good
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate rejected faults %q: %v", good, err)
		}
	}
	for _, bad := range []string{"crash", "crash:99@5", "churn:x", "meteor:3"} {
		cfg.Faults = bad
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted faults %q", bad)
		}
	}
}
