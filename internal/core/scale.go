package core

import "d3t/internal/obs"

// Scale sizes an experiment sweep. The paper's evaluation runs at
// PaperScale (100 repositories, 700 network nodes, 100 traces of 10000
// ticks); tests and benchmarks use SmallScale, which preserves every
// qualitative shape at a fraction of the cost.
type Scale struct {
	Repositories int
	Routers      int
	Items        int
	Ticks        int
	// CoopGrid is the x-axis of degree-of-cooperation sweeps.
	CoopGrid []int
	// TValues are the coherency-mix percentages plotted as separate
	// curves (the paper uses 0,20,50,70,80,90,100).
	TValues []float64
	// CommGridMs and CompGridMs are the delay sweep x-axes (Figures 5-7).
	CommGridMs []float64
	CompGridMs []float64
	// Seed drives all randomness.
	Seed int64
	// Workload names the trace family every sweep point runs over
	// (default "stocks"); WorkloadPath feeds the "csv" family.
	Workload     string
	WorkloadPath string
	// Faults applies a failure-injection spec (resilience.ParsePlan) to
	// every sweep point; the resilience figures override it per point.
	Faults string
	// Clients, ItemsPerClient and SessionCap apply a client-serving
	// population to every sweep point; the client figures override the
	// population and cap per point.
	Clients        int
	ItemsPerClient int
	SessionCap     int
	// Queries applies a derived-data query catalogue to every sweep point
	// (see Config.Queries); the query figures override it per point.
	Queries []string
	// VirtualSessions and Scenario apply a virtual session fleet to every
	// sweep point (see Config.VirtualSessions; mutually exclusive with
	// Clients and Queries); the client, query and vserve figures override
	// the population per point.
	VirtualSessions int
	Scenario        string
	// Shards and BatchTicks apply the ingest pipeline's sharding and
	// coalescing to every sweep point (plain runs only; see
	// Config.Shards).
	Shards     int
	BatchTicks int
	// Durability applies per-repository durable state (WAL + snapshots)
	// to every sweep point; the res-recovery-disk figure overrides the
	// directory and snapshot interval per point. See Config.Durability.
	Durability DurabilityConfig
	// Obs attaches a fresh observability tree to every sweep point, so
	// each Outcome carries its per-node counter/latency snapshot.
	// Observation is passive: figures render byte-identically either way
	// (TestObsDisabledByteIdentical). The obs-* figures force it on.
	Obs bool
	// ObsTree, when set, makes every sweep point record into this one
	// shared tree instead of per-point trees — the live aggregate view
	// d3texp's -obs-interval monitors while a sweep runs. It overrides
	// Obs; the obs-* figures ignore it (they need per-point isolation).
	ObsTree *obs.Tree
	// Workers bounds the sweep worker pool (<= 0 means GOMAXPROCS).
	Workers int
	// Runner, when set, executes the sweeps — sharing its substrate
	// caches and progress callback across figures. When nil each sweep
	// uses a fresh runner bounded by Workers.
	Runner *Runner
}

// PaperScale reproduces the paper's base case.
func PaperScale() Scale {
	return Scale{
		Repositories: 100,
		Routers:      600,
		Items:        100,
		Ticks:        10000,
		CoopGrid:     []int{1, 2, 3, 5, 7, 10, 15, 20, 30, 50, 75, 100},
		TValues:      []float64{0, 20, 50, 70, 80, 90, 100},
		CommGridMs:   []float64{1, 25, 50, 75, 100, 125},
		CompGridMs:   []float64{-1, 5, 10, 15, 20, 25},
		Seed:         1,
	}
}

// SmallScale is the fast preset used by tests and benchmarks.
func SmallScale() Scale {
	return Scale{
		Repositories: 30,
		Routers:      90,
		Items:        20,
		Ticks:        600,
		CoopGrid:     []int{1, 2, 4, 7, 12, 20, 30},
		TValues:      []float64{0, 50, 100},
		CommGridMs:   []float64{1, 50, 125},
		CompGridMs:   []float64{-1, 12.5, 25},
		Seed:         1,
	}
}

// base converts the scale into the base-case configuration.
func (s Scale) base() Config {
	cfg := Default()
	cfg.Repositories = s.Repositories
	cfg.Routers = s.Routers
	cfg.Items = s.Items
	cfg.Ticks = s.Ticks
	cfg.Seed = s.Seed
	cfg.Workload = s.Workload
	cfg.WorkloadPath = s.WorkloadPath
	cfg.Faults = s.Faults
	cfg.Clients = s.Clients
	cfg.ItemsPerClient = s.ItemsPerClient
	cfg.SessionCap = s.SessionCap
	cfg.Queries = s.Queries
	cfg.VirtualSessions = s.VirtualSessions
	cfg.Scenario = s.Scenario
	cfg.Shards = s.Shards
	cfg.BatchTicks = s.BatchTicks
	cfg.Durability = s.Durability
	if s.ObsTree != nil {
		cfg.Obs = s.ObsTree
	} else if s.Obs {
		cfg.Obs = obs.NewTree()
	}
	return cfg
}

// runAll executes a figure's configurations through the scale's runner.
func (s Scale) runAll(cfgs []Config) ([]*Outcome, error) {
	_, r := s.withRunner()
	return r.RunAll(cfgs)
}

// withRunner pins a concrete runner on the scale copy, so that every
// sweep and substrate probe within one figure shares its caches even
// when the caller did not provide a shared Runner.
func (s Scale) withRunner() (Scale, *Runner) {
	if s.Runner == nil {
		s.Runner = NewRunner(s.Workers)
	}
	return s, s.Runner
}
