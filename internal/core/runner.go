package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"d3t/internal/netsim"
	"d3t/internal/obs"
	"d3t/internal/trace"
	"d3t/internal/tree"
)

// Progress reports sweep advancement after each completed point.
type Progress struct {
	// Done and Total count completed and scheduled points.
	Done, Total int
	// Index is the just-completed point's position in the batch.
	Index int
	// Err is that point's error, if it failed.
	Err error
}

// Runner executes batches of experiment configurations on a bounded
// worker pool. Unlike spawning one goroutine per configuration, the pool
// keeps at most Workers simulations in flight — a paper-scale figure is
// hundreds of points, each holding a full network and event queue, so the
// bound is what keeps memory flat while all cores stay busy.
//
// The runner also memoizes the immutable substrates across sweep points:
// most points of a figure share one physical network and one trace set
// (only T, the cooperation degree, or the protocol vary), so building
// them once per distinct parameter key instead of once per point removes
// the dominant constant cost of a sweep. Both caches are keyed on every
// field that influences generation, and the cached values are read-only
// by construction (see runExperimentWith), so sharing them across
// concurrent workers is safe.
//
// Results are ordered by input index and each point's seed comes from its
// own Config, so a batch's outcome is byte-for-byte identical no matter
// how many workers run it.
//
// A Runner is safe for concurrent use and may be reused across batches to
// share its caches between figures; the zero value is ready to use.
type Runner struct {
	// Workers bounds concurrent simulations; <= 0 means GOMAXPROCS.
	Workers int
	// OnProgress, when set, is called after every completed point. Calls
	// are serialized; Done is monotone within one RunAll batch.
	OnProgress func(Progress)
	// Log, when set, reports sweep progress through the shared leveled
	// logger: per-point completions at debug level, per-point failures at
	// info level. It replaces the CLIs' ad-hoc progress printing; a nil
	// logger is silent.
	Log *obs.Logger

	mu     sync.Mutex
	nets   map[netKey]*memoEntry[*netsim.Network]
	traces map[traceKey]*memoEntry[[]*trace.Trace]

	// cache hit/miss counters, for tests and -progress reporting.
	netBuilds, netHits     int
	traceBuilds, traceHits int
}

// NewRunner returns a runner with the given worker bound.
func NewRunner(workers int) *Runner { return &Runner{Workers: workers} }

// netKey covers every Config field that cfg.network() reads.
type netKey struct {
	repositories, routers           int
	linkDelayMinMs, linkDelayMeanMs float64
	commDelayMs                     float64
	seed                            int64
}

// traceKey covers every Config field that cfg.traces() reads.
type traceKey struct {
	workload, path string
	items, ticks   int
	interval       int64
	seed           int64
}

// memoEntry is a once-guarded cache slot: concurrent misses on the same
// key build the value exactly once and share the result.
type memoEntry[T any] struct {
	once sync.Once
	val  T
	err  error
}

// CacheStats reports how often the runner reused a substrate instead of
// rebuilding it.
type CacheStats struct {
	NetworkBuilds, NetworkHits int
	TraceBuilds, TraceHits     int
}

// CacheStats returns the cache counters accumulated so far.
func (r *Runner) CacheStats() CacheStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return CacheStats{
		NetworkBuilds: r.netBuilds, NetworkHits: r.netHits,
		TraceBuilds: r.traceBuilds, TraceHits: r.traceHits,
	}
}

func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// network returns the (possibly cached) physical network for the config.
func (r *Runner) network(cfg Config) (*netsim.Network, error) {
	key := netKey{
		repositories:    cfg.Repositories,
		routers:         cfg.Routers,
		linkDelayMinMs:  cfg.LinkDelayMinMs,
		linkDelayMeanMs: cfg.LinkDelayMeanMs,
		commDelayMs:     cfg.CommDelayMs,
		seed:            cfg.Seed,
	}
	r.mu.Lock()
	if r.nets == nil {
		r.nets = make(map[netKey]*memoEntry[*netsim.Network])
	}
	e, ok := r.nets[key]
	if !ok {
		e = &memoEntry[*netsim.Network]{}
		r.nets[key] = e
		r.netBuilds++
	} else {
		r.netHits++
	}
	r.mu.Unlock()
	e.once.Do(func() { e.val, e.err = cfg.network() })
	return e.val, e.err
}

// traceSet returns the (possibly cached) trace set for the config.
func (r *Runner) traceSet(cfg Config) ([]*trace.Trace, error) {
	key := traceKey{
		workload: cfg.Workload,
		path:     cfg.WorkloadPath,
		items:    cfg.Items,
		ticks:    cfg.Ticks,
		interval: int64(cfg.TickInterval),
		seed:     cfg.Seed,
	}
	r.mu.Lock()
	if r.traces == nil {
		r.traces = make(map[traceKey]*memoEntry[[]*trace.Trace])
	}
	e, ok := r.traces[key]
	if !ok {
		e = &memoEntry[[]*trace.Trace]{}
		r.traces[key] = e
		r.traceBuilds++
	} else {
		r.traceHits++
	}
	r.mu.Unlock()
	e.once.Do(func() { e.val, e.err = cfg.traces() })
	return e.val, e.err
}

// controlledDegree computes the Eq. 2 degree for a configuration without
// running the dissemination, measuring the average communication delay on
// the (cached) network.
func (r *Runner) controlledDegree(cfg Config) (int, error) {
	net, err := r.network(cfg)
	if err != nil {
		return 0, err
	}
	comp := cfg.compDelay()
	if comp < 0 {
		comp = 0
	}
	return tree.ControlledCoopDegree(net.AvgDelay(), comp, cfg.Repositories, cfg.CoopK), nil
}

// Run executes one configuration through the runner's caches.
func (r *Runner) Run(cfg Config) (*Outcome, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net, err := r.network(cfg)
	if err != nil {
		return nil, err
	}
	traces, err := r.traceSet(cfg)
	if err != nil {
		return nil, err
	}
	return runExperimentWith(cfg, net, traces)
}

// RunAll executes the batch on the worker pool, preserving input order.
// Every point runs even after earlier failures, so one bad configuration
// does not hide the others: the returned error joins every per-point
// failure (annotated with its index), and outs[i] is nil exactly where
// point i failed.
func (r *Runner) RunAll(cfgs []Config) ([]*Outcome, error) {
	outs := make([]*Outcome, len(cfgs))
	errs := make([]error, len(cfgs))

	var (
		progressMu sync.Mutex
		done       int
	)
	report := func(i int, err error) {
		if r.OnProgress == nil && r.Log == nil {
			return
		}
		progressMu.Lock()
		done++
		d := done
		if r.OnProgress != nil {
			r.OnProgress(Progress{Done: d, Total: len(cfgs), Index: i, Err: err})
		}
		progressMu.Unlock()
		if err != nil {
			r.Log.Infof("sweep point %d/%d FAILED: %v", d, len(cfgs), err)
		} else {
			r.Log.Debugf("sweep point %d/%d ok", d, len(cfgs))
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < r.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				outs[i], errs[i] = r.Run(cfgs[i])
				report(i, errs[i])
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var failures []error
	for i, err := range errs {
		if err != nil {
			failures = append(failures, fmt.Errorf("point %d/%d: %w", i, len(cfgs), err))
		}
	}
	if len(failures) > 0 {
		return nil, errors.Join(failures...)
	}
	return outs, nil
}
