package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The goldens under testdata/figures were rendered before the query
// layer existed; regenerate with -update-figure-goldens only for an
// intentional, reviewed output change.
var updateFigureGoldens = flag.Bool("update-figure-goldens", false,
	"rewrite testdata/figures/*.golden from the current figure output")

// TestQueryDisabledByteIdentical pins the passive contract of the query
// layer: with Config.Queries unset (the default — tinyScale sets no
// query specs), every pre-existing registry figure renders byte-identical
// to the goldens captured before the query subsystem landed. Attaching
// derived-data queries reshapes repository needs and the overlay, so the
// layer must be provably inert when unused — the same contract
// TestObsDisabledByteIdentical enforces for observability.
func TestQueryDisabledByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps are slow")
	}
	registry := Figures()
	goldens, err := filepath.Glob(filepath.Join("testdata", "figures", "*.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !*updateFigureGoldens && len(goldens) == 0 {
		t.Fatal("no figure goldens; run with -update-figure-goldens first")
	}
	covered := make(map[string]bool)
	for _, path := range goldens {
		covered[figureIDFromGolden(path)] = true
	}
	for id, fn := range registry {
		if bornAfterGoldens(id) {
			continue // born after the goldens were captured: no pre-existing form
		}
		if !*updateFigureGoldens && !covered[id] {
			t.Errorf("figure %s has no golden; run with -update-figure-goldens", id)
			continue
		}
		id, fn := id, fn
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			fig, err := fn(tinyScale())
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := fig.Fprint(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "figures", id+".golden")
			if *updateFigureGoldens {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("figure %s output drifted from its pre-query golden:\n--- golden ---\n%s\n--- got ---\n%s",
					id, want, buf.Bytes())
			}
		})
	}
}

// figureIDFromGolden maps testdata/figures/<id>.golden back to the id.
func figureIDFromGolden(path string) string {
	base := filepath.Base(path)
	return base[:len(base)-len(".golden")]
}

// bornAfterGoldens reports whether the figure id belongs to a layer that
// landed after the goldens were captured (query figures require Queries
// set; vserve figures require VirtualSessions set) — those have no
// pre-existing form to compare against. Every other figure must stay
// byte-identical with both layers disabled.
func bornAfterGoldens(id string) bool {
	switch id {
	case "query-fidelity", "query-cost", "vserve-scale", "vserve-flash",
		"res-recovery-disk":
		return true
	}
	return false
}
