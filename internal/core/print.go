package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Fprint renders a figure result as the rows/series the paper plots:
// tabular results as an aligned table, curve figures as one row per x
// value with one column per series.
func (f *FigureResult) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	switch {
	case len(f.Rows) > 0:
		fmt.Fprintln(tw, strings.Join(f.Header, "\t"))
		for _, row := range f.Rows {
			fmt.Fprintln(tw, strings.Join(row, "\t"))
		}
	case len(f.Series) > 0:
		header := []string{f.XLabel}
		for _, s := range f.Series {
			header = append(header, s.Label)
		}
		fmt.Fprintln(tw, strings.Join(header, "\t"))
		for i := range f.Series[0].X {
			row := []string{fmt.Sprintf("%g", f.Series[0].X[i])}
			for _, s := range f.Series {
				row = append(row, fmt.Sprintf("%.2f", s.Y[i]))
			}
			fmt.Fprintln(tw, strings.Join(row, "\t"))
		}
		fmt.Fprintf(tw, "(y values: %s)\n", f.YLabel)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV emits the figure's data in machine-readable form for external
// plotting: tabular figures as-is, curve figures as one row per x with one
// column per series.
func (f *FigureResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	switch {
	case len(f.Rows) > 0:
		if err := cw.Write(f.Header); err != nil {
			return err
		}
		for _, row := range f.Rows {
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	case len(f.Series) > 0:
		header := []string{f.XLabel}
		for _, s := range f.Series {
			header = append(header, s.Label)
		}
		if err := cw.Write(header); err != nil {
			return err
		}
		for i := range f.Series[0].X {
			row := []string{strconv.FormatFloat(f.Series[0].X[i], 'g', -1, 64)}
			for _, s := range f.Series {
				row = append(row, strconv.FormatFloat(s.Y[i], 'f', 4, 64))
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
