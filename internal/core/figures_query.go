package core

import "fmt"

// This file holds the derived-data query evaluation: continuous queries
// (internal/query) subscribe to *derived* values — portfolio averages,
// spreads, windowed extrema — with a tolerance cQ on the result, and the
// allocation rules translate cQ into per-input tolerances the ordinary
// DeriveNeeds/Eq. 3+7 pipeline enforces. The fidelity figure checks the
// guarantee that buys (result fidelity never below the union-bound floor
// the input fidelities imply); the cost figure measures the message-cost
// trade between repository-side and client-side evaluation.

// queryToleranceGrid is the cQ sweep — the result-tolerance x-axis of
// both query figures. The stocks traces walk a $1 band in cent steps, so
// the grid spans "almost exact" to "most updates filtered".
var queryToleranceGrid = []float64{0.02, 0.05, 0.1, 0.2, 0.4}

// queryCatalogue builds the sweep's query set over the stocks items at
// result tolerance cQ: one of each aggregate family, all window 1, so
// the union-bound floor argument is airtight per tick (windowed results
// inherit it through the 1-Lipschitz combiners). Item indices wrap so
// tiny scales still resolve every input.
func queryCatalogue(items int, cq float64) []string {
	it := func(i int) string { return fmt.Sprintf("ITEM%03d", i%items) }
	return []string{
		fmt.Sprintf("avg(%s,%s,%s)@%g", it(0), it(1), it(2), cq),
		fmt.Sprintf("sum(%s,%s)@%g", it(3), it(4), cq),
		fmt.Sprintf("min(%s,%s,%s)@%g", it(5), it(6), it(7), cq),
		fmt.Sprintf("max(%s,%s,%s)@%g", it(5), it(6), it(7), cq),
		fmt.Sprintf("diff(%s,%s)@%g", it(8), it(9), cq),
	}
}

// FigureQueryFidelity sweeps the result tolerance cQ and plots the mean
// result-level fidelity against the mean union-bound floor the measured
// input fidelities imply (result fidelity ≥ 1 − Σᵢ(1 − fᵢ)): the
// allocation rules are doing their job exactly when the result curve
// stays on or above the floor curve.
func FigureQueryFidelity(s Scale) (*FigureResult, error) {
	var cfgs []Config
	for _, cq := range queryToleranceGrid {
		cfg := s.base()
		cfg.CoopDegree = 0 // controlled cooperation
		cfg.Workload = "stocks"
		cfg.VirtualSessions, cfg.Scenario = 0, "" // this figure owns the population
		cfg.Queries = queryCatalogue(cfg.Items, cq)
		cfgs = append(cfgs, cfg)
	}
	outs, err := s.runAll(cfgs)
	if err != nil {
		return nil, err
	}
	result := Series{Label: "result fidelity (mean)"}
	floor := Series{Label: "input union-bound floor (mean)"}
	worst := Series{Label: "result fidelity (worst)"}
	for i, cq := range queryToleranceGrid {
		q := outs[i].Queries
		if q == nil {
			return nil, fmt.Errorf("core: query-fidelity point %d ran without query stats", i)
		}
		result.X = append(result.X, cq)
		result.Y = append(result.Y, q.MeanFidelity)
		floor.X = append(floor.X, cq)
		floor.Y = append(floor.Y, q.MeanInputFloor)
		worst.X = append(worst.X, cq)
		worst.Y = append(worst.Y, q.WorstFidelity)
	}
	return &FigureResult{
		ID:     "query-fidelity",
		Title:  "Derived-Query Result Fidelity vs Result Tolerance (against the allocation's floor)",
		XLabel: "Result Tolerance cQ ($)",
		YLabel: "Fidelity",
		Series: []Series{result, floor, worst},
		Notes: []string{
			"per-input tolerances derive from cQ by operator sensitivity (sum cQ/n, avg/min/max cQ, diff cQ/2)",
			"result fidelity on or above the input union-bound floor means coherent inputs bought a coherent result",
		},
	}, nil
}

// FigureQueryCost sweeps cQ and plots the last-hop message cost per
// query under the two evaluation placements. Repository-side evaluation
// ships only published result changes; client-side evaluation ships
// every input delivery (and resync). One run yields both curves: the
// fleet tallies both costs for the same delivery stream.
func FigureQueryCost(s Scale) (*FigureResult, error) {
	var cfgs []Config
	for _, cq := range queryToleranceGrid {
		cfg := s.base()
		cfg.CoopDegree = 0 // controlled cooperation
		cfg.Workload = "stocks"
		cfg.VirtualSessions, cfg.Scenario = 0, "" // this figure owns the population
		cfg.Queries = queryCatalogue(cfg.Items, cq)
		cfgs = append(cfgs, cfg)
	}
	outs, err := s.runAll(cfgs)
	if err != nil {
		return nil, err
	}
	repo := Series{Label: "repo placement (result pushes/query)"}
	client := Series{Label: "client placement (input pushes/query)"}
	for i, cq := range queryToleranceGrid {
		q := outs[i].Queries
		if q == nil {
			return nil, fmt.Errorf("core: query-cost point %d ran without query stats", i)
		}
		n := float64(q.Queries)
		repo.X = append(repo.X, cq)
		repo.Y = append(repo.Y, float64(q.ResultPushes)/n)
		client.X = append(client.X, cq)
		client.Y = append(client.Y, float64(q.InputPushes+q.Resyncs)/n)
	}
	return &FigureResult{
		ID:     "query-cost",
		Title:  "Derived-Query Message Cost vs Result Tolerance (evaluation placement)",
		XLabel: "Result Tolerance cQ ($)",
		YLabel: "Last-Hop Messages per Query",
		Series: []Series{repo, client},
		Notes: []string{
			"both placements see the same filtered delivery stream, so the result streams are identical",
			"repository-side evaluation collapses each query's inputs into one result stream on the last hop",
		},
	}, nil
}
