package core

import (
	"reflect"
	"testing"
)

func TestRunExperimentWithClients(t *testing.T) {
	cfg := tinyScale().base()
	cfg.Clients = 40
	cfg.SessionCap = 6
	out, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := out.Clients
	if c == nil {
		t.Fatal("client run carries no client stats")
	}
	if c.Sessions != 40 {
		t.Errorf("sessions = %d, want 40", c.Sessions)
	}
	if c.MeanFidelity <= 0 || c.MeanFidelity > 1 {
		t.Errorf("mean client fidelity %v out of range", c.MeanFidelity)
	}
	if c.Delivered == 0 {
		t.Error("no updates were delivered to any session")
	}
	// The repository tolerance is the most stringent across its clients,
	// so every looser client filters some of what its repository takes.
	if c.Filtered == 0 {
		t.Error("no per-client filtering happened")
	}
	// Client fidelity can never beat the source signal the repositories
	// observe; it should track the repository-level outcome closely.
	if c.MeanFidelity < out.Fidelity-0.25 {
		t.Errorf("client fidelity %v implausibly far below repository fidelity %v",
			c.MeanFidelity, out.Fidelity)
	}
}

func TestClientRunsAreDeterministic(t *testing.T) {
	cfg := tinyScale().base()
	cfg.Clients = 30
	cfg.SessionCap = 4
	cfg.SessionChurn = "churn:10:20"
	cfg.Faults = "churn:2"
	a, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Clients, b.Clients) {
		t.Errorf("same config produced different client stats:\n%+v\n%+v", a.Clients, b.Clients)
	}
	if a.Fidelity != b.Fidelity {
		t.Errorf("fidelity diverged: %v vs %v", a.Fidelity, b.Fidelity)
	}
}

// TestClientsDisabledLeavesRunUntouched pins the byte-identical guarantee
// the serving layer makes: with Clients unset the run must not differ in
// any observable way from one that predates the layer — same derivation
// path, no observer, no client stats.
func TestClientsDisabledLeavesRunUntouched(t *testing.T) {
	cfg := tinyScale().base()
	plain, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Clients != nil {
		t.Error("clientless run carries client stats")
	}
	// A client run at the same seed must differ (needs derive from the
	// population instead of the subscription workload) — catching a bug
	// where Clients is silently ignored.
	cfg.Clients = 40
	served, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if served.Stats.Messages == plain.Stats.Messages && served.Fidelity == plain.Fidelity {
		t.Error("enabling clients changed nothing about the run")
	}
}

func TestConfigValidatesClientFields(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Clients = -1 },
		func(c *Config) { c.SessionCap = -2 },
		func(c *Config) { c.SessionChurn = "churn:5" }, // needs Clients > 0
		func(c *Config) { c.Clients = 10; c.SessionChurn = "bogus" },
	}
	for i, mutate := range bad {
		cfg := Default()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid client config accepted", i)
		}
	}
	good := Default()
	good.Clients, good.ItemsPerClient, good.SessionCap = 100, 4, 10
	good.SessionChurn = "churn:2:30"
	if err := good.Validate(); err != nil {
		t.Errorf("valid client config rejected: %v", err)
	}
}

func TestClientFiguresDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep in -short mode")
	}
	s := tinyScale()
	for _, id := range []string{"clients-fidelity", "clients-churn"} {
		fn := Figures()[id]
		a, err := fn(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fn(s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two identical sweeps diverged", id)
		}
		for _, se := range a.Series {
			if len(se.X) == 0 {
				t.Errorf("%s: empty series %q", id, se.Label)
			}
		}
	}
}
