package core

import (
	"bytes"
	"strings"
	"testing"
)

// tinyScale keeps unit tests fast while preserving the mechanisms.
func tinyScale() Scale {
	return Scale{
		Repositories: 15,
		Routers:      45,
		Items:        12,
		Ticks:        300,
		CoopGrid:     []int{1, 4, 15},
		TValues:      []float64{0, 100},
		CommGridMs:   []float64{1, 125},
		CompGridMs:   []float64{-1, 25},
		Seed:         1,
	}
}

func TestRunExperimentBaseCase(t *testing.T) {
	cfg := tinyScale().base()
	out, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Fidelity <= 0.5 || out.Fidelity > 1 {
		t.Errorf("base-case fidelity %v implausible", out.Fidelity)
	}
	if out.CoopDegreeUsed < 1 {
		t.Errorf("controlled cooperation degree %d", out.CoopDegreeUsed)
	}
	if out.Stats.Messages == 0 {
		t.Error("no messages were sent")
	}
	if out.String() == "" {
		t.Error("empty outcome string")
	}
}

func TestRunExperimentDeterministic(t *testing.T) {
	cfg := tinyScale().base()
	a, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fidelity != b.Fidelity || a.Stats.Messages != b.Stats.Messages {
		t.Errorf("same config produced different outcomes: %v vs %v / %d vs %d msgs",
			a.Fidelity, b.Fidelity, a.Stats.Messages, b.Stats.Messages)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Repositories = 0 },
		func(c *Config) { c.Items = 0 },
		func(c *Config) { c.Ticks = 1 },
		func(c *Config) { c.SubscribeProb = 0 },
		func(c *Config) { c.SubscribeProb = 1.5 },
		func(c *Config) { c.StringentFrac = -0.1 },
		func(c *Config) { c.CoopDegree = -1 },
		func(c *Config) { c.Builder = "mystery" },
		func(c *Config) { c.Protocol = "mystery" },
		func(c *Config) { c.Preference = "P3" },
	}
	for i, mutate := range bad {
		cfg := Default()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := Default().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestZeroDelayPerfectFidelityEndToEnd(t *testing.T) {
	cfg := tinyScale().base()
	cfg.CommDelayMs = -1 // exactly zero
	cfg.CompDelayMs = -1
	cfg.StringentFrac = 1
	for _, proto := range []string{"distributed", "centralized"} {
		cfg.Protocol = proto
		out, err := RunExperiment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if out.Fidelity != 1 {
			t.Errorf("%s fidelity %v with zero delays, want exactly 1", proto, out.Fidelity)
		}
	}
}

// TestFigure3UShape asserts the paper's headline claim at test scale: for
// stringent coherency mixes, both no cooperation (chain) and full
// cooperation (star) lose more fidelity than a moderate degree.
func TestFigure3UShape(t *testing.T) {
	s := SmallScale()
	fig, err := Figure3(s)
	if err != nil {
		t.Fatal(err)
	}
	var t100 Series
	for _, se := range fig.Series {
		if se.Label == "T=100" {
			t100 = se
		}
	}
	if len(t100.Y) == 0 {
		t.Fatal("missing T=100 series")
	}
	first, last := t100.Y[0], t100.Y[len(t100.Y)-1]
	min := t100.Y[0]
	minIdx := 0
	for i, y := range t100.Y {
		if y < min {
			min, minIdx = y, i
		}
	}
	if minIdx == 0 || minIdx == len(t100.Y)-1 {
		t.Errorf("T=100 minimum at the boundary (index %d of %v): not U-shaped", minIdx, t100.Y)
	}
	if first <= min || last <= min {
		t.Errorf("U-shape violated: first %.2f, min %.2f, last %.2f", first, min, last)
	}
	// The optimum should fall in the paper's 3-20 dependents band.
	if x := t100.X[minIdx]; x < 2 || x > 20 {
		t.Errorf("minimum at degree %v, paper reports 3-20", x)
	}
	// Stringency ordering: T=100 should lose at least as much as T=0
	// everywhere.
	var t0 Series
	for _, se := range fig.Series {
		if se.Label == "T=0" {
			t0 = se
		}
	}
	for i := range t0.Y {
		if t0.Y[i] > t100.Y[i]+0.5 {
			t.Errorf("T=0 loss %.2f above T=100 loss %.2f at degree %v",
				t0.Y[i], t100.Y[i], t0.X[i])
		}
	}
}

// TestFigure7aLShape: with controlled cooperation the curve must flatten —
// loss at the largest offered degree stays within noise of the loss at the
// Eq. 2 degree, instead of rising as in Figure 3.
func TestFigure7aLShape(t *testing.T) {
	s := SmallScale()
	fig, err := Figure7a(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, se := range fig.Series {
		if se.Label != "T=100" {
			continue
		}
		last := se.Y[len(se.Y)-1]
		mid := se.Y[2] // past the knee at small scale
		if last > mid*1.5+0.5 {
			t.Errorf("controlled cooperation curve rises at the tail: mid %.2f -> last %.2f", mid, last)
		}
		if se.Y[0] <= last {
			t.Errorf("no knee: loss at degree 1 (%.2f) not above plateau (%.2f)", se.Y[0], last)
		}
	}
}

// TestFigure6CompDelayMonotone: without cooperation, loss grows with the
// computational delay for stringent mixes.
func TestFigure6CompDelayMonotone(t *testing.T) {
	s := tinyScale()
	fig, err := Figure6(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, se := range fig.Series {
		if se.Label != "T=100" {
			continue
		}
		if se.Y[len(se.Y)-1] <= se.Y[0] {
			t.Errorf("T=100 loss not increasing with comp delay: %v", se.Y)
		}
	}
}

func TestFigure4Rows(t *testing.T) {
	fig, err := Figure4(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(fig.Rows))
	}
	// naive-eq3 must lose; the exact algorithms must not.
	if fig.Rows[0][1] == "0.00" {
		t.Errorf("naive-eq3 row shows zero loss: %v", fig.Rows[0])
	}
	for _, row := range fig.Rows[1:] {
		if row[1] != "0.00" {
			t.Errorf("exact protocol %s lost fidelity: %v", row[0], row)
		}
	}
}

func TestFigure11Comparison(t *testing.T) {
	fig, err := Figure11(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(fig.Rows))
	}
	if fig.Rows[0][0] != "centralized" || fig.Rows[1][0] != "distributed" {
		t.Fatalf("unexpected row order: %v", fig.Rows)
	}
}

func TestScalabilityWithinBounds(t *testing.T) {
	fig, err := Scalability(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(fig.Rows))
	}
	if !strings.Contains(fig.Notes[0], "loss increase") {
		t.Errorf("missing loss-increase note: %v", fig.Notes)
	}
}

func TestAllFiguresRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep in -short mode")
	}
	s := tinyScale()
	for id, fn := range Figures() {
		id, fn := id, fn
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			fig, err := fn(s)
			if err != nil {
				t.Fatal(err)
			}
			if fig.ID != id {
				t.Errorf("figure reports id %q, want %q", fig.ID, id)
			}
			if len(fig.Series) == 0 && len(fig.Rows) == 0 {
				t.Error("figure produced neither series nor rows")
			}
			var buf bytes.Buffer
			if err := fig.Fprint(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), fig.ID) {
				t.Error("printed output missing figure id")
			}
		})
	}
}

func TestFigureIDsSortedAndComplete(t *testing.T) {
	ids := FigureIDs()
	if len(ids) != len(Figures()) {
		t.Fatalf("FigureIDs returned %d ids, registry has %d", len(ids), len(Figures()))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Errorf("ids not sorted: %v", ids)
		}
	}
	for _, want := range []string{"table1", "fig3", "fig11", "scale", "ext-pull"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q", want)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	curve := &FigureResult{
		ID: "x", XLabel: "deg",
		Series: []Series{{Label: "T=0", X: []float64{1, 2}, Y: []float64{0.5, 0.25}}},
	}
	var buf bytes.Buffer
	if err := curve.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "deg,T=0\n1,0.5000\n2,0.2500\n"
	if buf.String() != want {
		t.Errorf("curve csv = %q, want %q", buf.String(), want)
	}
	table := &FigureResult{
		ID: "y", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}},
	}
	buf.Reset()
	if err := table.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "a,b\n1,2\n" {
		t.Errorf("table csv = %q", buf.String())
	}
}
