package core

import "fmt"

// This file holds the client-serving evaluation: the paper attaches end
// users with their own tolerances to repositories (Section 1.2) but
// evaluates fidelity at repositories; these two figures measure it where
// it matters — at the client — under session load and churn. Both run
// through the ordinary sweep runner, sharing substrate caches and the
// worker pool with every other figure.

// sessionLoadFactors scale the session population as multiples of the
// repository count — the x-axis of the load figure.
var sessionLoadFactors = []int{1, 2, 5, 10}

// sessionCaps are the per-repository session caps plotted as separate
// curves (0 = unlimited).
var sessionCaps = []int{0, 4, 16}

// FigureClientFidelity measures client-observed loss of fidelity as the
// session population grows, one curve per session cap. Tighter caps
// redirect overflow clients away from their nearest repository; larger
// populations widen and tighten every repository's serving set.
func FigureClientFidelity(s Scale) (*FigureResult, error) {
	var cfgs []Config
	for _, cap := range sessionCaps {
		for _, factor := range sessionLoadFactors {
			cfg := s.base()
			cfg.CoopDegree = 0                        // controlled cooperation
			cfg.VirtualSessions, cfg.Scenario = 0, "" // this figure owns the population
			cfg.Clients = factor * cfg.Repositories
			cfg.SessionCap = cap
			cfgs = append(cfgs, cfg)
		}
	}
	outs, err := s.runAll(cfgs)
	if err != nil {
		return nil, err
	}
	var series []Series
	var redirects int
	i := 0
	for _, cap := range sessionCaps {
		label := fmt.Sprintf("cap=%d", cap)
		if cap == 0 {
			label = "cap=unlimited"
		}
		se := Series{Label: label}
		for range sessionLoadFactors {
			c := outs[i].Clients
			if c == nil {
				return nil, fmt.Errorf("core: clients-fidelity point %d ran without client stats", i)
			}
			se.X = append(se.X, float64(c.Sessions))
			se.Y = append(se.Y, c.LossPercent)
			redirects += c.Redirects
			i++
		}
		series = append(series, se)
	}
	return &FigureResult{
		ID:     "clients-fidelity",
		Title:  "Client-Observed Fidelity vs Session Load (one curve per session cap)",
		XLabel: "Sessions",
		YLabel: "Client Loss of Fidelity (%)",
		Series: series,
		Notes: []string{
			"each client attaches to the nearest repository under the cap; overflow redirects to the next candidate",
			fmt.Sprintf("%d admissions redirected across the sweep", redirects),
		},
	}, nil
}

// clientChurnGrid is the combined churn x-axis: expected events per 100
// ticks, applied to the repository population (crashes, forcing session
// migrations) and at 5x to the session population (arrivals/departures).
var clientChurnGrid = []float64{0, 0.5, 1, 2, 4}

// FigureClientChurn measures the serving layer under combined churn:
// repositories crash and rejoin (sessions migrate with a resync) while
// sessions themselves arrive and depart under a seeded plan. It plots
// client-observed loss alongside the migration and redirect work per 100
// sessions — the operational cost of keeping the population served.
func FigureClientChurn(s Scale) (*FigureResult, error) {
	var cfgs []Config
	for _, rate := range clientChurnGrid {
		cfg := s.base()
		cfg.CoopDegree = 0                        // controlled cooperation
		cfg.VirtualSessions, cfg.Scenario = 0, "" // this figure owns the population
		cfg.Clients = 3 * cfg.Repositories
		cfg.SessionCap = 8
		cfg.Faults = fmt.Sprintf("churn:%g", rate)
		cfg.SessionChurn = fmt.Sprintf("churn:%g", 5*rate)
		cfgs = append(cfgs, cfg)
	}
	outs, err := s.runAll(cfgs)
	if err != nil {
		return nil, err
	}
	loss := Series{Label: "client loss %"}
	migrations := Series{Label: "migrations per 100 sessions"}
	churn := Series{Label: "departures per 100 sessions"}
	for i, rate := range clientChurnGrid {
		c := outs[i].Clients
		if c == nil {
			return nil, fmt.Errorf("core: clients-churn point %d ran without client stats", i)
		}
		per100 := 100 / float64(c.Sessions)
		loss.X = append(loss.X, rate)
		loss.Y = append(loss.Y, c.LossPercent)
		migrations.X = append(migrations.X, rate)
		migrations.Y = append(migrations.Y, float64(c.Migrations)*per100)
		churn.X = append(churn.X, rate)
		churn.Y = append(churn.Y, float64(c.Departures)*per100)
	}
	return &FigureResult{
		ID:     "clients-churn",
		Title:  "Session Redirect/Migration Rate and Client Fidelity vs Churn",
		XLabel: "Repository Churn Rate (crashes per 100 ticks; session churn at 5x)",
		YLabel: "Client Loss of Fidelity (%) / Events per 100 Sessions",
		Series: []Series{loss, migrations, churn},
		Notes: []string{
			"sessions migrate (with a resync to the new repository's copy) when their repository crashes",
			"session arrivals/departures follow a seeded plan over the session population",
		},
	}, nil
}
