package core

import (
	"fmt"
	"sort"
)

// Series is one labelled curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// FigureResult carries everything needed to print (or plot) one
// reproduced table or figure. Curve figures fill Series; tabular results
// fill Header/Rows. Notes carry commentary such as derived parameters.
type FigureResult struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Header []string
	Rows   [][]string
	Notes  []string
}

// FigureFunc regenerates one table or figure at the given scale.
type FigureFunc func(Scale) (*FigureResult, error)

// Figures returns the registry of reproducible tables and figures, keyed
// by the ids used throughout DESIGN.md and EXPERIMENTS.md.
func Figures() map[string]FigureFunc {
	return map[string]FigureFunc{
		"table1":            Table1,
		"fig3":              Figure3,
		"fig4":              Figure4,
		"fig5":              Figure5,
		"fig6":              Figure6,
		"fig7a":             Figure7a,
		"fig7b":             Figure7b,
		"fig7c":             Figure7c,
		"fig8":              Figure8,
		"fig9":              Figure9,
		"fig10":             Figure10,
		"fig11":             Figure11,
		"scale":             Scalability,
		"ablation-tree":     AblationTree,
		"ablation-k":        AblationK,
		"ablation-queueing": AblationQueueing,
		"ext-pull":          ExtensionPull,
		"res-fidelity":      FigureFaultFidelity,
		"res-recovery":      FigureRecoveryLatency,
		"res-recovery-disk": FigureRecoveryDisk,
		"clients-fidelity":  FigureClientFidelity,
		"clients-churn":     FigureClientChurn,
		"obs-latency":       FigureObsLatency,
		"obs-load":          FigureObsLoad,
		"query-fidelity":    FigureQueryFidelity,
		"query-cost":        FigureQueryCost,
		"vserve-scale":      FigureVServeScale,
		"vserve-flash":      FigureVServeFlash,
	}
}

// FigureIDs returns the registry keys in sorted order.
func FigureIDs() []string {
	ids := make([]string, 0)
	for id := range Figures() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// coopSweep runs one loss-vs-cooperation curve per T value, with mutate
// applied to each configuration before running.
func coopSweep(s Scale, mutate func(*Config)) ([]Series, error) {
	var cfgs []Config
	for _, tval := range s.TValues {
		for _, coop := range s.CoopGrid {
			cfg := s.base()
			cfg.StringentFrac = tval / 100
			cfg.CoopDegree = coop
			if coop > cfg.Repositories {
				cfg.CoopDegree = cfg.Repositories
			}
			if mutate != nil {
				mutate(&cfg)
			}
			cfgs = append(cfgs, cfg)
		}
	}
	outs, err := s.runAll(cfgs)
	if err != nil {
		return nil, err
	}
	var series []Series
	i := 0
	for _, tval := range s.TValues {
		se := Series{Label: fmt.Sprintf("T=%.0f", tval)}
		for _, coop := range s.CoopGrid {
			se.X = append(se.X, float64(coop))
			se.Y = append(se.Y, outs[i].LossPercent)
			i++
		}
		series = append(series, se)
	}
	return series, nil
}

// Figure3 reproduces the headline U-shaped curve: loss of fidelity versus
// degree of cooperation for each coherency mix T.
func Figure3(s Scale) (*FigureResult, error) {
	series, err := coopSweep(s, nil)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID:     "fig3",
		Title:  "Need for Limiting Cooperation (loss vs degree of cooperation)",
		XLabel: "Degree of Cooperation",
		YLabel: "Loss of Fidelity (%)",
		Series: series,
	}, nil
}

// delaySweep runs one loss-vs-delay curve per T value.
func delaySweep(s Scale, grid []float64, mutate func(*Config, float64)) ([]Series, error) {
	var cfgs []Config
	for _, tval := range s.TValues {
		for _, d := range grid {
			cfg := s.base()
			cfg.StringentFrac = tval / 100
			mutate(&cfg, d)
			cfgs = append(cfgs, cfg)
		}
	}
	outs, err := s.runAll(cfgs)
	if err != nil {
		return nil, err
	}
	var series []Series
	i := 0
	for _, tval := range s.TValues {
		se := Series{Label: fmt.Sprintf("T=%.0f", tval)}
		for _, d := range grid {
			x := d
			if x < 0 {
				x = 0 // the "-1 means exactly zero" convention
			}
			se.X = append(se.X, x)
			se.Y = append(se.Y, outs[i].LossPercent)
			i++
		}
		series = append(series, se)
	}
	return series, nil
}

// Figure5 reproduces performance without cooperation while communication
// delays vary: the source serves every repository directly.
func Figure5(s Scale) (*FigureResult, error) {
	series, err := delaySweep(s, s.CommGridMs, func(cfg *Config, d float64) {
		cfg.Builder = "direct"
		cfg.CoopDegree = cfg.Repositories
		cfg.CommDelayMs = d
	})
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID:     "fig5",
		Title:  "Performance without Cooperation, varying Communication Delays",
		XLabel: "Communication Delays (ms)",
		YLabel: "Loss of Fidelity (%)",
		Series: series,
		Notes:  []string{"source serves all repositories directly; computational delay 12.5 ms"},
	}, nil
}

// Figure6 reproduces performance without cooperation while computational
// delays vary.
func Figure6(s Scale) (*FigureResult, error) {
	series, err := delaySweep(s, s.CompGridMs, func(cfg *Config, d float64) {
		cfg.Builder = "direct"
		cfg.CoopDegree = cfg.Repositories
		cfg.CommDelayMs = 25
		cfg.CompDelayMs = d
	})
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID:     "fig6",
		Title:  "Performance without Cooperation, varying Computational Delays",
		XLabel: "Computational Delays (ms)",
		YLabel: "Loss of Fidelity (%)",
		Series: series,
		Notes:  []string{"source serves all repositories directly; communication delay 25 ms"},
	}, nil
}

// Figure7a reproduces the controlled-cooperation base case: the offered
// degree of cooperation is capped by Eq. 2, turning the U into an L.
func Figure7a(s Scale) (*FigureResult, error) {
	s, r := s.withRunner()
	series, err := coopSweep(s, func(cfg *Config) {
		offered := cfg.CoopDegree
		cfg.CoopDegree = 0 // ask RunExperiment for the Eq. 2 value...
		probe, err := r.controlledDegree(*cfg)
		if err == nil && offered > probe {
			cfg.CoopDegree = probe // ...and never offer more than it
		} else {
			cfg.CoopDegree = offered
		}
	})
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID:     "fig7a",
		Title:  "Performance with Controlled Cooperation (base case)",
		XLabel: "Degree of Cooperation (offered)",
		YLabel: "Loss of Fidelity (%)",
		Series: series,
		Notes:  []string{"effective degree = min(offered, Eq.2 value): the curve flattens past it"},
	}, nil
}

// Figure7b: controlled cooperation while communication delays vary; Eq. 2
// adapts the degree upward with the delay.
func Figure7b(s Scale) (*FigureResult, error) {
	series, err := delaySweep(s, s.CommGridMs, func(cfg *Config, d float64) {
		cfg.CommDelayMs = d
		cfg.CoopDegree = 0 // controlled
	})
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID:     "fig7b",
		Title:  "Controlled Cooperation, varying Communication Delays",
		XLabel: "Communication Delays (ms)",
		YLabel: "Loss of Fidelity (%)",
		Series: series,
	}, nil
}

// Figure7c: controlled cooperation while computational delays vary; Eq. 2
// adapts the degree downward as computation grows.
func Figure7c(s Scale) (*FigureResult, error) {
	series, err := delaySweep(s, s.CompGridMs, func(cfg *Config, d float64) {
		cfg.CompDelayMs = d
		cfg.CoopDegree = 0 // controlled
	})
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID:     "fig7c",
		Title:  "Controlled Cooperation, varying Computational Delays",
		XLabel: "Computational Delays (ms)",
		YLabel: "Loss of Fidelity (%)",
		Series: series,
	}, nil
}

// Figure8 compares filtered dissemination (T=0: every update selectively
// forwarded) against pushing all updates, across the cooperation sweep.
// The figure's mechanism is overload — "the latter approach disseminates
// more messages, which increases the network overheads as well as
// computational delays at repositories" — so it runs under the strict
// queueing service model, where the unfiltered flood actually backs
// nodes up.
func Figure8(s Scale) (*FigureResult, error) {
	var cfgs []Config
	for _, mode := range []string{"all-push", "distributed"} {
		for _, coop := range s.CoopGrid {
			cfg := s.base()
			cfg.StringentFrac = 0
			cfg.CoopDegree = coop
			cfg.Protocol = mode
			cfg.Queueing = true
			cfgs = append(cfgs, cfg)
		}
	}
	outs, err := s.runAll(cfgs)
	if err != nil {
		return nil, err
	}
	labels := []string{"All updates", "Filtered"}
	var series []Series
	i := 0
	for _, lbl := range labels {
		se := Series{Label: lbl}
		for _, coop := range s.CoopGrid {
			se.X = append(se.X, float64(coop))
			se.Y = append(se.Y, outs[i].LossPercent)
			i++
		}
		series = append(series, se)
	}
	return &FigureResult{
		ID:     "fig8",
		Title:  "Importance of Filtering during Update Propagation",
		XLabel: "Degree of Cooperation",
		YLabel: "Loss of Fidelity (%)",
		Series: series,
	}, nil
}

// Figure9 sweeps the load controller's P% admission band, with and
// without controlled cooperation ("W" curves).
func Figure9(s Scale) (*FigureResult, error) {
	s, r := s.withRunner()
	pvals := []float64{1, 5, 10, 25}
	eq2, err := r.controlledDegree(s.base())
	if err != nil {
		return nil, err
	}
	var cfgs []Config
	for _, controlled := range []bool{false, true} {
		for _, p := range pvals {
			for _, coop := range s.CoopGrid {
				cfg := s.base()
				cfg.PPercent = p
				cfg.CoopDegree = coop
				if controlled && coop > eq2 {
					cfg.CoopDegree = eq2
				}
				cfgs = append(cfgs, cfg)
			}
		}
	}
	outs, err := s.runAll(cfgs)
	if err != nil {
		return nil, err
	}
	var series []Series
	i := 0
	for _, controlled := range []bool{false, true} {
		for _, p := range pvals {
			lbl := fmt.Sprintf("P=%.0f", p)
			if controlled {
				lbl += "W"
			}
			se := Series{Label: lbl}
			for _, coop := range s.CoopGrid {
				se.X = append(se.X, float64(coop))
				se.Y = append(se.Y, outs[i].LossPercent)
				i++
			}
			series = append(series, se)
		}
	}
	return &FigureResult{
		ID:     "fig9",
		Title:  "Effect of Different P% Values (W = with controlled cooperation)",
		XLabel: "Degree of Cooperation",
		YLabel: "Loss of Fidelity (%)",
		Series: series,
		Notes:  []string{fmt.Sprintf("controlled (Eq.2) degree = %d", eq2)},
	}, nil
}

// Figure10 compares the two preference functions P1 and P2, with and
// without controlled cooperation.
func Figure10(s Scale) (*FigureResult, error) {
	s, r := s.withRunner()
	prefs := []string{"P1", "P2"}
	eq2, err := r.controlledDegree(s.base())
	if err != nil {
		return nil, err
	}
	var cfgs []Config
	for _, controlled := range []bool{false, true} {
		for _, pref := range prefs {
			for _, coop := range s.CoopGrid {
				cfg := s.base()
				cfg.Preference = pref
				cfg.CoopDegree = coop
				if controlled && coop > eq2 {
					cfg.CoopDegree = eq2
				}
				cfgs = append(cfgs, cfg)
			}
		}
	}
	outs, err := s.runAll(cfgs)
	if err != nil {
		return nil, err
	}
	var series []Series
	i := 0
	for _, controlled := range []bool{false, true} {
		for _, pref := range prefs {
			lbl := pref
			if controlled {
				lbl += "W"
			}
			se := Series{Label: lbl}
			for _, coop := range s.CoopGrid {
				se.X = append(se.X, float64(coop))
				se.Y = append(se.Y, outs[i].LossPercent)
				i++
			}
			series = append(series, se)
		}
	}
	return &FigureResult{
		ID:     "fig10",
		Title:  "Effect of Different Preference Functions (W = with controlled cooperation)",
		XLabel: "Degree of Cooperation",
		YLabel: "Loss of Fidelity (%)",
		Series: series,
	}, nil
}

// Figure11 compares the centralized and distributed dissemination
// approaches on source checks (a) and messages (b).
func Figure11(s Scale) (*FigureResult, error) {
	var cfgs []Config
	for _, proto := range []string{"centralized", "distributed"} {
		cfg := s.base()
		cfg.Protocol = proto
		cfg.CoopDegree = 0 // controlled
		cfgs = append(cfgs, cfg)
	}
	outs, err := s.runAll(cfgs)
	if err != nil {
		return nil, err
	}
	rows := make([][]string, 0, 2)
	for _, o := range outs {
		rows = append(rows, []string{
			o.Config.Protocol,
			fmt.Sprintf("%d", o.Stats.SourceChecks),
			fmt.Sprintf("%d", o.Stats.RepoChecks),
			fmt.Sprintf("%d", o.Stats.Messages),
			fmt.Sprintf("%.3f", o.Fidelity),
		})
	}
	ratio := float64(outs[0].Stats.SourceChecks) / float64(max64(outs[1].Stats.SourceChecks, 1))
	return &FigureResult{
		ID:     "fig11",
		Title:  "Centralized vs Distributed Dissemination",
		Header: []string{"protocol", "source checks", "repo checks", "messages", "fidelity"},
		Rows:   rows,
		Notes: []string{fmt.Sprintf(
			"source-check ratio centralized/distributed = %.2f (paper: ~1.5); message counts should be close", ratio)},
	}, nil
}

// Scalability reproduces Section 6.3.5: growing the repository population
// (and the network proportionally) with controlled cooperation should cost
// only a few points of fidelity.
func Scalability(s Scale) (*FigureResult, error) {
	sizes := []int{s.Repositories, 2 * s.Repositories, 3 * s.Repositories}
	var cfgs []Config
	for _, n := range sizes {
		cfg := s.base()
		cfg.Repositories = n
		cfg.Routers = 6 * n
		cfg.CoopDegree = 0 // controlled
		cfgs = append(cfgs, cfg)
	}
	outs, err := s.runAll(cfgs)
	if err != nil {
		return nil, err
	}
	rows := make([][]string, 0, len(outs))
	for _, o := range outs {
		rows = append(rows, []string{
			fmt.Sprintf("%d", o.Config.Repositories),
			fmt.Sprintf("%d", o.Config.Repositories+o.Config.Routers+1),
			fmt.Sprintf("%.2f", o.LossPercent),
			fmt.Sprintf("%d", o.CoopDegreeUsed),
			fmt.Sprintf("%d", o.Tree.Diameter),
		})
	}
	delta := outs[len(outs)-1].LossPercent - outs[0].LossPercent
	return &FigureResult{
		ID:     "scale",
		Title:  "Scalability: loss of fidelity as the repository population triples",
		Header: []string{"repositories", "total nodes", "loss %", "coop degree", "diameter"},
		Rows:   rows,
		Notes:  []string{fmt.Sprintf("loss increase base->3x = %.2f points (paper: <5)", delta)},
	}, nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
