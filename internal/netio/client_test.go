package netio

import (
	"testing"
	"time"

	"d3t/internal/coherency"
	"d3t/internal/repository"
)

// sourceNode starts a stand-alone source serving item X to no children —
// the minimal publisher for client-session tests.
func sourceNode(t *testing.T, cfg NodeConfig) *Node {
	t.Helper()
	n, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// TestRemoteClientFilteredSubscribe is the wire-level acceptance test:
// a remote client subscribes over TCP and receives exactly the updates
// that exceed its own tolerance, starting with a resync of the current
// value.
func TestRemoteClientFilteredSubscribe(t *testing.T) {
	src := sourceNode(t, NodeConfig{ID: 0, Initial: map[string]float64{"X": 100}})

	c, err := Subscribe("alice", map[string]coherency.Requirement{"X": 50}, src.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Admission resyncs the current copy.
	select {
	case u := <-c.Updates():
		if !u.Resync || u.Item != "X" || u.Value != 100 {
			t.Fatalf("first push = %+v, want resync X=100", u)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no resync push after subscribe")
	}

	// 130 is within the client's tolerance 50 of 100: filtered out.
	if err := src.Publish("X", 130); err != nil {
		t.Fatal(err)
	}
	// 200 violates it: delivered.
	if err := src.Publish("X", 200); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-c.Updates():
		if u.Item != "X" || u.Value != 200 || u.Resync {
			t.Fatalf("delivered %+v, want the violating update X=200", u)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("violating update never delivered")
	}
	select {
	case u := <-c.Updates():
		t.Fatalf("unexpected extra push %+v (the 130 move must be filtered)", u)
	case <-time.After(50 * time.Millisecond):
	}
	if v, _ := c.Value("X"); v != 200 {
		t.Errorf("client copy %v, want 200", v)
	}
	// Close terminates ranging consumers: the channel must be closed.
	c.Close()
	if _, open := <-c.Updates(); open {
		t.Error("Updates channel still open after Close")
	}
}

func TestSubscribeCapRedirects(t *testing.T) {
	// Two equivalent nodes; node A caps sessions at 1 and names B as its
	// session peer.
	b := sourceNode(t, NodeConfig{ID: 0, Initial: map[string]float64{"X": 100}})
	a := sourceNode(t, NodeConfig{
		ID: 0, Initial: map[string]float64{"X": 100},
		SessionCap: 1, SessionPeers: []string{b.Addr()},
	})

	first, err := Subscribe("one", map[string]coherency.Requirement{"X": 10}, a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if first.Serving() != a.Addr() || first.Redirects() != 0 {
		t.Fatalf("first session serving=%s redirects=%d, want direct admission at A",
			first.Serving(), first.Redirects())
	}

	// The second client overflows A's cap and must follow the redirect.
	second, err := Subscribe("two", map[string]coherency.Requirement{"X": 10}, a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if second.Serving() != b.Addr() {
		t.Errorf("overflow session served by %s, want the peer %s", second.Serving(), b.Addr())
	}
	if second.Redirects() != 1 {
		t.Errorf("redirects = %d, want 1", second.Redirects())
	}
	if a.RedirectedSessions() != 1 {
		t.Errorf("node A redirected %d sessions, want 1", a.RedirectedSessions())
	}
}

func TestSubscribeRejectsUnservedTolerance(t *testing.T) {
	// A repository serving X only at tolerance 30 must turn away a
	// client demanding 10 (Eq. 1 at the leaf) but admit one demanding 40.
	parent := sourceNode(t, NodeConfig{ID: 0, Initial: map[string]float64{"X": 100}})
	repo, err := Start(NodeConfig{
		ID:      1,
		Serving: map[string]coherency.Requirement{"X": 30},
		Parents: []string{parent.Addr()},
		Initial: map[string]float64{"X": 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	// Wait for the repo's hello to land so the parent knows it.
	time.Sleep(20 * time.Millisecond)

	if _, err := Subscribe("greedy", map[string]coherency.Requirement{"X": 10}, repo.Addr()); err == nil {
		t.Error("session demanding 10 admitted by a repository serving at 30")
	}
	if c, err := Subscribe("fine", map[string]coherency.Requirement{"X": 40}, repo.Addr()); err != nil {
		t.Errorf("session demanding 40 rejected: %v", err)
	} else {
		c.Close()
	}
}

// TestRemoteClientMigratesAfterCrash is the acceptance scenario: the
// serving node dies, the remote client re-subscribes to the backup and
// keeps receiving filtered updates after a resync.
func TestRemoteClientMigratesAfterCrash(t *testing.T) {
	src := sourceNode(t, NodeConfig{ID: 0, Initial: map[string]float64{"X": 100}})
	// Two repositories fed by the source, both serving X at 5.
	mk := func(id int) *Node {
		n, err := Start(NodeConfig{
			ID:      repository.ID(id),
			Serving: map[string]coherency.Requirement{"X": 5},
			Parents: []string{src.Addr()},
			Initial: map[string]float64{"X": 100},
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	r1, r2 := mk(1), mk(2)
	defer r2.Close()

	c, err := Subscribe("mobile", map[string]coherency.Requirement{"X": 20}, r1.Addr(), r2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Serving() != r1.Addr() {
		t.Fatalf("session served by %s, want r1", c.Serving())
	}
	drainResync(c)

	// r1 crashes: the connection drops, the client must land on r2.
	r1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for c.Serving() != r2.Addr() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.Serving() != r2.Addr() {
		t.Fatalf("session still served by %s after r1 died", c.Serving())
	}
	if c.Migrations() != 1 {
		t.Errorf("migrations = %d, want 1", c.Migrations())
	}
}

// drainResync discards the admission resync pushes.
func drainResync(c *Client) {
	for {
		select {
		case <-c.Updates():
		case <-time.After(50 * time.Millisecond):
			return
		}
	}
}
