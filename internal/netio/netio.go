// Package netio serves the paper's distributed dissemination algorithm
// over TCP: every overlay node is a network server that accepts push
// connections from its dependents and forwards filtered updates to them.
// It is the deployment-shaped counterpart of the in-process runtimes —
// nodes could run in separate processes or on separate hosts; the tests
// and the livecluster example run them on localhost.
//
// Wire format: gob-encoded frames on long-lived TCP connections. A
// dependent dials its parent and sends a hello frame identifying itself;
// the parent then pushes update frames for the items it serves that
// dependent, filtered by Eqs. 3 and 7.
package netio

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"d3t/internal/coherency"
	"d3t/internal/repository"
)

// frame is the single wire message type; Kind discriminates.
type frame struct {
	Kind  kind
	From  repository.ID
	Item  string
	Value float64
	// Resync on a hello asks the parent to push its current copy of every
	// item it serves this child — the catch-up a dependent needs after
	// failing over to a backup parent. On an update it marks a catch-up
	// push to a freshly admitted client session.
	Resync bool
	// Name and Wants carry a client session's identity and watch list on
	// a subscribe frame.
	Name  string
	Wants map[string]coherency.Requirement
	// Addrs carries alternative endpoints on a redirect frame: the
	// session cap is reached (or an item is not served stringently
	// enough), try these instead.
	Addrs []string
}

type kind uint8

const (
	kindHello kind = iota + 1
	kindUpdate
	// kindSubscribe opens a client session: the server answers with
	// kindAccept followed by resync updates, or kindRedirect.
	kindSubscribe
	kindAccept
	kindRedirect
)

// NodeConfig describes one dissemination node. It is self-contained: a
// node needs no global overlay view, only its own serving set and its
// dependents' tolerances — exactly the state a deployed repository would
// hold.
type NodeConfig struct {
	// ID is the node's overlay id (SourceID for the source).
	ID repository.ID
	// Serving maps item -> the tolerance this node maintains. The source
	// may leave it nil (it holds exact values).
	Serving map[string]coherency.Requirement
	// Children maps dependent id -> the items (and tolerances) this node
	// pushes to it.
	Children map[repository.ID]map[string]coherency.Requirement
	// Listen is the TCP address to listen on ("127.0.0.1:0" for tests).
	Listen string
	// Parents are the parent nodes' addresses — one per distinct parent
	// serving this node items (LeLA may split a repository's needs across
	// several parents). Empty for the source.
	Parents []string
	// Backups are ranked backup-parent addresses. When a parent
	// connection dies the node dials them in order (skipping unreachable
	// ones) and resumes with a resync hello; the backup must already list
	// this node in its Children (capacity is reserved up front, exactly
	// like the precomputed backup lists of the simulation runner).
	Backups []string
	// Initial seeds the node's item values (and per-child filter state).
	Initial map[string]float64
	// SessionCap caps the client sessions this node serves (0 =
	// unlimited); an over-cap subscribe is answered with a redirect to
	// SessionPeers.
	SessionCap int
	// SessionPeers are alternative node addresses offered to redirected
	// clients — typically the node's overlay neighbors.
	SessionPeers []string
}

// Node is a running dissemination server.
type Node struct {
	cfg NodeConfig
	ln  net.Listener

	mu       sync.Mutex
	values   map[string]float64
	lastSent map[repository.ID]map[string]float64
	childEnc map[repository.ID]*gob.Encoder
	conns    map[net.Conn]bool
	closed   bool

	// Client sessions: per-name push encoder and last-delivered filter
	// state, plus the admission counters. clientNames mirrors the map
	// keys in sorted order so the per-update fan-out never re-sorts.
	clientEnc   map[string]*gob.Encoder
	clientLast  map[string]map[string]float64
	clientTols  map[string]map[string]coherency.Requirement
	clientNames []string
	redirected  int

	parentConns []net.Conn
	wg          sync.WaitGroup
	// Delivered counts updates received from the parent.
	delivered int
	// failovers counts successful re-connections to a backup parent.
	failovers int
}

// Start launches the node: listen for dependents, connect to the parent
// (if any), and begin forwarding.
func Start(cfg NodeConfig) (*Node, error) {
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("netio: node %d listen: %w", cfg.ID, err)
	}
	n := &Node{
		cfg:        cfg,
		ln:         ln,
		values:     make(map[string]float64),
		lastSent:   make(map[repository.ID]map[string]float64),
		childEnc:   make(map[repository.ID]*gob.Encoder),
		conns:      make(map[net.Conn]bool),
		clientEnc:  make(map[string]*gob.Encoder),
		clientLast: make(map[string]map[string]float64),
		clientTols: make(map[string]map[string]coherency.Requirement),
	}
	for item, v := range cfg.Initial {
		n.values[item] = v
	}
	for child, items := range cfg.Children {
		m := make(map[string]float64, len(items))
		for item := range items {
			if v, ok := cfg.Initial[item]; ok {
				m[item] = v
			}
		}
		n.lastSent[child] = m
	}

	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.acceptLoop()
	}()

	for _, parent := range cfg.Parents {
		conn, err := net.Dial("tcp", parent)
		if err != nil {
			n.Close()
			return nil, fmt.Errorf("netio: node %d dialing parent %s: %w", cfg.ID, parent, err)
		}
		n.mu.Lock()
		n.parentConns = append(n.parentConns, conn)
		n.mu.Unlock()
		if err := gob.NewEncoder(conn).Encode(frame{Kind: kindHello, From: cfg.ID}); err != nil {
			n.Close()
			return nil, fmt.Errorf("netio: node %d hello: %w", cfg.ID, err)
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.parentLoop(conn)
		}()
	}
	return n, nil
}

// Addr returns the node's listening address (for children to dial).
func (n *Node) Addr() string { return n.ln.Addr().String() }

// ID returns the node's overlay id.
func (n *Node) ID() repository.ID { return n.cfg.ID }

// Close shuts the node down and waits for its goroutines.
func (n *Node) Close() error {
	n.mu.Lock()
	n.closed = true
	for conn := range n.conns {
		conn.Close() // unblocks parked child readers
	}
	parents := append([]net.Conn(nil), n.parentConns...)
	n.mu.Unlock()
	err := n.ln.Close()
	for _, conn := range parents {
		conn.Close()
	}
	n.wg.Wait()
	return err
}

// Publish injects a new value at the source node and pushes it to every
// dependent whose tolerance it violates. Calling it on a non-source node
// is an error.
func (n *Node) Publish(item string, value float64) error {
	if len(n.cfg.Parents) > 0 {
		return errors.New("netio: Publish on a non-source node")
	}
	return n.apply(item, value)
}

// Value returns the node's current copy of item.
func (n *Node) Value(item string) (float64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.values[item]
	return v, ok
}

// Delivered returns how many updates this node has received from its
// parent.
func (n *Node) Delivered() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered
}

// Failovers returns how many times the node re-homed onto a backup parent
// after losing a parent connection.
func (n *Node) Failovers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.failovers
}

// ConnectedChildren reports how many dependents currently hold a live push
// connection.
func (n *Node) ConnectedChildren() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.childEnc)
}

// ExpectedChildren reports how many dependents the node is configured to
// serve.
func (n *Node) ExpectedChildren() int { return len(n.cfg.Children) }

// acceptLoop registers dependents as they dial in.
func (n *Node) acceptLoop() {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handleChild(conn)
		}()
	}
}

// handleChild performs the hello handshake and parks the connection as a
// push target. The child never sends further frames; the read blocks
// until either side closes, cleaning up the registration.
func (n *Node) handleChild(conn net.Conn) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		conn.Close()
		return
	}
	n.conns[conn] = true
	n.mu.Unlock()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	var hello frame
	if err := dec.Decode(&hello); err != nil {
		return
	}
	if hello.Kind == kindSubscribe {
		n.handleClient(conn, dec, hello)
		return
	}
	if hello.Kind != kindHello {
		return
	}
	if _, ok := n.cfg.Children[hello.From]; !ok {
		return // unknown dependent
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	enc := gob.NewEncoder(conn)
	n.childEnc[hello.From] = enc
	if hello.Resync {
		// A dependent that failed over to us catches up immediately: push
		// the current copy of every item we serve it, unconditionally, and
		// reset the edge filter state to match.
		items := make([]string, 0, len(n.cfg.Children[hello.From]))
		for item := range n.cfg.Children[hello.From] {
			items = append(items, item)
		}
		sort.Strings(items)
		m := n.lastSent[hello.From]
		if m == nil {
			m = make(map[string]float64)
			n.lastSent[hello.From] = m
		}
		for _, item := range items {
			v, ok := n.values[item]
			if !ok {
				continue
			}
			m[item] = v
			if enc.Encode(frame{Kind: kindUpdate, Item: item, Value: v}) != nil {
				break
			}
		}
	}
	n.mu.Unlock()

	var discard frame
	for dec.Decode(&discard) == nil {
	}
	n.mu.Lock()
	delete(n.childEnc, hello.From)
	n.mu.Unlock()
}

// handleClient admits (or redirects) one client session: the TCP
// counterpart of the serving layer's admission policy. An accepted
// session gets an accept frame, a resync push of the current copies of
// its watch list, and from then on only updates that exceed its own
// tolerance — Eq. 3 applied at the leaf, per client.
func (n *Node) handleClient(conn net.Conn, dec *gob.Decoder, sub frame) {
	enc := gob.NewEncoder(conn)
	if sub.Name == "" || len(sub.Wants) == 0 {
		enc.Encode(frame{Kind: kindRedirect})
		return
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	reject := n.cfg.SessionCap > 0 && len(n.clientEnc) >= n.cfg.SessionCap
	if _, dup := n.clientEnc[sub.Name]; dup {
		reject = true
	}
	if !reject && len(n.cfg.Parents) > 0 {
		// A repository can admit only sessions it already serves
		// stringently enough; the source holds exact values and serves
		// any tolerance.
		for x, tol := range sub.Wants {
			own, ok := n.cfg.Serving[x]
			if !ok || !own.AtLeastAsStringentAs(tol) {
				reject = true
				break
			}
		}
	}
	if reject {
		n.redirected++
		peers := append([]string(nil), n.cfg.SessionPeers...)
		n.mu.Unlock()
		enc.Encode(frame{Kind: kindRedirect, Addrs: peers})
		return
	}
	if enc.Encode(frame{Kind: kindAccept}) != nil {
		n.mu.Unlock()
		return
	}
	n.clientEnc[sub.Name] = enc
	n.clientTols[sub.Name] = sub.Wants
	at := sort.SearchStrings(n.clientNames, sub.Name)
	n.clientNames = append(n.clientNames, "")
	copy(n.clientNames[at+1:], n.clientNames[at:])
	n.clientNames[at] = sub.Name
	last := make(map[string]float64, len(sub.Wants))
	n.clientLast[sub.Name] = last
	// Resync: the session converges to our current copies immediately.
	items := make([]string, 0, len(sub.Wants))
	for x := range sub.Wants {
		items = append(items, x)
	}
	sort.Strings(items)
	for _, x := range items {
		v, ok := n.values[x]
		if !ok {
			continue
		}
		last[x] = v
		if enc.Encode(frame{Kind: kindUpdate, Item: x, Value: v, Resync: true}) != nil {
			break
		}
	}
	n.mu.Unlock()

	// Park until either side closes, then unregister the session.
	var discard frame
	for dec.Decode(&discard) == nil {
	}
	n.mu.Lock()
	delete(n.clientEnc, sub.Name)
	delete(n.clientLast, sub.Name)
	delete(n.clientTols, sub.Name)
	if at := sort.SearchStrings(n.clientNames, sub.Name); at < len(n.clientNames) && n.clientNames[at] == sub.Name {
		n.clientNames = append(n.clientNames[:at], n.clientNames[at+1:]...)
	}
	n.mu.Unlock()
}

// Sessions reports how many client sessions the node currently serves;
// RedirectedSessions counts subscribes it turned away.
func (n *Node) Sessions() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.clientEnc)
}

// RedirectedSessions returns how many subscribe attempts this node
// answered with a redirect.
func (n *Node) RedirectedSessions() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.redirected
}

// parentLoop applies pushes from the parent. When the connection dies —
// the parent crashed or closed — it fails over to the configured backups:
// real connection errors are the detection signal in the TCP runtime, the
// counterpart of the simulator's modeled silence window.
//
// A backup that accepts the dial but drops the connection before sending
// a frame (e.g. it does not actually list this node as a child) triggers
// exponential backoff, so a misconfigured backup list degrades to slow
// retries instead of a hot reconnect loop.
func (n *Node) parentLoop(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	backoff := 50 * time.Millisecond
	framed := false // a frame arrived on the current connection
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			conn.Close()
			if !framed {
				time.Sleep(backoff)
				if backoff < 2*time.Second {
					backoff *= 2
				}
			}
			next, ok := n.failover()
			if !ok {
				return
			}
			conn, dec, framed = next, gob.NewDecoder(next), false
			continue
		}
		framed, backoff = true, 50*time.Millisecond
		if f.Kind != kindUpdate {
			continue
		}
		n.mu.Lock()
		n.delivered++
		n.mu.Unlock()
		n.apply(f.Item, f.Value)
	}
}

// failover dials the backup parents in order and performs a resync hello
// on the first that answers. It returns false when the node is shutting
// down or no backup is reachable.
func (n *Node) failover() (net.Conn, bool) {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed || len(n.cfg.Backups) == 0 {
		return nil, false
	}
	for _, addr := range n.cfg.Backups {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			continue // unreachable backup: try the next one
		}
		if err := gob.NewEncoder(conn).Encode(frame{Kind: kindHello, From: n.cfg.ID, Resync: true}); err != nil {
			conn.Close()
			continue
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return nil, false
		}
		n.parentConns = append(n.parentConns, conn)
		n.failovers++
		n.mu.Unlock()
		return conn, true
	}
	return nil, false
}

// apply records the value locally and forwards it to every dependent the
// distributed algorithm selects.
func (n *Node) apply(item string, value float64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.values[item] = value

	cSelf := coherency.Requirement(0)
	if len(n.cfg.Parents) > 0 {
		if c, ok := n.cfg.Serving[item]; ok {
			cSelf = c
		}
	}
	var firstErr error
	for child, items := range n.cfg.Children {
		cDep, ok := items[item]
		if !ok {
			continue
		}
		enc, connected := n.childEnc[child]
		if !connected {
			// Child not dialed in yet: leave the filter state untouched so
			// it catches up on the next qualifying update after it joins.
			continue
		}
		m := n.lastSent[child]
		last, seeded := m[item]
		if seeded && !coherency.ShouldForward(value, last, cDep, cSelf) {
			continue
		}
		m[item] = value
		if err := enc.Encode(frame{Kind: kindUpdate, Item: item, Value: value}); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("netio: node %d pushing to %d: %w", n.cfg.ID, child, err)
		}
	}
	// Fan out to client sessions through the per-client filter — Eqs. 3
	// and 7 with our own serving tolerance as cSelf, like the overlay's
	// edge filters — in sorted admission order for a deterministic wire
	// sequence.
	for _, name := range n.clientNames {
		tol, watching := n.clientTols[name][item]
		if !watching {
			continue
		}
		last, seeded := n.clientLast[name][item]
		if seeded && !coherency.ShouldForward(value, last, tol, cSelf) {
			continue
		}
		n.clientLast[name][item] = value
		n.clientEnc[name].Encode(frame{Kind: kindUpdate, Item: item, Value: value})
	}
	return firstErr
}
