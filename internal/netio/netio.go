// Package netio serves the paper's distributed dissemination algorithm
// over TCP: every overlay node is a network server that accepts push
// connections from its dependents and forwards filtered updates to them.
// It is the deployment-shaped counterpart of the in-process runtimes —
// nodes could run in separate processes or on separate hosts; the tests
// and the livecluster example run them on localhost.
//
// Wire format: length-prefixed fixed-layout binary frames
// (internal/wire) on long-lived TCP connections — hand-rolled
// little-endian encoding into pooled buffers, no per-frame reflection.
// A dependent dials its parent and sends a hello frame identifying
// itself; the parent then pushes update frames for the items it serves
// that dependent, filtered by Eqs. 3 and 7. A corrupt or truncated
// stream fails the strict decoder and tears that connection down, which
// feeds the same connection-error machinery as a crash.
//
// The filtering, last-pushed-value tracking, session admission and
// resync rules live in the transport-agnostic core (internal/node),
// built here from the node's self-contained config: this package owns
// only the sockets, the frames, and the connection-error failover.
package netio

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"d3t/internal/coherency"
	dnode "d3t/internal/node"
	"d3t/internal/obs"
	"d3t/internal/query"
	"d3t/internal/repository"
	"d3t/internal/sim"
	"d3t/internal/wal"
	"d3t/internal/wire"
)

// Update is one (item, value) pair of a multi-update batch frame.
type Update = wire.Update

// NodeConfig describes one dissemination node. It is self-contained: a
// node needs no global overlay view, only its own serving set and its
// dependents' tolerances — exactly the state a deployed repository would
// hold.
type NodeConfig struct {
	// ID is the node's overlay id (SourceID for the source).
	ID repository.ID
	// Serving maps item -> the tolerance this node maintains. The source
	// may leave it nil (it holds exact values).
	Serving map[string]coherency.Requirement
	// Children maps dependent id -> the items (and tolerances) this node
	// pushes to it.
	Children map[repository.ID]map[string]coherency.Requirement
	// Listen is the TCP address to listen on ("127.0.0.1:0" for tests).
	Listen string
	// Parents are the parent nodes' addresses — one per distinct parent
	// serving this node items (LeLA may split a repository's needs across
	// several parents). Empty for the source.
	Parents []string
	// Backups are ranked backup-parent addresses. When a parent
	// connection dies the node dials them in order (skipping unreachable
	// ones) and resumes with a resync hello; the backup must already list
	// this node in its Children (capacity is reserved up front, exactly
	// like the precomputed backup lists of the simulation runner).
	Backups []string
	// Initial seeds the node's item values (and per-child filter state).
	Initial map[string]float64
	// SessionCap caps the client sessions this node serves (0 =
	// unlimited); an over-cap subscribe is answered with a redirect to
	// SessionPeers.
	SessionCap int
	// SessionPeers are alternative node addresses offered to redirected
	// clients — typically the node's overlay neighbors.
	SessionPeers []string
	// QueryInterval is the query clock's tick length (wall time, in
	// sim.Time microseconds) for repository-side query evaluation; it
	// defaults to sim.Second. Eval/recompute counts — the cross-backend
	// parity observable — are independent of it; only windowed result
	// values depend on the tick width.
	QueryInterval sim.Time

	// Obs, when set, collects this node's counters and latency
	// histograms. Hop, source-latency and edge-delay samples come only
	// from traced updates (see Tracer): untraced frames carry no
	// timestamps, by the wire format's compatibility rule.
	Obs *obs.Node
	// Tracer arms update tracing. The source samples every Nth publish,
	// stamps the frame (wire trace flag), and every relay appends its
	// receipt stamp and records the trace seen so far. A single-process
	// cluster shares one tracer; separate processes each collect the
	// prefixes that pass through them.
	Tracer *obs.Tracer
	// MetricsAddr, when non-empty, serves the node's observability
	// snapshot over HTTP (/metrics, /debug/vars, /debug/pprof/).
	MetricsAddr string

	// Durability, when set, backs the node's core with a write-ahead log
	// and periodic snapshots under Durability.Dir/repoNNN (so one base
	// directory serves a whole localhost cluster), group-committed per
	// received frame. Start recovers whatever state the directory already
	// holds — recovered values and edge filter state override Initial, so
	// a restarted node resumes exactly where the dead process stopped
	// instead of rejoining cold.
	Durability *wal.Options
}

// Node is a running dissemination server.
type Node struct {
	cfg     NodeConfig
	ln      net.Listener
	start   time.Time
	metrics *obs.MetricsServer

	mu sync.Mutex
	// core owns values, per-child filter state and client sessions;
	// guarded by mu.
	core     *dnode.Core
	tr       transport
	childEnc map[repository.ID]*wire.Encoder
	// clientEnc maps admitted session names to their push encoders —
	// the wire half of the core's session registry.
	clientEnc map[string]*wire.Encoder
	// querySubs maps admitted query-session names to their server-side
	// evaluation state (sessions whose subscribe frame carried a spec).
	querySubs map[string]*querySub
	conns     map[net.Conn]bool
	closed    bool

	parentConns []net.Conn
	wg          sync.WaitGroup
	// Delivered counts updates received from the parent.
	delivered int
	// failovers counts successful re-connections to a backup parent.
	failovers int

	// log is the node's write-ahead log (nil without durability) and
	// walErr the first commit failure, both guarded by mu.
	log    *wal.Log
	walErr error
}

// transport adapts the core's decisions to wire frames. Every call
// happens under Node.mu; wire encoders write to TCP sockets, whose
// buffers apply backpressure naturally. Dependent copies are collected
// per apply pass and flushed as one frame per dependent — the plain
// update frame when the pass produced a single copy, the multi-update
// batch frame when it produced several, so one TCP write carries the
// whole batch.
type transport struct {
	n *Node
	// pend collects the apply pass's dependent copies in decision order.
	pend []depSend
	// err records the first child-push encode failure of an apply pass.
	err error
	// tid/hops are the pass's trace context: the sampled id and the hop
	// stamps accumulated so far (ending with this node's own receipt).
	// Zero for an untraced pass; only single-update frames carry them —
	// a pass that batches drops the trace there.
	tid  uint64
	hops []obs.Hop
}

// depSend is one collected dependent copy awaiting the pass's flush.
type depSend struct {
	dep repository.ID
	up  Update
}

func (t *transport) Now() sim.Time {
	return sim.Time(time.Since(t.n.start) / time.Microsecond)
}

func (t *transport) SendToDependent(dep repository.ID, item string, v float64, resync bool) bool {
	if t.n.childEnc[dep] == nil {
		// Child not dialed in yet: report no path so the core leaves the
		// filter state untouched and the child catches up on the next
		// qualifying update after it joins.
		return false
	}
	t.pend = append(t.pend, depSend{dep, Update{Item: item, Value: v}})
	return true
}

// begin opens an apply pass.
func (t *transport) begin() {
	t.pend = t.pend[:0]
	t.err = nil
	t.tid, t.hops = 0, nil
}

// flush writes the pass's collected copies: per dependent (in
// first-decision order), a single update frame or one batch frame.
func (t *transport) flush() {
	for i := range t.pend {
		dep := t.pend[i].dep
		dup := false
		for j := 0; j < i; j++ {
			if t.pend[j].dep == dep {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		var ups []Update
		for j := i; j < len(t.pend); j++ {
			if t.pend[j].dep == dep {
				ups = append(ups, t.pend[j].up)
			}
		}
		enc := t.n.childEnc[dep]
		if enc == nil {
			continue // unreachable: registration is stable under Node.mu
		}
		var err error
		if len(ups) == 1 {
			err = enc.Encode(&wire.Frame{Kind: wire.KindUpdate, Item: ups[0].Item, Value: ups[0].Value,
				TraceID: t.tid, Hops: t.hops})
		} else {
			err = enc.Encode(&wire.Frame{Kind: wire.KindBatch, Ups: ups})
		}
		if err != nil && t.err == nil {
			t.err = fmt.Errorf("netio: %v pushing to %v: %w", t.n.cfg.ID, dep, err)
		}
	}
}

func (t *transport) SendToClient(s *dnode.Session, item string, v float64, resync bool) {
	switch tag := s.Tag().(type) {
	case *wire.Encoder:
		tag.Encode(&wire.Frame{Kind: wire.KindUpdate, Item: item, Value: v, Resync: resync})
	case *querySub:
		t.n.queryDeliver(tag, t.Now(), item, v, resync)
	}
}

// querySub is the server half of one repository-evaluated query session
// (a subscribe frame carrying a query spec): the wire encoder pushing
// result frames plus the incremental evaluator fed by the deliveries the
// per-client filter forwards. All access happens under Node.mu — the
// session push path already runs there.
type querySub struct {
	q    query.Query
	eval *query.Eval
	enc  *wire.Encoder
}

// queryDeliver runs one filtered input delivery through a query session:
// the evaluator recomputes, and a changed result that passes the
// predicate is pushed as an update frame under the query's result
// pseudo-item — only result changes travel the last hop, which is the
// point of repository-side placement. Caller holds Node.mu.
func (n *Node) queryDeliver(qs *querySub, now sim.Time, item string, v float64, resync bool) {
	interval := n.cfg.QueryInterval
	if interval <= 0 {
		interval = sim.Second
	}
	res, ok, changed := qs.eval.Observe(item, v, int64(now/interval))
	recomputed := 0
	if ok {
		recomputed = 1
	}
	n.cfg.Obs.QueryPass(1, recomputed)
	if !ok || !changed {
		return
	}
	if qs.q.Pred != nil && !qs.q.Pred.Holds(res) {
		return
	}
	qs.enc.Encode(&wire.Frame{Kind: wire.KindUpdate, Item: qs.q.ResultItem(), Value: res, Resync: resync})
}

// QueryCounts reports the eval/recompute counters of a repository-side
// query session by name (zeros if no such session is admitted). Counts
// depend only on the delivery sequence the per-client filter produced,
// so they must agree with every other backend serving the same stream —
// the cross-backend parity observable of the query layer.
func (n *Node) QueryCounts(name string) (evals, recomputes uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if qs := n.querySubs[name]; qs != nil {
		return qs.eval.Evals(), qs.eval.Recomputes()
	}
	return 0, 0
}

// buildCore assembles the transport-agnostic core from the self-contained
// config: a stub repository for the node itself and one per dependent
// (carrying its tolerances), wired in sorted order so the fan-out plan —
// and hence the wire traffic — is deterministic.
func buildCore(cfg NodeConfig) *dnode.Core {
	self := repository.New(cfg.ID, len(cfg.Children))
	for x, c := range cfg.Serving {
		self.Serving[x] = c
	}
	peers := make(map[repository.ID]*repository.Repository, len(cfg.Children))
	children := make([]repository.ID, 0, len(cfg.Children))
	for child := range cfg.Children {
		children = append(children, child)
	}
	sort.Slice(children, func(i, j int) bool { return children[i] < children[j] })
	for _, child := range children {
		stub := repository.New(child, 0)
		items := make([]string, 0, len(cfg.Children[child]))
		for x, tol := range cfg.Children[child] {
			stub.Serving[x] = tol
			items = append(items, x)
		}
		sort.Strings(items)
		peers[child] = stub
		for _, x := range items {
			self.AddDependent(x, child)
		}
	}
	core := dnode.New(self, func(id repository.ID) *repository.Repository { return peers[id] },
		dnode.Options{Source: len(cfg.Parents) == 0, SessionCap: cfg.SessionCap})
	for item, v := range cfg.Initial {
		core.SetValue(item, v)
	}
	for _, child := range children {
		for item := range cfg.Children[child] {
			if v, ok := cfg.Initial[item]; ok {
				core.ResetEdge(child, item, v)
			}
		}
	}
	return core
}

// Start launches the node: listen for dependents, connect to the parent
// (if any), and begin forwarding.
func Start(cfg NodeConfig) (*Node, error) {
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("netio: %v listen: %w", cfg.ID, err)
	}
	n := &Node{
		cfg:       cfg,
		ln:        ln,
		start:     time.Now(),
		core:      buildCore(cfg),
		childEnc:  make(map[repository.ID]*wire.Encoder),
		clientEnc: make(map[string]*wire.Encoder),
		querySubs: make(map[string]*querySub),
		conns:     make(map[net.Conn]bool),
	}
	n.tr.n = n
	n.core.SetObs(cfg.Obs)
	if cfg.Durability != nil {
		if err := n.openWAL(); err != nil {
			ln.Close()
			return nil, err
		}
	}
	if cfg.MetricsAddr != "" {
		ms, err := obs.ServeMetrics(cfg.MetricsAddr, func() any { return n.ObsSnapshot() })
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("netio: %v metrics: %w", cfg.ID, err)
		}
		n.metrics = ms
	}

	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.acceptLoop()
	}()

	for _, parent := range cfg.Parents {
		conn, err := net.Dial("tcp", parent)
		if err != nil {
			n.Close()
			return nil, fmt.Errorf("netio: %v dialing parent %s: %w", cfg.ID, parent, err)
		}
		n.mu.Lock()
		n.parentConns = append(n.parentConns, conn)
		n.mu.Unlock()
		if err := wire.NewEncoder(conn).Encode(&wire.Frame{Kind: wire.KindHello, From: cfg.ID}); err != nil {
			n.Close()
			return nil, fmt.Errorf("netio: %v hello: %w", cfg.ID, err)
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.parentLoop(conn)
		}()
	}
	return n, nil
}

// Addr returns the node's listening address (for children to dial).
func (n *Node) Addr() string { return n.ln.Addr().String() }

// ID returns the node's overlay id.
func (n *Node) ID() repository.ID { return n.cfg.ID }

// Close shuts the node down and waits for its goroutines.
func (n *Node) Close() error {
	n.mu.Lock()
	n.closed = true
	for conn := range n.conns {
		conn.Close() // unblocks parked child readers
	}
	parents := append([]net.Conn(nil), n.parentConns...)
	n.mu.Unlock()
	err := n.ln.Close()
	for _, conn := range parents {
		conn.Close()
	}
	n.metrics.Close()
	n.wg.Wait()
	n.mu.Lock()
	if n.log != nil {
		if cerr := n.log.Close(); cerr != nil && n.walErr == nil {
			n.walErr = cerr
		}
	}
	n.mu.Unlock()
	return err
}

// Publish injects a new value at the source node and pushes it to every
// dependent whose tolerance it violates. Calling it on a non-source node
// is an error.
func (n *Node) Publish(item string, value float64) error {
	if len(n.cfg.Parents) > 0 {
		return errors.New("netio: Publish on a non-source node")
	}
	tid, hops := n.sampleTrace(item)
	return n.apply(item, value, tid, hops)
}

// sampleTrace asks the tracer whether this publish rides a trace; a
// sampled one opens with the source's own wall-clock stamp. Batched
// publishes never trace (batch frames carry no trailer).
func (n *Node) sampleTrace(item string) (uint64, []obs.Hop) {
	tr := n.cfg.Tracer
	if tr == nil {
		return 0, nil
	}
	at := time.Now().UnixMicro()
	tid := tr.Sample(item, n.cfg.ID, at)
	if tid == 0 {
		return 0, nil
	}
	return tid, []obs.Hop{{Node: n.cfg.ID, At: at}}
}

// PublishBatch injects one tick's worth of source updates as a batch:
// same-item updates coalesce to the newest value, the whole batch runs
// through the filter pipeline in one pass, and each dependent receives
// its share in a single multi-update frame — one TCP write per child per
// batch. Calling it on a non-source node is an error.
func (n *Node) PublishBatch(ups []Update) error {
	if len(n.cfg.Parents) > 0 {
		return errors.New("netio: PublishBatch on a non-source node")
	}
	return n.applyBatch(ups)
}

// Value returns the node's current copy of item.
func (n *Node) Value(item string) (float64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.core.Value(item)
}

// Delivered returns how many updates this node has received from its
// parent.
func (n *Node) Delivered() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered
}

// Failovers returns how many times the node re-homed onto a backup parent
// after losing a parent connection.
func (n *Node) Failovers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.failovers
}

// ConnectedChildren reports how many dependents currently hold a live push
// connection.
func (n *Node) ConnectedChildren() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.childEnc)
}

// ExpectedChildren reports how many dependents the node is configured to
// serve.
func (n *Node) ExpectedChildren() int { return len(n.cfg.Children) }

// Decisions reports the node's per-item forward/suppress decision totals
// about its dependents — the cross-backend parity instrumentation.
func (n *Node) Decisions() map[string]dnode.Decisions {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.core.EdgeDecisions()
}

// acceptLoop registers dependents as they dial in.
func (n *Node) acceptLoop() {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handleChild(conn)
		}()
	}
}

// handleChild performs the hello handshake and parks the connection as a
// push target. The child never sends further frames; the read blocks
// until either side closes, cleaning up the registration.
func (n *Node) handleChild(conn net.Conn) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		conn.Close()
		return
	}
	n.conns[conn] = true
	n.mu.Unlock()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
	}()
	dec := wire.NewDecoder(conn)
	var hello wire.Frame
	if err := dec.Decode(&hello); err != nil {
		return
	}
	if hello.Kind == wire.KindSubscribe {
		n.handleClient(conn, dec, hello)
		return
	}
	if hello.Kind != wire.KindHello {
		return
	}
	if _, ok := n.cfg.Children[hello.From]; !ok {
		return // unknown dependent
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.childEnc[hello.From] = wire.NewEncoder(conn)
	if hello.Resync {
		// A dependent that failed over to us catches up immediately: the
		// core pushes the current copy of every item we serve it,
		// unconditionally, and seeds the edge filter state to match. The
		// flush ships the whole catch-up as one batch frame.
		n.tr.begin()
		n.core.ResyncDependent(hello.From, &n.tr)
		n.tr.flush()
	}
	n.mu.Unlock()

	// The child never sends further frames; the read blocks until either
	// side closes. Any byte it does send must be a well-formed frame — a
	// corrupt stream fails the strict decoder and drops the registration.
	var discard wire.Frame
	for dec.Decode(&discard) == nil {
	}
	n.mu.Lock()
	delete(n.childEnc, hello.From)
	n.mu.Unlock()
}

// handleClient admits (or redirects) one client session: the TCP
// transport of the core's admission policy. An accepted session gets an
// accept frame, a resync push of the current copies of its watch list,
// and from then on only updates the core's per-client filter forwards —
// Eqs. 3 and 7 applied at the leaf with this node's serving tolerance.
func (n *Node) handleClient(conn net.Conn, dec *wire.Decoder, sub wire.Frame) {
	enc := wire.NewEncoder(conn)
	if sub.Name == "" || len(sub.Wants) == 0 {
		enc.Encode(&wire.Frame{Kind: wire.KindRedirect})
		return
	}
	// A subscribe frame carrying a query spec asks for repository-side
	// evaluation: parse it here so a malformed spec is turned away before
	// any session state exists. The frame's wants are the query's inputs
	// at their allocated tolerances, so the admission check below covers
	// the query's coherency needs too.
	var qs *querySub
	if sub.Query != "" {
		q, err := query.Parse(sub.Query)
		if err != nil {
			enc.Encode(&wire.Frame{Kind: wire.KindRedirect})
			return
		}
		q.Name = sub.Name
		qs = &querySub{q: q, eval: query.NewEval(q), enc: enc}
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	if reason := n.core.CanAdmit(sub.Name, sub.Wants); reason != dnode.RejectNone {
		n.core.NoteRedirect()
		peers := append([]string(nil), n.cfg.SessionPeers...)
		n.mu.Unlock()
		enc.Encode(&wire.Frame{Kind: wire.KindRedirect, Addrs: peers})
		return
	}
	if enc.Encode(&wire.Frame{Kind: wire.KindAccept}) != nil {
		n.mu.Unlock()
		return
	}
	n.clientEnc[sub.Name] = enc
	// Admission resyncs the session to our current copies immediately. A
	// query session's resync feeds the evaluator (counted, like every
	// delivery) instead of shipping raw inputs.
	ns := dnode.NewSession(sub.Name, sub.Wants)
	if qs != nil {
		n.querySubs[sub.Name] = qs
		ns.SetTag(qs)
	} else {
		ns.SetTag(enc)
	}
	n.core.ForceAdmit(ns, &n.tr)
	n.mu.Unlock()

	// Park until either side closes (a client sending garbage fails the
	// strict decoder the same way), then unregister the session.
	var discard wire.Frame
	for dec.Decode(&discard) == nil {
	}
	n.mu.Lock()
	delete(n.clientEnc, sub.Name)
	delete(n.querySubs, sub.Name)
	n.core.DropSession(sub.Name)
	n.mu.Unlock()
}

// Sessions reports how many client sessions the node currently serves.
func (n *Node) Sessions() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.core.SessionCount()
}

// RedirectedSessions returns how many subscribe attempts this node
// answered with a redirect.
func (n *Node) RedirectedSessions() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.core.Redirected()
}

// parentLoop applies pushes from the parent. When the connection dies —
// the parent crashed or closed — it fails over to the configured backups:
// real connection errors are the detection signal in the TCP runtime, the
// counterpart of the simulator's modeled silence window.
//
// A backup that accepts the dial but drops the connection before sending
// a frame (e.g. it does not actually list this node as a child) triggers
// exponential backoff, so a misconfigured backup list degrades to slow
// retries instead of a hot reconnect loop.
func (n *Node) parentLoop(conn net.Conn) {
	dec := wire.NewDecoder(conn)
	backoff := 50 * time.Millisecond
	framed := false // a frame arrived on the current connection
	var f wire.Frame
	for {
		if err := dec.Decode(&f); err != nil {
			conn.Close()
			if !framed {
				time.Sleep(backoff)
				if backoff < 2*time.Second {
					backoff *= 2
				}
			}
			next, ok := n.failover()
			if !ok {
				return
			}
			conn, dec, framed = next, wire.NewDecoder(next), false
			continue
		}
		framed, backoff = true, 50*time.Millisecond
		switch f.Kind {
		case wire.KindUpdate:
			n.mu.Lock()
			n.delivered++
			n.mu.Unlock()
			tid, hops := n.noteArrival(&f)
			n.apply(f.Item, f.Value, tid, hops)
		case wire.KindBatch:
			// A batch stays a batch downstream: one apply pass, one frame
			// per child.
			n.mu.Lock()
			n.delivered += len(f.Ups)
			n.mu.Unlock()
			n.applyBatch(f.Ups)
		}
	}
}

// failover dials the backup parents in order and performs a resync hello
// on the first that answers. It returns false when the node is shutting
// down or no backup is reachable.
func (n *Node) failover() (net.Conn, bool) {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed || len(n.cfg.Backups) == 0 {
		return nil, false
	}
	for _, addr := range n.cfg.Backups {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			continue // unreachable backup: try the next one
		}
		if err := wire.NewEncoder(conn).Encode(&wire.Frame{Kind: wire.KindHello, From: n.cfg.ID, Resync: true}); err != nil {
			conn.Close()
			continue
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return nil, false
		}
		n.parentConns = append(n.parentConns, conn)
		n.failovers++
		n.mu.Unlock()
		return conn, true
	}
	return nil, false
}

// noteArrival records the receipt side of one traced parent push — the
// hop and source-to-here latencies and the edge-delay EWMA keyed by the
// stamping peer, all from the wall-clock stamps the frame carries — and
// extends the hop list with this node's own stamp, returning the trace
// context the forwarded copies ride on. Untraced frames record nothing
// here (their receipt still counts through the core).
func (n *Node) noteArrival(f *wire.Frame) (uint64, []obs.Hop) {
	if f.TraceID == 0 {
		return 0, nil
	}
	at := time.Now().UnixMicro()
	if len(f.Hops) > 0 {
		prev := f.Hops[len(f.Hops)-1]
		n.cfg.Obs.ObserveHop(at - prev.At)
		n.cfg.Obs.ObserveEdgeDelay(prev.Node, at-prev.At)
		n.cfg.Obs.ObserveSourceLatency(at - f.Hops[0].At)
	}
	hops := append(f.Hops, obs.Hop{Node: n.cfg.ID, At: at})
	n.cfg.Tracer.Record(obs.Trace{ID: f.TraceID, Item: f.Item, Hops: hops})
	return f.TraceID, hops
}

// ObsSnapshot folds and returns the node's observer state (zero-valued
// when NodeConfig.Obs is unset). The metrics endpoint serves this.
func (n *Node) ObsSnapshot() obs.NodeSnapshot {
	return n.cfg.Obs.Snapshot(time.Since(n.start).Microseconds())
}

// MetricsAddr returns the metrics listener's address, or "" when no
// metrics endpoint is configured.
func (n *Node) MetricsAddr() string {
	if n.metrics == nil {
		return ""
	}
	return n.metrics.Addr()
}

// apply records the value locally and forwards it — to dependents and
// client sessions both — through the core's filter pipeline. tid/hops
// carry the update's trace context (zero when untraced).
func (n *Node) apply(item string, value float64, tid uint64, hops []obs.Hop) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tr.begin()
	n.tr.tid, n.tr.hops = tid, hops
	n.core.Apply(item, value, &n.tr)
	if n.log != nil {
		n.commitWAL([]Update{{Item: item, Value: value}})
	}
	n.tr.flush()
	return n.tr.err
}

// applyBatch runs a whole batch through the pipeline in one pass:
// same-item updates coalesce to the newest value (a value superseded
// within its own batch is never disseminated), each survivor applies
// through the core, and the collected copies flush as one frame per
// dependent.
func (n *Node) applyBatch(ups []Update) error {
	n.cfg.Obs.Batch(len(ups))
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tr.begin()
	var applied []Update
	for _, i := range dnode.CoalesceBatch(len(ups), func(i int) string { return ups[i].Item }) {
		n.core.Apply(ups[i].Item, ups[i].Value, &n.tr)
		if n.log != nil {
			applied = append(applied, ups[i])
		}
	}
	n.commitWAL(applied)
	n.tr.flush()
	return n.tr.err
}
