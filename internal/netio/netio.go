// Package netio serves the paper's distributed dissemination algorithm
// over TCP: every overlay node is a network server that accepts push
// connections from its dependents and forwards filtered updates to them.
// It is the deployment-shaped counterpart of the in-process runtimes —
// nodes could run in separate processes or on separate hosts; the tests
// and the livecluster example run them on localhost.
//
// Wire format: gob-encoded frames on long-lived TCP connections. A
// dependent dials its parent and sends a hello frame identifying itself;
// the parent then pushes update frames for the items it serves that
// dependent, filtered by Eqs. 3 and 7.
package netio

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"d3t/internal/coherency"
	"d3t/internal/repository"
)

// frame is the single wire message type; Kind discriminates.
type frame struct {
	Kind  kind
	From  repository.ID
	Item  string
	Value float64
	// Resync on a hello asks the parent to push its current copy of every
	// item it serves this child — the catch-up a dependent needs after
	// failing over to a backup parent.
	Resync bool
}

type kind uint8

const (
	kindHello kind = iota + 1
	kindUpdate
)

// NodeConfig describes one dissemination node. It is self-contained: a
// node needs no global overlay view, only its own serving set and its
// dependents' tolerances — exactly the state a deployed repository would
// hold.
type NodeConfig struct {
	// ID is the node's overlay id (SourceID for the source).
	ID repository.ID
	// Serving maps item -> the tolerance this node maintains. The source
	// may leave it nil (it holds exact values).
	Serving map[string]coherency.Requirement
	// Children maps dependent id -> the items (and tolerances) this node
	// pushes to it.
	Children map[repository.ID]map[string]coherency.Requirement
	// Listen is the TCP address to listen on ("127.0.0.1:0" for tests).
	Listen string
	// Parents are the parent nodes' addresses — one per distinct parent
	// serving this node items (LeLA may split a repository's needs across
	// several parents). Empty for the source.
	Parents []string
	// Backups are ranked backup-parent addresses. When a parent
	// connection dies the node dials them in order (skipping unreachable
	// ones) and resumes with a resync hello; the backup must already list
	// this node in its Children (capacity is reserved up front, exactly
	// like the precomputed backup lists of the simulation runner).
	Backups []string
	// Initial seeds the node's item values (and per-child filter state).
	Initial map[string]float64
}

// Node is a running dissemination server.
type Node struct {
	cfg NodeConfig
	ln  net.Listener

	mu       sync.Mutex
	values   map[string]float64
	lastSent map[repository.ID]map[string]float64
	childEnc map[repository.ID]*gob.Encoder
	conns    map[net.Conn]bool
	closed   bool

	parentConns []net.Conn
	wg          sync.WaitGroup
	// Delivered counts updates received from the parent.
	delivered int
	// failovers counts successful re-connections to a backup parent.
	failovers int
}

// Start launches the node: listen for dependents, connect to the parent
// (if any), and begin forwarding.
func Start(cfg NodeConfig) (*Node, error) {
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("netio: node %d listen: %w", cfg.ID, err)
	}
	n := &Node{
		cfg:      cfg,
		ln:       ln,
		values:   make(map[string]float64),
		lastSent: make(map[repository.ID]map[string]float64),
		childEnc: make(map[repository.ID]*gob.Encoder),
		conns:    make(map[net.Conn]bool),
	}
	for item, v := range cfg.Initial {
		n.values[item] = v
	}
	for child, items := range cfg.Children {
		m := make(map[string]float64, len(items))
		for item := range items {
			if v, ok := cfg.Initial[item]; ok {
				m[item] = v
			}
		}
		n.lastSent[child] = m
	}

	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.acceptLoop()
	}()

	for _, parent := range cfg.Parents {
		conn, err := net.Dial("tcp", parent)
		if err != nil {
			n.Close()
			return nil, fmt.Errorf("netio: node %d dialing parent %s: %w", cfg.ID, parent, err)
		}
		n.mu.Lock()
		n.parentConns = append(n.parentConns, conn)
		n.mu.Unlock()
		if err := gob.NewEncoder(conn).Encode(frame{Kind: kindHello, From: cfg.ID}); err != nil {
			n.Close()
			return nil, fmt.Errorf("netio: node %d hello: %w", cfg.ID, err)
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.parentLoop(conn)
		}()
	}
	return n, nil
}

// Addr returns the node's listening address (for children to dial).
func (n *Node) Addr() string { return n.ln.Addr().String() }

// ID returns the node's overlay id.
func (n *Node) ID() repository.ID { return n.cfg.ID }

// Close shuts the node down and waits for its goroutines.
func (n *Node) Close() error {
	n.mu.Lock()
	n.closed = true
	for conn := range n.conns {
		conn.Close() // unblocks parked child readers
	}
	parents := append([]net.Conn(nil), n.parentConns...)
	n.mu.Unlock()
	err := n.ln.Close()
	for _, conn := range parents {
		conn.Close()
	}
	n.wg.Wait()
	return err
}

// Publish injects a new value at the source node and pushes it to every
// dependent whose tolerance it violates. Calling it on a non-source node
// is an error.
func (n *Node) Publish(item string, value float64) error {
	if len(n.cfg.Parents) > 0 {
		return errors.New("netio: Publish on a non-source node")
	}
	return n.apply(item, value)
}

// Value returns the node's current copy of item.
func (n *Node) Value(item string) (float64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.values[item]
	return v, ok
}

// Delivered returns how many updates this node has received from its
// parent.
func (n *Node) Delivered() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered
}

// Failovers returns how many times the node re-homed onto a backup parent
// after losing a parent connection.
func (n *Node) Failovers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.failovers
}

// ConnectedChildren reports how many dependents currently hold a live push
// connection.
func (n *Node) ConnectedChildren() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.childEnc)
}

// ExpectedChildren reports how many dependents the node is configured to
// serve.
func (n *Node) ExpectedChildren() int { return len(n.cfg.Children) }

// acceptLoop registers dependents as they dial in.
func (n *Node) acceptLoop() {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handleChild(conn)
		}()
	}
}

// handleChild performs the hello handshake and parks the connection as a
// push target. The child never sends further frames; the read blocks
// until either side closes, cleaning up the registration.
func (n *Node) handleChild(conn net.Conn) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		conn.Close()
		return
	}
	n.conns[conn] = true
	n.mu.Unlock()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	var hello frame
	if err := dec.Decode(&hello); err != nil || hello.Kind != kindHello {
		return
	}
	if _, ok := n.cfg.Children[hello.From]; !ok {
		return // unknown dependent
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	enc := gob.NewEncoder(conn)
	n.childEnc[hello.From] = enc
	if hello.Resync {
		// A dependent that failed over to us catches up immediately: push
		// the current copy of every item we serve it, unconditionally, and
		// reset the edge filter state to match.
		items := make([]string, 0, len(n.cfg.Children[hello.From]))
		for item := range n.cfg.Children[hello.From] {
			items = append(items, item)
		}
		sort.Strings(items)
		m := n.lastSent[hello.From]
		if m == nil {
			m = make(map[string]float64)
			n.lastSent[hello.From] = m
		}
		for _, item := range items {
			v, ok := n.values[item]
			if !ok {
				continue
			}
			m[item] = v
			if enc.Encode(frame{Kind: kindUpdate, Item: item, Value: v}) != nil {
				break
			}
		}
	}
	n.mu.Unlock()

	var discard frame
	for dec.Decode(&discard) == nil {
	}
	n.mu.Lock()
	delete(n.childEnc, hello.From)
	n.mu.Unlock()
}

// parentLoop applies pushes from the parent. When the connection dies —
// the parent crashed or closed — it fails over to the configured backups:
// real connection errors are the detection signal in the TCP runtime, the
// counterpart of the simulator's modeled silence window.
//
// A backup that accepts the dial but drops the connection before sending
// a frame (e.g. it does not actually list this node as a child) triggers
// exponential backoff, so a misconfigured backup list degrades to slow
// retries instead of a hot reconnect loop.
func (n *Node) parentLoop(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	backoff := 50 * time.Millisecond
	framed := false // a frame arrived on the current connection
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			conn.Close()
			if !framed {
				time.Sleep(backoff)
				if backoff < 2*time.Second {
					backoff *= 2
				}
			}
			next, ok := n.failover()
			if !ok {
				return
			}
			conn, dec, framed = next, gob.NewDecoder(next), false
			continue
		}
		framed, backoff = true, 50*time.Millisecond
		if f.Kind != kindUpdate {
			continue
		}
		n.mu.Lock()
		n.delivered++
		n.mu.Unlock()
		n.apply(f.Item, f.Value)
	}
}

// failover dials the backup parents in order and performs a resync hello
// on the first that answers. It returns false when the node is shutting
// down or no backup is reachable.
func (n *Node) failover() (net.Conn, bool) {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed || len(n.cfg.Backups) == 0 {
		return nil, false
	}
	for _, addr := range n.cfg.Backups {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			continue // unreachable backup: try the next one
		}
		if err := gob.NewEncoder(conn).Encode(frame{Kind: kindHello, From: n.cfg.ID, Resync: true}); err != nil {
			conn.Close()
			continue
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return nil, false
		}
		n.parentConns = append(n.parentConns, conn)
		n.failovers++
		n.mu.Unlock()
		return conn, true
	}
	return nil, false
}

// apply records the value locally and forwards it to every dependent the
// distributed algorithm selects.
func (n *Node) apply(item string, value float64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.values[item] = value

	cSelf := coherency.Requirement(0)
	if len(n.cfg.Parents) > 0 {
		if c, ok := n.cfg.Serving[item]; ok {
			cSelf = c
		}
	}
	var firstErr error
	for child, items := range n.cfg.Children {
		cDep, ok := items[item]
		if !ok {
			continue
		}
		enc, connected := n.childEnc[child]
		if !connected {
			// Child not dialed in yet: leave the filter state untouched so
			// it catches up on the next qualifying update after it joins.
			continue
		}
		m := n.lastSent[child]
		last, seeded := m[item]
		if seeded && !coherency.ShouldForward(value, last, cDep, cSelf) {
			continue
		}
		m[item] = value
		if err := enc.Encode(frame{Kind: kindUpdate, Item: item, Value: value}); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("netio: node %d pushing to %d: %w", n.cfg.ID, child, err)
		}
	}
	return firstErr
}
