package netio

import (
	"fmt"
	"time"

	"d3t/internal/coherency"
	"d3t/internal/obs"
	"d3t/internal/repository"
	"d3t/internal/tree"
)

// Cluster runs every node of an overlay as a TCP server on localhost —
// the one-box deployment used by the livecluster example and the tests.
type Cluster struct {
	// Nodes holds the running nodes, indexed like the overlay (0 is the
	// source).
	Nodes []*Node

	opts    ClusterOptions
	start   time.Time
	metrics *obs.MetricsServer
}

// ClusterOptions configures the cluster-wide observability surfaces.
type ClusterOptions struct {
	// Obs collects every node's counters, histograms and traces into one
	// tree (the nodes share the process). Nil disables observation.
	Obs *obs.Tree
	// TraceEvery arms Obs.Tracer to sample every Nth source publish when
	// the tree does not already carry a tracer (0 leaves tracing off).
	TraceEvery int
	// MetricsAddr, when non-empty, serves the whole tree's snapshot over
	// HTTP (/metrics, /debug/vars, /debug/pprof/).
	MetricsAddr string
}

// StartCluster brings up the whole overlay: parents before children so
// every dependent can dial in immediately. Initial seeds every node.
func StartCluster(o *tree.Overlay, initial map[string]float64) (*Cluster, error) {
	return StartClusterWith(o, initial, ClusterOptions{})
}

// StartClusterWith is StartCluster plus the observability options.
func StartClusterWith(o *tree.Overlay, initial map[string]float64, opts ClusterOptions) (*Cluster, error) {
	if opts.Obs != nil && opts.Obs.Tracer == nil && opts.TraceEvery > 0 {
		opts.Obs.Tracer = obs.NewTracer(opts.TraceEvery)
	}
	nodes := make([]*Node, len(o.Nodes))
	addr := make([]string, len(o.Nodes))

	// Start in level order (parents first).
	order := make([]*repository.Repository, len(o.Nodes))
	copy(order, o.Nodes)
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].Level < order[j-1].Level; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	shutdown := func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}

	for _, r := range order {
		children := make(map[repository.ID]map[string]coherency.Requirement)
		for item, deps := range r.Dependents {
			for _, dep := range deps {
				c, ok := o.Node(dep).ServingTolerance(item)
				if !ok {
					shutdown()
					return nil, fmt.Errorf("netio: dependent %v lacks tolerance for %s", dep, item)
				}
				if children[dep] == nil {
					children[dep] = make(map[string]coherency.Requirement)
				}
				children[dep][item] = c
			}
		}
		var parentAddrs []string
		if !r.IsSource() {
			pids := parentsOf(r)
			if len(pids) == 0 {
				shutdown()
				return nil, fmt.Errorf("netio: %v has no parent", r.ID)
			}
			for _, pid := range pids {
				if addr[pid] == "" {
					shutdown()
					return nil, fmt.Errorf("netio: parent %v of %v not started yet", pid, r.ID)
				}
				parentAddrs = append(parentAddrs, addr[pid])
			}
		}
		seed := make(map[string]float64)
		for item, v := range initial {
			if _, serves := r.ServingTolerance(item); serves {
				seed[item] = v
			}
		}
		node, err := Start(NodeConfig{
			ID:       r.ID,
			Serving:  r.Serving,
			Children: children,
			Parents:  parentAddrs,
			Initial:  seed,
			Obs:      opts.Obs.Node(r.ID),
			Tracer:   opts.Obs.TracerOrNil(),
		})
		if err != nil {
			shutdown()
			return nil, err
		}
		nodes[r.ID] = node
		addr[r.ID] = node.Addr()
	}
	// Wait for every push connection to establish so the first Publish
	// cannot race a child's hello handshake.
	deadline := time.Now().Add(10 * time.Second)
	for _, n := range nodes {
		for n.ConnectedChildren() < n.ExpectedChildren() {
			if time.Now().After(deadline) {
				for _, m := range nodes {
					m.Close()
				}
				return nil, fmt.Errorf("netio: %v has %d of %d children connected after 10s",
					n.ID(), n.ConnectedChildren(), n.ExpectedChildren())
			}
			time.Sleep(time.Millisecond)
		}
	}
	c := &Cluster{Nodes: nodes, opts: opts, start: time.Now()}
	if opts.MetricsAddr != "" {
		ms, err := obs.ServeMetrics(opts.MetricsAddr, func() any { return c.ObsSnapshot() })
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("netio: cluster metrics: %w", err)
		}
		c.metrics = ms
	}
	return c, nil
}

// parentsOf lists the repository's distinct parents (falling back to the
// liaison for need-less members), sorted for determinism.
func parentsOf(r *repository.Repository) []repository.ID {
	set := make(map[repository.ID]bool)
	for _, pid := range r.Parents {
		set[pid] = true
	}
	if len(set) == 0 && r.Liaison != repository.NoID {
		set[r.Liaison] = true
	}
	out := make([]repository.ID, 0, len(set))
	for pid := range set {
		out = append(out, pid)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Source returns the source node.
func (c *Cluster) Source() *Node { return c.Nodes[repository.SourceID] }

// ObsSnapshot folds and returns the whole cluster's observability state
// (zero-valued when ClusterOptions.Obs is unset).
func (c *Cluster) ObsSnapshot() obs.TreeSnapshot {
	return c.opts.Obs.Snapshot(time.Since(c.start).Microseconds())
}

// MetricsAddr returns the cluster metrics listener's address, or "" when
// no metrics endpoint is configured.
func (c *Cluster) MetricsAddr() string {
	if c.metrics == nil {
		return ""
	}
	return c.metrics.Addr()
}

// Close shuts every node down.
func (c *Cluster) Close() {
	for _, n := range c.Nodes {
		if n != nil {
			n.Close()
		}
	}
	c.metrics.Close()
}
