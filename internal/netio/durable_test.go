package netio

import (
	"testing"
	"time"

	"d3t/internal/coherency"
	"d3t/internal/repository"
	"d3t/internal/wal"
)

// TestTCPNodeRestartsFromDisk is the TCP runtime's cold-rejoin
// regression: a node process that dies and restarts over its write-ahead
// log directory holds its exact pre-crash value immediately — with an
// empty Initial — where a restart without durability comes back holding
// nothing. The second half restarts the source and proves its per-child
// edge filter state recovered too: the first post-restart update within
// tolerance of the pre-crash last push is suppressed, not forwarded
// under the first-push rule.
func TestTCPNodeRestartsFromDisk(t *testing.T) {
	d := &wal.Options{Dir: t.TempDir(), Fsync: wal.PolicyNever}
	srcCfg := NodeConfig{
		ID:         repository.SourceID,
		Children:   map[repository.ID]map[string]coherency.Requirement{1: {"X": 30}},
		Durability: d,
	}
	childCfg := NodeConfig{
		ID:         1,
		Serving:    map[string]coherency.Requirement{"X": 30},
		Durability: d,
	}
	src, err := Start(srcCfg)
	if err != nil {
		t.Fatal(err)
	}
	childCfg.Parents = []string{src.Addr()}
	child, err := Start(childCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 2*time.Second, func() bool { return src.ConnectedChildren() == 1 }) {
		t.Fatal("child never connected")
	}
	// 100 rides the first-push rule; 140 violates the child's 30.
	for _, v := range []float64{100, 140} {
		if err := src.Publish("X", v); err != nil {
			t.Fatal(err)
		}
	}
	if !waitFor(t, 2*time.Second, func() bool {
		v, _ := child.Value("X")
		return v == 140
	}) {
		v, ok := child.Value("X")
		t.Fatalf("child holds X=%v (ok=%v), want 140 before the crash", v, ok)
	}
	child.Close()
	if err := child.DurabilityErr(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same directory: the recovered value is there the
	// moment Start returns, before any frame arrives.
	child2, err := Start(childCfg)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := child2.Value("X"); !ok || v != 140 {
		t.Fatalf("restarted child recovered X=%v (ok=%v), want the pre-crash 140", v, ok)
	}
	child2.Close()

	// Counterfactual: the same restart without durability rejoins cold.
	coldCfg := childCfg
	coldCfg.Durability = nil
	cold, err := Start(coldCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cold.Value("X"); ok {
		t.Error("cold restart holds a value for X; the counterfactual is vacuous")
	}
	cold.Close()
	src.Close()
	if err := src.DurabilityErr(); err != nil {
		t.Fatal(err)
	}

	// Restart the source from disk and hang a brand-new cold child off it.
	// The recovered edge state (last=140, seeded) must suppress 150
	// (|150-140| <= 30); without it the first-push rule would forward 150
	// and the cold child would hold a value.
	src2, err := Start(srcCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer src2.Close()
	if v, ok := src2.Value("X"); !ok || v != 140 {
		t.Fatalf("restarted source recovered X=%v (ok=%v), want 140", v, ok)
	}
	coldCfg.Parents = []string{src2.Addr()}
	child3, err := Start(coldCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer child3.Close()
	if !waitFor(t, 2*time.Second, func() bool { return src2.ConnectedChildren() == 1 }) {
		t.Fatal("fresh child never connected to the restarted source")
	}
	if err := src2.Publish("X", 150); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if v, ok := child3.Value("X"); ok {
		t.Errorf("first post-restart push leaked through recovered filter state: child holds %v", v)
	}
	if err := src2.Publish("X", 200); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 2*time.Second, func() bool {
		v, _ := child3.Value("X")
		return v == 200
	}) {
		v, ok := child3.Value("X")
		t.Fatalf("post-restart violation did not propagate: child holds %v (ok=%v)", v, ok)
	}
}
