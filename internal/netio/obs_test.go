package netio

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"d3t/internal/obs"
)

// TestTCPObsTracedChain drives traced publishes down a real TCP chain
// and checks the netio half of the observability layer: the trace flag
// rides the wire, every relay appends a monotone wall-clock stamp, and
// the sampled stamps feed the hop/source-latency histograms and the
// per-edge delay EWMAs.
func TestTCPObsTracedChain(t *testing.T) {
	o := chain(t)
	tree := obs.NewTree()
	cl, err := StartClusterWith(o, map[string]float64{"X": 100},
		ClusterOptions{Obs: tree, TraceEvery: 1, MetricsAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Each jump violates both tolerances, so every traced publish
	// crosses both TCP hops.
	for _, v := range []float64{200, 300, 400} {
		if err := cl.Source().Publish("X", v); err != nil {
			t.Fatal(err)
		}
	}
	if !waitFor(t, 2*time.Second, func() bool {
		q, _ := cl.Nodes[2].Value("X")
		return q == 400
	}) {
		t.Fatalf("traced updates did not propagate")
	}

	snap := cl.ObsSnapshot()
	for _, id := range []int{1, 2} {
		n := snap.Nodes[id]
		if n.Counters.Received == 0 {
			t.Errorf("node %v: no receipts counted", n.ID)
		}
		if n.Hop.Count == 0 || n.SourceLat.Count == 0 {
			t.Errorf("node %v: traced frames fed no latency samples: hop %+v src %+v", n.ID, n.Hop, n.SourceLat)
		}
		if len(n.EdgeDelayMs) != 1 {
			t.Errorf("node %v: edge EWMAs %+v, want exactly the parent edge", n.ID, n.EdgeDelayMs)
		}
	}

	// The leaf's recording of each trace holds all three stamps —
	// source publish, P receipt, Q receipt — monotone in wall time.
	full := false
	for _, tr := range snap.Traces {
		if len(tr.Hops) == 0 || tr.Hops[0].Node != 0 {
			t.Fatalf("trace %d does not start at the source: %+v", tr.ID, tr.Hops)
		}
		for i := 1; i < len(tr.Hops); i++ {
			if tr.Hops[i].At < tr.Hops[i-1].At {
				t.Fatalf("trace %d: non-monotone wall stamps %+v", tr.ID, tr.Hops)
			}
		}
		if len(tr.Hops) == 3 {
			full = true
		}
	}
	if !full {
		t.Errorf("no trace shows the full source->P->Q path: %+v", snap.Traces)
	}

	// The cluster metrics endpoint serves the same snapshot as JSON.
	resp, err := http.Get("http://" + cl.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var served obs.TreeSnapshot
	if err := json.Unmarshal(body, &served); err != nil {
		t.Fatalf("metrics endpoint served invalid JSON: %v\n%s", err, body)
	}
	if len(served.Nodes) != len(snap.Nodes) {
		t.Errorf("metrics endpoint served %d nodes, want %d", len(served.Nodes), len(snap.Nodes))
	}
}

// TestTCPObsUntracedOff pins that a cluster without observability runs
// exactly as before: no tracer, no stamps, and frames stay the pre-trace
// bytes (covered at the wire layer by TestTraceFlagUntracedUnchanged).
func TestTCPObsUntracedOff(t *testing.T) {
	o := chain(t)
	cl, err := StartCluster(o, map[string]float64{"X": 100})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Source().Publish("X", 200); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 2*time.Second, func() bool {
		q, _ := cl.Nodes[2].Value("X")
		return q == 200
	}) {
		t.Fatalf("propagation failed without obs")
	}
	if got := cl.Nodes[1].ObsSnapshot(); got.Counters.Received != 0 {
		t.Errorf("unobserved node reports counters: %+v", got.Counters)
	}
	if addr := cl.MetricsAddr(); addr != "" {
		t.Errorf("metrics endpoint started without being asked: %s", addr)
	}
}
