package netio

import (
	"testing"
	"time"

	"d3t/internal/coherency"
	"d3t/internal/netsim"
	"d3t/internal/repository"
	"d3t/internal/tree"
)

func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

// chain builds the Figure-4 chain overlay: source -> P(30) -> Q(50).
func chain(t *testing.T) *tree.Overlay {
	t.Helper()
	net := netsim.Uniform(2, 0)
	p := repository.New(1, 1)
	q := repository.New(2, 1)
	p.Needs["X"], p.Serving["X"] = 30, 30
	q.Needs["X"], q.Serving["X"] = 50, 50
	o, err := (&tree.LeLA{}).Build(net, []*repository.Repository{p, q}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestTCPChainPropagation(t *testing.T) {
	o := chain(t)
	cl, err := StartCluster(o, map[string]float64{"X": 100})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Within tolerance: nothing moves.
	if err := cl.Source().Publish("X", 120); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if v, _ := cl.Nodes[1].Value("X"); v != 100 {
		t.Errorf("P received a filtered update over TCP: holds %v", v)
	}

	// 140 violates P's tolerance and — via Eq. 7 — must reach Q too.
	if err := cl.Source().Publish("X", 140); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 2*time.Second, func() bool {
		p, _ := cl.Nodes[1].Value("X")
		q, _ := cl.Nodes[2].Value("X")
		return p == 140 && q == 140
	}) {
		p, _ := cl.Nodes[1].Value("X")
		q, _ := cl.Nodes[2].Value("X")
		t.Fatalf("TCP propagation failed: P=%v Q=%v", p, q)
	}
	if d := cl.Nodes[2].Delivered(); d != 1 {
		t.Errorf("Q delivered count %d, want 1", d)
	}
}

// TestTCPPublishBatch drives the multi-update frame kind: one batched
// publish must reach the child as a batch (one write, every violating
// item), with same-item updates coalesced to the newest value.
func TestTCPPublishBatch(t *testing.T) {
	net := netsim.Uniform(1, 0)
	p := repository.New(1, 1)
	p.Needs["X"], p.Serving["X"] = 30, 30
	p.Needs["Y"], p.Serving["Y"] = 10, 10
	o, err := (&tree.LeLA{}).Build(net, []*repository.Repository{p}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := StartCluster(o, map[string]float64{"X": 100, "Y": 50})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// X moves twice within the batch (140 superseded by 200), Y once, and
	// a third item the child never subscribed to is filtered by wiring.
	err = cl.Source().PublishBatch([]Update{
		{Item: "X", Value: 140},
		{Item: "Y", Value: 90},
		{Item: "X", Value: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 2*time.Second, func() bool {
		x, _ := cl.Nodes[1].Value("X")
		y, _ := cl.Nodes[1].Value("Y")
		return x == 200 && y == 90
	}) {
		x, _ := cl.Nodes[1].Value("X")
		y, _ := cl.Nodes[1].Value("Y")
		t.Fatalf("batch did not land: X=%v Y=%v", x, y)
	}
	// The superseded X=140 must never have been disseminated: exactly two
	// updates (one batch frame) delivered.
	if d := cl.Nodes[1].Delivered(); d != 2 {
		t.Errorf("delivered %d updates, want 2 (the superseded one coalesced away)", d)
	}
	if err := cl.Nodes[1].PublishBatch([]Update{{Item: "X", Value: 1}}); err == nil {
		t.Error("PublishBatch on a non-source node succeeded")
	}
}

func TestTCPPublishOnRepositoryFails(t *testing.T) {
	o := chain(t)
	cl, err := StartCluster(o, map[string]float64{"X": 100})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Nodes[1].Publish("X", 1); err == nil {
		t.Error("Publish on a repository node succeeded")
	}
}

func TestTCPFullSequenceMatchesFigure4(t *testing.T) {
	o := chain(t)
	cl, err := StartCluster(o, map[string]float64{"X": 100})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, v := range []float64{120, 140, 150, 170, 200} {
		if err := cl.Source().Publish("X", v); err != nil {
			t.Fatal(err)
		}
	}
	// Final state: both P and Q converge to 200 (the 200 forward violates
	// both tolerances). P receives {140, 200}; Q receives {140, 200}.
	if !waitFor(t, 2*time.Second, func() bool {
		p, _ := cl.Nodes[1].Value("X")
		q, _ := cl.Nodes[2].Value("X")
		return p == 200 && q == 200
	}) {
		t.Fatalf("sequence did not converge: %v / %v",
			first(cl.Nodes[1].Value("X")), first(cl.Nodes[2].Value("X")))
	}
	if d := cl.Nodes[1].Delivered(); d != 2 {
		t.Errorf("P delivered %d updates, want 2 (140 and 200)", d)
	}
	if d := cl.Nodes[2].Delivered(); d != 2 {
		t.Errorf("Q delivered %d updates, want 2 (140 via Eq.7, then 200)", d)
	}
}

func first(v float64, _ bool) float64 { return v }

func TestTCPWiderOverlay(t *testing.T) {
	const n = 8
	net := netsim.Uniform(n, 0)
	repos := make([]*repository.Repository, n)
	for i := range repos {
		repos[i] = repository.New(repository.ID(i+1), 3)
		repos[i].Needs["Y"], repos[i].Serving["Y"] = 0.5, 0.5
		if i%2 == 0 {
			repos[i].Needs["Z"], repos[i].Serving["Z"] = 0.25, 0.25
		}
	}
	o, err := (&tree.LeLA{Seed: 3}).Build(net, repos, 3)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := StartCluster(o, map[string]float64{"Y": 10, "Z": 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Source().Publish("Y", 15); err != nil {
		t.Fatal(err)
	}
	if err := cl.Source().Publish("Z", 30); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 2*time.Second, func() bool {
		for i := 1; i <= n; i++ {
			if v, _ := cl.Nodes[i].Value("Y"); v != 15 {
				return false
			}
			if i%2 == 1 { // repos with even index i-1 hold Z
				if v, _ := cl.Nodes[i].Value("Z"); v != 30 {
					return false
				}
			}
		}
		return true
	}) {
		t.Fatal("big jumps did not reach every interested repository over TCP")
	}
}

func TestNodeRejectsUnknownChild(t *testing.T) {
	src, err := Start(NodeConfig{ID: repository.SourceID, Initial: map[string]float64{"X": 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	// A node claiming an id the parent does not serve gets no pushes.
	stranger, err := Start(NodeConfig{
		ID:      99,
		Parents: []string{src.Addr()},
		Serving: nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stranger.Close()
	if err := src.Publish("X", 1000); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if d := stranger.Delivered(); d != 0 {
		t.Errorf("unknown child received %d updates", d)
	}
}

func TestTCPFailoverToBackupParent(t *testing.T) {
	// Hand-built chain source -> mid -> leaf for X; the source reserves a
	// slot for the leaf so it can adopt it after mid dies.
	tol := map[string]coherency.Requirement{"X": 20}
	source, err := Start(NodeConfig{
		ID: repository.SourceID,
		Children: map[repository.ID]map[string]coherency.Requirement{
			1: {"X": 10},
			2: tol, // reserved for the leaf's failover
		},
		Initial: map[string]float64{"X": 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer source.Close()
	mid, err := Start(NodeConfig{
		ID:      1,
		Serving: map[string]coherency.Requirement{"X": 10},
		Children: map[repository.ID]map[string]coherency.Requirement{
			2: tol,
		},
		Parents: []string{source.Addr()},
		Initial: map[string]float64{"X": 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := Start(NodeConfig{
		ID:      2,
		Serving: tol,
		Parents: []string{mid.Addr()},
		Backups: []string{source.Addr()},
		Initial: map[string]float64{"X": 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leaf.Close()

	if !waitFor(t, 5*time.Second, func() bool {
		return source.ConnectedChildren() == 1 && mid.ConnectedChildren() == 1
	}) {
		t.Fatal("chain never fully connected")
	}

	// Healthy path: the update flows through mid.
	if err := source.Publish("X", 150); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 5*time.Second, func() bool {
		v, _ := leaf.Value("X")
		return v == 150
	}) {
		t.Fatal("update never reached the leaf through mid")
	}

	// Kill mid. While the leaf is severed, the source moves on; the
	// resync after failover must deliver the missed value.
	mid.Close()
	if err := source.Publish("X", 400); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 5*time.Second, func() bool { return leaf.Failovers() == 1 }) {
		t.Fatal("leaf never failed over to the source")
	}
	if !waitFor(t, 5*time.Second, func() bool {
		v, _ := leaf.Value("X")
		return v == 400
	}) {
		v, _ := leaf.Value("X")
		t.Fatalf("leaf never resynced after failover: holds %v", v)
	}

	// New updates keep flowing over the backup connection.
	if err := source.Publish("X", 800); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 5*time.Second, func() bool {
		v, _ := leaf.Value("X")
		return v == 800
	}) {
		t.Fatal("post-failover update never arrived")
	}
}

func TestTCPFailoverExhaustedBackupsStops(t *testing.T) {
	parent, err := Start(NodeConfig{
		ID: repository.SourceID,
		Children: map[repository.ID]map[string]coherency.Requirement{
			1: {"X": 10},
		},
		Initial: map[string]float64{"X": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	child, err := Start(NodeConfig{
		ID:      1,
		Serving: map[string]coherency.Requirement{"X": 10},
		Parents: []string{parent.Addr()},
		Backups: []string{"127.0.0.1:1"}, // nothing listens there
		Initial: map[string]float64{"X": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	parent.Close()
	// Give the child's parent loop time to notice the broken connection
	// and exhaust the unreachable backup; a dead-end dial must not count
	// as a failover.
	time.Sleep(200 * time.Millisecond)
	if n := child.Failovers(); n != 0 {
		t.Errorf("failovers = %d after dialing only unreachable backups, want 0", n)
	}
	// And the node must shut down cleanly — a parent loop stuck retrying
	// would hang Close's WaitGroup.
	closed := make(chan struct{})
	go func() {
		child.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung: parent loop did not give up after exhausting backups")
	}
}
