package netio

import (
	"fmt"
	"path/filepath"

	dnode "d3t/internal/node"
	"d3t/internal/repository"
	"d3t/internal/wal"
)

// This file is the TCP runtime's durability layer: openWAL recovers the
// node's core from its log directory during Start, commitWAL is the
// group commit every apply pass runs under Node.mu, and walState is the
// snapshot callback a rotating commit dumps. A node process that dies
// and restarts over the same directory resumes with its exact pre-crash
// values and per-child filter state, so the first post-restart push is
// suppressed or forwarded as if the crash never happened.

// openWAL opens the node's log directory (Durability.Dir/repoNNN),
// replays whatever it holds into the freshly built core — snapshot state
// verbatim, then the logged batches through the normal Apply pipeline so
// edge decisions replay too — and keeps the log open for appending.
func (n *Node) openWAL() error {
	dir := filepath.Join(n.cfg.Durability.Dir, fmt.Sprintf("repo%03d", n.cfg.ID))
	log, rec, err := wal.Open(dir, *n.cfg.Durability)
	if err != nil {
		return fmt.Errorf("netio: %v durability: %w", n.cfg.ID, err)
	}
	for item, v := range rec.State.Values {
		n.core.SetValue(item, v)
	}
	for _, e := range rec.State.Edges {
		n.core.RestoreEdge(repository.ID(e.Dep), e.Item, e.Last, e.Seeded)
	}
	for _, b := range rec.Batches {
		for _, u := range b {
			n.core.Apply(u.Item, u.Value, dnode.ReplayTransport{})
		}
	}
	n.log = log
	return nil
}

// commitWAL appends the pass's applied updates and group-commits them as
// one record. Caller holds Node.mu and has already run the updates
// through the core, so a commit that rotates snapshots state that
// includes them (the records carrying them are deleted with the old
// segment).
func (n *Node) commitWAL(ups []Update) {
	if n.log == nil || len(ups) == 0 {
		return
	}
	for _, u := range ups {
		n.log.Append(u.Item, u.Value)
	}
	if err := n.log.Commit(n.walState); err != nil && n.walErr == nil {
		n.walErr = err
	}
}

// walState dumps the core's durable state for a snapshot rotation.
// Caller holds Node.mu.
func (n *Node) walState() wal.State {
	st := wal.State{Values: make(map[string]float64)}
	n.core.DumpDurable(
		func(item string, v float64) { st.Values[item] = v },
		func(dep repository.ID, item string, last float64, seeded bool) {
			st.Edges = append(st.Edges, wal.Edge{Dep: int64(dep), Item: item, Last: last, Seeded: seeded})
		})
	return st
}

// DurabilityErr reports the first write-ahead-log failure the node hit,
// or nil. After a non-nil error, commits may be missing from what a
// restart over the same directory replays.
func (n *Node) DurabilityErr() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.walErr
}
