package netio

import (
	"fmt"
	"net"
	"sync"
	"time"

	"d3t/internal/coherency"
	"d3t/internal/query"
	"d3t/internal/sim"
	"d3t/internal/wire"
)

// ClientUpdate is one value pushed to a remote client session.
type ClientUpdate struct {
	Item  string
	Value float64
	// Resync marks a catch-up push received on admission or after a
	// migration, as opposed to a tolerance-violating live update.
	Resync bool
}

// Client is a remote client session: it subscribes to a dissemination
// node over TCP with its own per-item tolerances and receives the
// wire-encoded updates that violate them. When the serving node dies (the
// connection drops) the client re-subscribes to the next known address —
// session migration, detected the way everything is detected in the TCP
// runtime: by connection error. Redirect answers (session cap reached,
// item not served stringently enough) are followed transparently.
type Client struct {
	name  string
	wants map[string]coherency.Requirement
	ch    chan ClientUpdate
	// qspec rides every subscribe frame when the session is a
	// repository-evaluated query (SubscribeQuery, PlaceRepo): the serving
	// node evaluates and pushes only result changes. Empty otherwise.
	qspec string
	// qeval is the client-local evaluator of a client-placed query
	// (SubscribeQuery, PlaceClient): raw inputs arrive and are recombined
	// here, on the client's own query clock (qstart). Nil otherwise.
	qeval  *query.Eval
	qstart time.Time

	mu         sync.Mutex
	conn       net.Conn
	addrs      []string // known candidate endpoints, admission order
	current    string   // address currently serving the session
	values     map[string]float64
	delivered  uint64
	dropped    uint64
	redirects  int
	migrations int
	closed     bool

	wg sync.WaitGroup
}

// Subscribe opens a client session against the given node addresses: the
// first that accepts (following redirects) serves it; the rest are
// failover candidates. The returned client's Updates channel carries the
// filtered pushes.
func Subscribe(name string, wants map[string]coherency.Requirement, addrs ...string) (*Client, error) {
	return subscribe(name, wants, "", nil, addrs)
}

// SubscribeQuery opens a derived-data query session (internal/query)
// against the given node addresses. With the default repository-side
// placement the subscribe frame carries the query spec — the serving
// node evaluates and the Updates channel delivers only result changes,
// under the query's result pseudo-item (Query.ResultItem). With
// PlaceClient the session is a plain subscription to the inputs at their
// allocated tolerances and the client recombines locally: Updates
// carries the raw inputs and QueryResult/QueryCounts expose the local
// evaluator. Both placements see the same filtered input stream, so
// their evaluation counts agree; they trade last-hop message cost.
func SubscribeQuery(q query.Query, addrs ...string) (*Client, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.Name == "" {
		return nil, fmt.Errorf("netio: query session needs a name")
	}
	if q.Placement == query.PlaceClient {
		return subscribe(q.Name, q.Wants(), "", query.NewEval(q), addrs)
	}
	return subscribe(q.Name, q.Wants(), q.String(), nil, addrs)
}

func subscribe(name string, wants map[string]coherency.Requirement, qspec string, qeval *query.Eval, addrs []string) (*Client, error) {
	if name == "" || len(wants) == 0 {
		return nil, fmt.Errorf("netio: subscription needs a name and a watch list")
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("netio: subscription needs at least one node address")
	}
	c := &Client{
		name:   name,
		wants:  wants,
		ch:     make(chan ClientUpdate, 256),
		qspec:  qspec,
		qeval:  qeval,
		qstart: time.Now(),
		addrs:  append([]string(nil), addrs...),
		values: make(map[string]float64),
	}
	conn, dec, err := c.connect("")
	if err != nil {
		return nil, err
	}
	c.conn = conn
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.readLoop(conn, dec)
	}()
	return c, nil
}

// Updates returns the session's delivery channel. A slow consumer does
// not block the connection: updates that find the channel full are
// dropped and counted.
func (c *Client) Updates() <-chan ClientUpdate { return c.ch }

// Value returns the client's current copy of item.
func (c *Client) Value(item string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.values[item]
	return v, ok
}

// Serving returns the address currently serving the session.
func (c *Client) Serving() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.current
}

// Delivered, Redirects and Migrations report the session's counters.
func (c *Client) Delivered() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.delivered
}
func (c *Client) Redirects() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.redirects
}
func (c *Client) Migrations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.migrations
}

// QueryResult returns the session's current copy of the query result:
// the local evaluator's result for a client-placed query, the last
// received result push for a repository-placed one. It reports false for
// plain (non-query) sessions and before the first defined result.
func (c *Client) QueryResult() (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.qeval != nil {
		return c.qeval.Result()
	}
	if c.qspec != "" {
		v, ok := c.values[(&query.Query{Name: c.name}).ResultItem()]
		return v, ok
	}
	return 0, false
}

// QueryCounts reports the client-local evaluator's counters (zeros for a
// repository-placed query, whose counts live on the serving node — see
// Node.QueryCounts — and for plain sessions).
func (c *Client) QueryCounts() (evals, recomputes uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.qeval != nil {
		return c.qeval.Evals(), c.qeval.Recomputes()
	}
	return 0, 0
}

// Close ends the session, waits for its reader, and closes the Updates
// channel so ranging consumers terminate.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	c.wg.Wait()
	close(c.ch)
}

// connect walks the known addresses (skipping the one that just died)
// and returns the first accepted subscription, following redirects —
// redirect-offered addresses join the candidate list.
func (c *Client) connect(skip string) (net.Conn, *wire.Decoder, error) {
	tried := make(map[string]bool)
	for i := 0; ; i++ {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, nil, fmt.Errorf("netio: session %q closed", c.name)
		}
		var addr string
		for _, a := range c.addrs {
			if a != skip && !tried[a] {
				addr = a
				break
			}
		}
		c.mu.Unlock()
		if addr == "" {
			return nil, nil, fmt.Errorf("netio: no node accepted session %q", c.name)
		}
		tried[addr] = true
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			continue
		}
		if wire.NewEncoder(conn).Encode(&wire.Frame{Kind: wire.KindSubscribe, Name: c.name, Wants: c.wants, Query: c.qspec}) != nil {
			conn.Close()
			continue
		}
		dec := wire.NewDecoder(conn)
		var answer wire.Frame
		if dec.Decode(&answer) != nil {
			conn.Close()
			continue
		}
		switch answer.Kind {
		case wire.KindAccept:
			c.mu.Lock()
			c.current = addr
			c.mu.Unlock()
			return conn, dec, nil
		case wire.KindRedirect:
			conn.Close()
			c.mu.Lock()
			c.redirects++
			known := make(map[string]bool, len(c.addrs))
			for _, a := range c.addrs {
				known[a] = true
			}
			for _, a := range answer.Addrs {
				if !known[a] {
					c.addrs = append(c.addrs, a)
				}
			}
			c.mu.Unlock()
		default:
			conn.Close()
		}
	}
}

// readLoop applies pushes; on connection death — or a corrupt stream
// failing the strict decoder — it migrates the session to the next
// candidate address, with backoff between full sweeps.
func (c *Client) readLoop(conn net.Conn, dec *wire.Decoder) {
	backoff := 50 * time.Millisecond
	var f wire.Frame
	for {
		if err := dec.Decode(&f); err != nil {
			conn.Close()
			c.mu.Lock()
			closed := c.closed
			dead := c.current
			c.mu.Unlock()
			if closed {
				return
			}
			next, nextDec, err := c.connect(dead)
			if err != nil {
				c.mu.Lock()
				closed = c.closed
				c.mu.Unlock()
				if closed {
					return
				}
				time.Sleep(backoff)
				if backoff < 2*time.Second {
					backoff *= 2
				}
				// Retry the full candidate list, the dead node included —
				// it may have restarted.
				next, nextDec, err = c.connect("")
				if err != nil {
					continue
				}
			}
			c.mu.Lock()
			c.conn = next
			c.migrations++
			if c.closed {
				c.mu.Unlock()
				next.Close()
				return
			}
			c.mu.Unlock()
			conn, dec = next, nextDec
			continue
		}
		backoff = 50 * time.Millisecond
		if f.Kind != wire.KindUpdate {
			continue
		}
		c.mu.Lock()
		c.values[f.Item] = f.Value
		c.delivered++
		if c.qeval != nil {
			// Client-side placement: recombine the raw input locally, on
			// the client's own query clock. Counts depend only on the
			// delivery sequence, not on the tick width.
			c.qeval.Observe(f.Item, f.Value, int64(sim.Time(time.Since(c.qstart)/time.Microsecond)/sim.Second))
		}
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		select {
		case c.ch <- ClientUpdate{Item: f.Item, Value: f.Value, Resync: f.Resync}:
		default:
			c.mu.Lock()
			c.dropped++
			c.mu.Unlock()
		}
	}
}
