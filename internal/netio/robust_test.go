package netio

// Wire-robustness tests: a peer speaking garbage — corrupt bytes, lying
// length prefixes, unknown kinds, truncated frames — must cost exactly
// one torn-down connection. The server stays up, keeps its other
// registrations, and accepts the next well-formed peer; a client served
// garbage migrates to a healthy node. All verified against real TCP
// pairs, because the teardown path under test is the connection-error
// machinery itself.

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"d3t/internal/coherency"
	"d3t/internal/repository"
	"d3t/internal/wire"
)

// dialNode opens a raw TCP connection to the node.
func dialNode(t *testing.T, n *Node) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// expectServerClose asserts the server tears the connection down (we
// observe EOF/reset) instead of hanging — the never-hang half of the
// robustness contract, bounded by a read deadline.
func expectServerClose(t *testing.T, conn net.Conn) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := conn.Read(buf); err != nil {
			if err == io.EOF {
				return
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatal("server left the corrupt connection open (read deadline hit)")
			}
			return // reset-by-peer counts as a teardown too
		}
	}
}

// parentWithChild starts a source configured to serve child 1.
func parentWithChild(t *testing.T) *Node {
	t.Helper()
	n, err := Start(NodeConfig{
		ID: repository.SourceID,
		Children: map[repository.ID]map[string]coherency.Requirement{
			1: {"X": 10},
		},
		Initial: map[string]float64{"X": 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// hello sends a well-formed hello frame for the given dependent id.
func hello(t *testing.T, conn net.Conn, id repository.ID) {
	t.Helper()
	if err := wire.NewEncoder(conn).Encode(&wire.Frame{Kind: wire.KindHello, From: id}); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptStreamAfterHelloTearsDownChild registers a child, then
// turns hostile: garbage bytes after the handshake must drop exactly
// that registration, and a well-behaved replacement must be admitted
// afterwards — the server survives its worst peer.
func TestCorruptStreamAfterHelloTearsDownChild(t *testing.T) {
	n := parentWithChild(t)
	conn := dialNode(t, n)
	hello(t, conn, 1)
	if !waitFor(t, 5*time.Second, func() bool { return n.ConnectedChildren() == 1 }) {
		t.Fatal("hello never registered the child")
	}
	if _, err := conn.Write([]byte("\xde\xad\xbe\xef garbage, not a frame")); err != nil {
		t.Fatal(err)
	}
	expectServerClose(t, conn)
	if !waitFor(t, 5*time.Second, func() bool { return n.ConnectedChildren() == 0 }) {
		t.Fatal("corrupt child still registered after teardown")
	}
	// The node is still serving: a clean child connects and gets pushes.
	conn2 := dialNode(t, n)
	hello(t, conn2, 1)
	if !waitFor(t, 5*time.Second, func() bool { return n.ConnectedChildren() == 1 }) {
		t.Fatal("replacement child not admitted after a corrupt peer")
	}
	if err := n.Publish("X", 200); err != nil {
		t.Fatal(err)
	}
	var f wire.Frame
	if err := wire.NewDecoder(conn2).Decode(&f); err != nil {
		t.Fatalf("replacement child got no push: %v", err)
	}
	if f.Kind != wire.KindUpdate || f.Item != "X" || f.Value != 200 {
		t.Fatalf("replacement child got %+v, want X=200", f)
	}
}

// TestOversizedLengthPrefixClosesConnection announces a 4 GiB body on
// the handshake: the strict decoder must refuse before allocating and
// the server must close the connection, not hang waiting for bytes that
// will never come.
func TestOversizedLengthPrefixClosesConnection(t *testing.T) {
	n := parentWithChild(t)
	conn := dialNode(t, n)
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr, 0xffffffff)
	hdr[4], hdr[5] = wire.Version, byte(wire.KindHello)
	if _, err := conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	expectServerClose(t, conn)
	if n.ConnectedChildren() != 0 {
		t.Fatal("oversized-prefix peer was registered")
	}
}

// TestUnknownKindClosesConnection sends a structurally valid frame of a
// kind this build does not know: protocol error, connection torn down.
func TestUnknownKindClosesConnection(t *testing.T) {
	n := parentWithChild(t)
	conn := dialNode(t, n)
	hdr := make([]byte, 8)
	hdr[4], hdr[5] = wire.Version, 0x7f
	if _, err := conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	expectServerClose(t, conn)
}

// TestTruncatedFrameUnregistersChild: a registered child dies mid-frame
// (header promised more body than ever arrives, then FIN). The server
// must treat it exactly like a crash: unregister, keep serving.
func TestTruncatedFrameUnregistersChild(t *testing.T) {
	n := parentWithChild(t)
	conn := dialNode(t, n)
	hello(t, conn, 1)
	if !waitFor(t, 5*time.Second, func() bool { return n.ConnectedChildren() == 1 }) {
		t.Fatal("hello never registered the child")
	}
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr, 100)
	hdr[4], hdr[5] = wire.Version, byte(wire.KindUpdate)
	if _, err := conn.Write(append(hdr, make([]byte, 10)...)); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if !waitFor(t, 5*time.Second, func() bool { return n.ConnectedChildren() == 0 }) {
		t.Fatal("truncated-frame child still registered")
	}
}

// TestClientMigratesOffCorruptServer puts a byte-level fault on the
// serving side: a fake node accepts the subscription and then speaks
// garbage. The remote client must treat the undecodable stream as a
// dead server — tear down, migrate to the healthy candidate, and keep
// receiving filtered updates there.
func TestClientMigratesOffCorruptServer(t *testing.T) {
	healthy := sourceNode(t, NodeConfig{ID: 0, Initial: map[string]float64{"X": 100}})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var sub wire.Frame
		if wire.NewDecoder(conn).Decode(&sub) != nil || sub.Kind != wire.KindSubscribe {
			return
		}
		enc := wire.NewEncoder(conn)
		if enc.Encode(&wire.Frame{Kind: wire.KindAccept}) != nil {
			return
		}
		// One valid resync push, then garbage mid-stream.
		enc.Encode(&wire.Frame{Kind: wire.KindUpdate, Item: "X", Value: 100, Resync: true})
		conn.Write([]byte("this is not a frame"))
		time.Sleep(50 * time.Millisecond)
	}()

	c, err := Subscribe("victim", map[string]coherency.Requirement{"X": 20}, ln.Addr().String(), healthy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Subscribe landed on the fake first (it is the first candidate and
	// answered with accept); no assertion on Serving here — migration can
	// beat this goroutine to it.
	if c.Redirects() != 0 {
		t.Fatalf("redirects = %d, want 0 (fake server accepts)", c.Redirects())
	}
	if !waitFor(t, 5*time.Second, func() bool { return c.Serving() == healthy.Addr() }) {
		t.Fatalf("client never migrated off the corrupt server (serving %s)", c.Serving())
	}
	if c.Migrations() != 1 {
		t.Errorf("migrations = %d, want 1", c.Migrations())
	}
	drainResync(c)
	if err := healthy.Publish("X", 500); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 5*time.Second, func() bool {
		v, _ := c.Value("X")
		return v == 500
	}) {
		t.Fatal("no updates from the healthy node after migration")
	}
}
